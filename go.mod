module squid

go 1.24
