// Package squid is a Go implementation of SQuID — semantic
// similarity-aware query intent discovery (Fariha & Meliou, VLDB 2019).
//
// SQuID answers query-by-example requests in an open-world setting: given
// a handful of example values (say, three actor names), it finds the
// entities they denote, discovers the semantic properties they share —
// explicit ones such as gender=Male, and implicit ones such as "appeared
// in at least 40 Comedy movies" — and abduces the select-project-join
// query (with optional group-by aggregation) that is the most probable
// explanation of the examples.
//
// The workflow has two phases, mirroring the paper's architecture
// (Fig 4):
//
//   - Offline, Build constructs an abduction-ready database (αDB) from a
//     Database whose relations are annotated as entities and properties:
//     it discovers fact tables from foreign keys, materializes derived
//     relations such as persontogenre(person_id, genre_id, count), and
//     precomputes selectivity statistics and an inverted column index.
//
//   - Online, Discover maps examples to entities, derives their semantic
//     contexts, and runs the linear-time abduction algorithm (Algorithm 1,
//     optimal per Theorem 1) to select the filters of the intended query.
//
// # Online pipeline architecture
//
// The online phase is index-backed, cache-aware, and concurrency-safe,
// so discovery cost tracks the number of candidate filters rather than
// the data size (the paper's Fig 16b scalability claim):
//
//   - An IndexSet (internal/index) pools hash indexes over every base
//     and derived relation, built once and maintained in place by
//     incremental inserts; dimension lookups, αDB maintenance, and the
//     engine's point-predicate pushdown all share it.
//   - Each property answers selectivity and satisfying-row questions
//     from precomputed postings and sorted value→row indexes; a
//     memoized selectivity cache (internal/adb.SelCache) shares row
//     sets across discoveries. Invalidation is per property: an insert
//     discards only the entries of the properties whose statistics it
//     shifted, so sustained ingest into one relation leaves the rest of
//     the cache warm.
//   - Filter row sets intersect as sorted posting-list merges, seeded
//     by the most selective filter.
//   - DiscoverBatch fans independent example sets across a bounded
//     worker pool over the shared αDB. Writes (InsertEntity,
//     InsertFact, InsertBatch) are safe to run concurrently with
//     discovery and are wait-free for readers: the αDB is a chain of
//     immutable, atomically published epochs — a discovery pins the
//     current epoch with one pointer load and can never be stalled by
//     a writer, while writers build the next epoch copy-on-write and
//     publish it with one pointer swap. Writers into disjoint
//     relations proceed in parallel (per-relation write locks); no
//     external coordination is required anywhere.
//
// Benchmarks: `go test -bench=.` runs the experiment harness at reduced
// scale; `go run ./cmd/squid-bench -exp all` regenerates the paper's
// tables, and `-json` emits machine-readable per-phase timings for
// tracking across commits.
//
// A minimal session:
//
//	db := squid.NewDatabase("cs_academics")
//	... // add relations, mark entities/properties
//	sys, err := squid.Build(db, squid.DefaultBuildConfig())
//	disc, err := sys.Discover([]string{"Dan Suciu", "Sam Madden"})
//	fmt.Println(disc.SQL)       // SPJ query over the αDB
//	fmt.Println(disc.Original)  // equivalent SPJAI query over the schema
package squid

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"squid/internal/abduction"
	"squid/internal/adb"
	"squid/internal/disambig"
	"squid/internal/engine"
	"squid/internal/relation"
	"squid/internal/snapshot"
	"squid/internal/sqlgen"
	"squid/internal/trace"
	"squid/internal/wal"
)

// Typed sentinel errors of the online phase, matched with errors.Is.
var (
	// ErrNoExamples reports that Discover was called with no examples.
	ErrNoExamples = abduction.ErrNoExamples
	// ErrNoEntities reports that no entity attribute contains every
	// example value, so no query intent can be abduced.
	ErrNoEntities = abduction.ErrNoEntities
	// ErrWALSync reports that an insert was applied in memory but its
	// write-ahead-log durability barrier failed (fsync or append error).
	// The in-memory state is consistent and readable, but the rows are
	// NOT guaranteed durable, and the log refuses all further appends
	// until the system is rebooted — callers must treat the write as
	// unacknowledged and the system as read-only.
	ErrWALSync = errors.New("squid: wal durability barrier failed")
)

// Re-exported schema-building types: a Database is a set of Relations
// with primary/foreign keys, plus entity/property annotations.
type (
	// Database is a named collection of relations plus administrator
	// metadata (which relations hold entities and which hold
	// properties).
	Database = relation.Database
	// Relation is an in-memory table with typed columns.
	Relation = relation.Relation
	// Column is one typed column of a relation.
	Column = relation.Column
	// Value is a dynamically typed cell value (int, float, string, or
	// NULL).
	Value = relation.Value
	// ColType enumerates column storage types.
	ColType = relation.ColType
	// Params are SQuID's tuning parameters (paper Fig 21).
	Params = abduction.Params
	// BuildConfig tunes αDB construction.
	BuildConfig = adb.Config
	// Stats summarizes an αDB (Fig 18 statistics).
	Stats = adb.Stats
	// Filter is a semantic property filter of the abduced query.
	Filter = abduction.Filter
	// FilterDecision records the per-filter posterior computation.
	FilterDecision = abduction.FilterDecision
	// Query is an executable logical query plan.
	Query = engine.Query
	// ExecResult holds executed query output.
	ExecResult = engine.Result
)

// Column type constants.
const (
	Int    = relation.Int
	Float  = relation.Float
	String = relation.String
)

// Value constructors and schema helpers, re-exported.
var (
	// NewDatabase creates an empty database.
	NewDatabase = relation.NewDatabase
	// NewRelation creates a relation with the given columns.
	NewRelation = relation.New
	// Col declares a column (name, type) for NewRelation.
	Col = relation.Col
	// IntVal wraps an int64 as a Value.
	IntVal = relation.IntVal
	// FloatVal wraps a float64 as a Value.
	FloatVal = relation.FloatVal
	// StringVal wraps a string as a Value.
	StringVal = relation.StringVal
	// Null is the NULL value.
	Null = relation.Null
	// DefaultParams returns the paper's default parameters (Fig 21).
	DefaultParams = abduction.DefaultParams
	// QREParams returns the optimistic preset for query reverse
	// engineering (§7.5).
	QREParams = abduction.QREParams
	// DefaultBuildConfig returns the default αDB build configuration.
	DefaultBuildConfig = adb.DefaultConfig
	// LoadCSV reads CSV data into a new Relation (header row required).
	LoadCSV = relation.LoadCSV
)

// CSVColumn declares one column of a CSV import.
type CSVColumn = relation.CSVColumn

// System is an abduction-ready SQuID instance over one database.
//
// Discovery and ingest are safe for concurrent use, and readers are
// wait-free. The αDB behind a System is a chain of immutable epochs
// published through an atomic pointer: every read surface (Discover,
// DiscoverContext, DiscoverAll, DiscoverBatch, Execute, Stats, Save)
// pins the current epoch with one pointer load and runs to completion
// against that consistent state — no lock, so a writer can never stall
// a discovery mid-flight and a long discovery never stalls a writer.
// Writes (InsertEntity, InsertFact, InsertBatch) build the next epoch
// copy-on-write: they clone only the relations, property statistics,
// and index shards the batch touches, share everything else
// structurally with the previous epoch, and publish with one pointer
// swap. Writers coordinate per relation — inserts into disjoint
// relations proceed in parallel, and concurrent publishes are combined
// into one chain — so a discovery in flight when an insert lands
// answers from the pre-insert epoch (snapshot isolation) and the next
// one sees the new rows.
//
// Epoch lifecycle and memory: a retired epoch stays reachable only
// through the readers still pinning it (and through whatever its
// successor shares structurally); when the last such reader finishes,
// the epoch's private clones are garbage collected. The steady-state
// overhead of sustained ingest is therefore bounded by the number of
// discoveries in flight, not by write volume.
//
// One surface stays outside the epoch protocol: the configuration
// setters (SetParams, SetBatchWorkers) must be called before the
// System is shared across goroutines. A returned Discovery (and its
// Filters) is permanently pinned to the epoch it ran against —
// introspecting it after later inserts keeps answering from its own
// epoch's statistics.
type System struct {
	alpha  *adb.AlphaDB
	params Params

	// batchWorkers bounds DiscoverBatch's worker pool (0 = GOMAXPROCS).
	batchWorkers int

	// wal, when attached, receives every published epoch's row deltas
	// (appended under the publish lock, so log order is publish order)
	// and provides the durability barrier the insert paths wait on.
	// Set via AttachWAL/RecoverWAL before the System is shared.
	wal *wal.Log

	// traces is the fixed-size lock-free ring of finished request
	// traces (lazily created; see Traces). Recording into it is
	// wait-free and never backpressures the serving path.
	tracesOnce sync.Once
	traces     *trace.Ring
}

// traceRingSize is how many finished request traces the System retains
// for GET /debug/traces: enough recent history to diagnose a latency
// spike, small enough that the ring's footprint is negligible.
const traceRingSize = 128

// Traces returns the System's trace ring: the store of the most recent
// finished request traces. The serving layer publishes every traced
// request's spans here (and the slow-query view reads from it); library
// users can Put recorder output of their own. Lazily created, safe for
// concurrent use.
func (s *System) Traces() *trace.Ring {
	s.tracesOnce.Do(func() { s.traces = trace.NewRing(traceRingSize) })
	return s.traces
}

// Build runs the offline phase: it constructs the abduction-ready
// database for db (precomputing derived relations, statistics, and the
// inverted index) and returns a System configured with DefaultParams.
func Build(db *Database, cfg BuildConfig) (*System, error) {
	alpha, err := adb.Build(db, cfg)
	if err != nil {
		return nil, fmt.Errorf("squid: offline phase failed: %w", err)
	}
	return &System{alpha: alpha, params: DefaultParams()}, nil
}

// ErrSnapshotVersion reports a snapshot whose format version this build
// cannot read; rebuild from the source database and save again.
var ErrSnapshotVersion = snapshot.ErrVersion

// Save persists the system — the αDB with its dictionaries, derived
// relations, statistics, numeric indexes, and the discovery parameters —
// to the versioned binary snapshot format (internal/snapshot). A warm
// boot via Load is O(read) instead of O(rebuild).
func (s *System) Save(w io.Writer) error {
	sw := snapshot.NewWriter(w)
	sw.Header()
	writeParams(sw, s.params)
	s.alpha.Encode(sw)
	if err := sw.Flush(); err != nil {
		return fmt.Errorf("squid: save snapshot: %w", err)
	}
	return nil
}

// Load restores a System from a snapshot written by Save. The restored
// system is fully operational: discovery answers are identical to the
// saved system's, and incremental inserts (InsertEntity/InsertFact)
// maintain it exactly like a freshly built one. Version mismatches
// return an error matching ErrSnapshotVersion.
func Load(r io.Reader) (*System, error) {
	sr := snapshot.NewReader(r)
	sr.Header()
	params := readParams(sr)
	if err := sr.Err(); err != nil {
		return nil, fmt.Errorf("squid: load snapshot: %w", err)
	}
	alpha, err := adb.Decode(sr)
	if err != nil {
		return nil, fmt.Errorf("squid: load snapshot: %w", err)
	}
	return &System{alpha: alpha, params: params}, nil
}

// writeParams persists the abduction-model parameters. Params.Workers
// is deliberately omitted: it is a runtime knob of the serving machine,
// not part of the model, so a loaded system starts at the default
// (GOMAXPROCS) and the snapshot format stays unchanged.
func writeParams(w *snapshot.Writer, p Params) {
	w.Float(p.Rho)
	w.Float(p.Gamma)
	w.Float(p.Eta)
	w.Int(p.TauA)
	w.Float(p.TauS)
	w.Bool(p.DisableOutlier)
	w.Float(p.OutlierK)
	w.Bool(p.NormalizeAssociation)
	w.Float(p.TauANorm)
	w.Int(p.MaxDisjunction)
}

func readParams(r *snapshot.Reader) Params {
	return Params{
		Rho:                  r.Float(),
		Gamma:                r.Float(),
		Eta:                  r.Float(),
		TauA:                 r.Int(),
		TauS:                 r.Float(),
		DisableOutlier:       r.Bool(),
		OutlierK:             r.Float(),
		NormalizeAssociation: r.Bool(),
		TauANorm:             r.Float(),
		MaxDisjunction:       r.Int(),
	}
}

// SetParams replaces the discovery parameters (see Params). Not
// synchronized: call before sharing the System across goroutines.
func (s *System) SetParams(p Params) { s.params = p }

// Params returns the current discovery parameters.
func (s *System) Params() Params { return s.params }

// AlphaDB exposes the underlying abduction-ready database for advanced
// use (experiment harnesses, statistics).
func (s *System) AlphaDB() *adb.AlphaDB { return s.alpha }

// Stats returns the Fig 18 summary of the αDB.
func (s *System) Stats() Stats { return s.alpha.ComputeStats() }

// CacheMetrics returns the selectivity-cache health counters (hits,
// misses, live entries) without computing the full Stats block: no
// byte-size scans, so a high-frequency metrics scrape stays cheap.
func (s *System) CacheMetrics() (hits, misses uint64, entries int) {
	c := s.alpha.SelectivityCache()
	hits, misses = c.Metrics()
	return hits, misses, c.Len()
}

// EpochMetrics reports the αDB epoch chain's health for monitoring:
// the current epoch's sequence number, its age (time since the last
// publish), and the cumulative publish/combine counters. One atomic
// load; safe at any scrape frequency.
func (s *System) EpochMetrics() (seq uint64, age time.Duration, publishes, combines uint64) {
	es := s.alpha.EpochStats()
	return es.Seq, time.Since(es.PublishedAt), es.Publishes, es.Combines
}

// EpochGCMetrics reports the epoch chain's garbage-collection health:
// how many retired epochs the runtime has not yet collected, and the
// estimated bytes of replaced relation versions they pin. A steadily
// growing retired count under sustained ingest means readers (or leaked
// Discovery values) are pinning old epochs. Two atomic loads; safe at
// any scrape frequency.
func (s *System) EpochGCMetrics() (retired, retainedBytes int64) {
	es := s.alpha.EpochStats()
	return es.Retired, es.RetainedBytes
}

// AttachWAL connects a write-ahead log to the system: from now on every
// published epoch's row deltas are appended to l (in publish order),
// and the insert paths run l's durability barrier before acknowledging.
// Call before the System is shared across goroutines; for a system with
// prior log history use RecoverWAL instead, which replays first and
// then attaches.
//
// Append errors are deliberately not surfaced here: the log records
// them stickily and the next durability barrier (or any later append)
// reports them, so an insert is never acknowledged past a failed
// append.
func (s *System) AttachWAL(l *wal.Log) {
	s.wal = l
	s.alpha.SetPublishHook(func(seq uint64, rows []adb.AppliedRow) {
		if len(rows) == 0 {
			return
		}
		wrows := make([]wal.Row, len(rows))
		for i, r := range rows {
			wrows[i] = wal.Row{Rel: r.Rel, Vals: r.Vals}
		}
		_ = l.Append(seq, wrows) // sticky: surfaces at the next barrier
	})
}

// WAL returns the attached write-ahead log, or nil if the system runs
// without one.
func (s *System) WAL() *wal.Log { return s.wal }

// WALRecovery summarizes what RecoverWAL did.
type WALRecovery struct {
	// Replayed is the number of log records applied (records at or
	// below the snapshot's epoch sequence are skipped, not counted).
	Replayed int
	// TruncatedBytes is the size of the torn tail discarded from the
	// live segment, 0 for a clean shutdown.
	TruncatedBytes int64
	// LastSeq is the epoch sequence after replay.
	LastSeq uint64
}

// RecoverWAL opens (or creates) the write-ahead log at path, replays
// every record newer than the system's current epoch onto it, and
// attaches the log so subsequent inserts are logged and fenced by its
// durability barrier. It is the boot-time counterpart of AttachWAL:
//
//	sys, _ := squid.Load(f)                  // snapshot at epoch N
//	info, err := sys.RecoverWAL(path, opts)  // replays records N+1..M
//
// A torn tail (crash mid-append) is truncated at the first bad frame
// and reported in TruncatedBytes. A gap in the record sequence — the
// log starts past the snapshot, or skips a sequence number — means
// acknowledged writes are missing and is a hard error: recovery
// refuses to silently lose data.
func (s *System) RecoverWAL(path string, opts wal.Options) (WALRecovery, error) {
	l, res, err := wal.Open(path, opts)
	if err != nil {
		return WALRecovery{}, fmt.Errorf("squid: open wal: %w", err)
	}
	base := s.alpha.EpochStats().Seq
	info := WALRecovery{TruncatedBytes: res.TruncatedBytes, LastSeq: base}
	for _, rec := range res.Records {
		if rec.Seq <= base {
			continue
		}
		cur := s.alpha.EpochStats().Seq
		if rec.Seq != cur+1 {
			l.Close()
			return info, fmt.Errorf("squid: wal replay: log continues at seq %d but state is at seq %d: acknowledged records are missing", rec.Seq, cur)
		}
		ops := make([]InsertOp, len(rec.Rows))
		for i, r := range rec.Rows {
			ops[i] = InsertOp{Rel: r.Rel, Vals: r.Vals}
		}
		// One InsertBatch publishes exactly one epoch, so the replayed
		// chain reproduces the logged sequence numbers exactly.
		if err := s.alpha.InsertBatch(ops); err != nil {
			l.Close()
			return info, fmt.Errorf("squid: wal replay: record seq %d: %w", rec.Seq, err)
		}
		info.Replayed++
		info.LastSeq = rec.Seq
	}
	// Attach only after replay: replayed publishes must not re-append
	// the records they came from.
	s.AttachWAL(l)
	return info, nil
}

// walBarrier fences an acknowledged insert on the log's durability
// policy. Only reached after the insert succeeded: the epoch (and its
// log append) exist; the barrier decides whether to wait for fsync.
func (s *System) walBarrier() error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Barrier(); err != nil {
		return fmt.Errorf("%w: %v", ErrWALSync, err)
	}
	return nil
}

// Discovery is the result of query intent discovery: the selected
// filters, both SQL renderings, and the query output.
type Discovery struct {
	// Entity and Attribute identify the base query Q* (e.g. person,
	// name).
	Entity    string
	Attribute string
	// SQL is the abduced query over the αDB (paper Q5 form).
	SQL string
	// Original is the equivalent query over the original schema with
	// GROUP BY/HAVING for derived filters (paper Q4 form).
	Original string
	// Filters are the selected semantic property filters ϕ.
	Filters []*Filter
	// Decisions hold the full per-filter posterior computation over
	// the candidate set Φ, for introspection.
	Decisions []FilterDecision
	// Output is the result of the abduced query: the projected
	// attribute values, sorted.
	Output []string

	result *abduction.Result
}

// Discover runs the online phase on the given example values with
// entity disambiguation enabled (§6.1.1). It returns the highest-scoring
// discovery across candidate base queries.
func (s *System) Discover(examples []string) (*Discovery, error) {
	//lint:ignore ctxpoll non-cancellable convenience wrapper; DiscoverContext is the ctx-threading entry point
	return s.discoverCtx(context.Background(), examples, disambig.Resolve)
}

// DiscoverContext is Discover with cooperative cancellation: ctx.Err()
// is consulted inside the abduction itself — between candidate base
// queries and between candidate-filter evaluations — so canceling the
// context (or hitting its deadline) makes even one long discovery return
// promptly. The returned error wraps ctx's error and matches it with
// errors.Is. Writers are never blocked behind abandoned work — readers
// hold no lock at all.
func (s *System) DiscoverContext(ctx context.Context, examples []string) (*Discovery, error) {
	return s.discoverCtx(ctx, examples, disambig.Resolve)
}

// DiscoverAll returns every candidate discovery (one per base query the
// examples structurally match), ranked by posterior score. The first
// element equals Discover's result.
func (s *System) DiscoverAll(examples []string) ([]*Discovery, error) {
	// Pin one epoch across discovery and result materialization:
	// writers publish past it without ever stalling this reader.
	results, err := abduction.Discover(s.alpha.Snapshot(), examples, s.params, disambig.Resolve)
	if err != nil {
		return nil, fmt.Errorf("squid: %w", err)
	}
	out := make([]*Discovery, 0, len(results))
	for _, res := range results {
		out = append(out, s.wrap(res))
	}
	return out, nil
}

// InsertEntity appends a row to an entity relation and publishes the
// next αDB epoch with that entity incrementally maintained (the §9
// dynamic-dataset extension). Safe to call concurrently with discovery
// (readers are wait-free on their pinned epochs) and with inserts into
// other relations; only the inserted entity's own properties are
// cloned and cache-invalidated.
func (s *System) InsertEntity(rel string, vals ...Value) error {
	if err := s.alpha.InsertEntity(rel, vals...); err != nil {
		return err
	}
	return s.walBarrier()
}

// InsertFact appends a row to a fact relation and publishes the next
// αDB epoch with the affected derived relations and statistics
// maintained. Safe to call concurrently with discovery and with
// inserts into disjoint relations; only the properties routed through
// that fact table for the referenced entities are cloned and
// invalidated.
func (s *System) InsertFact(rel string, vals ...Value) error {
	if err := s.alpha.InsertFact(rel, vals...); err != nil {
		return err
	}
	return s.walBarrier()
}

// InsertOp describes one row of an InsertBatch: the target relation
// (entity or fact, dispatched automatically) and its values.
type InsertOp = adb.InsertOp

// InsertBatch appends many rows — entity and fact rows may be mixed —
// into one copy-on-write epoch, amortizing the structure clones and
// the publish over the whole batch; concurrent discoveries are never
// blocked and observe the batch atomically. Batches into disjoint
// relations proceed in parallel. Rows apply in order; on the first
// failure the batch stops, already-applied rows stay (and publish),
// and the error reports the failing row's index. A partially applied
// batch skips the WAL durability barrier (the caller was told the
// batch failed); its surviving rows are logged and ride along with the
// next acknowledged write's barrier or the background flush.
func (s *System) InsertBatch(ops []InsertOp) error {
	if err := s.alpha.InsertBatch(ops); err != nil {
		return err
	}
	return s.walBarrier()
}

// InsertBatchContext is InsertBatch with trace attribution: when ctx
// carries a trace span (trace.NewContext), the lock wait, the
// copy-on-write apply, the epoch publish with its WAL append, and the
// WAL durability barrier each record a typed child span. ctx is used
// only for the span — an insert batch is not abortable mid-apply
// (append-only maintenance has no rollback), so cancellation is not
// consulted. Without a span it behaves exactly like InsertBatch.
func (s *System) InsertBatchContext(ctx context.Context, ops []InsertOp) error {
	sp := trace.SpanFrom(ctx)
	if err := s.alpha.InsertBatchT(ops, sp); err != nil {
		return err
	}
	bs := sp.Child(trace.PhaseWALBarrier, "")
	err := s.walBarrier()
	bs.End()
	return err
}

// SetBatchWorkers bounds the DiscoverBatch worker pool; n ≤ 0 restores
// the default (GOMAXPROCS). Not synchronized: call before sharing the
// System across goroutines.
func (s *System) SetBatchWorkers(n int) { s.batchWorkers = n }

// DiscoverBatch runs the online phase for many independent example sets
// concurrently over the shared αDB: example sets fan out across a
// bounded worker pool (SetBatchWorkers; default GOMAXPROCS), and
// similar intents reuse each other's memoized selectivity row sets.
// Inserts may run concurrently; each set pins the epoch current at its
// dispatch (sets dispatched after an insert publishes see its rows).
//
// The returned slice is parallel to exampleSets; entries whose
// discovery failed are nil, and the error is the join of the per-set
// failures wrapped with their index (errors.Is still matches the
// sentinels, e.g. ErrNoEntities). When ctx is canceled, undispatched
// sets stay nil, in-flight sets abort at their next cancellation check
// (the abduction consults ctx between candidate evaluations, see
// DiscoverContext), both are recorded as ctx's error, and the joined
// error also matches ctx.Err(); sets that finished before the
// cancellation keep their results either way.
func (s *System) DiscoverBatch(ctx context.Context, exampleSets [][]string) ([]*Discovery, error) {
	out, errs := s.DiscoverBatchDetailed(ctx, exampleSets)
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("example set %d: %w", i, err))
		}
	}
	return out, errors.Join(failed...)
}

// DiscoverBatchDetailed is DiscoverBatch returning the per-set errors
// as a slice parallel to exampleSets instead of one joined error:
// callers that relay failures individually (the HTTP batch endpoint)
// get each set's cause without parsing error text. A set canceled by
// ctx — whether undispatched or aborted in flight — reports ctx's bare
// error.
func (s *System) DiscoverBatchDetailed(ctx context.Context, exampleSets [][]string) ([]*Discovery, []error) {
	out := make([]*Discovery, len(exampleSets))
	errs := make([]error, len(exampleSets))
	if len(exampleSets) == 0 {
		return out, errs
	}
	workers := s.batchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exampleSets) {
		workers = len(exampleSets)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], errs[i] = s.discoverCtx(ctx, exampleSets[i], disambig.Resolve)
			}
		}()
	}
	dispatched := len(exampleSets)
dispatch:
	for i := range exampleSets {
		select {
		case jobs <- i:
		case <-ctx.Done():
			dispatched = i
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		switch {
		case err != nil:
			// A discovery aborted by the batch's own cancellation is
			// reported as ctx's bare error, exactly like an undispatched
			// set: the caller sees one uniform cancellation shape.
			if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
				errs[i] = cerr
			}
		case i >= dispatched:
			errs[i] = ctx.Err()
		}
	}
	return out, errs
}

// DiscoverWithoutDisambiguation runs discovery with ambiguity resolved
// arbitrarily (first match); used by the Fig 12 ablation.
func (s *System) DiscoverWithoutDisambiguation(examples []string) (*Discovery, error) {
	//lint:ignore ctxpoll non-cancellable ablation wrapper; discoverCtx threads the real context
	return s.discoverCtx(context.Background(), examples, nil)
}

func (s *System) discoverCtx(ctx context.Context, examples []string, resolver abduction.Resolver) (*Discovery, error) {
	// Pin one epoch across discovery and result materialization (wrap
	// reads relation columns for OutputValues and SQL rendering): the
	// whole read path — example resolution, statistics, output rows —
	// answers from this immutable state, wait-free.
	ep := s.alpha.Snapshot()
	// A traced discovery records which epoch it pinned: latency
	// attribution needs to know what state the request ran against.
	trace.SpanFrom(ctx).Add(trace.CounterEpochSeq, int64(ep.Seq()))
	results, err := abduction.DiscoverCtx(ctx, ep, examples, s.params, resolver)
	if err != nil {
		return nil, fmt.Errorf("squid: %w", err)
	}
	return s.wrap(results[0]), nil
}

func (s *System) wrap(res *abduction.Result) *Discovery {
	return &Discovery{
		Entity:    res.Base.Entity,
		Attribute: res.Base.Attr,
		SQL:       sqlgen.AlphaSQL(res),
		Original:  sqlgen.OriginalSQL(res),
		Filters:   res.Filters,
		Decisions: res.Decisions,
		Output:    res.OutputValues(),
		result:    res,
	}
}

// Explain renders the full abduction reasoning of the discovery as a
// deterministic text block: the base query, both SQL forms, and every
// candidate filter's Algorithm 1 decision (selectivity, include/exclude
// scores, chosen or not). It is the introspection surface of cmd/squid's
// -show-candidates flag, and snapshot tests assert it is byte-identical
// across a Save/Load round trip.
func (d *Discovery) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "base query: %s.%s\n", d.Entity, d.Attribute)
	fmt.Fprintf(&b, "-- abduced query (aDB form):\n%s\n", d.SQL)
	fmt.Fprintf(&b, "-- equivalent query (original schema):\n%s\n", d.Original)
	fmt.Fprintf(&b, "-- candidate filters (Algorithm 1 decisions):\n")
	for _, dec := range d.Decisions {
		mark := " "
		if dec.Included {
			mark = "*"
		}
		fmt.Fprintf(&b, " %s %-50s psi=%.6f include=%.6g exclude=%.6g\n",
			mark, dec.Filter.String(), dec.Selectivity, dec.Include, dec.Exclude)
	}
	fmt.Fprintf(&b, "-- output: %d rows\n", len(d.Output))
	return b.String()
}

// PredicateCount reports the number of join and selection predicates of
// the abduced query (the Figs 14/15 metric).
func (d *Discovery) PredicateCount() (joins, selections int) {
	return sqlgen.PredicateCount(d.result)
}

// RecommendExamples suggests up to k values the user could confirm next
// to sharpen the abduction (the paper's §9 example-recommendation
// direction): entities in the current output whose confirmation would
// prune the most borderline candidate filters.
func (d *Discovery) RecommendExamples(k int) []string {
	return abduction.RecommendExamples(d.result, k)
}

// Plan lowers the abduced query to an executable engine plan over the
// combined database returned by ExecutableDB.
func (d *Discovery) Plan() *Query { return sqlgen.ToEngineQuery(d.result) }

// Result exposes the raw abduction result for experiment harnesses.
func (d *Discovery) Result() *abduction.Result { return d.result }

// ExecutableDB returns the database (original + derived relations)
// against which Plan() queries run.
func (s *System) ExecutableDB() *Database { return s.alpha.CombinedDB() }

// Execute runs a logical query plan against the combined database of
// the current epoch. Point and range predicates push down into the
// epoch's index view, which structurally shares warm indexes across
// epochs, so repeated executions skip re-planning setup. Execution is
// wait-free with respect to inserts: it pins one epoch and can never
// be stalled by (or stall) a writer.
func (s *System) Execute(q *Query) (*ExecResult, error) {
	//lint:ignore ctxpoll non-cancellable convenience wrapper; ExecuteContext is the ctx-threading entry point
	return s.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute with cooperative cancellation: the engine
// consults ctx between pipeline stages and every few thousand tuples
// inside joins, so a canceled or deadline-expired context aborts even a
// pathological query instead of pinning an admission slot behind
// runaway work. The returned error wraps ctx's error; match it with
// errors.Is.
func (s *System) ExecuteContext(ctx context.Context, q *Query) (*ExecResult, error) {
	ep := s.alpha.Snapshot()
	exec := engine.NewExecutorWithIndexes(ep.CombinedDB(), ep.Indexes)
	return exec.ExecuteCtx(ctx, q)
}
