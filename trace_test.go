package squid

import (
	"context"
	"strings"
	"testing"

	"squid/internal/trace"
)

var traceExamples = []string{"Dan Suciu", "Sam Madden", "Joseph Hellerstein"}

// TestDiscoverUntracedAddsNoAllocs pins the tracing contract's "disabled
// is free" half at the Discover level: threading a context that never
// saw a recorder (or saw only the zero Span, which NewContext drops)
// through the whole pipeline allocates exactly as much as the plain
// path — the instrumentation is inert without a recorder.
func TestDiscoverUntracedAddsNoAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("AllocsPerRun counts jitter under the race detector's instrumentation")
	}
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Warm the selectivity cache and every lazy structure first, so the
	// two measurements see identical state.
	for i := 0; i < 3; i++ {
		if _, err := sys.DiscoverContext(ctx, traceExamples); err != nil {
			t.Fatal(err)
		}
	}
	plain := testing.AllocsPerRun(50, func() {
		if _, err := sys.DiscoverContext(ctx, traceExamples); err != nil {
			t.Fatal(err)
		}
	})
	zeroSpan := testing.AllocsPerRun(50, func() {
		tctx := trace.NewContext(ctx, trace.Span{})
		if _, err := sys.DiscoverContext(tctx, traceExamples); err != nil {
			t.Fatal(err)
		}
	})
	if zeroSpan != plain {
		t.Errorf("zero-span context costs %.1f allocs/op, plain context %.1f: disabled tracing is not free", zeroSpan, plain)
	}
}

// TestTraceStructureDeterministicAcrossWorkers pins the tracing
// contract's determinism half: the duration-free span structure (phase
// names, nesting, labels, counters) of a traced discovery is
// byte-identical at every Params.Workers setting. Each worker count
// gets a fresh system, so cache counters start from the same state.
//
// The fixture's example set resolves to a single candidate base query;
// with one candidate, no two worker units can race the same
// selectivity-cache key, so even the hit/miss counters are
// scheduling-independent.
func TestTraceStructureDeterministicAcrossWorkers(t *testing.T) {
	structureAt := func(workers int) string {
		sys, err := Build(academicsDB(), DefaultBuildConfig())
		if err != nil {
			t.Fatal(err)
		}
		p := sys.Params()
		p.Workers = workers
		sys.SetParams(p)
		rec := trace.NewRecorder(0)
		root := rec.Root(trace.PhaseDiscover, "")
		ctx := trace.NewContext(context.Background(), root)
		if _, err := sys.DiscoverContext(ctx, traceExamples); err != nil {
			t.Fatal(err)
		}
		root.End()
		tr := rec.Finish("discover", "")
		if tr.Dropped != 0 {
			t.Fatalf("workers=%d dropped %d spans", workers, tr.Dropped)
		}
		return tr.Structure()
	}

	serial := structureAt(1)
	if !strings.Contains(serial, "candidate academics.name") {
		t.Fatalf("serial structure missing the single candidate span:\n%s", serial)
	}
	if n := strings.Count(serial, "candidate "); n != 1 {
		t.Fatalf("fixture resolved to %d candidates, the determinism check needs exactly 1:\n%s", n, serial)
	}
	for _, w := range []int{2, 4, 8} {
		if got := structureAt(w); got != serial {
			t.Errorf("workers=%d span structure diverges from serial:\n--- serial ---\n%s--- workers=%d ---\n%s", w, serial, w, got)
		}
	}
}

// BenchmarkDiscoveryTracing measures the span recorder's cost on one
// end-to-end discovery: the disabled arm is the BenchmarkDiscovery
// baseline path (no recorder), the enabled arm pays one recorder
// allocation plus wait-free span begins per request.
func BenchmarkDiscoveryTracing(b *testing.B) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sys.DiscoverContext(ctx, traceExamples); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec := trace.NewRecorder(0)
			root := rec.Root(trace.PhaseDiscover, "")
			if _, err := sys.DiscoverContext(trace.NewContext(ctx, root), traceExamples); err != nil {
				b.Fatal(err)
			}
			root.End()
			rec.Finish("discover", "")
		}
	})
}
