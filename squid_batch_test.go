package squid

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestDiscoverBatchMatchesSerial(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]string{
		{"Dan Suciu", "Sam Madden", "Joseph Hellerstein"},
		{"Thomas Cormen", "James Kurose"},
		{"Dan Suciu", "Jiawei Han"},
	}
	batch, err := sys.DiscoverBatch(context.Background(), sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(sets) {
		t.Fatalf("batch returned %d results want %d", len(batch), len(sets))
	}
	for i, set := range sets {
		serial, err := sys.Discover(set)
		if err != nil {
			t.Fatalf("serial discover %d: %v", i, err)
		}
		if batch[i] == nil {
			t.Fatalf("batch result %d is nil", i)
		}
		if batch[i].SQL != serial.SQL {
			t.Errorf("set %d: batch SQL %q != serial %q", i, batch[i].SQL, serial.SQL)
		}
		if !reflect.DeepEqual(batch[i].Output, serial.Output) {
			t.Errorf("set %d: outputs diverge", i)
		}
	}
}

func TestDiscoverBatchPartialFailure(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]string{
		{"Dan Suciu", "Sam Madden"},
		{"No Such Person", "Equally Missing"},
		{},
	}
	results, err := sys.DiscoverBatch(context.Background(), sets)
	if err == nil {
		t.Fatal("expected a joined error for the failing sets")
	}
	if !errors.Is(err, ErrNoEntities) {
		t.Errorf("joined error does not match ErrNoEntities: %v", err)
	}
	if !errors.Is(err, ErrNoExamples) {
		t.Errorf("joined error does not match ErrNoExamples: %v", err)
	}
	if results[0] == nil || results[0].Entity != "academics" {
		t.Error("healthy set did not produce a discovery")
	}
	if results[1] != nil || results[2] != nil {
		t.Error("failed sets should yield nil discoveries")
	}
}

func TestDiscoverBatchEmptyAndCancel(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sys.DiscoverBatch(context.Background(), nil); err != nil || len(res) != 0 {
		t.Errorf("empty batch: res=%v err=%v", res, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sets := make([][]string, 64)
	for i := range sets {
		sets[i] = []string{"Dan Suciu", "Sam Madden"}
	}
	if _, err := sys.DiscoverBatch(ctx, sets); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled batch returned %v", err)
	}
}

// TestDiscoverBatchCancellationSemantics pins the documented contract
// under cancellation: every set either completed (non-nil result, no
// failure recorded) or was never dispatched (nil result, its index
// reported with ctx.Err()); the joined error matches ctx.Err(). The
// example sets are all valid, so cancellation is the only failure mode.
func TestDiscoverBatchCancellationSemantics(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.SetBatchWorkers(2)
	check := func(t *testing.T, ctx context.Context, cancelMidFlight func()) {
		sets := make([][]string, 48)
		for i := range sets {
			sets[i] = []string{"Dan Suciu", "Sam Madden"}
		}
		if cancelMidFlight != nil {
			go cancelMidFlight()
		}
		res, err := sys.DiscoverBatch(ctx, sets)
		if len(res) != len(sets) {
			t.Fatalf("got %d results want %d", len(res), len(sets))
		}
		if err == nil {
			// The whole batch outran the cancellation; nothing to check.
			for i, d := range res {
				if d == nil {
					t.Errorf("set %d nil without any error", i)
				}
			}
			return
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("joined error does not match ctx.Err(): %v", err)
		}
		msg := err.Error()
		for i, d := range res {
			reported := strings.Contains(msg, fmt.Sprintf("example set %d: %s", i, context.Canceled))
			if d == nil && !reported {
				t.Errorf("set %d: nil result but not reported as canceled", i)
			}
			if d != nil && reported {
				t.Errorf("set %d: completed but reported as canceled", i)
			}
		}
	}
	t.Run("pre-canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		check(t, ctx, nil)
	})
	t.Run("mid-flight", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		check(t, ctx, func() { cancel() })
	})
}

// TestFilterStatsPinnedAcrossInsert pins the epoch contract of returned
// discoveries: a Filter held from a prior discovery stays pinned to the
// epoch it ran against — introspecting it after an insert keeps
// answering from that epoch's statistics (snapshot isolation), while a
// fresh discovery's filter sees the post-insert state.
func TestFilterStatsPinnedAcrossInsert(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	examples := []string{"Dan Suciu", "Sam Madden", "Joseph Hellerstein"}
	interestFilter := func(d *Discovery) *Filter {
		for _, dec := range d.Decisions {
			if dec.Filter.Value() == "data management" {
				return dec.Filter
			}
		}
		return nil
	}
	disc, err := sys.Discover(examples)
	if err != nil {
		t.Fatal(err)
	}
	f := interestFilter(disc)
	if f == nil {
		t.Fatal("interest filter not among candidates")
	}
	before := len(f.EntityRows())
	psiBefore := f.Selectivity()

	// Thomas Cormen (id 100, row 0) picks up the interest.
	if err := sys.InsertFact("research", IntVal(100), StringVal("data management")); err != nil {
		t.Fatal(err)
	}
	if got := f.EntityRows(); len(got) != before {
		t.Errorf("pinned filter's EntityRows moved to %d, want the epoch's %d", len(got), before)
	}
	if f.Selectivity() != psiBefore {
		t.Errorf("pinned filter's selectivity moved to %v from %v", f.Selectivity(), psiBefore)
	}

	// A fresh discovery pins the post-insert epoch and sees the new row.
	disc2, err := sys.Discover(examples)
	if err != nil {
		t.Fatal(err)
	}
	f2 := interestFilter(disc2)
	if f2 == nil {
		t.Fatal("interest filter missing from fresh discovery")
	}
	if got := f2.EntityRows(); len(got) != before+1 {
		t.Errorf("fresh filter's EntityRows = %d want %d", len(got), before+1)
	}
	if f2.Selectivity() <= psiBefore {
		t.Errorf("fresh filter's selectivity %v did not grow from %v", f2.Selectivity(), psiBefore)
	}
}

// TestDiscoverBatchHammer fans many concurrent batches over one shared
// System; under -race it proves the read path (inverted index, property
// statistics, selectivity cache, lazy index pool, engine executor) is
// concurrency-safe.
func TestDiscoverBatchHammer(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.SetBatchWorkers(4)
	sets := [][]string{
		{"Dan Suciu", "Sam Madden", "Joseph Hellerstein"},
		{"Thomas Cormen", "James Kurose"},
		{"Dan Suciu", "Joseph Hellerstein"},
		{"Jiawei Han", "Dan Suciu"},
	}
	want, err := sys.Discover(sets[0])
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				res, err := sys.DiscoverBatch(context.Background(), sets)
				if err != nil {
					t.Errorf("batch failed: %v", err)
					return
				}
				if res[0] == nil || res[0].SQL != want.SQL {
					t.Error("concurrent batch diverged from serial result")
					return
				}
				// Exercise the shared engine executor concurrently too.
				if _, err := sys.Execute(res[0].Plan()); err != nil {
					t.Errorf("execute failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
