package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"squid"
	"squid/internal/experiments"
	"squid/internal/index"
	"squid/internal/trace"
)

// DiscoverArm is one worker-count arm of the single-discovery latency
// experiment.
type DiscoverArm struct {
	Workers int     `json:"workers"`
	P50MS   float64 `json:"p50_ms"`
	P99MS   float64 `json:"p99_ms"`
	MeanMS  float64 `json:"mean_ms"`
}

// DiscoverResult is the single-discovery latency measurement: cold-cache
// Discover latency per worker count, the serial-vs-max-parallel summary
// the CI baseline comparison tracks, and the byte-identity verdict
// (parallel output must equal serial output exactly — the tentpole's
// correctness contract).
type DiscoverResult struct {
	Dataset            string        `json:"dataset"`
	Sets               int           `json:"sets"`
	RunsPerArm         int           `json:"runs_per_arm"`
	SerialP50MS        float64       `json:"serial_p50_ms"`
	SerialP99MS        float64       `json:"serial_p99_ms"`
	ParallelWorkers    int           `json:"parallel_workers"`
	ParallelP50MS      float64       `json:"parallel_p50_ms"`
	ParallelP99MS      float64       `json:"parallel_p99_ms"`
	ParallelSpeedupP50 float64       `json:"parallel_speedup_p50"`
	OutputIdentical    bool          `json:"output_identical"`
	Arms               []DiscoverArm `json:"arms"`
	// SerialPhaseP50MS is the per-phase breakdown of the exact serial run
	// percentileMS picked as p50 (leaf spans of its trace), so the
	// breakdown and SerialP50MS describe the same discovery and the
	// phases' sum is bounded by it — the invariant CI asserts.
	SerialPhaseP50MS map[string]float64 `json:"serial_phase_p50_ms"`
	// SerialPhaseP50SumMS is the sum of SerialPhaseP50MS.
	SerialPhaseP50SumMS float64 `json:"serial_phase_p50_sum_ms"`

	// Scale-track surfaces (never omitted — CI asserts their presence):
	// cold-cache serial latency with every row set forced into the
	// pre-adaptive dense-only representation (the A/B baseline the
	// adaptive form must not lose to), and the warm selectivity cache's
	// row-set memory under both accountings. The identity check also
	// covers the dense-only arm, so these numbers always describe
	// byte-identical output.
	DenseP50MS         float64 `json:"dense_p50_ms"`
	DenseVsAdaptiveP50 float64 `json:"dense_vs_adaptive_p50"`
	// RowSetResidentBytes is what the warm cache's sets actually occupy;
	// RowSetDenseBytes is what the same sets would occupy dense-only.
	RowSetResidentBytes int64   `json:"rowset_resident_bytes"`
	RowSetDenseBytes    int64   `json:"rowset_dense_bytes"`
	RowSetSavings       float64 `json:"rowset_savings_ratio"`
	// Form composition of the warm cache (how many sets adapted sparse
	// vs stayed dense) — the context for reading RowSetSavings.
	RowSetSparseSets int `json:"rowset_sparse_sets"`
	RowSetDenseSets  int `json:"rowset_dense_sets"`
}

// discoverWorkerArms returns the worker counts to measure: 1, 2, 4, and
// GOMAXPROCS, deduplicated and ascending (on a single-core machine this
// collapses to [1]).
func discoverWorkerArms() []int {
	seen := map[int]bool{}
	var arms []int
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if w >= 1 && !seen[w] {
			seen[w] = true
			arms = append(arms, w)
		}
	}
	sort.Ints(arms)
	return arms
}

// setDiscoverWorkers points Params.Workers at w (the bench driver is
// single-goroutine, so the unsynchronized setter is safe here).
func setDiscoverWorkers(sys *squid.System, w int) {
	p := sys.Params()
	p.Workers = w
	sys.SetParams(p)
}

// discoverFingerprint renders one discovery to the deterministic byte
// form the identity check compares across worker counts: the full
// Explain block (base query, both SQL forms, every Algorithm 1 decision)
// plus the projected output values. Resolution failures fingerprint as
// their error text, so an arm that starts failing differently is caught
// too.
func discoverFingerprint(sys *squid.System, examples []string) string {
	d, err := sys.Discover(examples)
	if err != nil {
		return "error: " + err.Error()
	}
	fp := d.Explain()
	for _, v := range d.Output {
		fp += v + "\n"
	}
	return fp
}

// runDiscoverExperiment measures single-discovery latency serial vs
// parallel: for each worker count (1/2/4/GOMAXPROCS) it runs every IMDb
// example set with a cold selectivity cache — the novel-intent case a
// waiting user actually experiences; warm-cache repeats are map reads
// regardless of workers — and reports p50/p99 per arm plus the
// serial-vs-parallel speedup. Before timing, it verifies that every
// worker count produces byte-identical output to the serial path and
// fails loudly otherwise.
func runDiscoverExperiment(sc experiments.Scale, scale, fixture, jsonPath string) error {
	report := Report{
		Scale:     scale,
		GoVersion: runtime.Version(),
		GOMAXPROC: runtime.GOMAXPROCS(0),
		UnixTime:  time.Now().Unix(),
	}
	wl, err := setupWorkload(sc, scale, fixture)
	if err != nil {
		return err
	}
	sys, sets := wl.sys, wl.sets
	if len(sets) == 0 {
		return fmt.Errorf("discover: no example sets")
	}
	arms := discoverWorkerArms()
	runs := 3
	if scale == "test" || scale == "gen1m" {
		runs = 2
	}
	cache := sys.AlphaDB().SelectivityCache()

	// Byte-identity check first: every arm must reproduce the serial
	// fingerprint of every set exactly — across worker counts AND across
	// the row-set representation change (the dense-only baseline must
	// produce the same bytes the adaptive form does).
	identical := true
	reference := make([]string, len(sets))
	setDiscoverWorkers(sys, 1)
	for i, ex := range sets {
		reference[i] = discoverFingerprint(sys, ex)
	}
	for _, w := range arms[1:] {
		setDiscoverWorkers(sys, w)
		for i, ex := range sets {
			if fp := discoverFingerprint(sys, ex); fp != reference[i] {
				identical = false
				fmt.Printf("OUTPUT MISMATCH: set %d with %d workers diverges from serial\n", i, w)
			}
		}
	}
	setDiscoverWorkers(sys, 1)
	index.SetDenseOnly(true)
	cache.Invalidate() // adaptive sets must not serve the dense-only arm
	for i, ex := range sets {
		if fp := discoverFingerprint(sys, ex); fp != reference[i] {
			identical = false
			fmt.Printf("OUTPUT MISMATCH: set %d under dense-only row sets diverges from adaptive\n", i)
		}
	}
	index.SetDenseOnly(false)
	cache.Invalidate()
	if !identical {
		// Keep going so the report records the failure, but make the
		// run's exit status reflect it.
		err = fmt.Errorf("discover: output not byte-identical across workers/representations")
	}

	res := DiscoverResult{
		Dataset:         wl.dataset,
		Sets:            len(sets),
		RunsPerArm:      runs,
		OutputIdentical: identical,
	}
	// The serial arm is traced: each run carries a span recorder, so the
	// report can pair the p50 latency with that exact run's per-phase
	// breakdown (on the serial path the leaf phases partition the
	// request, so their sum is bounded by the run's wall time).
	var serialLats []time.Duration
	var serialTraces []*trace.Trace
	for _, w := range arms {
		setDiscoverWorkers(sys, w)
		var lats []time.Duration
		var total time.Duration
		for run := 0; run < runs; run++ {
			for _, ex := range sets {
				// Cold cache per discovery: the measurement is the
				// latency of a novel intent, the case parallelism is for.
				cache.Invalidate()
				var d time.Duration
				if w == 1 {
					rec := trace.NewRecorder(0)
					root := rec.Root(trace.PhaseDiscover, "")
					ctx := trace.NewContext(context.Background(), root)
					t0 := time.Now()
					_, _ = sys.DiscoverContext(ctx, ex)
					d = time.Since(t0)
					root.End()
					serialTraces = append(serialTraces, rec.Finish("discover", ""))
				} else {
					t0 := time.Now()
					_, _ = sys.Discover(ex)
					d = time.Since(t0)
				}
				lats = append(lats, d)
				total += d
			}
		}
		if w == 1 {
			serialLats = lats
		}
		arm := DiscoverArm{
			Workers: w,
			P50MS:   percentileMS(lats, 0.50),
			P99MS:   percentileMS(lats, 0.99),
			MeanMS:  msOf(total) / float64(len(lats)),
		}
		res.Arms = append(res.Arms, arm)
	}
	serial, parallel := res.Arms[0], res.Arms[len(res.Arms)-1]
	res.SerialP50MS = serial.P50MS
	res.SerialP99MS = serial.P99MS
	res.ParallelWorkers = parallel.Workers
	res.ParallelP50MS = parallel.P50MS
	res.ParallelP99MS = parallel.P99MS
	if parallel.P50MS > 0 {
		res.ParallelSpeedupP50 = serial.P50MS / parallel.P50MS
	}

	// Dense-only A/B arm: the same cold-cache serial measurement with
	// every row set forced into the pre-adaptive dense representation.
	// The adaptive form must hold p50 at or below this baseline while
	// spending a fraction of the memory.
	index.SetDenseOnly(true)
	setDiscoverWorkers(sys, 1)
	var denseLats []time.Duration
	for run := 0; run < runs; run++ {
		for _, ex := range sets {
			cache.Invalidate()
			t0 := time.Now()
			_, _ = sys.Discover(ex)
			denseLats = append(denseLats, time.Since(t0))
		}
	}
	index.SetDenseOnly(false)
	res.DenseP50MS = percentileMS(denseLats, 0.50)
	if res.SerialP50MS > 0 {
		res.DenseVsAdaptiveP50 = res.DenseP50MS / res.SerialP50MS
	}

	// Warm-cache row-set memory: drop the dense-only sets, then fill the
	// cache with one pass over every set (no invalidation between — the
	// serving steady state) and read both accountings off the same sets.
	cache.Invalidate()
	for _, ex := range sets {
		_, _ = sys.Discover(ex)
	}
	st := sys.Stats()
	res.RowSetResidentBytes = st.SelCacheRowSetBytes
	res.RowSetDenseBytes = st.SelCacheDenseBytes
	res.RowSetSparseSets = st.SelCacheSparseSets
	res.RowSetDenseSets = st.SelCacheDenseSets
	if res.RowSetResidentBytes > 0 {
		res.RowSetSavings = float64(res.RowSetDenseBytes) / float64(res.RowSetResidentBytes)
	}

	// Recover the exact serial run percentileMS reported as p50 and
	// attach its phase breakdown; the same trace becomes the sample
	// artifact CI uploads.
	var p50Trace *trace.Trace
	if len(serialTraces) > 0 {
		order := make([]int, len(serialLats))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return serialLats[order[a]] < serialLats[order[b]] })
		p50Trace = serialTraces[order[percentileRank(len(order), 0.50)]]
		res.SerialPhaseP50MS = make(map[string]float64)
		for phase, d := range p50Trace.PhaseTotals() {
			ms := msOf(d)
			res.SerialPhaseP50MS[phase] = ms
			res.SerialPhaseP50SumMS += ms
		}
	}
	report.Discover = append(report.Discover, res)
	report.PeakRSSKB = peakRSSKB()

	fmt.Printf("single-discovery latency (cold cache), %s scale, %d sets x %d runs per arm\n",
		scale, res.Sets, res.RunsPerArm)
	for _, a := range res.Arms {
		fmt.Printf("  workers %2d  p50 %8.2fms  p99 %8.2fms  mean %8.2fms\n",
			a.Workers, a.P50MS, a.P99MS, a.MeanMS)
	}
	fmt.Printf("  parallel speedup (p50, %d workers vs serial): %.2fx; output identical: %v\n",
		res.ParallelWorkers, res.ParallelSpeedupP50, res.OutputIdentical)
	fmt.Printf("  dense-only baseline p50 %.2fms (%.2fx vs adaptive serial)\n",
		res.DenseP50MS, res.DenseVsAdaptiveP50)
	fmt.Printf("  cached row sets: %s resident, %s dense-equivalent (%.1fx savings; %d sparse, %d dense)\n",
		humanBytes(res.RowSetResidentBytes), humanBytes(res.RowSetDenseBytes), res.RowSetSavings,
		res.RowSetSparseSets, res.RowSetDenseSets)
	if len(res.SerialPhaseP50MS) > 0 {
		phases := make([]string, 0, len(res.SerialPhaseP50MS))
		for p := range res.SerialPhaseP50MS {
			phases = append(phases, p)
		}
		sort.Strings(phases)
		fmt.Printf("  serial p50 phases (sum %.2fms of %.2fms):", res.SerialPhaseP50SumMS, res.SerialP50MS)
		for _, p := range phases {
			fmt.Printf(" %s=%.2fms", p, res.SerialPhaseP50MS[p])
		}
		fmt.Println()
	}
	if werr := writeReport(report, jsonPath); werr != nil {
		return werr
	}
	if werr := writeSampleTrace(p50Trace, jsonPath); werr != nil {
		return werr
	}
	return err
}

// writeSampleTrace writes the serial p50 run's full span tree next to
// the -json report (<report>.trace.json), the sample trace CI uploads
// as an artifact. Skipped for stdout reports and untraced runs.
func writeSampleTrace(t *trace.Trace, jsonPath string) error {
	if t == nil || jsonPath == "" || jsonPath == "-" {
		return nil
	}
	out, err := json.MarshalIndent(t.JSON(), "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(jsonPath+".trace.json", out, 0o644)
}
