// Command squid-bench runs the experiment harness that regenerates every
// table and figure of the paper's evaluation on the synthetic datasets.
//
// Usage:
//
//	squid-bench -list
//	squid-bench -exp fig10
//	squid-bench -exp all [-scale full|test]
//	squid-bench -exp all -json bench.json   # machine-readable timings
//
// With -json the harness also measures the pipeline phases (dataset
// generation, αDB construction, batch discovery throughput) and writes a
// JSON report with per-phase wall times and rows/sec, so the benchmark
// trajectory (BENCH_*.json) can be tracked across commits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"squid"
	"squid/internal/datagen"
	"squid/internal/experiments"
)

// Phase is one timed step of the benchmark report.
type Phase struct {
	ID         string  `json:"id"`
	WallMS     float64 `json:"wall_ms"`
	Rows       int     `json:"rows,omitempty"`
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
	Runs       int     `json:"runs,omitempty"`
	PerRunMS   float64 `json:"per_run_ms,omitempty"`
}

// Report is the machine-readable benchmark output.
type Report struct {
	Scale     string  `json:"scale"`
	GoVersion string  `json:"go_version"`
	GOMAXPROC int     `json:"gomaxprocs"`
	UnixTime  int64   `json:"unix_time"`
	Phases    []Phase `json:"phases"`
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run (see -list), or \"all\"")
		scale    = flag.String("scale", "full", "dataset scale: full or test")
		list     = flag.Bool("list", false, "list available experiments")
		jsonPath = flag.String("json", "", "write a machine-readable timing report to this path (\"-\" = stdout)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Description)
		}
		fmt.Println("  all      run everything")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "full":
		sc = experiments.FullScale()
	case "test":
		sc = experiments.TestScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want full or test)\n", *scale)
		os.Exit(2)
	}
	suite := experiments.NewSuite(sc)

	if *jsonPath != "" {
		if err := runJSON(suite, *scale, *exp, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "squid-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *exp == "all" {
		experiments.RunAll(suite, os.Stdout)
		return
	}
	runner, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	runner.Run(suite, os.Stdout)
}

// runJSON measures the pipeline phases plus the selected experiments and
// writes the report.
func runJSON(suite *experiments.Suite, scale, exp, path string) error {
	// Validate the selection before paying for the pipeline phases.
	runners := experiments.Registry()
	if exp != "all" {
		runner, ok := experiments.Lookup(exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q; use -list", exp)
		}
		runners = []experiments.Runner{runner}
	}
	report := Report{
		Scale:     scale,
		GoVersion: runtime.Version(),
		GOMAXPROC: runtime.GOMAXPROCS(0),
		UnixTime:  time.Now().Unix(),
	}
	timed := func(id string, rows int, fn func()) {
		start := time.Now()
		fn()
		wall := time.Since(start)
		p := Phase{ID: id, WallMS: msOf(wall), Rows: rows}
		if rows > 0 && wall > 0 {
			p.RowsPerSec = float64(rows) / wall.Seconds()
		}
		report.Phases = append(report.Phases, p)
	}

	// Offline pipeline phases on the IMDb dataset: generation, αDB
	// build (the Fig 18 precomputation), then online batch-discovery
	// throughput through the public API. The row count is only known
	// after generation, so the phase is patched up afterwards.
	var g *datagen.IMDb
	timed("generate:imdb", 0, func() { g = datagen.GenerateIMDb(suite.Scale.IMDb) })
	rows := g.DB.TotalRows()
	last := &report.Phases[len(report.Phases)-1]
	last.Rows = rows
	if last.WallMS > 0 {
		last.RowsPerSec = float64(rows) / (last.WallMS / 1e3)
	}

	var sys *squid.System
	timed("alphadb-build:imdb", rows, func() {
		var err error
		sys, err = squid.Build(g.DB, squid.DefaultBuildConfig())
		if err != nil {
			panic(err)
		}
	})

	// Batch discovery: the funny-actors intent at several |E| plus
	// sliding windows of plain person names, fanned across the worker
	// pool.
	person := g.DB.Relation("person")
	nameOf := func(id int64) (string, bool) {
		r, ok := sys.AlphaDB().Entity("person").RowByID(id)
		if !ok {
			return "", false
		}
		return person.Column("name").Get(r).Str(), true
	}
	var sets [][]string
	for _, k := range []int{5, 10, 15, 20} {
		if k > len(g.Comedians) {
			break
		}
		var ex []string
		for _, id := range g.Comedians[:k] {
			name, ok := nameOf(id)
			if !ok {
				return fmt.Errorf("comedian id %d has no αDB row; dataset and αDB drifted", id)
			}
			ex = append(ex, name)
		}
		sets = append(sets, ex)
	}
	for i := 0; i+3 < person.NumRows() && len(sets) < 16; i += 7 {
		sets = append(sets, []string{
			person.Column("name").Get(i).Str(),
			person.Column("name").Get(i + 1).Str(),
			person.Column("name").Get(i + 2).Str(),
		})
	}
	if len(sets) > 0 {
		start := time.Now()
		if _, err := sys.DiscoverBatch(context.Background(), sets); err != nil {
			// Individual sets may legitimately fail to resolve; only
			// abort on systemic errors.
			fmt.Fprintln(os.Stderr, "note: batch discovery reported:", err)
		}
		wall := time.Since(start)
		report.Phases = append(report.Phases, Phase{
			ID:       "discover-batch:imdb",
			WallMS:   msOf(wall),
			Runs:     len(sets),
			PerRunMS: msOf(wall) / float64(len(sets)),
		})
	}

	// Experiment harness phases.
	for _, r := range runners {
		runner := r
		timed("exp:"+runner.ID, 0, func() { runner.Run(suite, io.Discard) })
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

func msOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
