// Command squid-bench runs the experiment harness that regenerates every
// table and figure of the paper's evaluation on the synthetic datasets.
//
// Usage:
//
//	squid-bench -list
//	squid-bench -exp fig10
//	squid-bench -exp all [-scale full|test]
package main

import (
	"flag"
	"fmt"
	"os"

	"squid/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run (see -list), or \"all\"")
		scale = flag.String("scale", "full", "dataset scale: full or test")
		list  = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Description)
		}
		fmt.Println("  all      run everything")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "full":
		sc = experiments.FullScale()
	case "test":
		sc = experiments.TestScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want full or test)\n", *scale)
		os.Exit(2)
	}
	suite := experiments.NewSuite(sc)

	if *exp == "all" {
		experiments.RunAll(suite, os.Stdout)
		return
	}
	runner, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	runner.Run(suite, os.Stdout)
}
