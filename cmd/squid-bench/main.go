// Command squid-bench runs the experiment harness that regenerates every
// table and figure of the paper's evaluation on the synthetic datasets.
//
// Usage:
//
//	squid-bench -list
//	squid-bench -exp fig10
//	squid-bench -exp all [-scale full|test]
//	squid-bench -exp all -json bench.json   # machine-readable timings
//	squid-bench -exp build -json -          # offline-phase build-vs-load
//
// With -json the harness also measures the pipeline phases (dataset
// generation, αDB construction, batch discovery throughput) and writes a
// JSON report with per-phase wall times and rows/sec, so the benchmark
// trajectory (BENCH_*.json) can be tracked across commits.
//
// The build experiment (aliases: build, build-vs-load) measures the
// offline phase per dataset generator: serial vs parallel αDB
// construction, snapshot save/load against the cold build, the αDB heap
// footprint under dictionary encoding, and the process peak RSS.
//
// The mixed experiment (-exp mixed) measures the online phase under
// sustained ingest: reader goroutines run DiscoverBatch while a writer
// concurrently inserts fact rows (and occasional new entities) through
// InsertBatch, reporting discovery and insert throughput plus the
// selectivity-cache hit rate under per-property invalidation.
//
// The serve experiment (-exp serve) boots the network serving layer
// (internal/server) in-process on a loopback listener and drives mixed
// discover/execute/insert HTTP traffic from -conc client goroutines for
// -duration, reporting sustained throughput and client-observed
// p50/p95/p99 latency per operation class, then drains the server
// gracefully.
//
// The discover experiment (-exp discover) measures single-discovery
// latency with a cold selectivity cache across worker counts
// (1/2/4/GOMAXPROCS via Params.Workers), reports p50/p99 per arm and
// the serial-vs-parallel speedup, and verifies the parallel output is
// byte-identical to serial. It also runs a dense-only A/B arm (every
// row set forced into the pre-adaptive bitset representation) and
// reports the warm cache's row-set memory under both accountings. Its
// JSON report is the committed BENCH_discover.json baseline CI
// compares against.
//
// The discover and mixed experiments also run against the generated
// scale track (-scale gen100k or gen1m): the squid-gen retail schema
// at ~100k/~1M rows, with -fixture pointing at a snapshot to load (or
// to create on first run). The gen1m report is the committed
// BENCH_scale.json million-row baseline.
//
// -cpuprofile and -memprofile write pprof profiles of the run (the CPU
// profile covers the whole process; the heap profile is taken post-GC
// at exit), so hot-path regressions are diagnosable without editing
// code.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"squid"
	"squid/internal/buildinfo"
	"squid/internal/datagen"
	"squid/internal/experiments"
)

// Phase is one timed step of the benchmark report.
type Phase struct {
	ID         string  `json:"id"`
	WallMS     float64 `json:"wall_ms"`
	Rows       int     `json:"rows,omitempty"`
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
	Runs       int     `json:"runs,omitempty"`
	PerRunMS   float64 `json:"per_run_ms,omitempty"`
}

// BuildResult is one dataset's offline-phase measurement (the
// build-vs-load experiment).
type BuildResult struct {
	Dataset            string  `json:"dataset"`
	Rows               int     `json:"rows"`
	SerialBuildMS      float64 `json:"serial_build_ms"`
	ParallelBuildMS    float64 `json:"parallel_build_ms"`
	ParallelSpeedup    float64 `json:"parallel_speedup"`
	Workers            int     `json:"workers"`
	SnapshotBytes      int64   `json:"snapshot_bytes"`
	SnapshotSaveMS     float64 `json:"snapshot_save_ms"`
	SnapshotLoadMS     float64 `json:"snapshot_load_ms"`
	LoadVsBuildSpeedup float64 `json:"load_vs_build_speedup"`
	AlphaHeapBytes     int64   `json:"alpha_heap_bytes"`
	DBBytes            int64   `json:"db_bytes"`
	PrecomputedBytes   int64   `json:"precomputed_bytes"`
}

// MixedResult is the mixed read/write experiment measurement: batch
// discovery throughput sustained while writer goroutines ingest rows
// concurrently through the copy-on-write epoch path (a fact-ingest
// writer plus disjoint-relation entity writers), exercising the
// per-property cache invalidation, the per-relation writer locks, and
// the epoch combiner. Writer-observed publish latency (the wall time
// of each InsertBatch: copy-on-write apply + publish) and
// reader-observed discovery latency are reported as percentiles so the
// wait-free-read claim is visible in the artifact: discovery p99 must
// not move with ingest pressure.
type MixedResult struct {
	Dataset          string  `json:"dataset"`
	Readers          int     `json:"readers"`
	Writers          int     `json:"writers"`
	WallMS           float64 `json:"wall_ms"`
	Discoveries      int     `json:"discoveries"`
	DiscoverPerSec   float64 `json:"discoveries_per_sec"`
	DiscoverP50MS    float64 `json:"discover_p50_ms"`
	DiscoverP99MS    float64 `json:"discover_p99_ms"`
	InsertRows       int     `json:"insert_rows"`
	EntityInsertRows int     `json:"entity_insert_rows"`
	InsertBatchRows  int     `json:"insert_batch_rows"`
	InsertsPerSec    float64 `json:"inserts_per_sec"`
	PublishP50MS     float64 `json:"publish_p50_ms"`
	PublishP99MS     float64 `json:"publish_p99_ms"`
	EpochPublishes   uint64  `json:"epoch_publishes"`
	EpochCombines    uint64  `json:"epoch_combines"`
	CacheHits        uint64  `json:"cache_hits"`
	CacheMisses      uint64  `json:"cache_misses"`
	CacheEntries     int     `json:"cache_entries"`
}

// Report is the machine-readable benchmark output.
type Report struct {
	Scale     string           `json:"scale"`
	GoVersion string           `json:"go_version"`
	GOMAXPROC int              `json:"gomaxprocs"`
	UnixTime  int64            `json:"unix_time"`
	Phases    []Phase          `json:"phases,omitempty"`
	Build     []BuildResult    `json:"build,omitempty"`
	Mixed     []MixedResult    `json:"mixed,omitempty"`
	Serve     []ServeResult    `json:"serve,omitempty"`
	Discover  []DiscoverResult `json:"discover,omitempty"`
	PeakRSSKB int64            `json:"peak_rss_kb,omitempty"`
}

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id to run (see -list), or \"all\"")
		scale      = flag.String("scale", "full", "dataset scale: full, test, gen100k, or gen1m")
		fixture    = flag.String("fixture", "", "gen scales: snapshot fixture (.sqas) to load, or to generate when absent")
		list       = flag.Bool("list", false, "list available experiments")
		jsonPath   = flag.String("json", "", "write a machine-readable timing report to this path (\"-\" = stdout)")
		conc       = flag.Int("conc", 0, "serve experiment: concurrent HTTP clients (0 = 2x GOMAXPROCS)")
		duration   = flag.Duration("duration", 0, "serve experiment: load duration (0 = 5s full scale, 1.5s test scale)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a post-GC heap profile at exit to this file")
	)
	flag.Parse()

	// Build identity on stderr, so the report a run produced is always
	// attributable to a binary (stdout stays machine-readable for
	// -json -).
	fmt.Fprintln(os.Stderr, "squid-bench:", buildinfo.Get().String())

	// Profiles must be closed out on every exit path, so the experiment
	// dispatch lives in run() and returns an exit code instead of
	// calling os.Exit under an armed profiler.
	var cpuFile *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "squid-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "squid-bench:", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	code := run(*exp, *scale, *fixture, *list, *jsonPath, *conc, *duration)
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
	}
	if *memprofile != "" {
		if err := writeHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "squid-bench:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	if code != 0 {
		os.Exit(code)
	}
}

// writeHeapProfile forces a GC and writes the live-heap profile, so the
// numbers reflect retained memory (the αDB footprint), not garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// run dispatches the selected experiment and returns the process exit
// code (0 ok, 1 failure, 2 usage).
func run(exp, scale, fixture string, list bool, jsonPath string, conc int, duration time.Duration) int {
	if list || exp == "" {
		fmt.Println("available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Description)
		}
		fmt.Println("  build    offline phase: serial vs parallel build, snapshot save/load, heap, peak RSS")
		fmt.Println("  mixed    online phase: batch discovery concurrent with incremental ingest")
		fmt.Println("  serve    serving layer: mixed HTTP workload against a live internal/server instance")
		fmt.Println("  discover single-discovery latency: serial vs parallel workers, cold cache")
		fmt.Println("  all      run every paper experiment above (build/mixed/serve/discover run by name)")
		if exp == "" && !list {
			return 2
		}
		return 0
	}

	var sc experiments.Scale
	switch {
	case scale == "full":
		sc = experiments.FullScale()
	case scale == "test":
		sc = experiments.TestScale()
	case isGenScale(scale):
		// Generated (squid-gen) scales exist for the discover and mixed
		// experiments; the paper experiments are bound to the IMDb/DBLP
		// schemas.
		if exp != "discover" && exp != "mixed" {
			fmt.Fprintf(os.Stderr, "scale %q supports only -exp discover and -exp mixed\n", scale)
			return 2
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want full, test, gen100k, or gen1m)\n", scale)
		return 2
	}

	fail := func(err error) int {
		if err != nil {
			fmt.Fprintln(os.Stderr, "squid-bench:", err)
			return 1
		}
		return 0
	}
	switch exp {
	case "build", "build-vs-load":
		return fail(runBuildExperiment(sc, scale, jsonPath))
	case "mixed":
		return fail(runMixedExperiment(sc, scale, fixture, jsonPath))
	case "serve":
		return fail(runServeExperiment(sc, scale, jsonPath, conc, duration))
	case "discover":
		return fail(runDiscoverExperiment(sc, scale, fixture, jsonPath))
	}
	suite := experiments.NewSuite(sc)

	if jsonPath != "" {
		return fail(runJSON(suite, scale, exp, jsonPath))
	}

	if exp == "all" {
		experiments.RunAll(suite, os.Stdout)
		return 0
	}
	runner, ok := experiments.Lookup(exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", exp)
		return 2
	}
	runner.Run(suite, os.Stdout)
	return 0
}

// runJSON measures the pipeline phases plus the selected experiments and
// writes the report.
func runJSON(suite *experiments.Suite, scale, exp, path string) error {
	// Validate the selection before paying for the pipeline phases.
	runners := experiments.Registry()
	if exp != "all" {
		runner, ok := experiments.Lookup(exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q; use -list", exp)
		}
		runners = []experiments.Runner{runner}
	}
	report := Report{
		Scale:     scale,
		GoVersion: runtime.Version(),
		GOMAXPROC: runtime.GOMAXPROCS(0),
		UnixTime:  time.Now().Unix(),
	}
	timed := func(id string, rows int, fn func()) {
		start := time.Now()
		fn()
		wall := time.Since(start)
		p := Phase{ID: id, WallMS: msOf(wall), Rows: rows}
		if rows > 0 && wall > 0 {
			p.RowsPerSec = float64(rows) / wall.Seconds()
		}
		report.Phases = append(report.Phases, p)
	}

	// Offline pipeline phases on the IMDb dataset: generation, αDB
	// build (the Fig 18 precomputation), then online batch-discovery
	// throughput through the public API. The row count is only known
	// after generation, so the phase is patched up afterwards.
	var g *datagen.IMDb
	timed("generate:imdb", 0, func() { g = datagen.GenerateIMDb(suite.Scale.IMDb) })
	rows := g.DB.TotalRows()
	last := &report.Phases[len(report.Phases)-1]
	last.Rows = rows
	if last.WallMS > 0 {
		last.RowsPerSec = float64(rows) / (last.WallMS / 1e3)
	}

	var sys *squid.System
	timed("alphadb-build:imdb", rows, func() {
		var err error
		sys, err = squid.Build(g.DB, squid.DefaultBuildConfig())
		if err != nil {
			panic(err)
		}
	})

	// Batch discovery: the funny-actors intent at several |E| plus
	// sliding windows of plain person names, fanned across the worker
	// pool.
	sets, err := imdbExampleSets(g, sys)
	if err != nil {
		return err
	}
	if len(sets) > 0 {
		start := time.Now()
		if _, err := sys.DiscoverBatch(context.Background(), sets); err != nil {
			// Individual sets may legitimately fail to resolve; only
			// abort on systemic errors.
			fmt.Fprintln(os.Stderr, "note: batch discovery reported:", err)
		}
		wall := time.Since(start)
		report.Phases = append(report.Phases, Phase{
			ID:       "discover-batch:imdb",
			WallMS:   msOf(wall),
			Runs:     len(sets),
			PerRunMS: msOf(wall) / float64(len(sets)),
		})
	}

	// Experiment harness phases.
	for _, r := range runners {
		runner := r
		timed("exp:"+runner.ID, 0, func() { runner.Run(suite, io.Discard) })
	}
	return writeReport(report, path)
}

// writeReport renders the machine-readable report to path: "-" means
// stdout, "" skips the write (text-only run).
func writeReport(report Report, path string) error {
	if path == "" {
		return nil
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

func msOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// imdbExampleSets builds the batch-discovery workload over a generated
// IMDb dataset: the funny-actors intent at several |E| plus sliding
// windows of plain person names.
func imdbExampleSets(g *datagen.IMDb, sys *squid.System) ([][]string, error) {
	person := g.DB.Relation("person")
	nameOf := func(id int64) (string, bool) {
		r, ok := sys.AlphaDB().Entity("person").RowByID(id)
		if !ok {
			return "", false
		}
		return person.Column("name").Get(r).Str(), true
	}
	var sets [][]string
	for _, k := range []int{5, 10, 15, 20} {
		if k > len(g.Comedians) {
			break
		}
		var ex []string
		for _, id := range g.Comedians[:k] {
			name, ok := nameOf(id)
			if !ok {
				return nil, fmt.Errorf("comedian id %d has no αDB row; dataset and αDB drifted", id)
			}
			ex = append(ex, name)
		}
		sets = append(sets, ex)
	}
	for i := 0; i+3 < person.NumRows() && len(sets) < 16; i += 7 {
		sets = append(sets, []string{
			person.Column("name").Get(i).Str(),
			person.Column("name").Get(i + 1).Str(),
			person.Column("name").Get(i + 2).Str(),
		})
	}
	return sets, nil
}

// runBuildExperiment measures the offline phase for the IMDb and DBLP
// generators: serial vs parallel αDB construction, snapshot save/load
// against the cold build, the αDB heap footprint under dictionary
// encoding, and the process peak RSS. Text goes to stdout; -json writes
// the machine-readable report.
func runBuildExperiment(sc experiments.Scale, scale, jsonPath string) error {
	report := Report{
		Scale:     scale,
		GoVersion: runtime.Version(),
		GOMAXPROC: runtime.GOMAXPROCS(0),
		UnixTime:  time.Now().Unix(),
	}
	datasets := []struct {
		name string
		gen  func() *squid.Database
	}{
		{"imdb", func() *squid.Database { return datagen.GenerateIMDb(sc.IMDb).DB }},
		{"dblp", func() *squid.Database { return datagen.GenerateDBLP(sc.DBLP).DB }},
	}
	for _, d := range datasets {
		res, err := measureBuild(d.name, d.gen())
		if err != nil {
			return err
		}
		report.Build = append(report.Build, res)
	}
	report.PeakRSSKB = peakRSSKB()

	fmt.Printf("offline phase (build-vs-load), %s scale, %d workers\n", scale, runtime.GOMAXPROCS(0))
	for _, b := range report.Build {
		fmt.Printf("  %-6s %8d rows  build %8.1fms serial / %8.1fms parallel (%.2fx)\n",
			b.Dataset, b.Rows, b.SerialBuildMS, b.ParallelBuildMS, b.ParallelSpeedup)
		fmt.Printf("         snapshot %8d bytes  save %6.1fms  load %6.1fms (%.2fx vs cold build)\n",
			b.SnapshotBytes, b.SnapshotSaveMS, b.SnapshotLoadMS, b.LoadVsBuildSpeedup)
		fmt.Printf("         heap %s (db %s + precomputed %s, dictionary-encoded)\n",
			humanBytes(b.AlphaHeapBytes), humanBytes(b.DBBytes), humanBytes(b.PrecomputedBytes))
	}
	if report.PeakRSSKB > 0 {
		fmt.Printf("  peak RSS %s\n", humanBytes(report.PeakRSSKB*1024))
	}
	return writeReport(report, jsonPath)
}

// measureBuild runs the offline-phase measurements for one generated
// database.
func measureBuild(name string, db *squid.Database) (BuildResult, error) {
	res := BuildResult{Dataset: name, Rows: db.TotalRows(), Workers: runtime.GOMAXPROCS(0)}

	// Warmup build so serial and parallel timings see the same cache
	// state, then the serial baseline; both systems are dropped before
	// the heap probe.
	serialCfg := squid.DefaultBuildConfig()
	serialCfg.Workers = 1
	if _, err := squid.Build(db, serialCfg); err != nil {
		return res, err
	}
	runtime.GC()
	start := time.Now()
	if _, err := squid.Build(db, serialCfg); err != nil {
		return res, err
	}
	res.SerialBuildMS = msOf(time.Since(start))

	// Parallel build, bracketed with GC'd heap readings so the delta
	// approximates the αDB's resident footprint.
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start = time.Now()
	sys, err := squid.Build(db, squid.DefaultBuildConfig())
	if err != nil {
		return res, err
	}
	res.ParallelBuildMS = msOf(time.Since(start))
	runtime.GC()
	runtime.ReadMemStats(&m1)
	if m1.HeapAlloc > m0.HeapAlloc {
		res.AlphaHeapBytes = int64(m1.HeapAlloc - m0.HeapAlloc)
	}
	if res.ParallelBuildMS > 0 {
		res.ParallelSpeedup = res.SerialBuildMS / res.ParallelBuildMS
	}
	stats := sys.Stats()
	res.DBBytes = stats.DBBytes
	res.PrecomputedBytes = stats.PrecomputedSize

	// Snapshot round trip.
	var buf bytes.Buffer
	start = time.Now()
	if err := sys.Save(&buf); err != nil {
		return res, err
	}
	res.SnapshotSaveMS = msOf(time.Since(start))
	res.SnapshotBytes = int64(buf.Len())
	start = time.Now()
	loaded, err := squid.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return res, err
	}
	res.SnapshotLoadMS = msOf(time.Since(start))
	if res.SnapshotLoadMS > 0 {
		res.LoadVsBuildSpeedup = res.SerialBuildMS / res.SnapshotLoadMS
	}
	runtime.KeepAlive(loaded)
	runtime.KeepAlive(sys)
	return res, nil
}

// runMixedExperiment measures the online phase under sustained ingest:
// reader goroutines run DiscoverBatch in a loop while a fact writer
// ingests castinfo facts (with occasional new person entities) through
// InsertBatch and two disjoint-relation entity writers ingest person
// and movie rows in parallel (their write domains are disjoint, so the
// copy-on-write epoch scheme lets them commute; the combiner chains
// their publishes). It reports discovery and insert throughput,
// reader-observed discovery latency p50/p99 (which must stay flat
// under ingest — readers are wait-free), writer-observed publish
// latency p50/p99, the epoch publish/combine counters, and the
// selectivity-cache health — per-property invalidation keeps the hit
// rate up while the fact table grows.
func runMixedExperiment(sc experiments.Scale, scale, fixture, jsonPath string) error {
	report := Report{
		Scale:     scale,
		GoVersion: runtime.Version(),
		GOMAXPROC: runtime.GOMAXPROCS(0),
		UnixTime:  time.Now().Unix(),
	}
	w, err := setupWorkload(sc, scale, fixture)
	if err != nil {
		return err
	}
	sys, sets := w.sys, w.sets
	if len(sets) == 0 {
		return fmt.Errorf("mixed: no example sets")
	}

	readers := runtime.GOMAXPROCS(0) - 1
	if readers < 1 {
		readers = 1
	}
	const batchRows = 64
	const entityWriters = 2 // two disjoint entity write domains
	insertRows := 8192
	if scale == "test" {
		insertRows = 1024
	}

	var discoveries atomic.Int64
	var writerDone atomic.Bool
	var writerWall time.Duration
	// One error slot per writer: the goroutines never share a variable.
	writerErrs := make([]error, 1+entityWriters)
	discoverLat := make([][]time.Duration, readers)
	publishLat := make([][]time.Duration, 1+entityWriters)
	entityRows := make([]int, entityWriters)
	start := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				// Snapshot the flag first so every reader completes one
				// full round after the writer finishes (post-ingest
				// answers come from a fully maintained αDB).
				done := writerDone.Load()
				t0 := time.Now()
				res, err := sys.DiscoverBatch(context.Background(), sets)
				if err != nil {
					fmt.Fprintln(os.Stderr, "note: mixed discovery reported:", err)
				}
				discoverLat[r] = append(discoverLat[r], time.Since(t0))
				// Count only the sets that actually produced a
				// discovery, so a persistent online-phase regression
				// shows up as zero throughput instead of healthy noise.
				for _, d := range res {
					if d != nil {
						discoveries.Add(1)
					}
				}
				if done {
					return
				}
			}
		}(r)
	}
	// Writer 0: the fact-ingest workload (fact batches, with occasional
	// brand-new primary entities the facts reference).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			writerWall = time.Since(start)
			writerDone.Store(true)
		}()
		nextEntityID := int64(10_000_000) // clear of every generated id
		for off := 0; off < insertRows; off += batchRows {
			n := insertRows - off
			if n > batchRows {
				n = batchRows
			}
			ops := make([]squid.InsertOp, 0, n+1)
			injected := (off/batchRows)%8 == 0
			if injected {
				// Every eighth batch also ingests a brand-new entity the
				// following facts reference.
				ops = append(ops, w.mixed.newEntity(nextEntityID))
			}
			for k := 0; k < n; k++ {
				i := off + k
				pid := int64(i % w.mixed.numPrimary)
				if injected && k%16 == 0 {
					pid = nextEntityID
				}
				ops = append(ops, w.mixed.fact(i, pid))
			}
			if injected {
				nextEntityID++
			}
			t0 := time.Now()
			if err := sys.InsertBatch(ops); err != nil {
				writerErrs[0] = err
				return
			}
			publishLat[0] = append(publishLat[0], time.Since(t0))
		}
	}()
	// Writers 1..: disjoint-relation entity ingest, running until the
	// fact writer finishes. The two entity writers (person+movie for
	// IMDb, customer+product for the generated scales) have disjoint
	// write domains, so THEY build epochs in parallel and exercise the
	// publish combiner against each other; the fact writer's domain
	// covers both entities (its rows reference them), so it serializes
	// with either entity writer — epoch_combines therefore counts
	// entity-vs-entity combines.
	for ew := 0; ew < entityWriters; ew++ {
		wg.Add(1)
		go func(ew int) {
			defer wg.Done()
			id := int64(20_000_000 + ew*1_000_000)
			for batch := 0; !writerDone.Load(); batch++ {
				ops := make([]squid.InsertOp, 0, batchRows/4)
				for k := 0; k < batchRows/4; k++ {
					ops = append(ops, w.mixed.entity[ew%2](id))
					id++
				}
				t0 := time.Now()
				if err := sys.InsertBatch(ops); err != nil {
					writerErrs[1+ew] = err
					return
				}
				publishLat[1+ew] = append(publishLat[1+ew], time.Since(t0))
				entityRows[ew] += len(ops)
			}
		}(ew)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range writerErrs {
		if err != nil {
			return err
		}
	}
	if discoveries.Load() == 0 {
		return fmt.Errorf("mixed: no example set produced a discovery; online phase is broken")
	}

	var allDiscover, allPublish []time.Duration
	for _, ds := range discoverLat {
		allDiscover = append(allDiscover, ds...)
	}
	for _, ds := range publishLat {
		allPublish = append(allPublish, ds...)
	}
	totalEntityRows := 0
	for _, n := range entityRows {
		totalEntityRows += n
	}
	stats := sys.Stats()
	res := MixedResult{
		Dataset:          w.dataset,
		Readers:          readers,
		Writers:          1 + entityWriters,
		WallMS:           msOf(wall),
		Discoveries:      int(discoveries.Load()),
		DiscoverP50MS:    percentileMS(allDiscover, 0.50),
		DiscoverP99MS:    percentileMS(allDiscover, 0.99),
		InsertRows:       insertRows,
		EntityInsertRows: totalEntityRows,
		InsertBatchRows:  batchRows,
		PublishP50MS:     percentileMS(allPublish, 0.50),
		PublishP99MS:     percentileMS(allPublish, 0.99),
		EpochPublishes:   stats.EpochPublishes,
		EpochCombines:    stats.EpochCombines,
		CacheHits:        stats.SelCacheHits,
		CacheMisses:      stats.SelCacheMisses,
		CacheEntries:     stats.SelCacheEntries,
	}
	if wall > 0 {
		res.DiscoverPerSec = float64(res.Discoveries) / wall.Seconds()
	}
	// Insert throughput over the fact writer's own elapsed time: the
	// overall wall includes the readers' final post-ingest rounds,
	// which would understate ingest and couple it to discovery latency.
	if writerWall > 0 {
		res.InsertsPerSec = float64(insertRows+totalEntityRows) / writerWall.Seconds()
	}
	report.Mixed = append(report.Mixed, res)
	report.PeakRSSKB = peakRSSKB()

	fmt.Printf("online phase (mixed read/write), %s scale, %d readers + %d writers\n", scale, res.Readers, res.Writers)
	fmt.Printf("  %-6s %8.1fms wall  %6d discoveries (%8.1f/s, p50 %.2fms p99 %.2fms)\n",
		res.Dataset, res.WallMS, res.Discoveries, res.DiscoverPerSec, res.DiscoverP50MS, res.DiscoverP99MS)
	fmt.Printf("         %6d fact + %d entity rows ingested (%8.1f/s, batches of %d); publish p50 %.2fms p99 %.2fms\n",
		res.InsertRows, res.EntityInsertRows, res.InsertsPerSec, res.InsertBatchRows, res.PublishP50MS, res.PublishP99MS)
	fmt.Printf("         epochs: %d publishes, %d combines; selectivity cache: %d entries, %d hits / %d misses\n",
		res.EpochPublishes, res.EpochCombines, res.CacheEntries, res.CacheHits, res.CacheMisses)
	return writeReport(report, jsonPath)
}

// peakRSSKB reads the process's peak resident set (VmHWM) from
// /proc/self/status; 0 when unavailable (non-Linux).
func peakRSSKB() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
