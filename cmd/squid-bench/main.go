// Command squid-bench runs the experiment harness that regenerates every
// table and figure of the paper's evaluation on the synthetic datasets.
//
// Usage:
//
//	squid-bench -list
//	squid-bench -exp fig10
//	squid-bench -exp all [-scale full|test]
//	squid-bench -exp all -json bench.json   # machine-readable timings
//	squid-bench -exp build -json -          # offline-phase build-vs-load
//
// With -json the harness also measures the pipeline phases (dataset
// generation, αDB construction, batch discovery throughput) and writes a
// JSON report with per-phase wall times and rows/sec, so the benchmark
// trajectory (BENCH_*.json) can be tracked across commits.
//
// The build experiment (aliases: build, build-vs-load) measures the
// offline phase per dataset generator: serial vs parallel αDB
// construction, snapshot save/load against the cold build, the αDB heap
// footprint under dictionary encoding, and the process peak RSS.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"squid"
	"squid/internal/datagen"
	"squid/internal/experiments"
)

// Phase is one timed step of the benchmark report.
type Phase struct {
	ID         string  `json:"id"`
	WallMS     float64 `json:"wall_ms"`
	Rows       int     `json:"rows,omitempty"`
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
	Runs       int     `json:"runs,omitempty"`
	PerRunMS   float64 `json:"per_run_ms,omitempty"`
}

// BuildResult is one dataset's offline-phase measurement (the
// build-vs-load experiment).
type BuildResult struct {
	Dataset            string  `json:"dataset"`
	Rows               int     `json:"rows"`
	SerialBuildMS      float64 `json:"serial_build_ms"`
	ParallelBuildMS    float64 `json:"parallel_build_ms"`
	ParallelSpeedup    float64 `json:"parallel_speedup"`
	Workers            int     `json:"workers"`
	SnapshotBytes      int64   `json:"snapshot_bytes"`
	SnapshotSaveMS     float64 `json:"snapshot_save_ms"`
	SnapshotLoadMS     float64 `json:"snapshot_load_ms"`
	LoadVsBuildSpeedup float64 `json:"load_vs_build_speedup"`
	AlphaHeapBytes     int64   `json:"alpha_heap_bytes"`
	DBBytes            int64   `json:"db_bytes"`
	PrecomputedBytes   int64   `json:"precomputed_bytes"`
}

// Report is the machine-readable benchmark output.
type Report struct {
	Scale     string        `json:"scale"`
	GoVersion string        `json:"go_version"`
	GOMAXPROC int           `json:"gomaxprocs"`
	UnixTime  int64         `json:"unix_time"`
	Phases    []Phase       `json:"phases,omitempty"`
	Build     []BuildResult `json:"build,omitempty"`
	PeakRSSKB int64         `json:"peak_rss_kb,omitempty"`
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run (see -list), or \"all\"")
		scale    = flag.String("scale", "full", "dataset scale: full or test")
		list     = flag.Bool("list", false, "list available experiments")
		jsonPath = flag.String("json", "", "write a machine-readable timing report to this path (\"-\" = stdout)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Description)
		}
		fmt.Println("  build    offline phase: serial vs parallel build, snapshot save/load, heap, peak RSS")
		fmt.Println("  all      run everything")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "full":
		sc = experiments.FullScale()
	case "test":
		sc = experiments.TestScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want full or test)\n", *scale)
		os.Exit(2)
	}
	suite := experiments.NewSuite(sc)

	if *exp == "build" || *exp == "build-vs-load" {
		if err := runBuildExperiment(sc, *scale, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "squid-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *jsonPath != "" {
		if err := runJSON(suite, *scale, *exp, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "squid-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *exp == "all" {
		experiments.RunAll(suite, os.Stdout)
		return
	}
	runner, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	runner.Run(suite, os.Stdout)
}

// runJSON measures the pipeline phases plus the selected experiments and
// writes the report.
func runJSON(suite *experiments.Suite, scale, exp, path string) error {
	// Validate the selection before paying for the pipeline phases.
	runners := experiments.Registry()
	if exp != "all" {
		runner, ok := experiments.Lookup(exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q; use -list", exp)
		}
		runners = []experiments.Runner{runner}
	}
	report := Report{
		Scale:     scale,
		GoVersion: runtime.Version(),
		GOMAXPROC: runtime.GOMAXPROCS(0),
		UnixTime:  time.Now().Unix(),
	}
	timed := func(id string, rows int, fn func()) {
		start := time.Now()
		fn()
		wall := time.Since(start)
		p := Phase{ID: id, WallMS: msOf(wall), Rows: rows}
		if rows > 0 && wall > 0 {
			p.RowsPerSec = float64(rows) / wall.Seconds()
		}
		report.Phases = append(report.Phases, p)
	}

	// Offline pipeline phases on the IMDb dataset: generation, αDB
	// build (the Fig 18 precomputation), then online batch-discovery
	// throughput through the public API. The row count is only known
	// after generation, so the phase is patched up afterwards.
	var g *datagen.IMDb
	timed("generate:imdb", 0, func() { g = datagen.GenerateIMDb(suite.Scale.IMDb) })
	rows := g.DB.TotalRows()
	last := &report.Phases[len(report.Phases)-1]
	last.Rows = rows
	if last.WallMS > 0 {
		last.RowsPerSec = float64(rows) / (last.WallMS / 1e3)
	}

	var sys *squid.System
	timed("alphadb-build:imdb", rows, func() {
		var err error
		sys, err = squid.Build(g.DB, squid.DefaultBuildConfig())
		if err != nil {
			panic(err)
		}
	})

	// Batch discovery: the funny-actors intent at several |E| plus
	// sliding windows of plain person names, fanned across the worker
	// pool.
	person := g.DB.Relation("person")
	nameOf := func(id int64) (string, bool) {
		r, ok := sys.AlphaDB().Entity("person").RowByID(id)
		if !ok {
			return "", false
		}
		return person.Column("name").Get(r).Str(), true
	}
	var sets [][]string
	for _, k := range []int{5, 10, 15, 20} {
		if k > len(g.Comedians) {
			break
		}
		var ex []string
		for _, id := range g.Comedians[:k] {
			name, ok := nameOf(id)
			if !ok {
				return fmt.Errorf("comedian id %d has no αDB row; dataset and αDB drifted", id)
			}
			ex = append(ex, name)
		}
		sets = append(sets, ex)
	}
	for i := 0; i+3 < person.NumRows() && len(sets) < 16; i += 7 {
		sets = append(sets, []string{
			person.Column("name").Get(i).Str(),
			person.Column("name").Get(i + 1).Str(),
			person.Column("name").Get(i + 2).Str(),
		})
	}
	if len(sets) > 0 {
		start := time.Now()
		if _, err := sys.DiscoverBatch(context.Background(), sets); err != nil {
			// Individual sets may legitimately fail to resolve; only
			// abort on systemic errors.
			fmt.Fprintln(os.Stderr, "note: batch discovery reported:", err)
		}
		wall := time.Since(start)
		report.Phases = append(report.Phases, Phase{
			ID:       "discover-batch:imdb",
			WallMS:   msOf(wall),
			Runs:     len(sets),
			PerRunMS: msOf(wall) / float64(len(sets)),
		})
	}

	// Experiment harness phases.
	for _, r := range runners {
		runner := r
		timed("exp:"+runner.ID, 0, func() { runner.Run(suite, io.Discard) })
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

func msOf(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// runBuildExperiment measures the offline phase for the IMDb and DBLP
// generators: serial vs parallel αDB construction, snapshot save/load
// against the cold build, the αDB heap footprint under dictionary
// encoding, and the process peak RSS. Text goes to stdout; -json writes
// the machine-readable report.
func runBuildExperiment(sc experiments.Scale, scale, jsonPath string) error {
	report := Report{
		Scale:     scale,
		GoVersion: runtime.Version(),
		GOMAXPROC: runtime.GOMAXPROCS(0),
		UnixTime:  time.Now().Unix(),
	}
	datasets := []struct {
		name string
		gen  func() *squid.Database
	}{
		{"imdb", func() *squid.Database { return datagen.GenerateIMDb(sc.IMDb).DB }},
		{"dblp", func() *squid.Database { return datagen.GenerateDBLP(sc.DBLP).DB }},
	}
	for _, d := range datasets {
		res, err := measureBuild(d.name, d.gen())
		if err != nil {
			return err
		}
		report.Build = append(report.Build, res)
	}
	report.PeakRSSKB = peakRSSKB()

	fmt.Printf("offline phase (build-vs-load), %s scale, %d workers\n", scale, runtime.GOMAXPROCS(0))
	for _, b := range report.Build {
		fmt.Printf("  %-6s %8d rows  build %8.1fms serial / %8.1fms parallel (%.2fx)\n",
			b.Dataset, b.Rows, b.SerialBuildMS, b.ParallelBuildMS, b.ParallelSpeedup)
		fmt.Printf("         snapshot %8d bytes  save %6.1fms  load %6.1fms (%.2fx vs cold build)\n",
			b.SnapshotBytes, b.SnapshotSaveMS, b.SnapshotLoadMS, b.LoadVsBuildSpeedup)
		fmt.Printf("         heap %s (db %s + precomputed %s, dictionary-encoded)\n",
			humanBytes(b.AlphaHeapBytes), humanBytes(b.DBBytes), humanBytes(b.PrecomputedBytes))
	}
	if report.PeakRSSKB > 0 {
		fmt.Printf("  peak RSS %s\n", humanBytes(report.PeakRSSKB*1024))
	}

	if jsonPath == "" {
		return nil
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if jsonPath == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(jsonPath, out, 0o644)
}

// measureBuild runs the offline-phase measurements for one generated
// database.
func measureBuild(name string, db *squid.Database) (BuildResult, error) {
	res := BuildResult{Dataset: name, Rows: db.TotalRows(), Workers: runtime.GOMAXPROCS(0)}

	// Warmup build so serial and parallel timings see the same cache
	// state, then the serial baseline; both systems are dropped before
	// the heap probe.
	serialCfg := squid.DefaultBuildConfig()
	serialCfg.Workers = 1
	if _, err := squid.Build(db, serialCfg); err != nil {
		return res, err
	}
	runtime.GC()
	start := time.Now()
	if _, err := squid.Build(db, serialCfg); err != nil {
		return res, err
	}
	res.SerialBuildMS = msOf(time.Since(start))

	// Parallel build, bracketed with GC'd heap readings so the delta
	// approximates the αDB's resident footprint.
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start = time.Now()
	sys, err := squid.Build(db, squid.DefaultBuildConfig())
	if err != nil {
		return res, err
	}
	res.ParallelBuildMS = msOf(time.Since(start))
	runtime.GC()
	runtime.ReadMemStats(&m1)
	if m1.HeapAlloc > m0.HeapAlloc {
		res.AlphaHeapBytes = int64(m1.HeapAlloc - m0.HeapAlloc)
	}
	if res.ParallelBuildMS > 0 {
		res.ParallelSpeedup = res.SerialBuildMS / res.ParallelBuildMS
	}
	stats := sys.Stats()
	res.DBBytes = stats.DBBytes
	res.PrecomputedBytes = stats.PrecomputedSize

	// Snapshot round trip.
	var buf bytes.Buffer
	start = time.Now()
	if err := sys.Save(&buf); err != nil {
		return res, err
	}
	res.SnapshotSaveMS = msOf(time.Since(start))
	res.SnapshotBytes = int64(buf.Len())
	start = time.Now()
	loaded, err := squid.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return res, err
	}
	res.SnapshotLoadMS = msOf(time.Since(start))
	if res.SnapshotLoadMS > 0 {
		res.LoadVsBuildSpeedup = res.SerialBuildMS / res.SnapshotLoadMS
	}
	runtime.KeepAlive(loaded)
	runtime.KeepAlive(sys)
	return res, nil
}

// peakRSSKB reads the process's peak resident set (VmHWM) from
// /proc/self/status; 0 when unavailable (non-Linux).
func peakRSSKB() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
