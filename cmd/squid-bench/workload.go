package main

import (
	"fmt"
	"os"

	"squid"
	"squid/internal/datagen"
	"squid/internal/experiments"
)

// mixedSchema adapts the mixed read/write experiment's writer
// goroutines to a dataset schema: how to mint a fresh primary entity,
// how to phrase a fact row, and the two disjoint-domain entity writers
// that exercise the epoch combiner against each other.
type mixedSchema struct {
	// numPrimary is the modulo base for a fact's default primary-entity
	// reference (persons for IMDb, customers for the generated scales).
	numPrimary int
	// newEntity mints the primary entity the fact writer occasionally
	// ingests ahead of facts that reference it.
	newEntity func(id int64) squid.InsertOp
	// fact phrases fact row i referencing primary-entity pid.
	fact func(i int, pid int64) squid.InsertOp
	// entity are the two disjoint-relation entity writers.
	entity [2]func(id int64) squid.InsertOp
}

// benchWorkload bundles a dataset for the discover and mixed
// experiments: the built system, the example sets, and the mixed
// experiment's schema adapters.
type benchWorkload struct {
	dataset string
	sys     *squid.System
	sets    [][]string
	mixed   mixedSchema
}

// isGenScale reports whether scale names a generated (squid-gen)
// dataset scale.
func isGenScale(scale string) bool {
	_, ok := datagen.GenScaleConfig(scale)
	return ok
}

// setupWorkload builds the dataset for the discover and mixed
// experiments: the IMDb generator for full/test scales, the
// schema-aware generator for gen100k/gen1m — loading the fixture
// snapshot when it exists, generating (and saving it, when a path is
// given) otherwise.
func setupWorkload(sc experiments.Scale, scale, fixture string) (*benchWorkload, error) {
	if !isGenScale(scale) {
		return setupIMDbWorkload(sc)
	}
	return setupGenWorkload(scale, fixture)
}

func setupIMDbWorkload(sc experiments.Scale) (*benchWorkload, error) {
	g := datagen.GenerateIMDb(sc.IMDb)
	sys, err := squid.Build(g.DB, squid.DefaultBuildConfig())
	if err != nil {
		return nil, err
	}
	sets, err := imdbExampleSets(g, sys)
	if err != nil {
		return nil, err
	}
	numPersons := g.DB.Relation("person").NumRows()
	numMovies := g.DB.Relation("movie").NumRows()
	return &benchWorkload{
		dataset: "imdb",
		sys:     sys,
		sets:    sets,
		mixed: mixedSchema{
			numPrimary: numPersons,
			newEntity: func(id int64) squid.InsertOp {
				return squid.InsertOp{Rel: "person", Vals: []squid.Value{
					squid.IntVal(id),
					squid.StringVal(fmt.Sprintf("Ingested Person %d", id)),
					squid.StringVal("Female"),
					squid.IntVal(1980),
					squid.IntVal(0),
				}}
			},
			fact: func(i int, pid int64) squid.InsertOp {
				return squid.InsertOp{Rel: "castinfo", Vals: []squid.Value{
					squid.IntVal(pid),
					squid.IntVal(int64((i * 7) % numMovies)),
					squid.IntVal(0),
				}}
			},
			entity: [2]func(id int64) squid.InsertOp{
				func(id int64) squid.InsertOp {
					return squid.InsertOp{Rel: "person", Vals: []squid.Value{
						squid.IntVal(id),
						squid.StringVal(fmt.Sprintf("Disjoint Person %d", id)),
						squid.StringVal("Male"),
						squid.IntVal(1975),
						squid.IntVal(0),
					}}
				},
				func(id int64) squid.InsertOp {
					return squid.InsertOp{Rel: "movie", Vals: []squid.Value{
						squid.IntVal(id),
						squid.StringVal(fmt.Sprintf("Disjoint Movie %d", id)),
						squid.IntVal(1999),
						squid.StringVal("1990s"),
						squid.StringVal("PG-13"),
						squid.IntVal(0),
					}}
				},
			},
		},
	}, nil
}

func setupGenWorkload(scale, fixture string) (*benchWorkload, error) {
	cfg, _ := datagen.GenScaleConfig(scale)
	var sys *squid.System
	if fixture != "" {
		if f, err := os.Open(fixture); err == nil {
			loaded, lerr := squid.Load(f)
			f.Close()
			if lerr != nil {
				return nil, fmt.Errorf("fixture %s: %w", fixture, lerr)
			}
			sys = loaded
			fmt.Fprintf(os.Stderr, "squid-bench: loaded %s fixture %s\n", scale, fixture)
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	if sys == nil {
		g := datagen.GenerateGen(cfg)
		built, err := squid.Build(g.DB, squid.DefaultBuildConfig())
		if err != nil {
			return nil, err
		}
		sys = built
		if fixture != "" {
			f, err := os.Create(fixture)
			if err != nil {
				return nil, err
			}
			if err := sys.Save(f); err != nil {
				f.Close()
				return nil, fmt.Errorf("fixture %s: %w", fixture, err)
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "squid-bench: wrote %s fixture %s\n", scale, fixture)
		}
	}
	// A fixture generated at another scale or seed would silently skew
	// every number; the example sets are derived from the config, so the
	// entity cardinalities must match exactly.
	db := sys.AlphaDB().Snapshot().DB
	for _, rel := range []string{"customer", "product", "purchase"} {
		if db.Relation(rel) == nil {
			return nil, fmt.Errorf("fixture %s: relation %q missing (not a squid-gen snapshot?)", fixture, rel)
		}
	}
	if got := db.Relation("customer").NumRows(); got != cfg.NumCustomers {
		return nil, fmt.Errorf("fixture %s: %d customers, scale %s wants %d (regenerate with squid-gen)",
			fixture, got, scale, cfg.NumCustomers)
	}
	numProducts := db.Relation("product").NumRows()
	return &benchWorkload{
		dataset: scale,
		sys:     sys,
		sets:    datagen.GenExampleSets(cfg),
		mixed: mixedSchema{
			numPrimary: cfg.NumCustomers,
			newEntity: func(id int64) squid.InsertOp {
				return squid.InsertOp{Rel: "customer", Vals: []squid.Value{
					squid.IntVal(id),
					squid.StringVal(fmt.Sprintf("Ingested Customer %d", id)),
					squid.IntVal(35),
					squid.IntVal(0),
					squid.IntVal(0),
				}}
			},
			fact: func(i int, pid int64) squid.InsertOp {
				return squid.InsertOp{Rel: "purchase", Vals: []squid.Value{
					squid.IntVal(pid),
					squid.IntVal(int64((i * 7) % numProducts)),
					squid.IntVal(0),
				}}
			},
			entity: [2]func(id int64) squid.InsertOp{
				func(id int64) squid.InsertOp {
					return squid.InsertOp{Rel: "customer", Vals: []squid.Value{
						squid.IntVal(id),
						squid.StringVal(fmt.Sprintf("Disjoint Customer %d", id)),
						squid.IntVal(40),
						squid.IntVal(0),
						squid.IntVal(0),
					}}
				},
				func(id int64) squid.InsertOp {
					return squid.InsertOp{Rel: "product", Vals: []squid.Value{
						squid.IntVal(id),
						squid.StringVal(fmt.Sprintf("Disjoint Product %d", id)),
						squid.FloatVal(19.99),
						squid.IntVal(0),
					}}
				},
			},
		},
	}, nil
}
