package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"squid"
	"squid/internal/datagen"
	"squid/internal/experiments"
	"squid/internal/server"
)

// ServeOpResult is the latency profile of one operation class of the
// serve experiment (client-observed, over HTTP).
type ServeOpResult struct {
	Op     string  `json:"op"`
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// ServeResult is the serve experiment measurement: mixed
// discover/execute/insert traffic against a live internal/server
// instance over loopback HTTP.
type ServeResult struct {
	Dataset     string          `json:"dataset"`
	Concurrency int             `json:"concurrency"`
	MaxInFlight int             `json:"max_inflight"`
	WallMS      float64         `json:"wall_ms"`
	Requests    int             `json:"requests"`
	PerSec      float64         `json:"requests_per_sec"`
	Shed429     int             `json:"shed_429"`
	Errors      int             `json:"errors"`
	Ops         []ServeOpResult `json:"ops"`
}

// runServeExperiment boots internal/server in-process on a loopback
// listener and drives a mixed workload — 1/2 discover, 1/4 execute,
// 1/4 insert — from conc client goroutines for the given duration,
// reporting throughput and client-observed p50/p95/p99 latency per
// operation class. Overload shedding (429) is counted separately so the
// latency profile reflects served requests only.
func runServeExperiment(sc experiments.Scale, scale, jsonPath string, conc int, duration time.Duration) error {
	report := Report{
		Scale:     scale,
		GoVersion: runtime.Version(),
		GOMAXPROC: runtime.GOMAXPROCS(0),
		UnixTime:  time.Now().Unix(),
	}
	if conc <= 0 {
		conc = 2 * runtime.GOMAXPROCS(0)
	}
	if duration <= 0 {
		duration = 5 * time.Second
		if scale == "test" {
			duration = 1500 * time.Millisecond
		}
	}

	g := datagen.GenerateIMDb(sc.IMDb)
	sys, err := squid.Build(g.DB, squid.DefaultBuildConfig())
	if err != nil {
		return err
	}
	maxInFlight := runtime.GOMAXPROCS(0)
	srv := server.New(sys, server.Config{
		MaxInFlight:    maxInFlight,
		RequestTimeout: 30 * time.Second,
	})
	httpSrv := &http.Server{Handler: srv}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	client := &http.Client{
		Timeout: time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        conc * 2,
			MaxIdleConnsPerHost: conc * 2,
		},
	}

	// Pre-marshal the request bodies. Discover bodies come from the
	// planted-intent example sets; the execute body is the plan of one
	// discovery done over the wire, proving the discover→execute loop
	// closes over HTTP.
	sets, err := imdbExampleSets(g, sys)
	if err != nil {
		return err
	}
	if len(sets) == 0 {
		return fmt.Errorf("serve: no example sets")
	}
	discoverBodies := make([][]byte, len(sets))
	for i, set := range sets {
		discoverBodies[i], _ = json.Marshal(server.DiscoverRequest{Examples: set})
	}
	var seed server.DiscoverResponse
	status, err := postServe(client, base+"/v1/discover", discoverBodies[0], &seed)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("serve: seed discovery failed (status %d, err %v)", status, err)
	}
	executeBody, _ := json.Marshal(server.ExecuteRequest{Query: seed.Query})

	numPersons := g.DB.Relation("person").NumRows()
	numMovies := g.DB.Relation("movie").NumRows()

	// opLats[k] collects per-op latencies; workers keep local slices and
	// merge at the end, so the hot loop takes no lock.
	const (
		opDiscover = 0
		opExecute  = 1
		opInsert   = 2
	)
	opNames := []string{"discover", "execute", "insert"}
	merged := make([][]time.Duration, 3)
	var mergeMu sync.Mutex
	var shed, errCount atomic.Int64

	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := make([][]time.Duration, 3)
			seq := 0
			for time.Now().Before(deadline) {
				seq++
				var op int
				switch seq % 4 {
				case 0, 1:
					op = opDiscover
				case 2:
					op = opExecute
				default:
					op = opInsert
				}
				var body []byte
				var url string
				switch op {
				case opDiscover:
					url = base + "/v1/discover"
					body = discoverBodies[(id+seq)%len(discoverBodies)]
				case opExecute:
					url = base + "/v1/execute"
					body = executeBody
				case opInsert:
					url = base + "/v1/insert"
					i := id*1_000_003 + seq
					body, _ = json.Marshal(server.InsertRequest{
						Rel: "castinfo",
						Values: []any{
							float64(i % numPersons),
							float64((i * 7) % numMovies),
							float64(0),
						},
					})
				}
				start := time.Now()
				status, err := postServe(client, url, body, nil)
				lat := time.Since(start)
				switch {
				case err != nil:
					errCount.Add(1)
				case status == http.StatusTooManyRequests:
					shed.Add(1)
				case status == http.StatusOK:
					local[op] = append(local[op], lat)
				default:
					errCount.Add(1)
				}
			}
			mergeMu.Lock()
			for k := range local {
				merged[k] = append(merged[k], local[k]...)
			}
			mergeMu.Unlock()
		}(w)
	}
	start := time.Now()
	wg.Wait()
	wall := time.Since(start)
	if wall < duration {
		wall = duration
	}

	// Graceful drain closes the loop on the serving lifecycle.
	srv.BeginDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	if err := srv.Finalize(); err != nil {
		return fmt.Errorf("serve: finalize: %w", err)
	}

	res := ServeResult{
		Dataset:     "imdb",
		Concurrency: conc,
		MaxInFlight: maxInFlight,
		WallMS:      msOf(wall),
		Shed429:     int(shed.Load()),
		Errors:      int(errCount.Load()),
	}
	for k, lats := range merged {
		if len(lats) == 0 {
			continue
		}
		res.Requests += len(lats)
		res.Ops = append(res.Ops, ServeOpResult{
			Op:     opNames[k],
			Count:  len(lats),
			MeanMS: meanMS(lats),
			P50MS:  percentileMS(lats, 0.50),
			P95MS:  percentileMS(lats, 0.95),
			P99MS:  percentileMS(lats, 0.99),
		})
	}
	if res.Requests == 0 {
		return fmt.Errorf("serve: no request succeeded (%d errors)", res.Errors)
	}
	res.PerSec = float64(res.Requests) / wall.Seconds()
	report.Serve = append(report.Serve, res)
	report.PeakRSSKB = peakRSSKB()

	fmt.Printf("serving layer (mixed HTTP workload), %s scale, %d clients over loopback\n", scale, conc)
	fmt.Printf("  %-6s %8.1fms wall  %6d requests (%8.1f/s)  %d shed (429), %d errors\n",
		res.Dataset, res.WallMS, res.Requests, res.PerSec, res.Shed429, res.Errors)
	for _, op := range res.Ops {
		fmt.Printf("         %-9s %6d reqs  mean %7.2fms  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms\n",
			op.Op, op.Count, op.MeanMS, op.P50MS, op.P95MS, op.P99MS)
	}
	return writeReport(report, jsonPath)
}

// postServe POSTs a pre-marshaled JSON body, optionally decoding the
// response; the body is always drained so connections are reused.
func postServe(client *http.Client, url string, body []byte, out any) (int, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func meanMS(lats []time.Duration) float64 {
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	return msOf(sum) / float64(len(lats))
}

// percentileMS returns the q-quantile (nearest-rank) of the latencies.
func percentileMS(lats []time.Duration, q float64) float64 {
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return msOf(sorted[percentileRank(len(sorted), q)])
}

// percentileRank is percentileMS's nearest-rank pick as a sorted-order
// index, so callers can recover which sample the quantile reports (the
// discover experiment pairs the p50 latency with that run's trace).
func percentileRank(n int, q float64) int {
	rank := int(math.Ceil(q*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return rank
}
