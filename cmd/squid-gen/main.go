// Command squid-gen generates the schema-aware synthetic datasets of
// the million-row scale track and emits them as snapshot fixtures the
// existing loaders ingest (squid.Load / squid-bench -fixture /
// squid-server -snapshot).
//
// Usage:
//
//	squid-gen -scale gen1m -out gen1m.sqas
//	squid-gen -scale gen100k -seed 7 -out smoke.sqas
//	squid-gen -customers 25000 -products 8000 -facts 300000 -out custom.sqas
//
// The generator is deterministic: the same scale and seed always
// produce byte-identical databases (and therefore identical discovery
// output), so committed baselines stay comparable across runs and
// machines. The fixture is written atomically (temp file + rename) —
// an interrupted run never leaves a truncated snapshot behind.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"squid"
	"squid/internal/buildinfo"
	"squid/internal/datagen"
)

func main() {
	var (
		scale     = flag.String("scale", "gen100k", "preset scale: gen100k or gen1m")
		seed      = flag.Int64("seed", 0, "override the preset's deterministic seed (0 = keep)")
		out       = flag.String("out", "", "output fixture path (.sqas); required")
		customers = flag.Int("customers", 0, "override customer entity cardinality (0 = preset)")
		products  = flag.Int("products", 0, "override product entity cardinality (0 = preset)")
		facts     = flag.Int("facts", 0, "override purchase fact rows (0 = preset)")
	)
	flag.Parse()
	fmt.Fprintln(os.Stderr, "squid-gen:", buildinfo.Get().String())
	if err := run(*scale, *seed, *out, *customers, *products, *facts); err != nil {
		fmt.Fprintln(os.Stderr, "squid-gen:", err)
		os.Exit(1)
	}
}

func run(scale string, seed int64, out string, customers, products, facts int) error {
	if out == "" {
		return fmt.Errorf("missing -out path")
	}
	cfg, ok := datagen.GenScaleConfig(scale)
	if !ok {
		return fmt.Errorf("unknown scale %q (want gen100k or gen1m)", scale)
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if customers > 0 {
		cfg.NumCustomers = customers
	}
	if products > 0 {
		cfg.NumProducts = products
	}
	if facts > 0 {
		cfg.NumFacts = facts
	}

	start := time.Now()
	g := datagen.GenerateGen(cfg)
	genWall := time.Since(start)
	rows := g.DB.TotalRows()

	start = time.Now()
	sys, err := squid.Build(g.DB, squid.DefaultBuildConfig())
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	buildWall := time.Since(start)

	// Atomic write: the fixture either fully exists or not at all.
	tmp, err := os.CreateTemp(filepath.Dir(out), ".squid-gen-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	start = time.Now()
	if err := sys.Save(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), out); err != nil {
		return err
	}
	saveWall := time.Since(start)
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}

	fmt.Printf("%s seed=%d: %d rows (%d customers, %d products, %d+ facts)\n",
		scale, cfg.Seed, rows, cfg.NumCustomers, cfg.NumProducts, cfg.NumFacts)
	fmt.Printf("  generate %v, build %v, save %v\n",
		genWall.Round(time.Millisecond), buildWall.Round(time.Millisecond), saveWall.Round(time.Millisecond))
	fmt.Printf("  fixture %s (%d bytes)\n", out, fi.Size())
	return nil
}
