// Command squid is an interactive query-by-example CLI over the bundled
// synthetic datasets: give it example values, get the abduced SQL query
// and its output.
//
// Usage:
//
//	squid -dataset imdb "Eddie Murphy" "Jim Carrey" "Robin Williams"
//	squid -dataset dblp -qre "Dr James Smith" ...
//	squid -dataset adult -show-candidates "James Smith #1" ...
//
// Flags select the dataset, the parameter preset, and how much of the
// abduction detail to print.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"squid"
	"squid/internal/datagen"
)

func main() {
	var (
		dataset    = flag.String("dataset", "imdb", "dataset: imdb, dblp, or adult")
		qre        = flag.Bool("qre", false, "use the optimistic QRE parameter preset (§7.5)")
		normalize  = flag.Bool("normalize", false, "normalize association strength (Fig 13a tuning)")
		rho        = flag.Float64("rho", 0, "override base filter prior ρ (0 = default)")
		candidates = flag.Bool("show-candidates", false, "print every candidate filter with its include/exclude scores")
		maxOut     = flag.Int("max-output", 20, "output rows to print")
	)
	flag.Parse()
	examples := flag.Args()
	if len(examples) == 0 {
		fmt.Fprintln(os.Stderr, "usage: squid [-dataset imdb|dblp|adult] example1 example2 ...")
		os.Exit(2)
	}

	var db *squid.Database
	switch *dataset {
	case "imdb":
		db = datagen.GenerateIMDb(datagen.DefaultIMDbConfig()).DB
	case "dblp":
		db = datagen.GenerateDBLP(datagen.DefaultDBLPConfig()).DB
	case "adult":
		db = datagen.GenerateAdult(datagen.DefaultAdultConfig()).DB
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	fmt.Printf("building abduction-ready database for %s ...\n", *dataset)
	start := time.Now()
	sys, err := squid.Build(db, squid.DefaultBuildConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "offline phase failed:", err)
		os.Exit(1)
	}
	fmt.Printf("αDB ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	params := squid.DefaultParams()
	if *qre {
		params = squid.QREParams()
	}
	if *normalize {
		params.NormalizeAssociation = true
	}
	if *rho > 0 {
		params.Rho = *rho
	}
	sys.SetParams(params)

	start = time.Now()
	disc, err := sys.Discover(examples)
	if err != nil {
		switch {
		case errors.Is(err, squid.ErrNoEntities):
			fmt.Fprintf(os.Stderr, "no entity in the %s dataset matches all %d examples.\n", *dataset, len(examples))
			fmt.Fprintln(os.Stderr, "Check the spelling of each example, or try fewer examples —")
			fmt.Fprintln(os.Stderr, "every example must denote the same kind of thing (all actors, all researchers, ...).")
		case errors.Is(err, squid.ErrNoExamples):
			fmt.Fprintln(os.Stderr, "no examples given; pass at least one example value.")
		default:
			fmt.Fprintln(os.Stderr, "discovery failed:", err)
		}
		os.Exit(1)
	}
	fmt.Printf("query intent discovered in %v (base query: %s.%s)\n\n",
		time.Since(start).Round(time.Microsecond), disc.Entity, disc.Attribute)

	fmt.Println("-- abduced query (αDB form):")
	fmt.Println(disc.SQL)
	fmt.Println()
	fmt.Println("-- equivalent query (original schema):")
	fmt.Println(disc.Original)
	fmt.Println()

	if *candidates {
		fmt.Println("-- candidate filters (Algorithm 1 decisions):")
		for _, d := range disc.Decisions {
			mark := " "
			if d.Included {
				mark = "*"
			}
			fmt.Printf(" %s %-50s psi=%.4f include=%.4g exclude=%.4g\n",
				mark, d.Filter.String(), d.Selectivity, d.Include, d.Exclude)
		}
		fmt.Println()
	}

	fmt.Printf("-- result (%d rows", len(disc.Output))
	if len(disc.Output) > *maxOut {
		fmt.Printf(", first %d shown", *maxOut)
	}
	fmt.Println("):")
	for i, v := range disc.Output {
		if i >= *maxOut {
			break
		}
		fmt.Println("  ", v)
	}
}
