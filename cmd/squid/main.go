// Command squid is an interactive query-by-example CLI over the bundled
// synthetic datasets: give it example values, get the abduced SQL query
// and its output.
//
// Usage:
//
//	squid -dataset imdb "Eddie Murphy" "Jim Carrey" "Robin Williams"
//	squid -dataset dblp -qre "Dr James Smith" ...
//	squid -dataset adult -show-candidates "James Smith #1" ...
//	squid -dataset imdb -snapshot /tmp/imdb.sqas "Eddie Murphy" ...
//
// Flags select the dataset, the parameter preset, and how much of the
// abduction detail to print. With -snapshot, the abduction-ready
// database is loaded from the given file when it exists (a warm boot,
// O(read)) and built-then-saved there when it does not, so only the
// first run pays the offline phase.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"squid"
	"squid/internal/datagen"
)

func main() {
	var (
		dataset    = flag.String("dataset", "imdb", "dataset: imdb, dblp, or adult")
		qre        = flag.Bool("qre", false, "use the optimistic QRE parameter preset (§7.5)")
		normalize  = flag.Bool("normalize", false, "normalize association strength (Fig 13a tuning)")
		rho        = flag.Float64("rho", 0, "override base filter prior ρ (0 = default)")
		candidates = flag.Bool("show-candidates", false, "print every candidate filter with its include/exclude scores")
		maxOut     = flag.Int("max-output", 20, "output rows to print")
		snapPath   = flag.String("snapshot", "", "αDB snapshot file: load it when present, build and save it otherwise")
	)
	flag.Parse()
	examples := flag.Args()
	if len(examples) == 0 {
		fmt.Fprintln(os.Stderr, "usage: squid [-dataset imdb|dblp|adult] example1 example2 ...")
		os.Exit(2)
	}

	sys := bootSystem(*dataset, *snapPath)

	params := squid.DefaultParams()
	if *qre {
		params = squid.QREParams()
	}
	if *normalize {
		params.NormalizeAssociation = true
	}
	if *rho > 0 {
		params.Rho = *rho
	}
	sys.SetParams(params)

	start := time.Now()
	disc, err := sys.Discover(examples)
	if err != nil {
		switch {
		case errors.Is(err, squid.ErrNoEntities):
			fmt.Fprintf(os.Stderr, "no entity in the %s dataset matches all %d examples.\n", *dataset, len(examples))
			fmt.Fprintln(os.Stderr, "Check the spelling of each example, or try fewer examples —")
			fmt.Fprintln(os.Stderr, "every example must denote the same kind of thing (all actors, all researchers, ...).")
		case errors.Is(err, squid.ErrNoExamples):
			fmt.Fprintln(os.Stderr, "no examples given; pass at least one example value.")
		default:
			fmt.Fprintln(os.Stderr, "discovery failed:", err)
		}
		os.Exit(1)
	}
	fmt.Printf("query intent discovered in %v (base query: %s.%s)\n\n",
		time.Since(start).Round(time.Microsecond), disc.Entity, disc.Attribute)

	fmt.Println("-- abduced query (αDB form):")
	fmt.Println(disc.SQL)
	fmt.Println()
	fmt.Println("-- equivalent query (original schema):")
	fmt.Println(disc.Original)
	fmt.Println()

	if *candidates {
		fmt.Println("-- candidate filters (Algorithm 1 decisions):")
		for _, d := range disc.Decisions {
			mark := " "
			if d.Included {
				mark = "*"
			}
			fmt.Printf(" %s %-50s psi=%.4f include=%.4g exclude=%.4g\n",
				mark, d.Filter.String(), d.Selectivity, d.Include, d.Exclude)
		}
		fmt.Println()
	}

	fmt.Printf("-- result (%d rows", len(disc.Output))
	if len(disc.Output) > *maxOut {
		fmt.Printf(", first %d shown", *maxOut)
	}
	fmt.Println("):")
	for i, v := range disc.Output {
		if i >= *maxOut {
			break
		}
		fmt.Println("  ", v)
	}
}

// bootSystem produces the abduction-ready system: a warm boot from the
// snapshot file when one exists, otherwise a cold build of the selected
// dataset (saved to the snapshot path when one was given).
func bootSystem(dataset, snapPath string) *squid.System {
	if snapPath != "" {
		if f, err := os.Open(snapPath); err == nil {
			defer f.Close()
			start := time.Now()
			sys, err := squid.Load(f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loading snapshot %s failed: %v\n", snapPath, err)
				fmt.Fprintln(os.Stderr, "delete the file to rebuild it from scratch")
				os.Exit(1)
			}
			// The snapshot carries the database it was built from;
			// refuse to serve answers for a different dataset.
			if got := sys.AlphaDB().DB().Name; got != dataset && !strings.HasPrefix(got, dataset+"_") {
				fmt.Fprintf(os.Stderr, "snapshot %s holds dataset %q, not %q\n", snapPath, got, dataset)
				fmt.Fprintln(os.Stderr, "pass the matching -dataset, or delete the file to rebuild it")
				os.Exit(1)
			}
			fmt.Printf("αDB loaded from %s in %v (warm boot)\n\n", snapPath, time.Since(start).Round(time.Millisecond))
			return sys
		}
	}

	var db *squid.Database
	switch dataset {
	case "imdb":
		db = datagen.GenerateIMDb(datagen.DefaultIMDbConfig()).DB
	case "dblp":
		db = datagen.GenerateDBLP(datagen.DefaultDBLPConfig()).DB
	case "adult":
		db = datagen.GenerateAdult(datagen.DefaultAdultConfig()).DB
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", dataset)
		os.Exit(2)
	}

	fmt.Printf("building abduction-ready database for %s ...\n", dataset)
	start := time.Now()
	sys, err := squid.Build(db, squid.DefaultBuildConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "offline phase failed:", err)
		os.Exit(1)
	}
	fmt.Printf("αDB ready in %v\n", time.Since(start).Round(time.Millisecond))

	if snapPath != "" {
		// Write-then-rename so an interrupted save never leaves a
		// truncated snapshot poisoning later warm boots.
		tmp := snapPath + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cannot create snapshot:", err)
			os.Exit(1)
		}
		// Flush to stable storage before the rename makes the file
		// visible at the final path (the squid-lint syncrename rule): a
		// crash right after the rename must not leave a torn snapshot
		// where the next boot expects a valid one.
		err = sys.Save(f)
		if err == nil {
			err = f.Sync()
		}
		if err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err == nil {
			err = os.Rename(tmp, snapPath)
		}
		if err != nil {
			os.Remove(tmp)
			fmt.Fprintln(os.Stderr, "saving snapshot failed:", err)
			os.Exit(1)
		}
		fmt.Printf("snapshot saved to %s (next boot is warm)\n", snapPath)
	}
	fmt.Println()
	return sys
}
