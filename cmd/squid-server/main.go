// Command squid-server serves query intent discovery over HTTP: the
// network front end of the squid engine (internal/server), turning the
// in-process library into a long-running service.
//
// Usage:
//
//	squid-server -addr :8080 -dataset imdb
//	squid-server -dataset dblp -snapshot /var/lib/squid/dblp.sqas -snapshot-interval 5m
//	squid-server -max-inflight 8 -queue-depth 32 -timeout 10s
//	squid-server -log-format json -debug-addr 127.0.0.1:6060 -slow-query-threshold 250ms
//
// With -snapshot, boot is warm when the file exists (squid.Load instead
// of a cold build; the αDB is saved there after a cold build otherwise),
// a background loop re-saves it every -snapshot-interval, POST
// /v1/snapshot re-saves it on demand, and the graceful drain writes a
// final snapshot so no acknowledged insert is lost across restarts.
//
// With -wal, every insert's epoch delta is additionally appended to a
// write-ahead log before (under -wal-fsync=always, fsynced before) the
// insert is acknowledged; boot replays the log tail on top of the
// snapshot, so acknowledged writes survive a crash between snapshots,
// not just a graceful drain. Each snapshot doubles as a log checkpoint
// and truncates the log.
//
// The server sheds load beyond -max-inflight running discoveries plus
// -queue-depth waiters (429 + Retry-After), bounds every request by
// -timeout (wired into context cancellation inside the abduction), and
// drains cleanly on SIGINT/SIGTERM: /healthz flips to 503, in-flight
// requests finish, then the final snapshot lands.
//
// Logs are structured (log/slog); -log-format picks text or JSON lines.
// Every request carries a request id (minted unless the client sent
// X-Request-Id, always echoed back in the X-Request-Id header) that ties
// the access path to traces and slow-query lines. Requests slower than
// -slow-query-threshold log one warn line with their per-phase breakdown
// and surface under /debug/traces?slow=1.
//
// -debug-addr starts a second listener with the pprof and expvar
// handlers; it is kept off the serving address so profiling endpoints
// are never exposed where the API is.
//
// Endpoints: POST /v1/discover (?trace=1 embeds the span tree),
// /v1/discover/batch, /v1/execute, /v1/insert, /v1/insert/batch,
// /v1/snapshot; GET /v1/stats, /healthz, /metrics (Prometheus text),
// /debug/traces (recent request traces; ?slow=1 filters).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"squid"
	"squid/internal/buildinfo"
	"squid/internal/datagen"
	"squid/internal/server"
	"squid/internal/wal"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dataset      = flag.String("dataset", "imdb", "dataset to build when no snapshot exists: imdb, dblp, or adult")
		snapPath     = flag.String("snapshot", "", "αDB snapshot file: warm-boot from it when present, save after cold builds, re-save on drain")
		snapInterval = flag.Duration("snapshot-interval", 0, "periodic snapshot re-save interval (0 = only on demand and on drain)")
		maxInFlight  = flag.Int("max-inflight", 0, "max concurrently running discovery/execute requests (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 0, "admission waiters beyond max-inflight before shedding 429s (0 = 4x max-inflight)")
		batchWorkers = flag.Int("batch-workers", 0, "worker pool per /v1/discover/batch request (0 = GOMAXPROCS); worst-case discovery parallelism is max-inflight x batch-workers")
		discWorkers  = flag.Int("discover-workers", 1, "intra-discovery worker pool (Params.Workers): goroutines spent inside one discovery; 1 = serial, 0 = GOMAXPROCS. Raise for low-latency single discoveries, keep 1 when max-inflight already saturates the cores")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request deadline (0 = none)")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		qre          = flag.Bool("qre", false, "use the optimistic QRE parameter preset (§7.5)")
		walPath      = flag.String("wal", "", "write-ahead log file: every insert's epoch delta is logged and replayed at boot, so acknowledged writes survive crashes between snapshots")
		walFsync     = flag.String("wal-fsync", "always", "WAL durability policy: always (fsync before ack), interval (background fsync), never (OS decides)")
		walFsyncIvl  = flag.Duration("wal-fsync-interval", 100*time.Millisecond, "background fsync cadence under -wal-fsync=interval")
		logFormat    = flag.String("log-format", "text", "structured log format: text or json")
		debugAddr    = flag.String("debug-addr", "", "debug listener for pprof and expvar (empty = off); keep it off the serving address")
		slowQuery    = flag.Duration("slow-query-threshold", time.Second, "requests at or above this wall time log a slow-query line and surface under /debug/traces?slow=1 (0 = disabled)")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "squid-server: -log-format %q: want text or json\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	bi := buildinfo.Get()
	logger.Info("squid-server starting", "build", bi.String(),
		"go_version", bi.GoVersion, "version", bi.Version, "revision", bi.Revision)

	sys, coldBuilt, err := bootSystem(logger, *dataset, *snapPath)
	if err != nil {
		fatal("boot failed", "err", err)
	}
	if *walPath != "" {
		policy, err := wal.ParsePolicy(*walFsync)
		if err != nil {
			fatal("bad -wal-fsync", "err", err)
		}
		start := time.Now()
		info, err := sys.RecoverWAL(*walPath, wal.Options{Policy: policy, Interval: *walFsyncIvl})
		if err != nil {
			// Refusing to serve beats silently losing acknowledged writes:
			// a gap in the log or an unreplayable record needs an operator.
			fatal("wal recovery failed", "path", *walPath, "err", err)
		}
		logger.Info("wal recovered", "path", *walPath,
			"elapsed", time.Since(start).Round(time.Millisecond).String(),
			"replayed", info.Replayed, "truncated_bytes", info.TruncatedBytes,
			"epoch_seq", info.LastSeq, "fsync", string(policy))
	}
	if *qre {
		sys.SetParams(squid.QREParams())
	}
	{
		// Applied unconditionally: the library default (0 = GOMAXPROCS)
		// suits a single-user process, but a server saturating its cores
		// with concurrent requests wants serial discoveries unless the
		// operator opts in.
		p := sys.Params()
		p.Workers = *discWorkers
		sys.SetParams(p)
	}
	if *batchWorkers > 0 {
		sys.SetBatchWorkers(*batchWorkers)
	}

	reqTimeout := *timeout
	if reqTimeout == 0 {
		reqTimeout = -1 // Config: negative disables the deadline
	}
	slowThreshold := *slowQuery
	if slowThreshold == 0 {
		slowThreshold = -1 // Config: negative disables slow-query marking
	}
	srv := server.New(sys, server.Config{
		MaxInFlight:        *maxInFlight,
		QueueDepth:         *queueDepth,
		RequestTimeout:     reqTimeout,
		SnapshotPath:       *snapPath,
		SnapshotInterval:   *snapInterval,
		Logger:             logger,
		SlowQueryThreshold: slowThreshold,
	})
	if coldBuilt && *snapPath != "" {
		// Save the cold build through the server's atomic
		// write-then-rename path, so the next boot is warm.
		if _, err := srv.SaveSnapshot(); err != nil {
			fatal("saving snapshot failed", "err", err)
		}
		logger.Info("snapshot saved, next boot is warm", "path", *snapPath)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The debug listener carries the profiling surfaces — pprof and
	// expvar — on its own mux and address, so they are mounted explicitly
	// (never via net/http/pprof's DefaultServeMux side effects) and never
	// reachable through the serving listener.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", httppprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		dmux.Handle("/debug/vars", expvar.Handler())
		dbgSrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("debug listener up (pprof, expvar)", "addr", *debugAddr)
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
	}

	// Graceful drain on SIGINT/SIGTERM: stop accepting, flip /healthz
	// to 503 for the load balancer, finish in-flight requests, save the
	// final snapshot.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		logger.Info("signal received, draining", "timeout", drainWait.String())
		srv.BeginDrain()
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Warn("shutdown incomplete, some requests may have been cut off", "err", err)
		}
		if err := srv.Finalize(); err != nil {
			logger.Error("final snapshot failed", "err", err)
		} else if *snapPath != "" {
			logger.Info("final snapshot saved", "path", *snapPath)
		}
	}()

	logger.Info("serving", "dataset", *dataset, "addr", *addr,
		"max_inflight", *maxInFlight, "queue_depth", *queueDepth, "timeout", timeout.String())
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("listen failed", "addr", *addr, "err", err)
	}
	<-done
}

// bootSystem produces the abduction-ready system: a warm boot from the
// snapshot file when one exists, otherwise a cold build of the selected
// dataset (coldBuilt reports which; the caller persists cold builds
// through the server's snapshot path).
func bootSystem(logger *slog.Logger, dataset, snapPath string) (sys *squid.System, coldBuilt bool, err error) {
	if snapPath != "" {
		f, err := os.Open(snapPath)
		switch {
		case err == nil:
			defer f.Close()
			start := time.Now()
			sys, err := squid.Load(f)
			if err != nil {
				return nil, false, fmt.Errorf("loading snapshot %s: %w (delete the file to rebuild)", snapPath, err)
			}
			if got := sys.AlphaDB().DB().Name; got != dataset && !strings.HasPrefix(got, dataset+"_") {
				return nil, false, fmt.Errorf("snapshot %s holds dataset %q, not %q", snapPath, got, dataset)
			}
			logger.Info("αDB loaded (warm boot)", "path", snapPath,
				"elapsed", time.Since(start).Round(time.Millisecond).String())
			return sys, false, nil
		case !errors.Is(err, fs.ErrNotExist):
			// Anything but "no snapshot yet" must not fall through to a
			// cold build: the cold build would overwrite a snapshot that
			// holds acknowledged writes.
			return nil, false, fmt.Errorf("opening snapshot %s: %w", snapPath, err)
		}
	}

	var db *squid.Database
	switch dataset {
	case "imdb":
		db = datagen.GenerateIMDb(datagen.DefaultIMDbConfig()).DB
	case "dblp":
		db = datagen.GenerateDBLP(datagen.DefaultDBLPConfig()).DB
	case "adult":
		db = datagen.GenerateAdult(datagen.DefaultAdultConfig()).DB
	default:
		return nil, false, fmt.Errorf("unknown dataset %q (want imdb, dblp, or adult)", dataset)
	}
	logger.Info("building abduction-ready database (cold boot)", "dataset", dataset)
	start := time.Now()
	sys, err = squid.Build(db, squid.DefaultBuildConfig())
	if err != nil {
		return nil, false, fmt.Errorf("offline phase: %w", err)
	}
	logger.Info("αDB ready", "elapsed", time.Since(start).Round(time.Millisecond).String())
	return sys, true, nil
}
