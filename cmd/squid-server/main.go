// Command squid-server serves query intent discovery over HTTP: the
// network front end of the squid engine (internal/server), turning the
// in-process library into a long-running service.
//
// Usage:
//
//	squid-server -addr :8080 -dataset imdb
//	squid-server -dataset dblp -snapshot /var/lib/squid/dblp.sqas -snapshot-interval 5m
//	squid-server -max-inflight 8 -queue-depth 32 -timeout 10s
//
// With -snapshot, boot is warm when the file exists (squid.Load instead
// of a cold build; the αDB is saved there after a cold build otherwise),
// a background loop re-saves it every -snapshot-interval, POST
// /v1/snapshot re-saves it on demand, and the graceful drain writes a
// final snapshot so no acknowledged insert is lost across restarts.
//
// With -wal, every insert's epoch delta is additionally appended to a
// write-ahead log before (under -wal-fsync=always, fsynced before) the
// insert is acknowledged; boot replays the log tail on top of the
// snapshot, so acknowledged writes survive a crash between snapshots,
// not just a graceful drain. Each snapshot doubles as a log checkpoint
// and truncates the log.
//
// The server sheds load beyond -max-inflight running discoveries plus
// -queue-depth waiters (429 + Retry-After), bounds every request by
// -timeout (wired into context cancellation inside the abduction), and
// drains cleanly on SIGINT/SIGTERM: /healthz flips to 503, in-flight
// requests finish, then the final snapshot lands.
//
// Endpoints: POST /v1/discover, /v1/discover/batch, /v1/execute,
// /v1/insert, /v1/insert/batch, /v1/snapshot; GET /v1/stats, /healthz,
// /metrics (Prometheus text).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"squid"
	"squid/internal/datagen"
	"squid/internal/server"
	"squid/internal/wal"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dataset      = flag.String("dataset", "imdb", "dataset to build when no snapshot exists: imdb, dblp, or adult")
		snapPath     = flag.String("snapshot", "", "αDB snapshot file: warm-boot from it when present, save after cold builds, re-save on drain")
		snapInterval = flag.Duration("snapshot-interval", 0, "periodic snapshot re-save interval (0 = only on demand and on drain)")
		maxInFlight  = flag.Int("max-inflight", 0, "max concurrently running discovery/execute requests (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 0, "admission waiters beyond max-inflight before shedding 429s (0 = 4x max-inflight)")
		batchWorkers = flag.Int("batch-workers", 0, "worker pool per /v1/discover/batch request (0 = GOMAXPROCS); worst-case discovery parallelism is max-inflight x batch-workers")
		discWorkers  = flag.Int("discover-workers", 1, "intra-discovery worker pool (Params.Workers): goroutines spent inside one discovery; 1 = serial, 0 = GOMAXPROCS. Raise for low-latency single discoveries, keep 1 when max-inflight already saturates the cores")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request deadline (0 = none)")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		qre          = flag.Bool("qre", false, "use the optimistic QRE parameter preset (§7.5)")
		walPath      = flag.String("wal", "", "write-ahead log file: every insert's epoch delta is logged and replayed at boot, so acknowledged writes survive crashes between snapshots")
		walFsync     = flag.String("wal-fsync", "always", "WAL durability policy: always (fsync before ack), interval (background fsync), never (OS decides)")
		walFsyncIvl  = flag.Duration("wal-fsync-interval", 100*time.Millisecond, "background fsync cadence under -wal-fsync=interval")
	)
	flag.Parse()

	sys, coldBuilt, err := bootSystem(*dataset, *snapPath)
	if err != nil {
		log.Fatalf("boot: %v", err)
	}
	if *walPath != "" {
		policy, err := wal.ParsePolicy(*walFsync)
		if err != nil {
			log.Fatalf("-wal-fsync: %v", err)
		}
		start := time.Now()
		info, err := sys.RecoverWAL(*walPath, wal.Options{Policy: policy, Interval: *walFsyncIvl})
		if err != nil {
			// Refusing to serve beats silently losing acknowledged writes:
			// a gap in the log or an unreplayable record needs an operator.
			log.Fatalf("wal recovery: %v", err)
		}
		log.Printf("wal %s recovered in %v: %d records replayed, %d torn bytes truncated, epoch seq %d (fsync=%s)",
			*walPath, time.Since(start).Round(time.Millisecond),
			info.Replayed, info.TruncatedBytes, info.LastSeq, policy)
	}
	if *qre {
		sys.SetParams(squid.QREParams())
	}
	{
		// Applied unconditionally: the library default (0 = GOMAXPROCS)
		// suits a single-user process, but a server saturating its cores
		// with concurrent requests wants serial discoveries unless the
		// operator opts in.
		p := sys.Params()
		p.Workers = *discWorkers
		sys.SetParams(p)
	}
	if *batchWorkers > 0 {
		sys.SetBatchWorkers(*batchWorkers)
	}

	reqTimeout := *timeout
	if reqTimeout == 0 {
		reqTimeout = -1 // Config: negative disables the deadline
	}
	srv := server.New(sys, server.Config{
		MaxInFlight:      *maxInFlight,
		QueueDepth:       *queueDepth,
		RequestTimeout:   reqTimeout,
		SnapshotPath:     *snapPath,
		SnapshotInterval: *snapInterval,
	})
	if coldBuilt && *snapPath != "" {
		// Save the cold build through the server's atomic
		// write-then-rename path, so the next boot is warm.
		if _, err := srv.SaveSnapshot(); err != nil {
			log.Fatalf("saving snapshot: %v", err)
		}
		log.Printf("snapshot saved to %s (next boot is warm)", *snapPath)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful drain on SIGINT/SIGTERM: stop accepting, flip /healthz
	// to 503 for the load balancer, finish in-flight requests, save the
	// final snapshot.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Printf("signal received, draining (timeout %v)", *drainWait)
		srv.BeginDrain()
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("shutdown: %v (some requests may have been cut off)", err)
		}
		if err := srv.Finalize(); err != nil {
			log.Printf("final snapshot: %v", err)
		} else if *snapPath != "" {
			log.Printf("final snapshot saved to %s", *snapPath)
		}
	}()

	log.Printf("serving %s on %s (max-inflight %d, queue %d, timeout %v)",
		*dataset, *addr, *maxInFlight, *queueDepth, *timeout)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("listen: %v", err)
	}
	<-done
}

// bootSystem produces the abduction-ready system: a warm boot from the
// snapshot file when one exists, otherwise a cold build of the selected
// dataset (coldBuilt reports which; the caller persists cold builds
// through the server's snapshot path).
func bootSystem(dataset, snapPath string) (sys *squid.System, coldBuilt bool, err error) {
	if snapPath != "" {
		f, err := os.Open(snapPath)
		switch {
		case err == nil:
			defer f.Close()
			start := time.Now()
			sys, err := squid.Load(f)
			if err != nil {
				return nil, false, fmt.Errorf("loading snapshot %s: %w (delete the file to rebuild)", snapPath, err)
			}
			if got := sys.AlphaDB().DB().Name; got != dataset && !strings.HasPrefix(got, dataset+"_") {
				return nil, false, fmt.Errorf("snapshot %s holds dataset %q, not %q", snapPath, got, dataset)
			}
			log.Printf("αDB loaded from %s in %v (warm boot)", snapPath, time.Since(start).Round(time.Millisecond))
			return sys, false, nil
		case !errors.Is(err, fs.ErrNotExist):
			// Anything but "no snapshot yet" must not fall through to a
			// cold build: the cold build would overwrite a snapshot that
			// holds acknowledged writes.
			return nil, false, fmt.Errorf("opening snapshot %s: %w", snapPath, err)
		}
	}

	var db *squid.Database
	switch dataset {
	case "imdb":
		db = datagen.GenerateIMDb(datagen.DefaultIMDbConfig()).DB
	case "dblp":
		db = datagen.GenerateDBLP(datagen.DefaultDBLPConfig()).DB
	case "adult":
		db = datagen.GenerateAdult(datagen.DefaultAdultConfig()).DB
	default:
		return nil, false, fmt.Errorf("unknown dataset %q (want imdb, dblp, or adult)", dataset)
	}
	log.Printf("building abduction-ready database for %s ...", dataset)
	start := time.Now()
	sys, err = squid.Build(db, squid.DefaultBuildConfig())
	if err != nil {
		return nil, false, fmt.Errorf("offline phase: %w", err)
	}
	log.Printf("αDB ready in %v", time.Since(start).Round(time.Millisecond))
	return sys, true, nil
}
