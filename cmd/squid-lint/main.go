// Command squid-lint runs squid's project-invariant analyzer suite
// over the module: the epoch immutability, RowSet aliasing, context
// threading, sync-before-rename, and lock-ordering contracts, plus the
// mutex-copy and unused-export hygiene passes. It exits non-zero on
// any diagnostic — CI runs it as a required step.
//
// Usage:
//
//	squid-lint [-list] [-run analyzer[,analyzer]] [packages]
//
// Package patterns are directory-based: "./..." (the default) analyzes
// every package of the module, "./internal/..." a subtree, "./internal/adb"
// one package. The whole module is always loaded (cross-package
// analyses need it); patterns select which packages' findings are
// reported.
//
// Intentional exceptions are suppressed in the source, visibly:
//
//	//lint:ignore <analyzer> <reason>
//
// A suppression without a reason is itself a diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"squid/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("squid-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and their contracts, then exit")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runNames != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*runNames, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				kept = append(kept, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(stderr, "squid-lint: unknown analyzer %q (see -list)\n", n)
			return 2
		}
		analyzers = kept
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "squid-lint:", err)
		return 2
	}
	prog, err := lint.LoadModule(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "squid-lint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	keep, err := packageFilter(prog, cwd, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "squid-lint:", err)
		return 2
	}

	diags := lint.RunAnalyzers(prog, analyzers, keep)
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "squid-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// packageFilter turns directory patterns into a package predicate.
func packageFilter(prog *lint.Program, cwd string, patterns []string) (func(*lint.Package) bool, error) {
	type rule struct {
		dir     string
		subtree bool
	}
	var rules []rule
	for _, pat := range patterns {
		subtree := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			subtree = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, fmt.Errorf("bad pattern %q: %w", pat, err)
		}
		rules = append(rules, rule{dir: abs, subtree: subtree})
	}
	return func(p *lint.Package) bool {
		for _, r := range rules {
			if p.Dir == r.dir {
				return true
			}
			if r.subtree && strings.HasPrefix(p.Dir+string(filepath.Separator), r.dir+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}, nil
}
