package squid

import (
	"bytes"
	"testing"

	"squid/internal/adb"
	"squid/internal/benchqueries"
	"squid/internal/datacube"
	"squid/internal/datagen"
	"squid/internal/experiments"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (one bench per experiment id of DESIGN.md §2). They run the
// corresponding harness end to end at a reduced scale so `go test
// -bench=.` completes on a laptop; `cmd/squid-bench -scale full`
// produces the recorded EXPERIMENTS.md numbers.

// benchScale sizes the datasets for the testing.B harness.
func benchScale() experiments.Scale {
	s := experiments.TestScale()
	s.IMDb = datagen.IMDbConfig{Seed: 7, NumPersons: 2500, NumMovies: 1000, NumCompany: 50}
	s.DBLP = datagen.DBLPConfig{Seed: 3, NumAuthor: 1200, NumPubs: 2400}
	s.Adult = datagen.AdultConfig{Seed: 5, NumRows: 2500, ScaleFactor: 1}
	s.Runs = 2
	s.ExampleSizes = []int{5, 10, 15, 20}
	return s
}

// benchSuite is shared across benchmarks; dataset construction cost is
// paid once and excluded from timings via b.ResetTimer.
var benchSuite = experiments.NewSuite(benchScale())

func runExperiment(b *testing.B, fn func()) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
}

func BenchmarkFig9aAbductionTime(b *testing.B) {
	benchSuite.IMDb()
	benchSuite.DBLP()
	runExperiment(b, func() { _ = benchSuite.Fig9a() })
}

func BenchmarkFig9bDatasetSizes(b *testing.B) {
	benchSuite.IMDb()
	runExperiment(b, func() { _ = benchSuite.Fig9b() })
}

func BenchmarkFig10Accuracy(b *testing.B) {
	benchSuite.IMDb()
	benchSuite.DBLP()
	runExperiment(b, func() { _ = benchSuite.Fig10() })
}

func BenchmarkFig11QueryRuntime(b *testing.B) {
	benchSuite.IMDb()
	benchSuite.DBLP()
	runExperiment(b, func() { _ = benchSuite.Fig11() })
}

func BenchmarkFig12Disambiguation(b *testing.B) {
	benchSuite.IMDb()
	runExperiment(b, func() { _ = benchSuite.Fig12() })
}

func BenchmarkFig13CaseStudies(b *testing.B) {
	benchSuite.IMDb()
	benchSuite.DBLP()
	runExperiment(b, func() { _ = benchSuite.Fig13() })
}

func BenchmarkFig14AdultQRE(b *testing.B) {
	benchSuite.Adult()
	runExperiment(b, func() { _ = benchSuite.Fig14() })
}

func BenchmarkFig15aIMDbQRE(b *testing.B) {
	benchSuite.IMDb()
	runExperiment(b, func() { _ = benchSuite.Fig15a() })
}

func BenchmarkFig15bDBLPQRE(b *testing.B) {
	benchSuite.DBLP()
	runExperiment(b, func() { _ = benchSuite.Fig15b() })
}

func BenchmarkFig16aPULearning(b *testing.B) {
	benchSuite.Adult()
	runExperiment(b, func() { _ = benchSuite.Fig16a() })
}

func BenchmarkFig16bPUScalability(b *testing.B) {
	runExperiment(b, func() { _ = benchSuite.Fig16b() })
}

func BenchmarkFig18DatasetStats(b *testing.B) {
	benchSuite.IMDb()
	benchSuite.DBLP()
	benchSuite.Adult()
	runExperiment(b, func() { _ = benchSuite.Fig18() })
}

func BenchmarkFig23RhoSweep(b *testing.B) {
	benchSuite.IMDb()
	runExperiment(b, func() { _ = benchSuite.Fig23() })
}

func BenchmarkFig24GammaSweep(b *testing.B) {
	benchSuite.IMDb()
	runExperiment(b, func() { _ = benchSuite.Fig24() })
}

func BenchmarkFig25TauASweep(b *testing.B) {
	benchSuite.IMDb()
	runExperiment(b, func() { _ = benchSuite.Fig25() })
}

func BenchmarkFig26TauSSweep(b *testing.B) {
	benchSuite.IMDb()
	runExperiment(b, func() { _ = benchSuite.Fig26() })
}

func BenchmarkAblations(b *testing.B) {
	benchSuite.IMDb()
	runExperiment(b, func() { _ = benchSuite.Ablations() })
}

// --- micro-benchmarks of the core pipeline stages -------------------

// BenchmarkAlphaDBBuild measures the offline phase (Fig 18's
// precomputation time column).
func BenchmarkAlphaDBBuild(b *testing.B) {
	g := datagen.GenerateIMDb(benchScale().IMDb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adb.Build(g.DB, adb.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuild compares the serial and parallel offline phases at
// bench scale (the ISSUE 2 acceptance metric: ≥ 2x on ≥ 2 cores).
func BenchmarkBuild(b *testing.B) {
	g := datagen.GenerateIMDb(benchScale().IMDb)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := adb.DefaultConfig()
			cfg.Workers = bc.workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := adb.Build(g.DB, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshot measures warm-boot persistence: Save and Load
// against the cold Build above (the ISSUE 2 acceptance metric: load ≥
// 5x faster than a cold build).
func BenchmarkSnapshot(b *testing.B) {
	g := datagen.GenerateIMDb(benchScale().IMDb)
	sys, err := Build(g.DB, DefaultBuildConfig())
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		b.Fatal(err)
	}
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			w.Grow(buf.Len())
			if err := sys.Save(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		b.SetBytes(int64(buf.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDiscovery measures one end-to-end online discovery on a
// 10-example funny-actors intent.
func BenchmarkDiscovery(b *testing.B) {
	g, alpha := benchSuite.IMDb()
	_ = alpha
	sys, err := Build(g.DB, DefaultBuildConfig())
	if err != nil {
		b.Fatal(err)
	}
	person := g.DB.Relation("person")
	var examples []string
	for _, id := range g.Comedians[:10] {
		examples = append(examples, person.Get(int(id), "name").Str())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Discover(examples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendixF4CubeVsAlphaDB reproduces the Appendix F.4
// comparison: answering association-strength lookups from the data cube
// (query-time rollup) versus the αDB's precomputed derived relation
// (hash lookup). The paper measures the cube one to two orders of
// magnitude slower.
func BenchmarkAppendixF4CubeVsAlphaDB(b *testing.B) {
	g, alpha := benchSuite.IMDb()
	cube := datacube.Build(g.DB,
		"castinfo", "person_id", "movie_id",
		"movietogenre", "movie_id", "genre_id",
		"genre", "id", "name")
	ptg := alpha.Entity("person").DerivedByAttr("movie:genre")
	ids := cube.Entities()
	b.Run("alphaDB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ptg.Counts(ids[i%len(ids)])
		}
	})
	b.Run("datacube", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = cube.Counts(ids[i%len(ids)])
		}
	})
	b.Run("alphaDB-selectivity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ptg.Selectivity("Comedy", 5)
		}
	})
	b.Run("datacube-selectivity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = cube.SelectivityGE("Comedy", 5, 2500)
		}
	})
}

// BenchmarkGroundTruthExecution measures the engine on the largest
// benchmark ground-truth queries.
func BenchmarkGroundTruthExecution(b *testing.B) {
	g, _ := benchSuite.IMDb()
	bench := benchqueries.IMDbBenchmarks(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range bench[:4] {
			if _, err := benchqueries.GroundTruth(g.DB, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}
