// imdb-actors reproduces the motivating scenario of the paper's
// Examples 1.2/1.3 on the synthetic IMDb-like dataset: two example sets
// of actor names carry different implicit intents (funny actors vs
// action stars), invisible to structure-only QBE, and SQuID separates
// them through derived semantic properties (genre association counts).
package main

import (
	"fmt"
	"log"

	"squid"
	"squid/internal/datagen"
)

func main() {
	g := datagen.GenerateIMDb(datagen.DefaultIMDbConfig())
	fmt.Printf("generated IMDb-like database: %d relations, %d rows total\n",
		g.DB.NumRelations(), g.DB.TotalRows())

	sys, err := squid.Build(g.DB, squid.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("αDB built in %v\n\n", sys.Stats().BuildTime)

	person := g.DB.Relation("person")
	nameOf := func(id int64) string { return person.Get(int(id), "name").Str() }

	// ET2 analogue: three planted comedians.
	funny := []string{nameOf(g.Comedians[0]), nameOf(g.Comedians[1]), nameOf(g.Comedians[2])}
	// ET1 analogue: three planted action stars.
	strong := []string{nameOf(g.ActionStars[0]), nameOf(g.ActionStars[1]), nameOf(g.ActionStars[2])}

	for _, scenario := range []struct {
		label    string
		examples []string
	}{
		{"funny actors (ET2)", funny},
		{"strong/action actors (ET1)", strong},
	} {
		fmt.Printf("=== examples: %v (%s)\n", scenario.examples, scenario.label)
		disc, err := sys.Discover(scenario.examples)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("abduced query:")
		fmt.Println(disc.SQL)
		fmt.Printf("filters: ")
		for i, f := range disc.Filters {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(f.String())
		}
		fmt.Printf("\nresult size: %d\n\n", len(disc.Output))
	}

	// A structure-only QBE system would answer both example sets with
	// the same generic query (Q3 of the paper):
	fmt.Println("a structure-only QBE system returns for BOTH sets just:")
	fmt.Println("  SELECT person.name FROM person")
}
