// Quickstart walks through the paper's Fig 1 scenario with the public
// API: build the CS-Academics database, make it abduction-ready, and
// discover the intent behind the examples {Dan Suciu, Sam Madden} — the
// data-management researchers of Example 1.1.
package main

import (
	"fmt"
	"log"

	"squid"
)

func main() {
	// 1. Describe the database: an entity relation (academics) and an
	// attribute table (research) holding multi-valued interests.
	db := squid.NewDatabase("cs_academics")

	academics := squid.NewRelation("academics",
		squid.Col("id", squid.Int),
		squid.Col("name", squid.String),
	).SetPrimaryKey("id")
	names := []string{
		"Thomas Cormen", "Dan Suciu", "Jiawei Han",
		"Sam Madden", "James Kurose", "Joseph Hellerstein",
	}
	for i, n := range names {
		academics.MustAppend(squid.IntVal(int64(100+i)), squid.StringVal(n))
	}
	db.AddRelation(academics)
	db.MarkEntity("academics")

	research := squid.NewRelation("research",
		squid.Col("aid", squid.Int),
		squid.Col("interest", squid.String),
	).AddForeignKey("aid", "academics", "id")
	interests := []struct {
		aid      int64
		interest string
	}{
		{100, "algorithms"}, {101, "data management"}, {102, "data mining"},
		{103, "data management"}, {103, "distributed systems"},
		{104, "computer networks"}, {105, "data management"}, {105, "distributed systems"},
	}
	for _, r := range interests {
		research.MustAppend(squid.IntVal(r.aid), squid.StringVal(r.interest))
	}
	db.AddRelation(research)

	// 2. Offline phase: build the abduction-ready database.
	sys, err := squid.Build(db, squid.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Online phase: discover the intent behind three examples. With
	// ρ=0.2 the shared data-management interest outweighs coincidence
	// already at |E| = 3.
	params := squid.DefaultParams()
	params.Rho = 0.2
	sys.SetParams(params)

	examples := []string{"Dan Suciu", "Sam Madden", "Joseph Hellerstein"}
	disc, err := sys.Discover(examples)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("examples:", examples)
	fmt.Println()
	fmt.Println("abduced query:")
	fmt.Println(disc.SQL)
	fmt.Println()
	fmt.Println("filter decisions:")
	for _, d := range disc.Decisions {
		verdict := "dropped (coincidental)"
		if d.Included {
			verdict = "included (intended)"
		}
		fmt.Printf("  %-45s ψ=%.3f -> %s\n", d.Filter.String(), d.Selectivity, verdict)
	}
	fmt.Println()
	fmt.Println("result:", disc.Output)
}
