// dblp-researchers runs the prolific-database-researcher case study of
// §7.4 on the synthetic DBLP-like dataset: examples are names drawn from
// a simulated public list of heavy SIGMOD/VLDB publishers, and SQuID
// abduces a query over the derived publication-count properties.
package main

import (
	"fmt"
	"log"

	"squid"
	"squid/internal/benchqueries"
	"squid/internal/datagen"
	"squid/internal/metrics"
)

func main() {
	g := datagen.GenerateDBLP(datagen.DefaultDBLPConfig())
	fmt.Printf("generated DBLP-like database: %d relations, %d rows total\n",
		g.DB.NumRelations(), g.DB.TotalRows())

	sys, err := squid.Build(g.DB, squid.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}

	study := benchqueries.ProlificResearchers(g, 2019)
	fmt.Printf("simulated public list %q holds %d names\n\n", study.Name, len(study.List))

	// Feed SQuID increasing slices of the list and watch recall climb
	// (the Fig 13(c) trend).
	for _, n := range []int{5, 10, 20} {
		if len(study.List) < n {
			break
		}
		examples := study.List[:n]
		disc, err := sys.Discover(examples)
		if err != nil {
			log.Fatal(err)
		}
		masked := study.ApplyMask(disc.Output)
		prf := metrics.Compare(masked, study.List)
		fmt.Printf("|E|=%2d  filters=%d  precision=%.2f recall=%.2f f=%.2f\n",
			n, len(disc.Filters), prf.Precision, prf.Recall, prf.FScore)
		if n == 20 {
			fmt.Println("\nabduced query at |E|=20:")
			fmt.Println(disc.SQL)
		}
	}
}
