// dynamic-catalog demonstrates the two §9 extensions implemented beyond
// the paper's core: incremental αDB maintenance on a growing catalog
// (new entities and facts arrive after the offline build) and example
// recommendation (the system suggests which entity the user should
// confirm next to sharpen the abduction).
package main

import (
	"fmt"
	"log"

	"squid"
)

func main() {
	// A small streaming-catalog schema: shows and a tag attribute table.
	db := squid.NewDatabase("catalog")
	show := squid.NewRelation("show",
		squid.Col("id", squid.Int),
		squid.Col("title", squid.String),
		squid.Col("year", squid.Int),
	).SetPrimaryKey("id")
	tags := squid.NewRelation("tags",
		squid.Col("show_id", squid.Int),
		squid.Col("tag", squid.String),
	).AddForeignKey("show_id", "show", "id")

	type seed struct {
		title string
		year  int64
		tags  []string
	}
	seeds := []seed{
		{"Northern Lights", 2015, []string{"crime", "nordic"}},
		{"Harbor Town", 2017, []string{"crime", "nordic"}},
		{"Glass Fjord", 2019, []string{"crime", "nordic", "thriller"}},
		{"Sunset Valley", 2016, []string{"romance"}},
		{"Laugh Track", 2018, []string{"comedy"}},
		{"Quiet Streets", 2020, []string{"crime"}},
		{"Desert Rose", 2014, []string{"romance", "drama"}},
		{"Byte Sized", 2021, []string{"comedy", "tech"}},
	}
	for i, s := range seeds {
		show.MustAppend(squid.IntVal(int64(i)), squid.StringVal(s.title), squid.IntVal(s.year))
		for _, tg := range s.tags {
			tags.MustAppend(squid.IntVal(int64(i)), squid.StringVal(tg))
		}
	}
	db.AddRelation(show)
	db.AddRelation(tags)
	db.MarkEntity("show")

	sys, err := squid.Build(db, squid.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}
	params := squid.DefaultParams()
	params.Rho = 0.25
	sys.SetParams(params)

	// 1. Discover the nordic-crime intent from two examples spanning the
	// year range, so a third matching show remains in the output.
	disc, err := sys.Discover([]string{"Northern Lights", "Glass Fjord"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial discovery:")
	fmt.Println(disc.SQL)
	fmt.Println("output:", disc.Output)

	// 2. Ask the system what to confirm next.
	recs := disc.RecommendExamples(2)
	fmt.Println("\nsuggested next examples:", recs)

	// 3. The catalog grows — no rebuild needed.
	if err := sys.InsertEntity("show",
		squid.IntVal(100), squid.StringVal("Frozen Coast"), squid.IntVal(2018)); err != nil {
		log.Fatal(err)
	}
	for _, tg := range []string{"crime", "nordic"} {
		if err := sys.InsertFact("tags",
			squid.IntVal(100), squid.StringVal(tg)); err != nil {
			log.Fatal(err)
		}
	}

	// 4. The same intent now includes the freshly inserted show.
	disc2, err := sys.Discover([]string{"Northern Lights", "Glass Fjord"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter inserting Frozen Coast (no αDB rebuild):")
	fmt.Println(disc2.SQL)
	fmt.Println("output:", disc2.Output)
}
