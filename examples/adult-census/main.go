// adult-census demonstrates the query-reverse-engineering mode of §7.5
// on the synthetic census table: the entire output of a hidden query is
// supplied as the example set, and SQuID (with the optimistic QRE
// parameter preset) reconstructs an instance-equivalent query.
package main

import (
	"fmt"
	"log"

	"squid"
	"squid/internal/benchqueries"
	"squid/internal/datagen"
	"squid/internal/metrics"
)

func main() {
	g := datagen.GenerateAdult(datagen.DefaultAdultConfig())
	fmt.Printf("generated census table: %d rows\n", g.DB.Relation("adult").NumRows())

	sys, err := squid.Build(g.DB, squid.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys.SetParams(squid.QREParams())

	// Pick three of the Fig 22-style benchmark queries as hidden
	// queries.
	bench := benchqueries.AdultBenchmarks(g, 20190625)
	for _, b := range bench[:3] {
		truth, err := benchqueries.GroundTruth(g.DB, b)
		if err != nil {
			log.Fatal(err)
		}
		disc, err := sys.Discover(truth) // closed world: full output
		if err != nil {
			log.Fatal(err)
		}
		prf := metrics.Compare(disc.Output, truth)
		joins, sels := disc.PredicateCount()
		fmt.Printf("\n=== hidden query %s (%d output rows, %d predicates)\n",
			b.ID, len(truth), b.Query.TotalPredicates())
		fmt.Printf("reverse-engineered with %d predicates, f-score %.3f:\n", joins+sels, prf.FScore)
		fmt.Println(disc.SQL)
	}
}
