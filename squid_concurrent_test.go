package squid

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestInsertBatchMatchesSequential checks that a mixed entity/fact
// InsertBatch leaves the system in exactly the state of the equivalent
// single-row insert sequence, and that a failing row reports its index
// while the rows before it stay applied.
func TestInsertBatchMatchesSequential(t *testing.T) {
	batched, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	ops := []InsertOp{
		{Rel: "academics", Vals: []Value{IntVal(106), StringVal("Mike Stonebraker")}},
		{Rel: "research", Vals: []Value{IntVal(106), StringVal("data management")}},
		{Rel: "research", Vals: []Value{IntVal(100), StringVal("distributed systems")}},
	}
	if err := batched.InsertBatch(ops); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Rel == "academics" {
			err = serial.InsertEntity(op.Rel, op.Vals...)
		} else {
			err = serial.InsertFact(op.Rel, op.Vals...)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	examples := []string{"Dan Suciu", "Sam Madden", "Mike Stonebraker"}
	db, err := batched.Discover(examples)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := serial.Discover(examples)
	if err != nil {
		t.Fatal(err)
	}
	if db.Explain() != ds.Explain() {
		t.Errorf("batched and serial systems diverge:\n%s\nvs\n%s", db.Explain(), ds.Explain())
	}

	// A failing row stops the batch, reports its index, and keeps the
	// rows already applied.
	err = batched.InsertBatch([]InsertOp{
		{Rel: "research", Vals: []Value{IntVal(101), StringVal("systems")}},
		{Rel: "academics", Vals: []Value{IntVal(106), StringVal("Duplicate")}},
		{Rel: "research", Vals: []Value{IntVal(102), StringVal("never applied")}},
	})
	if err == nil {
		t.Fatal("duplicate-key batch reported no error")
	}
	if !strings.Contains(err.Error(), "batch insert 1") {
		t.Errorf("error does not name the failing row: %v", err)
	}
	research := batched.ExecutableDB().Relation("research")
	last := research.Column("interest").Get(research.NumRows() - 1).Str()
	if last != "systems" {
		t.Errorf("row before the failure not applied; last interest = %q", last)
	}
}

// TestConcurrentDiscoveryAndIngest interleaves DiscoverBatch with
// single-row and batched inserts over one shared System; under -race it
// proves the write path needs no external serialization with discovery,
// and afterwards it checks discovery answers from the post-ingest
// statistics.
func TestConcurrentDiscoveryAndIngest(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.SetBatchWorkers(4)
	sets := [][]string{
		{"Dan Suciu", "Sam Madden", "Joseph Hellerstein"},
		{"Thomas Cormen", "James Kurose"},
		{"Jiawei Han", "Dan Suciu"},
	}
	baseline, err := sys.Discover([]string{"Dan Suciu", "Sam Madden"})
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers    = 4
		rounds     = 20
		writerOps  = 90
		newScholar = 200 // first id of the ingested scholars
	)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res, err := sys.DiscoverBatch(context.Background(), sets)
				if err != nil {
					t.Errorf("batch during ingest: %v", err)
					return
				}
				for j, d := range res {
					if d == nil {
						t.Errorf("set %d returned nil without error", j)
						return
					}
				}
				// Exercise the engine read path under ingest too.
				if _, err := sys.Execute(res[0].Plan()); err != nil {
					t.Errorf("execute during ingest: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		id := int64(newScholar)
		for i := 0; i < writerOps; i++ {
			switch i % 3 {
			case 0:
				if err := sys.InsertEntity("academics", IntVal(id), StringVal(fmt.Sprintf("Scholar %d", id))); err != nil {
					t.Errorf("insert entity: %v", err)
					return
				}
				id++
			case 1:
				if err := sys.InsertFact("research", IntVal(100+int64(i%6)), StringVal("systems")); err != nil {
					t.Errorf("insert fact: %v", err)
					return
				}
			default:
				ops := []InsertOp{
					{Rel: "academics", Vals: []Value{IntVal(id), StringVal(fmt.Sprintf("Scholar %d", id))}},
					{Rel: "research", Vals: []Value{IntVal(id), StringVal("data management")}},
				}
				id++
				if err := sys.InsertBatch(ops); err != nil {
					t.Errorf("insert batch: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()

	// The ingested data-management scholars widen the intent's output.
	after, err := sys.Discover([]string{"Dan Suciu", "Sam Madden"})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Output) <= len(baseline.Output) {
		t.Errorf("post-ingest output %d not larger than baseline %d", len(after.Output), len(baseline.Output))
	}
	found := false
	for _, v := range after.Output {
		if strings.HasPrefix(v, "Scholar ") {
			found = true
			break
		}
	}
	if !found {
		t.Error("post-ingest discovery output misses the ingested scholars")
	}
}
