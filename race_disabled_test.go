//go:build !race

package squid

// raceDetectorEnabled reports whether this test binary was built with
// -race; see race_enabled_test.go.
const raceDetectorEnabled = false
