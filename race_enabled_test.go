//go:build race

package squid

// raceDetectorEnabled reports whether this test binary was built with
// -race; allocation-count assertions skip under it (the detector's
// shadow-memory bookkeeping perturbs AllocsPerRun by ±1).
const raceDetectorEnabled = true
