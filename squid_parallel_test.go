package squid

import (
	"testing"

	"squid/internal/datagen"
)

// discoverExplain runs one discovery and renders it to the byte form the
// determinism tests compare: the full Explain block (base query, both
// SQL forms, every Algorithm 1 decision) plus the projected output.
func discoverExplain(t *testing.T, sys *System, examples []string) string {
	t.Helper()
	d, err := sys.Discover(examples)
	if err != nil {
		t.Fatalf("Discover(%v): %v", examples, err)
	}
	fp := d.Explain()
	for _, v := range d.Output {
		fp += v + "\n"
	}
	return fp
}

// TestParallelDiscoverDeterministic pins the tentpole's correctness
// contract: Params.Workers changes wall-clock, never output. Every
// worker count must produce a byte-identical Explain (and output) to
// the serial run, on both the small academics fixture and a generated
// IMDb dataset with enough properties to actually fan out. Run under
// -race this also exercises the pool for data races.
func TestParallelDiscoverDeterministic(t *testing.T) {
	type workload struct {
		name string
		sys  *System
		sets [][]string
	}
	var loads []workload

	acad, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	loads = append(loads, workload{"academics", acad, [][]string{
		{"Dan Suciu", "Sam Madden", "Joseph Hellerstein"},
		{"Thomas Cormen", "Jiawei Han"},
	}})

	g := datagen.GenerateIMDb(datagen.IMDbConfig{Seed: 7, NumPersons: 600, NumMovies: 250, NumCompany: 12})
	imdb, err := Build(g.DB, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	person := g.DB.Relation("person")
	var comedians []string
	for _, id := range g.Comedians[:5] {
		row, ok := imdb.AlphaDB().Entity("person").RowByID(id)
		if !ok {
			t.Fatalf("comedian id %d missing from αDB", id)
		}
		comedians = append(comedians, person.Column("name").Get(row).Str())
	}
	loads = append(loads, workload{"imdb", imdb, [][]string{
		comedians,
		{person.Column("name").Get(0).Str(), person.Column("name").Get(1).Str(), person.Column("name").Get(2).Str()},
	}})

	for _, load := range loads {
		load := load
		t.Run(load.name, func(t *testing.T) {
			setWorkers := func(w int) {
				p := load.sys.Params()
				p.Workers = w
				load.sys.SetParams(p)
			}
			// Serial reference first, cold cache per run so every arm
			// does the full abduction work rather than hitting memoized
			// selectivities.
			reference := make([]string, len(load.sets))
			setWorkers(1)
			for i, ex := range load.sets {
				load.sys.AlphaDB().SelectivityCache().Invalidate()
				reference[i] = discoverExplain(t, load.sys, ex)
			}
			for _, w := range []int{2, 3, 8, 0} { // 0 = GOMAXPROCS
				setWorkers(w)
				for i, ex := range load.sets {
					load.sys.AlphaDB().SelectivityCache().Invalidate()
					if got := discoverExplain(t, load.sys, ex); got != reference[i] {
						t.Errorf("workers=%d set=%d output diverges from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
							w, i, reference[i], w, got)
					}
				}
			}
		})
	}
}

// TestWorkersParamZeroAndNegative pins the Params.Workers edge values:
// 0 (GOMAXPROCS) and negative (treated as default) must both discover
// successfully, not panic or deadlock.
func TestWorkersParamZeroAndNegative(t *testing.T) {
	sys, err := Build(academicsDB(), DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, -1} {
		p := sys.Params()
		p.Workers = w
		sys.SetParams(p)
		d, err := sys.Discover([]string{"Dan Suciu", "Sam Madden"})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(d.Output) == 0 {
			t.Fatalf("workers=%d: empty output", w)
		}
	}
}
