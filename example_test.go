package squid_test

import (
	"fmt"
	"log"
	"strings"

	"squid"
)

// Example reproduces the paper's Fig 1 walk-through: discovering the
// data-management intent behind two researcher names.
func Example() {
	db := squid.NewDatabase("cs_academics")

	academics := squid.NewRelation("academics",
		squid.Col("id", squid.Int),
		squid.Col("name", squid.String),
	).SetPrimaryKey("id")
	names := []string{
		"Thomas Cormen", "Dan Suciu", "Jiawei Han",
		"Sam Madden", "James Kurose", "Joseph Hellerstein",
	}
	for i, n := range names {
		academics.MustAppend(squid.IntVal(int64(100+i)), squid.StringVal(n))
	}
	db.AddRelation(academics)
	db.MarkEntity("academics")

	research := squid.NewRelation("research",
		squid.Col("aid", squid.Int),
		squid.Col("interest", squid.String),
	).AddForeignKey("aid", "academics", "id")
	interests := []struct {
		aid      int64
		interest string
	}{
		{100, "algorithms"}, {101, "data management"}, {102, "data mining"},
		{103, "data management"}, {103, "distributed systems"},
		{104, "computer networks"}, {105, "data management"}, {105, "distributed systems"},
	}
	for _, r := range interests {
		research.MustAppend(squid.IntVal(r.aid), squid.StringVal(r.interest))
	}
	db.AddRelation(research)

	sys, err := squid.Build(db, squid.DefaultBuildConfig())
	if err != nil {
		log.Fatal(err)
	}
	params := squid.DefaultParams()
	params.Rho = 0.2
	sys.SetParams(params)

	disc, err := sys.Discover([]string{"Dan Suciu", "Sam Madden", "Joseph Hellerstein"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(disc.SQL)
	fmt.Println(strings.Join(disc.Output, ", "))
	// Output:
	// SELECT academics.name
	// FROM academics, research
	// WHERE academics.id = research.aid
	//   AND research.interest = 'data management'
	// Dan Suciu, Joseph Hellerstein, Sam Madden
}

// ExampleLoadCSV shows loading a relation from CSV data.
func ExampleLoadCSV() {
	csvData := "id,name,dept\n1,Ada,EECS\n2,Grace,Math\n"
	rel, err := squid.LoadCSV("people", strings.NewReader(csvData), []squid.CSVColumn{
		{Name: "id", Type: squid.Int},
		{Name: "name", Type: squid.String},
		{Name: "dept", Type: squid.String},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rel.NumRows(), rel.Get(1, "name"))
	// Output: 2 Grace
}
