package squid

import (
	"bytes"
	"errors"
	"testing"

	"squid/internal/datagen"
)

// snapshotSystem builds a small IMDb system for round-trip tests.
func snapshotSystem(t *testing.T) (*System, *datagen.IMDb) {
	t.Helper()
	g := datagen.GenerateIMDb(datagen.IMDbConfig{Seed: 11, NumPersons: 300, NumMovies: 150, NumCompany: 10})
	sys, err := Build(g.DB, DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys, g
}

// exampleNames picks comedian names from the generator (a discovery-rich
// intent: shared gender, genre associations, degree).
func exampleNames(t *testing.T, sys *System, g *datagen.IMDb, k int) []string {
	t.Helper()
	person := g.DB.Relation("person")
	info := sys.AlphaDB().Entity("person")
	var out []string
	for _, id := range g.Comedians {
		if len(out) == k {
			break
		}
		row, ok := info.RowByID(id)
		if !ok {
			t.Fatalf("comedian id %d has no αDB row", id)
		}
		out = append(out, person.Column("name").Get(row).Str())
	}
	if len(out) < k {
		t.Fatalf("generator produced %d comedians, want %d", len(out), k)
	}
	return out
}

// discoveryFingerprint captures everything a user can observe from a
// discovery, byte-exactly.
func discoveryFingerprint(t *testing.T, sys *System, examples []string) string {
	t.Helper()
	disc, err := sys.Discover(examples)
	if err != nil {
		t.Fatal(err)
	}
	out := disc.Explain()
	for _, v := range disc.Output {
		out += v + "\n"
	}
	return out
}

// TestSnapshotRoundTrip saves a built system, loads it back, and asserts
// the discovery result and Explain output are byte-identical — the
// warm-boot contract of the snapshot format.
func TestSnapshotRoundTrip(t *testing.T) {
	sys, g := snapshotSystem(t)
	examples := exampleNames(t, sys, g, 8)
	before := discoveryFingerprint(t, sys, examples)

	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	after := discoveryFingerprint(t, loaded, examples)
	if before != after {
		t.Errorf("discovery diverged across snapshot round trip:\n--- before ---\n%s\n--- after ---\n%s", before, after)
	}

	// Statistics surfaces must agree too.
	bs, ls := sys.Stats(), loaded.Stats()
	if bs.NumBasicProps != ls.NumBasicProps || bs.NumDerivedProp != ls.NumDerivedProp ||
		bs.NumDerivedRels != ls.NumDerivedRels || bs.DerivedRows != ls.DerivedRows {
		t.Errorf("stats diverged: built %+v loaded %+v", bs, ls)
	}
}

// TestSnapshotRoundTripAfterInsert asserts a loaded system supports
// incremental maintenance identically to the system it was saved from:
// the same post-load inserts yield byte-identical discovery output.
func TestSnapshotRoundTripAfterInsert(t *testing.T) {
	sys, g := snapshotSystem(t)
	examples := exampleNames(t, sys, g, 8)

	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Apply identical inserts to both systems: a new person, a new
	// movie, and facts linking the person into existing structure.
	insert := func(s *System) {
		if err := s.InsertEntity("person",
			IntVal(900001), StringVal("Roundtrip Actor"), StringVal("Male"), IntVal(1980), IntVal(1)); err != nil {
			t.Fatal(err)
		}
		if err := s.InsertFact("castinfo", IntVal(900001), IntVal(1), IntVal(1)); err != nil {
			t.Fatal(err)
		}
		if err := s.InsertFact("castinfo", IntVal(900001), IntVal(2), IntVal(1)); err != nil {
			t.Fatal(err)
		}
	}
	insert(sys)
	insert(loaded)

	before := discoveryFingerprint(t, sys, examples)
	after := discoveryFingerprint(t, loaded, examples)
	if before != after {
		t.Errorf("post-insert discovery diverged:\n--- built ---\n%s\n--- loaded ---\n%s", before, after)
	}

	// The inserted entity must be discoverable on both systems.
	for name, s := range map[string]*System{"built": sys, "loaded": loaded} {
		if _, err := s.Discover([]string{"Roundtrip Actor"}); err != nil {
			t.Errorf("%s system cannot discover inserted entity: %v", name, err)
		}
	}
}

// TestSnapshotVersionMismatch asserts the strict version policy: a
// stream with a bumped version is rejected with ErrSnapshotVersion.
func TestSnapshotVersionMismatch(t *testing.T) {
	sys, _ := snapshotSystem(t)
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4]++ // version varint lives right after the 4-byte magic
	if _, err := Load(bytes.NewReader(b)); !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("Load of bumped-version snapshot = %v, want ErrSnapshotVersion", err)
	}

	// And garbage is rejected without panicking.
	if _, err := Load(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
		t.Error("Load of garbage succeeded")
	}
}
