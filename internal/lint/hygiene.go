package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// analyzerMutexCopy flags copies of values whose type (transitively)
// contains a sync.Mutex, sync.RWMutex, sync.Once, sync.WaitGroup,
// sync.Cond, or any sync/atomic type — the classic epoch-struct
// foot-gun: a copied AlphaDB shares dictionary state but forks its
// atomic.Pointer epoch chain and lock table, which go vet's copylocks
// misses for the atomic fields (they have no Lock method). Flagged
// shapes: by-value parameters and receivers, and assignments that copy
// an existing value (x := *p, x := y, x := s.field).
func analyzerMutexCopy() *Analyzer {
	return &Analyzer{
		Name: "mutexcopy",
		Doc:  "no struct-copy of a type containing a sync.Mutex / sync.Once / atomic.* field (pass a pointer)",
		Run:  runMutexCopy,
	}
}

// lockPath returns a dotted path to a lock-bearing field inside t, or
// "" when t carries no lock state. seen guards recursive types.
func lockPath(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if n := namedFrom(t); n != nil && n.Obj() != nil && n.Obj().Pkg() != nil {
		switch n.Obj().Pkg().Path() {
		case "sync":
			switch n.Obj().Name() {
			case "Mutex", "RWMutex", "Once", "WaitGroup", "Cond", "Map", "Pool":
				return n.Obj().Name()
			}
		case "sync/atomic":
			return "atomic." + n.Obj().Name()
		}
	}
	// Only by-value containment propagates the hazard.
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return ""
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if p := lockPath(f.Type(), seen); p != "" {
				return f.Name() + "." + p
			}
		}
	case *types.Array:
		if p := lockPath(u.Elem(), seen); p != "" {
			return "[i]." + p
		}
	}
	return ""
}

// copiesValue reports whether the expression reads an existing value
// (so assigning it copies): identifiers, field selections, index
// expressions, and pointer dereferences. Composite literals and call
// results are fresh values, not copies.
func copiesValue(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func runMutexCopy(prog *Program, pkg *Package, report func(ast.Node, string)) {
	check := func(n ast.Node, t types.Type, what string) {
		if t == nil {
			return
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return
		}
		if p := lockPath(t, map[types.Type]bool{}); p != "" {
			report(n, fmt.Sprintf("%s copies lock state (%s via %s): pass a pointer", what, t.String(), p))
		}
	}

	for _, fd := range pkg.funcDecls() {
		if fd.Recv != nil {
			for _, field := range fd.Recv.List {
				check(field.Type, pkg.typeOf(field.Type), fmt.Sprintf("value receiver of %s", fd.Name.Name))
			}
		}
		if fd.Type.Params != nil {
			for _, field := range fd.Type.Params.List {
				check(field.Type, pkg.typeOf(field.Type), fmt.Sprintf("by-value parameter of %s", fd.Name.Name))
			}
		}
	}

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, rhs := range st.Rhs {
					if !copiesValue(rhs) {
						continue
					}
					if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					check(rhs, pkg.typeOf(rhs), "assignment")
				}
			case *ast.ValueSpec:
				for _, v := range st.Values {
					if copiesValue(v) {
						check(v, pkg.typeOf(v), "assignment")
					}
				}
			case *ast.RangeStmt:
				if st.Value == nil {
					return true
				}
				// A := range clause defines its value ident, so its type
				// lives in Defs, not Types.
				t := pkg.typeOf(st.Value)
				if t == nil {
					if id, ok := ast.Unparen(st.Value).(*ast.Ident); ok {
						if obj := pkg.objOf(id); obj != nil {
							t = obj.Type()
						}
					}
				}
				check(st.Value, t, "range value")
			}
			return true
		})
	}
}

// analyzerUnusedExport flags exported package-level identifiers in
// internal/ packages that no other package of the module references
// and no _test.go file mentions: dead public surface that widens the
// contract the other analyzers must police. Methods and struct fields
// are exempt (interface satisfaction and encoding make their use
// invisible to name resolution).
func analyzerUnusedExport() *Analyzer {
	return &Analyzer{
		Name: "unusedexport",
		Doc:  "exported identifiers in internal/ must be used by another package or a test — otherwise unexport or remove them",
		Run:  runUnusedExport,
	}
}

func runUnusedExport(prog *Program, pkg *Package, report func(ast.Node, string)) {
	if !strings.Contains(pkg.Path, "/internal/") {
		return
	}
	used := prog.crossPackageUses()
	reachable := reachableFromAPI(pkg, used, prog.TestIdents)
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if obj == nil || !obj.Exported() {
			continue
		}
		if used[obj] || prog.TestIdents[name] || reachable[obj] {
			continue
		}
		// Anchor the report at the defining identifier.
		var at ast.Node
		for id, def := range pkg.Info.Defs {
			if def == obj {
				at = id
				break
			}
		}
		if at == nil {
			continue
		}
		report(at, fmt.Sprintf("exported identifier %s is used by no other package and no test: unexport or remove it", name))
	}
}

// reachableFromAPI returns the package-level objects of pkg whose
// types are structurally reachable from its consumed API surface: a
// result type of a cross-used function, a field type of a cross-used
// struct, and so on, transitively. Such a type is part of the contract
// even when no other package ever names it (p.SelectivityCache()
// returning *SelCache uses SelCache without naming it).
func reachableFromAPI(pkg *Package, crossUsed map[types.Object]bool, testIdents map[string]bool) map[types.Object]bool {
	reach := map[types.Object]bool{}
	seen := map[types.Type]bool{}

	var visitType func(t types.Type)
	visitType = func(t types.Type) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		if n, ok := t.(*types.Named); ok {
			obj := n.Obj()
			if obj != nil && obj.Pkg() == pkg.Types {
				if reach[obj] {
					return
				}
				reach[obj] = true
			}
			for i := 0; i < n.NumMethods(); i++ {
				visitType(n.Method(i).Type())
			}
			if ta := n.TypeArgs(); ta != nil {
				for i := 0; i < ta.Len(); i++ {
					visitType(ta.At(i))
				}
			}
			visitType(n.Underlying())
			return
		}
		switch u := t.(type) {
		case *types.Pointer:
			visitType(u.Elem())
		case *types.Slice:
			visitType(u.Elem())
		case *types.Array:
			visitType(u.Elem())
		case *types.Chan:
			visitType(u.Elem())
		case *types.Map:
			visitType(u.Key())
			visitType(u.Elem())
		case *types.Signature:
			if u.Recv() != nil {
				visitType(u.Recv().Type())
			}
			visitType(u.Params())
			visitType(u.Results())
		case *types.Tuple:
			for i := 0; i < u.Len(); i++ {
				visitType(u.At(i).Type())
			}
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				visitType(u.Field(i).Type())
			}
		case *types.Interface:
			for i := 0; i < u.NumMethods(); i++ {
				visitType(u.Method(i).Type())
			}
		}
	}

	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if obj == nil || !obj.Exported() {
			continue
		}
		if crossUsed[obj] || testIdents[name] {
			visitType(obj.Type())
		}
	}
	return reach
}

// crossPackageUses returns the set of objects referenced from a
// package other than their own (memoized per program).
func (p *Program) crossPackageUses() map[types.Object]bool {
	if p.crossUses != nil {
		return p.crossUses
	}
	used := map[types.Object]bool{}
	for _, pkg := range p.Pkgs {
		for _, obj := range pkg.Info.Uses {
			if obj.Pkg() != nil && pkg.Types != nil && obj.Pkg() != pkg.Types {
				used[obj] = true
			}
		}
	}
	p.crossUses = used
	return used
}
