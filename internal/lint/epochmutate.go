package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// epochPkg is the package that owns the Epoch type; adbEpoch names it.
const (
	adbPkgPath = "squid/internal/adb"
	epochType  = "Epoch"
)

// cloneEscapes are the sanctioned escape hatches: a value that flowed
// through one of these calls is a private copy the caller may mutate.
var cloneEscapes = map[string]bool{
	"CloneForWrite":  true,
	"CloneForAppend": true,
	"CloneForUpdate": true,
	"CloneWith":      true,
	"Clone":          true,
}

// epochReachMutators are method names that mutate relation/column/
// index/row-set state reachable from an epoch. Calling one on a value
// whose receiver chain roots in a published *adb.Epoch — without a
// Clone* hop in between — mutates shared immutable state.
var epochReachMutators = map[string]bool{
	"Append":        true,
	"MustAppend":    true,
	"Set":           true,
	"SetPrimaryKey": true,
	"AddForeignKey": true,
	"NoteAppend":    true,
	"Drop":          true,
	"Add":           true,
	"AddAll":        true,
	"AndWith":       true,
	"OrWith":        true,
	"AndNotWith":    true,
}

// analyzerEpochMutate enforces the copy-on-write contract of
// internal/adb: an Epoch is immutable once published. No assignment to
// an Epoch's fields and no mutation of relations, columns, index
// shards, or row sets reachable from one is allowed outside the
// epochBuilder/publish path; CloneForWrite/CloneForAppend/IndexDelta
// are the sanctioned escape hatches. Epochs freshly constructed in the
// same function (&adb.Epoch{...}) are still private and may be
// initialized.
func analyzerEpochMutate() *Analyzer {
	return &Analyzer{
		Name: "epochmutate",
		Doc:  "no mutation of a published *adb.Epoch or state reachable from one (clone first: CloneForWrite/CloneForAppend/IndexDelta)",
		Run:  runEpochMutate,
	}
}

func runEpochMutate(prog *Program, pkg *Package, report func(ast.Node, string)) {
	for _, fd := range pkg.funcDecls() {
		// The epochBuilder is the write path: its methods privatize
		// state via the Clone* hatches before mutating, which is the
		// contract itself.
		if pkg.Path == adbPkgPath && recvTypeName(fd) == "epochBuilder" {
			continue
		}
		if fd.Body == nil {
			continue
		}
		checkEpochMutateFunc(pkg, fd, report)
	}
}

func checkEpochMutateFunc(pkg *Package, fd *ast.FuncDecl, report func(ast.Node, string)) {
	// fresh tracks epoch-typed locals assigned from a composite
	// literal in this function: still under construction, not yet
	// published, free to initialize.
	fresh := map[types.Object]bool{}
	// derived tracks locals holding values reached from an epoch
	// without a Clone* hop (r := e.DB.Relation("x")): mutating them
	// mutates the epoch.
	derived := map[types.Object]bool{}

	isEpochExpr := func(e ast.Expr) bool {
		if !isNamedType(pkg.typeOf(e), adbPkgPath, epochType) {
			return false
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && fresh[pkg.objOf(id)] {
			return false
		}
		return true
	}

	// epochRooted reports whether the expression chain reaches back to
	// a published epoch without passing through a Clone* call.
	var epochRooted func(e ast.Expr) bool
	epochRooted = func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if isEpochExpr(e) {
			return true
		}
		switch x := e.(type) {
		case *ast.Ident:
			return derived[pkg.objOf(x)]
		case *ast.SelectorExpr:
			return epochRooted(x.X)
		case *ast.IndexExpr:
			return epochRooted(x.X)
		case *ast.StarExpr:
			return epochRooted(x.X)
		case *ast.CallExpr:
			if sel := methodCall(x); sel != nil {
				if cloneEscapes[sel.Sel.Name] {
					return false // the escape hatch: a private copy
				}
				return epochRooted(sel.X)
			}
		}
		return false
	}

	isFreshComposite := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok {
			e = ast.Unparen(u.X)
		}
		cl, ok := e.(*ast.CompositeLit)
		return ok && isNamedType(pkg.typeOf(cl), adbPkgPath, epochType)
	}

	checkLHS := func(lhs ast.Expr) {
		lhs = ast.Unparen(lhs)
		// e.Entities[k] = v is a mutation of the field's map/slice.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if sel, ok := ast.Unparen(ix.X).(*ast.SelectorExpr); ok && isEpochExpr(sel.X) {
				report(lhs, fmt.Sprintf("mutation of %s reachable from a published *adb.Epoch (epochs are immutable; build the next epoch copy-on-write)", sel.Sel.Name))
				return
			}
		}
		if sel, ok := lhs.(*ast.SelectorExpr); ok && isEpochExpr(sel.X) {
			report(lhs, fmt.Sprintf("assignment to field %s of a published *adb.Epoch (epochs are immutable once published)", sel.Sel.Name))
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			// Record fresh / derived flows first, in the order the
			// values are produced, then check the mutations.
			for i, lhs := range st.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pkg.objOf(id)
				if obj == nil || i >= len(st.Rhs) {
					continue
				}
				rhs := st.Rhs[i]
				if len(st.Rhs) != len(st.Lhs) {
					rhs = st.Rhs[0]
				}
				switch {
				case isFreshComposite(rhs):
					fresh[obj] = true
				case epochRooted(rhs):
					derived[obj] = true
				default:
					delete(fresh, obj)
					delete(derived, obj)
				}
			}
			for _, lhs := range st.Lhs {
				checkLHS(lhs)
			}
		case *ast.IncDecStmt:
			checkLHS(st.X)
		case *ast.CallExpr:
			sel := methodCall(st)
			if sel == nil || !epochReachMutators[sel.Sel.Name] {
				return true
			}
			if epochRooted(sel.X) {
				report(st, fmt.Sprintf("%s mutates state reachable from a published *adb.Epoch (clone first: CloneForWrite/CloneForAppend/Clone)", sel.Sel.Name))
			}
		}
		return true
	})
}
