package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one typechecked module package: its syntax, type
// information, and location. Test files (_test.go) are excluded from
// the load — the contracts exempt them, and they may deliberately poke
// internals — but every identifier they mention is collected into
// Program.TestIdents so whole-program analyses (unusedexport) still
// see test-only consumers.
type Package struct {
	// Path is the import path ("squid/internal/adb").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files holds the parsed non-test files, sorted by filename.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Program is the whole loaded module: every package typechecked
// against the same FileSet and importer, plus the test-identifier set.
type Program struct {
	Fset *token.FileSet
	// ModulePath is the module's import-path prefix (from go.mod).
	ModulePath string
	// RootDir is the module root (the go.mod directory).
	RootDir string
	// Pkgs lists the loaded packages in dependency-then-path order.
	Pkgs []*Package
	// TestIdents holds every identifier name that appears anywhere in
	// a _test.go file of the module (textual, unresolved): the
	// conservative "a test uses this" signal for unusedexport.
	TestIdents map[string]bool

	byPath    map[string]*Package
	loading   map[string]bool
	stdImp    types.Importer
	crossUses map[types.Object]bool
}

// LoadModule parses and typechecks every package of the module rooted
// at or above dir. Module-local imports are typechecked recursively
// from source; everything else (the stdlib — the module has no
// external dependencies) resolves through go/types' source importer.
func LoadModule(dir string) (*Program, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	prog := &Program{
		Fset:       fset,
		ModulePath: modPath,
		RootDir:    root,
		TestIdents: map[string]bool{},
		byPath:     map[string]*Package{},
		loading:    map[string]bool{},
		stdImp:     importer.ForCompiler(fset, "source", nil),
	}

	var pkgDirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGoFiles(path)
		if err != nil {
			return err
		}
		if hasGo {
			pkgDirs = append(pkgDirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(pkgDirs)

	for _, d := range pkgDirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := prog.loadLocal(path); err != nil {
			return nil, err
		}
		if err := prog.collectTestIdents(d); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
	}
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// Import implements types.Importer over the whole program: local
// packages load recursively, the rest delegates to the source
// importer.
func (p *Program) Import(path string) (*types.Package, error) {
	if path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/") {
		pkg, err := p.loadLocal(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return p.stdImp.Import(path)
}

// loadLocal typechecks one module-local package (memoized).
func (p *Program) loadLocal(path string) (*Package, error) {
	if pkg, ok := p.byPath[path]; ok {
		return pkg, nil
	}
	if p.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	p.loading[path] = true
	defer delete(p.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, p.ModulePath), "/")
	dir := filepath.Join(p.RootDir, filepath.FromSlash(rel))
	pkg, err := p.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	p.byPath[path] = pkg
	p.Pkgs = append(p.Pkgs, pkg)
	return pkg, nil
}

// LoadExtra parses and typechecks one extra directory (a testdata
// fixture package) against the already-loaded program. The package is
// NOT appended to prog.Pkgs: fixtures import real module packages but
// never become part of the module view.
func (p *Program) LoadExtra(dir, asPath string) (*Package, error) {
	return p.loadDir(dir, asPath)
}

func (p *Program) loadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: p,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, p.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: typechecking %s: %v (and %d more)", path, typeErrs[0], len(typeErrs)-1)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// collectTestIdents parses the directory's _test.go files (syntax
// only) and records every identifier they mention.
func (p *Program) collectTestIdents(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				p.TestIdents[id.Name] = true
			}
			return true
		})
	}
	return nil
}
