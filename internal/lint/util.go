package lint

import (
	"go/ast"
	"go/types"
)

// deref unwraps pointers to the pointee type.
func deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// namedFrom returns the named (or generic-instance origin) type of t
// after stripping pointers, or nil.
func namedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := deref(t).(*types.Named)
	return n
}

// isNamedType reports whether t (through pointers) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedFrom(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Name() != name {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// typeOf returns the type of e per the package's type info, or nil.
func (p *Package) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// objOf resolves an identifier to its object (use or def), or nil.
func (p *Package) objOf(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// calleePkgFunc matches a call to a package-level function pkgPath.name
// (e.g. os.Rename, context.Background).
func (p *Package) calleePkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath
}

// methodCall returns the selector of a method-call expression (the
// callee name and receiver expression), or nil.
func methodCall(call *ast.CallExpr) *ast.SelectorExpr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel
}

// funcDecls yields every function declaration of the package's files.
func (p *Package) funcDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}

// recvTypeName returns the bare receiver type name of a method decl
// ("epochBuilder" for func (eb *epochBuilder) ...), or "".
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
