package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// analyzerLockOrder enforces the writer-lock ordering contract of the
// epoch write path: per-relation writer locks (a map[string]*sync.Mutex
// keyed by relation name) must be acquired in the canonical sorted-name
// order established by initWriteDomains — it is what makes concurrent
// disjoint writers deadlock-free. Three acquisition shapes violate it:
//
//  1. locking while ranging over the mutex map itself (map iteration
//     order is random),
//  2. locking a sequence of literal keys out of sorted order,
//  3. locking inside a loop over a key slice that was not sorted
//     (sort.Strings / slices.Sort) earlier in the same function.
func analyzerLockOrder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "writer locks in a map[string]*sync.Mutex must be acquired in sorted key order (the initWriteDomains canon)",
		Run:  runLockOrder,
	}
}

// isMutexMap reports whether t is a map from strings to (pointers to)
// sync.Mutex/sync.RWMutex.
func isMutexMap(t types.Type) bool {
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	if b, ok := m.Key().Underlying().(*types.Basic); !ok || b.Kind() != types.String {
		return false
	}
	elem := m.Elem()
	return isNamedType(elem, "sync", "Mutex") || isNamedType(elem, "sync", "RWMutex")
}

func runLockOrder(prog *Program, pkg *Package, report func(ast.Node, string)) {
	for _, fd := range pkg.funcDecls() {
		if fd.Body == nil {
			continue
		}
		checkLockOrderFunc(pkg, fd, report)
	}
}

func checkLockOrderFunc(pkg *Package, fd *ast.FuncDecl, report func(ast.Node, string)) {
	// sortedAt records positions of sort calls per key-slice object:
	// sort.Strings(keys), sort.Sort(...), slices.Sort(keys).
	sortedAt := map[types.Object][]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg.calleePkgFunc(call, "sort", "Strings") || pkg.calleePkgFunc(call, "sort", "Sort") ||
			pkg.calleePkgFunc(call, "slices", "Sort") || pkg.calleePkgFunc(call, "sort", "Slice") {
			if len(call.Args) > 0 {
				if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if obj := pkg.objOf(id); obj != nil {
						sortedAt[obj] = append(sortedAt[obj], call.Pos())
					}
				}
			}
		}
		return true
	})

	// lockCallOnMap matches expr.Lock()/expr.RLock() where expr indexes
	// a mutex map, returning the map expression and index expression.
	lockOnMutexMap := func(call *ast.CallExpr) (mapExpr, keyExpr ast.Expr, ok bool) {
		sel := methodCall(call)
		if sel == nil || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return nil, nil, false
		}
		ix, isIx := ast.Unparen(sel.X).(*ast.IndexExpr)
		if !isIx || !isMutexMap(pkg.typeOf(ix.X)) {
			return nil, nil, false
		}
		return ix.X, ix.Index, true
	}

	// Shape 1 + 3: Lock calls inside range statements.
	var walkRanges func(n ast.Node)
	walkRanges = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			rs, ok := m.(*ast.RangeStmt)
			if !ok {
				return true
			}
			overMutexMap := isMutexMap(pkg.typeOf(rs.X))
			var keyObj types.Object
			if id, ok := rs.X.(*ast.Ident); ok {
				keyObj = pkg.objOf(id)
			}
			ast.Inspect(rs.Body, func(b ast.Node) bool {
				call, ok := b.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, _, isLock := lockOnMutexMap(call); !isLock {
					// Also: ranging over the mutex map and locking the
					// range value directly (for _, mu := range m { mu.Lock() }).
					if sel := methodCall(call); overMutexMap && sel != nil &&
						(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
						if vid, ok := rs.Value.(*ast.Ident); ok {
							if rid, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pkg.objOf(rid) == pkg.objOf(vid) {
								report(call, "lock acquired while ranging over the mutex map: map iteration order is random, not the canonical sorted order")
							}
						}
					}
					return true
				}
				if overMutexMap {
					report(call, "lock acquired while ranging over the mutex map: map iteration order is random, not the canonical sorted order")
					return true
				}
				// Shape 3: range over a key slice — require a sort of
				// that slice earlier in this function.
				if keyObj != nil {
					for _, p := range sortedAt[keyObj] {
						if p < rs.Pos() {
							return true // sorted before the loop: canonical
						}
					}
				}
				report(call, "locks acquired in unverified key order: sort the keys first (sort.Strings) to match the canonical sorted-name order")
				return true
			})
			return true
		})
	}
	walkRanges(fd.Body)

	// Shape 2: straight-line literal-key sequences out of order.
	type litLock struct {
		key  string
		call *ast.CallExpr
	}
	var seq []litLock
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.RangeStmt); ok {
			return false // handled above
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		_, keyExpr, isLock := lockOnMutexMap(call)
		if !isLock {
			return true
		}
		tv, ok := pkg.Info.Types[keyExpr]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true
		}
		seq = append(seq, litLock{constant.StringVal(tv.Value), call})
		return true
	})
	for i := 1; i < len(seq); i++ {
		if seq[i].key < seq[i-1].key {
			report(seq[i].call, fmt.Sprintf("writer locks acquired out of sorted order (%q after %q): the canonical order is sorted relation names", seq[i].key, seq[i-1].key))
		}
	}
}
