// Package lint is squid's project-invariant analyzer suite: a
// stdlib-only static-analysis framework (go/parser, go/ast, go/types
// with the source importer — the module has no external dependencies
// and must stay that way) plus the analyzers that machine-check the
// contracts the rest of the codebase states in prose.
//
// The contracts it enforces are the ones correctness actually rests
// on:
//
//   - epochs are immutable once published (epochmutate),
//   - cached RowSets must be Clone()d before mutation (rowsetalias),
//   - context parameters must be threaded, and ambient contexts are
//     forbidden outside main packages and tests (ctxpoll),
//   - a written file must be Sync()ed before the rename that makes it
//     visible (syncrename),
//   - per-relation writer locks are acquired in sorted-name order
//     (lockorder),
//   - a span begun with Root/Child is End()ed or handed off (spanend),
//
// plus two hygiene passes: struct-copies of lock-bearing types
// (mutexcopy — the classic epoch-struct foot-gun, including
// atomic.Pointer fields go vet's copylocks misses) and exported
// identifiers in internal/ packages nothing uses (unusedexport).
//
// Intentional exceptions are declared in the diff, never silently:
//
//	//lint:ignore <analyzer> <reason>
//
// on (or immediately above) the offending line suppresses that
// analyzer there. A suppression without a reason is itself a
// diagnostic — zero bare suppressions is part of the contract.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, anchored to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the canonical file:line:col form the CLI prints and
// the golden tests match.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant check. Run is invoked once per analyzed
// package with the whole loaded program for cross-package questions
// (unusedexport); it reports findings through report, which anchors
// them to the node's position.
type Analyzer struct {
	Name string
	// Doc is the one-line contract statement shown by squid-lint -list
	// and quoted in the README's analyzer table.
	Doc string
	Run func(prog *Program, pkg *Package, report func(ast.Node, string))
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerEpochMutate(),
		analyzerRowSetAlias(),
		analyzerCtxPoll(),
		analyzerSyncRename(),
		analyzerLockOrder(),
		analyzerMutexCopy(),
		analyzerUnusedExport(),
		analyzerSpanEnd(),
	}
}

// AnalyzerNames returns the suite's analyzer names in stable order.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	file      string
	line      int
	analyzers map[string]bool
	reason    string
	pos       token.Position
}

// parseSuppressions extracts every //lint:ignore directive of a file.
// A directive covers diagnostics on its own line (trailing comment) and
// on the line immediately below it (leading comment).
func parseSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:ignore") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
			pos := fset.Position(c.Pos())
			s := suppression{
				file:      pos.Filename,
				line:      pos.Line,
				analyzers: map[string]bool{},
				pos:       pos,
			}
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						s.analyzers[name] = true
					}
				}
				s.reason = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
			}
			out = append(out, s)
		}
	}
	return out
}

// RunAnalyzers runs the given analyzers over every package of prog
// selected by keep (nil keeps all), applies //lint:ignore
// suppressions, and returns the surviving diagnostics sorted by
// position. Bare suppressions (no analyzer or no reason) surface as
// diagnostics of the pseudo-analyzer "suppress" — intentional
// exceptions must say why.
func RunAnalyzers(prog *Program, analyzers []*Analyzer, keep func(*Package) bool) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if keep != nil && !keep(pkg) {
			continue
		}
		diags = append(diags, runOnPackage(prog, pkg, analyzers)...)
	}
	sortDiagnostics(diags)
	return diags
}

// RunOnPackage runs the analyzers over one package (the fixture-test
// entry point), applying that package's suppressions.
func RunOnPackage(prog *Program, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags := runOnPackage(prog, pkg, analyzers)
	sortDiagnostics(diags)
	return diags
}

func runOnPackage(prog *Program, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var sups []suppression
	for _, f := range pkg.Files {
		sups = append(sups, parseSuppressions(prog.Fset, f)...)
	}
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		report := func(n ast.Node, msg string) {
			diags = append(diags, Diagnostic{
				Pos:      prog.Fset.Position(n.Pos()),
				Analyzer: a.Name,
				Message:  msg,
			})
		}
		a.Run(prog, pkg, report)
	}

	// Apply suppressions: a directive covers its own line and the next.
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if s.file == d.Pos.Filename && s.analyzers[d.Analyzer] && s.reason != "" &&
				(s.line == d.Pos.Line || s.line == d.Pos.Line-1) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	diags = kept

	// Malformed directives are findings themselves: no analyzer name,
	// an unknown analyzer, or a missing reason.
	for _, s := range sups {
		switch {
		case len(s.analyzers) == 0:
			diags = append(diags, Diagnostic{Pos: s.pos, Analyzer: "suppress",
				Message: "bare //lint:ignore: name the analyzer and the reason"})
		case s.reason == "":
			diags = append(diags, Diagnostic{Pos: s.pos, Analyzer: "suppress",
				Message: "suppression without a reason: say why the exception is intentional"})
		default:
			for name := range s.analyzers {
				if !known[name] {
					diags = append(diags, Diagnostic{Pos: s.pos, Analyzer: "suppress",
						Message: fmt.Sprintf("suppression names unknown analyzer %q", name)})
				}
			}
		}
	}
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
