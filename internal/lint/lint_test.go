package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The module is loaded once for the whole test binary: every fixture
// typechecks against the same program so imports of real packages
// (squid/internal/adb, ...) resolve from the already-checked module.
var (
	progOnce sync.Once
	progVal  *Program
	progErr  error
)

func loadProg(t *testing.T) *Program {
	t.Helper()
	progOnce.Do(func() {
		progVal, progErr = LoadModule(".")
	})
	if progErr != nil {
		t.Fatalf("LoadModule: %v", progErr)
	}
	return progVal
}

// want is one expectation parsed from a fixture comment: a regular
// expression that must match a diagnostic message reported on the same
// line. Both `// want "..."` and `/* want "..." */` forms are
// recognized (the block form exists so an expectation can share a line
// with a //lint:ignore directive, which runs to end of line).
type want struct {
	re      *regexp.Regexp
	line    int
	matched bool
}

var wantRx = regexp.MustCompile("want\\s+(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// parseWants scans every .go file of dir for want comments and returns
// them keyed by absolute filename.
func parseWants(t *testing.T, dir string) map[string][]*want {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string][]*want{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(abs, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRx.FindAllStringSubmatch(line, -1) {
				// Unquote interprets both the interpreted ("...") and the
				// raw (`...`) form, so "\\(" in a fixture means the regex \(.
				pat, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want literal %s: %v", path, i+1, m[1], err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, pat, err)
				}
				wants[path] = append(wants[path], &want{re: re, line: i + 1})
			}
		}
	}
	return wants
}

// byName resolves analyzer names against the registered suite.
func byName(t *testing.T, names []string) []*Analyzer {
	t.Helper()
	all := Analyzers()
	if names == nil {
		return all
	}
	var out []*Analyzer
	for _, name := range names {
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
			}
		}
		if !found {
			t.Fatalf("no analyzer named %q (have %v)", name, AnalyzerNames())
		}
	}
	return out
}

// checkFixture loads testdata/src/<dir> as import path asPath, runs the
// named analyzers (nil = the full suite), and matches diagnostics
// against the fixture's want comments in both directions: every
// diagnostic needs a matching want on its line, every want must be
// consumed by a diagnostic.
func checkFixture(t *testing.T, dir, asPath string, analyzers []string) {
	t.Helper()
	prog := loadProg(t)
	fixDir := filepath.Join("testdata", "src", dir)
	pkg, err := prog.LoadExtra(fixDir, asPath)
	if err != nil {
		t.Fatalf("LoadExtra(%s): %v", fixDir, err)
	}
	wants := parseWants(t, fixDir)
	diags := RunOnPackage(prog, pkg, byName(t, analyzers))

	for _, d := range diags {
		file, err := filepath.Abs(d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, w := range wants[file] {
			if !w.matched && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: want %q matched no diagnostic", file, w.line, w.re)
			}
		}
	}
}

func TestEpochMutateFixture(t *testing.T) {
	checkFixture(t, "epochmutate", "fixtures/epochmutate", []string{"epochmutate"})
}

func TestRowSetAliasFixture(t *testing.T) {
	checkFixture(t, "rowsetalias", "fixtures/rowsetalias", []string{"rowsetalias"})
}

func TestCtxPollFixture(t *testing.T) {
	checkFixture(t, "ctxpoll", "fixtures/ctxpoll", []string{"ctxpoll"})
}

func TestSyncRenameFixture(t *testing.T) {
	checkFixture(t, "syncrename", "fixtures/syncrename", []string{"syncrename"})
}

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, "lockorder", "fixtures/lockorder", []string{"lockorder"})
}

func TestMutexCopyFixture(t *testing.T) {
	checkFixture(t, "mutexcopy", "fixtures/mutexcopy", []string{"mutexcopy"})
}

func TestSpanEndFixture(t *testing.T) {
	checkFixture(t, "spanend", "fixtures/spanend", []string{"spanend"})
}

// The unusedexport fixture must live under a synthetic internal/ path:
// the analyzer only polices internal/ packages.
func TestUnusedExportFixture(t *testing.T) {
	checkFixture(t, "unusedexport", "fixtures/internal/unusedexport", []string{"unusedexport"})
}

// The suppression fixture runs under the FULL suite: well-formed
// //lint:ignore directives must silence their analyzer, malformed ones
// must surface as "suppress" findings.
func TestSuppressFixture(t *testing.T) {
	checkFixture(t, "suppress", "fixtures/suppress", nil)
}

// TestModuleClean is the invariant the CI lint step enforces: the
// shipped tree has zero findings. A reintroduced violation fails here
// (and makes squid-lint exit non-zero) before it ever lands.
func TestModuleClean(t *testing.T) {
	prog := loadProg(t)
	diags := RunAnalyzers(prog, Analyzers(), nil)
	for _, d := range diags {
		t.Errorf("finding on the shipped tree: %s", d)
	}
}

// The suite's stable order is part of the CLI contract (-run parses
// comma-separated names; the README table lists them in this order).
func TestAnalyzerNamesStable(t *testing.T) {
	got := strings.Join(AnalyzerNames(), ",")
	const want = "epochmutate,rowsetalias,ctxpoll,syncrename,lockorder,mutexcopy,unusedexport,spanend"
	if got != want {
		t.Fatalf("AnalyzerNames() = %s, want %s", got, want)
	}
}
