package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// tracePkgPath is the module path of the span recorder the spanend
// analyzer polices.
const tracePkgPath = "squid/internal/trace"

// analyzerSpanEnd enforces the tracing contract's bookkeeping half: a
// span begun with Recorder.Root or Span.Child must be End()ed in the
// function that began it, or handed off (passed to a call, returned,
// stored) so another owner can end it. A begun-and-dropped span leaves
// its slot open in the recorder forever: the trace renders with a zero
// duration and the phase histograms silently under-count that phase.
func analyzerSpanEnd() *Analyzer {
	return &Analyzer{
		Name: "spanend",
		Doc:  "a span begun with Root/Child must be End()ed in its function or handed off to a new owner",
		Run:  runSpanEnd,
	}
}

// spanBegin is one `x := ....Root(...)` / `x := ....Child(...)` site.
type spanBegin struct {
	name   *ast.Ident
	method string
}

func runSpanEnd(prog *Program, pkg *Package, report func(ast.Node, string)) {
	for _, fd := range pkg.funcDecls() {
		if fd.Body == nil {
			continue
		}

		// Collect the spans this function begins: short variable
		// declarations whose single RHS is a Root/Child call yielding
		// trace.Span. (Spans landing in pre-declared variables or struct
		// fields already have an owner outside this function's scope.)
		var begins []spanBegin
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			sel := methodCall(call)
			if sel == nil || (sel.Sel.Name != "Root" && sel.Sel.Name != "Child") {
				return true
			}
			if !isNamedType(pkg.typeOf(call), tracePkgPath, "Span") {
				return true
			}
			name, ok := as.Lhs[0].(*ast.Ident)
			if !ok || name.Name == "_" {
				return true
			}
			if pkg.Info.Defs[name] != nil {
				begins = append(begins, spanBegin{name: name, method: sel.Sel.Name})
			}
			return true
		})

		for _, b := range begins {
			obj := pkg.Info.Defs[b.name]

			// Classify every use of the span variable. A use as the
			// receiver of a method call (x.End(), x.Add(...), x.Child(...))
			// keeps ownership here; any other use — call argument,
			// return value, right-hand side of an assignment, composite
			// literal element, channel send — hands the span off.
			ended := false
			escaped := false
			receiverUses := map[*ast.Ident]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel := methodCall(call)
				if sel == nil {
					return true
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok || pkg.Info.Uses[id] != obj {
					return true
				}
				receiverUses[id] = true
				if sel.Sel.Name == "End" {
					ended = true
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || pkg.Info.Uses[id] != obj {
					return true
				}
				if !receiverUses[id] {
					escaped = true
				}
				return true
			})

			if !ended && !escaped {
				report(b.name, fmt.Sprintf("span %q begun with %s is never End()ed and never handed off — its recorder slot stays open and the trace under-counts this phase", b.name.Name, b.method))
			}
		}
	}
}
