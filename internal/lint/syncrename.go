package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// analyzerSyncRename enforces the durability rule established by the
// snapshot and WAL work (PR 4/7): a rename that makes a written file
// visible at its final path must be dominated by a Sync() on that
// file. Without the fsync, a crash after the rename can leave a
// truncated file at the final path — an acknowledged snapshot or log
// segment that does not survive power loss.
//
// The check is intraprocedural: a function that creates or opens a
// writable file (os.Create / os.OpenFile / an FS Create) and later
// renames (os.Rename or an FS Rename) must have a Sync call between
// the two. Functions that only rename (pure moves, FS forwarders) are
// not flagged — the write happened elsewhere, and so must the sync.
func analyzerSyncRename() *Analyzer {
	return &Analyzer{
		Name: "syncrename",
		Doc:  "a written file must be Sync()ed before the os.Rename that makes it visible (crash-safe write-then-rename)",
		Run:  runSyncRename,
	}
}

func runSyncRename(prog *Program, pkg *Package, report func(ast.Node, string)) {
	for _, fd := range pkg.funcDecls() {
		if fd.Body == nil {
			continue
		}
		var creates, syncs []token.Pos
		type renameCall struct {
			call *ast.CallExpr
			pos  token.Pos
		}
		var renames []renameCall

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case pkg.calleePkgFunc(call, "os", "Create") || pkg.calleePkgFunc(call, "os", "OpenFile"):
				creates = append(creates, call.Pos())
			case pkg.calleePkgFunc(call, "os", "Rename"):
				renames = append(renames, renameCall{call, call.Pos()})
			default:
				sel := methodCall(call)
				if sel == nil {
					return true
				}
				name := sel.Sel.Name
				switch {
				case name == "Sync" || strings.HasPrefix(name, "sync") || strings.HasSuffix(name, "Sync"):
					syncs = append(syncs, call.Pos())
				case name == "Create" || name == "OpenFile":
					// FS-abstraction variants (iofault.FS).
					creates = append(creates, call.Pos())
				case name == "Rename":
					renames = append(renames, renameCall{call, call.Pos()})
				}
			}
			return true
		})

		for _, r := range renames {
			wrote := false
			for _, c := range creates {
				if c < r.pos {
					wrote = true
					break
				}
			}
			if !wrote {
				continue
			}
			synced := false
			for _, s := range syncs {
				if s < r.pos {
					synced = true
					break
				}
			}
			if !synced {
				report(r.call, "rename of a file written in this function without a preceding Sync(): a crash after the rename can leave a torn file at the final path")
			}
		}
	}
}
