package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// analyzerCtxPoll enforces the cancellation contract: exported entry
// points that accept a context.Context must actually thread it (a dead
// ctx parameter silently breaks per-request timeouts and DiscoverBatch
// cancellation), and ambient contexts — context.Background() /
// context.TODO() — are forbidden outside main packages (cmd/,
// examples/) and _test.go files, where a fresh root context is
// legitimate. Library code must take its context from the caller.
func analyzerCtxPoll() *Analyzer {
	return &Analyzer{
		Name: "ctxpoll",
		Doc:  "exported ctx-taking entry points must use their context; context.Background()/TODO() only in main packages and tests",
		Run:  runCtxPoll,
	}
}

func isContextType(t types.Type) bool {
	n := namedFrom(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

func runCtxPoll(prog *Program, pkg *Package, report func(ast.Node, string)) {
	isMain := pkg.Types != nil && pkg.Types.Name() == "main"
	inCmd := strings.Contains(pkg.Path, "/cmd/") || strings.HasPrefix(pkg.Path, "cmd/")

	for _, f := range pkg.Files {
		if !isMain && !inCmd {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, fn := range []string{"Background", "TODO"} {
					if pkg.calleePkgFunc(call, "context", fn) {
						report(call, fmt.Sprintf("context.%s() in library code: accept a context.Context from the caller instead", fn))
					}
				}
				return true
			})
		}
	}

	for _, fd := range pkg.funcDecls() {
		if fd.Body == nil || !fd.Name.IsExported() || fd.Type.Params == nil {
			continue
		}
		for _, field := range fd.Type.Params.List {
			if !isContextType(pkg.typeOf(field.Type)) {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				obj := pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				if !identUsed(pkg, fd.Body, obj) {
					report(name, fmt.Sprintf("exported %s ignores its context parameter %q — thread it to callees so cancellation propagates", fd.Name.Name, name.Name))
				}
			}
		}
	}
}

// identUsed reports whether obj is referenced anywhere in body.
func identUsed(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
