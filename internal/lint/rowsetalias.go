package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// rowSetMutators are the index.RowSet methods that write the receiver.
var rowSetMutators = map[string]bool{
	"Add":        true,
	"AddAll":     true,
	"AndWith":    true,
	"OrWith":     true,
	"AndNotWith": true,
}

// analyzerRowSetAlias enforces the shared-row-set contract: a RowSet
// obtained from SelCache.RowSet, Filter.RowSet(), or an EntityRowSet*
// property method aliases αDB-cache storage shared across discoveries
// and epochs. It must flow through Clone() before any mutating method;
// mutating the alias corrupts every other reader's cached answer.
func analyzerRowSetAlias() *Analyzer {
	return &Analyzer{
		Name: "rowsetalias",
		Doc:  "a RowSet from SelCache.RowSet / Filter.RowSet / EntityRowSet* is shared cache storage — Clone() before AndWith/OrWith/AndNotWith/Add*",
		Run:  runRowSetAlias,
	}
}

// rowSetSource reports whether a call yields a shared (cache-aliasing)
// *index.RowSet: a method named RowSet or EntityRowSet* whose result
// type is *index.RowSet.
func rowSetSource(pkg *Package, call *ast.CallExpr) bool {
	sel := methodCall(call)
	if sel == nil {
		return false
	}
	name := sel.Sel.Name
	if name != "RowSet" && !strings.HasPrefix(name, "EntityRowSet") {
		return false
	}
	return isNamedType(pkg.typeOf(call), "squid/internal/index", "RowSet")
}

func runRowSetAlias(prog *Program, pkg *Package, report func(ast.Node, string)) {
	for _, fd := range pkg.funcDecls() {
		if fd.Body == nil {
			continue
		}
		// shared tracks locals aliasing cache-owned row sets.
		shared := map[types.Object]bool{}

		isSharedExpr := func(e ast.Expr) bool {
			e = ast.Unparen(e)
			if call, ok := e.(*ast.CallExpr); ok {
				return rowSetSource(pkg, call)
			}
			if id, ok := e.(*ast.Ident); ok {
				return shared[pkg.objOf(id)]
			}
			return false
		}

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, lhs := range st.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := pkg.objOf(id)
					if obj == nil {
						continue
					}
					rhs := ast.Unparen(st.Rhs[i])
					switch {
					case isSharedExpr(rhs):
						shared[obj] = true
					default:
						// Any other assignment — including v.Clone()
						// — detaches the local from cache storage.
						delete(shared, obj)
					}
				}
			case *ast.CallExpr:
				sel := methodCall(st)
				if sel == nil || !rowSetMutators[sel.Sel.Name] {
					return true
				}
				if isSharedExpr(sel.X) {
					report(st, fmt.Sprintf("%s mutates a RowSet aliasing shared αDB cache storage — Clone() it first", sel.Sel.Name))
				}
			}
			return true
		})
	}
}
