// Fixture for the mutexcopy analyzer: copying a value whose type
// contains lock state (sync.Mutex, sync.Once, atomic.*) forks the
// lock, not the protection.
package mutexcopy

import (
	"sync"
	"sync/atomic"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

type chain struct {
	cur  atomic.Pointer[guarded]
	once sync.Once
}

type clean struct{ n int }

// --- positive cases ---

func byValueParam(g guarded) int { // want "by-value parameter"
	return g.n
}

func (g guarded) valueReceiver() int { // want "value receiver"
	return g.n
}

func derefCopy(p *guarded) int {
	c := *p // want "assignment copies lock state"
	return c.n
}

// atomic fields have no Lock method, so go vet's copylocks misses
// them; the epoch-chain foot-gun is exactly this shape.
func atomicByValue(c chain) {} // want "by-value parameter"

func rangeCopies(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range value copies lock state"
		total += g.n
	}
	return total
}

// --- negative cases ---

func pointerParam(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func freshLiteral() {
	g := guarded{n: 1}
	_ = g.n
}

func lockFreeCopy(c clean) clean {
	d := c
	return d
}
