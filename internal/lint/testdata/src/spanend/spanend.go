// Fixture for the spanend analyzer: a span begun with Root/Child must
// be End()ed in the function that began it, or handed off to a new
// owner; beginning a span and dropping it leaves its recorder slot
// open forever.
package spanend

import (
	"context"

	"squid/internal/trace"
)

// --- positive cases ---

func droppedRoot(rec *trace.Recorder) {
	root := rec.Root(trace.PhaseDiscover, "") // want "span \"root\" begun with Root is never End\\(\\)ed"
	root.Add(trace.CounterRows, 1)
}

func droppedChild(parent trace.Span) {
	sub := parent.Child(trace.PhaseResolve, "x") // want "span \"sub\" begun with Child is never End\\(\\)ed"
	_ = sub.Active()
}

// --- negative cases ---

func endedDirect(rec *trace.Recorder) {
	root := rec.Root(trace.PhaseDiscover, "")
	root.End()
}

func endedDeferred(parent trace.Span) {
	sub := parent.Child(trace.PhaseResolve, "")
	defer sub.End()
	sub.Add(trace.CounterRows, 1)
}

// Handing the span to a callee transfers the End obligation.
func escapesAsArgument(ctx context.Context, parent trace.Span) context.Context {
	sub := parent.Child(trace.PhaseAbduce, "")
	return trace.NewContext(ctx, sub)
}

// Returning the span makes the caller the owner.
func escapesAsReturn(parent trace.Span) trace.Span {
	sub := parent.Child(trace.PhaseRows, "")
	return sub
}

// Storing the span gives it an owner beyond this frame.
type spanHolder struct{ sp trace.Span }

func escapesIntoStruct(parent trace.Span) *spanHolder {
	sub := parent.Child(trace.PhaseExecute, "")
	return &spanHolder{sp: sub}
}

// The blank identifier is an explicit discard, not a leak site.
func discarded(parent trace.Span) {
	_ = parent.Child(trace.PhaseResolve, "")
}

// Spans landing in pre-declared variables already have owners outside
// the begin statement; only := definitions are tracked.
func preDeclared(parent trace.Span) {
	var sub trace.Span
	sub = parent.Child(trace.PhaseResolve, "")
	_ = sub
}

// A declared-then-suppressed exception keeps the diff honest.
func knownException(rec *trace.Recorder) {
	//lint:ignore spanend fixture exercises a declared exception
	orphan := rec.Root(trace.PhaseDiscover, "")
	orphan.Add(trace.CounterRows, 1)
}
