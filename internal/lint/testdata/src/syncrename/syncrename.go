// Fixture for the syncrename analyzer: a file written in a function
// must be Sync()ed before the rename that makes it visible.
package syncrename

import "os"

// --- positive cases ---

func writeRenameNoSync(path string) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		f.Close()
		return err
	}
	f.Close()
	return os.Rename(path+".tmp", path) // want "without a preceding Sync"
}

func openFileRenameNoSync(path string) error {
	f, err := os.OpenFile(path+".tmp", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	f.Close()
	return os.Rename(path+".tmp", path) // want "without a preceding Sync"
}

func syncAfterRenameIsTooLate(path string) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if err := os.Rename(path+".tmp", path); err != nil { // want "without a preceding Sync"
		return err
	}
	defer f.Close()
	return f.Sync()
}

// --- negative cases ---

// The crash-safe shape: write, sync, close, rename.
func writeSyncRename(path string) error {
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}

// A pure move writes nothing here; the sync obligation lies with
// whoever wrote the file.
func pureMove(from, to string) error {
	return os.Rename(from, to)
}
