// Fixture for the epochmutate analyzer: mutations of a published
// *adb.Epoch (and state reachable from one) are violations; freshly
// constructed epochs and Clone*-detached state are not.
package epochmutate

import (
	"squid/internal/adb"
	"squid/internal/relation"
)

// --- positive cases: published-epoch mutation ---

func assignField(e *adb.Epoch) {
	e.DerivedDB = nil // want "assignment to field DerivedDB of a published"
}

func assignMapEntry(e *adb.Epoch) {
	e.Entities["movie"] = nil // want "mutation of Entities reachable from a published"
}

func mutateReachableChained(e *adb.Epoch) {
	e.DB.Relation("movie").MustAppend() // want "MustAppend mutates state reachable from a published"
}

func mutateReachableViaLocal(e *adb.Epoch) {
	r := e.DB.Relation("movie")
	r.SetPrimaryKey("id") // want "SetPrimaryKey mutates state reachable from a published"
}

func assignIndexes(e *adb.Epoch) {
	e.Indexes = nil // want "assignment to field Indexes of a published"
}

// --- negative cases ---

// A freshly constructed epoch is private until published; initializing
// its fields is the normal build path.
func freshConstruction() *adb.Epoch {
	e := &adb.Epoch{}
	e.DB = relation.NewDatabase("d")
	e.Entities = map[string]*adb.EntityInfo{}
	return e
}

// CloneForWrite is the sanctioned escape hatch: the clone is private.
func cloneThenMutate(e *adb.Epoch) {
	r := e.DB.Relation("movie").CloneForWrite()
	r.MustAppend()
}

// Reads never trip the analyzer.
func readOnly(e *adb.Epoch) int {
	return e.DB.Relation("movie").NumRows() + len(e.Entities)
}
