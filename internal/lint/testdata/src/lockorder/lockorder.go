// Fixture for the lockorder analyzer: writer locks in a
// map[string]*sync.Mutex must be acquired in sorted key order.
package lockorder

import (
	"sort"
	"sync"
)

// --- positive cases ---

func lockWhileRangingMap(m map[string]*sync.Mutex) {
	for _, mu := range m {
		mu.Lock() // want "ranging over the mutex map"
	}
}

func lockIndexWhileRangingMap(m map[string]*sync.Mutex) {
	for k := range m {
		m[k].Lock() // want "ranging over the mutex map"
	}
}

func literalKeysOutOfOrder(m map[string]*sync.Mutex) {
	m["person"].Lock()
	m["movie"].Lock() // want "out of sorted order"
	m["movie"].Unlock()
	m["person"].Unlock()
}

func unsortedKeySlice(m map[string]*sync.Mutex, keys []string) {
	for _, k := range keys {
		m[k].Lock() // want "unverified key order"
	}
}

// --- negative cases ---

func literalKeysSorted(m map[string]*sync.Mutex) {
	m["movie"].Lock()
	m["person"].Lock()
	m["person"].Unlock()
	m["movie"].Unlock()
}

// The lockDomains shape: sort the union of domains, then acquire.
func sortedKeySlice(m map[string]*sync.Mutex, keys []string) func() {
	sort.Strings(keys)
	for _, k := range keys {
		m[k].Lock()
	}
	return func() {
		for i := len(keys) - 1; i >= 0; i-- {
			m[keys[i]].Unlock()
		}
	}
}
