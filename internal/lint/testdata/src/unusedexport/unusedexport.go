// Fixture for the unusedexport analyzer. The harness loads this
// package under a synthetic "fixtures/internal/unusedexport" import
// path so the internal/-only gate applies. Nothing here is imported
// by the real module, so an exported identifier survives only by
// appearing in a _test.go file of the module (TestIdents) or by being
// structurally reachable from such an identifier's type signature.
package unusedexport

// --- positive cases: dead exported surface ---

func QzDead() int { return 1 } // want "exported identifier QzDead is used by no other package"

type QzOrphan struct{ N int } // want "exported identifier QzOrphan is used by no other package"

const QzDeadConst = 42 // want "exported identifier QzDeadConst is used by no other package"

var QzDeadVar = "unused" // want "exported identifier QzDeadVar is used by no other package"

// --- negative cases ---

// "Discover" appears throughout the module's test files, so the
// TestIdents signal keeps it; QzReachable is exempt because it is
// structurally reachable from Discover's result type.
func Discover() *QzReachable { return nil }

type QzReachable struct{ Hits int }

// Unexported identifiers are never the analyzer's business.
func qzHelper() int { return 0 }

var _ = qzHelper
