// Fixture for the //lint:ignore suppression path, run under the FULL
// analyzer suite: well-formed directives silence their analyzer on
// the covered line, and malformed directives are findings themselves
// (pseudo-analyzer "suppress"). The want expectations for malformed
// directives are block comments so they can share the directive's
// line.
package suppress

import (
	"context"
	"sync"
)

func sink(ctx context.Context) {}

type guarded struct {
	mu sync.Mutex
	n  int
}

// --- well-formed suppressions: no diagnostics anywhere below ---

func lineAbove() {
	//lint:ignore ctxpoll fixture exercises the line-above suppression path
	sink(context.Background())
}

func trailing() {
	sink(context.TODO()) //lint:ignore ctxpoll fixture exercises the trailing-comment suppression path
}

func commaList(p *guarded) int {
	g := *p //lint:ignore mutexcopy,ctxpoll fixture exercises the comma-separated analyzer list
	return g.n
}

// --- malformed directives are findings of pseudo-analyzer "suppress" ---

func malformed() {
	/* want "bare //lint:ignore" */ //lint:ignore
	sink(nil)
	/* want "suppression without a reason" */ //lint:ignore ctxpoll
	sink(nil)
	/* want `unknown analyzer "nosuchanalyzer"` */ //lint:ignore nosuchanalyzer reason text present
	sink(nil)
}

// A reasonless directive does not suppress: the violation surfaces too.
func reasonlessDoesNotSuppress() {
	/* want "suppression without a reason" */ //lint:ignore ctxpoll
	sink(context.Background())                // want "context.Background"
}
