// Fixture for the rowsetalias analyzer: a RowSet obtained from the
// selectivity cache, a Filter, or an EntityRowSet* property method is
// shared storage — mutating it without Clone() is a violation.
package rowsetalias

import (
	"squid/internal/abduction"
	"squid/internal/adb"
	"squid/internal/index"
)

func mk() *index.RowSet { return index.NewRowSet(8) }

// --- positive cases: mutating a cache-aliasing set ---

func chainedMutation(c *adb.SelCache, k adb.SelKey) {
	c.RowSet(k, mk).AndWith(nil) // want "AndWith mutates a RowSet aliasing shared"
}

func filterAlias(f *abduction.Filter) {
	s := f.RowSet()
	s.Add(1) // want "Add mutates a RowSet aliasing shared"
}

func propertyAlias(p *adb.BasicProperty) {
	s := p.EntityRowSetInRange(0, 10)
	s.OrWith(nil) // want "OrWith mutates a RowSet aliasing shared"
}

func aliasCopied(f *abduction.Filter) {
	s := f.RowSet()
	t := s
	t.AndNotWith(nil) // want "AndNotWith mutates a RowSet aliasing shared"
}

// Under the adaptive representation, highly-selective cached sets live
// in the sparse (sorted-array) form — they are exactly as shared as
// dense ones, and the bulk mutators corrupt them just the same.
func sparseCachedBulkMutation(f *abduction.Filter) {
	s := f.RowSet()
	s.AddAll([]int{1, 2}) // want "AddAll mutates a RowSet aliasing shared"
}

func sparseCacheComputeAlias(c *adb.SelCache, k adb.SelKey) {
	s := c.RowSet(k, func() *index.RowSet { return index.RowSetFromSorted([]int{3}) })
	s.AndWith(nil) // want "AndWith mutates a RowSet aliasing shared"
}

// --- negative cases ---

// Clone() detaches from cache storage; the copy is private.
func cloneDetaches(f *abduction.Filter) {
	s := f.RowSet().Clone()
	s.AndWith(nil)
}

// Read-only methods never trip the analyzer.
func readsAreFine(f *abduction.Filter) int {
	s := f.RowSet()
	if s.Contains(3) {
		return s.Count()
	}
	return len(s.ToSorted())
}

// A set built locally is owned by the caller.
func freshSetIsPrivate() {
	s := index.NewRowSet(64)
	s.Add(3)
	s.AndWith(nil)
}

// A locally-built sparse set (RowSetFromSorted) is private too — form
// never decides ownership.
func freshSparseIsPrivate() {
	s := index.RowSetFromSorted([]int{1, 2, 3})
	s.AddAll([]int{9})
	s.AndNotWith(nil)
}
