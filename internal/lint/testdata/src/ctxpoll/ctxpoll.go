// Fixture for the ctxpoll analyzer: library code must thread contexts
// from the caller — ambient roots and dead ctx parameters are
// violations.
package ctxpoll

import "context"

func work(ctx context.Context) error { return ctx.Err() }

// --- positive cases ---

func ambientBackground() error {
	return work(context.Background()) // want "context.Background\\(\\) in library code"
}

func ambientTODO() error {
	return work(context.TODO()) // want "context.TODO\\(\\) in library code"
}

// DeadContext accepts a ctx and then ignores it: cancellation cannot
// propagate through this entry point.
func DeadContext(ctx context.Context, n int) int { // want "exported DeadContext ignores its context parameter"
	return n * 2
}

// --- negative cases ---

// Threading the context is the contract.
func Threaded(ctx context.Context) error {
	return work(ctx)
}

// Unexported helpers may hold a ctx they do not use (wrappers threading
// other state); only exported entry points are checked.
func quietHelper(ctx context.Context) int { return 0 }
