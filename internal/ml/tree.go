// Package ml provides the machine-learning substrate for the baseline
// comparisons of §7.5/§7.6: a CART-style binary decision tree with Gini
// splitting over mixed categorical/numeric features, and a bagging
// random forest. Both are built from scratch on the standard library.
package ml

import (
	"math"
	"math/rand"
	"sort"
)

// Feature describes one column of the feature matrix.
type Feature struct {
	Name string
	// Categorical features use equality splits (x == v); numeric
	// features use threshold splits (x ≤ t). Categorical values are
	// integer codes stored in float64 cells; missing values are -1
	// (categorical) or NaN (numeric) and fail every test.
	Categorical bool
}

// MissingCat is the encoded value of a missing categorical cell.
const MissingCat = -1

// TreeConfig tunes tree induction.
type TreeConfig struct {
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf.
	MinLeaf int
	// MaxThresholds caps the numeric split candidates per feature.
	MaxThresholds int
	// MaxCategories caps the categorical split candidates per feature.
	MaxCategories int
	// FeatureSubset, when > 0, samples that many features per split
	// (random-forest mode); 0 considers all features.
	FeatureSubset int
	// Rng drives feature subsetting; required when FeatureSubset > 0.
	Rng *rand.Rand
}

// DefaultTreeConfig returns a configuration suitable for the baseline
// experiments.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 12, MinLeaf: 2, MaxThresholds: 16, MaxCategories: 24}
}

// Node is a binary tree node. Internal nodes route rows for which the
// test holds to True, others (including missing values) to False.
type Node struct {
	Leaf bool
	// Prob is the positive-class probability at a leaf.
	Prob float64
	// N is the number of training samples that reached the node.
	N int

	Feat      int
	Eq        bool    // true: x == Threshold; false: x ≤ Threshold
	Threshold float64 //
	True      *Node
	False     *Node
}

// Tree is a trained decision tree.
type Tree struct {
	Root  *Node
	Feats []Feature
}

// Train builds a decision tree on rows X with binary labels y.
func Train(X [][]float64, y []int, feats []Feature, cfg TreeConfig) *Tree {
	if cfg.MaxDepth == 0 {
		cfg = DefaultTreeConfig()
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{Feats: feats}
	t.Root = grow(X, y, idx, feats, cfg, 0)
	return t
}

func leaf(y []int, idx []int) *Node {
	pos := 0
	for _, i := range idx {
		pos += y[i]
	}
	p := 0.0
	if len(idx) > 0 {
		p = float64(pos) / float64(len(idx))
	}
	return &Node{Leaf: true, Prob: p, N: len(idx)}
}

func grow(X [][]float64, y []int, idx []int, feats []Feature, cfg TreeConfig, depth int) *Node {
	node := leaf(y, idx)
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || node.Prob == 0 || node.Prob == 1 {
		return node
	}
	feat, eq, thr, gain := bestSplit(X, y, idx, feats, cfg)
	if gain <= 1e-12 {
		return node
	}
	var trueIdx, falseIdx []int
	for _, i := range idx {
		if testRow(X[i], feat, eq, thr) {
			trueIdx = append(trueIdx, i)
		} else {
			falseIdx = append(falseIdx, i)
		}
	}
	if len(trueIdx) < cfg.MinLeaf || len(falseIdx) < cfg.MinLeaf {
		return node
	}
	node.Leaf = false
	node.Feat = feat
	node.Eq = eq
	node.Threshold = thr
	node.True = grow(X, y, trueIdx, feats, cfg, depth+1)
	node.False = grow(X, y, falseIdx, feats, cfg, depth+1)
	return node
}

func testRow(x []float64, feat int, eq bool, thr float64) bool {
	v := x[feat]
	if eq {
		return v == thr && v != MissingCat
	}
	return v <= thr // NaN fails, routing missing numerics to False
}

// gini computes the Gini impurity of a (pos, total) split side.
func gini(pos, total int) float64 {
	if total == 0 {
		return 0
	}
	p := float64(pos) / float64(total)
	return 2 * p * (1 - p)
}

// bestSplit searches candidate splits and returns the best (feature,
// kind, threshold) by Gini gain.
func bestSplit(X [][]float64, y []int, idx []int, feats []Feature, cfg TreeConfig) (feat int, eq bool, thr float64, gain float64) {
	totalPos := 0
	for _, i := range idx {
		totalPos += y[i]
	}
	parent := gini(totalPos, len(idx))
	bestGain := 0.0
	bestFeat, bestEq, bestThr := -1, false, 0.0

	candidates := featureCandidates(len(feats), cfg)
	for _, f := range candidates {
		if feats[f].Categorical {
			for _, code := range categoryCandidates(X, idx, f, cfg.MaxCategories) {
				g := splitGain(X, y, idx, f, true, code, parent)
				if g > bestGain {
					bestGain, bestFeat, bestEq, bestThr = g, f, true, code
				}
			}
		} else {
			for _, t := range thresholdCandidates(X, idx, f, cfg.MaxThresholds) {
				g := splitGain(X, y, idx, f, false, t, parent)
				if g > bestGain {
					bestGain, bestFeat, bestEq, bestThr = g, f, false, t
				}
			}
		}
	}
	return bestFeat, bestEq, bestThr, bestGain
}

func featureCandidates(n int, cfg TreeConfig) []int {
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	if cfg.FeatureSubset <= 0 || cfg.FeatureSubset >= n || cfg.Rng == nil {
		return all
	}
	return cfg.Rng.Perm(n)[:cfg.FeatureSubset]
}

// categoryCandidates returns the most frequent category codes among the
// rows (excluding missing).
func categoryCandidates(X [][]float64, idx []int, f, cap int) []float64 {
	counts := map[float64]int{}
	for _, i := range idx {
		v := X[i][f]
		if v != MissingCat {
			counts[v]++
		}
	}
	codes := make([]float64, 0, len(counts))
	for c := range counts {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(a, b int) bool {
		if counts[codes[a]] != counts[codes[b]] {
			return counts[codes[a]] > counts[codes[b]]
		}
		return codes[a] < codes[b]
	})
	if len(codes) > cap {
		codes = codes[:cap]
	}
	return codes
}

// thresholdCandidates returns up to cap quantile thresholds of the
// observed (non-NaN) values.
func thresholdCandidates(X [][]float64, idx []int, f, cap int) []float64 {
	vals := make([]float64, 0, len(idx))
	for _, i := range idx {
		v := X[i][f]
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) < 2 {
		return nil
	}
	sort.Float64s(vals)
	var out []float64
	seen := map[float64]bool{}
	for k := 1; k <= cap; k++ {
		q := vals[(len(vals)-1)*k/(cap+1)]
		if !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	return out
}

func splitGain(X [][]float64, y []int, idx []int, f int, eq bool, thr float64, parent float64) float64 {
	tPos, tN, fPos, fN := 0, 0, 0, 0
	for _, i := range idx {
		if testRow(X[i], f, eq, thr) {
			tN++
			tPos += y[i]
		} else {
			fN++
			fPos += y[i]
		}
	}
	if tN == 0 || fN == 0 {
		return 0
	}
	n := float64(len(idx))
	child := float64(tN)/n*gini(tPos, tN) + float64(fN)/n*gini(fPos, fN)
	return parent - child
}

// PredictProba returns the positive-class probability for a row.
func (t *Tree) PredictProba(x []float64) float64 {
	n := t.Root
	for !n.Leaf {
		if testRow(x, n.Feat, n.Eq, n.Threshold) {
			n = n.True
		} else {
			n = n.False
		}
	}
	return n.Prob
}

// Predict returns the 0/1 class at threshold 0.5.
func (t *Tree) Predict(x []float64) int {
	if t.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// Condition is one predicate on a root-to-leaf path.
type Condition struct {
	Feat      int
	Eq        bool // x == Threshold on the True branch
	Negated   bool // condition was taken on the False branch
	Threshold float64
}

// PositivePaths returns the root-to-leaf condition paths of all leaves
// predicted positive (prob ≥ 0.5). The union of these paths is the
// query a decision-tree QRE system like TALOS produces; the total
// condition count is its predicate count.
func (t *Tree) PositivePaths() [][]Condition {
	var out [][]Condition
	var walk func(n *Node, path []Condition)
	walk = func(n *Node, path []Condition) {
		if n.Leaf {
			if n.Prob >= 0.5 && n.N > 0 {
				out = append(out, append([]Condition(nil), path...))
			}
			return
		}
		walk(n.True, append(path, Condition{Feat: n.Feat, Eq: n.Eq, Threshold: n.Threshold}))
		walk(n.False, append(path, Condition{Feat: n.Feat, Eq: n.Eq, Negated: true, Threshold: n.Threshold}))
	}
	walk(t.Root, nil)
	return out
}

// NumPredicates counts the total conditions across positive paths.
func (t *Tree) NumPredicates() int {
	n := 0
	for _, p := range t.PositivePaths() {
		n += len(p)
	}
	return n
}

// Depth returns the tree height.
func (t *Tree) Depth() int {
	var d func(n *Node) int
	d = func(n *Node) int {
		if n == nil || n.Leaf {
			return 0
		}
		l, r := d(n.True), d(n.False)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return d(t.Root)
}
