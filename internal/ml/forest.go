package ml

import "math/rand"

// ForestConfig tunes the bagging random forest.
type ForestConfig struct {
	NumTrees int
	Tree     TreeConfig
	Seed     int64
}

// DefaultForestConfig returns a configuration suitable for the baseline
// experiments.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{NumTrees: 15, Tree: DefaultTreeConfig(), Seed: 1}
}

// Forest is a bagging ensemble of decision trees with per-split feature
// subsampling.
type Forest struct {
	Trees []*Tree
}

// TrainForest builds the ensemble: each tree trains on a bootstrap
// sample of the rows with √d features considered per split.
func TrainForest(X [][]float64, y []int, feats []Feature, cfg ForestConfig) *Forest {
	if cfg.NumTrees == 0 {
		cfg = DefaultForestConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	subset := isqrt(len(feats))
	if subset < 1 {
		subset = 1
	}
	f := &Forest{}
	for b := 0; b < cfg.NumTrees; b++ {
		// Bootstrap sample.
		bx := make([][]float64, len(X))
		by := make([]int, len(X))
		for i := range bx {
			j := rng.Intn(len(X))
			bx[i] = X[j]
			by[i] = y[j]
		}
		tc := cfg.Tree
		if tc.MaxDepth == 0 {
			tc = DefaultTreeConfig()
		}
		tc.FeatureSubset = subset
		tc.Rng = rand.New(rand.NewSource(rng.Int63()))
		f.Trees = append(f.Trees, Train(bx, by, feats, tc))
	}
	return f
}

// PredictProba averages the member trees' probabilities.
func (f *Forest) PredictProba(x []float64) float64 {
	if len(f.Trees) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range f.Trees {
		s += t.PredictProba(x)
	}
	return s / float64(len(f.Trees))
}

// Predict returns the 0/1 class at threshold 0.5.
func (f *Forest) Predict(x []float64) int {
	if f.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// Classifier is the probability interface shared by Tree and Forest,
// consumed by the PU-learning wrapper.
type Classifier interface {
	PredictProba(x []float64) float64
}

var (
	_ Classifier = (*Tree)(nil)
	_ Classifier = (*Forest)(nil)
)
