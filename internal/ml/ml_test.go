package ml

import (
	"math"
	"math/rand"
	"testing"
)

// axisProblem builds a linearly separable numeric problem: positive iff
// x0 > 5.
func axisProblem(n int, seed int64) ([][]float64, []int, []Feature) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		x0 := rng.Float64() * 10
		x1 := rng.Float64() * 10
		X[i] = []float64{x0, x1}
		if x0 > 5 {
			y[i] = 1
		}
	}
	return X, y, []Feature{{Name: "x0"}, {Name: "x1"}}
}

// catProblem builds a categorical problem: positive iff color == 2.
func catProblem(n int, seed int64) ([][]float64, []int, []Feature) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		color := float64(rng.Intn(5))
		size := float64(rng.Intn(3))
		X[i] = []float64{color, size}
		if color == 2 {
			y[i] = 1
		}
	}
	feats := []Feature{{Name: "color", Categorical: true}, {Name: "size", Categorical: true}}
	return X, y, feats
}

func accuracy(pred func([]float64) int, X [][]float64, y []int) float64 {
	correct := 0
	for i := range X {
		if pred(X[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}

func TestTreeNumericSplit(t *testing.T) {
	X, y, feats := axisProblem(500, 1)
	tree := Train(X, y, feats, DefaultTreeConfig())
	if acc := accuracy(tree.Predict, X, y); acc < 0.97 {
		t.Errorf("train accuracy=%v", acc)
	}
	// Holdout generalization.
	Xt, yt, _ := axisProblem(300, 2)
	if acc := accuracy(tree.Predict, Xt, yt); acc < 0.93 {
		t.Errorf("test accuracy=%v", acc)
	}
}

func TestTreeCategoricalSplit(t *testing.T) {
	X, y, feats := catProblem(400, 3)
	tree := Train(X, y, feats, DefaultTreeConfig())
	if acc := accuracy(tree.Predict, X, y); acc != 1.0 {
		t.Errorf("categorical accuracy=%v want 1.0 (exactly separable)", acc)
	}
	// The tree should be shallow: one equality split suffices.
	if d := tree.Depth(); d > 2 {
		t.Errorf("depth=%d want ≤2", d)
	}
}

func TestTreePureLeafShortCircuit(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	tree := Train(X, y, []Feature{{Name: "x"}}, DefaultTreeConfig())
	if !tree.Root.Leaf || tree.Root.Prob != 1 {
		t.Error("all-positive training set must yield a pure leaf root")
	}
}

func TestTreeMinLeaf(t *testing.T) {
	X, y, feats := axisProblem(50, 4)
	cfg := DefaultTreeConfig()
	cfg.MinLeaf = 20
	tree := Train(X, y, feats, cfg)
	// Count smallest leaf.
	var minN func(n *Node) int
	minN = func(n *Node) int {
		if n.Leaf {
			return n.N
		}
		l, r := minN(n.True), minN(n.False)
		if l < r {
			return l
		}
		return r
	}
	if got := minN(tree.Root); got < cfg.MinLeaf {
		t.Errorf("leaf with %d samples violates MinLeaf=%d", got, cfg.MinLeaf)
	}
}

func TestMissingValuesRouteFalse(t *testing.T) {
	feats := []Feature{{Name: "x"}}
	tree := &Tree{
		Feats: feats,
		Root: &Node{
			Feat: 0, Threshold: 5,
			True:  &Node{Leaf: true, Prob: 1, N: 1},
			False: &Node{Leaf: true, Prob: 0, N: 1},
		},
	}
	if tree.Predict([]float64{math.NaN()}) != 0 {
		t.Error("NaN must route to the False branch")
	}
	catTree := &Tree{
		Feats: []Feature{{Name: "c", Categorical: true}},
		Root: &Node{
			Feat: 0, Eq: true, Threshold: MissingCat,
			True:  &Node{Leaf: true, Prob: 1, N: 1},
			False: &Node{Leaf: true, Prob: 0, N: 1},
		},
	}
	if catTree.Predict([]float64{MissingCat}) != 0 {
		t.Error("missing categorical must never satisfy an equality test")
	}
}

func TestPositivePathsAndPredicates(t *testing.T) {
	X, y, feats := catProblem(400, 5)
	tree := Train(X, y, feats, DefaultTreeConfig())
	paths := tree.PositivePaths()
	if len(paths) == 0 {
		t.Fatal("no positive paths")
	}
	if tree.NumPredicates() == 0 {
		t.Error("predicate count")
	}
	// Every positive path must actually classify a matching row
	// positive: check path conditions are consistent with prediction.
	for _, p := range paths {
		if len(p) == 0 {
			continue
		}
		// Build a row satisfying the path.
		row := []float64{MissingCat, MissingCat}
		ok := true
		for _, c := range p {
			if c.Eq && !c.Negated {
				row[c.Feat] = c.Threshold
			} else if c.Eq && c.Negated {
				if row[c.Feat] == c.Threshold {
					ok = false
				}
			}
		}
		if ok && tree.Predict(row) != 1 {
			t.Errorf("row built from positive path predicted negative: %v", row)
		}
	}
}

func TestForestImprovesOrMatchesTree(t *testing.T) {
	// Noisy problem: forest should at least match a single tree
	// out-of-sample.
	rng := rand.New(rand.NewSource(6))
	n := 600
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a, b := rng.Float64()*10, rng.Float64()*10
		X[i] = []float64{a, b}
		if a+b > 10 {
			y[i] = 1
		}
		if rng.Intn(20) == 0 {
			y[i] = 1 - y[i] // 5% label noise
		}
	}
	feats := []Feature{{Name: "a"}, {Name: "b"}}
	split := n * 2 / 3
	tree := Train(X[:split], y[:split], feats, DefaultTreeConfig())
	forest := TrainForest(X[:split], y[:split], feats, DefaultForestConfig())
	accT := accuracy(tree.Predict, X[split:], y[split:])
	accF := accuracy(forest.Predict, X[split:], y[split:])
	if accF < accT-0.05 {
		t.Errorf("forest=%v much worse than tree=%v", accF, accT)
	}
	if accF < 0.8 {
		t.Errorf("forest accuracy too low: %v", accF)
	}
}

func TestForestDeterminism(t *testing.T) {
	X, y, feats := axisProblem(200, 7)
	a := TrainForest(X, y, feats, DefaultForestConfig())
	b := TrainForest(X, y, feats, DefaultForestConfig())
	for i := range X {
		if a.PredictProba(X[i]) != b.PredictProba(X[i]) {
			t.Fatal("forest training not deterministic under fixed seed")
		}
	}
}

func TestProbaBounds(t *testing.T) {
	X, y, feats := axisProblem(300, 8)
	tree := Train(X, y, feats, DefaultTreeConfig())
	forest := TrainForest(X, y, feats, DefaultForestConfig())
	for i := range X {
		for _, p := range []float64{tree.PredictProba(X[i]), forest.PredictProba(X[i])} {
			if p < 0 || p > 1 {
				t.Fatalf("probability %v out of bounds", p)
			}
		}
	}
}

func TestGini(t *testing.T) {
	if gini(0, 10) != 0 || gini(10, 10) != 0 {
		t.Error("pure sets have zero impurity")
	}
	if g := gini(5, 10); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("balanced gini=%v want 0.5", g)
	}
	if gini(3, 0) != 0 {
		t.Error("empty set")
	}
}
