// Package sqlgen renders abduced queries as SQL text, in both forms the
// paper presents: the SPJ form over the αDB's derived relations (Q5) and
// the equivalent SPJAI form over the original schema with GROUP BY /
// HAVING for derived filters (Q4). It also lowers abduced queries to
// engine.Query plans so they can be executed for runtime comparisons
// (Fig 11).
package sqlgen

import (
	"fmt"
	"sort"
	"strings"

	"squid/internal/abduction"
	"squid/internal/adb"
	"squid/internal/engine"
	"squid/internal/relation"
)

// AlphaSQL renders the abduced query in the αDB SPJ form (paper Q5):
// derived filters become predicates over the materialized derived
// relations.
func AlphaSQL(res *abduction.Result) string {
	entity := res.Base.Entity
	pk := res.EntityInfo().PK

	from := []string{entity}
	var where []string
	seenRel := map[string]bool{entity: true}

	// aliasFor returns the name to reference a relation by, adding it to
	// FROM; repeated use of a multi-valued relation gets a fresh alias,
	// since two value predicates on one instance would be unsatisfiable.
	aliasFor := func(name string, needAlias bool) string {
		if !seenRel[name] {
			seenRel[name] = true
			from = append(from, name)
			return name
		}
		if !needAlias {
			return name
		}
		alias := fmt.Sprintf("%s_%d", name, len(from))
		from = append(from, fmt.Sprintf("%s AS %s", name, alias))
		return alias
	}

	for _, f := range orderedFilters(res.Filters) {
		switch f.Kind {
		case abduction.BasicNumeric:
			a := f.Basic.Access
			where = append(where,
				fmt.Sprintf("%s.%s >= %s", entity, a.Column, trimFloat(f.Lo)),
				fmt.Sprintf("%s.%s <= %s", entity, a.Column, trimFloat(f.Hi)))
		case abduction.BasicCategorical:
			where = append(where, basicCategoricalSQL(entity, pk, f, aliasFor)...)
		case abduction.Derived:
			alias := aliasFor(f.Derivd.RelName, true)
			where = append(where,
				fmt.Sprintf("%s.%s = %s.entity_id", entity, pk, alias),
				fmt.Sprintf("%s.value = '%s'", alias, f.Value()))
			if f.NormUse {
				where = append(where, fmt.Sprintf("%s.count >= %.3f * degree(%s.%s)", alias, f.ThetaN, entity, pk))
			} else {
				where = append(where, fmt.Sprintf("%s.count >= %d", alias, f.Theta))
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s.%s\nFROM %s", entity, res.Base.Attr, strings.Join(from, ", "))
	if len(where) > 0 {
		fmt.Fprintf(&b, "\nWHERE %s", strings.Join(where, "\n  AND "))
	}
	return b.String()
}

// OriginalSQL renders the abduced query in the original-schema SPJAI
// form (paper Q4): derived filters expand to fact-table joins with
// GROUP BY / HAVING count(*). Multiple derived filters render as an
// INTERSECT of per-filter blocks, since each needs its own aggregation.
func OriginalSQL(res *abduction.Result) string {
	entity := res.Base.Entity
	pk := res.EntityInfo().PK

	var basics []*abduction.Filter
	var deriveds []*abduction.Filter
	for _, f := range orderedFilters(res.Filters) {
		if f.Kind == abduction.Derived {
			deriveds = append(deriveds, f)
		} else {
			basics = append(basics, f)
		}
	}

	block := func(derived *abduction.Filter) string {
		from := []string{entity}
		var where []string
		seenRel := map[string]bool{entity: true}
		addRel := func(name string) bool {
			if seenRel[name] {
				return false
			}
			seenRel[name] = true
			from = append(from, name)
			return true
		}
		aliasFor := func(name string, needAlias bool) string {
			if addRel(name) || !needAlias {
				return name
			}
			alias := fmt.Sprintf("%s_%d", name, len(from))
			from = append(from, fmt.Sprintf("%s AS %s", name, alias))
			return alias
		}
		for _, f := range basics {
			switch f.Kind {
			case abduction.BasicNumeric:
				where = append(where,
					fmt.Sprintf("%s.%s >= %s", entity, f.Basic.Access.Column, trimFloat(f.Lo)),
					fmt.Sprintf("%s.%s <= %s", entity, f.Basic.Access.Column, trimFloat(f.Hi)))
			case abduction.BasicCategorical:
				where = append(where, basicCategoricalSQL(entity, pk, f, aliasFor)...)
			}
		}
		var groupBy string
		if derived != nil {
			d := derived.Derivd
			addRel(d.Fact1)
			where = append(where, fmt.Sprintf("%s.%s = %s.%s", entity, pk, d.Fact1, d.Fact1EntityCol))
			via := d.Via
			switch d.Target.Type {
			case adb.Degree:
				// Count distinct associated entities; the join itself
				// suffices.
			case adb.Direct:
				addRel(via)
				where = append(where, fmt.Sprintf("%s.%s = %s.%s", d.Fact1, d.Fact1ViaCol, via, d.ViaPK))
				where = append(where, fmt.Sprintf("%s.%s = '%s'", via, d.Target.Column, derived.Value()))
			case adb.FKDim:
				addRel(via)
				addRel(d.Target.Dim)
				where = append(where,
					fmt.Sprintf("%s.%s = %s.%s", d.Fact1, d.Fact1ViaCol, via, d.ViaPK),
					fmt.Sprintf("%s.%s = %s.%s", via, d.Target.Column, d.Target.Dim, d.Target.DimPK),
					fmt.Sprintf("%s.%s = '%s'", d.Target.Dim, d.Target.DimValueCol, derived.Value()))
			case adb.FactDim:
				addRel(d.Target.Fact)
				addRel(d.Target.Dim)
				where = append(where,
					fmt.Sprintf("%s.%s = %s.%s", d.Fact1, d.Fact1ViaCol, d.Target.Fact, d.Target.FactEntityCol),
					fmt.Sprintf("%s.%s = %s.%s", d.Target.Fact, d.Target.FactDimCol, d.Target.Dim, d.Target.DimPK),
					fmt.Sprintf("%s.%s = '%s'", d.Target.Dim, d.Target.DimValueCol, derived.Value()))
			}
			theta := fmt.Sprintf("%d", derived.Theta)
			if derived.NormUse {
				theta = fmt.Sprintf("%.3f * total(%s.%s)", derived.ThetaN, entity, pk)
			}
			groupBy = fmt.Sprintf("\nGROUP BY %s.%s\nHAVING count(*) >= %s", entity, pk, theta)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "SELECT %s.%s\nFROM %s", entity, res.Base.Attr, strings.Join(from, ", "))
		if len(where) > 0 {
			fmt.Fprintf(&b, "\nWHERE %s", strings.Join(where, "\n  AND "))
		}
		b.WriteString(groupBy)
		return b.String()
	}

	if len(deriveds) == 0 {
		return block(nil)
	}
	blocks := make([]string, 0, len(deriveds))
	for i, d := range deriveds {
		if i == 0 {
			blocks = append(blocks, block(d))
		} else {
			// Later blocks carry only the derived condition; basics are
			// already enforced by the first block of the intersection.
			saved := basics
			basics = nil
			blocks = append(blocks, block(d))
			basics = saved
		}
	}
	return strings.Join(blocks, "\nINTERSECT\n")
}

// basicCategoricalSQL emits the predicate (and joins) for a basic
// categorical filter, routing by access path. aliasFor registers a
// relation in FROM and returns the name to use; multi-valued access
// paths request a fresh alias on reuse so each filter constrains its
// own join instance.
func basicCategoricalSQL(entity, pk string, f *abduction.Filter, aliasFor func(name string, needAlias bool) string) []string {
	a := f.Basic.Access
	var out []string
	valuePred := func(col string) string {
		if len(f.Values) == 1 {
			return fmt.Sprintf("%s = '%s'", col, f.Values[0])
		}
		quoted := make([]string, len(f.Values))
		for i, v := range f.Values {
			quoted[i] = "'" + v + "'"
		}
		return fmt.Sprintf("%s IN (%s)", col, strings.Join(quoted, ", "))
	}
	switch a.Type {
	case adb.Direct:
		out = append(out, valuePred(entity+"."+a.Column))
	case adb.FKDim:
		dim := aliasFor(a.Dim, false)
		out = append(out,
			fmt.Sprintf("%s.%s = %s.%s", entity, a.Column, dim, a.DimPK),
			valuePred(dim+"."+a.DimValueCol))
	case adb.FactDim:
		fact := aliasFor(a.Fact, true)
		dim := aliasFor(a.Dim, true)
		out = append(out,
			fmt.Sprintf("%s.%s = %s.%s", entity, pk, fact, a.FactEntityCol),
			fmt.Sprintf("%s.%s = %s.%s", fact, a.FactDimCol, dim, a.DimPK),
			valuePred(dim+"."+a.DimValueCol))
	case adb.AttrTable:
		fact := aliasFor(a.Fact, true)
		out = append(out,
			fmt.Sprintf("%s.%s = %s.%s", entity, pk, fact, a.FactEntityCol),
			valuePred(fact+"."+a.Column))
	}
	return out
}

// orderedFilters returns filters sorted for deterministic SQL: basics
// first, then derived, alphabetical by attribute and value.
func orderedFilters(fs []*abduction.Filter) []*abduction.Filter {
	out := append([]*abduction.Filter(nil), fs...)
	sort.SliceStable(out, func(i, j int) bool {
		ki, kj := int(out[i].Kind), int(out[j].Kind)
		if ki != kj {
			return ki < kj
		}
		if out[i].Attr() != out[j].Attr() {
			return out[i].Attr() < out[j].Attr()
		}
		return out[i].Value() < out[j].Value()
	})
	return out
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// PredicateCount reports the number of join and selection predicates of
// the abduced query in its αDB SPJ form — the "#Predicates" metric of
// Figs 14/15. Joins contributed by filter access paths are counted once
// per distinct joined relation.
func PredicateCount(res *abduction.Result) (joins, selections int) {
	entity := res.Base.Entity
	seenRel := map[string]bool{entity: true}
	countRel := func(name string) {
		if !seenRel[name] {
			seenRel[name] = true
			joins++
		}
	}
	for _, f := range res.Filters {
		switch f.Kind {
		case abduction.BasicNumeric:
			selections += 2
		case abduction.BasicCategorical:
			a := f.Basic.Access
			switch a.Type {
			case adb.FKDim:
				countRel(a.Dim)
			case adb.FactDim:
				countRel(a.Fact)
				countRel(a.Dim)
			case adb.AttrTable:
				countRel(a.Fact)
			}
			selections++
		case abduction.Derived:
			countRel(f.Derivd.RelName)
			selections += 2 // value equality + count threshold
		}
	}
	return joins, selections
}

// ToEngineQuery lowers the abduced query to an executable engine plan
// over the αDB's combined database (original + derived relations).
// Filters that would need a second instance of an already-joined
// relation become INTERSECT branches, preserving entity-set semantics.
func ToEngineQuery(res *abduction.Result) *engine.Query {
	entity := res.Base.Entity
	pk := res.EntityInfo().PK
	root := newBranch(entity, res.Base.Attr)

	branches := []*branchBuilder{root}
	for _, f := range orderedFilters(res.Filters) {
		placed := false
		for _, b := range branches {
			if b.tryAdd(f, pk) {
				placed = true
				break
			}
		}
		if !placed {
			nb := newBranch(entity, res.Base.Attr)
			nb.tryAdd(f, pk)
			branches = append(branches, nb)
		}
	}
	q := branches[0].q
	for _, b := range branches[1:] {
		q.Intersect = append(q.Intersect, b.q)
	}
	return q
}

// branchBuilder accumulates one SPJ block; a filter that needs a relation
// the block already uses (with a different condition) is rejected and
// goes to a new block.
type branchBuilder struct {
	q    *engine.Query
	used map[string]bool
}

func newBranch(entity, attr string) *branchBuilder {
	return &branchBuilder{
		q: &engine.Query{
			From:     []string{entity},
			Select:   []engine.ColRef{{Rel: entity, Col: attr}},
			Distinct: true,
		},
		used: map[string]bool{entity: true},
	}
}

// tryAdd attempts to add the filter's joins and predicates to the block.
func (b *branchBuilder) tryAdd(f *abduction.Filter, pk string) bool {
	entity := b.q.From[0]
	switch f.Kind {
	case abduction.BasicNumeric:
		col := f.Basic.Access.Column
		b.q.Preds = append(b.q.Preds,
			engine.Pred{Rel: entity, Col: col, Op: engine.OpGE, Val: relation.FloatVal(f.Lo)},
			engine.Pred{Rel: entity, Col: col, Op: engine.OpLE, Val: relation.FloatVal(f.Hi)})
		return true
	case abduction.BasicCategorical:
		a := f.Basic.Access
		pred := func(rel, col string) engine.Pred {
			if len(f.Values) == 1 {
				return engine.Pred{Rel: rel, Col: col, Op: engine.OpEq, Val: relation.StringVal(f.Values[0])}
			}
			vals := make([]relation.Value, len(f.Values))
			for i, v := range f.Values {
				vals[i] = relation.StringVal(v)
			}
			return engine.Pred{Rel: rel, Col: col, Op: engine.OpIn, Vals: vals}
		}
		switch a.Type {
		case adb.Direct:
			b.q.Preds = append(b.q.Preds, pred(entity, a.Column))
			return true
		case adb.FKDim:
			if b.used[a.Dim] {
				return false
			}
			b.addRel(a.Dim)
			b.q.Joins = append(b.q.Joins, engine.Join{LeftRel: entity, LeftCol: a.Column, RightRel: a.Dim, RightCol: a.DimPK})
			b.q.Preds = append(b.q.Preds, pred(a.Dim, a.DimValueCol))
			return true
		case adb.FactDim:
			if b.used[a.Fact] || b.used[a.Dim] {
				return false
			}
			b.addRel(a.Fact)
			b.addRel(a.Dim)
			b.q.Joins = append(b.q.Joins,
				engine.Join{LeftRel: entity, LeftCol: pk, RightRel: a.Fact, RightCol: a.FactEntityCol},
				engine.Join{LeftRel: a.Fact, LeftCol: a.FactDimCol, RightRel: a.Dim, RightCol: a.DimPK})
			b.q.Preds = append(b.q.Preds, pred(a.Dim, a.DimValueCol))
			return true
		case adb.AttrTable:
			if b.used[a.Fact] {
				return false
			}
			b.addRel(a.Fact)
			b.q.Joins = append(b.q.Joins, engine.Join{LeftRel: entity, LeftCol: pk, RightRel: a.Fact, RightCol: a.FactEntityCol})
			b.q.Preds = append(b.q.Preds, pred(a.Fact, a.Column))
			return true
		}
		return false
	case abduction.Derived:
		rel := f.Derivd.RelName
		if f.NormUse || b.used[rel] {
			// Normalized thresholds are not expressible as a simple
			// count predicate; evaluate those via the αDB row sets
			// instead (IntersectRows).
			return false
		}
		b.addRel(rel)
		b.q.Joins = append(b.q.Joins, engine.Join{LeftRel: entity, LeftCol: pk, RightRel: rel, RightCol: "entity_id"})
		b.q.Preds = append(b.q.Preds,
			engine.Pred{Rel: rel, Col: "value", Op: engine.OpEq, Val: relation.StringVal(f.Value())},
			engine.Pred{Rel: rel, Col: "count", Op: engine.OpGE, Val: relation.IntVal(int64(f.Theta))})
		return true
	}
	return false
}

func (b *branchBuilder) addRel(name string) {
	b.used[name] = true
	b.q.From = append(b.q.From, name)
}
