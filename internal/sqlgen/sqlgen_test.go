package sqlgen

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"squid/internal/abduction"
	"squid/internal/adb"
	"squid/internal/engine"
	"squid/internal/relation"
)

// paperDB builds the Fig 2/Fig 5 schema: person, movie, genre, castinfo,
// movietogenre — with a planted comedian so the Q4/Q5 pair of the paper
// can be rendered and executed.
func paperDB(t *testing.T) (*relation.Database, *adb.AlphaDB) {
	t.Helper()
	db := relation.NewDatabase("imdb_mini")

	genre := relation.New("genre",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
	).SetPrimaryKey("id")
	for i, g := range []string{"Comedy", "Drama", "Action"} {
		genre.MustAppend(relation.IntVal(int64(i)), relation.StringVal(g))
	}
	db.AddRelation(genre)
	db.MarkProperty("genre")

	person := relation.New("person",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("gender", relation.String),
		relation.Col("age", relation.Int),
	).SetPrimaryKey("id")
	names := []string{
		"Eddie Murphy", "Jim Carrey", "Robin Williams", "Clint Eastwood",
		"Meryl Streep", "Tom Hanks", "Julia Roberts", "Emma Stone",
		"Al Pacino", "Jodie Foster",
	}
	for i, n := range names {
		gender := "Male"
		if i > 2 && i%2 == 0 {
			gender = "Female"
		}
		person.MustAppend(relation.IntVal(int64(i)), relation.StringVal(n),
			relation.StringVal(gender), relation.IntVal(int64(40+i*5)))
	}
	db.AddRelation(person)
	db.MarkEntity("person")

	movie := relation.New("movie",
		relation.Col("id", relation.Int),
		relation.Col("title", relation.String),
	).SetPrimaryKey("id")
	mg := relation.New("movietogenre",
		relation.Col("movie_id", relation.Int),
		relation.Col("genre_id", relation.Int),
	).AddForeignKey("movie_id", "movie", "id").AddForeignKey("genre_id", "genre", "id")
	// 12 movies: ids 0-7 comedies, 8-11 dramas.
	for i := 0; i < 12; i++ {
		movie.MustAppend(relation.IntVal(int64(i)), relation.StringVal("M"+string(rune('A'+i))))
		g := int64(0)
		if i >= 8 {
			g = 1
		}
		mg.MustAppend(relation.IntVal(int64(i)), relation.IntVal(g))
	}
	db.AddRelation(movie)
	db.MarkEntity("movie")
	db.AddRelation(mg)

	ci := relation.New("castinfo",
		relation.Col("person_id", relation.Int),
		relation.Col("movie_id", relation.Int),
	).AddForeignKey("person_id", "person", "id").AddForeignKey("movie_id", "movie", "id")
	// Persons 0-2 are comedians: 6 comedies each; persons 3-9: 2 dramas.
	for p := 0; p < 3; p++ {
		for m := 0; m < 6; m++ {
			ci.MustAppend(relation.IntVal(int64(p)), relation.IntVal(int64((p+m)%8)))
		}
	}
	for p := 3; p < 10; p++ {
		for m := 8; m < 10; m++ {
			ci.MustAppend(relation.IntVal(int64(p)), relation.IntVal(int64(m)))
		}
	}
	db.AddRelation(ci)

	alpha, err := adb.Build(db, adb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return db, alpha
}

// abduceComedians runs discovery with a τa low enough to keep the planted
// 6-comedy signal.
func abduceComedians(t *testing.T, alpha *adb.AlphaDB) *abduction.Result {
	t.Helper()
	params := abduction.DefaultParams()
	params.TauA = 4
	results, err := abduction.Discover(alpha.Snapshot(), []string{"Eddie Murphy", "Jim Carrey", "Robin Williams"}, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	return results[0]
}

func TestAlphaSQLShape(t *testing.T) {
	_, alpha := paperDB(t)
	res := abduceComedians(t, alpha)
	sql := AlphaSQL(res)
	if !strings.Contains(sql, "SELECT person.name") {
		t.Errorf("projection missing:\n%s", sql)
	}
	if !strings.Contains(sql, "persontomovie_genre") {
		t.Errorf("derived relation missing (Q5 shape):\n%s", sql)
	}
	if !strings.Contains(sql, "value = 'Comedy'") || !strings.Contains(sql, "count >=") {
		t.Errorf("derived predicates missing:\n%s", sql)
	}
}

func TestOriginalSQLShape(t *testing.T) {
	_, alpha := paperDB(t)
	res := abduceComedians(t, alpha)
	sql := OriginalSQL(res)
	// Q4 shape: joins through castinfo and movietogenre with GROUP BY /
	// HAVING.
	for _, want := range []string{"castinfo", "movietogenre", "genre.name = 'Comedy'", "GROUP BY person.id", "HAVING count(*) >="} {
		if !strings.Contains(sql, want) {
			t.Errorf("missing %q in original SQL:\n%s", want, sql)
		}
	}
}

// TestEngineQueryMatchesIntersectRows is the key equivalence check: the
// engine plan produced by ToEngineQuery over the combined αDB database
// returns exactly the entities IntersectRows computes from the αDB row
// sets (Q4 ≡ Q5 of the paper, §2.3).
func TestEngineQueryMatchesIntersectRows(t *testing.T) {
	_, alpha := paperDB(t)
	res := abduceComedians(t, alpha)

	q := ToEngineQuery(res)
	exec := engine.NewExecutor(alpha.CombinedDB())
	got, err := exec.Execute(q)
	if err != nil {
		t.Fatalf("engine execution failed: %v\nquery: %+v", err, q)
	}
	gotNames := got.Strings()

	wantNames := res.OutputValues()
	sort.Strings(wantNames)
	if !reflect.DeepEqual(gotNames, wantNames) {
		t.Errorf("engine output %v != αDB row-set output %v", gotNames, wantNames)
	}
	if len(gotNames) == 0 {
		t.Error("empty result; fixture should select the comedians")
	}
}

func TestPredicateCount(t *testing.T) {
	_, alpha := paperDB(t)
	res := abduceComedians(t, alpha)
	joins, sels := PredicateCount(res)
	if joins+sels == 0 {
		t.Fatal("no predicates counted")
	}
	// Each derived filter contributes one derived-relation join and two
	// selections; basic numerics two selections each.
	if sels < 2 {
		t.Errorf("selections=%d", sels)
	}
}

func TestAlphaSQLNumericRange(t *testing.T) {
	_, alpha := paperDB(t)
	info := alpha.Entity("person")
	age := info.BasicByAttr("age")
	if age == nil {
		t.Fatal("age property missing")
	}
	res := &abduction.Result{
		Base:    abduction.BaseQuery{Entity: "person", Attr: "name"},
		Filters: []*abduction.Filter{{Kind: abduction.BasicNumeric, Basic: age, Lo: 40, Hi: 50}},
	}
	// Result needs its info set; reconstruct through AbduceForEntity to
	// keep internals consistent.
	res = abduction.AbduceForEntity(info, res.Base, []int{0, 1, 2}, abduction.DefaultParams())
	res.Filters = []*abduction.Filter{{Kind: abduction.BasicNumeric, Basic: age, Lo: 40, Hi: 50}}
	sql := AlphaSQL(res)
	if !strings.Contains(sql, "person.age >= 40") || !strings.Contains(sql, "person.age <= 50") {
		t.Errorf("numeric range missing:\n%s", sql)
	}
}

// TestSameDerivedRelationTwiceUsesAlias checks that two filters on the
// same derived relation render with an alias (Case A of Fig 8: Comedy
// and SciFi counts both from persontogenre).
func TestSameDerivedRelationTwiceUsesAlias(t *testing.T) {
	_, alpha := paperDB(t)
	info := alpha.Entity("person")
	ptg := info.DerivedByAttr("movie:genre")
	if ptg == nil {
		t.Fatal("derived property missing")
	}
	res := abduction.AbduceForEntity(info, abduction.BaseQuery{Entity: "person", Attr: "name"}, []int{0, 1}, abduction.DefaultParams())
	res.Filters = []*abduction.Filter{
		{Kind: abduction.Derived, Derivd: ptg, Values: []string{"Comedy"}, Theta: 3},
		{Kind: abduction.Derived, Derivd: ptg, Values: []string{"Drama"}, Theta: 2},
	}
	sql := AlphaSQL(res)
	if !strings.Contains(sql, " AS ") {
		t.Errorf("second instance of derived relation must be aliased:\n%s", sql)
	}
	// The engine plan must fall back to INTERSECT for the second one.
	q := ToEngineQuery(res)
	if len(q.Intersect) != 1 {
		t.Errorf("expected 1 intersect branch, got %d", len(q.Intersect))
	}
	// And execution must equal the αDB row-set evaluation.
	got, err := engine.NewExecutor(alpha.CombinedDB()).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	want := abduction.IntersectRows(info, res.Filters)
	if got.NumRows() != len(want) {
		t.Errorf("engine=%d rows, row sets=%d", got.NumRows(), len(want))
	}
}

func TestOriginalSQLIntersectForMultipleDerived(t *testing.T) {
	_, alpha := paperDB(t)
	info := alpha.Entity("person")
	ptg := info.DerivedByAttr("movie:genre")
	res := abduction.AbduceForEntity(info, abduction.BaseQuery{Entity: "person", Attr: "name"}, []int{0, 1}, abduction.DefaultParams())
	res.Filters = []*abduction.Filter{
		{Kind: abduction.Derived, Derivd: ptg, Values: []string{"Comedy"}, Theta: 3},
		{Kind: abduction.Derived, Derivd: ptg, Values: []string{"Drama"}, Theta: 2},
	}
	sql := OriginalSQL(res)
	if !strings.Contains(sql, "INTERSECT") {
		t.Errorf("two derived filters must intersect:\n%s", sql)
	}
	if strings.Count(sql, "HAVING") != 2 {
		t.Errorf("each derived block needs HAVING:\n%s", sql)
	}
}

func TestNoFilterSQL(t *testing.T) {
	_, alpha := paperDB(t)
	info := alpha.Entity("person")
	res := abduction.AbduceForEntity(info, abduction.BaseQuery{Entity: "person", Attr: "name"}, []int{0}, abduction.DefaultParams())
	res.Filters = nil
	sql := AlphaSQL(res)
	if strings.Contains(sql, "WHERE") {
		t.Errorf("no filters must render without WHERE:\n%s", sql)
	}
	if !strings.Contains(OriginalSQL(res), "SELECT person.name") {
		t.Error("original SQL projection missing")
	}
}
