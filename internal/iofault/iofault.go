// Package iofault is the injectable filesystem seam under the
// write-ahead log (internal/wal): the WAL performs every file
// operation through the FS/File interfaces so tests can substitute an
// in-memory filesystem that injects the failures durability code must
// survive — short writes, fsync errors, and a crash (power loss) at
// every write boundary.
//
// Two views model the two failure classes:
//
//   - Process crash (kill -9): the OS page cache survives, so the
//     on-disk state is everything written so far — MemFS.Clone.
//   - Power loss: only explicitly fsynced content survives —
//     MemFS.CloneDurable returns each file's content as of its last
//     successful Sync.
//
// The model is deliberately conservative: an unsynced write is assumed
// wholly lost on power loss (real disks may persist part of it; the
// WAL's prefix-sweep recovery tests cover those intermediate states
// separately), and Rename/Remove are modeled atomic and immediately
// durable (single-directory WAL rotation does not depend on directory
// fsync ordering).
package iofault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// File is the handle surface the WAL needs: sequential reads, writes,
// truncation, seeking, fsync, close.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Truncate(size int64) error
	Sync() error
}

// FS is the filesystem surface the WAL writes through. OSFS passes
// through to the os package; MemFS is the fault-injecting in-memory
// implementation.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	Exists(name string) (bool, error)
}

// OSFS is the production FS: a pass-through to the os package.
type OSFS struct{}

// OpenFile opens a real file.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename renames a real file.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove deletes a real file.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Exists reports whether a real file exists.
func (OSFS) Exists(name string) (bool, error) {
	_, err := os.Stat(name)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, os.ErrNotExist):
		return false, nil
	default:
		return false, err
	}
}

// ErrCrashed reports that the simulated machine lost power: every
// operation after the crash point fails with it.
var ErrCrashed = errors.New("iofault: simulated crash")

// ErrInjectedSync is the error an injected fsync failure returns.
var ErrInjectedSync = errors.New("iofault: injected fsync failure")

// ErrInjectedShortWrite is the error an injected short write returns
// (after writing a strict prefix of the requested bytes).
var ErrInjectedShortWrite = errors.New("iofault: injected short write")

// memFile is one file's two views: data is what the process (and the
// page cache) sees; durable is what survives power loss, captured at
// the last successful Sync.
type memFile struct {
	data    []byte
	durable []byte
}

// MemFS is the in-memory fault-injecting filesystem. All methods are
// safe for concurrent use. The zero value is not usable; create with
// NewMemFS.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile

	// crashBudget: bytes that may still be written before the simulated
	// power loss; -1 = no crash armed. The write crossing the boundary
	// lands partially (the torn write of a dying machine).
	crashBudget int64
	crashed     bool
	failSyncs   int  // next N Syncs fail without advancing durability
	shortWrite  bool // next Write lands a strict prefix and errors

	written int64 // total bytes successfully written (crash-point enumeration)
}

// NewMemFS returns an empty in-memory filesystem with no faults armed.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), crashBudget: -1}
}

// CrashAfterBytes arms a power loss after n more bytes are written:
// the write crossing the boundary persists only its first bytes, and
// every later operation fails with ErrCrashed.
func (m *MemFS) CrashAfterBytes(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashBudget = n
}

// FailSyncs makes the next n Sync calls fail with ErrInjectedSync
// without advancing any file's durable view.
func (m *MemFS) FailSyncs(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failSyncs = n
}

// ShortWriteOnce makes the next Write land only half its bytes and
// return ErrInjectedShortWrite.
func (m *MemFS) ShortWriteOnce() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shortWrite = true
}

// TotalWritten reports the total bytes successfully written through
// this FS, for enumerating crash points.
func (m *MemFS) TotalWritten() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.written
}

// Crashed reports whether the armed crash has fired.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Bytes returns a copy of a file's current (page-cache) content and
// whether the file exists.
func (m *MemFS) Bytes(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// SetFile installs a file with the given content as both its current
// and durable view (building corrupted-log fixtures).
func (m *MemFS) SetFile(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memFile{
		data:    append([]byte(nil), data...),
		durable: append([]byte(nil), data...),
	}
}

// Clone returns the process-crash (kill -9) view: a fresh fault-free
// MemFS holding every file's current content — the page cache survives
// a process death.
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for name, f := range m.files {
		out.files[name] = &memFile{
			data:    append([]byte(nil), f.data...),
			durable: append([]byte(nil), f.data...),
		}
	}
	return out
}

// CloneDurable returns the power-loss view: a fresh fault-free MemFS
// holding every file's content as of its last successful Sync.
func (m *MemFS) CloneDurable() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for name, f := range m.files {
		out.files[name] = &memFile{
			data:    append([]byte(nil), f.durable...),
			durable: append([]byte(nil), f.durable...),
		}
	}
	return out
}

// OpenFile opens or creates an in-memory file. Supported flags:
// O_RDONLY, O_RDWR, O_WRONLY, combined with O_CREATE, O_TRUNC,
// O_APPEND.
func (m *MemFS) OpenFile(name string, flag int, _ os.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f, ok := m.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		f = &memFile{}
		m.files[name] = f
	} else if flag&os.O_TRUNC != 0 {
		f.data = nil
	}
	return &memHandle{fs: m, f: f, name: name, flag: flag}, nil
}

// Rename renames a file (atomic and immediately durable in this model).
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	f, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	m.files[newname] = f
	delete(m.files, oldname)
	return nil
}

// Remove deletes a file (immediately durable in this model).
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// Exists reports whether a file exists.
func (m *MemFS) Exists(name string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return false, ErrCrashed
	}
	_, ok := m.files[name]
	return ok, nil
}

// memHandle is one open handle over a memFile, with its own position.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	name   string
	flag   int
	pos    int64
	closed bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.pos >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.pos:])
	h.pos += int64(n)
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.flag&(os.O_WRONLY|os.O_RDWR) == 0 {
		return 0, &os.PathError{Op: "write", Path: h.name, Err: os.ErrPermission}
	}
	want := p
	var injected error
	if h.fs.shortWrite {
		h.fs.shortWrite = false
		want = p[:len(p)/2]
		injected = ErrInjectedShortWrite
	}
	if h.fs.crashBudget >= 0 && int64(len(want)) > h.fs.crashBudget {
		// The dying write lands a prefix; everything after fails.
		want = want[:h.fs.crashBudget]
		h.fs.crashed = true
		injected = ErrCrashed
	}
	at := h.pos
	if h.flag&os.O_APPEND != 0 {
		at = int64(len(h.f.data))
	}
	if grow := at + int64(len(want)) - int64(len(h.f.data)); grow > 0 {
		h.f.data = append(h.f.data, make([]byte, grow)...)
	}
	copy(h.f.data[at:], want)
	h.pos = at + int64(len(want))
	h.fs.written += int64(len(want))
	if h.fs.crashBudget >= 0 {
		h.fs.crashBudget -= int64(len(want))
	}
	if injected != nil {
		return len(want), fmt.Errorf("iofault: wrote %d of %d bytes: %w", len(want), len(p), injected)
	}
	return len(want), nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	switch whence {
	case io.SeekStart:
		h.pos = offset
	case io.SeekCurrent:
		h.pos += offset
	case io.SeekEnd:
		h.pos = int64(len(h.f.data)) + offset
	default:
		return 0, fmt.Errorf("iofault: bad whence %d", whence)
	}
	if h.pos < 0 {
		return 0, fmt.Errorf("iofault: negative seek position")
	}
	return h.pos, nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	if h.fs.crashed {
		return ErrCrashed
	}
	if size < 0 || size > int64(len(h.f.data)) {
		return fmt.Errorf("iofault: truncate %q to %d outside [0,%d]", h.name, size, len(h.f.data))
	}
	h.f.data = h.f.data[:size]
	return nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	if h.fs.crashed {
		return ErrCrashed
	}
	if h.fs.failSyncs > 0 {
		h.fs.failSyncs--
		return ErrInjectedSync
	}
	h.f.durable = append(h.f.durable[:0], h.f.data...)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.closed = true
	return nil
}
