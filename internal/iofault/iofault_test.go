package iofault

import (
	"errors"
	"io"
	"os"
	"testing"
)

func write(t *testing.T, fs *MemFS, name string, data []byte) {
	t.Helper()
	f, err := fs.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	fs := NewMemFS()
	write(t, fs, "f", []byte("hello"))
	f, err := fs.OpenFile("f", os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read %q, %v", got, err)
	}
	if _, err := f.Write([]byte("x")); err == nil {
		t.Error("write through O_RDONLY handle accepted")
	}
	if ok, _ := fs.Exists("f"); !ok {
		t.Error("Exists(f) = false")
	}
	if ok, _ := fs.Exists("g"); ok {
		t.Error("Exists(g) = true")
	}
	if _, err := fs.OpenFile("g", os.O_RDONLY, 0); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file open = %v, want ErrNotExist", err)
	}
}

func TestAppendAndSeek(t *testing.T) {
	fs := NewMemFS()
	write(t, fs, "f", []byte("abc"))
	f, err := fs.OpenFile("f", os.O_RDWR|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("def")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	f, _ = fs.OpenFile("f", os.O_RDWR, 0)
	if _, err := f.Seek(1, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("X")); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got, _ := fs.Bytes("f"); string(got) != "aXcd" {
		t.Errorf("content = %q, want aXcd", got)
	}
}

func TestDurableViewTracksSync(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.OpenFile("f", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("synced"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte(" unsynced"))

	if got, _ := fs.Clone().Bytes("f"); string(got) != "synced unsynced" {
		t.Errorf("process-crash view = %q", got)
	}
	if got, _ := fs.CloneDurable().Bytes("f"); string(got) != "synced" {
		t.Errorf("power-loss view = %q", got)
	}
}

func TestFailSyncs(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.OpenFile("f", os.O_WRONLY|os.O_CREATE, 0o644)
	f.Write([]byte("data"))
	fs.FailSyncs(1)
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("Sync = %v, want injected failure", err)
	}
	// The failed sync must not have advanced durability.
	if got, _ := fs.CloneDurable().Bytes("f"); len(got) != 0 {
		t.Errorf("durable view after failed sync = %q", got)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after fault passed: %v", err)
	}
	if got, _ := fs.CloneDurable().Bytes("f"); string(got) != "data" {
		t.Errorf("durable view = %q", got)
	}
}

func TestShortWriteOnce(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.OpenFile("f", os.O_WRONLY|os.O_CREATE, 0o644)
	fs.ShortWriteOnce()
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjectedShortWrite) || n != 3 {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if got, _ := fs.Bytes("f"); string(got) != "abc" {
		t.Errorf("content after short write = %q", got)
	}
	if _, err := f.Write([]byte("gh")); err != nil {
		t.Errorf("write after short-write fault: %v", err)
	}
}

func TestCrashAfterBytes(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.OpenFile("f", os.O_WRONLY|os.O_CREATE, 0o644)
	f.Write([]byte("1234")) // 4 bytes
	fs.CrashAfterBytes(2)   // the next write tears after 2 more bytes
	if _, err := f.Write([]byte("5678")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() = false after the boundary")
	}
	// Everything after the crash fails.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash write = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash sync = %v", err)
	}
	if _, err := fs.OpenFile("g", os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash open = %v", err)
	}
	// The dying write landed its prefix: the page-cache view holds it,
	// the durable view (nothing was synced) holds nothing.
	if got, _ := fs.Clone().Bytes("f"); string(got) != "123456" {
		t.Errorf("torn content = %q, want 123456", got)
	}
	if got, ok := fs.CloneDurable().Bytes("f"); ok && len(got) != 0 {
		t.Errorf("durable view = %q, want empty", got)
	}
	if fs.TotalWritten() != 6 {
		t.Errorf("TotalWritten = %d want 6", fs.TotalWritten())
	}
}

func TestRenameRemove(t *testing.T) {
	fs := NewMemFS()
	write(t, fs, "a", []byte("x"))
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := fs.Exists("a"); ok {
		t.Error("source survives rename")
	}
	if got, _ := fs.Bytes("b"); string(got) != "x" {
		t.Errorf("target = %q", got)
	}
	if err := fs.Rename("missing", "c"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("rename missing = %v", err)
	}
	if err := fs.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("b"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("double remove = %v", err)
	}
}
