// Package index provides the indexing substrate SQuID relies on: a global
// inverted column index over all text attributes (used for entity lookup,
// §5 of the paper), hash indexes for key/foreign-key point lookups during
// abduction, and sorted column indexes used for numeric selectivity
// computation in the abduction-ready database.
package index

import (
	"sort"
	"strings"

	"squid/internal/relation"
)

// Posting locates one occurrence of a text value: relation, column, row.
type Posting struct {
	Relation string
	Column   string
	Row      int
}

// Inverted is the global inverted column index: it maps every distinct
// text value (case-folded) appearing in any indexed column to its
// postings. SQuID consults it to map user-provided example strings to
// candidate entities.
type Inverted struct {
	postings map[string][]Posting
}

// BuildInverted indexes every String column of every relation in db.
func BuildInverted(db *relation.Database) *Inverted {
	inv := &Inverted{postings: make(map[string][]Posting)}
	for _, name := range db.RelationNames() {
		rel := db.Relation(name)
		for _, col := range rel.Columns() {
			if col.Type != relation.String {
				continue
			}
			for row := 0; row < col.Len(); row++ {
				if col.IsNull(row) {
					continue
				}
				key := Normalize(col.Str(row))
				inv.postings[key] = append(inv.postings[key], Posting{
					Relation: name, Column: col.Name, Row: row,
				})
			}
		}
	}
	return inv
}

// Normalize canonicalizes a lookup string: lower-case, trimmed,
// inner whitespace collapsed.
func Normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// Lookup returns all postings of the (normalized) value.
func (inv *Inverted) Lookup(value string) []Posting {
	return inv.postings[Normalize(value)]
}

// Insert adds one posting incrementally (αDB maintenance on inserts).
func (inv *Inverted) Insert(value string, p Posting) {
	key := Normalize(value)
	inv.postings[key] = append(inv.postings[key], p)
}

// NumKeys returns the number of distinct indexed values.
func (inv *Inverted) NumKeys() int { return len(inv.postings) }

// ColumnKey identifies a (relation, column) pair.
type ColumnKey struct {
	Relation string
	Column   string
}

// CommonColumns returns the (relation, column) pairs that contain ALL of
// the given values, i.e. the candidate projection attributes for a set of
// example tuples, sorted deterministically. For each pair it also reports
// per-value row candidates (for disambiguation).
func (inv *Inverted) CommonColumns(values []string) []ColumnMatch {
	if len(values) == 0 {
		return nil
	}
	// For each value, the set of columns it appears in, plus its rows there.
	type colRows map[ColumnKey][]int
	perValue := make([]colRows, len(values))
	for i, v := range values {
		m := make(colRows)
		for _, p := range inv.Lookup(v) {
			k := ColumnKey{p.Relation, p.Column}
			m[k] = append(m[k], p.Row)
		}
		perValue[i] = m
	}
	// Intersect column sets across values.
	var out []ColumnMatch
	for k, rows0 := range perValue[0] {
		match := ColumnMatch{Key: k, Rows: make([][]int, len(values))}
		match.Rows[0] = rows0
		ok := true
		for i := 1; i < len(values); i++ {
			rows, has := perValue[i][k]
			if !has {
				ok = false
				break
			}
			match.Rows[i] = rows
		}
		if ok {
			out = append(out, match)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Relation != out[j].Key.Relation {
			return out[i].Key.Relation < out[j].Key.Relation
		}
		return out[i].Key.Column < out[j].Key.Column
	})
	return out
}

// ColumnMatch reports that all example values occur in Key; Rows[i] lists
// the candidate rows for example value i (|Rows[i]| > 1 means the value is
// ambiguous and needs disambiguation).
type ColumnMatch struct {
	Key  ColumnKey
	Rows [][]int
}

// Ambiguous reports whether any example value maps to more than one row.
func (m ColumnMatch) Ambiguous() bool {
	for _, r := range m.Rows {
		if len(r) > 1 {
			return true
		}
	}
	return false
}
