// Package index provides the indexing substrate SQuID relies on: a global
// inverted column index over all text attributes (used for entity lookup,
// §5 of the paper), hash indexes for key/foreign-key point lookups during
// abduction, and sorted column indexes used for numeric selectivity
// computation in the abduction-ready database.
package index

import (
	"sort"
	"strings"
	"sync"

	"squid/internal/relation"
)

// Posting locates one occurrence of a text value: relation, column, row.
type Posting struct {
	Relation string
	Column   string
	Row      int
}

// RowLimit bounds an epoch-pinned inverted-index read: postings with
// Row ≥ limit(Relation) belong to rows appended after the reader's
// epoch was published and are filtered out, so a discovery never
// resolves examples to rows it cannot otherwise see.
type RowLimit func(relName string) int

// Inverted is the global inverted column index: it maps every distinct
// text value (case-folded) appearing in any indexed column to its
// postings. SQuID consults it to map user-provided example strings to
// candidate entities.
//
// Concurrency: the index is append-only and internally synchronized,
// and — like the column dictionaries — it is shared across copy-on-write
// epochs instead of cloned (cloning the whole posting map per insert
// batch would dwarf the batch itself). Epoch isolation is restored at
// read time: postings carry monotonically growing row numbers, so a
// reader pinned to an epoch filters with the epoch's per-relation row
// counts (RowLimit) and observes exactly the postings that existed when
// its epoch was published.
type Inverted struct {
	mu       sync.RWMutex
	postings map[string][]Posting
}

// BuildInverted indexes every String column of every relation in db.
func BuildInverted(db *relation.Database) *Inverted {
	return BuildInvertedParallel(db, 1)
}

// BuildInvertedParallel builds the inverted index with per-relation
// shards fanned over a bounded worker pool, then merges the shards in
// relation order, so the posting lists are byte-identical to a serial
// build. Columns are dictionary-encoded: each distinct value is
// normalized once per column, and the per-row work is a code lookup.
func BuildInvertedParallel(db *relation.Database, workers int) *Inverted {
	names := db.RelationNames()
	shards := make([]map[string][]Posting, len(names))
	RunBounded(len(names), workers, func(i int) {
		shards[i] = invertRelation(names[i], db.Relation(names[i]))
	})
	inv := &Inverted{postings: make(map[string][]Posting)}
	for _, shard := range shards {
		for key, ps := range shard {
			inv.postings[key] = append(inv.postings[key], ps...)
		}
	}
	return inv
}

// invertRelation builds the posting shard of one relation.
func invertRelation(name string, rel *relation.Relation) map[string][]Posting {
	shard := make(map[string][]Posting)
	for _, col := range rel.Columns() {
		if col.Type != relation.String {
			continue
		}
		norm := normalizedDict(col.Dict())
		for row := 0; row < col.Len(); row++ {
			if col.IsNull(row) {
				continue
			}
			key := norm[col.Code(row)]
			shard[key] = append(shard[key], Posting{
				Relation: name, Column: col.Name, Row: row,
			})
		}
	}
	return shard
}

// RunBounded executes fn(0..n-1) over a worker pool of the given size
// (≤ 1 means inline). It is the minimal fan-out primitive shared by the
// parallel inverted-index build and the αDB's parallel offline phase.
func RunBounded(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// normalize canonicalizes a lookup string: lower-case, trimmed,
// inner whitespace collapsed.
func normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// Lookup returns all postings of the (normalized) value, with no epoch
// filtering; single-writer offline consumers (tests, the αDB build) use
// it. Online readers go through LookupBelow.
func (inv *Inverted) Lookup(value string) []Posting {
	inv.mu.RLock()
	ps := inv.postings[normalize(value)]
	inv.mu.RUnlock()
	return ps
}

// LookupBelow returns the postings of the value whose rows existed in
// the caller's epoch (Row < limit(Relation)). Posting lists are
// append-only, so the prefix below the limit is immutable and the
// result needs no copy unless filtering actually drops entries.
func (inv *Inverted) LookupBelow(value string, limit RowLimit) []Posting {
	return filterPostings(inv.Lookup(value), limit)
}

func filterPostings(ps []Posting, limit RowLimit) []Posting {
	if limit == nil {
		return ps
	}
	for i, p := range ps {
		if p.Row >= limit(p.Relation) {
			// First filtered posting: copy the surviving prefix and
			// sieve the rest (appends from different relations may
			// interleave, so later postings can still qualify).
			out := append([]Posting(nil), ps[:i]...)
			for _, q := range ps[i+1:] {
				if q.Row < limit(q.Relation) {
					out = append(out, q)
				}
			}
			return out
		}
	}
	return ps
}

// Insert adds one posting incrementally (αDB maintenance on inserts).
// Concurrent writers of disjoint relations serialize here briefly; the
// posting becomes visible to epoch-pinned readers only once an epoch
// whose row count covers it is published.
func (inv *Inverted) Insert(value string, p Posting) {
	key := normalize(value)
	inv.mu.Lock()
	inv.postings[key] = append(inv.postings[key], p)
	inv.mu.Unlock()
}

// NumKeys returns the number of distinct indexed values.
func (inv *Inverted) NumKeys() int {
	inv.mu.RLock()
	n := len(inv.postings)
	inv.mu.RUnlock()
	return n
}

// PostingsBelow materializes the epoch-filtered posting map for snapshot
// serialization: only postings whose rows exist in the caller's epoch
// are included, and keys whose postings all filter away are dropped, so
// an encode racing a writer never references rows absent from the
// encoded relations.
func (inv *Inverted) PostingsBelow(limit RowLimit) map[string][]Posting {
	inv.mu.RLock()
	defer inv.mu.RUnlock()
	out := make(map[string][]Posting, len(inv.postings))
	for key, ps := range inv.postings {
		kept := filterPostings(ps, limit)
		if len(kept) > 0 {
			out[key] = kept
		}
	}
	return out
}

// RestoreInverted adopts a posting map rebuilt from a snapshot.
func RestoreInverted(postings map[string][]Posting) *Inverted {
	return &Inverted{postings: postings}
}

// ColumnKey identifies a (relation, column) pair.
type ColumnKey struct {
	Relation string
	Column   string
}

// CommonColumns returns the (relation, column) pairs that contain ALL of
// the given values, i.e. the candidate projection attributes for a set of
// example tuples, sorted deterministically. For each pair it also reports
// per-value row candidates (for disambiguation). A non-nil limit pins the
// lookup to an epoch: rows appended after it are invisible.
func (inv *Inverted) CommonColumns(values []string, limit RowLimit) []ColumnMatch {
	if len(values) == 0 {
		return nil
	}
	// For each value, the set of columns it appears in, plus its rows there.
	type colRows map[ColumnKey][]int
	perValue := make([]colRows, len(values))
	for i, v := range values {
		m := make(colRows)
		for _, p := range inv.LookupBelow(v, limit) {
			k := ColumnKey{p.Relation, p.Column}
			m[k] = append(m[k], p.Row)
		}
		perValue[i] = m
	}
	// Intersect column sets across values.
	var out []ColumnMatch
	for k, rows0 := range perValue[0] {
		match := ColumnMatch{Key: k, Rows: make([][]int, len(values))}
		match.Rows[0] = rows0
		ok := true
		for i := 1; i < len(values); i++ {
			rows, has := perValue[i][k]
			if !has {
				ok = false
				break
			}
			match.Rows[i] = rows
		}
		if ok {
			out = append(out, match)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Relation != out[j].Key.Relation {
			return out[i].Key.Relation < out[j].Key.Relation
		}
		return out[i].Key.Column < out[j].Key.Column
	})
	return out
}

// ColumnMatch reports that all example values occur in Key; Rows[i] lists
// the candidate rows for example value i (|Rows[i]| > 1 means the value is
// ambiguous and needs disambiguation).
type ColumnMatch struct {
	Key  ColumnKey
	Rows [][]int
}

// Ambiguous reports whether any example value maps to more than one row.
func (m ColumnMatch) Ambiguous() bool {
	for _, r := range m.Rows {
		if len(r) > 1 {
			return true
		}
	}
	return false
}
