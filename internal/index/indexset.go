package index

import (
	"sort"
	"sync"

	"squid/internal/relation"
)

// IndexSet is a registry of hash indexes keyed by (relation, column).
// It is the per-epoch index view of the online pipeline: every point
// lookup that used to rebuild an ad-hoc hash map (dimension resolution
// during incremental maintenance, point-predicate pushdown in the
// engine) instead asks the set, which builds each index at most once
// and serves all later lookups from the shared copy.
//
// Epoch semantics: each published αDB epoch owns one IndexSet view.
// The indexes themselves are immutable once visible to readers; a
// copy-on-write writer never calls NoteAppend on a live view — it
// accumulates privatized shard clones in an IndexDelta and the publish
// step merges them into the next epoch's view (MergeInto), structurally
// sharing every untouched index. The internal lock only serializes the
// lazy first build of a cold index (double-checked locking), so readers
// of warm indexes never block.
type IndexSet struct {
	mu   sync.RWMutex
	ints map[ColumnKey]*IntHash
	strs map[ColumnKey]*StrHash
	nums map[ColumnKey]*NumericRows
}

// NewIndexSet creates an empty index set.
func NewIndexSet() *IndexSet {
	return &IndexSet{
		ints: make(map[ColumnKey]*IntHash),
		strs: make(map[ColumnKey]*StrHash),
		nums: make(map[ColumnKey]*NumericRows),
	}
}

// IntHash returns the shared hash index over the named integer column of
// rel, building it on first use.
func (s *IndexSet) IntHash(rel *relation.Relation, col string) *IntHash {
	key := ColumnKey{rel.Name, col}
	s.mu.RLock()
	h := s.ints[key]
	s.mu.RUnlock()
	if h != nil {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h = s.ints[key]; h == nil {
		h = BuildIntHash(rel, col)
		s.ints[key] = h
	}
	return h
}

// StrHash returns the shared hash index over the named string column of
// rel, building it on first use.
func (s *IndexSet) StrHash(rel *relation.Relation, col string) *StrHash {
	key := ColumnKey{rel.Name, col}
	s.mu.RLock()
	h := s.strs[key]
	s.mu.RUnlock()
	if h != nil {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h = s.strs[key]; h == nil {
		h = BuildStrHash(rel, col)
		s.strs[key] = h
	}
	return h
}

// Numeric returns the shared sorted value→row index over the named
// numeric (Int or Float) column of rel, building it on first use; it
// backs the engine's range-predicate pushdown.
func (s *IndexSet) Numeric(rel *relation.Relation, col string) *NumericRows {
	key := ColumnKey{rel.Name, col}
	s.mu.RLock()
	n := s.nums[key]
	s.mu.RUnlock()
	if n != nil {
		return n
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n = s.nums[key]; n == nil {
		n = buildNumericRowsFromColumn(rel.Column(col))
		s.nums[key] = n
	}
	return n
}

// AdoptIntHash registers a pre-built hash index under (relName, col),
// replacing any existing entry. The parallel αDB build constructs derived
// -relation indexes worker-locally and adopts them into the shared pool
// once the relation's final name is fixed.
func (s *IndexSet) AdoptIntHash(relName, col string, h *IntHash) {
	s.mu.Lock()
	s.ints[ColumnKey{relName, col}] = h
	s.mu.Unlock()
}

// peek returns the materialized indexes at key without building.
func (s *IndexSet) peek(key ColumnKey) (*IntHash, *StrHash, *NumericRows) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ints[key], s.strs[key], s.nums[key]
}

// NoteAppend maintains every materialized index of rel for the row that
// was just appended. It mutates the receiver's indexes in place, so it
// is only for sets private to a single writer (tests, worker-local
// builds); epoch writers use IndexDelta.NoteAppend instead, which
// clones the touched shards copy-on-write.
func (s *IndexSet) NoteAppend(rel *relation.Relation, row int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, col := range rel.Columns() {
		key := ColumnKey{rel.Name, col.Name}
		switch col.Type {
		case relation.Int:
			if h := s.ints[key]; h != nil && !col.IsNull(row) {
				h.Insert(col.Int64(row), row)
			}
		case relation.String:
			if h := s.strs[key]; h != nil && !col.IsNull(row) {
				h.Insert(col.Str(row), row)
			}
		}
		if col.Type != relation.String {
			if n := s.nums[key]; n != nil && !col.IsNull(row) {
				s.nums[key] = n.Insert(col.Float64(row), row)
			}
		}
	}
}

// Drop discards the materialized indexes of one column; used when a
// cell of that column is mutated in place (appends are handled by
// NoteAppend; in-place updates would leave postings stale).
func (s *IndexSet) Drop(relName, col string) {
	key := ColumnKey{relName, col}
	s.mu.Lock()
	delete(s.ints, key)
	delete(s.strs, key)
	delete(s.nums, key)
	s.mu.Unlock()
}

// NumIndexes reports how many hash indexes have been materialized.
func (s *IndexSet) NumIndexes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ints) + len(s.strs)
}

// IndexDelta accumulates one copy-on-write writer's index changes
// against a base epoch's IndexSet: the first touch of a shard clones it
// (map copy for hash indexes, array copy for numeric indexes), later
// touches mutate the private clone in place, and MergeInto folds the
// clones into the next epoch's view. Reads during the apply see the
// private clone when one exists and the immutable base otherwise, so a
// batch observes its own earlier rows.
type IndexDelta struct {
	base    *IndexSet
	ints    map[ColumnKey]*IntHash
	strs    map[ColumnKey]*StrHash
	nums    map[ColumnKey]*NumericRows
	dropped map[ColumnKey]bool
	touched map[string]bool // relations whose rows this writer changed
}

// NewIndexDelta starts an empty delta over the base epoch's view.
func NewIndexDelta(base *IndexSet) *IndexDelta {
	return &IndexDelta{
		base:    base,
		ints:    make(map[ColumnKey]*IntHash),
		strs:    make(map[ColumnKey]*StrHash),
		nums:    make(map[ColumnKey]*NumericRows),
		dropped: make(map[ColumnKey]bool),
		touched: make(map[string]bool),
	}
}

// ReadIntHash serves a point-lookup during the apply: the private
// clone when the writer already touched the shard; the base view for
// an untouched relation (lazily building there is safe — rel aliases
// the base's own relation then). For a relation this writer already
// appended to, a missing shard is built privately from the writer's
// relation instead: building into the base view from the private clone
// would leak post-batch rows into the retired epoch, and a base-built
// index would miss the batch's own rows.
func (d *IndexDelta) ReadIntHash(rel *relation.Relation, col string) *IntHash {
	key := ColumnKey{rel.Name, col}
	if h := d.ints[key]; h != nil {
		return h
	}
	if !d.touched[rel.Name] && !d.dropped[key] {
		return d.base.IntHash(rel, col)
	}
	h := BuildIntHash(rel, col)
	d.ints[key] = h
	return h
}

// PrivateIntHash returns the writer's private clone of the (rel, col)
// hash index, cloning the base's prebuilt one on first touch — or
// building fresh from the writer's relation when the base never
// materialized it (never lazily building into the base view, see
// ReadIntHash).
func (d *IndexDelta) PrivateIntHash(rel *relation.Relation, col string) *IntHash {
	key := ColumnKey{rel.Name, col}
	if h := d.ints[key]; h != nil {
		return h
	}
	// A base-built index is only a valid clone source before this
	// writer's first append to the relation; afterwards it may miss
	// batch rows (a reader could have built it from the base relation
	// concurrently), so rebuild from the writer's relation instead.
	wasTouched := d.touched[rel.Name]
	d.touched[rel.Name] = true
	var h *IntHash
	if bi, _, _ := d.base.peek(key); bi != nil && !d.dropped[key] && !wasTouched {
		h = bi.Clone()
	} else {
		h = BuildIntHash(rel, col)
	}
	d.ints[key] = h
	return h
}

// NoteAppend maintains every index of rel materialized in the base view
// (or already privatized here) for the row that was just appended,
// cloning each touched shard copy-on-write on first touch. A base
// index may only be adopted on the writer's FIRST append to the
// relation: one that appears later was lazily built by a concurrent
// base-epoch reader and misses this batch's earlier rows — it is left
// uncovered, so the publish merge drops it and the next epoch rebuilds
// it lazily from the post-batch relation.
func (d *IndexDelta) NoteAppend(rel *relation.Relation, row int) {
	wasTouched := d.touched[rel.Name]
	d.touched[rel.Name] = true
	for _, col := range rel.Columns() {
		key := ColumnKey{rel.Name, col.Name}
		if d.dropped[key] {
			// A dropped index stays dropped: cloning the base's copy
			// now would resurrect the pre-mutation state.
			continue
		}
		bi, bs, bn := d.base.peek(key)
		switch col.Type {
		case relation.Int:
			h := d.ints[key]
			if h == nil && bi != nil && !wasTouched {
				h = bi.Clone()
				d.ints[key] = h
			}
			if h != nil && !col.IsNull(row) {
				h.Insert(col.Int64(row), row)
			}
		case relation.String:
			h := d.strs[key]
			if h == nil && bs != nil && !wasTouched {
				h = bs.Clone()
				d.strs[key] = h
			}
			if h != nil && !col.IsNull(row) {
				h.Insert(col.Str(row), row)
			}
		}
		if col.Type != relation.String {
			n := d.nums[key]
			if n == nil && bn != nil && !wasTouched {
				n = bn.Clone()
				d.nums[key] = n
			}
			if n != nil && !col.IsNull(row) {
				d.nums[key] = n.Insert(col.Float64(row), row)
			}
		}
	}
}

// Drop discards the indexes of one column in the next epoch (a cell of
// that column was mutated in place on the writer's private relation).
func (d *IndexDelta) Drop(relName, col string) {
	key := ColumnKey{relName, col}
	d.touched[relName] = true
	d.dropped[key] = true
	delete(d.ints, key)
	delete(d.strs, key)
	delete(d.nums, key)
}

// MergeInto builds the next epoch's IndexSet from the current one plus
// this delta: privatized shards replace their base entries, dropped
// keys vanish, and — crucially — any index of a touched relation that
// the delta does not cover is omitted rather than inherited, because a
// reader may have lazily built it from the pre-append rows concurrently
// (it rebuilds lazily from the new relation on first use). Everything
// else is shared structurally.
func (d *IndexDelta) MergeInto(cur *IndexSet) *IndexSet {
	keep := func(key ColumnKey) bool {
		return !d.dropped[key] && !d.touched[key.Relation]
	}
	next := NewIndexSet()
	cur.mu.RLock()
	for key, h := range cur.ints {
		if keep(key) {
			next.ints[key] = h
		}
	}
	for key, h := range cur.strs {
		if keep(key) {
			next.strs[key] = h
		}
	}
	for key, n := range cur.nums {
		if keep(key) {
			next.nums[key] = n
		}
	}
	cur.mu.RUnlock()
	for key, h := range d.ints {
		next.ints[key] = h
	}
	for key, h := range d.strs {
		next.strs[key] = h
	}
	for key, n := range d.nums {
		next.nums[key] = n
	}
	return next
}

// NumericRows is a sorted (value, row) index over a numeric column: it
// answers "which rows fall in [lo, hi]" in O(log n + k) instead of a
// full column scan, backing the numeric range filters of the online
// phase. Values are sorted; rows ride along.
type NumericRows struct {
	vals []float64
	rows []int
}

// buildNumericRowsFromColumn indexes the non-NULL cells of a numeric
// column (Int cells are widened to float64).
func buildNumericRowsFromColumn(c *relation.Column) *NumericRows {
	n := &NumericRows{}
	if c == nil || c.Type == relation.String {
		return n
	}
	for row := 0; row < c.Len(); row++ {
		if c.IsNull(row) {
			continue
		}
		n.vals = append(n.vals, c.Float64(row))
		n.rows = append(n.rows, row)
	}
	n.sortPairs(0, len(n.vals))
	return n
}

// BuildNumericRows builds the index from parallel value/row slices
// (typically the non-NULL cells of one column). The inputs are copied.
func BuildNumericRows(vals []float64, rows []int) *NumericRows {
	n := &NumericRows{
		vals: append([]float64(nil), vals...),
		rows: append([]int(nil), rows...),
	}
	n.sortPairs(0, len(n.vals))
	return n
}

// sortPairs sorts vals[lo:hi] and rows[lo:hi] together by value
// (insertion into already-sorted prefixes is the common incremental
// case; initial builds use the stdlib via an index permutation when the
// slice is large).
func (n *NumericRows) sortPairs(lo, hi int) {
	// Simple binary-insertion sort over the pair slices: builds are
	// one-time and incremental inserts touch a single element, so this
	// stays O(n log n) comparisons / O(n²) moves worst case but in
	// practice the builder feeds nearly-unsorted data only once per
	// column at αDB construction. For large columns switch to a
	// permutation sort.
	if hi-lo > 64 {
		n.permSort(lo, hi)
		return
	}
	for i := lo + 1; i < hi; i++ {
		v, r := n.vals[i], n.rows[i]
		j := i
		for j > lo && n.vals[j-1] > v {
			n.vals[j], n.rows[j] = n.vals[j-1], n.rows[j-1]
			j--
		}
		n.vals[j], n.rows[j] = v, r
	}
}

// permSort sorts the pair slices via an index permutation using the
// stdlib sort (O(n log n)).
func (n *NumericRows) permSort(lo, hi int) {
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	sort.Slice(idx, func(a, b int) bool { return n.vals[idx[a]] < n.vals[idx[b]] })
	vals := make([]float64, hi-lo)
	rows := make([]int, hi-lo)
	for i, p := range idx {
		vals[i], rows[i] = n.vals[p], n.rows[p]
	}
	copy(n.vals[lo:hi], vals)
	copy(n.rows[lo:hi], rows)
}

// Len returns the number of indexed (value, row) pairs.
func (n *NumericRows) Len() int { return len(n.vals) }

// RawPairs exposes the sorted value/row storage for snapshot
// serialization; do not mutate.
func (n *NumericRows) RawPairs() (vals []float64, rows []int) { return n.vals, n.rows }

// RestoreNumericRows adopts already-sorted value/row slices (snapshot
// load).
func RestoreNumericRows(vals []float64, rows []int) *NumericRows {
	return &NumericRows{vals: vals, rows: rows}
}

// RowsInRange returns the rows whose value lies in the closed interval
// [lo, hi], sorted ascending by row number.
func (n *NumericRows) RowsInRange(lo, hi float64) []int {
	if hi < lo || len(n.vals) == 0 {
		return nil
	}
	from := searchFloat(n.vals, lo)    // first index with val >= lo
	to := searchFloatAfter(n.vals, hi) // first index with val > hi
	if from >= to {
		return nil
	}
	out := append([]int(nil), n.rows[from:to]...)
	sort.Ints(out)
	return out
}

// AddRangeToSet adds every row whose value lies in [lo, hi] to the set.
// The rows ride the value order, so they reach the set unsorted; the
// bulk AddAll absorbs that in one sort instead of a per-row insertion
// shuffle in the sparse form (and plain bit-sets in the dense form), so
// the index path stays O(log n + k log k) with no O(k²) tail.
func (n *NumericRows) AddRangeToSet(lo, hi float64, s *RowSet) {
	if hi < lo || len(n.vals) == 0 {
		return
	}
	from := searchFloat(n.vals, lo)
	to := searchFloatAfter(n.vals, hi)
	s.AddAll(n.rows[from:to])
}

// CountRange returns |{rows : lo ≤ value ≤ hi}| in O(log n).
func (n *NumericRows) CountRange(lo, hi float64) int {
	if hi < lo {
		return 0
	}
	return searchFloatAfter(n.vals, hi) - searchFloat(n.vals, lo)
}

// Clone returns a deep copy for copy-on-write maintenance: Insert
// shifts elements in place, so the writer's private copy cannot share
// arrays with readers of the original.
func (n *NumericRows) Clone() *NumericRows {
	if n == nil {
		return nil
	}
	return &NumericRows{
		vals: append([]float64(nil), n.vals...),
		rows: append([]int(nil), n.rows...),
	}
}

// Insert adds one (value, row) pair, keeping the value order (αDB
// incremental maintenance). A nil receiver allocates a fresh index.
func (n *NumericRows) Insert(v float64, row int) *NumericRows {
	if n == nil {
		return &NumericRows{vals: []float64{v}, rows: []int{row}}
	}
	pos := searchFloat(n.vals, v)
	n.vals = append(n.vals, 0)
	n.rows = append(n.rows, 0)
	copy(n.vals[pos+1:], n.vals[pos:])
	copy(n.rows[pos+1:], n.rows[pos:])
	n.vals[pos], n.rows[pos] = v, row
	return n
}

// searchFloat returns the first index i with xs[i] >= v.
func searchFloat(xs []float64, v float64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchFloatAfter returns the first index i with xs[i] > v.
func searchFloatAfter(xs []float64, v float64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// IntersectSorted intersects two ascending row lists by merge; the
// result is ascending. It is the abduction layer's posting-list
// intersection primitive.
func IntersectSorted(a, b []int) []int {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]int, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// UnionSorted merges two ascending row lists, dropping duplicates; the
// result is ascending. Together with IntersectSorted it is the posting
// -list algebra shared by the abduction layer, the αDB's disjunctive
// row sets, and the engine's IN-predicate pushdown.
func UnionSorted(a, b []int) []int {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
