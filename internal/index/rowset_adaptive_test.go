package index

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// opUniverse bounds replayed rows so dense storage stays small (64
// words) while leaving room for every form transition: densify on
// clustered fills, sparsify on draining intersections, grow on
// out-of-span adds.
const opUniverse = 1 << 12

// applyOps interprets data as a little op language over one RowSet and
// replays every op against a map oracle, failing on the first
// divergence in contents, cardinality, membership, or the sparse
// sorted-unique invariant. It returns the final sorted contents so
// callers can compare replays across representation modes.
func applyOps(t *testing.T, data []byte) []int {
	t.Helper()
	s := NewRowSet(opUniverse)
	ref := map[int]bool{}
	pos := 0
	next := func() int {
		if pos >= len(data) {
			return 0
		}
		b := int(data[pos])
		pos++
		return b
	}
	nextRow := func() int {
		hi := next()
		lo := next()
		return (hi<<8 | lo) % opUniverse
	}
	nextRows := func() []int {
		k := next() % 32
		out := make([]int, 0, k)
		for i := 0; i < k; i++ {
			out = append(out, nextRow())
		}
		return out
	}
	// operand builds the right-hand set for the binary ops: either a
	// scattered row list (sparse-shaped) or a contiguous run long enough
	// to densify, so every form×form combination is exercised.
	operand := func() (*RowSet, map[int]bool) {
		var rows []int
		if next()%2 == 0 {
			rows = nextRows()
		} else {
			start := nextRow()
			n := next() * 4
			for r := start; r < start+n && r < opUniverse; r++ {
				rows = append(rows, r)
			}
		}
		m := map[int]bool{}
		for _, r := range rows {
			m[r] = true
		}
		return RowSetFromSorted(rows), m
	}
	for pos < len(data) {
		switch next() % 8 {
		case 0:
			r := nextRow()
			s.Add(r)
			ref[r] = true
		case 1:
			rows := nextRows()
			s.AddAll(rows)
			for _, r := range rows {
				ref[r] = true
			}
		case 2:
			o, m := operand()
			remaining := s.AndWith(o)
			for r := range ref {
				if !m[r] {
					delete(ref, r)
				}
			}
			if remaining != (len(ref) > 0) {
				t.Fatalf("AndWith reported remaining=%v with %d rows left", remaining, len(ref))
			}
		case 3:
			o, m := operand()
			s.OrWith(o)
			for r := range m {
				ref[r] = true
			}
		case 4:
			o, m := operand()
			s.AndNotWith(o)
			for r := range m {
				delete(ref, r)
			}
		case 5:
			// Clone-detach check: mutating the clone must not leak into
			// the original, whatever form it is in.
			before := s.ToSorted()
			c := s.Clone()
			c.Add(nextRow())
			c.AndWith(RowSetFromSorted([]int{nextRow()}))
			if got := s.ToSorted(); !reflect.DeepEqual(got, before) {
				t.Fatalf("original changed through clone: %v -> %v", before, got)
			}
		case 6:
			s = s.Clone()
		case 7:
			r := nextRow()
			if got, want := s.Contains(r), ref[r]; got != want {
				t.Fatalf("Contains(%d) = %v, want %v", r, got, want)
			}
		}
		checkOracle(t, s, ref)
	}
	return s.ToSorted()
}

// checkOracle compares a set against its map oracle and verifies the
// representation invariants the frozen-read contract depends on.
func checkOracle(t *testing.T, s *RowSet, ref map[int]bool) {
	t.Helper()
	if got, want := s.Count(), len(ref); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	want := make([]int, 0, len(ref))
	for r := range ref {
		want = append(want, r)
	}
	sort.Ints(want)
	if len(want) == 0 {
		want = nil
	}
	if got := s.ToSorted(); !reflect.DeepEqual(got, want) {
		t.Fatalf("contents = %v, want %v (form %s)", got, want, s.Form())
	}
	// The sparse form must hold the sorted-unique invariant after every
	// mutation — readers binary-search it without normalizing.
	for i := 1; i < len(s.sparse); i++ {
		if s.sparse[i] <= s.sparse[i-1] {
			t.Fatalf("sparse invariant broken at %d: %v", i, s.sparse)
		}
	}
	if denseOnly && len(ref) > 0 && s.Form() != "dense" {
		t.Fatalf("denseOnly mode left a non-empty set in %s form", s.Form())
	}
}

// TestRowSetRandomOpParity replays random op sequences twice — adaptive
// and dense-only — checking both against the map oracle at every step
// and against each other at the end. This is the deterministic twin of
// FuzzRowSetOps covering densify, sparsify, grow, and every cross-form
// And/Or/AndNot combination.
func TestRowSetRandomOpParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 250; i++ {
		data := make([]byte, 40+rng.Intn(400))
		rng.Read(data)
		adaptive := applyOps(t, data)
		prev := SetDenseOnly(true)
		dense := applyOps(t, data)
		SetDenseOnly(prev)
		if !reflect.DeepEqual(adaptive, dense) {
			t.Fatalf("seq %d: adaptive %v != dense-only %v", i, adaptive, dense)
		}
	}
}

// rangeRows returns the ascending rows of [lo, hi).
func rangeRows(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, r)
	}
	return out
}

// TestRowSetFormTransitions pins the adaptive thresholds: clustered
// fills densify, draining intersections sparsify and release the
// bitset.
func TestRowSetFormTransitions(t *testing.T) {
	s := NewRowSet(1 << 20)
	if s.Form() != "sparse" {
		t.Fatalf("fresh set form = %s", s.Form())
	}
	// 100 members in 2 words is far past the sparse break-even.
	s.AddAll(rangeRows(0, 100))
	if s.Form() != "dense" {
		t.Fatalf("clustered 100-member set form = %s, want dense", s.Form())
	}
	// Intersecting down to 2 rows crosses the hysteresis and drops the
	// bitset.
	s.AndWith(RowSetFromSorted([]int{4, 8}))
	if s.Form() != "sparse" {
		t.Fatalf("post-intersection form = %s, want sparse", s.Form())
	}
	if got := s.ToSorted(); !reflect.DeepEqual(got, []int{4, 8}) {
		t.Fatalf("post-intersection contents = %v", got)
	}
	if rb := s.ResidentBytes(); rb > 64 {
		t.Fatalf("sparsified set still resident at %d bytes", rb)
	}
}

// TestRowSetFromSortedSizesOffTrueMax pins the pre-sizing fix: unsorted
// input whose maximum is NOT the last element must still produce a
// correctly-sized set (the old code sized the bitset off rows[len-1]).
func TestRowSetFromSortedSizesOffTrueMax(t *testing.T) {
	// Descending, duplicate-heavy, dense-bound input: last element is
	// the minimum.
	var rows []int
	for r := 1999; r >= 0; r-- {
		rows = append(rows, r, r)
	}
	s := RowSetFromSorted(rows)
	if got := s.Count(); got != 2000 {
		t.Fatalf("Count = %d, want 2000", got)
	}
	if s.Form() != "dense" {
		t.Fatalf("form = %s, want dense", s.Form())
	}
	if !s.Contains(1999) || !s.Contains(0) {
		t.Fatal("extremes missing")
	}
	// Sparse-bound variant with the max first.
	sp := RowSetFromSorted([]int{100000, 5, 5, 70})
	if got := sp.ToSorted(); !reflect.DeepEqual(got, []int{5, 70, 100000}) {
		t.Fatalf("sparse unsorted round trip = %v", got)
	}
}

// TestRowSetAndWithShrinksStorage pins the storage-shrink half of
// AndWith: trailing all-zero words are truncated (not scanned and
// kept), and a drained dense set releases its bitset entirely.
func TestRowSetAndWithShrinksStorage(t *testing.T) {
	universe := 100000
	a := RowSetFromSorted(rangeRows(0, universe))
	before := a.ResidentBytes()
	if a.Form() != "dense" || before < int64(universe/8) {
		t.Fatalf("setup: form %s, %d bytes", a.Form(), before)
	}

	// Dense ∩ singleton drains to the sparse form — bitset gone.
	a.AndWith(RowSetFromSorted([]int{12345}))
	if a.Form() != "sparse" || a.Count() != 1 {
		t.Fatalf("drained set: form %s count %d", a.Form(), a.Count())
	}
	if rb := a.ResidentBytes(); rb > 64 {
		t.Fatalf("drained set still resident at %d bytes (was %d)", rb, before)
	}

	// Dense ∩ dense with a short operand truncates to the operand's
	// span and reallocates away the dead capacity.
	c := RowSetFromSorted(rangeRows(0, universe))
	d := RowSetFromSorted(rangeRows(0, 3000))
	if d.Form() != "dense" {
		t.Fatalf("operand form = %s, want dense", d.Form())
	}
	c.AndWith(d)
	if got, want := c.Count(), 3000; got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	if c.spanWords() > d.spanWords() {
		t.Fatalf("trailing zero words kept: span %d > %d", c.spanWords(), d.spanWords())
	}
	if rb := c.ResidentBytes(); rb > before/8 {
		t.Fatalf("truncated set still resident at %d bytes (was %d)", rb, before)
	}

	// Empty operand: storage released, early-exit signalled.
	e := RowSetFromSorted(rangeRows(0, universe))
	if e.AndWith(NewRowSet(0)) {
		t.Fatal("AndWith(empty) reported remaining rows")
	}
	if rb := e.ResidentBytes(); rb != 0 {
		t.Fatalf("empty result resident at %d bytes", rb)
	}
}

// TestRowSetDenseOnlyMode pins the A/B knob squid-bench's baseline arm
// uses: dense-only sets never sparsify and resident bytes equal the
// dense-equivalent accounting.
func TestRowSetDenseOnlyMode(t *testing.T) {
	prev := SetDenseOnly(true)
	defer SetDenseOnly(prev)
	s := NewRowSet(100)
	s.Add(70)
	if s.Form() != "dense" {
		t.Fatalf("denseOnly Add left form %s", s.Form())
	}
	if rb, de := s.ResidentBytes(), s.DenseEquivalentBytes(); rb != de {
		t.Fatalf("denseOnly resident %d != dense-equivalent %d", rb, de)
	}
	s.AndWith(RowSetFromSorted([]int{1}))
	if s.Form() != "dense" {
		t.Fatalf("denseOnly intersection sparsified to %s", s.Form())
	}
}

// TestRowSetFrozenConcurrentReads drives every read-only method from
// concurrent goroutines against frozen sets of both forms — the cached
// row-set contract. Run under -race this fails if any "read" method
// mutates the representation.
func TestRowSetFrozenConcurrentReads(t *testing.T) {
	sparse := RowSetFromSorted([]int{3, 70, 900, 4096})
	dense := RowSetFromSorted(rangeRows(0, 3000))
	if sparse.Form() != "sparse" || dense.Form() != "dense" {
		t.Fatalf("setup forms: %s/%s", sparse.Form(), dense.Form())
	}
	var wg sync.WaitGroup
	for _, frozen := range []*RowSet{sparse, dense} {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(s *RowSet) {
				defer wg.Done()
				for i := 0; i < 300; i++ {
					s.Contains(i)
					s.Count()
					s.ToSorted()
					s.ResidentBytes()
					s.DenseEquivalentBytes()
					s.Form()
					s.Iterate(func(int) bool { return true })
					// Mutations go through a private clone; the frozen
					// set is only ever a read operand.
					c := s.Clone()
					c.AndWith(s)
					c.OrWith(s)
					c.AndNotWith(s)
				}
			}(frozen)
		}
	}
	wg.Wait()
	if got := sparse.ToSorted(); !reflect.DeepEqual(got, []int{3, 70, 900, 4096}) {
		t.Fatalf("frozen sparse set changed: %v", got)
	}
	if got := dense.Count(); got != 3000 {
		t.Fatalf("frozen dense set changed: count %d", got)
	}
}
