package index

import (
	"sort"

	"squid/internal/relation"
)

// Sorted is a sorted index over a numeric column. It supports the prefix
// selectivity queries the αDB precomputes (§5 "smart selectivity
// computation"): CountLE(v) gives |{rows : value ≤ v}| in O(log n), and
// range counts are differences of prefixes.
type Sorted struct {
	vals []float64 // sorted, NULLs excluded
	min  float64
	max  float64
}

// BuildSorted builds a sorted index over the named numeric column.
func BuildSorted(rel *relation.Relation, col string) *Sorted {
	c := rel.Column(col)
	s := &Sorted{}
	if c == nil || c.Type == relation.String {
		return s
	}
	for row := 0; row < c.Len(); row++ {
		if c.IsNull(row) {
			continue
		}
		s.vals = append(s.vals, c.Float64(row))
	}
	sort.Float64s(s.vals)
	if len(s.vals) > 0 {
		s.min = s.vals[0]
		s.max = s.vals[len(s.vals)-1]
	}
	return s
}

// BuildSortedFromValues builds the index straight from a value slice;
// the αDB uses this for derived association-strength distributions.
func BuildSortedFromValues(vals []float64) *Sorted {
	s := &Sorted{vals: append([]float64(nil), vals...)}
	sort.Float64s(s.vals)
	if len(s.vals) > 0 {
		s.min = s.vals[0]
		s.max = s.vals[len(s.vals)-1]
	}
	return s
}

// Len returns the number of indexed (non-NULL) values.
func (s *Sorted) Len() int { return len(s.vals) }

// RawVals exposes the sorted value storage for snapshot serialization;
// do not mutate.
func (s *Sorted) RawVals() []float64 { return s.vals }

// RestoreSorted adopts an already-sorted value slice (snapshot load).
func RestoreSorted(vals []float64) *Sorted {
	s := &Sorted{vals: vals}
	if len(vals) > 0 {
		s.min, s.max = vals[0], vals[len(vals)-1]
	}
	return s
}

// Min returns the smallest indexed value (0 when empty).
func (s *Sorted) Min() float64 { return s.min }

// Max returns the largest indexed value (0 when empty).
func (s *Sorted) Max() float64 { return s.max }

// CountLE returns the number of values ≤ v.
func (s *Sorted) CountLE(v float64) int {
	return sort.Search(len(s.vals), func(i int) bool { return s.vals[i] > v })
}

// CountLT returns the number of values < v.
func (s *Sorted) CountLT(v float64) int {
	return sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= v })
}

// CountGE returns the number of values ≥ v.
func (s *Sorted) CountGE(v float64) int { return len(s.vals) - s.CountLT(v) }

// CountRange returns the number of values in the closed interval [lo, hi],
// computed as a difference of prefix counts exactly as the αDB derives
// ψ(φ⟨A,(l,h]⟩) from precomputed prefixes.
func (s *Sorted) CountRange(lo, hi float64) int {
	if hi < lo {
		return 0
	}
	return s.CountLE(hi) - s.CountLT(lo)
}

// Clone returns a deep copy for copy-on-write maintenance: the writer
// mutates the clone in place (Insert/Replace shift elements), so the
// value array cannot be shared with readers of the original.
func (s *Sorted) Clone() *Sorted {
	if s == nil {
		return nil
	}
	return &Sorted{vals: append([]float64(nil), s.vals...), min: s.min, max: s.max}
}

// Insert adds one value in place, keeping the order (incremental αDB
// maintenance). It returns the receiver for chaining; a nil receiver
// allocates a fresh index.
func (s *Sorted) Insert(v float64) *Sorted {
	if s == nil {
		return BuildSortedFromValues([]float64{v})
	}
	pos := s.CountLT(v)
	s.vals = append(s.vals, 0)
	copy(s.vals[pos+1:], s.vals[pos:])
	s.vals[pos] = v
	if len(s.vals) == 1 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	return s
}

// Replace swaps one occurrence of old for new (or just inserts new when
// fresh is true), keeping the order; used when an association count is
// bumped during incremental maintenance.
func (s *Sorted) Replace(old, new float64, fresh bool) *Sorted {
	if s == nil {
		return BuildSortedFromValues([]float64{new})
	}
	if !fresh {
		pos := s.CountLT(old)
		if pos < len(s.vals) && s.vals[pos] == old {
			copy(s.vals[pos:], s.vals[pos+1:])
			s.vals = s.vals[:len(s.vals)-1]
		}
	}
	return s.Insert(new)
}
