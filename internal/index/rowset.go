package index

import "math/bits"

// RowSet is a dense bitset over entity rows: bit r set means row r is in
// the set. It replaces sorted-[]int posting merges on the abduction hot
// path with word-parallel algebra — an intersection of two sets over n
// rows costs O(n/64) word ANDs instead of an O(n·k) merge cascade, and a
// cached set costs one bit per entity row instead of one machine word
// per member (~8x smaller at realistic selectivities).
//
// The zero value is an empty set. A RowSet is NOT safe for concurrent
// mutation; the αDB selectivity cache hands out sets that are immutable
// once stored (exactly like the posting lists they memoize), so readers
// must treat cached sets as frozen and Clone before mutating.
type RowSet struct {
	words []uint64
}

// NewRowSet returns an empty set pre-sized for rows in [0, universe).
// Add still grows the set past the universe if needed.
func NewRowSet(universe int) *RowSet {
	if universe < 0 {
		universe = 0
	}
	return &RowSet{words: make([]uint64, (universe+63)/64)}
}

// RowSetFromSorted builds a set from an ascending row list (the αDB
// posting-list format). Unsorted or duplicate input still produces the
// correct set; only the pre-sizing assumes ascending order.
func RowSetFromSorted(rows []int) *RowSet {
	s := &RowSet{}
	if n := len(rows); n > 0 && rows[n-1] >= 0 {
		s.words = make([]uint64, rows[n-1]>>6+1)
	}
	for _, r := range rows {
		s.Add(r)
	}
	return s
}

// grow extends the word storage to cover word index w.
func (s *RowSet) grow(w int) {
	if w >= len(s.words) {
		s.words = append(s.words, make([]uint64, w+1-len(s.words))...)
	}
}

// Add inserts one row.
func (s *RowSet) Add(row int) {
	if row < 0 {
		return
	}
	w := row >> 6
	s.grow(w)
	s.words[w] |= 1 << uint(row&63)
}

// AddAll inserts every row of the list.
func (s *RowSet) AddAll(rows []int) {
	for _, r := range rows {
		s.Add(r)
	}
}

// Contains reports membership.
func (s *RowSet) Contains(row int) bool {
	if s == nil || row < 0 {
		return false
	}
	w := row >> 6
	return w < len(s.words) && s.words[w]&(1<<uint(row&63)) != 0
}

// Count returns the cardinality (population count over the words).
func (s *RowSet) Count() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy; mutating the clone never touches
// the original (the detach step before intersecting cached sets).
func (s *RowSet) Clone() *RowSet {
	if s == nil {
		return &RowSet{}
	}
	return &RowSet{words: append([]uint64(nil), s.words...)}
}

// AndWith intersects in place (s ∩= t) and reports whether any rows
// remain — the early-exit signal of the intersection cascade. A nil or
// shorter t contributes zero words past its length.
func (s *RowSet) AndWith(t *RowSet) bool {
	var tw []uint64
	if t != nil {
		tw = t.words
	}
	any := false
	for i := range s.words {
		if i < len(tw) {
			s.words[i] &= tw[i]
		} else {
			s.words[i] = 0
		}
		if s.words[i] != 0 {
			any = true
		}
	}
	return any
}

// OrWith unions in place (s ∪= t), growing s as needed.
func (s *RowSet) OrWith(t *RowSet) {
	if t == nil || len(t.words) == 0 {
		return
	}
	s.grow(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// AndNotWith subtracts in place (s −= t).
func (s *RowSet) AndNotWith(t *RowSet) {
	if t == nil {
		return
	}
	n := min(len(s.words), len(t.words))
	for i := 0; i < n; i++ {
		s.words[i] &^= t.words[i]
	}
}

// Iterate calls fn on every member in ascending order until fn returns
// false.
func (s *RowSet) Iterate(fn func(row int) bool) {
	if s == nil {
		return
	}
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi<<6 | b) {
				return
			}
			w &= w - 1
		}
	}
}

// ToSorted converts back to the ascending []int posting-list format the
// rest of the system speaks; an empty set yields nil, matching the nil
// conventions of the posting-list producers it replaces.
func (s *RowSet) ToSorted() []int {
	n := s.Count()
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	s.Iterate(func(row int) bool { out = append(out, row); return true })
	return out
}
