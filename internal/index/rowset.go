package index

import (
	"math/bits"
	"slices"
	"sort"
)

// RowSet is an adaptive set over entity rows with two physical forms,
// chosen per set by cardinality (the hybrid used by Roaring-style
// engines):
//
//   - sparse: a sorted, duplicate-free []uint32 of member rows, used
//     while the cardinality stays at or below roughly two members per
//     64-row word of the set's span — the byte break-even, where the
//     4-byte-per-member array matches the 8-byte words it replaces;
//   - dense: a []uint64 bitset (bit r set means row r is in the set),
//     used above that threshold, where word-parallel algebra wins.
//
// The algebra is form-aware: sparse×sparse intersects by galloping
// (exponential-search) merge, sparse×dense probes the bitmap per member,
// dense×dense runs the word-wise loop. Mutations adapt the form
// automatically — a set densifies when it outgrows the sparse threshold
// and sparsifies (releasing the large bitset) when an intersection
// empties it out, so a once-large set does not stay large forever. At
// million-row universes this is the difference between every cached
// highly-selective filter costing ~125 KB and it costing a few dozen
// bytes, and between AndWith scanning ~15.6k words and it galloping
// through a handful of members.
//
// The zero value is an empty set. A RowSet is NOT safe for concurrent
// mutation; the αDB selectivity cache hands out sets that are immutable
// once stored (exactly like the posting lists they memoize), so readers
// must treat cached sets as frozen and Clone before mutating. To keep
// frozen sets safe for concurrent readers, the read-only methods
// (Contains/Count/Iterate/ToSorted/ResidentBytes/...) never touch the
// representation: every mutating method restores the sparse
// sorted-unique invariant before it returns.
type RowSet struct {
	// Exactly one form is live: words non-nil means dense; otherwise
	// the set is sparse (possibly empty).
	words  []uint64
	sparse []uint32
	// hintWords records the word span of the universe the set was
	// created for (0 when unknown). It is pure accounting: the
	// pre-adaptive representation allocated the full universe bitset up
	// front, so DenseEquivalentBytes uses the hint to report what the
	// same set cost before the adaptive form — never what it holds.
	hintWords int
}

// denseOnly forces every set into the dense form (no sparsification),
// reproducing the pre-adaptive representation exactly. It exists for
// A/B benchmarking (squid-bench's dense baseline arm) and for parity
// tests; it is a plain package variable, so it must only be flipped
// while no RowSet is being mutated on another goroutine — experiment
// setup, not request time.
var denseOnly bool

// SetDenseOnly toggles the dense-only debug mode and returns the
// previous value. See denseOnly for the (single-threaded) contract.
func SetDenseOnly(v bool) bool {
	prev := denseOnly
	denseOnly = v
	return prev
}

// sparseLimit returns the largest sparse cardinality for a set spanning
// the given number of 64-row words: two members per word — the byte
// break-even where the 4-byte-per-member array matches the bitset it
// replaces (and galloping still beats the word loop comfortably). The
// floor keeps small sets from flip-flopping between forms on every
// mutation.
func sparseLimit(words int) int {
	const floor = 16
	if 2*words < floor {
		return floor
	}
	return 2 * words
}

// spanWords returns the number of words needed to cover the set's
// current span (0 for an empty set).
func (s *RowSet) spanWords() int {
	if s.words != nil {
		return len(s.words)
	}
	if n := len(s.sparse); n > 0 {
		return int(s.sparse[n-1])>>6 + 1
	}
	return 0
}

// NewRowSet returns an empty set for rows in [0, universe). The universe
// only bounds expectations — Add still grows the set past it — and an
// adaptive set starts sparse regardless, so the parameter no longer
// pre-allocates storage; it is kept as the accounting hint
// DenseEquivalentBytes reports against. Under denseOnly the full
// universe bitset is allocated up front, exactly as the pre-adaptive
// representation did.
func NewRowSet(universe int) *RowSet {
	w := (universe + 63) >> 6
	if denseOnly {
		return &RowSet{words: make([]uint64, w), hintWords: w}
	}
	return &RowSet{hintWords: w}
}

// RowSetFromSorted builds a set from an ascending row list (the αDB
// posting-list format). Unsorted or duplicate input still produces the
// correct set: the build sorts and deduplicates as needed and sizes the
// dense form off the true maximum, not the last element.
func RowSetFromSorted(rows []int) *RowSet {
	s := &RowSet{}
	if len(rows) == 0 {
		return s
	}
	sp := make([]uint32, 0, len(rows))
	sorted := true
	for _, r := range rows {
		if r < 0 {
			continue
		}
		if len(sp) > 0 && uint32(r) < sp[len(sp)-1] {
			sorted = false
		}
		sp = append(sp, uint32(r))
	}
	if !sorted {
		slices.Sort(sp)
	}
	s.sparse = dedupSorted(sp)
	s.maybeDensify()
	return s
}

// dedupSorted removes adjacent duplicates from a sorted slice in place.
func dedupSorted(sp []uint32) []uint32 {
	out := sp[:0]
	for i, v := range sp {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// maybeDensify flips a sparse set to the dense form when it exceeds the
// sparse threshold for its span (always, under denseOnly).
func (s *RowSet) maybeDensify() {
	if s.words != nil {
		return
	}
	w := s.spanWords()
	if !denseOnly && len(s.sparse) <= sparseLimit(w) {
		return
	}
	if w == 0 {
		if !denseOnly {
			return
		}
		s.words = []uint64{}
	} else {
		s.words = make([]uint64, w)
	}
	for _, r := range s.sparse {
		s.words[r>>6] |= 1 << (r & 63)
	}
	s.sparse = nil
}

// maybeSparsify flips a dense set whose cardinality dropped to half the
// sparse threshold back to the sparse form, releasing the bitset — the
// storage-shrink half of the adaptive contract. count must be the set's
// exact cardinality. Hysteresis (limit/2, not limit) keeps a set sitting
// at the boundary from thrashing between forms.
func (s *RowSet) maybeSparsify(count int) {
	if denseOnly || s.words == nil {
		return
	}
	if count > sparseLimit(len(s.words))/2 {
		return
	}
	s.sparsify(count)
}

// sparsify unconditionally converts a dense set of the given exact
// cardinality to the sparse form, releasing the bitset.
func (s *RowSet) sparsify(count int) {
	if count == 0 {
		s.words, s.sparse = nil, nil
		return
	}
	sp := make([]uint32, 0, count)
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			sp = append(sp, uint32(wi<<6|b))
			w &= w - 1
		}
	}
	s.words, s.sparse = nil, sp
}

// trimWords drops trailing all-zero words so a shrunken dense set's span
// reflects what it still holds, and reallocates when less than half the
// capacity remains live — a once-large set must not stay large forever.
func (s *RowSet) trimWords() {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	if n*2 < cap(s.words) {
		s.words = append(make([]uint64, 0, n), s.words[:n]...)
		return
	}
	s.words = s.words[:n]
}

// grow extends the dense word storage to cover word index w.
func (s *RowSet) grow(w int) {
	if w >= len(s.words) {
		s.words = append(s.words, make([]uint64, w+1-len(s.words))...)
	}
}

// Add inserts one row.
func (s *RowSet) Add(row int) {
	if row < 0 {
		return
	}
	if s.words != nil {
		w := row >> 6
		s.grow(w)
		s.words[w] |= 1 << uint(row&63)
		return
	}
	r := uint32(row)
	n := len(s.sparse)
	if n == 0 || r > s.sparse[n-1] {
		// Ascending append: the posting-list fast path.
		s.sparse = append(s.sparse, r)
	} else {
		i := sort.Search(n, func(i int) bool { return s.sparse[i] >= r })
		if s.sparse[i] == r {
			return
		}
		s.sparse = append(s.sparse, 0)
		copy(s.sparse[i+1:], s.sparse[i:])
		s.sparse[i] = r
	}
	s.maybeDensify()
}

// AddAll inserts every row of the list. Unsorted input pays one sort
// over the combined set instead of a per-row insertion shuffle, so bulk
// fills (posting unions, numeric-index ranges) stay O(k log k).
func (s *RowSet) AddAll(rows []int) {
	if len(rows) == 0 {
		return
	}
	if s.words != nil {
		maxW := 0
		for _, r := range rows {
			if w := r >> 6; r >= 0 && w > maxW {
				maxW = w
			}
		}
		s.grow(maxW)
		for _, r := range rows {
			if r >= 0 {
				s.words[r>>6] |= 1 << uint(r&63)
			}
		}
		return
	}
	sorted := true
	for _, r := range rows {
		if r < 0 {
			continue
		}
		if n := len(s.sparse); n > 0 && uint32(r) <= s.sparse[n-1] {
			sorted = false
		}
		s.sparse = append(s.sparse, uint32(r))
	}
	if !sorted {
		slices.Sort(s.sparse)
	}
	s.sparse = dedupSorted(s.sparse)
	s.maybeDensify()
}

// Contains reports membership.
func (s *RowSet) Contains(row int) bool {
	if s == nil || row < 0 {
		return false
	}
	if s.words != nil {
		w := row >> 6
		return w < len(s.words) && s.words[w]&(1<<uint(row&63)) != 0
	}
	r := uint32(row)
	i := sort.Search(len(s.sparse), func(i int) bool { return s.sparse[i] >= r })
	return i < len(s.sparse) && s.sparse[i] == r
}

// Count returns the cardinality (sparse length or population count).
func (s *RowSet) Count() int {
	if s == nil {
		return 0
	}
	if s.words == nil {
		return len(s.sparse)
	}
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy in the same form; mutating the clone
// never touches the original (the detach step before intersecting cached
// sets). Cloning a sparse set stays sparse — the intersection cascade's
// accumulator never pays for a bitset it does not need.
func (s *RowSet) Clone() *RowSet {
	if s == nil {
		return &RowSet{}
	}
	c := &RowSet{hintWords: s.hintWords}
	if s.words != nil {
		c.words = append([]uint64{}, s.words...)
	} else if len(s.sparse) > 0 {
		c.sparse = append([]uint32(nil), s.sparse...)
	}
	return c
}

// AndWith intersects in place (s ∩= t) and reports whether any rows
// remain — the early-exit signal of the intersection cascade. A nil t is
// the empty set. The result adapts: a dense set that intersects down to
// a handful of rows sparsifies and releases its bitset, and the dense
// loop stops at the shorter operand (everything past it is provably
// zero) instead of scanning and zeroing the tail.
func (s *RowSet) AndWith(t *RowSet) bool {
	tEmpty := t == nil || (t.words == nil && len(t.sparse) == 0) || (t.words != nil && len(t.words) == 0)
	if tEmpty {
		s.words, s.sparse = nil, nil
		if denseOnly {
			s.words = []uint64{}
		}
		return false
	}
	switch {
	case s.words == nil && t.words == nil:
		s.sparse = intersectGallop(s.sparse, t.sparse)
	case s.words == nil:
		// sparse×dense: probe the bitmap per member.
		out := s.sparse[:0]
		for _, r := range s.sparse {
			if w := int(r >> 6); w < len(t.words) && t.words[w]&(1<<(r&63)) != 0 {
				out = append(out, r)
			}
		}
		s.sparse = out
	case t.words == nil:
		// dense×sparse: the result has at most len(t.sparse) members —
		// probe s per member and come out sparse, dropping the bitset.
		out := make([]uint32, 0, len(t.sparse))
		for _, r := range t.sparse {
			if w := int(r >> 6); w < len(s.words) && s.words[w]&(1<<(r&63)) != 0 {
				out = append(out, r)
			}
		}
		s.words, s.sparse = nil, out
		s.maybeDensify() // re-densify if the result still exceeds its span's limit
	default:
		// dense×dense: word loop to the shorter operand; the tail is
		// zero by construction, so truncate instead of scanning it.
		n := min(len(s.words), len(t.words))
		s.words = s.words[:n]
		count := 0
		for i := 0; i < n; i++ {
			s.words[i] &= t.words[i]
			count += bits.OnesCount64(s.words[i])
		}
		s.trimWords()
		s.maybeSparsify(count)
	}
	if s.words != nil {
		return len(s.words) > 0 // trimmed: any remaining word is non-zero
	}
	return len(s.sparse) > 0
}

// intersectGallop intersects two sorted sets in place into a's storage
// using exponential search on the longer side — O(min·log(max/min)),
// the sparse×sparse fast path.
func intersectGallop(a, b []uint32) []uint32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i += gallop(a[i:], b[j])
		default:
			j += gallop(b[j:], a[i])
		}
	}
	return out
}

// gallop returns the offset of the first element of xs that is >= v,
// found by doubling probes then binary search within the last bracket.
func gallop(xs []uint32, v uint32) int {
	bound := 1
	for bound < len(xs) && xs[bound] < v {
		bound <<= 1
	}
	lo := bound >> 1
	hi := min(bound+1, len(xs))
	return lo + sort.Search(hi-lo, func(k int) bool { return xs[lo+k] >= v })
}

// OrWith unions in place (s ∪= t), growing and adapting s as needed.
func (s *RowSet) OrWith(t *RowSet) {
	if t == nil || (t.words == nil && len(t.sparse) == 0) || (t.words != nil && len(t.words) == 0) {
		return
	}
	switch {
	case s.words == nil && t.words == nil:
		s.sparse = unionSorted(s.sparse, t.sparse)
		s.maybeDensify()
	case s.words == nil:
		// sparse×dense: adopt a copy of t's words (never alias the
		// operand) and scatter the sparse members in.
		words := make([]uint64, max(len(t.words), s.spanWords()))
		copy(words, t.words)
		for _, r := range s.sparse {
			words[r>>6] |= 1 << (r & 63)
		}
		s.words, s.sparse = words, nil
	case t.words == nil:
		for _, r := range t.sparse {
			w := int(r >> 6)
			s.grow(w)
			s.words[w] |= 1 << (r & 63)
		}
	default:
		s.grow(len(t.words) - 1)
		for i, w := range t.words {
			s.words[i] |= w
		}
	}
}

// unionSorted merges two sorted duplicate-free sets into a fresh slice.
func unionSorted(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// AndNotWith subtracts in place (s −= t), adapting the form when the
// subtraction empties a dense set out.
func (s *RowSet) AndNotWith(t *RowSet) {
	if t == nil || (t.words == nil && len(t.sparse) == 0) || (t.words != nil && len(t.words) == 0) {
		return
	}
	switch {
	case s.words == nil && t.words == nil:
		out := s.sparse[:0]
		j := 0
		for _, r := range s.sparse {
			for j < len(t.sparse) && t.sparse[j] < r {
				j++
			}
			if j == len(t.sparse) || t.sparse[j] != r {
				out = append(out, r)
			}
		}
		s.sparse = out
	case s.words == nil:
		out := s.sparse[:0]
		for _, r := range s.sparse {
			if w := int(r >> 6); w >= len(t.words) || t.words[w]&(1<<(r&63)) == 0 {
				out = append(out, r)
			}
		}
		s.sparse = out
	case t.words == nil:
		for _, r := range t.sparse {
			if w := int(r >> 6); w < len(s.words) {
				s.words[w] &^= 1 << (r & 63)
			}
		}
		s.trimWords()
		s.maybeSparsify(s.Count())
	default:
		n := min(len(s.words), len(t.words))
		for i := 0; i < n; i++ {
			s.words[i] &^= t.words[i]
		}
		s.trimWords()
		s.maybeSparsify(s.Count())
	}
}

// Iterate calls fn on every member in ascending order until fn returns
// false.
func (s *RowSet) Iterate(fn func(row int) bool) {
	if s == nil {
		return
	}
	if s.words == nil {
		for _, r := range s.sparse {
			if !fn(int(r)) {
				return
			}
		}
		return
	}
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi<<6 | b) {
				return
			}
			w &= w - 1
		}
	}
}

// ToSorted converts back to the ascending []int posting-list format the
// rest of the system speaks; an empty set yields nil, matching the nil
// conventions of the posting-list producers it replaces.
func (s *RowSet) ToSorted() []int {
	n := s.Count()
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	s.Iterate(func(row int) bool { out = append(out, row); return true })
	return out
}

// ResidentBytes returns the heap bytes of the set's backing storage —
// the number the scale track tracks per cached row set.
func (s *RowSet) ResidentBytes() int64 {
	if s == nil {
		return 0
	}
	return int64(cap(s.words))*8 + int64(cap(s.sparse))*4
}

// DenseEquivalentBytes returns what the pre-adaptive representation
// would occupy for this set — the baseline the adaptive form's memory
// win is measured against. The old NewRowSet allocated the full
// universe bitset up front, so a set carrying a universe hint reports
// that; a set built without one (RowSetFromSorted) falls back to its
// span.
func (s *RowSet) DenseEquivalentBytes() int64 {
	if s == nil {
		return 0
	}
	w := s.spanWords()
	if s.hintWords > w {
		w = s.hintWords
	}
	return int64(w) * 8
}

// Compact finalizes a set that is about to be frozen (the αDB cache
// calls it before storing): the form is re-evaluated against the final
// cardinality and span — a set that densified early during an
// ascending build, while its span was still a fraction of its final
// one, converts back to the cheaper sparse form — and the surviving
// storage is reallocated to exactly fit, dropping append-growth slack
// a frozen set would never use. A no-op under denseOnly, where cached
// sets must keep the pre-adaptive full-universe bitsets the baseline
// is measuring.
func (s *RowSet) Compact() {
	if s == nil || denseOnly {
		return
	}
	if s.words != nil {
		s.trimWords()
		count := s.Count()
		if count*4 < len(s.words)*8 {
			s.sparsify(count)
		}
	} else if n := len(s.sparse); n > sparseLimit(s.spanWords()) {
		s.maybeDensify()
	}
	if s.words != nil {
		if cap(s.words) > len(s.words) {
			s.words = append(make([]uint64, 0, len(s.words)), s.words...)
		}
		return
	}
	if cap(s.sparse) > len(s.sparse) {
		s.sparse = append(make([]uint32, 0, len(s.sparse)), s.sparse...)
	}
}

// Form reports the live representation ("sparse" or "dense") for tests
// and diagnostics.
func (s *RowSet) Form() string {
	if s != nil && s.words != nil {
		return "dense"
	}
	return "sparse"
}
