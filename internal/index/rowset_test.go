package index

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomRowSet draws a random ascending, duplicate-free row list over
// [0, universe); density in (0,1] controls the expected fill.
func randomRowSet(rng *rand.Rand, universe int, density float64) []int {
	var out []int
	for r := 0; r < universe; r++ {
		if rng.Float64() < density {
			out = append(out, r)
		}
	}
	return out
}

// refIntersect/refUnion/refSubtract are the sorted-[]int oracles the
// bitset algebra must match exactly.
func refSubtract(a, b []int) []int {
	inB := map[int]bool{}
	for _, r := range b {
		inB[r] = true
	}
	var out []int
	for _, r := range a {
		if !inB[r] {
			out = append(out, r)
		}
	}
	return out
}

// TestRowSetRoundTrip pins the []int <-> bitset conversion on the edge
// shapes the cache migration must preserve: empty (nil in, nil out),
// singleton, all-rows, and randomized sets.
func TestRowSetRoundTrip(t *testing.T) {
	if got := RowSetFromSorted(nil).ToSorted(); got != nil {
		t.Errorf("empty round trip = %v, want nil", got)
	}
	if got := NewRowSet(100).ToSorted(); got != nil {
		t.Errorf("fresh set ToSorted = %v, want nil", got)
	}
	cases := [][]int{
		{0},
		{63}, {64}, {65}, // word-boundary singletons
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, // prefix
	}
	all := make([]int, 1000)
	for i := range all {
		all[i] = i
	}
	cases = append(cases, all)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		cases = append(cases, randomRowSet(rng, 1+rng.Intn(500), rng.Float64()))
	}
	for _, rows := range cases {
		s := RowSetFromSorted(rows)
		if got := s.Count(); got != len(rows) {
			t.Fatalf("Count(%v) = %d, want %d", rows, got, len(rows))
		}
		got := s.ToSorted()
		want := rows
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip of %v = %v", rows, got)
		}
		for _, r := range rows {
			if !s.Contains(r) {
				t.Fatalf("Contains(%d) false for member of %v", r, rows)
			}
		}
		if s.Contains(-1) {
			t.Fatal("Contains(-1) true")
		}
	}
}

// TestRowSetAlgebraParity drives the bitset And/Or/AndNot against the
// sorted-merge oracles on randomized pairs, including the empty,
// singleton, and all-rows shapes.
func TestRowSetAlgebraParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	all := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	pairs := [][2][]int{
		{nil, nil},
		{nil, {5}},
		{{5}, nil},
		{{5}, {5}},
		{{0}, {64}},
		{all(200), all(130)},
		{all(64), {63}},
	}
	for i := 0; i < 200; i++ {
		u1, u2 := 1+rng.Intn(400), 1+rng.Intn(400)
		pairs = append(pairs, [2][]int{
			randomRowSet(rng, u1, rng.Float64()),
			randomRowSet(rng, u2, rng.Float64()),
		})
	}
	for _, p := range pairs {
		a, b := p[0], p[1]

		and := RowSetFromSorted(a).Clone()
		remaining := and.AndWith(RowSetFromSorted(b))
		wantAnd := IntersectSorted(a, b)
		if len(wantAnd) == 0 {
			wantAnd = nil
		}
		if got := and.ToSorted(); !reflect.DeepEqual(got, wantAnd) {
			t.Fatalf("AndWith(%v, %v) = %v, want %v", a, b, got, wantAnd)
		}
		if remaining != (len(wantAnd) > 0) {
			t.Fatalf("AndWith(%v, %v) reported remaining=%v with %d rows", a, b, remaining, len(wantAnd))
		}

		or := RowSetFromSorted(a)
		or.OrWith(RowSetFromSorted(b))
		wantOr := UnionSorted(a, b)
		if len(wantOr) == 0 {
			wantOr = nil
		}
		if got := or.ToSorted(); !reflect.DeepEqual(got, wantOr) {
			t.Fatalf("OrWith(%v, %v) = %v, want %v", a, b, got, wantOr)
		}

		sub := RowSetFromSorted(a)
		sub.AndNotWith(RowSetFromSorted(b))
		wantSub := refSubtract(a, b)
		if got := sub.ToSorted(); !reflect.DeepEqual(got, wantSub) {
			t.Fatalf("AndNotWith(%v, %v) = %v, want %v", a, b, got, wantSub)
		}
	}
}

// TestRowSetCloneIsDetached pins the detach contract IntersectRows
// relies on: mutating a clone never changes the original (which may be
// shared αDB cache storage).
func TestRowSetCloneIsDetached(t *testing.T) {
	orig := RowSetFromSorted([]int{1, 64, 200})
	c := orig.Clone()
	c.AndWith(RowSetFromSorted([]int{64}))
	c.Add(3)
	if got := orig.ToSorted(); !reflect.DeepEqual(got, []int{1, 64, 200}) {
		t.Fatalf("original mutated through clone: %v", got)
	}
	var nilSet *RowSet
	if got := nilSet.Clone(); got == nil || got.Count() != 0 {
		t.Fatalf("nil Clone = %v", got)
	}
}

// TestRowSetIterate pins ascending iteration order and early stop.
func TestRowSetIterate(t *testing.T) {
	rows := []int{0, 1, 63, 64, 127, 128, 300}
	var seen []int
	RowSetFromSorted(rows).Iterate(func(r int) bool {
		seen = append(seen, r)
		return true
	})
	if !reflect.DeepEqual(seen, rows) {
		t.Fatalf("Iterate order %v, want %v", seen, rows)
	}
	var first []int
	RowSetFromSorted(rows).Iterate(func(r int) bool {
		first = append(first, r)
		return len(first) < 2
	})
	if !reflect.DeepEqual(first, []int{0, 1}) {
		t.Fatalf("early stop visited %v", first)
	}
}

// TestAddRangeToSet checks the bitset range path against RowsInRange.
func TestAddRangeToSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 300
	vals := make([]float64, n)
	rows := make([]int, n)
	for i := range vals {
		vals[i] = float64(rng.Intn(50))
		rows[i] = i
	}
	idx := BuildNumericRows(vals, rows)
	for i := 0; i < 50; i++ {
		lo := float64(rng.Intn(60) - 5)
		hi := lo + float64(rng.Intn(20))
		s := NewRowSet(n)
		idx.AddRangeToSet(lo, hi, s)
		want := idx.RowsInRange(lo, hi)
		got := s.ToSorted()
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("AddRangeToSet(%g,%g) = %v, want %v", lo, hi, got, want)
		}
	}
	// Inverted and out-of-domain ranges add nothing.
	s := NewRowSet(n)
	idx.AddRangeToSet(10, 5, s)
	idx.AddRangeToSet(1000, 2000, s)
	if s.Count() != 0 {
		t.Fatalf("empty ranges added %d rows", s.Count())
	}
}
