package index

import (
	"reflect"
	"testing"
)

// FuzzRowSetOps feeds arbitrary op sequences (see applyOps for the
// encoding) through the adaptive RowSet twice — once adaptive, once
// under the dense-only representation — checking every step against a
// map oracle and the two final states against each other. Any fuzz
// input that drives the two representations apart, breaks the sparse
// sorted-unique invariant, or diverges from the oracle is a crash.
func FuzzRowSetOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 10})
	// A clustered fill (densify) followed by a draining intersection
	// (sparsify) and a cross-form union.
	f.Add([]byte{
		1, 30, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0, 8,
		2, 1, 0, 1, 40,
		3, 0, 5, 0, 1, 0, 9,
	})
	// Word-boundary adds and a subtract.
	f.Add([]byte{0, 0, 63, 0, 0, 64, 0, 0, 65, 4, 0, 2, 0, 64, 7, 0, 63})
	f.Fuzz(func(t *testing.T, data []byte) {
		if denseOnly {
			t.Fatal("denseOnly left on by a previous run")
		}
		adaptive := applyOps(t, data)
		prev := SetDenseOnly(true)
		defer SetDenseOnly(prev)
		dense := applyOps(t, data)
		if !reflect.DeepEqual(adaptive, dense) {
			t.Fatalf("adaptive %v != dense-only %v", adaptive, dense)
		}
	})
}
