package index

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"squid/internal/relation"
)

func testRelation(n int) *relation.Relation {
	rel := relation.New("t",
		relation.Col("id", relation.Int),
		relation.Col("tag", relation.String),
	).SetPrimaryKey("id")
	tags := []string{"red", "green", "blue"}
	for i := 0; i < n; i++ {
		rel.MustAppend(relation.IntVal(int64(i%17)), relation.StringVal(tags[i%len(tags)]))
	}
	return rel
}

func TestIndexSetLazyBuildAndReuse(t *testing.T) {
	rel := testRelation(100)
	set := NewIndexSet()
	if set.NumIndexes() != 0 {
		t.Fatalf("fresh set has %d indexes", set.NumIndexes())
	}
	h1 := set.IntHash(rel, "id")
	h2 := set.IntHash(rel, "id")
	if h1 != h2 {
		t.Error("IntHash not reused")
	}
	if set.NumIndexes() != 1 {
		t.Errorf("NumIndexes=%d want 1", set.NumIndexes())
	}
	want := BuildIntHash(rel, "id")
	for v := int64(0); v < 20; v++ {
		if !reflect.DeepEqual(h1.Rows(v), want.Rows(v)) {
			t.Errorf("IntHash.Rows(%d) = %v want %v", v, h1.Rows(v), want.Rows(v))
		}
	}
	s1 := set.StrHash(rel, "tag")
	if s2 := set.StrHash(rel, "tag"); s1 != s2 {
		t.Error("StrHash not reused")
	}
	if !reflect.DeepEqual(s1.Rows("RED"), BuildStrHash(rel, "tag").Rows("red")) {
		t.Error("StrHash normalization lookup broken")
	}
}

func TestIndexSetNoteAppend(t *testing.T) {
	rel := testRelation(50)
	set := NewIndexSet()
	ih := set.IntHash(rel, "id")
	sh := set.StrHash(rel, "tag")

	rel.MustAppend(relation.IntVal(99), relation.StringVal("purple"))
	set.NoteAppend(rel, rel.NumRows()-1)

	wantInt := BuildIntHash(rel, "id")
	wantStr := BuildStrHash(rel, "tag")
	for v := int64(0); v < 100; v++ {
		if !reflect.DeepEqual(ih.Rows(v), wantInt.Rows(v)) {
			t.Errorf("after append, Rows(%d) = %v want %v", v, ih.Rows(v), wantInt.Rows(v))
		}
	}
	if !reflect.DeepEqual(sh.Rows("purple"), wantStr.Rows("purple")) {
		t.Errorf("after append, Rows(purple) = %v want %v", sh.Rows("purple"), wantStr.Rows("purple"))
	}
}

func TestIndexSetDrop(t *testing.T) {
	rel := testRelation(50)
	set := NewIndexSet()
	set.IntHash(rel, "id")
	set.StrHash(rel, "tag")
	set.Drop("t", "id")
	if set.NumIndexes() != 1 {
		t.Errorf("after drop, NumIndexes=%d want 1", set.NumIndexes())
	}
	// Rebuilding after a drop reflects current data.
	rel.MustAppend(relation.IntVal(5), relation.StringVal("red"))
	if got, want := set.IntHash(rel, "id").Rows(5), BuildIntHash(rel, "id").Rows(5); !reflect.DeepEqual(got, want) {
		t.Errorf("rebuilt Rows(5) = %v want %v", got, want)
	}
}

// TestIndexSetConcurrent hammers lazy builds from many goroutines; run
// under -race it proves the double-checked locking is sound.
func TestIndexSetConcurrent(t *testing.T) {
	rel := testRelation(500)
	set := NewIndexSet()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				v := rng.Int63n(20)
				_ = set.IntHash(rel, "id").Rows(v)
				_ = set.StrHash(rel, "tag").Rows("green")
			}
		}(int64(g))
	}
	wg.Wait()
	if set.NumIndexes() != 2 {
		t.Errorf("NumIndexes=%d want 2", set.NumIndexes())
	}
}

func TestNumericRowsVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 300
	vals := make([]float64, n)
	rows := make([]int, n)
	for i := range vals {
		vals[i] = float64(rng.Intn(50))
		rows[i] = i
	}
	idx := BuildNumericRows(vals, rows)
	if idx.Len() != n {
		t.Fatalf("Len=%d want %d", idx.Len(), n)
	}
	naive := func(lo, hi float64) []int {
		var out []int
		for i, v := range vals {
			if v >= lo && v <= hi {
				out = append(out, rows[i])
			}
		}
		return out
	}
	for trial := 0; trial < 100; trial++ {
		lo := float64(rng.Intn(60) - 5)
		hi := lo + float64(rng.Intn(30))
		got, want := idx.RowsInRange(lo, hi), naive(lo, hi)
		if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("RowsInRange(%v,%v) = %v want %v", lo, hi, got, want)
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("RowsInRange(%v,%v) not sorted: %v", lo, hi, got)
		}
		if c := idx.CountRange(lo, hi); c != len(want) {
			t.Fatalf("CountRange(%v,%v) = %d want %d", lo, hi, c, len(want))
		}
	}
	// Inverted bounds.
	if r := idx.RowsInRange(10, 5); r != nil {
		t.Errorf("inverted range returned %v", r)
	}
}

func TestNumericRowsInsert(t *testing.T) {
	var idx *NumericRows
	idx = idx.Insert(5, 0) // nil receiver allocates
	idx = idx.Insert(2, 1)
	idx = idx.Insert(8, 2)
	idx = idx.Insert(5, 3)
	if got := idx.RowsInRange(5, 5); !reflect.DeepEqual(got, []int{0, 3}) {
		t.Errorf("RowsInRange(5,5) = %v want [0 3]", got)
	}
	if got := idx.CountRange(2, 8); got != 4 {
		t.Errorf("CountRange(2,8) = %d want 4", got)
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct{ a, b, want []int }{
		{[]int{1, 3, 5, 7}, []int{3, 4, 5, 8}, []int{3, 5}},
		{[]int{1, 2}, []int{3, 4}, nil},
		{nil, []int{1}, nil},
		{[]int{2, 4, 6}, []int{2, 4, 6}, []int{2, 4, 6}},
	}
	for _, c := range cases {
		got := IntersectSorted(c.a, c.b)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("IntersectSorted(%v,%v) = %v want %v", c.a, c.b, got, c.want)
		}
	}
}
