package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"squid/internal/relation"
)

func testDB() *relation.Database {
	db := relation.NewDatabase("test")
	p := relation.New("person",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("age", relation.Int),
	).SetPrimaryKey("id")
	p.MustAppend(relation.IntVal(1), relation.StringVal("Tom Cruise"), relation.IntVal(50))
	p.MustAppend(relation.IntVal(2), relation.StringVal("Clint Eastwood"), relation.IntVal(90))
	p.MustAppend(relation.IntVal(3), relation.StringVal("Titanic"), relation.IntVal(40)) // person named like a movie
	db.AddRelation(p)

	m := relation.New("movie",
		relation.Col("id", relation.Int),
		relation.Col("title", relation.String),
	).SetPrimaryKey("id")
	m.MustAppend(relation.IntVal(10), relation.StringVal("Titanic"))
	m.MustAppend(relation.IntVal(11), relation.StringVal("Titanic")) // ambiguous duplicate
	m.MustAppend(relation.IntVal(12), relation.StringVal("Pulp Fiction"))
	db.AddRelation(m)
	return db
}

func TestInvertedLookup(t *testing.T) {
	inv := BuildInverted(testDB())
	got := inv.Lookup("tom cruise")
	if len(got) != 1 || got[0].Relation != "person" || got[0].Row != 0 {
		t.Errorf("lookup=%v", got)
	}
	// Case and whitespace insensitive.
	if len(inv.Lookup("  TOM   CRUISE ")) != 1 {
		t.Error("normalization failed")
	}
	// "Titanic" appears in two relations, three rows total.
	if len(inv.Lookup("Titanic")) != 3 {
		t.Errorf("Titanic postings=%v", inv.Lookup("Titanic"))
	}
	if inv.NumKeys() == 0 {
		t.Error("NumKeys")
	}
}

func TestCommonColumns(t *testing.T) {
	inv := BuildInverted(testDB())
	// Both names only co-occur in person.name.
	matches := inv.CommonColumns([]string{"Tom Cruise", "Clint Eastwood"}, nil)
	if len(matches) != 1 {
		t.Fatalf("matches=%v", matches)
	}
	if matches[0].Key != (ColumnKey{"person", "name"}) {
		t.Errorf("key=%v", matches[0].Key)
	}
	if matches[0].Ambiguous() {
		t.Error("unambiguous names flagged ambiguous")
	}
}

func TestCommonColumnsAmbiguity(t *testing.T) {
	inv := BuildInverted(testDB())
	matches := inv.CommonColumns([]string{"Titanic", "Pulp Fiction"}, nil)
	if len(matches) != 1 || matches[0].Key != (ColumnKey{"movie", "title"}) {
		t.Fatalf("matches=%v", matches)
	}
	if !matches[0].Ambiguous() {
		t.Error("Titanic must be ambiguous in movie.title")
	}
	if len(matches[0].Rows[0]) != 2 {
		t.Errorf("Titanic rows=%v", matches[0].Rows[0])
	}
}

func TestCommonColumnsNoMatch(t *testing.T) {
	inv := BuildInverted(testDB())
	if got := inv.CommonColumns([]string{"Tom Cruise", "Pulp Fiction"}, nil); got != nil {
		t.Errorf("expected no common column, got %v", got)
	}
	if got := inv.CommonColumns(nil, nil); got != nil {
		t.Error("empty input must give nil")
	}
	if got := inv.CommonColumns([]string{"unknown value"}, nil); got != nil {
		t.Errorf("unknown value must give nil, got %v", got)
	}
}

func TestIntHash(t *testing.T) {
	db := testDB()
	h := BuildIntHash(db.Relation("person"), "id")
	if r, ok := h.First(2); !ok || r != 1 {
		t.Errorf("First(2)=%d,%v", r, ok)
	}
	if _, ok := h.First(99); ok {
		t.Error("missing key found")
	}
	if h.NumKeys() != 3 {
		t.Errorf("NumKeys=%d", h.NumKeys())
	}
	// Non-int column yields empty index, not a panic.
	empty := BuildIntHash(db.Relation("person"), "name")
	if empty.NumKeys() != 0 {
		t.Error("string column must yield empty int index")
	}
}

func TestIntHashDuplicates(t *testing.T) {
	r := relation.New("fact", relation.Col("pid", relation.Int))
	r.MustAppend(relation.IntVal(7))
	r.MustAppend(relation.IntVal(7))
	r.MustAppend(relation.IntVal(8))
	h := BuildIntHash(r, "pid")
	if got := h.Rows(7); len(got) != 2 {
		t.Errorf("Rows(7)=%v", got)
	}
}

func TestStrHash(t *testing.T) {
	db := testDB()
	h := BuildStrHash(db.Relation("movie"), "title")
	if got := h.Rows("titanic"); len(got) != 2 {
		t.Errorf("Rows(titanic)=%v", got)
	}
	if got := h.Rows("PULP   fiction"); len(got) != 1 {
		t.Errorf("normalized lookup failed: %v", got)
	}
	if h.NumKeys() != 2 {
		t.Errorf("NumKeys=%d", h.NumKeys())
	}
}

func TestSortedCounts(t *testing.T) {
	s := BuildSortedFromValues([]float64{5, 1, 3, 3, 9})
	if s.Len() != 5 || s.Min() != 1 || s.Max() != 9 {
		t.Fatalf("stats: len=%d min=%v max=%v", s.Len(), s.Min(), s.Max())
	}
	if s.CountLE(3) != 3 {
		t.Errorf("CountLE(3)=%d", s.CountLE(3))
	}
	if s.CountLT(3) != 1 {
		t.Errorf("CountLT(3)=%d", s.CountLT(3))
	}
	if s.CountGE(3) != 4 {
		t.Errorf("CountGE(3)=%d", s.CountGE(3))
	}
	if s.CountRange(3, 5) != 3 {
		t.Errorf("CountRange(3,5)=%d", s.CountRange(3, 5))
	}
	if s.CountRange(10, 20) != 0 {
		t.Error("out-of-range must be 0")
	}
	if s.CountRange(5, 3) != 0 {
		t.Error("inverted range must be 0")
	}
}

func TestSortedFromColumn(t *testing.T) {
	db := testDB()
	s := BuildSorted(db.Relation("person"), "age")
	if s.Len() != 3 {
		t.Fatalf("len=%d", s.Len())
	}
	if s.CountRange(40, 50) != 2 {
		t.Errorf("CountRange(40,50)=%d", s.CountRange(40, 50))
	}
	// String column yields empty index.
	if BuildSorted(db.Relation("person"), "name").Len() != 0 {
		t.Error("string column must yield empty sorted index")
	}
}

func TestSortedSkipsNulls(t *testing.T) {
	r := relation.New("t", relation.Col("x", relation.Int))
	r.MustAppend(relation.IntVal(1))
	r.MustAppend(relation.Null)
	r.MustAppend(relation.IntVal(3))
	s := BuildSorted(r, "x")
	if s.Len() != 2 {
		t.Errorf("len=%d, NULLs must be excluded", s.Len())
	}
}

// Property: CountRange(lo,hi) computed via prefix differences equals a
// brute-force scan, for random data — this is the paper's "smart
// selectivity" identity ψ((l,h]) = ψ([min,h]) − ψ([min,l)).
func TestSortedRangePrefixIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(r.Intn(50))
		}
		s := BuildSortedFromValues(vals)
		lo := float64(r.Intn(50)) - 5
		hi := lo + float64(r.Intn(20))
		want := 0
		for _, v := range vals {
			if v >= lo && v <= hi {
				want++
			}
		}
		return s.CountRange(lo, hi) == want
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: CountLE is monotone non-decreasing.
func TestSortedCountLEMonotone(t *testing.T) {
	vals := make([]float64, 500)
	rng := rand.New(rand.NewSource(7))
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	s := BuildSortedFromValues(vals)
	probes := append([]float64(nil), vals...)
	sort.Float64s(probes)
	prev := -1
	for _, p := range probes {
		c := s.CountLE(p)
		if c < prev {
			t.Fatalf("CountLE not monotone at %v: %d < %d", p, c, prev)
		}
		prev = c
	}
}
