package index

import (
	"squid/internal/relation"
)

// IntHash is a hash index from an integer column's values to row numbers;
// it serves the key/foreign-key point lookups the abduction phase issues
// (the paper uses PostgreSQL B-tree indexes for the same role).
type IntHash struct {
	rows map[int64][]int
}

// BuildIntHash indexes the named integer column of rel. The map is
// presized to the row count and posting lists are capacity-capped runs
// of one shared backing array — key columns are unique (runs of one)
// and derived-relation entity ids arrive clustered (runs per entity),
// so bulk builds allocate O(1) slices instead of one per key. Warm
// boots rebuild every hash index through this path.
func BuildIntHash(rel *relation.Relation, col string) *IntHash {
	c := rel.Column(col)
	h := &IntHash{rows: make(map[int64][]int, rel.NumRows())}
	if c == nil || c.Type != relation.Int {
		return h
	}
	n := c.Len()
	backing := make([]int, n)
	for i := range backing {
		backing[i] = i
	}
	for i := 0; i < n; {
		if c.IsNull(i) {
			i++
			continue
		}
		v := c.Int64(i)
		j := i + 1
		for j < n && !c.IsNull(j) && c.Int64(j) == v {
			j++
		}
		if existing := h.rows[v]; existing == nil {
			// Capped at the run end: a later Insert reallocates
			// instead of clobbering the next run.
			h.rows[v] = backing[i:j:j]
		} else {
			h.rows[v] = append(existing, backing[i:j]...)
		}
		i = j
	}
	return h
}

// Rows returns the rows holding value v (nil if absent).
func (h *IntHash) Rows(v int64) []int { return h.rows[v] }

// First returns the first row holding value v and whether one exists;
// this is the primary-key point-lookup fast path.
func (h *IntHash) First(v int64) (int, bool) {
	r := h.rows[v]
	if len(r) == 0 {
		return 0, false
	}
	return r[0], true
}

// NumKeys returns the number of distinct indexed values.
func (h *IntHash) NumKeys() int { return len(h.rows) }

// Insert adds one (value, row) posting incrementally; rows must be
// appended in ascending order so posting lists stay sorted.
func (h *IntHash) Insert(v int64, row int) {
	h.rows[v] = append(h.rows[v], row)
}

// Clone returns a copy-on-write clone for epoch maintenance: the bucket
// map is copied (O(keys)), the posting lists are shared. Appends on the
// clone write only past the original lists' lengths, so readers of the
// original never observe them.
func (h *IntHash) Clone() *IntHash {
	q := &IntHash{rows: make(map[int64][]int, len(h.rows))}
	for k, v := range h.rows {
		q.rows[k] = v
	}
	return q
}

// StrHash is a hash index from a string column's (normalized) values to
// row numbers.
type StrHash struct {
	rows map[string][]int
}

// BuildStrHash indexes the named string column of rel. The column is
// dictionary-encoded, so each distinct value is normalized exactly once
// (a table indexed by dictionary code) and the per-row work is an int32
// table lookup instead of a string normalization.
func BuildStrHash(rel *relation.Relation, col string) *StrHash {
	c := rel.Column(col)
	h := &StrHash{rows: make(map[string][]int)}
	if c == nil || c.Type != relation.String {
		return h
	}
	norm := normalizedDict(c.Dict())
	for row := 0; row < c.Len(); row++ {
		if c.IsNull(row) {
			continue
		}
		key := norm[c.Code(row)]
		h.rows[key] = append(h.rows[key], row)
	}
	return h
}

// normalizedDict precomputes normalize for every dictionary code.
func normalizedDict(d *relation.Dict) []string {
	vals := d.Values()
	norm := make([]string, len(vals))
	for i, v := range vals {
		norm[i] = normalize(v)
	}
	return norm
}

// Rows returns the rows holding the (normalized) value.
func (h *StrHash) Rows(v string) []int { return h.rows[normalize(v)] }

// NumKeys returns the number of distinct indexed values.
func (h *StrHash) NumKeys() int { return len(h.rows) }

// Insert adds one (value, row) posting incrementally; rows must be
// appended in ascending order so posting lists stay sorted.
func (h *StrHash) Insert(v string, row int) {
	key := normalize(v)
	h.rows[key] = append(h.rows[key], row)
}

// Clone returns a copy-on-write clone (see IntHash.Clone).
func (h *StrHash) Clone() *StrHash {
	q := &StrHash{rows: make(map[string][]int, len(h.rows))}
	for k, v := range h.rows {
		q.rows[k] = v
	}
	return q
}
