package index

import (
	"math/rand"
	"testing"
)

// scatteredRows draws n distinct ascending rows spread over the
// universe — the shape of a highly-selective cached filter set.
func scatteredRows(rng *rand.Rand, universe, n int) []int {
	stride := universe / n
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i*stride+rng.Intn(stride))
	}
	return out
}

// stridedRows returns every stride-th row starting at offset — a set
// dense enough to live in bitset form at any universe.
func stridedRows(universe, stride, offset int) []int {
	out := make([]int, 0, universe/stride+1)
	for r := offset; r < universe; r += stride {
		out = append(out, r)
	}
	return out
}

// BenchmarkRowSetIntersect measures the three form combinations of
// AndWith over a million-row universe — the shapes the abduction
// intersection cascade produces at scale. Each iteration pays one
// Clone (the cascade's detach step) plus the intersection. The
// dense_only arm replays the sparse×sparse shape under the pre-adaptive
// representation, so the win of galloping over the word loop is visible
// in one benchmark run.
func BenchmarkRowSetIntersect(b *testing.B) {
	const universe = 1 << 20
	rng := rand.New(rand.NewSource(11))

	sparseA := RowSetFromSorted(scatteredRows(rng, universe, 256))
	sparseB := RowSetFromSorted(scatteredRows(rng, universe, 512))
	denseA := RowSetFromSorted(stridedRows(universe, 3, 0))
	denseB := RowSetFromSorted(stridedRows(universe, 5, 1))

	prev := SetDenseOnly(true)
	denseOnlyA := RowSetFromSorted(sparseA.ToSorted())
	denseOnlyB := RowSetFromSorted(sparseB.ToSorted())
	SetDenseOnly(prev)

	if sparseA.Form() != "sparse" || denseA.Form() != "dense" || denseOnlyA.Form() != "dense" {
		b.Fatalf("setup forms: %s/%s/%s", sparseA.Form(), denseA.Form(), denseOnlyA.Form())
	}

	cases := []struct {
		name string
		a, t *RowSet
	}{
		{"sparse_sparse", sparseA, sparseB},
		{"sparse_dense", sparseA, denseA},
		{"dense_dense", denseA, denseB},
		{"dense_only_baseline", denseOnlyA, denseOnlyB},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := c.a.Clone()
				s.AndWith(c.t)
			}
		})
	}
}
