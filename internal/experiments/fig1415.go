package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"squid/internal/abduction"
	"squid/internal/adb"
	"squid/internal/baselines/talos"
	"squid/internal/benchqueries"
	"squid/internal/metrics"
	"squid/internal/sqlgen"
)

// QRERow compares SQuID (optimistic QRE parameters, full query output as
// examples) against the TALOS baseline on one benchmark, the setting of
// §7.5 and Figs 14/15.
type QRERow struct {
	Dataset     string
	QueryID     string
	Cardinality int

	ActualPreds int
	SquidPreds  int
	TalosPreds  int

	SquidTime time.Duration
	TalosTime time.Duration

	SquidF float64
	TalosF float64
}

// Fig14 runs the Adult QRE comparison: both systems receive the entire
// output of each of the 20 benchmark queries; the paper's findings are
// perfect f-scores for both, far fewer predicates for SQuID, and a
// runtime crossover against input cardinality.
func (s *Suite) Fig14() []QRERow {
	g, alpha := s.Adult()
	bench := benchqueries.AdultBenchmarks(g, s.Scale.Seed)
	rows := s.qreRows("Adult", g.DB, alpha, "adult", "name", bench)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Cardinality < rows[j].Cardinality })
	return rows
}

// Fig15a runs the IMDb QRE comparison (16 benchmarks).
func (s *Suite) Fig15a() []QRERow {
	g, alpha := s.IMDb()
	return s.qreRows("IMDb", g.DB, alpha, "", "", benchqueries.IMDbBenchmarks(g))
}

// Fig15b runs the DBLP QRE comparison (5 benchmarks).
func (s *Suite) Fig15b() []QRERow {
	g, alpha := s.DBLP()
	return s.qreRows("DBLP", g.DB, alpha, "", "", benchqueries.DBLPBenchmarks(g))
}

// qreRows executes the closed-world comparison. When entityOverride is
// empty, the TALOS entity/attribute are inferred from the benchmark's
// projection (its Select column).
func (s *Suite) qreRows(dataset string, db *relationDatabase, alpha *adb.AlphaDB, entityOverride, attrOverride string, bench []benchqueries.Benchmark) []QRERow {
	var rows []QRERow
	for _, bt := range benchTruths(db, bench) {
		entity, attr := entityOverride, attrOverride
		if entity == "" {
			entity = bt.Bench.Query.Select[0].Rel
			attr = bt.Bench.Query.Select[0].Col
		}
		info := alpha.Entity(entity)

		// SQuID in QRE mode: the full output is the example set.
		d := runSQuID(alpha, bt.Truth, abduction.QREParams())
		row := QRERow{
			Dataset:     dataset,
			QueryID:     bt.Bench.ID,
			Cardinality: len(bt.Truth),
			ActualPreds: bt.Bench.Query.TotalPredicates(),
			SquidTime:   d.Time,
		}
		if d.Err == nil && d.Result != nil {
			j, sel := sqlgen.PredicateCount(d.Result)
			row.SquidPreds = j + sel
			row.SquidF = scoreAgainst(d, bt.Truth).FScore
		}

		// TALOS (only when the projection entity is a declared entity
		// relation — which holds for all benchmarks).
		if info != nil {
			t := talos.ReverseEngineer(info, attr, bt.Truth, talos.DefaultConfig())
			row.TalosPreds = t.NumPredicates
			row.TalosTime = t.Time
			row.TalosF = metrics.Compare(t.Output, bt.Truth).FScore
		}
		rows = append(rows, row)
	}
	return rows
}

// printQRE renders a Figs 14/15-style comparison table.
func printQRE(w io.Writer, title string, rows []QRERow) {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, "query  card   #preds(actual/SQuID/TALOS)   time(SQuID/TALOS)        f-score(SQuID/TALOS)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %5d  %6d / %5d / %5d          %-9v/ %-10v  %5.3f / %5.3f\n",
			r.QueryID, r.Cardinality,
			r.ActualPreds, r.SquidPreds, r.TalosPreds,
			r.SquidTime.Round(time.Microsecond), r.TalosTime.Round(time.Microsecond),
			r.SquidF, r.TalosF)
	}
}
