// Package experiments reproduces every table and figure of the paper's
// evaluation (§7 and Appendix E): scalability (Fig 9), abduction
// accuracy (Fig 10), abduced-query runtime (Fig 11), entity
// disambiguation (Fig 12), the three case studies (Fig 13), the QRE
// comparison against the TALOS baseline (Figs 14/15), the PU-learning
// comparison (Fig 16), dataset statistics (Fig 18), the benchmark
// inventories (Figs 19/20/22), and the parameter sweeps (Figs 23–26).
// Each experiment has a runner returning structured rows plus a printer
// that emits the paper-style series, and is wired to cmd/squid-bench and
// the root bench_test.go.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"squid/internal/abduction"
	"squid/internal/adb"
	"squid/internal/benchqueries"
	"squid/internal/datagen"
	"squid/internal/disambig"
	"squid/internal/metrics"
	"squid/internal/relation"
)

// Scale sizes the datasets and the statistical effort of the harness.
type Scale struct {
	IMDb  datagen.IMDbConfig
	DBLP  datagen.DBLPConfig
	Adult datagen.AdultConfig
	// Runs is the number of repetitions behind every averaged data
	// point (the paper uses 10).
	Runs int
	// ExampleSizes are the |E| values swept in the accuracy and
	// scalability figures.
	ExampleSizes []int
	// Seed drives all example sampling.
	Seed int64
}

// FullScale is the configuration used for the recorded experiment runs
// (EXPERIMENTS.md).
func FullScale() Scale {
	return Scale{
		IMDb:         datagen.DefaultIMDbConfig(),
		DBLP:         datagen.DefaultDBLPConfig(),
		Adult:        datagen.DefaultAdultConfig(),
		Runs:         5,
		ExampleSizes: []int{5, 10, 15, 20, 25, 30},
		Seed:         20190625,
	}
}

// TestScale is a reduced configuration keeping the unit tests fast.
func TestScale() Scale {
	return Scale{
		IMDb:         datagen.IMDbConfig{Seed: 7, NumPersons: 1500, NumMovies: 600, NumCompany: 30},
		DBLP:         datagen.DBLPConfig{Seed: 3, NumAuthor: 800, NumPubs: 1600},
		Adult:        datagen.AdultConfig{Seed: 5, NumRows: 1500, ScaleFactor: 1},
		Runs:         2,
		ExampleSizes: []int{5, 10, 15},
		Seed:         99,
	}
}

// Suite lazily builds and caches the datasets and their αDBs.
type Suite struct {
	Scale Scale

	imdb      *datagen.IMDb
	imdbAlpha *adb.AlphaDB
	dblp      *datagen.DBLP
	dblpAlpha *adb.AlphaDB
	adult     *datagen.Adult
	adultAl   *adb.AlphaDB
}

// NewSuite creates a suite at the given scale.
func NewSuite(s Scale) *Suite { return &Suite{Scale: s} }

// IMDb returns the (cached) IMDb dataset and αDB.
func (s *Suite) IMDb() (*datagen.IMDb, *adb.AlphaDB) {
	if s.imdb == nil {
		s.imdb = datagen.GenerateIMDb(s.Scale.IMDb)
		s.imdbAlpha = mustBuild(s.imdb.DB)
	}
	return s.imdb, s.imdbAlpha
}

// DBLP returns the (cached) DBLP dataset and αDB.
func (s *Suite) DBLP() (*datagen.DBLP, *adb.AlphaDB) {
	if s.dblp == nil {
		s.dblp = datagen.GenerateDBLP(s.Scale.DBLP)
		s.dblpAlpha = mustBuild(s.dblp.DB)
	}
	return s.dblp, s.dblpAlpha
}

// Adult returns the (cached) Adult dataset and αDB.
func (s *Suite) Adult() (*datagen.Adult, *adb.AlphaDB) {
	if s.adult == nil {
		s.adult = datagen.GenerateAdult(s.Scale.Adult)
		s.adultAl = mustBuild(s.adult.DB)
	}
	return s.adult, s.adultAl
}

func mustBuild(db *relationDatabase) *adb.AlphaDB {
	alpha, err := adb.Build(db, adb.DefaultConfig())
	if err != nil {
		panic(fmt.Sprintf("experiments: αDB build failed for %s: %v", db.Name, err))
	}
	return alpha
}

// Discovery is the measured outcome of one SQuID run.
type Discovery struct {
	Result *abduction.Result
	Time   time.Duration
	Err    error
}

// runSQuID executes the full online pipeline (entity lookup,
// disambiguation, context discovery, abduction) on example strings and
// measures its wall time — the "query discovery time" of §7.1.
func runSQuID(alpha *adb.AlphaDB, examples []string, params abduction.Params) Discovery {
	start := time.Now()
	results, err := abduction.Discover(alpha.Snapshot(), examples, params, disambig.Resolve)
	elapsed := time.Since(start)
	if err != nil {
		return Discovery{Err: err, Time: elapsed}
	}
	return Discovery{Result: results[0], Time: elapsed}
}

// scoreAgainst compares a discovery's output to the intended output.
func scoreAgainst(d Discovery, truth []string) metrics.PRF {
	if d.Err != nil || d.Result == nil {
		return metrics.PRF{}
	}
	return metrics.Compare(d.Result.OutputValues(), truth)
}

// Sampler produces deterministic example-sampling RNGs per (tag, run);
// exported so diagnostic tools can replay harness draws exactly.
func (s *Suite) Sampler(tag string, run int) *rand.Rand { return s.sampler(tag, run) }

// sampler produces deterministic example samples per (query, size, run).
func (s *Suite) sampler(tag string, run int) *rand.Rand {
	h := int64(0)
	for _, c := range tag {
		h = h*131 + int64(c)
	}
	return rand.New(rand.NewSource(s.Scale.Seed ^ h ^ int64(run)*2654435761))
}

// benchTruths executes every benchmark's ground truth once, skipping
// empty ones, and returns (benchmark, truth) pairs.
func benchTruths(db *relationDatabase, bench []benchqueries.Benchmark) []benchTruth {
	var out []benchTruth
	for _, b := range bench {
		truth, err := benchqueries.GroundTruth(db, b)
		if err != nil || len(truth) == 0 {
			continue
		}
		out = append(out, benchTruth{b, truth})
	}
	return out
}

type benchTruth struct {
	Bench benchqueries.Benchmark
	Truth []string
}

// relationDatabase, alphaDB, and abductionParams alias frequently-used
// types to keep runner signatures short.
type (
	relationDatabase = relation.Database
	alphaDB          = adb.AlphaDB
	abductionParams  = abduction.Params
)

func abdDefaultParams() abduction.Params { return abduction.DefaultParams() }
