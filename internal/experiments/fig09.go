package experiments

import (
	"fmt"
	"io"
	"time"

	"squid/internal/adb"
	"squid/internal/benchqueries"
	"squid/internal/datagen"
	"squid/internal/metrics"
)

// Fig9aRow is one point of Fig 9(a): average abduction time at one
// example-set size for one dataset.
type Fig9aRow struct {
	Dataset     string
	NumExamples int
	MeanTime    time.Duration
}

// Fig9a measures average query discovery time against the number of
// examples on the IMDb and DBLP datasets, averaged over the benchmark
// queries — the paper's finding is linear growth in |E|.
func (s *Suite) Fig9a() []Fig9aRow {
	var rows []Fig9aRow
	imdb, imdbAlpha := s.IMDb()
	rows = append(rows, s.timeCurve("IMDb", imdbAlpha, benchTruths(imdb.DB, benchqueries.IMDbBenchmarks(imdb)))...)
	dblp, dblpAlpha := s.DBLP()
	rows = append(rows, s.timeCurve("DBLP", dblpAlpha, benchTruths(dblp.DB, benchqueries.DBLPBenchmarks(dblp)))...)
	return rows
}

// timeCurve averages discovery time over benchmarks and runs for each
// example-set size.
func (s *Suite) timeCurve(dataset string, alpha *adb.AlphaDB, bts []benchTruth) []Fig9aRow {
	var rows []Fig9aRow
	params := defaultParams()
	for _, n := range s.Scale.ExampleSizes {
		var times []float64
		for _, bt := range bts {
			if len(bt.Truth) < n {
				continue
			}
			for run := 0; run < s.Scale.Runs; run++ {
				rng := s.sampler(dataset+bt.Bench.ID, run)
				examples := metrics.Sample(rng, bt.Truth, n)
				d := runSQuID(alpha, examples, params)
				times = append(times, float64(d.Time))
			}
		}
		rows = append(rows, Fig9aRow{
			Dataset:     dataset,
			NumExamples: n,
			MeanTime:    time.Duration(metrics.Mean(times)),
		})
	}
	return rows
}

// PrintFig9a renders the Fig 9(a) series.
func PrintFig9a(w io.Writer, rows []Fig9aRow) {
	fmt.Fprintln(w, "Fig 9(a): abduction time vs #examples")
	fmt.Fprintln(w, "dataset  #examples  mean_time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %9d  %v\n", r.Dataset, r.NumExamples, r.MeanTime.Round(time.Microsecond))
	}
}

// Fig9bRow is one point of Fig 9(b): abduction time on one IMDb size
// variant.
type Fig9bRow struct {
	Variant     string
	DBRows      int
	NumExamples int
	MeanTime    time.Duration
}

// Fig9b measures abduction time across the four IMDb variants of
// Appendix D.1 (sm/base/bs/bd). The paper's findings: time grows with
// dataset size (logarithmically, thanks to index point lookups), and
// bd-IMDb is slower than bs-IMDb because denser associations produce
// more derived properties.
func (s *Suite) Fig9b() []Fig9bRow {
	base, _ := s.IMDb()

	smCfg := s.Scale.IMDb
	smCfg.NumPersons /= 4
	smCfg.NumMovies /= 4
	sm := datagen.GenerateIMDb(smCfg)

	variants := []struct {
		name  string
		gen   *datagen.IMDb
		db    *relationDatabase
		alpha *adb.AlphaDB
	}{
		{name: "sm-IMDb", gen: sm, db: sm.DB},
		{name: "IMDb", gen: base, db: base.DB},
		{name: "bs-IMDb", gen: base, db: datagen.BSIMDb(base)},
		{name: "bd-IMDb", gen: base, db: datagen.BDIMDb(base)},
	}
	var rows []Fig9bRow
	for _, v := range variants {
		alpha := mustBuild(v.db)
		bench := benchqueries.IMDbBenchmarks(v.gen)
		bts := benchTruths(v.db, bench)
		for _, point := range s.timeCurve(v.name, alpha, bts) {
			rows = append(rows, Fig9bRow{
				Variant:     v.name,
				DBRows:      v.db.TotalRows(),
				NumExamples: point.NumExamples,
				MeanTime:    point.MeanTime,
			})
		}
	}
	return rows
}

// printFig9b renders the Fig 9(b) series.
func printFig9b(w io.Writer, rows []Fig9bRow) {
	fmt.Fprintln(w, "Fig 9(b): abduction time vs dataset size (IMDb variants)")
	fmt.Fprintln(w, "variant   db_rows   #examples  mean_time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %8d  %9d  %v\n", r.Variant, r.DBRows, r.NumExamples, r.MeanTime.Round(time.Microsecond))
	}
}
