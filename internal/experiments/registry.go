package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one experiment and prints its paper-style output.
type Runner struct {
	ID          string
	Description string
	Run         func(s *Suite, w io.Writer)
}

// Registry lists every experiment, keyed by the DESIGN.md experiment id.
func Registry() []Runner {
	return []Runner{
		{"fig9a", "abduction time vs #examples (IMDb, DBLP)", func(s *Suite, w io.Writer) { PrintFig9a(w, s.Fig9a()) }},
		{"fig9b", "abduction time vs dataset size (IMDb variants)", func(s *Suite, w io.Writer) { printFig9b(w, s.Fig9b()) }},
		{"fig10", "accuracy vs #examples for all benchmarks", func(s *Suite, w io.Writer) { printFig10(w, s.Fig10()) }},
		{"fig11", "intended vs abduced query runtime", func(s *Suite, w io.Writer) { printFig11(w, s.Fig11()) }},
		{"fig12", "effect of entity disambiguation", func(s *Suite, w io.Writer) { printFig12(w, s.Fig12()) }},
		{"fig13", "case studies", func(s *Suite, w io.Writer) { printFig13(w, s.Fig13()) }},
		{"fig14", "Adult QRE: SQuID vs TALOS", func(s *Suite, w io.Writer) { printQRE(w, "Fig 14: Adult QRE comparison", s.Fig14()) }},
		{"fig15a", "IMDb QRE: SQuID vs TALOS", func(s *Suite, w io.Writer) { printQRE(w, "Fig 15(a): IMDb QRE comparison", s.Fig15a()) }},
		{"fig15b", "DBLP QRE: SQuID vs TALOS", func(s *Suite, w io.Writer) { printQRE(w, "Fig 15(b): DBLP QRE comparison", s.Fig15b()) }},
		{"fig16a", "SQuID vs PU-learning accuracy", func(s *Suite, w io.Writer) { printFig16a(w, s.Fig16a()) }},
		{"fig16b", "SQuID vs PU-learning scalability", func(s *Suite, w io.Writer) { printFig16b(w, s.Fig16b()) }},
		{"fig18", "dataset and αDB statistics", func(s *Suite, w io.Writer) { printFig18(w, s.Fig18()) }},
		{"fig19", "IMDb benchmark inventory", func(s *Suite, w io.Writer) { PrintBenchmarkTable(w, s.Fig19()) }},
		{"fig20", "DBLP benchmark inventory", func(s *Suite, w io.Writer) { PrintBenchmarkTable(w, s.Fig20()) }},
		{"fig22", "Adult benchmark inventory", func(s *Suite, w io.Writer) { PrintBenchmarkTable(w, s.Fig22()) }},
		{"fig23", "base prior rho sweep", func(s *Suite, w io.Writer) { printSweep(w, "Fig 23: rho sweep", s.Fig23()) }},
		{"fig24", "domain-coverage gamma sweep", func(s *Suite, w io.Writer) { printSweep(w, "Fig 24: gamma sweep", s.Fig24()) }},
		{"fig25", "association threshold tauA sweep", func(s *Suite, w io.Writer) { printSweep(w, "Fig 25: tauA sweep", s.Fig25()) }},
		{"fig26", "skewness threshold tauS sweep", func(s *Suite, w io.Writer) { printSweep(w, "Fig 26: tauS sweep", s.Fig26()) }},
		{"ablations", "design-choice ablation studies", func(s *Suite, w io.Writer) { printAblations(w, s.Ablations()) }},
	}
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	var out []string
	for _, r := range Registry() {
		out = append(out, r.ID)
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment in registry order.
func RunAll(s *Suite, w io.Writer) {
	for _, r := range Registry() {
		fmt.Fprintf(w, "=== %s — %s ===\n", r.ID, r.Description)
		r.Run(s, w)
		fmt.Fprintln(w)
	}
}
