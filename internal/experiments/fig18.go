package experiments

import (
	"fmt"
	"io"

	"squid/internal/adb"
	"squid/internal/benchqueries"
	"squid/internal/datagen"
)

// Fig18 collects the dataset-statistics blocks of Fig 18 for the Adult,
// DBLP, and all four IMDb variants.
func (s *Suite) Fig18() []adb.Stats {
	var out []adb.Stats

	imdb, imdbAlpha := s.IMDb()
	out = append(out, imdbAlpha.ComputeStats())

	smCfg := s.Scale.IMDb
	smCfg.NumPersons /= 4
	smCfg.NumMovies /= 4
	sm := datagen.GenerateIMDb(smCfg)
	smAlpha := mustBuild(sm.DB)
	st := smAlpha.ComputeStats()
	st.Name = "sm-imdb"
	out = append(out, st)

	out = append(out, mustBuild(datagen.BSIMDb(imdb)).ComputeStats())
	out = append(out, mustBuild(datagen.BDIMDb(imdb)).ComputeStats())

	_, dblpAlpha := s.DBLP()
	out = append(out, dblpAlpha.ComputeStats())
	_, adultAlpha := s.Adult()
	out = append(out, adultAlpha.ComputeStats())
	return out
}

// printFig18 renders the dataset statistics.
func printFig18(w io.Writer, stats []adb.Stats) {
	fmt.Fprintln(w, "Fig 18: dataset and αDB statistics")
	for _, st := range stats {
		fmt.Fprintln(w, st.String())
	}
}

// BenchmarkTable is the Figs 19/20/22 inventory: per benchmark, the
// intent, join/selection counts, and result cardinality on the
// generated data.
type BenchmarkTable struct {
	Dataset string
	Rows    []BenchmarkTableRow
}

// BenchmarkTableRow is one inventory line.
type BenchmarkTableRow struct {
	ID          string
	Intent      string
	Joins       int
	Selections  int
	Cardinality int
}

// Fig19 builds the IMDb benchmark inventory.
func (s *Suite) Fig19() BenchmarkTable {
	g, _ := s.IMDb()
	return buildTable("IMDb (Fig 19)", g.DB, benchqueries.IMDbBenchmarks(g))
}

// Fig20 builds the DBLP benchmark inventory.
func (s *Suite) Fig20() BenchmarkTable {
	g, _ := s.DBLP()
	return buildTable("DBLP (Fig 20)", g.DB, benchqueries.DBLPBenchmarks(g))
}

// Fig22 builds the Adult benchmark inventory.
func (s *Suite) Fig22() BenchmarkTable {
	g, _ := s.Adult()
	return buildTable("Adult (Fig 22)", g.DB, benchqueries.AdultBenchmarks(g, s.Scale.Seed))
}

func buildTable(name string, db *relationDatabase, bench []benchqueries.Benchmark) BenchmarkTable {
	t := BenchmarkTable{Dataset: name}
	for _, b := range bench {
		card, err := benchqueries.Cardinality(db, b)
		if err != nil {
			card = -1
		}
		t.Rows = append(t.Rows, BenchmarkTableRow{
			ID:          b.ID,
			Intent:      b.Intent,
			Joins:       b.NumJoinRels,
			Selections:  b.NumSelections,
			Cardinality: card,
		})
	}
	return t
}

// PrintBenchmarkTable renders a Figs 19/20/22-style inventory.
func PrintBenchmarkTable(w io.Writer, t BenchmarkTable) {
	fmt.Fprintf(w, "%s benchmark queries\n", t.Dataset)
	fmt.Fprintln(w, "id     J  S  #result  intent")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-6s %d  %d  %7d  %s\n", r.ID, r.Joins, r.Selections, r.Cardinality, r.Intent)
	}
}
