package experiments

import (
	"fmt"
	"io"
	"time"

	"squid/internal/benchqueries"
	"squid/internal/engine"
	"squid/internal/metrics"
	"squid/internal/sqlgen"
)

// Fig11Row compares the execution time of the intended (actual) query
// with the abduced query for one benchmark.
type Fig11Row struct {
	Dataset     string
	QueryID     string
	ActualTime  time.Duration
	AbducedTime time.Duration
}

// Fig11 executes each benchmark's ground-truth query on the original
// database and the abduced query (lowered to an engine plan over the
// combined αDB database) and compares runtimes — the paper's finding is
// that abduced queries are rarely slower, often faster thanks to the
// precomputed derived relations.
func (s *Suite) Fig11() []Fig11Row {
	var rows []Fig11Row
	imdb, imdbAlpha := s.IMDb()
	rows = append(rows, s.runtimeRows("IMDb", imdb.DB, imdbAlpha, benchqueries.IMDbBenchmarks(imdb))...)
	dblp, dblpAlpha := s.DBLP()
	rows = append(rows, s.runtimeRows("DBLP", dblp.DB, dblpAlpha, benchqueries.DBLPBenchmarks(dblp))...)
	return rows
}

func (s *Suite) runtimeRows(dataset string, db *relationDatabase, alpha *alphaDB, bench []benchqueries.Benchmark) []Fig11Row {
	var rows []Fig11Row
	params := defaultParams()
	combined := alpha.CombinedDB()
	origExec := engine.NewExecutor(db)
	combExec := engine.NewExecutor(combined)
	n := 15
	for _, bt := range benchTruths(db, bench) {
		if len(bt.Truth) < n {
			continue
		}
		rng := s.sampler("fig11"+dataset+bt.Bench.ID, 0)
		examples := metrics.Sample(rng, bt.Truth, n)
		d := runSQuID(alpha, examples, params)
		if d.Err != nil || d.Result == nil {
			continue
		}
		plan := sqlgen.ToEngineQuery(d.Result)

		actual := timeQuery(origExec, bt.Bench.Query)
		abduced := timeQuery(combExec, plan)
		if actual < 0 || abduced < 0 {
			continue
		}
		rows = append(rows, Fig11Row{
			Dataset:     dataset,
			QueryID:     bt.Bench.ID,
			ActualTime:  actual,
			AbducedTime: abduced,
		})
	}
	return rows
}

// timeQuery executes the plan a few times and returns the best wall
// time (-1 on error).
func timeQuery(exec *engine.Executor, q *engine.Query) time.Duration {
	best := time.Duration(-1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := exec.Execute(q); err != nil {
			return -1
		}
		if t := time.Since(start); best < 0 || t < best {
			best = t
		}
	}
	return best
}

// printFig11 renders the Fig 11 comparison.
func printFig11(w io.Writer, rows []Fig11Row) {
	fmt.Fprintln(w, "Fig 11: intended vs abduced query runtime")
	fmt.Fprintln(w, "dataset  query  actual      abduced")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-6s %-10v  %v\n",
			r.Dataset, r.QueryID, r.ActualTime.Round(time.Microsecond), r.AbducedTime.Round(time.Microsecond))
	}
}
