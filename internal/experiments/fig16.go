package experiments

import (
	"fmt"
	"io"
	"time"

	"squid/internal/abduction"
	"squid/internal/adb"
	"squid/internal/baselines/pulearn"
	"squid/internal/benchqueries"
	"squid/internal/datagen"
	"squid/internal/metrics"
)

// Fig16aRow compares SQuID against PU-learning (decision tree and
// random forest estimators) at one labeled-positive fraction.
type Fig16aRow struct {
	Fraction float64
	Squid    metrics.PRF
	PUDT     metrics.PRF
	PURF     metrics.PRF
}

// Fig16a reproduces the §7.6 accuracy comparison on the Adult dataset:
// PU-learning needs a large fraction (>70% in the paper) of the query
// output as labeled examples to approach SQuID, which stays robust even
// with few examples.
func (s *Suite) Fig16a() []Fig16aRow {
	g, alpha := s.Adult()
	info := alpha.Entity("adult")
	X, feats := pulearn.Featurize(info)
	nameCol := info.Rel().Column("name")

	bench := benchqueries.AdultBenchmarks(g, s.Scale.Seed)
	bts := benchTruths(g.DB, bench)

	fractions := []float64{0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0}
	var rows []Fig16aRow
	for _, frac := range fractions {
		var squid, pudt, purf []metrics.PRF
		for _, bt := range bts {
			posRows := rowsOfValues(info.Rel().NumRows(), nameCol.Str, bt.Truth)
			k := int(frac * float64(len(posRows)))
			if k < 2 {
				k = 2
			}
			rng := s.sampler("fig16a"+bt.Bench.ID, int(frac*100))
			sampleIdx := metrics.SampleInts(rng, len(posRows), k)
			labeled := make([]int, 0, k)
			var labeledVals []string
			for _, i := range sampleIdx {
				labeled = append(labeled, posRows[i])
				labeledVals = append(labeledVals, nameCol.Str(posRows[i]))
			}

			// SQuID with the same examples.
			d := runSQuID(alpha, labeledVals, abduction.DefaultParams())
			squid = append(squid, scoreAgainst(d, bt.Truth))

			// PU-learning, both estimators.
			for _, est := range []pulearn.Estimator{pulearn.DecisionTree, pulearn.RandomForest} {
				res := pulearn.Learn(X, feats, labeled, pulearn.DefaultConfig(est))
				var got []string
				for _, r := range res.PositiveRows {
					got = append(got, nameCol.Str(r))
				}
				prf := metrics.Compare(got, bt.Truth)
				if est == pulearn.DecisionTree {
					pudt = append(pudt, prf)
				} else {
					purf = append(purf, prf)
				}
			}
		}
		rows = append(rows, Fig16aRow{
			Fraction: frac,
			Squid:    metrics.MeanPRF(squid),
			PUDT:     metrics.MeanPRF(pudt),
			PURF:     metrics.MeanPRF(purf),
		})
	}
	return rows
}

func rowsOfValues(n int, valueOf func(int) string, truth []string) []int {
	set := make(map[string]bool, len(truth))
	for _, t := range truth {
		set[t] = true
	}
	var out []int
	for i := 0; i < n; i++ {
		if set[valueOf(i)] {
			out = append(out, i)
		}
	}
	return out
}

// printFig16a renders the accuracy comparison.
func printFig16a(w io.Writer, rows []Fig16aRow) {
	fmt.Fprintln(w, "Fig 16(a): SQuID vs PU-learning vs labeled fraction (Adult)")
	fmt.Fprintln(w, "fraction  SQuID(P/R/F)          PU-DT(P/R/F)          PU-RF(P/R/F)")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.2f  %.3f/%.3f/%.3f  %.3f/%.3f/%.3f  %.3f/%.3f/%.3f\n",
			r.Fraction,
			r.Squid.Precision, r.Squid.Recall, r.Squid.FScore,
			r.PUDT.Precision, r.PUDT.Recall, r.PUDT.FScore,
			r.PURF.Precision, r.PURF.Recall, r.PURF.FScore)
	}
}

// Fig16bRow compares runtimes at one Adult scale factor.
type Fig16bRow struct {
	ScaleFactor int
	Rows        int
	SquidTime   time.Duration
	PUTime      time.Duration
}

// Fig16b reproduces the §7.6 scalability comparison: the Adult dataset
// is replicated up to 10×; PU-learning's train+predict time grows
// linearly with the data, while SQuID's abduction time stays largely
// flat because it consults the αDB's compressed statistics rather than
// the unlabeled data.
func (s *Suite) Fig16b() []Fig16bRow {
	var rows []Fig16bRow
	for _, sf := range []int{1, 4, 7, 10} {
		cfg := s.Scale.Adult
		cfg.ScaleFactor = sf
		g := datagen.GenerateAdult(cfg)
		alpha, err := adb.Build(g.DB, adb.DefaultConfig())
		if err != nil {
			panic(err)
		}
		info := alpha.Entity("adult")
		X, feats := pulearn.Featurize(info)
		nameCol := info.Rel().Column("name")

		bench := benchqueries.AdultBenchmarks(g, s.Scale.Seed)
		bts := benchTruths(g.DB, bench)
		if len(bts) > 5 {
			bts = bts[:5]
		}

		var squidTimes, puTimes []float64
		for _, bt := range bts {
			posRows := rowsOfValues(info.Rel().NumRows(), nameCol.Str, bt.Truth)
			rng := s.sampler("fig16b"+bt.Bench.ID, sf)
			k := len(posRows) / 2
			if k < 2 {
				k = 2
			}
			idx := metrics.SampleInts(rng, len(posRows), k)
			var labeled []int
			var labeledVals []string
			for _, i := range idx {
				labeled = append(labeled, posRows[i])
				labeledVals = append(labeledVals, nameCol.Str(posRows[i]))
			}

			d := runSQuID(alpha, labeledVals, abduction.DefaultParams())
			squidTimes = append(squidTimes, float64(d.Time))

			res := pulearn.Learn(X, feats, labeled, pulearn.DefaultConfig(pulearn.DecisionTree))
			puTimes = append(puTimes, float64(res.TrainTime+res.PredictTime))
		}
		rows = append(rows, Fig16bRow{
			ScaleFactor: sf,
			Rows:        g.DB.Relation("adult").NumRows(),
			SquidTime:   time.Duration(metrics.Mean(squidTimes)),
			PUTime:      time.Duration(metrics.Mean(puTimes)),
		})
	}
	return rows
}

// printFig16b renders the scalability comparison.
func printFig16b(w io.Writer, rows []Fig16bRow) {
	fmt.Fprintln(w, "Fig 16(b): scalability vs Adult scale factor")
	fmt.Fprintln(w, "scale  rows     SQuID       PU(train+predict)")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d  %7d  %-10v  %v\n",
			r.ScaleFactor, r.Rows, r.SquidTime.Round(time.Microsecond), r.PUTime.Round(time.Microsecond))
	}
}
