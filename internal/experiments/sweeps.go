package experiments

import (
	"fmt"
	"io"

	"squid/internal/abduction"
	"squid/internal/benchqueries"
	"squid/internal/metrics"
)

// SweepRow is one point of the Appendix E parameter sweeps (Figs
// 23–26): f-score of one benchmark at one parameter setting and
// example-set size.
type SweepRow struct {
	Parameter   string
	Setting     string
	QueryID     string
	NumExamples int
	FScore      float64
}

// sweepQueries returns the IMDb benchmarks used by the ρ and γ sweeps
// (IQ2, IQ3, IQ4, IQ11, IQ16 in the paper).
func (s *Suite) sweepTruths(ids ...string) []benchTruth {
	g, _ := s.IMDb()
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	var out []benchTruth
	for _, bt := range benchTruths(g.DB, benchqueries.IMDbBenchmarks(g)) {
		if want[bt.Bench.ID] {
			out = append(out, bt)
		}
	}
	return out
}

// runSweep scores one parameter configuration across queries and sizes.
func (s *Suite) runSweep(param, setting string, bts []benchTruth, params abduction.Params) []SweepRow {
	_, alpha := s.IMDb()
	var rows []SweepRow
	for _, bt := range bts {
		for _, n := range s.Scale.ExampleSizes {
			if len(bt.Truth) < n {
				continue
			}
			var fs []float64
			for run := 0; run < s.Scale.Runs; run++ {
				rng := s.sampler("sweep"+param+setting+bt.Bench.ID, run)
				examples := metrics.Sample(rng, bt.Truth, n)
				d := runSQuID(alpha, examples, params)
				fs = append(fs, scoreAgainst(d, bt.Truth).FScore)
			}
			rows = append(rows, SweepRow{
				Parameter:   param,
				Setting:     setting,
				QueryID:     bt.Bench.ID,
				NumExamples: n,
				FScore:      metrics.Mean(fs),
			})
		}
	}
	return rows
}

// Fig23 sweeps the base filter prior ρ ∈ {0.5, 0.1, 0.01} over IQ2,
// IQ3, IQ4, IQ11, IQ16 — low ρ favors recall, high ρ precision; the
// moderate default wins on average (Appendix E).
func (s *Suite) Fig23() []SweepRow {
	bts := s.sweepTruths("IQ2", "IQ3", "IQ4", "IQ11", "IQ16")
	var rows []SweepRow
	for _, rho := range []float64{0.5, 0.1, 0.01} {
		p := abduction.DefaultParams()
		p.Rho = rho
		rows = append(rows, s.runSweep("rho", fmt.Sprintf("%.2f", rho), bts, p)...)
	}
	return rows
}

// Fig24 sweeps the domain-coverage penalty γ ∈ {10, 5, 2, 0}.
func (s *Suite) Fig24() []SweepRow {
	bts := s.sweepTruths("IQ2", "IQ3", "IQ4", "IQ11", "IQ16")
	var rows []SweepRow
	for _, gamma := range []float64{10, 5, 2, 0} {
		p := abduction.DefaultParams()
		p.Gamma = gamma
		rows = append(rows, s.runSweep("gamma", fmt.Sprintf("%g", gamma), bts, p)...)
	}
	return rows
}

// Fig25 sweeps the association-strength threshold τa ∈ {0, 5} on IQ5:
// with few examples a high τa drops weakly-associated coincidental
// filters.
func (s *Suite) Fig25() []SweepRow {
	bts := s.sweepTruths("IQ5")
	var rows []SweepRow
	for _, tauA := range []int{0, 5} {
		p := abduction.DefaultParams()
		p.TauA = tauA
		rows = append(rows, s.runSweep("tauA", fmt.Sprintf("%d", tauA), bts, p)...)
	}
	return rows
}

// Fig26 sweeps the skewness threshold τs ∈ {N/A, 0, 2, 4} on IQ1: the
// outlier impact λ prunes unintended derived filters (the certificate
// family in the paper's account).
func (s *Suite) Fig26() []SweepRow {
	bts := s.sweepTruths("IQ1")
	var rows []SweepRow
	settings := []struct {
		name    string
		tauS    float64
		disable bool
	}{
		{"N/A", 0, true},
		{"0", 0, false},
		{"2", 2, false},
		{"4", 4, false},
	}
	for _, st := range settings {
		p := abduction.DefaultParams()
		p.TauS = st.tauS
		p.DisableOutlier = st.disable
		rows = append(rows, s.runSweep("tauS", st.name, bts, p)...)
	}
	return rows
}

// printSweep renders a Figs 23–26-style sweep.
func printSweep(w io.Writer, title string, rows []SweepRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, "param  setting  query  #examples  f-score")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-8s %-6s %9d  %7.3f\n", r.Parameter, r.Setting, r.QueryID, r.NumExamples, r.FScore)
	}
}
