package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// suite is shared across tests in this package (datasets are cached).
var testSuite = NewSuite(TestScale())

func TestFig9a(t *testing.T) {
	rows := testSuite.Fig9a()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	byDataset := map[string][]Fig9aRow{}
	for _, r := range rows {
		if r.MeanTime < 0 {
			t.Errorf("negative time at %+v", r)
		}
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	if len(byDataset["IMDb"]) == 0 || len(byDataset["DBLP"]) == 0 {
		t.Errorf("missing dataset series: %v", byDataset)
	}
	var buf bytes.Buffer
	PrintFig9a(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 9(a)") {
		t.Error("printer output wrong")
	}
}

func TestFig10AccuracyImproves(t *testing.T) {
	rows := testSuite.Fig10()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Aggregate: mean f-score at the smallest vs largest example size
	// must not degrade (the paper's headline trend).
	bySize := map[int][]float64{}
	for _, r := range rows {
		bySize[r.NumExamples] = append(bySize[r.NumExamples], r.PRF.FScore)
	}
	sizes := testSuite.Scale.ExampleSizes
	small, large := mean(bySize[sizes[0]]), mean(bySize[sizes[len(sizes)-1]])
	t.Logf("mean f-score: |E|=%d → %.3f, |E|=%d → %.3f", sizes[0], small, sizes[len(sizes)-1], large)
	if large+0.05 < small {
		t.Errorf("accuracy degraded with more examples: %.3f -> %.3f", small, large)
	}
	// Overall accuracy should be meaningful (not all zeros).
	if large < 0.3 {
		t.Errorf("large-sample f-score too low: %.3f", large)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestFig11(t *testing.T) {
	rows := testSuite.Fig11()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.ActualTime <= 0 || r.AbducedTime <= 0 {
			t.Errorf("%s/%s: non-positive runtimes %v %v", r.Dataset, r.QueryID, r.ActualTime, r.AbducedTime)
		}
	}
}

func TestFig12DisambiguationHelps(t *testing.T) {
	rows := testSuite.Fig12()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	improvedSomewhere := false
	for _, r := range rows {
		if r.WithDA > r.WithoutDA+0.01 {
			improvedSomewhere = true
		}
		// The paper: disambiguation never hurts (tolerance for sampling
		// noise across runs).
		if r.WithDA+0.10 < r.WithoutDA {
			t.Errorf("%s |E|=%d: disambiguation hurt: %.3f vs %.3f", r.Intent, r.NumExamples, r.WithDA, r.WithoutDA)
		}
	}
	if !improvedSomewhere {
		t.Error("disambiguation never improved accuracy on planted-ambiguity intents")
	}
}

func TestFig13CaseStudies(t *testing.T) {
	rows := testSuite.Fig13()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	studies := map[string][]Fig13Row{}
	for _, r := range rows {
		studies[r.Study] = append(studies[r.Study], r)
	}
	if len(studies) != 3 {
		t.Fatalf("studies=%d want 3 (%v)", len(studies), studies)
	}
	// Recall at the largest example size should beat recall at the
	// smallest for at least two studies (the Fig 13 narrative).
	improved := 0
	for name, rs := range studies {
		first, last := rs[0], rs[len(rs)-1]
		t.Logf("%s: recall %.3f -> %.3f", name, first.PRF.Recall, last.PRF.Recall)
		if last.PRF.Recall >= first.PRF.Recall {
			improved++
		}
	}
	if improved < 2 {
		t.Errorf("recall failed to improve in %d studies", 3-improved)
	}
}

func TestFig14AdultQRE(t *testing.T) {
	rows := testSuite.Fig14()
	if len(rows) != 20 {
		t.Fatalf("rows=%d want 20", len(rows))
	}
	var squidF, talosF, squidPreds, talosPreds, actualPreds float64
	for _, r := range rows {
		squidF += r.SquidF
		talosF += r.TalosF
		squidPreds += float64(r.SquidPreds)
		talosPreds += float64(r.TalosPreds)
		actualPreds += float64(r.ActualPreds)
	}
	squidF /= 20
	talosF /= 20
	t.Logf("Adult QRE: actual preds=%.1f; SQuID f=%.3f preds=%.1f; TALOS f=%.3f preds=%.1f",
		actualPreds/20, squidF, squidPreds/20, talosF, talosPreds/20)
	// Both systems should be highly accurate on Adult (paper: perfect).
	if squidF < 0.85 {
		t.Errorf("SQuID Adult QRE f-score=%.3f", squidF)
	}
	if talosF < 0.80 {
		t.Errorf("TALOS Adult QRE f-score=%.3f", talosF)
	}
	// SQuID queries must stay close to the original query size (the
	// Fig 14 claim). TALOS predicate counts depend on how separable the
	// data is; the synthetic census is smoother than the real one, so
	// the paper's >100-predicate blowups need not manifest here.
	if squidPreds > actualPreds+20*7 {
		t.Errorf("SQuID predicates (%.1f avg) far above actual (%.1f avg)", squidPreds/20, actualPreds/20)
	}
	// Rows must be sorted by cardinality (the Fig 14 x-axis).
	for i := 1; i < len(rows); i++ {
		if rows[i].Cardinality < rows[i-1].Cardinality {
			t.Error("rows not sorted by input cardinality")
		}
	}
}

func TestFig16b(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiment")
	}
	rows := testSuite.Fig16b()
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	// PU time must grow with scale; SQuID should grow much slower.
	first, last := rows[0], rows[len(rows)-1]
	if last.PUTime <= first.PUTime {
		t.Errorf("PU time did not grow with scale: %v -> %v", first.PUTime, last.PUTime)
	}
	puGrowth := float64(last.PUTime) / float64(first.PUTime+1)
	squidGrowth := float64(last.SquidTime) / float64(first.SquidTime+1)
	t.Logf("growth over 10x data: PU %.1fx, SQuID %.1fx", puGrowth, squidGrowth)
	if squidGrowth > puGrowth*2 {
		t.Errorf("SQuID scaling (%.1fx) should not be far worse than PU (%.1fx)", squidGrowth, puGrowth)
	}
}

func TestFig18StatsAndTables(t *testing.T) {
	stats := testSuite.Fig18()
	if len(stats) != 6 {
		t.Fatalf("stats blocks=%d want 6 (IMDb, sm, bs, bd, DBLP, Adult)", len(stats))
	}
	// bs and bd must be larger than base IMDb; bd ≥ bs.
	base, bs, bd := stats[0], stats[2], stats[3]
	if bs.DBBytes <= base.DBBytes || bd.DBBytes < bs.DBBytes {
		t.Errorf("variant sizes wrong: base=%d bs=%d bd=%d", base.DBBytes, bs.DBBytes, bd.DBBytes)
	}

	for _, tbl := range []BenchmarkTable{testSuite.Fig19(), testSuite.Fig20(), testSuite.Fig22()} {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", tbl.Dataset)
		}
		var buf bytes.Buffer
		PrintBenchmarkTable(&buf, tbl)
		if !strings.Contains(buf.String(), tbl.Rows[0].ID) {
			t.Errorf("%s: printer broken", tbl.Dataset)
		}
	}
}

func TestSweepsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("parameter sweeps")
	}
	f25 := testSuite.Fig25()
	if len(f25) == 0 {
		t.Fatal("tauA sweep empty")
	}
	f26 := testSuite.Fig26()
	if len(f26) == 0 {
		t.Fatal("tauS sweep empty")
	}
	settings := map[string]bool{}
	for _, r := range f26 {
		settings[r.Setting] = true
	}
	for _, want := range []string{"N/A", "0", "2", "4"} {
		if !settings[want] {
			t.Errorf("tauS sweep missing setting %q", want)
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation studies")
	}
	rows := testSuite.Ablations()
	if len(rows) != 6 {
		t.Fatalf("ablation rows=%d want 6", len(rows))
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Ablation+"/"+r.Setting] = r.FScore
	}
	// Depth 2 must beat depth 1 on the deep-derived intent.
	if byKey["fact-depth/depth=2"] < byKey["fact-depth/depth=1"] {
		t.Errorf("depth-2 (%v) should beat depth-1 (%v) on funny actors",
			byKey["fact-depth/depth=2"], byKey["fact-depth/depth=1"])
	}
	// Disjunction must help on the two-value intent.
	if byKey["disjunction/max=3"] < byKey["disjunction/max=0"] {
		t.Errorf("disjunction (%v) should beat none (%v) on the OR intent",
			byKey["disjunction/max=3"], byKey["disjunction/max=0"])
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"ablations",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15a", "fig15b",
		"fig16a", "fig16b", "fig18", "fig19", "fig20", "fig22", "fig23",
		"fig24", "fig25", "fig26", "fig9a", "fig9b",
	}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries want %d: %v", len(ids), len(want), ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("id[%d]=%s want %s", i, ids[i], want[i])
		}
	}
	if _, ok := Lookup("fig10"); !ok {
		t.Error("Lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup found a ghost")
	}
}
