package experiments

import (
	"fmt"
	"io"

	"squid/internal/adb"
	"squid/internal/benchqueries"
	"squid/internal/metrics"
)

// AblationRow is one point of an ablation study: mean f-score of a
// configuration over the affected benchmark queries.
type AblationRow struct {
	Ablation string
	Setting  string
	QueryID  string
	FScore   float64
}

// AblationDepth compares derived-property discovery depth 1 vs 2 (the
// §5 "derived property discovery up to a pre-defined depth" knob, and
// the §9 "techniques for adjusting the depth of association discovery"
// direction). Queries whose intent lives behind a two-fact-table path
// (funny actors: person→castinfo→movie→movietogenre→genre) collapse at
// depth 1; shallow intents are unaffected.
func (s *Suite) AblationDepth() []AblationRow {
	g, _ := s.IMDb()
	var rows []AblationRow
	n := 10
	person := g.DB.Relation("person")
	var comedianNames []string
	for _, id := range g.Comedians {
		comedianNames = append(comedianNames, person.Get(int(id), "name").Str())
	}

	for _, depth := range []int{1, 2} {
		cfg := adb.DefaultConfig()
		cfg.MaxFactDepth = depth
		alpha, err := adb.Build(g.DB, cfg)
		if err != nil {
			panic(err)
		}
		params := defaultParams()
		params.NormalizeAssociation = true
		var fs []float64
		for run := 0; run < s.Scale.Runs; run++ {
			rng := s.sampler("abl-depth", run)
			examples := metrics.Sample(rng, comedianNames, n)
			d := runSQuID(alpha, examples, params)
			fs = append(fs, scoreAgainst(d, comedianNames).FScore)
		}
		rows = append(rows, AblationRow{
			Ablation: "fact-depth",
			Setting:  fmt.Sprintf("depth=%d", depth),
			QueryID:  "funny-actors",
			FScore:   metrics.Mean(fs),
		})
	}
	return rows
}

// AblationDisjunction compares discovery with and without the optional
// disjunctive categorical filters (footnote 7): an intent spanning two
// genres (Horror OR Mystery movies) is only expressible with the
// extension.
func (s *Suite) AblationDisjunction() []AblationRow {
	g, alpha := s.IMDb()
	// Intent: movies whose certificate is G or PG (a two-value
	// disjunction over a direct attribute).
	movie := g.DB.Relation("movie")
	var truth []string
	cert := movie.Column("certificate")
	title := movie.Column("title")
	for i := 0; i < movie.NumRows(); i++ {
		if c := cert.Str(i); c == "G" || c == "NC-17" {
			truth = append(truth, title.Str(i))
		}
	}
	var rows []AblationRow
	n := 12
	for _, maxDisj := range []int{0, 3} {
		params := defaultParams()
		params.MaxDisjunction = maxDisj
		var fs []float64
		for run := 0; run < s.Scale.Runs; run++ {
			rng := s.sampler("abl-disj", run)
			examples := metrics.Sample(rng, truth, n)
			d := runSQuID(alpha, examples, params)
			fs = append(fs, scoreAgainst(d, truth).FScore)
		}
		rows = append(rows, AblationRow{
			Ablation: "disjunction",
			Setting:  fmt.Sprintf("max=%d", maxDisj),
			QueryID:  "G-or-NC17",
			FScore:   metrics.Mean(fs),
		})
	}
	return rows
}

// AblationNormalization compares absolute vs normalized association
// strength on the funny-actors case study (the Fig 13(a) tuning).
func (s *Suite) AblationNormalization() []AblationRow {
	imdb, alpha := s.IMDb()
	cs := benchqueries.FunnyActors(imdb, s.Scale.Seed)
	var rows []AblationRow
	n := 10
	if len(cs.List) < n {
		n = len(cs.List)
	}
	for _, normalize := range []bool{false, true} {
		params := defaultParams()
		params.NormalizeAssociation = normalize
		var fs []float64
		for run := 0; run < s.Scale.Runs; run++ {
			rng := s.sampler("abl-norm", run)
			examples := metrics.Sample(rng, cs.List, n)
			d := runSQuID(alpha, examples, params)
			if d.Err != nil || d.Result == nil {
				fs = append(fs, 0)
				continue
			}
			masked := cs.ApplyMask(d.Result.OutputValues())
			fs = append(fs, metrics.Compare(masked, cs.List).FScore)
		}
		rows = append(rows, AblationRow{
			Ablation: "normalize-association",
			Setting:  fmt.Sprintf("%v", normalize),
			QueryID:  cs.Name,
			FScore:   metrics.Mean(fs),
		})
	}
	return rows
}

// Ablations runs all ablation studies.
func (s *Suite) Ablations() []AblationRow {
	var rows []AblationRow
	rows = append(rows, s.AblationDepth()...)
	rows = append(rows, s.AblationDisjunction()...)
	rows = append(rows, s.AblationNormalization()...)
	return rows
}

// printAblations renders the ablation results.
func printAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablations: design-choice studies (DESIGN.md §5)")
	fmt.Fprintln(w, "ablation               setting    query         f-score")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %-10s %-13s %7.3f\n", r.Ablation, r.Setting, r.QueryID, r.FScore)
	}
}
