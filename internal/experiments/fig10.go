package experiments

import (
	"fmt"
	"io"

	"squid/internal/benchqueries"
	"squid/internal/metrics"
)

// defaultParams returns the Fig 21 defaults used across experiments.
func defaultParams() abductionParams { return abdDefaultParams() }

// Fig10Row is one point of Fig 10: accuracy of the abduced query for
// one benchmark at one example-set size, averaged over runs.
type Fig10Row struct {
	Dataset     string
	QueryID     string
	NumExamples int
	PRF         metrics.PRF
}

// Fig10 measures precision, recall, and f-score against the number of
// examples for every IMDb and DBLP benchmark query, sampling examples
// from the ground-truth output (10 runs in the paper; Scale.Runs here).
func (s *Suite) Fig10() []Fig10Row {
	var rows []Fig10Row
	imdb, imdbAlpha := s.IMDb()
	rows = append(rows, s.accuracyCurves("IMDb", imdbAlpha, benchTruths(imdb.DB, benchqueries.IMDbBenchmarks(imdb)))...)
	dblp, dblpAlpha := s.DBLP()
	rows = append(rows, s.accuracyCurves("DBLP", dblpAlpha, benchTruths(dblp.DB, benchqueries.DBLPBenchmarks(dblp)))...)
	return rows
}

func (s *Suite) accuracyCurves(dataset string, alpha *alphaDB, bts []benchTruth) []Fig10Row {
	var rows []Fig10Row
	params := defaultParams()
	for _, bt := range bts {
		for _, n := range s.Scale.ExampleSizes {
			if len(bt.Truth) < n {
				continue
			}
			var prfs []metrics.PRF
			for run := 0; run < s.Scale.Runs; run++ {
				rng := s.sampler("fig10"+dataset+bt.Bench.ID, run)
				examples := metrics.Sample(rng, bt.Truth, n)
				d := runSQuID(alpha, examples, params)
				prfs = append(prfs, scoreAgainst(d, bt.Truth))
			}
			rows = append(rows, Fig10Row{
				Dataset:     dataset,
				QueryID:     bt.Bench.ID,
				NumExamples: n,
				PRF:         metrics.MeanPRF(prfs),
			})
		}
	}
	return rows
}

// printFig10 renders the Fig 10 series.
func printFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintln(w, "Fig 10: precision/recall/f-score vs #examples")
	fmt.Fprintln(w, "dataset  query  #examples  precision  recall  f-score")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-6s %9d  %9.3f  %6.3f  %7.3f\n",
			r.Dataset, r.QueryID, r.NumExamples, r.PRF.Precision, r.PRF.Recall, r.PRF.FScore)
	}
}
