package experiments

import (
	"fmt"
	"io"

	"squid/internal/benchqueries"
	"squid/internal/metrics"
)

// Fig13Row is one point of Fig 13: case-study accuracy at one
// example-set size, averaged over runs.
type Fig13Row struct {
	Study       string
	NumExamples int
	PRF         metrics.PRF
}

// Fig13 runs the three qualitative case studies of §7.4 — funny actors,
// 2000s Sci-Fi movies, and prolific DB researchers — sampling examples
// from simulated public lists and scoring against the list through the
// popularity mask (Appendix D footnote 14). The paper's signature
// reproduces: precision stays low (lists are biased, the data contains
// matching entities absent from the list), while recall rises quickly
// as the abduced query converges to the intent.
func (s *Suite) Fig13() []Fig13Row {
	var rows []Fig13Row
	imdb, imdbAlpha := s.IMDb()
	dblp, dblpAlpha := s.DBLP()

	studies := []struct {
		cs    *benchqueries.CaseStudy
		alpha *alphaDB
	}{
		{benchqueries.FunnyActors(imdb, s.Scale.Seed), imdbAlpha},
		{benchqueries.SciFi2000s(imdb, s.Scale.Seed), imdbAlpha},
		{benchqueries.ProlificResearchers(dblp, s.Scale.Seed), dblpAlpha},
	}
	for _, st := range studies {
		params := defaultParams()
		params.NormalizeAssociation = st.cs.NormalizeAssociation
		for _, n := range s.Scale.ExampleSizes {
			if len(st.cs.List) < n {
				continue
			}
			var prfs []metrics.PRF
			for run := 0; run < s.Scale.Runs; run++ {
				rng := s.sampler("fig13"+st.cs.ID, run)
				examples := metrics.Sample(rng, st.cs.List, n)
				d := runSQuID(st.alpha, examples, params)
				if d.Err != nil || d.Result == nil {
					prfs = append(prfs, metrics.PRF{})
					continue
				}
				// Score the masked abduced output against the list.
				masked := st.cs.ApplyMask(d.Result.OutputValues())
				prfs = append(prfs, metrics.Compare(masked, st.cs.List))
			}
			rows = append(rows, Fig13Row{
				Study:       st.cs.Name,
				NumExamples: n,
				PRF:         metrics.MeanPRF(prfs),
			})
		}
	}
	return rows
}

// printFig13 renders the Fig 13 series.
func printFig13(w io.Writer, rows []Fig13Row) {
	fmt.Fprintln(w, "Fig 13: case studies (scored against simulated public lists)")
	fmt.Fprintln(w, "study                     #examples  precision  recall  f-score")
	for _, r := range rows {
		fmt.Fprintf(w, "%-25s %9d  %9.3f  %6.3f  %7.3f\n",
			r.Study, r.NumExamples, r.PRF.Precision, r.PRF.Recall, r.PRF.FScore)
	}
}
