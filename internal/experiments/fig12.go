package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"squid/internal/abduction"
	"squid/internal/metrics"
)

// Fig12Row is one point of Fig 12: f-score with and without entity
// disambiguation at one example-set size for one ambiguous intent.
type Fig12Row struct {
	Intent      string
	NumExamples int
	WithDA      float64
	WithoutDA   float64
}

// Fig12 measures the effect of entity disambiguation (§6.1.1) on
// abduction accuracy. The generator plants ambiguity where the naive
// first-match resolution picks the wrong entity: comedian names shared
// with unrelated low-credit persons, and a movie title shared by four
// films of which only one is a 2000s Sci-Fi. Examples are drawn to
// include ambiguous values; the paper's finding — disambiguation never
// hurts and can significantly improve accuracy — reproduces here.
func (s *Suite) Fig12() []Fig12Row {
	imdb, alpha := s.IMDb()
	var rows []Fig12Row

	// Intent 1: funny actors (ambiguous comedian names).
	person := imdb.DB.Relation("person")
	var comedianNames []string
	for _, id := range imdb.Comedians {
		comedianNames = append(comedianNames, person.Get(int(id), "name").Str())
	}
	sort.Strings(comedianNames)
	ambiguous := append([]string(nil), imdb.AmbiguousNames...)
	rows = append(rows, s.disambiguationCurve("funny-actors", comedianNames, ambiguous, comedianNames, alpha)...)

	// Intent 2: 2000s Sci-Fi movies (ambiguous title).
	movie := imdb.DB.Relation("movie")
	var scifiTitles []string
	seen := map[string]bool{}
	for _, id := range imdb.SciFi2000s {
		t := movie.Get(int(id), "title").Str()
		if !seen[t] {
			seen[t] = true
			scifiTitles = append(scifiTitles, t)
		}
	}
	sort.Strings(scifiTitles)
	rows = append(rows, s.disambiguationCurve("scifi-2000s", scifiTitles, []string{imdb.AmbiguousTitle}, scifiTitles, alpha)...)

	return rows
}

// disambiguationCurve samples example sets that always include some
// ambiguous values and scores discovery with and without the resolver.
func (s *Suite) disambiguationCurve(intent string, pool, ambiguous, truth []string, alpha *alphaDB) []Fig12Row {
	var rows []Fig12Row
	params := defaultParams()
	params.NormalizeAssociation = intent == "funny-actors"
	for _, n := range s.Scale.ExampleSizes {
		if len(pool) < n {
			continue
		}
		var with, without []float64
		for run := 0; run < s.Scale.Runs; run++ {
			rng := s.sampler("fig12"+intent, run)
			examples := sampleWithAmbiguous(rng, pool, ambiguous, n)

			d := runSQuID(alpha, examples, params)
			with = append(with, scoreAgainst(d, truth).FScore)

			startNoDA := abduction.Resolver(nil)
			dNo := runSQuIDWithResolver(alpha, examples, params, startNoDA)
			without = append(without, scoreAgainst(dNo, truth).FScore)
		}
		rows = append(rows, Fig12Row{
			Intent:      intent,
			NumExamples: n,
			WithDA:      metrics.Mean(with),
			WithoutDA:   metrics.Mean(without),
		})
	}
	return rows
}

// sampleWithAmbiguous draws n examples from pool guaranteeing that the
// available ambiguous values are included (up to n/2 of them).
func sampleWithAmbiguous(rng *rand.Rand, pool, ambiguous []string, n int) []string {
	inPool := map[string]bool{}
	for _, p := range pool {
		inPool[p] = true
	}
	var forced []string
	for _, a := range ambiguous {
		if inPool[a] && len(forced) < n/2 {
			forced = append(forced, a)
		}
	}
	rest := make([]string, 0, len(pool))
	forcedSet := map[string]bool{}
	for _, f := range forced {
		forcedSet[f] = true
	}
	for _, p := range pool {
		if !forcedSet[p] {
			rest = append(rest, p)
		}
	}
	out := append(forced, metrics.Sample(rng, rest, n-len(forced))...)
	sort.Strings(out)
	return out
}

// runSQuIDWithResolver is runSQuID with an explicit resolver (nil =
// first-match, the "w/o DA" configuration).
func runSQuIDWithResolver(alpha *alphaDB, examples []string, params abductionParams, r abduction.Resolver) Discovery {
	results, err := abduction.Discover(alpha.Snapshot(), examples, params, r)
	if err != nil {
		return Discovery{Err: err}
	}
	return Discovery{Result: results[0]}
}

// printFig12 renders the Fig 12 comparison.
func printFig12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintln(w, "Fig 12: effect of entity disambiguation (f-score)")
	fmt.Fprintln(w, "intent        #examples  w/ DA   w/o DA")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %9d  %6.3f  %6.3f\n", r.Intent, r.NumExamples, r.WithDA, r.WithoutDA)
	}
}
