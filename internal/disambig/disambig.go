// Package disambig implements SQuID's entity disambiguation (§6.1.1 of
// the paper): when an example value maps to several candidate entities
// (four films named Titanic), pick the combination of mappings that
// maximizes the semantic similarity across the examples — ambiguous
// examples should resolve to the entities most alike the unambiguous
// ones. Since example sets are small, all combinations are considered,
// greedily bounded for safety.
package disambig

import (
	"math"
	"squid/internal/abduction"
	"squid/internal/adb"
)

// maxCombinations bounds the exhaustive search; beyond it the resolver
// falls back to per-example greedy resolution against the current
// partial assignment.
const maxCombinations = 200000

// Resolve picks one row per example from the ambiguity candidates,
// maximizing the pairwise semantic similarity of the chosen rows. It has
// the abduction.Resolver signature so the public API can plug it into
// Discover.
func Resolve(info *adb.EntityInfo, candidates [][]int, params abduction.Params) []int {
	if len(candidates) == 0 {
		return nil
	}
	total := 1
	exhaustive := true
	for _, c := range candidates {
		if len(c) == 0 {
			return nil
		}
		if total > maxCombinations/len(c) {
			exhaustive = false
			break
		}
		total *= len(c)
	}
	sc := newScorer(info)
	if exhaustive && total > 1 {
		return sc.resolveExhaustive(candidates)
	}
	return sc.resolveGreedy(candidates)
}

// scorer computes normalized pairwise similarities with per-row caches,
// so the exhaustive search over mapping combinations stays cheap.
type scorer struct {
	info  *adb.EntityInfo
	self  map[int]float64
	pairs map[[2]int]float64
}

func newScorer(info *adb.EntityInfo) *scorer {
	return &scorer{info: info, self: map[int]float64{}, pairs: map[[2]int]float64{}}
}

// resolveExhaustive scores every combination.
func (sc *scorer) resolveExhaustive(candidates [][]int) []int {
	assign := make([]int, len(candidates))
	best := make([]int, len(candidates))
	bestScore := -1.0
	var recurse func(i int)
	recurse = func(i int) {
		if i == len(candidates) {
			if s := sc.setScore(assign); s > bestScore {
				bestScore = s
				copy(best, assign)
			}
			return
		}
		for _, row := range candidates[i] {
			assign[i] = row
			recurse(i + 1)
		}
	}
	recurse(0)
	return best
}

// resolveGreedy fixes unambiguous examples first, then assigns each
// ambiguous example the candidate most similar to the fixed set.
func (sc *scorer) resolveGreedy(candidates [][]int) []int {
	out := make([]int, len(candidates))
	var fixed []int
	for i, c := range candidates {
		if len(c) == 1 {
			out[i] = c[0]
			fixed = append(fixed, c[0])
		} else {
			out[i] = -1
		}
	}
	for i, c := range candidates {
		if out[i] != -1 {
			continue
		}
		bestRow, bestScore := c[0], -1.0
		for _, row := range c {
			s := 0.0
			for _, f := range fixed {
				s += sc.sim(row, f)
			}
			if s > bestScore {
				bestScore = s
				bestRow = row
			}
		}
		out[i] = bestRow
		fixed = append(fixed, bestRow)
	}
	return out
}

// setScore sums pairwise similarities over the chosen rows.
func (sc *scorer) setScore(rows []int) float64 {
	s := 0.0
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			s += sc.sim(rows[i], rows[j])
		}
	}
	return s
}

// sim is the cosine-normalized similarity: shared information weight
// divided by the geometric mean of the rows' self weights. The
// normalization stops high-degree hub entities (a prolific actor shares
// *something* with everyone) from outscoring the genuinely alike
// candidate.
func (sc *scorer) sim(a, b int) float64 {
	if a == b {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	key := [2]int{a, b}
	if v, ok := sc.pairs[key]; ok {
		return v
	}
	raw := pairSimilarity(sc.info, a, b)
	norm := math.Sqrt(sc.selfWeight(a) * sc.selfWeight(b))
	v := 0.0
	if norm > 0 {
		v = raw / norm
	}
	sc.pairs[key] = v
	return v
}

// selfWeight is the total information weight of a row's own property
// values (its "vector length" in the cosine analogy).
func (sc *scorer) selfWeight(row int) float64 {
	if v, ok := sc.self[row]; ok {
		return v
	}
	info := sc.info
	w := 0.0
	for _, p := range info.Basic {
		switch p.Kind {
		case adb.Categorical:
			seen := map[string]struct{}{}
			for _, v := range p.Values(row) {
				if _, dup := seen[v]; dup {
					continue
				}
				seen[v] = struct{}{}
				w += rarity(p.CategoricalSelectivity(v))
			}
		case adb.Numeric:
			if _, ok := p.NumValue(row); ok {
				w++ // numeric self-closeness is 1 by definition
			}
		}
	}
	id := info.IDByRow(row)
	for _, p := range info.Derived {
		for v, n := range p.Counts(id) {
			w += rarity(p.Selectivity(v, n))
		}
	}
	sc.self[row] = w
	return w
}

// pairSimilarity measures the semantic similarity of two entities.
// Shared values are weighted by their information content −log ψ(v), so
// sharing a rare property (the same specific movie, the same uncommon
// genre association) dominates sharing common ones (gender, popular
// keywords): this is what makes the 1997 Titanic win against its
// namesakes, and what keeps an ambiguous cast-member name resolving to
// the co-star rather than a popular homonym. Derived associations use
// ψ(v, min-strength), so strong shared associations count more (the
// paper: "SQuID aims to increase the association strength").
func pairSimilarity(info *adb.EntityInfo, a, b int) float64 {
	if a == b {
		return 0
	}
	score := 0.0
	for _, p := range info.Basic {
		switch p.Kind {
		case adb.Categorical:
			av, bv := p.Values(a), p.Values(b)
			if len(av) == 0 || len(bv) == 0 {
				continue
			}
			set := make(map[string]struct{}, len(av))
			for _, v := range av {
				set[v] = struct{}{}
			}
			seen := make(map[string]struct{}, len(bv))
			for _, v := range bv {
				if _, dup := seen[v]; dup {
					continue
				}
				seen[v] = struct{}{}
				if _, ok := set[v]; ok {
					score += rarity(p.CategoricalSelectivity(v))
				}
			}
		case adb.Numeric:
			av, aok := p.NumValue(a)
			bv, bok := p.NumValue(b)
			if !aok || !bok {
				continue
			}
			idx := p.NumericIndex()
			span := idx.Max() - idx.Min()
			if span <= 0 {
				continue
			}
			d := av - bv
			if d < 0 {
				d = -d
			}
			score += 1 - d/span
		}
	}
	aid, bid := info.IDByRow(a), info.IDByRow(b)
	for _, p := range info.Derived {
		ac := p.Counts(aid)
		if len(ac) == 0 {
			continue
		}
		bc := p.Counts(bid)
		for v, n := range ac {
			if m, ok := bc[v]; ok {
				minStrength := n
				if m < n {
					minStrength = m
				}
				score += rarity(p.Selectivity(v, minStrength))
			}
		}
	}
	return score
}

// rarity converts a selectivity into an information weight −ln ψ,
// clamped to avoid infinities on empty statistics.
func rarity(psi float64) float64 {
	if psi <= 0 {
		return 0 // value unseen in statistics: no evidence either way
	}
	if psi >= 1 {
		return 0
	}
	return -math.Log(psi)
}
