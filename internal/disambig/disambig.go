// Package disambig implements SQuID's entity disambiguation (§6.1.1 of
// the paper): when an example value maps to several candidate entities
// (four films named Titanic), pick the combination of mappings that
// maximizes the semantic similarity across the examples — ambiguous
// examples should resolve to the entities most alike the unambiguous
// ones. Since example sets are small, all combinations are considered,
// greedily bounded for safety.
package disambig

import (
	"math"
	"squid/internal/abduction"
	"squid/internal/adb"
)

// maxCombinations bounds the exhaustive search; beyond it the resolver
// falls back to per-example greedy resolution against the current
// partial assignment.
const maxCombinations = 200000

// Resolve picks one row per example from the ambiguity candidates,
// maximizing the pairwise semantic similarity of the chosen rows. It has
// the abduction.Resolver signature so the public API can plug it into
// Discover.
func Resolve(info *adb.EntityInfo, candidates [][]int, params abduction.Params) []int {
	if len(candidates) == 0 {
		return nil
	}
	total := 1
	exhaustive := true
	for _, c := range candidates {
		if len(c) == 0 {
			return nil
		}
		if total > maxCombinations/len(c) {
			exhaustive = false
			break
		}
		total *= len(c)
	}
	sc := newScorer(info)
	if exhaustive && total > 1 {
		return sc.resolveExhaustive(candidates)
	}
	return sc.resolveGreedy(candidates)
}

// scorer computes normalized pairwise similarities with per-row caches,
// so the exhaustive search over mapping combinations stays cheap.
type scorer struct {
	info  *adb.EntityInfo
	self  map[int]float64
	pairs map[[2]int]float64
	rows  map[int]*rowProfile
}

// rowProfile caches one candidate row's property values, fetched from
// the αDB once and reused across every pair the row participates in
// (the exhaustive search scores O(candidates²) pairs; without the
// profile each pair re-resolved value sets and association-count maps).
// Values are dictionary codes, so set intersections and selectivity
// lookups are integer operations with no string hashing.
type rowProfile struct {
	// catVals holds, per basic categorical property (aligned with
	// info.Basic), the row's deduplicated value-code set.
	catVals []map[int32]struct{}
	// counts holds, per derived property (aligned with info.Derived),
	// the row's association counts keyed by value code.
	counts []map[int32]int
}

func newScorer(info *adb.EntityInfo) *scorer {
	return &scorer{
		info:  info,
		self:  map[int]float64{},
		pairs: map[[2]int]float64{},
		rows:  map[int]*rowProfile{},
	}
}

// profile fetches (once) the cached property values of a row.
func (sc *scorer) profile(row int) *rowProfile {
	if p, ok := sc.rows[row]; ok {
		return p
	}
	info := sc.info
	p := &rowProfile{
		catVals: make([]map[int32]struct{}, len(info.Basic)),
		counts:  make([]map[int32]int, len(info.Derived)),
	}
	for i, prop := range info.Basic {
		if prop.Kind != adb.Categorical {
			continue
		}
		codes := prop.ValueCodes(row)
		if len(codes) == 0 {
			continue
		}
		set := make(map[int32]struct{}, len(codes))
		for _, c := range codes {
			set[c] = struct{}{}
		}
		p.catVals[i] = set
	}
	id := info.IDByRow(row)
	for i, prop := range info.Derived {
		ccs := prop.CountsCodes(id)
		if len(ccs) == 0 {
			continue
		}
		m := make(map[int32]int, len(ccs))
		for _, cc := range ccs {
			m[cc.Code] = cc.Count
		}
		p.counts[i] = m
	}
	sc.rows[row] = p
	return p
}

// resolveExhaustive scores every combination. The recursion carries the
// partial pairwise score of the prefix, so extending an assignment by
// one example costs O(prefix) cached-sim lookups instead of rescoring
// the whole set per leaf.
func (sc *scorer) resolveExhaustive(candidates [][]int) []int {
	assign := make([]int, len(candidates))
	best := make([]int, len(candidates))
	bestScore := -1.0
	var recurse func(i int, partial float64)
	recurse = func(i int, partial float64) {
		if i == len(candidates) {
			if partial > bestScore {
				bestScore = partial
				copy(best, assign)
			}
			return
		}
		for _, row := range candidates[i] {
			assign[i] = row
			gain := 0.0
			for j := 0; j < i; j++ {
				gain += sc.sim(assign[j], row)
			}
			recurse(i+1, partial+gain)
		}
	}
	recurse(0, 0)
	return best
}

// resolveGreedy fixes unambiguous examples first, then assigns each
// ambiguous example the candidate most similar to the fixed set.
func (sc *scorer) resolveGreedy(candidates [][]int) []int {
	out := make([]int, len(candidates))
	var fixed []int
	for i, c := range candidates {
		if len(c) == 1 {
			out[i] = c[0]
			fixed = append(fixed, c[0])
		} else {
			out[i] = -1
		}
	}
	for i, c := range candidates {
		if out[i] != -1 {
			continue
		}
		bestRow, bestScore := c[0], -1.0
		for _, row := range c {
			s := 0.0
			for _, f := range fixed {
				s += sc.sim(row, f)
			}
			if s > bestScore {
				bestScore = s
				bestRow = row
			}
		}
		out[i] = bestRow
		fixed = append(fixed, bestRow)
	}
	return out
}

// sim is the cosine-normalized similarity: shared information weight
// divided by the geometric mean of the rows' self weights. The
// normalization stops high-degree hub entities (a prolific actor shares
// *something* with everyone) from outscoring the genuinely alike
// candidate.
func (sc *scorer) sim(a, b int) float64 {
	if a == b {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	key := [2]int{a, b}
	if v, ok := sc.pairs[key]; ok {
		return v
	}
	raw := sc.pairSimilarity(a, b)
	norm := math.Sqrt(sc.selfWeight(a) * sc.selfWeight(b))
	v := 0.0
	if norm > 0 {
		v = raw / norm
	}
	sc.pairs[key] = v
	return v
}

// selfWeight is the total information weight of a row's own property
// values (its "vector length" in the cosine analogy).
func (sc *scorer) selfWeight(row int) float64 {
	if v, ok := sc.self[row]; ok {
		return v
	}
	info := sc.info
	prof := sc.profile(row)
	w := 0.0
	for i, p := range info.Basic {
		switch p.Kind {
		case adb.Categorical:
			for c := range prof.catVals[i] {
				w += rarity(p.SelectivityOfCode(c))
			}
		case adb.Numeric:
			if _, ok := p.NumValue(row); ok {
				w++ // numeric self-closeness is 1 by definition
			}
		}
	}
	for i, p := range info.Derived {
		for c, n := range prof.counts[i] {
			w += rarity(p.SelectivityOfCode(c, n))
		}
	}
	sc.self[row] = w
	return w
}

// pairSimilarity measures the semantic similarity of two entities.
// Shared values are weighted by their information content −log ψ(v), so
// sharing a rare property (the same specific movie, the same uncommon
// genre association) dominates sharing common ones (gender, popular
// keywords): this is what makes the 1997 Titanic win against its
// namesakes, and what keeps an ambiguous cast-member name resolving to
// the co-star rather than a popular homonym. Derived associations use
// ψ(v, min-strength), so strong shared associations count more (the
// paper: "SQuID aims to increase the association strength"). Both rows'
// value sets come from the scorer's per-row profiles, so each pair costs
// a weighted set intersection with no αDB refetches.
func (sc *scorer) pairSimilarity(a, b int) float64 {
	if a == b {
		return 0
	}
	info := sc.info
	pa, pb := sc.profile(a), sc.profile(b)
	score := 0.0
	for i, p := range info.Basic {
		switch p.Kind {
		case adb.Categorical:
			av, bv := pa.catVals[i], pb.catVals[i]
			if len(av) == 0 || len(bv) == 0 {
				continue
			}
			if len(bv) < len(av) {
				av, bv = bv, av
			}
			for c := range av {
				if _, ok := bv[c]; ok {
					score += rarity(p.SelectivityOfCode(c))
				}
			}
		case adb.Numeric:
			av, aok := p.NumValue(a)
			bv, bok := p.NumValue(b)
			if !aok || !bok {
				continue
			}
			idx := p.NumericIndex()
			span := idx.Max() - idx.Min()
			if span <= 0 {
				continue
			}
			d := av - bv
			if d < 0 {
				d = -d
			}
			score += 1 - d/span
		}
	}
	for i, p := range info.Derived {
		ac, bc := pa.counts[i], pb.counts[i]
		if len(ac) == 0 || len(bc) == 0 {
			continue
		}
		for c, n := range ac {
			if m, ok := bc[c]; ok {
				minStrength := n
				if m < n {
					minStrength = m
				}
				score += rarity(p.SelectivityOfCode(c, minStrength))
			}
		}
	}
	return score
}

// rarity converts a selectivity into an information weight −ln ψ,
// clamped to avoid infinities on empty statistics.
func rarity(psi float64) float64 {
	if psi <= 0 {
		return 0 // value unseen in statistics: no evidence either way
	}
	if psi >= 1 {
		return 0
	}
	return -math.Log(psi)
}
