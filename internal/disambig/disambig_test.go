package disambig

import (
	"testing"

	"squid/internal/abduction"
	"squid/internal/adb"
	"squid/internal/relation"
)

// titanicDB reproduces the §6.1.1 scenario: several movies share the
// title Titanic; the 1997 one matches the other examples' year range and
// country.
func titanicDB(t *testing.T) *adb.AlphaDB {
	t.Helper()
	db := relation.NewDatabase("titanic")
	country := relation.New("country",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
	).SetPrimaryKey("id")
	country.MustAppend(relation.IntVal(1), relation.StringVal("USA"))
	country.MustAppend(relation.IntVal(2), relation.StringVal("Italy"))
	country.MustAppend(relation.IntVal(3), relation.StringVal("Germany"))
	db.AddRelation(country)
	db.MarkProperty("country")

	movie := relation.New("movie",
		relation.Col("id", relation.Int),
		relation.Col("title", relation.String),
		relation.Col("year", relation.Int),
		relation.Col("country_id", relation.Int),
	).SetPrimaryKey("id").AddForeignKey("country_id", "country", "id")
	rows := []struct {
		id      int64
		title   string
		year    int64
		country int64
	}{
		{1, "Titanic", 1915, 2},
		{2, "Titanic", 1943, 3},
		{3, "Titanic", 1953, 1},
		{4, "Titanic", 1997, 1},
		{5, "Pulp Fiction", 1994, 1},
		{6, "The Matrix", 1999, 1},
	}
	for _, r := range rows {
		movie.MustAppend(relation.IntVal(r.id), relation.StringVal(r.title),
			relation.IntVal(r.year), relation.IntVal(r.country))
	}
	db.AddRelation(movie)
	db.MarkEntity("movie")
	a, err := adb.Build(db, adb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestTitanicDisambiguation: given {Titanic, Pulp Fiction, The Matrix},
// the 1997 Titanic (row 3) must be chosen — closest year, same country.
func TestTitanicDisambiguation(t *testing.T) {
	a := titanicDB(t)
	info := a.Entity("movie")
	candidates := [][]int{
		{0, 1, 2, 3}, // Titanic: 4 possible rows
		{4},          // Pulp Fiction
		{5},          // The Matrix
	}
	got := Resolve(info, candidates, abduction.DefaultParams())
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	if got[0] != 3 {
		t.Errorf("Titanic resolved to row %d (year %v) want row 3 (1997)",
			got[0], info.Rel().Get(got[0], "year"))
	}
	if got[1] != 4 || got[2] != 5 {
		t.Errorf("unambiguous rows changed: %v", got)
	}
}

func TestResolveNoCandidates(t *testing.T) {
	a := titanicDB(t)
	info := a.Entity("movie")
	if got := Resolve(info, nil, abduction.DefaultParams()); got != nil {
		t.Errorf("nil candidates must resolve to nil, got %v", got)
	}
	if got := Resolve(info, [][]int{{1}, {}}, abduction.DefaultParams()); got != nil {
		t.Errorf("an example without candidates must resolve to nil, got %v", got)
	}
}

func TestResolveAllUnambiguous(t *testing.T) {
	a := titanicDB(t)
	info := a.Entity("movie")
	got := Resolve(info, [][]int{{4}, {5}}, abduction.DefaultParams())
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("got %v", got)
	}
}

// TestGreedyFallback forces the combination bound and checks the greedy
// path picks sensible rows too.
func TestGreedyFallback(t *testing.T) {
	a := titanicDB(t)
	info := a.Entity("movie")
	// Build candidate lists whose product exceeds the exhaustive bound:
	// 20 examples each with 4 candidates → 4^20 ≫ bound.
	candidates := make([][]int, 20)
	for i := range candidates {
		if i == 0 {
			candidates[i] = []int{5} // anchor: The Matrix
		} else {
			candidates[i] = []int{0, 1, 2, 3}
		}
	}
	got := newScorer(info).resolveGreedy(candidates)
	if len(got) != 20 {
		t.Fatalf("got %d rows", len(got))
	}
	// Greedy must pick the 1997 Titanic (row 3) as most similar to the
	// 1999 anchor.
	if got[1] != 3 {
		t.Errorf("greedy picked row %d want 3", got[1])
	}
}

func TestPairSimilarityProperties(t *testing.T) {
	a := titanicDB(t)
	info := a.Entity("movie")
	sc := newScorer(info)
	// Symmetry.
	for i := 0; i < info.NumRows; i++ {
		for j := 0; j < info.NumRows; j++ {
			if sc.sim(i, j) != sc.sim(j, i) {
				t.Fatalf("similarity not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// 1997 Titanic is more similar to Pulp Fiction (same country, 3 years
	// apart) than the 1915 Italian one is.
	if sc.sim(3, 4) <= sc.sim(0, 4) {
		t.Error("similarity ordering wrong")
	}
}

// TestScorerCaches checks the pair/self caches return consistent values.
func TestScorerCaches(t *testing.T) {
	a := titanicDB(t)
	info := a.Entity("movie")
	sc := newScorer(info)
	first := sc.sim(2, 4)
	second := sc.sim(4, 2)
	if first != second {
		t.Error("cache broke symmetry")
	}
	if sc.selfWeight(2) != sc.selfWeight(2) {
		t.Error("self-weight cache inconsistent")
	}
	if sc.sim(1, 1) != 0 {
		t.Error("self similarity must be 0")
	}
}
