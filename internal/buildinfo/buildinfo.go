// Package buildinfo reads the binary's build identity once from
// runtime/debug.ReadBuildInfo and serves it to every surface that
// reports it: the squid_build_info gauge on /metrics, the version block
// of GET /v1/stats, and the startup banner of squid-server and
// squid-bench. One source, so the surfaces can never disagree.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Info is the binary's build identity. Fields may be empty when the
// binary was built outside a VCS checkout (e.g. go test binaries):
// consumers render what is present.
type Info struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Version is the main module's version: "(devel)" for source
	// builds, a tag for released module builds.
	Version string `json:"version"`
	// Revision is the VCS commit hash, when stamped.
	Revision string `json:"revision,omitempty"`
	// Modified reports a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
}

var (
	once   sync.Once
	cached Info
)

// Get returns the build identity (computed once, then cached).
func Get() Info {
	once.Do(func() {
		cached = Info{GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		cached.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				cached.Revision = s.Value
			case "vcs.modified":
				cached.Modified = s.Value == "true"
			}
		}
	})
	return cached
}

// String renders a one-line banner, e.g.
// "squid (devel) rev 1a2b3c4d5e6f (go1.22.1)".
func (i Info) String() string {
	s := "squid"
	if i.Version != "" {
		s += " " + i.Version
	}
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if i.Modified {
			s += "+dirty"
		}
	}
	return fmt.Sprintf("%s (%s)", s, i.GoVersion)
}
