package adb

import (
	"sort"
	"time"

	"squid/internal/index"
	"squid/internal/relation"
	"squid/internal/snapshot"
)

// This file persists and restores the αDB through the versioned binary
// codec of internal/snapshot. Everything the offline phase computes is
// serialized — base and derived databases (with their column
// dictionaries), the inverted entity-lookup index, per-property
// statistics, and the sorted numeric indexes — so a warm boot costs one
// sequential read plus O(n) hash-index rebuilds instead of the full
// precomputation. The selectivity cache restarts empty (it is a pure
// memo), and restored systems support incremental inserts exactly like
// freshly built ones.

// Encode writes the current epoch to a snapshot stream (the caller
// owns the header; see squid.System.Save). The epoch is pinned at call
// time, so the snapshot captures every write acknowledged before the
// call — a drain that publishes its final batch and then encodes loses
// nothing — while inserts landing mid-encode are cleanly absent.
func (a *AlphaDB) Encode(w *snapshot.Writer) { a.Snapshot().Encode(w) }

// Encode writes this epoch to a snapshot stream: one immutable state,
// wait-free with respect to concurrent writers. Shared append-only
// structures (dictionaries, the inverted index) are filtered to the
// epoch's row counts so the snapshot never references rows absent from
// the encoded relations.
func (a *Epoch) Encode(w *snapshot.Writer) {
	// The epoch sequence anchors write-ahead-log replay: a booting
	// system skips log records the snapshot already covers (seq ≤ this)
	// and applies the rest, continuing the chain at the exact sequence
	// the log ends on.
	w.Uvarint(a.seq)
	writeConfig(w, a.cfg)
	w.Varint(int64(a.BuildTime))
	snapshot.WriteDatabase(w, a.DB)
	snapshot.WriteDatabase(w, a.DerivedDB)
	a.encodeInverted(w)

	names := make([]string, 0, len(a.Entities))
	for name := range a.Entities {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		writeEntity(w, a.Entities[name])
	}
}

// Decode restores an αDB from a snapshot stream positioned after the
// header. The restored state shares nothing with the stream; hash
// indexes (primary keys, derived entity ids) are rebuilt into a fresh
// IndexSet, and the result is published under the sequence number the
// snapshot recorded, so the epoch chain continues where it left off.
func Decode(r *snapshot.Reader) (*AlphaDB, error) {
	seq := r.Uvarint()
	cfg := readConfig(r)
	buildTime := time.Duration(r.Varint())
	db := snapshot.ReadDatabase(r)
	derived := snapshot.ReadDatabase(r)
	if r.Err() != nil {
		return nil, r.Err()
	}
	a := &Epoch{
		DB:        db,
		Entities:  make(map[string]*EntityInfo),
		Indexes:   index.NewIndexSet(),
		DerivedDB: derived,
		BuildTime: buildTime,
		cfg:       cfg,
		selCache:  NewSelCache(),
		seq:       seq,
	}
	a.decodeInverted(r)
	n := r.Len()
	for i := 0; i < n && r.Err() == nil; i++ {
		info := readEntity(r, a)
		if r.Err() != nil {
			break
		}
		a.Entities[info.Relation] = info
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	a.rowCounts = snapshotRowCounts(db)
	return newAlphaDB(a), nil
}

func writeConfig(w *snapshot.Writer, cfg Config) {
	w.Int(cfg.MaxFactDepth)
	w.Int(cfg.MaxCatDistinct)
	w.Float(cfg.MaxCatRatio)
	w.Int(cfg.Workers)
	writeStringMap(w, cfg.PropertyValueColumn)
	writeStringMap(w, cfg.DisplayColumn)
	keys := sortedKeys(cfg.ExcludeColumns)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.String(k)
		cols := cfg.ExcludeColumns[k]
		w.Uvarint(uint64(len(cols)))
		for _, c := range cols {
			w.String(c)
		}
	}
}

func readConfig(r *snapshot.Reader) Config {
	cfg := Config{
		MaxFactDepth:   r.Int(),
		MaxCatDistinct: r.Int(),
		MaxCatRatio:    r.Float(),
		Workers:        r.Int(),
	}
	cfg.PropertyValueColumn = readStringMap(r)
	cfg.DisplayColumn = readStringMap(r)
	if n := r.Len(); n > 0 {
		cfg.ExcludeColumns = make(map[string][]string, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			k := r.String()
			nc := r.Len()
			cols := make([]string, 0, nc)
			for j := 0; j < nc && r.Err() == nil; j++ {
				cols = append(cols, r.String())
			}
			cfg.ExcludeColumns[k] = cols
		}
	}
	return cfg
}

func writeStringMap(w *snapshot.Writer, m map[string]string) {
	keys := sortedKeys(m)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.String(m[k])
	}
}

func readStringMap(r *snapshot.Reader) map[string]string {
	n := r.Len()
	if n == 0 {
		return nil
	}
	m := make(map[string]string, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.String()
		m[k] = r.String()
	}
	return m
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// encodeInverted writes the inverted index as sorted keys with postings
// referencing base relations/columns by table index, so the on-disk form
// is compact and deterministic.
func (a *Epoch) encodeInverted(w *snapshot.Writer) {
	relNames := a.DB.RelationNames()
	relIdx := make(map[string]int, len(relNames))
	colIdx := make(map[string]map[string]int, len(relNames))
	for i, name := range relNames {
		relIdx[name] = i
		cols := a.DB.Relation(name).ColumnNames()
		m := make(map[string]int, len(cols))
		for j, c := range cols {
			m[c] = j
		}
		colIdx[name] = m
	}
	postings := a.Inverted.PostingsBelow(a.rowLimit)
	keys := sortedKeys(postings)
	w.Uvarint(uint64(len(keys)))
	total := 0
	for _, ps := range postings {
		total += len(ps)
	}
	// Keys, per-key lengths, then the postings as three flat
	// fixed-width blocks — the reader decodes the whole section with
	// four contiguous reads and one backing array.
	lens := make([]int, len(keys))
	ris := make([]int, 0, total)
	cis := make([]int, 0, total)
	rows := make([]int, 0, total)
	for i, key := range keys {
		w.String(key)
		ps := postings[key]
		lens[i] = len(ps)
		for _, p := range ps {
			ris = append(ris, relIdx[p.Relation])
			cis = append(cis, colIdx[p.Relation][p.Column])
			rows = append(rows, p.Row)
		}
	}
	w.Ints(lens)
	w.Ints(ris)
	w.Ints(cis)
	w.Ints(rows)
}

func (a *Epoch) decodeInverted(r *snapshot.Reader) {
	relNames := a.DB.RelationNames()
	colNames := make([][]string, len(relNames))
	for i, name := range relNames {
		colNames[i] = a.DB.Relation(name).ColumnNames()
	}
	n := r.Len()
	keys := make([]string, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		keys[i] = r.String()
	}
	lens := r.Ints()
	ris := r.Ints()
	cis := r.Ints()
	rows := r.Ints()
	if r.Err() != nil {
		return
	}
	total := 0
	for _, l := range lens {
		total += l
	}
	if len(lens) != n || len(ris) != total || len(cis) != total || len(rows) != total {
		r.Fail("inverted payload blocks disagree (%d keys, %d lens, %d/%d/%d postings for total %d)",
			n, len(lens), len(ris), len(cis), len(rows), total)
		return
	}
	postings := make(map[string][]index.Posting, n)
	// One backing array for every posting list: per-key slices are
	// capacity-capped views, so later incremental Inserts copy out
	// instead of clobbering the neighbor list.
	backing := make([]index.Posting, total)
	off := 0
	for i, key := range keys {
		np := lens[i]
		seg := backing[off : off+np : off+np]
		for j := 0; j < np; j++ {
			ri, ci := ris[off+j], cis[off+j]
			if ri >= len(relNames) || ci >= len(colNames[ri]) {
				r.Fail("inverted posting references relation %d column %d out of range", ri, ci)
				return
			}
			seg[j] = index.Posting{Relation: relNames[ri], Column: colNames[ri][ci], Row: rows[off+j]}
		}
		postings[key] = seg
		off += np
	}
	//lint:ignore epochmutate decode-time restore: the epoch under construction is private until newAlphaDB publishes it
	a.Inverted = index.RestoreInverted(postings)
}

func writeAccess(w *snapshot.Writer, ap AccessPath) {
	w.Uvarint(uint64(ap.Type))
	w.String(ap.Column)
	w.String(ap.Fact)
	w.String(ap.FactEntityCol)
	w.String(ap.FactDimCol)
	w.String(ap.Dim)
	w.String(ap.DimPK)
	w.String(ap.DimValueCol)
}

func readAccess(r *snapshot.Reader) AccessPath {
	return AccessPath{
		Type:          PathType(r.Uvarint()),
		Column:        r.String(),
		Fact:          r.String(),
		FactEntityCol: r.String(),
		FactDimCol:    r.String(),
		Dim:           r.String(),
		DimPK:         r.String(),
		DimValueCol:   r.String(),
	}
}

func writeEntity(w *snapshot.Writer, info *EntityInfo) {
	w.String(info.Relation)
	w.String(info.PK)
	w.Int(info.NumRows)
	w.Int64s(info.rowIDs)
	w.Uvarint(uint64(len(info.Basic)))
	for _, p := range info.Basic {
		writeBasic(w, p)
	}
	w.Uvarint(uint64(len(info.Derived)))
	for _, p := range info.Derived {
		writeDerived(w, p)
	}
}

func readEntity(r *snapshot.Reader, a *Epoch) *EntityInfo {
	info := &EntityInfo{
		Relation: r.String(),
		PK:       r.String(),
		NumRows:  r.Int(),
		rowIDs:   r.Int64s(),
	}
	if r.Err() != nil {
		return info
	}
	rel := a.DB.Relation(info.Relation)
	if rel == nil {
		r.Fail("entity %q not present in restored database", info.Relation)
		return info
	}
	info.rel = rel
	info.pkIndex = a.Indexes.IntHash(rel, info.PK)
	nb := r.Len()
	for i := 0; i < nb && r.Err() == nil; i++ {
		p := readBasic(r, a, info)
		if r.Err() == nil {
			info.Basic = append(info.Basic, p)
		}
	}
	nd := r.Len()
	for i := 0; i < nd && r.Err() == nil; i++ {
		p := readDerived(r, a, info)
		if r.Err() == nil {
			info.Derived = append(info.Derived, p)
		}
	}
	info.buildAttrMaps()
	return info
}

func writeBasic(w *snapshot.Writer, p *BasicProperty) {
	w.String(p.Attr)
	w.Uvarint(uint64(p.Kind))
	writeAccess(w, p.Access)
	w.Bool(p.MultiValued)
	w.Int(p.numEntities)
	if p.Kind == Categorical {
		w.Int(p.numValues)
		w.Ints(p.catCounts)
		// Jagged lists flatten to (lengths, payload) block pairs: one
		// contiguous read each on load, sliced back per code/row.
		lens := make([]int, len(p.catRows))
		var flat []int
		for code, rows := range p.catRows {
			lens[code] = len(rows)
			flat = append(flat, rows...)
		}
		w.Ints(lens)
		w.Ints(flat)
		vlens := make([]int, len(p.valsByRow))
		var vflat []int32
		for row, codes := range p.valsByRow {
			vlens[row] = len(codes)
			vflat = append(vflat, codes...)
		}
		w.Ints(vlens)
		w.Int32s(vflat)
		return
	}
	// Numeric: the per-row values as a presence bitmap plus the dense
	// payload, then the two sorted indexes.
	present := make([]bool, len(p.numByRow))
	var vals []float64
	for i, v := range p.numByRow {
		if v != nil {
			present[i] = true
			vals = append(vals, *v)
		}
	}
	w.Bools(present)
	w.Floats(vals)
	w.Floats(p.sorted.RawVals())
	idxVals, idxRows := p.numIdx.RawPairs()
	w.Floats(idxVals)
	w.Ints(idxRows)
}

// sourceColumn resolves the column whose dictionary keys a categorical
// property's statistics, from its access path.
func (a *Epoch) sourceColumn(entityRel *relation.Relation, access AccessPath) *relation.Column {
	switch access.Type {
	case Direct:
		return entityRel.Column(access.Column)
	case FKDim, FactDim:
		if dim := a.DB.Relation(access.Dim); dim != nil {
			return dim.Column(access.DimValueCol)
		}
	case AttrTable:
		if side := a.DB.Relation(access.Fact); side != nil {
			return side.Column(access.Column)
		}
	}
	return nil
}

func readBasic(r *snapshot.Reader, a *Epoch, info *EntityInfo) *BasicProperty {
	p := &BasicProperty{
		Entity: info.Relation,
		Attr:   r.String(),
		Kind:   PropKind(r.Uvarint()),
	}
	p.Access = readAccess(r)
	p.MultiValued = r.Bool()
	p.numEntities = r.Int()
	p.cache = a.selCache
	if r.Err() != nil {
		return p
	}
	if p.Kind == Categorical {
		src := a.sourceColumn(info.rel, p.Access)
		if src == nil || src.Dict() == nil {
			r.Fail("property %s.%s: cannot resolve source dictionary", info.Relation, p.Attr)
			return p
		}
		p.dict = src.Dict()
		p.numValues = r.Int()
		p.catCounts = r.Ints()
		var ok bool
		if p.catRows, ok = sliceJaggedInts(r, r.Ints(), r.Ints()); !ok {
			r.Fail("property %s.%s: catRows payload mismatch", info.Relation, p.Attr)
			return p
		}
		if p.valsByRow, ok = sliceJaggedInt32s(r, r.Ints(), r.Int32s()); !ok {
			r.Fail("property %s.%s: valsByRow payload mismatch", info.Relation, p.Attr)
			return p
		}
		return p
	}
	present := r.Bools()
	vals := r.Floats()
	p.numByRow = make([]*float64, len(present))
	vi := 0
	for i, ok := range present {
		if !ok {
			continue
		}
		if vi >= len(vals) {
			r.Fail("property %s.%s: numeric payload shorter than presence bitmap", info.Relation, p.Attr)
			return p
		}
		// Point into the decoded payload: one backing array, no
		// per-value boxing.
		p.numByRow[i] = &vals[vi]
		vi++
	}
	p.sorted = index.RestoreSorted(r.Floats())
	p.numIdx = index.RestoreNumericRows(r.Floats(), r.Ints())
	return p
}

// sliceJaggedInts rebuilds a jagged [][]int from its flattened
// (lengths, payload) form. Segments are capacity-capped slices of one
// backing array, so later in-place appends (incremental maintenance)
// copy out instead of clobbering the neighbor segment.
func sliceJaggedInts(r *snapshot.Reader, lens, flat []int) ([][]int, bool) {
	if r.Err() != nil {
		return nil, true // defer to the sticky error
	}
	out := make([][]int, len(lens))
	off := 0
	for i, n := range lens {
		if n < 0 || off+n > len(flat) {
			return nil, false
		}
		if n > 0 {
			out[i] = flat[off : off+n : off+n]
		}
		off += n
	}
	return out, off == len(flat)
}

// sliceJaggedInt32s is sliceJaggedInts for int32 payloads.
func sliceJaggedInt32s(r *snapshot.Reader, lens []int, flat []int32) ([][]int32, bool) {
	if r.Err() != nil {
		return nil, true
	}
	out := make([][]int32, len(lens))
	off := 0
	for i, n := range lens {
		if n < 0 || off+n > len(flat) {
			return nil, false
		}
		if n > 0 {
			out[i] = flat[off : off+n : off+n]
		}
		off += n
	}
	return out, off == len(flat)
}

func writeDerived(w *snapshot.Writer, p *DerivedProperty) {
	w.String(p.Attr)
	w.String(p.Via)
	w.String(p.ViaPK)
	w.String(p.Fact1)
	w.String(p.Fact1EntityCol)
	w.String(p.Fact1ViaCol)
	writeAccess(w, p.Target)
	w.String(p.RelName)
	w.Int(p.numEntities)
	// Per-code statistics flatten to four whole-property blocks:
	// lengths, entity rows, counts, and the sorted strength multisets
	// (which ride along so load adopts instead of re-sorting). The
	// multiset of a code always has exactly one entry per (row, count)
	// pair, so the lengths block covers it too.
	lens := make([]int, len(p.perValueRows))
	var rows, counts []int
	var svals []float64
	for code, vcs := range p.perValueRows {
		lens[code] = len(vcs)
		for _, vc := range vcs {
			rows = append(rows, vc.entityRow)
			counts = append(counts, vc.count)
		}
		if s := p.perValue[code]; s != nil {
			svals = append(svals, s.RawVals()...)
		}
	}
	w.Ints(lens)
	w.Ints(rows)
	w.Ints(counts)
	w.Floats(svals)
}

func readDerived(r *snapshot.Reader, a *Epoch, info *EntityInfo) *DerivedProperty {
	p := &DerivedProperty{
		Entity:         info.Relation,
		Attr:           r.String(),
		Via:            r.String(),
		ViaPK:          r.String(),
		Fact1:          r.String(),
		Fact1EntityCol: r.String(),
		Fact1ViaCol:    r.String(),
	}
	p.Target = readAccess(r)
	p.RelName = r.String()
	p.numEntities = r.Int()
	p.cache = a.selCache
	if r.Err() != nil {
		return p
	}
	rel := a.DerivedDB.Relation(p.RelName)
	if rel == nil {
		r.Fail("derived property %s.%s: relation %q missing from restored derived database",
			info.Relation, p.Attr, p.RelName)
		return p
	}
	p.rel = rel
	p.byEntity = a.Indexes.IntHash(rel, "entity_id")
	lens := r.Ints()
	rows := r.Ints()
	counts := r.Ints()
	svals := r.Floats()
	if r.Err() != nil {
		return p
	}
	total := 0
	for _, n := range lens {
		total += n
	}
	if len(rows) != total || len(counts) != total || len(svals) != total {
		r.Fail("derived property %s.%s: payload blocks disagree (%d lens, %d rows, %d counts, %d strengths)",
			info.Relation, p.Attr, total, len(rows), len(counts), len(svals))
		return p
	}
	backing := make([]valCount, total)
	p.perValueRows = make([][]valCount, len(lens))
	p.perValue = make([]*index.Sorted, len(lens))
	off := 0
	for code, n := range lens {
		if n == 0 {
			continue
		}
		seg := backing[off : off+n : off+n]
		for i := 0; i < n; i++ {
			seg[i] = valCount{entityRow: rows[off+i], count: counts[off+i]}
		}
		p.perValueRows[code] = seg
		// Capacity-capped slice of the shared payload: incremental
		// Insert/Replace copy out instead of clobbering the neighbor.
		p.perValue[code] = index.RestoreSorted(svals[off : off+n : off+n])
		off += n
	}
	return p
}
