package adb

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stats summarizes an αDB for the Fig 18 dataset-statistics table.
type Stats struct {
	Name            string
	DBBytes         int64
	NumRelations    int
	PrecomputedSize int64
	BuildTime       time.Duration
	// RelationCards lists (relation, cardinality) for the largest base
	// relations, mirroring the "Rel. Card." rows of Fig 18.
	RelationCards  []RelCard
	NumDerivedRels int
	DerivedRows    int
	NumBasicProps  int
	NumDerivedProp int

	// Online-pipeline surfaces: materialized hash indexes in the shared
	// pool and the selectivity-cache health counters.
	NumHashIndexes  int
	SelCacheEntries int
	SelCacheHits    uint64
	SelCacheMisses  uint64
	// Cached-row-set memory: resident bytes under the adaptive
	// sparse/dense representation, and what the same sets would cost as
	// dense-only bitsets (the scale track's memory baseline).
	SelCacheRowSetBytes int64
	SelCacheDenseBytes  int64
	// Form composition of the cached sets (diagnoses a savings ratio
	// near 1.0x: many dense entries mean the cached filters genuinely
	// are dense, not that adaptation failed).
	SelCacheSparseSets int
	SelCacheDenseSets  int

	// Epoch-chain health: the pinned epoch's sequence number and age,
	// plus the cumulative publish/combine counters (a combine is a
	// publish that merged a concurrent disjoint writer's epoch).
	EpochSeq       uint64
	EpochAgeSec    float64
	EpochPublishes uint64
	EpochCombines  uint64

	// Epoch-chain GC telemetry: retired epochs not yet collected and
	// the estimated bytes of replaced relation versions they pin.
	EpochRetired       int64
	EpochRetainedBytes int64
}

// RelCard pairs a relation name with its row count.
type RelCard struct {
	Relation string
	Rows     int
}

// ComputeStats gathers the Fig 18 statistics from one pinned epoch: a
// single atomic snapshot, no lock, every field from the same state —
// safe and wait-free concurrently with inserts.
func (a *AlphaDB) ComputeStats() Stats {
	ep := a.Snapshot()
	s := ep.ComputeStats()
	s.EpochPublishes = a.publishes.Load()
	s.EpochCombines = a.combines.Load()
	s.EpochRetired = a.retired.Load()
	s.EpochRetainedBytes = a.retainedBytes.Load()
	return s
}

// ComputeStats gathers the Fig 18 statistics of this epoch. The
// publish/combine counters live on the handle (AlphaDB.ComputeStats
// fills them); here they stay zero.
func (a *Epoch) ComputeStats() Stats {
	s := Stats{
		Name:            a.DB.Name,
		DBBytes:         a.DB.ByteSize(),
		NumRelations:    a.DB.NumRelations(),
		PrecomputedSize: a.DerivedDB.ByteSize(),
		BuildTime:       a.BuildTime,
		NumDerivedRels:  a.DerivedDB.NumRelations(),
		EpochSeq:        a.seq,
		EpochAgeSec:     time.Since(a.publishedAt).Seconds(),
	}
	for _, n := range a.DerivedDB.RelationNames() {
		s.DerivedRows += a.DerivedDB.Relation(n).NumRows()
	}
	for _, n := range a.DB.RelationNames() {
		s.RelationCards = append(s.RelationCards, RelCard{n, a.DB.Relation(n).NumRows()})
	}
	sort.Slice(s.RelationCards, func(i, j int) bool { return s.RelationCards[i].Rows > s.RelationCards[j].Rows })
	if len(s.RelationCards) > 3 {
		s.RelationCards = s.RelationCards[:3]
	}
	for _, e := range a.Entities {
		s.NumBasicProps += len(e.Basic)
		s.NumDerivedProp += len(e.Derived)
	}
	s.NumHashIndexes = a.Indexes.NumIndexes()
	s.SelCacheEntries = a.selCache.Len()
	s.SelCacheHits, s.SelCacheMisses = a.selCache.Metrics()
	s.SelCacheRowSetBytes, s.SelCacheDenseBytes = a.selCache.RowSetBytes()
	s.SelCacheSparseSets, s.SelCacheDenseSets = a.selCache.RowSetForms()
	return s
}

// String renders the stats block in the layout of Fig 18.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Name)
	fmt.Fprintf(&b, "  DB size              %s\n", humanBytes(s.DBBytes))
	fmt.Fprintf(&b, "  #Relations           %d\n", s.NumRelations)
	fmt.Fprintf(&b, "  Precomputed DB size  %s (%d derived relations, %d rows)\n",
		humanBytes(s.PrecomputedSize), s.NumDerivedRels, s.DerivedRows)
	fmt.Fprintf(&b, "  Precomputation time  %v\n", s.BuildTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "  Properties           %d basic, %d derived\n", s.NumBasicProps, s.NumDerivedProp)
	fmt.Fprintf(&b, "  Hash indexes         %d\n", s.NumHashIndexes)
	fmt.Fprintf(&b, "  Selectivity cache    %d entries (%d hits, %d misses)\n",
		s.SelCacheEntries, s.SelCacheHits, s.SelCacheMisses)
	fmt.Fprintf(&b, "  Cached row sets      %s resident (dense-only would be %s; %d sparse, %d dense)\n",
		humanBytes(s.SelCacheRowSetBytes), humanBytes(s.SelCacheDenseBytes),
		s.SelCacheSparseSets, s.SelCacheDenseSets)
	for _, rc := range s.RelationCards {
		fmt.Fprintf(&b, "  Rel. Card.           %-14s %d\n", rc.Relation, rc.Rows)
	}
	return b.String()
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
