package adb

import (
	"fmt"
	"sync"
	"testing"

	"squid/internal/relation"
)

// TestEpochSnapshotIsolation is the acceptance check of the
// copy-on-write scheme: a reader that pinned an epoch before an insert
// batch must never observe the new rows — not through the relations,
// not through the property statistics, and not through the shared
// inverted index — while a reader pinning afterwards sees all of them.
func TestEpochSnapshotIsolation(t *testing.T) {
	a := buildFixture(t)
	pre := a.Snapshot()
	preRows := pre.Entity("person").NumRows
	preSel := pre.Entity("person").BasicByAttr("gender").CategoricalSelectivity("Male")
	if n := len(pre.InvertedLookup("fresh face")); n != 0 {
		t.Fatalf("pre epoch already sees %d postings", n)
	}
	seq0 := pre.Seq()

	err := a.InsertBatch([]InsertOp{
		{Rel: "person", Vals: []relation.Value{
			relation.IntVal(7), relation.StringVal("Fresh Face"),
			relation.StringVal("Male"), relation.IntVal(33), relation.IntVal(1)}},
		{Rel: "castinfo", Vals: []relation.Value{relation.IntVal(7), relation.IntVal(13)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	post := a.Snapshot()
	if post.Seq() != seq0+1 {
		t.Errorf("epoch seq %d want %d", post.Seq(), seq0+1)
	}

	// The retired epoch is frozen: row counts, statistics, lookups.
	if got := pre.Entity("person").NumRows; got != preRows {
		t.Errorf("pre epoch rows moved: %d want %d", got, preRows)
	}
	if got := pre.Entity("person").Rel().NumRows(); got != preRows {
		t.Errorf("pre epoch relation rows moved: %d want %d", got, preRows)
	}
	if got := pre.Entity("person").BasicByAttr("gender").CategoricalSelectivity("Male"); got != preSel {
		t.Errorf("pre epoch ψ(Male) moved: %v want %v", got, preSel)
	}
	if n := len(pre.InvertedLookup("fresh face")); n != 0 {
		t.Errorf("pre epoch sees %d postings for the new name", n)
	}
	if m := pre.CommonColumns([]string{"Fresh Face"}); len(m) != 0 {
		t.Errorf("pre epoch resolves the new example: %v", m)
	}

	// The new epoch sees everything, atomically.
	if got := post.Entity("person").NumRows; got != preRows+1 {
		t.Errorf("post epoch rows %d want %d", got, preRows+1)
	}
	if n := len(post.InvertedLookup("fresh face")); n != 1 {
		t.Errorf("post epoch postings = %d want 1", n)
	}
	if got := post.Entity("person").DerivedByAttr("movie:genre").Counts(7)["Drama"]; got != 1 {
		t.Errorf("post epoch derived count = %d want 1", got)
	}
	rebuildAndCompare(t, a)
}

// TestDisjointInsertsDoNotBlock proves the per-relation writer
// coordination: while the movie relation's writer lock is held, an
// insert into person completes (disjoint domains — it would deadlock
// the test otherwise), and the epoch combiner chains both writers'
// publishes.
func TestDisjointInsertsDoNotBlock(t *testing.T) {
	a := buildFixture(t)
	// Simulate an in-flight movie writer by holding its domain lock.
	a.writeMu["movie"].Lock()
	err := a.InsertEntity("person",
		relation.IntVal(7), relation.StringVal("Unblocked Actor"),
		relation.StringVal("Female"), relation.IntVal(41), relation.IntVal(2))
	a.writeMu["movie"].Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Entity("person").NumRows; got != 7 {
		t.Errorf("person rows = %d want 7", got)
	}

	// A castinfo fact references both person and movie: its domain must
	// cover them (and the second-hop movietogenre fact of the derived
	// genre walk), so it conflicts with writers of either entity.
	domain := a.domains["castinfo"]
	want := map[string]bool{"castinfo": true, "person": true, "movie": true, "movietogenre": true}
	if len(domain) != len(want) {
		t.Fatalf("castinfo domain = %v want %v", domain, want)
	}
	for _, k := range domain {
		if !want[k] {
			t.Fatalf("castinfo domain = %v want %v", domain, want)
		}
	}
}

// TestDisjointInsertBatchesParallel hammers disjoint-relation writers
// concurrently (person vs movie entity inserts) with readers pinning
// epochs mid-flight; under -race it proves writers of disjoint
// relations need no mutual serialization, and afterwards it checks the
// combined chain: every batch published exactly one epoch, all rows
// landed, and the incrementally maintained statistics match a fresh
// rebuild.
func TestDisjointInsertBatchesParallel(t *testing.T) {
	a := buildFixture(t)
	const perWriter = 24
	var wg sync.WaitGroup
	errs := make([]error, 2)
	start := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < perWriter; i++ {
			id := int64(100 + i)
			if err := a.InsertBatch([]InsertOp{{Rel: "person", Vals: []relation.Value{
				relation.IntVal(id), relation.StringVal(fmt.Sprintf("Person %d", id)),
				relation.StringVal("Female"), relation.IntVal(30 + int64(i)), relation.IntVal(1)}}}); err != nil {
				errs[0] = err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < perWriter; i++ {
			id := int64(500 + i)
			if err := a.InsertBatch([]InsertOp{{Rel: "movie", Vals: []relation.Value{
				relation.IntVal(id), relation.StringVal(fmt.Sprintf("Indie %d", id)),
				relation.IntVal(1990 + int64(i))}}}); err != nil {
				errs[1] = err
				return
			}
		}
	}()
	// Readers pin epochs concurrently; their view must always be a
	// prefix-consistent snapshot (never a torn row count).
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ep := a.Snapshot()
			info := ep.Entity("person")
			if info.NumRows != info.Rel().NumRows() || info.NumRows != len(ep.Entity("person").rowIDs) {
				errs = append(errs, fmt.Errorf("torn epoch: info %d rel %d", info.NumRows, info.Rel().NumRows()))
				return
			}
		}
	}()
	close(start)
	wg.Wait()
	close(stop)
	rwg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got := a.Entity("person").NumRows; got != 6+perWriter {
		t.Errorf("person rows = %d want %d", got, 6+perWriter)
	}
	if got := a.Entity("movie").NumRows; got != 6+perWriter {
		t.Errorf("movie rows = %d want %d", got, 6+perWriter)
	}
	es := a.EpochStats()
	if es.Publishes != 2*perWriter {
		t.Errorf("publishes = %d want %d (one per batch)", es.Publishes, 2*perWriter)
	}
	if es.Seq != 2*perWriter {
		t.Errorf("seq = %d want %d", es.Seq, 2*perWriter)
	}
	rebuildAndCompare(t, a)
}

// TestRejectedInsertPublishesNothing regresses two review findings: a
// rejected row (type mismatch, arity, duplicate key) must not publish
// a data-identical epoch, and — because rows validate atomically
// before any cell is written — must not leave a ragged column that
// would shift every later value of that column by one.
func TestRejectedInsertPublishesNothing(t *testing.T) {
	a := buildFixture(t)
	seq0 := a.EpochStats().Seq
	pub0 := a.EpochStats().Publishes

	// Type mismatch mid-row: castinfo is (int, int).
	if err := a.InsertFact("castinfo", relation.IntVal(3), relation.StringVal("oops")); err == nil {
		t.Fatal("type-mismatched fact insert must fail")
	}
	// Arity mismatch and duplicate key on the entity path.
	if err := a.InsertEntity("person", relation.IntVal(8)); err == nil {
		t.Fatal("arity-mismatched entity insert must fail")
	}
	if err := a.InsertEntity("person",
		relation.IntVal(1), relation.StringVal("Dup"),
		relation.StringVal("Male"), relation.IntVal(40), relation.IntVal(1)); err == nil {
		t.Fatal("duplicate-key entity insert must fail")
	}
	if es := a.EpochStats(); es.Seq != seq0 || es.Publishes != pub0 {
		t.Errorf("rejected inserts published epochs: seq %d->%d publishes %d->%d",
			seq0, es.Seq, pub0, es.Publishes)
	}

	// A valid fact insert after the rejected one must land unshifted:
	// person 3 (row 2) gains Drama movie 13, and the fact row decodes
	// to exactly the values inserted.
	if err := a.InsertFact("castinfo", relation.IntVal(3), relation.IntVal(13)); err != nil {
		t.Fatal(err)
	}
	ep := a.Snapshot()
	fact := ep.DB.Relation("castinfo")
	last := fact.NumRows() - 1
	if p, m := fact.Column("person_id").Int64(last), fact.Column("movie_id").Int64(last); p != 3 || m != 13 {
		t.Errorf("fact row shifted: got (%d,%d) want (3,13)", p, m)
	}
	if got := ep.Entity("person").DerivedByAttr("movie:genre").Counts(3)["Drama"]; got != 1 {
		t.Errorf("derived Drama count = %d want 1", got)
	}
	rebuildAndCompare(t, a)
}
