package adb

import (
	"fmt"
	"reflect"
	"testing"

	"squid/internal/relation"
)

// alphaFingerprint captures everything discovery-visible about an αDB:
// entity property lists (names, kinds, access paths), per-value
// statistics, derived relation names and contents. Two builds with the
// same input must produce identical fingerprints regardless of the
// worker count.
func alphaFingerprint(a *AlphaDB) string {
	out := ""
	for _, name := range a.DB().EntityRelations() {
		info := a.Entity(name)
		out += fmt.Sprintf("entity %s rows=%d\n", name, info.NumRows)
		for _, p := range info.Basic {
			out += fmt.Sprintf("  basic %s kind=%d multi=%v access=%+v distinct=%d vals=%v\n",
				p.Attr, p.Kind, p.MultiValued, p.Access, p.NumDistinct(), p.DistinctValues())
			for _, v := range p.DistinctValues() {
				out += fmt.Sprintf("    %q -> %v\n", v, p.EntityRowsWithValue(v))
			}
		}
		for _, p := range info.Derived {
			out += fmt.Sprintf("  derived %s rel=%s via=%s target=%+v\n", p.Attr, p.RelName, p.Via, p.Target)
			for _, v := range p.DistinctValues() {
				out += fmt.Sprintf("    %q -> %v max=%d\n", v, p.ValueEntries(v), p.MaxStrength(v))
			}
		}
	}
	for _, name := range a.Snapshot().DerivedDB.RelationNames() {
		rel := a.Snapshot().DerivedDB.Relation(name)
		out += fmt.Sprintf("derivedrel %s rows=%d\n", name, rel.NumRows())
		for i := 0; i < rel.NumRows(); i++ {
			out += fmt.Sprintf("  %v\n", rel.Row(i))
		}
	}
	return out
}

// TestParallelBuildDeterministic asserts the parallel offline build is
// byte-identical to the serial one across several worker counts.
func TestParallelBuildDeterministic(t *testing.T) {
	cfgAt := func(workers int) Config {
		cfg := DefaultConfig()
		cfg.Workers = workers
		return cfg
	}
	serial, err := Build(fixtureDB(), cfgAt(1))
	if err != nil {
		t.Fatal(err)
	}
	want := alphaFingerprint(serial)
	for _, workers := range []int{2, 4, 8, 0} {
		par, err := Build(fixtureDB(), cfgAt(workers))
		if err != nil {
			t.Fatal(err)
		}
		if got := alphaFingerprint(par); got != want {
			t.Errorf("workers=%d: αDB diverged from serial build\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, want, got)
		}
	}
}

// TestParallelBuildInvertedIdentical asserts the sharded inverted-index
// build preserves posting order exactly.
func TestParallelBuildInvertedIdentical(t *testing.T) {
	serial, err := Build(fixtureDB(), Config{MaxFactDepth: 2, MaxCatDistinct: 1000, MaxCatRatio: 0.5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Build(fixtureDB(), Config{MaxFactDepth: 2, MaxCatDistinct: 1000, MaxCatRatio: 0.5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []string{"Tom Cruise", "Comedy", "USA", "MovieA", "male"} {
		s := serial.Snapshot().InvertedLookup(probe)
		p := parallel.Snapshot().InvertedLookup(probe)
		if !reflect.DeepEqual(s, p) {
			t.Errorf("postings for %q diverged: serial %v parallel %v", probe, s, p)
		}
	}
	if serial.Snapshot().Inverted.NumKeys() != parallel.Snapshot().Inverted.NumKeys() {
		t.Errorf("key counts diverged: %d vs %d", serial.Snapshot().Inverted.NumKeys(), parallel.Snapshot().Inverted.NumKeys())
	}
}

// TestBuildWorkersPreservedWithZeroDepth asserts the zero-value config
// upgrade to DefaultConfig keeps an explicit worker count.
func TestBuildWorkersPreservedWithZeroDepth(t *testing.T) {
	a, err := Build(fixtureDB(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Config().Workers; got != 1 {
		t.Errorf("Workers=%d after default upgrade, want 1", got)
	}
	if got := a.Config().MaxFactDepth; got != 2 {
		t.Errorf("MaxFactDepth=%d after default upgrade, want 2", got)
	}
}

// TestDictionaryEncodingReducesBytes sanity-checks the storage layer
// claim behind the ISSUE acceptance: dictionary-encoded TEXT columns
// report a smaller footprint than 16-bytes-per-header string storage
// when values repeat.
func TestDictionaryEncodingReducesBytes(t *testing.T) {
	col := relation.NewColumn("cat", relation.String)
	for i := 0; i < 10000; i++ {
		if err := col.Append(relation.StringVal(fmt.Sprintf("value-%d", i%8))); err != nil {
			t.Fatal(err)
		}
	}
	// Dense storage: 4 bytes per row plus a tiny dictionary.
	if got, naive := col.ByteSize(), int64(10000*16); got >= naive {
		t.Errorf("dictionary-encoded ByteSize=%d, want well under naive %d", got, naive)
	}
	if col.Dict().Len() != 8 {
		t.Errorf("dict size=%d want 8", col.Dict().Len())
	}
}
