package adb

import (
	"testing"

	"squid/internal/relation"
)

// TestSelfReferencingFact: a fact table linking an entity to itself
// (movie sequels) must build derived properties without infinite loops.
func TestSelfReferencingFact(t *testing.T) {
	db := relation.NewDatabase("selfref")
	movie := relation.New("movie",
		relation.Col("id", relation.Int),
		relation.Col("title", relation.String),
		relation.Col("kind", relation.String),
	).SetPrimaryKey("id")
	for i := int64(0); i < 6; i++ {
		kind := "feature"
		if i%2 == 0 {
			kind = "short"
		}
		movie.MustAppend(relation.IntVal(i), relation.StringVal("M"+string(rune('A'+i))), relation.StringVal(kind))
	}
	db.AddRelation(movie)
	db.MarkEntity("movie")

	sequel := relation.New("sequelof",
		relation.Col("movie_id", relation.Int),
		relation.Col("original_id", relation.Int),
	).AddForeignKey("movie_id", "movie", "id").AddForeignKey("original_id", "movie", "id")
	sequel.MustAppend(relation.IntVal(1), relation.IntVal(0))
	sequel.MustAppend(relation.IntVal(2), relation.IntVal(0))
	sequel.MustAppend(relation.IntVal(3), relation.IntVal(2))
	db.AddRelation(sequel)

	a, err := Build(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info := a.Entity("movie")
	// Both directions of the self-edge yield derived properties.
	if len(info.Derived) == 0 {
		t.Error("self-referencing fact produced no derived properties")
	}
	// Both directions get their own qualified degree property: the
	// sequels-of-a-movie direction (via original_id) must count movie
	// 0's two sequels.
	degA := info.DerivedByAttr("movie_movie_id:count")
	degB := info.DerivedByAttr("movie_original_id:count")
	if degA == nil || degB == nil {
		t.Fatalf("self-association degrees missing; have %v", attrNames(info))
	}
	counted := false
	for _, deg := range []*DerivedProperty{degA, degB} {
		if got := deg.Counts(0); got["movie"] == 2 {
			counted = true
		}
	}
	if !counted {
		t.Error("movie 0 has 2 sequels; one direction's degree should count them")
	}
}

// TestDanglingForeignKeys: fact rows referencing missing entities are
// skipped, not fatal (dirty-data resilience).
func TestDanglingForeignKeys(t *testing.T) {
	db := relation.NewDatabase("dangling")
	person := relation.New("person",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
	).SetPrimaryKey("id")
	person.MustAppend(relation.IntVal(1), relation.StringVal("A"))
	person.MustAppend(relation.IntVal(2), relation.StringVal("B"))
	db.AddRelation(person)
	db.MarkEntity("person")

	genre := relation.New("genre",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
	).SetPrimaryKey("id")
	genre.MustAppend(relation.IntVal(1), relation.StringVal("Comedy"))
	db.AddRelation(genre)
	db.MarkProperty("genre")

	fact := relation.New("persontogenre_raw",
		relation.Col("person_id", relation.Int),
		relation.Col("genre_id", relation.Int),
	).AddForeignKey("person_id", "person", "id").AddForeignKey("genre_id", "genre", "id")
	fact.MustAppend(relation.IntVal(1), relation.IntVal(1))
	fact.MustAppend(relation.IntVal(99), relation.IntVal(1)) // dangling person
	fact.MustAppend(relation.IntVal(2), relation.IntVal(77)) // dangling genre
	fact.MustAppend(relation.IntVal(1), relation.Null)       // NULL FK
	db.AddRelation(fact)

	a, err := Build(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := a.Entity("person").BasicByAttr("genre")
	if p == nil {
		t.Fatal("fact-dim property missing")
	}
	if got := p.CategoricalSelectivity("Comedy"); got != 0.5 {
		t.Errorf("dangling rows must be skipped: ψ=%v want 0.5", got)
	}
}

// TestEmptyRelations: empty entity and fact relations build cleanly.
func TestEmptyRelations(t *testing.T) {
	db := relation.NewDatabase("empty")
	person := relation.New("person",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
	).SetPrimaryKey("id")
	db.AddRelation(person)
	db.MarkEntity("person")
	fact := relation.New("f",
		relation.Col("person_id", relation.Int),
		relation.Col("other_id", relation.Int),
	).AddForeignKey("person_id", "person", "id").AddForeignKey("other_id", "person", "id")
	db.AddRelation(fact)

	a, err := Build(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info := a.Entity("person")
	if info.NumRows != 0 {
		t.Error("empty entity should have zero rows")
	}
	// Selectivity on empty statistics must not divide by zero.
	for _, p := range info.Basic {
		if p.Kind == Categorical {
			if s := p.CategoricalSelectivity("x"); s != 0 {
				t.Errorf("empty ψ=%v", s)
			}
		}
	}
}

// TestWideFactTable: a fact with three entity FKs (castinfo with person,
// movie, role-as-entity) builds pairwise derived properties for every
// entity pair without duplication blowups.
func TestWideFactTable(t *testing.T) {
	db := relation.NewDatabase("wide")
	for _, name := range []string{"a", "b", "c"} {
		e := relation.New(name,
			relation.Col("id", relation.Int),
			relation.Col("name", relation.String),
		).SetPrimaryKey("id")
		for i := int64(0); i < 4; i++ {
			e.MustAppend(relation.IntVal(i), relation.StringVal(name+"-"+string(rune('0'+i))))
		}
		db.AddRelation(e)
		db.MarkEntity(name)
	}
	fact := relation.New("f",
		relation.Col("a_id", relation.Int),
		relation.Col("b_id", relation.Int),
		relation.Col("c_id", relation.Int),
	).AddForeignKey("a_id", "a", "id").AddForeignKey("b_id", "b", "id").AddForeignKey("c_id", "c", "id")
	for i := int64(0); i < 4; i++ {
		fact.MustAppend(relation.IntVal(i), relation.IntVal((i+1)%4), relation.IntVal((i+2)%4))
	}
	db.AddRelation(fact)

	a, err := Build(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Each entity gets derived properties toward both of the other two.
	for _, name := range []string{"a", "b", "c"} {
		info := a.Entity(name)
		kinds := map[string]bool{}
		for _, d := range info.Derived {
			kinds[d.Via] = true
		}
		if len(kinds) != 2 {
			t.Errorf("entity %s: derived toward %v, want both partners", name, kinds)
		}
	}
}

// TestAllNullColumn: a column of only NULLs is skipped as a property.
func TestAllNullColumn(t *testing.T) {
	db := relation.NewDatabase("nulls")
	person := relation.New("person",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("age", relation.Int),
	).SetPrimaryKey("id")
	for i := int64(0); i < 3; i++ {
		person.MustAppend(relation.IntVal(i), relation.StringVal("P"+string(rune('0'+i))), relation.Null)
	}
	db.AddRelation(person)
	db.MarkEntity("person")
	a, err := Build(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Entity("person").BasicByAttr("age") != nil {
		t.Error("all-NULL numeric column must not become a property")
	}
}
