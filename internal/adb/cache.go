package adb

import (
	"sync"
	"sync/atomic"
)

// SelKey identifies one selectivity / satisfying-row-set question about
// a property: the property identity plus the filter operands. Keys are
// comparable structs so cache lookups allocate nothing.
type SelKey struct {
	// Prop is the *BasicProperty or *DerivedProperty identity.
	Prop any
	// Value is the categorical value ("" for numeric ranges); for
	// disjunctions the values are joined with '\x00'.
	Value string
	// Lo, Hi bound numeric range filters; normalized derived
	// thresholds (θn) are carried in Lo with Theta set to the -1
	// sentinel.
	Lo, Hi float64
	// Theta is the absolute derived association-strength threshold;
	// -1 marks a normalized-threshold key (θn lives in Lo).
	Theta int
}

// SelCache memoizes satisfying-entity row sets across discoveries
// (§5's "smart selectivity computation" made persistent): the row sets
// back every selectivity question that is not already a precomputed
// O(1)/O(log n) statistic (disjunctions, numeric ranges, normalized
// derived thresholds), so concurrent batches of similar intents cost
// one map read instead of a posting walk per repeated filter. Cached
// row slices are shared — callers must treat them as immutable,
// exactly like the αDB posting lists they memoize.
//
// The cache is guarded by an RWMutex and carries a generation counter:
// incremental inserts bump the generation, which atomically discards
// every stale entry (statistics shift on insert, so per-entry patching
// is not worth the bookkeeping).
type SelCache struct {
	mu   sync.RWMutex
	rows map[SelKey][]int
	gen  uint64

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewSelCache creates an empty cache.
func NewSelCache() *SelCache {
	return &SelCache{rows: make(map[SelKey][]int)}
}

// Rows returns the memoized satisfying-row set for key, computing and
// storing it on a miss. The returned slice is shared: do not mutate.
func (c *SelCache) Rows(key SelKey, compute func() []int) []int {
	if c == nil {
		return compute()
	}
	c.mu.RLock()
	rows, ok := c.rows[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return rows
	}
	c.misses.Add(1)
	rows = compute()
	c.mu.Lock()
	c.rows[key] = rows
	c.mu.Unlock()
	return rows
}

// Invalidate discards every entry and bumps the generation; called by
// the αDB after each incremental insert.
func (c *SelCache) Invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.rows = make(map[SelKey][]int)
	c.gen++
	c.mu.Unlock()
}

// Generation returns the invalidation counter (tests assert it moves).
func (c *SelCache) Generation() uint64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// Len returns the number of live row-set entries.
func (c *SelCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rows)
}

// Metrics reports cumulative hit/miss counts (monitoring surface for
// the batch API).
func (c *SelCache) Metrics() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
