package adb

import (
	"sync"
	"sync/atomic"

	"squid/internal/index"
	"squid/internal/trace"
)

// SelKey identifies one selectivity / satisfying-row-set question about
// a property: the property identity plus the filter operands. Keys are
// comparable structs so cache lookups allocate nothing.
type SelKey struct {
	// Prop is the *BasicProperty or *DerivedProperty identity.
	Prop any
	// Value is the categorical value ("" for numeric ranges); for
	// disjunctions it is the canonical sorted, length-prefixed join of
	// the value set (see disjunctionKey).
	Value string
	// Lo, Hi bound numeric range filters; normalized derived
	// thresholds (θn) are carried in Lo with Theta set to the -1
	// sentinel.
	Lo, Hi float64
	// Theta is the absolute derived association-strength threshold;
	// -1 marks a normalized-threshold key (θn lives in Lo).
	Theta int
}

// SelCache memoizes satisfying-entity row sets across discoveries
// (§5's "smart selectivity computation" made persistent): the row sets
// back every selectivity question that is not already a precomputed
// O(1)/O(log n) statistic (disjunctions, numeric ranges, normalized
// derived thresholds), so concurrent batches of similar intents cost
// one map read instead of a posting walk per repeated filter. Row sets
// are stored as adaptive index.RowSets — sorted-array form for the
// highly-selective sets abduction favors (a few bytes per member even
// over million-row universes), bitset form for the dense ones, with
// form-aware intersection downstream. Cached sets are shared —
// callers must treat them as immutable, exactly like the αDB posting
// lists they memoize, and Clone before mutating.
//
// One cache is shared by every epoch of an αDB, and keys carry the
// property identity — which under copy-on-write epochs IS the epoch
// pin: an insert that shifts a property's statistics produces a fresh
// clone with a fresh pointer, so the new epoch's lookups can never hit
// an entry computed against the retired statistics, and a discovery
// still pinning the retired epoch keeps hitting exactly the entries
// that match what it sees. Properties untouched by an insert keep
// their identity across epochs and their entries stay warm — the
// sustained-ingest workload never pays a stop-the-world wipe. Because
// a property's statistics are immutable for the lifetime of its
// pointer, there is no store/invalidate race to guard against: every
// computed result is valid forever for its key.
//
// The cache tracks which property identities are live (registered at
// build/load, swapped at every epoch publish): Rows only stores under
// a live identity. A reader still pinned to a retired epoch keeps
// getting correct computed answers for its retired properties — they
// just aren't memoized anymore — so retired identities can never
// re-enter the cache after their eviction sweep and linger
// unreclaimed, while stores for live (untouched) properties are never
// dropped, no matter how fast writers publish. The live set's size is
// bounded by the current property count.
type SelCache struct {
	mu   sync.RWMutex
	rows map[SelKey]*index.RowSet
	// keys indexes the cached entries by property, so InvalidateProps
	// deletes exactly one property's entries instead of sweeping the
	// whole map. A key may appear more than once after re-stores; the
	// deletes are idempotent.
	keys map[any][]SelKey
	// live holds the property identities of the current epoch; only
	// they may store. Maintained by Register (build/load) and
	// ReplaceProps (epoch publish).
	live map[any]struct{}
	// gen counts invalidation events cache-wide (monitoring surface;
	// tests assert it moves when an epoch retires properties).
	gen uint64

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewSelCache creates an empty cache.
func NewSelCache() *SelCache {
	return &SelCache{
		rows: make(map[SelKey]*index.RowSet),
		keys: make(map[any][]SelKey),
		live: make(map[any]struct{}),
	}
}

// Register marks property identities as live (storable); called once
// per property at αDB build/load, and by ReplaceProps for clones.
func (c *SelCache) Register(props ...any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	for _, p := range props {
		c.live[p] = struct{}{}
	}
	c.mu.Unlock()
}

// RowSet returns the memoized satisfying-row bitset for key, computing
// and storing it on a miss. The returned set is shared: do not mutate
// (Clone first).
func (c *SelCache) RowSet(key SelKey, compute func() *index.RowSet) *index.RowSet {
	return c.RowSetT(key, trace.Span{}, compute)
}

// RowSetT is RowSet with per-request attribution: every cache event —
// hit, miss, store — bumps the corresponding counter on sp in addition
// to the cache-wide totals, so a trace can say which phase paid for
// which cache behavior. The zero Span makes it exactly RowSet.
func (c *SelCache) RowSetT(key SelKey, sp trace.Span, compute func() *index.RowSet) *index.RowSet {
	if c == nil {
		return compute()
	}
	c.mu.RLock()
	set, ok := c.rows[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		sp.Add(trace.CounterCacheHits, 1)
		return set
	}
	c.misses.Add(1)
	sp.Add(trace.CounterCacheMisses, 1)
	set = compute()
	// The stored set is frozen from here on; drop the append-growth
	// slack it accumulated while being computed.
	set.Compact()
	c.mu.Lock()
	// Store only under a live identity: a retired property (its epoch
	// already superseded) must not re-enter the cache after its sweep.
	if _, isLive := c.live[key.Prop]; isLive {
		c.rows[key] = set
		c.keys[key.Prop] = append(c.keys[key.Prop], key)
		sp.Add(trace.CounterCacheStores, 1)
	}
	c.mu.Unlock()
	return set
}

// Rows is the sorted-[]int view of RowSet, kept for callers that speak
// the posting-list format: on a miss, compute's result is converted to
// a bitset for storage; hits decode the cached bitset and never invoke
// compute. The returned slice is freshly decoded and owned by the
// caller.
func (c *SelCache) Rows(key SelKey, compute func() []int) []int {
	if c == nil {
		return compute()
	}
	return c.RowSet(key, func() *index.RowSet {
		return index.RowSetFromSorted(compute())
	}).ToSorted()
}

// InvalidateProps retires the given property identities: their cached
// entries are discarded and they lose the right to store new ones.
func (c *SelCache) InvalidateProps(props ...any) {
	c.ReplaceProps(props, nil)
}

// ReplaceProps is the epoch publish hook: the retired identities'
// entries are evicted and de-registered (they can never store again),
// and their clones — carrying the shifted statistics under fresh
// identities — become live in one critical section.
func (c *SelCache) ReplaceProps(retired, admitted []any) {
	if c == nil || (len(retired) == 0 && len(admitted) == 0) {
		return
	}
	c.mu.Lock()
	for _, p := range retired {
		for _, k := range c.keys[p] {
			delete(c.rows, k)
		}
		delete(c.keys, p)
		delete(c.live, p)
	}
	for _, p := range admitted {
		c.live[p] = struct{}{}
	}
	if len(retired) > 0 {
		c.gen++
	}
	c.mu.Unlock()
}

// Invalidate discards every entry; kept for whole-αDB resets where
// per-property attribution is unavailable.
func (c *SelCache) Invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.rows = make(map[SelKey]*index.RowSet)
	c.keys = make(map[any][]SelKey)
	c.gen++
	c.mu.Unlock()
}

// Generation returns the cache-wide invalidation event counter (tests
// assert it moves when inserts retire properties).
func (c *SelCache) Generation() uint64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// Len returns the number of live row-set entries.
func (c *SelCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rows)
}

// RowSetBytes reports the resident heap bytes of every cached row set
// and what the same sets would occupy as dense-only bitsets — the
// memory half of the million-row scale track (the adaptive sparse form
// keeps highly-selective cached sets at a few bytes per member instead
// of one bit per universe row).
func (c *SelCache) RowSetBytes() (resident, denseEquivalent int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, s := range c.rows {
		resident += s.ResidentBytes()
		denseEquivalent += s.DenseEquivalentBytes()
	}
	return resident, denseEquivalent
}

// RowSetForms reports how many cached row sets are live in each
// physical form — the composition behind the RowSetBytes numbers (a
// savings ratio near 1.0x with many dense entries means the workload's
// cached filters genuinely are dense, not that adaptation failed).
func (c *SelCache) RowSetForms() (sparse, dense int) {
	if c == nil {
		return 0, 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, s := range c.rows {
		if s.Form() == "dense" {
			dense++
		} else {
			sparse++
		}
	}
	return sparse, dense
}

// Range calls fn for every cached entry under the read lock, stopping
// when fn returns false — the inspection surface for diagnostics and
// tests (fn must not mutate the sets it is handed).
func (c *SelCache) Range(fn func(SelKey, *index.RowSet) bool) {
	if c == nil {
		return
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	for k, s := range c.rows {
		if !fn(k, s) {
			return
		}
	}
}

// Metrics reports cumulative hit/miss counts (monitoring surface for
// the batch API).
func (c *SelCache) Metrics() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
