package adb

import (
	"sync"
	"sync/atomic"
)

// SelKey identifies one selectivity / satisfying-row-set question about
// a property: the property identity plus the filter operands. Keys are
// comparable structs so cache lookups allocate nothing.
type SelKey struct {
	// Prop is the *BasicProperty or *DerivedProperty identity.
	Prop any
	// Value is the categorical value ("" for numeric ranges); for
	// disjunctions it is the canonical sorted, length-prefixed join of
	// the value set (see disjunctionKey).
	Value string
	// Lo, Hi bound numeric range filters; normalized derived
	// thresholds (θn) are carried in Lo with Theta set to the -1
	// sentinel.
	Lo, Hi float64
	// Theta is the absolute derived association-strength threshold;
	// -1 marks a normalized-threshold key (θn lives in Lo).
	Theta int
}

// SelCache memoizes satisfying-entity row sets across discoveries
// (§5's "smart selectivity computation" made persistent): the row sets
// back every selectivity question that is not already a precomputed
// O(1)/O(log n) statistic (disjunctions, numeric ranges, normalized
// derived thresholds), so concurrent batches of similar intents cost
// one map read instead of a posting walk per repeated filter. Cached
// row slices are shared — callers must treat them as immutable,
// exactly like the αDB posting lists they memoize.
//
// Invalidation is per property: every property carries its own
// generation counter, and an incremental insert bumps only the
// generations of the properties whose statistics actually shifted
// (InvalidateProps), discarding just their entries. An insert into
// relation A therefore leaves the memoized row sets of relation B's
// properties live — the sustained-ingest workload keeps its warm cache
// instead of the old stop-the-world wipe.
//
// Rows is safe against the store/invalidate race: the property
// generation is captured before compute runs, and the result is
// dropped (not stored) if an invalidation lands in between, so a
// compute that started before an insert can never publish a stale row
// set afterwards.
type SelCache struct {
	mu   sync.RWMutex
	rows map[SelKey][]int
	// keys indexes the cached entries by property, so InvalidateProps
	// deletes exactly one property's entries instead of sweeping the
	// whole map under the write lock (inserts hold the αDB's exclusive
	// epoch lock while invalidating — readers are stalled for the
	// duration). A key may appear more than once after re-stores; the
	// deletes are idempotent.
	keys map[any][]SelKey
	// gens holds the per-property invalidation generation, keyed by
	// property identity (the same identity SelKey.Prop carries).
	// Properties never invalidated sit at generation 0.
	gens map[any]uint64
	// wipes counts whole-cache invalidations; it folds into every
	// property's effective generation so a full wipe also moves
	// properties the cache has never seen (protecting their in-flight
	// computes from storing stale results).
	wipes uint64
	// gen counts invalidation events cache-wide (monitoring surface;
	// tests assert it moves on insert).
	gen uint64

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewSelCache creates an empty cache.
func NewSelCache() *SelCache {
	return &SelCache{
		rows: make(map[SelKey][]int),
		keys: make(map[any][]SelKey),
		gens: make(map[any]uint64),
	}
}

// Rows returns the memoized satisfying-row set for key, computing and
// storing it on a miss. The returned slice is shared: do not mutate.
// If the key's property is invalidated while compute runs, the result
// is returned but not stored — the next caller recomputes against the
// post-insert statistics.
func (c *SelCache) Rows(key SelKey, compute func() []int) []int {
	if c == nil {
		return compute()
	}
	c.mu.RLock()
	rows, ok := c.rows[key]
	gen0 := c.propGenLocked(key.Prop)
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return rows
	}
	c.misses.Add(1)
	rows = compute()
	c.mu.Lock()
	if c.propGenLocked(key.Prop) == gen0 {
		c.rows[key] = rows
		c.keys[key.Prop] = append(c.keys[key.Prop], key)
	}
	c.mu.Unlock()
	return rows
}

// propGenLocked returns the effective generation of one property: its
// own invalidation counter plus the cache-wide wipe counter. Callers
// hold c.mu in either mode.
func (c *SelCache) propGenLocked(prop any) uint64 {
	return c.gens[prop] + c.wipes
}

// InvalidateProps bumps the generation of each given property and
// discards only their cached entries; called by the αDB after an
// incremental insert with the properties whose statistics shifted.
func (c *SelCache) InvalidateProps(props ...any) {
	if c == nil || len(props) == 0 {
		return
	}
	c.mu.Lock()
	for _, p := range props {
		c.gens[p]++
		for _, k := range c.keys[p] {
			delete(c.rows, k)
		}
		delete(c.keys, p)
	}
	c.gen++
	c.mu.Unlock()
}

// Invalidate discards every entry and moves every property's effective
// generation, including properties the cache has never seen; kept for
// whole-αDB resets where per-property attribution is unavailable.
func (c *SelCache) Invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.wipes++
	c.rows = make(map[SelKey][]int)
	c.keys = make(map[any][]SelKey)
	c.gen++
	c.mu.Unlock()
}

// PropGeneration returns the effective invalidation generation of one
// property; filters memoize against it to detect staleness of their own
// property without being disturbed by inserts elsewhere.
func (c *SelCache) PropGeneration(prop any) uint64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.propGenLocked(prop)
}

// Generation returns the cache-wide invalidation event counter (tests
// assert it moves on insert).
func (c *SelCache) Generation() uint64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// Len returns the number of live row-set entries.
func (c *SelCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rows)
}

// Metrics reports cumulative hit/miss counts (monitoring surface for
// the batch API).
func (c *SelCache) Metrics() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
