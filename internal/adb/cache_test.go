package adb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"squid/internal/relation"
)

// randomEntityDB builds an entity relation large enough to exercise both
// the sparse (index) and dense (scan) paths of EntityRowsInRange.
func randomEntityDB(n int) *relation.Database {
	rng := rand.New(rand.NewSource(7))
	db := relation.NewDatabase("rand")
	ent := relation.New("item",
		relation.Col("id", relation.Int),
		relation.Col("label", relation.String),
		relation.Col("weight", relation.Int),
		relation.Col("class", relation.String),
	).SetPrimaryKey("id")
	classes := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < n; i++ {
		w := relation.IntVal(int64(rng.Intn(1000)))
		if rng.Intn(20) == 0 {
			w = relation.Null // exercise NULL handling
		}
		ent.MustAppend(
			relation.IntVal(int64(i)),
			relation.StringVal(fmt.Sprintf("item %d", i)),
			w,
			relation.StringVal(classes[rng.Intn(len(classes))]),
		)
	}
	db.AddRelation(ent)
	db.MarkEntity("item")
	return db
}

// TestEntityRowsCrossCheck is the property-style oracle of the ISSUE:
// every index-backed row-set accessor must agree with a naive scan.
func TestEntityRowsCrossCheck(t *testing.T) {
	const n = 400
	a, err := Build(randomEntityDB(n), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info := a.Entity("item")
	weight := info.BasicByAttr("weight")
	if weight == nil || weight.Kind != Numeric {
		t.Fatal("weight property missing")
	}
	naiveRange := func(lo, hi float64) []int {
		var out []int
		for row := 0; row < n; row++ {
			if v, ok := weight.NumValue(row); ok && v >= lo && v <= hi {
				out = append(out, row)
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		lo := float64(rng.Intn(1000))
		span := float64(rng.Intn(400)) // narrow → index path, wide → dense path
		if trial%2 == 0 {
			span = float64(900 + rng.Intn(300))
		}
		got := weight.EntityRowsInRange(lo, lo+span)
		want := naiveRange(lo, lo+span)
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("EntityRowsInRange(%v,%v): got %d rows, want %d (%v vs %v)",
				lo, lo+span, len(got), len(want), got, want)
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("EntityRowsInRange(%v,%v) not sorted", lo, lo+span)
		}
	}

	class := info.BasicByAttr("class")
	if class == nil {
		t.Fatal("class property missing")
	}
	naiveAny := func(vals []string) []int {
		var out []int
		for row := 0; row < n; row++ {
			for _, have := range class.Values(row) {
				matched := false
				for _, want := range vals {
					if have == want {
						matched = true
						break
					}
				}
				if matched {
					out = append(out, row)
					break
				}
			}
		}
		return out
	}
	for _, vals := range [][]string{{"a"}, {"a", "c"}, {"b", "d", "e"}, {"nope"}} {
		got := class.EntityRowsWithAnyValue(vals)
		want := naiveAny(vals)
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("EntityRowsWithAnyValue(%v): %v want %v", vals, got, want)
		}
	}
}

// TestDerivedStrengthCrossCheck verifies the O(log n) StrengthOf lookup
// and the cached EntityRowsWithStrength against the Counts oracle on the
// paper's running-example fixture.
func TestDerivedStrengthCrossCheck(t *testing.T) {
	a, err := Build(fixtureDB(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info := a.Entity("person")
	for _, p := range info.Derived {
		for _, v := range p.DistinctValues() {
			for row := 0; row < info.NumRows; row++ {
				want := p.Counts(info.IDByRow(row))[v]
				if got := p.StrengthOf(row, v); got != want {
					t.Errorf("%s: StrengthOf(%d,%s)=%d want %d", p.Attr, row, v, got, want)
				}
			}
			for theta := 1; theta <= p.MaxStrength(v); theta++ {
				var want []int
				for row := 0; row < info.NumRows; row++ {
					if p.Counts(info.IDByRow(row))[v] >= theta {
						want = append(want, row)
					}
				}
				got := p.EntityRowsWithStrength(v, theta)
				if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
					t.Errorf("%s: EntityRowsWithStrength(%s,%d)=%v want %v", p.Attr, v, theta, got, want)
				}
			}
		}
	}
}

// TestSelectivityCacheInvalidation checks that memoized row sets are
// discarded when inserts shift the statistics — the cache must never
// serve pre-insert answers.
func TestSelectivityCacheInvalidation(t *testing.T) {
	a, err := Build(fixtureDB(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info := a.Entity("person")
	age := info.BasicByAttr("age")
	cache := a.SelectivityCache()

	before := age.EntityRowsInRange(45, 65) // populate the cache
	if cache.Len() == 0 {
		t.Fatal("cache not populated by EntityRowsInRange")
	}
	gen0 := cache.Generation()

	// Insert a 50-year-old: the cached [45,65] row set is stale.
	err = a.InsertEntity("person",
		relation.IntVal(7), relation.StringVal("New Actor"),
		relation.StringVal("Male"), relation.IntVal(50), relation.IntVal(1))
	if err != nil {
		t.Fatal(err)
	}
	if cache.Generation() == gen0 {
		t.Error("InsertEntity did not bump the cache generation")
	}
	if cache.Len() != 0 {
		t.Errorf("InsertEntity left %d stale cache entries", cache.Len())
	}
	after := age.EntityRowsInRange(45, 65)
	if len(after) != len(before)+1 {
		t.Errorf("post-insert range rows = %d want %d", len(after), len(before)+1)
	}
	newRow, ok := info.RowByID(7)
	if !ok {
		t.Fatal("inserted entity unresolvable")
	}
	found := false
	for _, r := range after {
		if r == newRow {
			found = true
		}
	}
	if !found {
		t.Error("post-insert range rows missing the new entity")
	}

	// Fact inserts must invalidate derived-row memos too.
	ptg := info.DerivedByAttr("movie:genre")
	if ptg == nil {
		t.Fatal("movie:genre derived property missing")
	}
	preRows := ptg.EntityRowsWithStrength("Drama", 1)
	gen1 := cache.Generation()
	// Person 3 appears in movie 13 (Drama) for the first time.
	if err := a.InsertFact("castinfo", relation.IntVal(3), relation.IntVal(13)); err != nil {
		t.Fatal(err)
	}
	if cache.Generation() == gen1 {
		t.Error("InsertFact did not bump the cache generation")
	}
	postRows := ptg.EntityRowsWithStrength("Drama", 1)
	if len(postRows) != len(preRows)+1 {
		t.Errorf("post-fact Drama rows = %v want one more than %v", postRows, preRows)
	}
	if !sort.IntsAreSorted(postRows) {
		t.Errorf("post-fact rows not sorted: %v", postRows)
	}
	rebuildAndCompare(t, a)
}

// TestPerPropertyInvalidation is the acceptance check of the
// per-property generation scheme: an insert touching only relation A
// leaves cached entries for properties of relation B live, and only the
// generations of the touched properties move.
func TestPerPropertyInvalidation(t *testing.T) {
	a, err := Build(fixtureDB(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	person := a.Entity("person")
	movie := a.Entity("movie")
	age := person.BasicByAttr("age")
	year := movie.BasicByAttr("year")
	if age == nil || year == nil {
		t.Fatal("fixture properties missing")
	}
	cache := a.SelectivityCache()

	_ = age.EntityRowsInRange(45, 65)
	yearRows := year.EntityRowsInRange(2000, 2003)
	if cache.Len() != 2 {
		t.Fatalf("cache primed with %d entries, want 2", cache.Len())
	}
	ageGen0, yearGen0 := age.StatsGeneration(), year.StatsGeneration()

	// Insert into person: only person's properties go stale.
	err = a.InsertEntity("person",
		relation.IntVal(7), relation.StringVal("New Actor"),
		relation.StringVal("Male"), relation.IntVal(50), relation.IntVal(1))
	if err != nil {
		t.Fatal(err)
	}
	if age.StatsGeneration() == ageGen0 {
		t.Error("person insert did not move the person property generation")
	}
	if year.StatsGeneration() != yearGen0 {
		t.Error("person insert moved the movie property generation")
	}
	if cache.Len() != 1 {
		t.Errorf("cache has %d entries after person insert, want only the movie entry", cache.Len())
	}
	h0, _ := cache.Metrics()
	got := year.EntityRowsInRange(2000, 2003)
	if h1, _ := cache.Metrics(); h1 != h0+1 {
		t.Error("movie row set was not served from cache after a person insert")
	}
	if !reflect.DeepEqual(got, yearRows) {
		t.Errorf("movie row set changed across a person insert: %v vs %v", got, yearRows)
	}

	// A fact insert shifts only the properties routed through that fact:
	// the direct age and year properties stay live, the derived
	// movie:genre property goes stale.
	_ = age.EntityRowsInRange(45, 65) // re-prime person.age
	ptg := person.DerivedByAttr("movie:genre")
	if ptg == nil {
		t.Fatal("movie:genre derived property missing")
	}
	_ = ptg.EntityRowsWithStrength("Drama", 1)
	ageGen1, ptgGen0 := age.StatsGeneration(), ptg.StatsGeneration()
	if cache.Len() != 3 {
		t.Fatalf("cache primed with %d entries, want 3", cache.Len())
	}
	if err := a.InsertFact("castinfo", relation.IntVal(3), relation.IntVal(13)); err != nil {
		t.Fatal(err)
	}
	if ptg.StatsGeneration() == ptgGen0 {
		t.Error("fact insert did not move the derived property generation")
	}
	if age.StatsGeneration() != ageGen1 {
		t.Error("fact insert moved the direct age property generation")
	}
	if year.StatsGeneration() != yearGen0 {
		t.Error("fact insert moved the movie.year property generation")
	}
	if cache.Len() != 2 {
		t.Errorf("cache has %d entries after fact insert, want age and year live", cache.Len())
	}
	rebuildAndCompare(t, a)
}

// TestStaleComputeNotCached regresses the store/invalidate race: a
// compute that started before an invalidation must not publish its
// result afterwards.
func TestStaleComputeNotCached(t *testing.T) {
	c := NewSelCache()
	prop := new(int)
	key := SelKey{Prop: prop, Value: "v"}
	computes := 0
	got := c.Rows(key, func() []int {
		computes++
		c.InvalidateProps(prop) // an insert lands while compute is in flight
		return []int{1, 2}
	})
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Rows returned %v, want the computed result", got)
	}
	if c.Len() != 0 {
		t.Fatal("stale compute result was cached")
	}
	got = c.Rows(key, func() []int { computes++; return []int{1, 2, 3} })
	if computes != 2 {
		t.Fatalf("computes=%d want 2 (stale entry served?)", computes)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("post-insert Rows=%v", got)
	}
	if got = c.Rows(key, func() []int { computes++; return nil }); computes != 2 || !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("clean store did not stick: computes=%d rows=%v", computes, got)
	}

	// A whole-cache wipe must drop in-flight stores too, even for
	// properties the cache has never seen before.
	fresh := new(int)
	c.Rows(SelKey{Prop: fresh, Value: "w"}, func() []int {
		c.Invalidate()
		return []int{9}
	})
	if c.Len() != 0 {
		t.Fatal("wipe-raced compute result was cached")
	}
}

// TestDisjunctionCacheKey regresses the disjunction cache key: value
// sets must share one entry regardless of order, and values containing
// NUL must not collide with a different set that joins to the same
// bytes (the old '\x00' join aliased {"a\x00b","c"} and {"a","b\x00c"}).
func TestDisjunctionCacheKey(t *testing.T) {
	db := relation.NewDatabase("nul")
	ent := relation.New("thing",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("class", relation.String),
	).SetPrimaryKey("id")
	classes := []string{"a\x00b", "c", "a", "b\x00c", "a", "c"}
	for i, cl := range classes {
		ent.MustAppend(relation.IntVal(int64(i)),
			relation.StringVal(fmt.Sprintf("thing %d", i)),
			relation.StringVal(cl))
	}
	db.AddRelation(ent)
	db.MarkEntity("thing")
	a, err := Build(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	class := a.Entity("thing").BasicByAttr("class")
	if class == nil {
		t.Fatal("class property missing")
	}
	r1 := class.EntityRowsWithAnyValue([]string{"a\x00b", "c"})
	r2 := class.EntityRowsWithAnyValue([]string{"a", "b\x00c"})
	if !reflect.DeepEqual(r1, []int{0, 1, 5}) {
		t.Errorf(`rows of {"a\x00b","c"} = %v, want [0 1 5]`, r1)
	}
	if !reflect.DeepEqual(r2, []int{2, 3, 4}) {
		t.Errorf(`rows of {"a","b\x00c"} = %v, want [2 3 4] (NUL key collision?)`, r2)
	}

	// Order canonicalization: the reversed set must hit the same entry.
	cache := a.SelectivityCache()
	h0, _ := cache.Metrics()
	r3 := class.EntityRowsWithAnyValue([]string{"c", "a\x00b"})
	if h1, _ := cache.Metrics(); h1 != h0+1 {
		t.Error("reordered disjunction missed the cache")
	}
	if !reflect.DeepEqual(r3, r1) {
		t.Errorf("reordered disjunction rows = %v, want %v", r3, r1)
	}
}

// TestCacheMetrics checks the hit/miss accounting the batch API
// monitors.
func TestCacheMetrics(t *testing.T) {
	a, err := Build(fixtureDB(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	age := a.Entity("person").BasicByAttr("age")
	cache := a.SelectivityCache()
	h0, m0 := cache.Metrics()
	_ = age.EntityRowsInRange(40, 70)
	_ = age.EntityRowsInRange(40, 70)
	h1, m1 := cache.Metrics()
	if m1 != m0+1 {
		t.Errorf("misses %d -> %d, want one new miss", m0, m1)
	}
	if h1 != h0+1 {
		t.Errorf("hits %d -> %d, want one new hit", h0, h1)
	}
}
