package adb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"squid/internal/relation"
)

// randomEntityDB builds an entity relation large enough to exercise both
// the sparse (index) and dense (scan) paths of EntityRowsInRange.
func randomEntityDB(n int) *relation.Database {
	rng := rand.New(rand.NewSource(7))
	db := relation.NewDatabase("rand")
	ent := relation.New("item",
		relation.Col("id", relation.Int),
		relation.Col("label", relation.String),
		relation.Col("weight", relation.Int),
		relation.Col("class", relation.String),
	).SetPrimaryKey("id")
	classes := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < n; i++ {
		w := relation.IntVal(int64(rng.Intn(1000)))
		if rng.Intn(20) == 0 {
			w = relation.Null // exercise NULL handling
		}
		ent.MustAppend(
			relation.IntVal(int64(i)),
			relation.StringVal(fmt.Sprintf("item %d", i)),
			w,
			relation.StringVal(classes[rng.Intn(len(classes))]),
		)
	}
	db.AddRelation(ent)
	db.MarkEntity("item")
	return db
}

// TestEntityRowsCrossCheck is the property-style oracle of the ISSUE:
// every index-backed row-set accessor must agree with a naive scan.
func TestEntityRowsCrossCheck(t *testing.T) {
	const n = 400
	a, err := Build(randomEntityDB(n), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info := a.Entity("item")
	weight := info.BasicByAttr("weight")
	if weight == nil || weight.Kind != Numeric {
		t.Fatal("weight property missing")
	}
	naiveRange := func(lo, hi float64) []int {
		var out []int
		for row := 0; row < n; row++ {
			if v, ok := weight.NumValue(row); ok && v >= lo && v <= hi {
				out = append(out, row)
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		lo := float64(rng.Intn(1000))
		span := float64(rng.Intn(400)) // narrow → index path, wide → dense path
		if trial%2 == 0 {
			span = float64(900 + rng.Intn(300))
		}
		got := weight.EntityRowsInRange(lo, lo+span)
		want := naiveRange(lo, lo+span)
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("EntityRowsInRange(%v,%v): got %d rows, want %d (%v vs %v)",
				lo, lo+span, len(got), len(want), got, want)
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("EntityRowsInRange(%v,%v) not sorted", lo, lo+span)
		}
	}

	class := info.BasicByAttr("class")
	if class == nil {
		t.Fatal("class property missing")
	}
	naiveAny := func(vals []string) []int {
		var out []int
		for row := 0; row < n; row++ {
			for _, have := range class.Values(row) {
				matched := false
				for _, want := range vals {
					if have == want {
						matched = true
						break
					}
				}
				if matched {
					out = append(out, row)
					break
				}
			}
		}
		return out
	}
	for _, vals := range [][]string{{"a"}, {"a", "c"}, {"b", "d", "e"}, {"nope"}} {
		got := class.EntityRowsWithAnyValue(vals)
		want := naiveAny(vals)
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("EntityRowsWithAnyValue(%v): %v want %v", vals, got, want)
		}
	}
}

// TestDerivedStrengthCrossCheck verifies the O(log n) StrengthOf lookup
// and the cached EntityRowsWithStrength against the Counts oracle on the
// paper's running-example fixture.
func TestDerivedStrengthCrossCheck(t *testing.T) {
	a, err := Build(fixtureDB(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info := a.Entity("person")
	for _, p := range info.Derived {
		for _, v := range p.DistinctValues() {
			for row := 0; row < info.NumRows; row++ {
				want := p.Counts(info.IDByRow(row))[v]
				if got := p.StrengthOf(row, v); got != want {
					t.Errorf("%s: StrengthOf(%d,%s)=%d want %d", p.Attr, row, v, got, want)
				}
			}
			for theta := 1; theta <= p.MaxStrength(v); theta++ {
				var want []int
				for row := 0; row < info.NumRows; row++ {
					if p.Counts(info.IDByRow(row))[v] >= theta {
						want = append(want, row)
					}
				}
				got := p.EntityRowsWithStrength(v, theta)
				if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
					t.Errorf("%s: EntityRowsWithStrength(%s,%d)=%v want %v", p.Attr, v, theta, got, want)
				}
			}
		}
	}
}

// TestSelectivityCacheInvalidation checks that memoized row sets are
// discarded when inserts shift the statistics — the cache must never
// serve pre-insert answers.
func TestSelectivityCacheInvalidation(t *testing.T) {
	a, err := Build(fixtureDB(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info := a.Entity("person")
	age := info.BasicByAttr("age")
	cache := a.SelectivityCache()

	before := age.EntityRowsInRange(45, 65) // populate the cache
	if cache.Len() == 0 {
		t.Fatal("cache not populated by EntityRowsInRange")
	}
	gen0 := cache.Generation()

	// Insert a 50-year-old: the cached [45,65] row set is stale.
	err = a.InsertEntity("person",
		relation.IntVal(7), relation.StringVal("New Actor"),
		relation.StringVal("Male"), relation.IntVal(50), relation.IntVal(1))
	if err != nil {
		t.Fatal(err)
	}
	if cache.Generation() == gen0 {
		t.Error("InsertEntity did not bump the cache generation")
	}
	if cache.Len() != 0 {
		t.Errorf("InsertEntity left %d stale cache entries", cache.Len())
	}
	after := age.EntityRowsInRange(45, 65)
	if len(after) != len(before)+1 {
		t.Errorf("post-insert range rows = %d want %d", len(after), len(before)+1)
	}
	newRow, ok := info.RowByID(7)
	if !ok {
		t.Fatal("inserted entity unresolvable")
	}
	found := false
	for _, r := range after {
		if r == newRow {
			found = true
		}
	}
	if !found {
		t.Error("post-insert range rows missing the new entity")
	}

	// Fact inserts must invalidate derived-row memos too.
	ptg := info.DerivedByAttr("movie:genre")
	if ptg == nil {
		t.Fatal("movie:genre derived property missing")
	}
	preRows := ptg.EntityRowsWithStrength("Drama", 1)
	gen1 := cache.Generation()
	// Person 3 appears in movie 13 (Drama) for the first time.
	if err := a.InsertFact("castinfo", relation.IntVal(3), relation.IntVal(13)); err != nil {
		t.Fatal(err)
	}
	if cache.Generation() == gen1 {
		t.Error("InsertFact did not bump the cache generation")
	}
	postRows := ptg.EntityRowsWithStrength("Drama", 1)
	if len(postRows) != len(preRows)+1 {
		t.Errorf("post-fact Drama rows = %v want one more than %v", postRows, preRows)
	}
	if !sort.IntsAreSorted(postRows) {
		t.Errorf("post-fact rows not sorted: %v", postRows)
	}
	rebuildAndCompare(t, a)
}

// TestCacheMetrics checks the hit/miss accounting the batch API
// monitors.
func TestCacheMetrics(t *testing.T) {
	a, err := Build(fixtureDB(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	age := a.Entity("person").BasicByAttr("age")
	cache := a.SelectivityCache()
	h0, m0 := cache.Metrics()
	_ = age.EntityRowsInRange(40, 70)
	_ = age.EntityRowsInRange(40, 70)
	h1, m1 := cache.Metrics()
	if m1 != m0+1 {
		t.Errorf("misses %d -> %d, want one new miss", m0, m1)
	}
	if h1 != h0+1 {
		t.Errorf("hits %d -> %d, want one new hit", h0, h1)
	}
}
