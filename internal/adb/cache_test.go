package adb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"squid/internal/relation"
)

// randomEntityDB builds an entity relation large enough to exercise both
// the sparse (index) and dense (scan) paths of EntityRowsInRange.
func randomEntityDB(n int) *relation.Database {
	rng := rand.New(rand.NewSource(7))
	db := relation.NewDatabase("rand")
	ent := relation.New("item",
		relation.Col("id", relation.Int),
		relation.Col("label", relation.String),
		relation.Col("weight", relation.Int),
		relation.Col("class", relation.String),
	).SetPrimaryKey("id")
	classes := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < n; i++ {
		w := relation.IntVal(int64(rng.Intn(1000)))
		if rng.Intn(20) == 0 {
			w = relation.Null // exercise NULL handling
		}
		ent.MustAppend(
			relation.IntVal(int64(i)),
			relation.StringVal(fmt.Sprintf("item %d", i)),
			w,
			relation.StringVal(classes[rng.Intn(len(classes))]),
		)
	}
	db.AddRelation(ent)
	db.MarkEntity("item")
	return db
}

// TestEntityRowsCrossCheck is the property-style oracle of the ISSUE:
// every index-backed row-set accessor must agree with a naive scan.
func TestEntityRowsCrossCheck(t *testing.T) {
	const n = 400
	a, err := Build(randomEntityDB(n), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info := a.Entity("item")
	weight := info.BasicByAttr("weight")
	if weight == nil || weight.Kind != Numeric {
		t.Fatal("weight property missing")
	}
	naiveRange := func(lo, hi float64) []int {
		var out []int
		for row := 0; row < n; row++ {
			if v, ok := weight.NumValue(row); ok && v >= lo && v <= hi {
				out = append(out, row)
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		lo := float64(rng.Intn(1000))
		span := float64(rng.Intn(400)) // narrow → index path, wide → dense path
		if trial%2 == 0 {
			span = float64(900 + rng.Intn(300))
		}
		got := weight.EntityRowsInRange(lo, lo+span)
		want := naiveRange(lo, lo+span)
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("EntityRowsInRange(%v,%v): got %d rows, want %d (%v vs %v)",
				lo, lo+span, len(got), len(want), got, want)
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("EntityRowsInRange(%v,%v) not sorted", lo, lo+span)
		}
	}

	class := info.BasicByAttr("class")
	if class == nil {
		t.Fatal("class property missing")
	}
	naiveAny := func(vals []string) []int {
		var out []int
		for row := 0; row < n; row++ {
			for _, have := range class.Values(row) {
				matched := false
				for _, want := range vals {
					if have == want {
						matched = true
						break
					}
				}
				if matched {
					out = append(out, row)
					break
				}
			}
		}
		return out
	}
	for _, vals := range [][]string{{"a"}, {"a", "c"}, {"b", "d", "e"}, {"nope"}} {
		got := class.EntityRowsWithAnyValue(vals)
		want := naiveAny(vals)
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("EntityRowsWithAnyValue(%v): %v want %v", vals, got, want)
		}
	}
}

// TestDerivedStrengthCrossCheck verifies the O(log n) StrengthOf lookup
// and the cached EntityRowsWithStrength against the Counts oracle on the
// paper's running-example fixture.
func TestDerivedStrengthCrossCheck(t *testing.T) {
	a, err := Build(fixtureDB(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info := a.Entity("person")
	for _, p := range info.Derived {
		for _, v := range p.DistinctValues() {
			for row := 0; row < info.NumRows; row++ {
				want := p.Counts(info.IDByRow(row))[v]
				if got := p.StrengthOf(row, v); got != want {
					t.Errorf("%s: StrengthOf(%d,%s)=%d want %d", p.Attr, row, v, got, want)
				}
			}
			for theta := 1; theta <= p.MaxStrength(v); theta++ {
				var want []int
				for row := 0; row < info.NumRows; row++ {
					if p.Counts(info.IDByRow(row))[v] >= theta {
						want = append(want, row)
					}
				}
				got := p.EntityRowsWithStrength(v, theta)
				if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
					t.Errorf("%s: EntityRowsWithStrength(%s,%d)=%v want %v", p.Attr, v, theta, got, want)
				}
			}
		}
	}
}

// TestSelectivityCacheInvalidation checks the copy-on-write cache
// contract: an insert retires the touched properties' cache entries
// (the clones carry fresh identities, so the new epoch can never hit a
// pre-insert answer), while a handle pinned to the retired epoch keeps
// answering from exactly the pre-insert state.
func TestSelectivityCacheInvalidation(t *testing.T) {
	a, err := Build(fixtureDB(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	oldInfo := a.Entity("person")
	oldAge := oldInfo.BasicByAttr("age")
	cache := a.SelectivityCache()

	before := oldAge.EntityRowsInRange(45, 65) // populate the cache
	if cache.Len() == 0 {
		t.Fatal("cache not populated by EntityRowsInRange")
	}
	gen0 := cache.Generation()

	// Insert a 50-year-old: the cached [45,65] row set belongs to the
	// retired epoch now.
	err = a.InsertEntity("person",
		relation.IntVal(7), relation.StringVal("New Actor"),
		relation.StringVal("Male"), relation.IntVal(50), relation.IntVal(1))
	if err != nil {
		t.Fatal(err)
	}
	if cache.Generation() == gen0 {
		t.Error("InsertEntity did not bump the cache generation")
	}
	if cache.Len() != 0 {
		t.Errorf("InsertEntity left %d retired cache entries", cache.Len())
	}
	info := a.Entity("person")
	age := info.BasicByAttr("age")
	if age == oldAge {
		t.Fatal("insert did not clone the touched property")
	}
	after := age.EntityRowsInRange(45, 65)
	if len(after) != len(before)+1 {
		t.Errorf("post-insert range rows = %d want %d", len(after), len(before)+1)
	}
	newRow, ok := info.RowByID(7)
	if !ok {
		t.Fatal("inserted entity unresolvable")
	}
	found := false
	for _, r := range after {
		if r == newRow {
			found = true
		}
	}
	if !found {
		t.Error("post-insert range rows missing the new entity")
	}
	// The retired epoch's handle still answers pre-insert (snapshot
	// isolation), and its re-stored entry is keyed by the retired
	// identity — the new epoch can never be served from it.
	if got := oldAge.EntityRowsInRange(45, 65); len(got) != len(before) {
		t.Errorf("retired epoch's row set changed: %d want %d", len(got), len(before))
	}

	// Fact inserts must retire derived-row memos too.
	ptg := info.DerivedByAttr("movie:genre")
	if ptg == nil {
		t.Fatal("movie:genre derived property missing")
	}
	preRows := ptg.EntityRowsWithStrength("Drama", 1)
	gen1 := cache.Generation()
	// Person 3 appears in movie 13 (Drama) for the first time.
	if err := a.InsertFact("castinfo", relation.IntVal(3), relation.IntVal(13)); err != nil {
		t.Fatal(err)
	}
	if cache.Generation() == gen1 {
		t.Error("InsertFact did not bump the cache generation")
	}
	ptg2 := a.Entity("person").DerivedByAttr("movie:genre")
	if ptg2 == ptg {
		t.Fatal("fact insert did not clone the derived property")
	}
	postRows := ptg2.EntityRowsWithStrength("Drama", 1)
	if len(postRows) != len(preRows)+1 {
		t.Errorf("post-fact Drama rows = %v want one more than %v", postRows, preRows)
	}
	if !sort.IntsAreSorted(postRows) {
		t.Errorf("post-fact rows not sorted: %v", postRows)
	}
	if got := ptg.EntityRowsWithStrength("Drama", 1); len(got) != len(preRows) {
		t.Errorf("retired derived row set changed: %v want %v", got, preRows)
	}
	rebuildAndCompare(t, a)
}

// TestPerPropertyInvalidation is the acceptance check of the
// copy-on-write per-property scheme: an insert touching only relation A
// leaves cached entries for properties of relation B live (B's
// properties keep their identities across the epoch publish), while A's
// properties are republished as clones and their entries evicted.
func TestPerPropertyInvalidation(t *testing.T) {
	a, err := Build(fixtureDB(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	person := a.Entity("person")
	movie := a.Entity("movie")
	age := person.BasicByAttr("age")
	year := movie.BasicByAttr("year")
	if age == nil || year == nil {
		t.Fatal("fixture properties missing")
	}
	cache := a.SelectivityCache()

	_ = age.EntityRowsInRange(45, 65)
	yearRows := year.EntityRowsInRange(2000, 2003)
	if cache.Len() != 2 {
		t.Fatalf("cache primed with %d entries, want 2", cache.Len())
	}

	// Insert into person: only person's properties are republished.
	err = a.InsertEntity("person",
		relation.IntVal(7), relation.StringVal("New Actor"),
		relation.StringVal("Male"), relation.IntVal(50), relation.IntVal(1))
	if err != nil {
		t.Fatal(err)
	}
	person2 := a.Entity("person")
	if person2.BasicByAttr("age") == age {
		t.Error("person insert did not republish the person property")
	}
	year2 := a.Entity("movie").BasicByAttr("year")
	if year2 != year {
		t.Error("person insert republished the movie property")
	}
	if cache.Len() != 1 {
		t.Errorf("cache has %d entries after person insert, want only the movie entry", cache.Len())
	}
	h0, _ := cache.Metrics()
	got := year2.EntityRowsInRange(2000, 2003)
	if h1, _ := cache.Metrics(); h1 != h0+1 {
		t.Error("movie row set was not served from cache after a person insert")
	}
	if !reflect.DeepEqual(got, yearRows) {
		t.Errorf("movie row set changed across a person insert: %v vs %v", got, yearRows)
	}

	// A fact insert republishes only the properties routed through that
	// fact: the direct age and year properties keep their identities
	// (and live cache entries), the derived movie:genre property is
	// cloned and its entry evicted.
	age2 := person2.BasicByAttr("age")
	_ = age2.EntityRowsInRange(45, 65) // prime person.age on the current epoch
	ptg := person2.DerivedByAttr("movie:genre")
	if ptg == nil {
		t.Fatal("movie:genre derived property missing")
	}
	_ = ptg.EntityRowsWithStrength("Drama", 1)
	if cache.Len() != 3 {
		t.Fatalf("cache primed with %d entries, want 3", cache.Len())
	}
	if err := a.InsertFact("castinfo", relation.IntVal(3), relation.IntVal(13)); err != nil {
		t.Fatal(err)
	}
	person3 := a.Entity("person")
	if person3.DerivedByAttr("movie:genre") == ptg {
		t.Error("fact insert did not republish the derived property")
	}
	if person3.BasicByAttr("age") != age2 {
		t.Error("fact insert republished the direct age property")
	}
	if a.Entity("movie").BasicByAttr("year") != year {
		t.Error("fact insert republished the movie.year property")
	}
	if cache.Len() != 2 {
		t.Errorf("cache has %d entries after fact insert, want age and year live", cache.Len())
	}
	rebuildAndCompare(t, a)
}

// TestRetiredEntriesNotServed pins the epoch-keyed cache contract: a
// property clone (fresh identity) can never be served an entry computed
// for the retired identity, eviction deletes exactly the retired keys,
// and a retired identity can never re-enter the cache afterwards (the
// no-leak guarantee for readers still pinned to retired epochs).
func TestRetiredEntriesNotServed(t *testing.T) {
	c := NewSelCache()
	retired, clone := new(int), new(int)
	c.Register(retired) // build-time registration
	computes := 0
	pre := c.Rows(SelKey{Prop: retired, Value: "v"}, func() []int { computes++; return []int{1, 2} })
	if !reflect.DeepEqual(pre, []int{1, 2}) {
		t.Fatalf("Rows returned %v", pre)
	}
	// The publish step retires the old identity and admits the clone.
	c.ReplaceProps([]any{retired}, []any{clone})
	if c.Len() != 0 {
		t.Fatal("retired entry survived eviction")
	}
	// The clone's lookup must recompute, never alias the retired entry.
	post := c.Rows(SelKey{Prop: clone, Value: "v"}, func() []int { computes++; return []int{1, 2, 3} })
	if computes != 2 || !reflect.DeepEqual(post, []int{1, 2, 3}) {
		t.Fatalf("clone served retired state: computes=%d rows=%v", computes, post)
	}
	// A reader still pinned to the retired epoch recomputes correct
	// answers but can no longer store: the retired identity must not
	// re-enter the cache (it would never be swept again).
	re := c.Rows(SelKey{Prop: retired, Value: "v"}, func() []int { computes++; return []int{1, 2} })
	if computes != 3 || !reflect.DeepEqual(re, []int{1, 2}) {
		t.Fatalf("retired-epoch recompute wrong: computes=%d rows=%v", computes, re)
	}
	if c.Len() != 1 {
		t.Fatalf("retired identity re-entered the cache: %d entries want 1", c.Len())
	}
	// The clone's entry is live and undisturbed.
	if got := c.Rows(SelKey{Prop: clone, Value: "v"}, func() []int { computes++; return nil }); computes != 3 || !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("clone entry disturbed: computes=%d rows=%v", computes, got)
	}
	// Full wipe still works for whole-αDB resets.
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatal("wipe left entries")
	}
}

// TestDisjunctionCacheKey regresses the disjunction cache key: value
// sets must share one entry regardless of order, and values containing
// NUL must not collide with a different set that joins to the same
// bytes (the old '\x00' join aliased {"a\x00b","c"} and {"a","b\x00c"}).
func TestDisjunctionCacheKey(t *testing.T) {
	db := relation.NewDatabase("nul")
	ent := relation.New("thing",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("class", relation.String),
	).SetPrimaryKey("id")
	classes := []string{"a\x00b", "c", "a", "b\x00c", "a", "c"}
	for i, cl := range classes {
		ent.MustAppend(relation.IntVal(int64(i)),
			relation.StringVal(fmt.Sprintf("thing %d", i)),
			relation.StringVal(cl))
	}
	db.AddRelation(ent)
	db.MarkEntity("thing")
	a, err := Build(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	class := a.Entity("thing").BasicByAttr("class")
	if class == nil {
		t.Fatal("class property missing")
	}
	r1 := class.EntityRowsWithAnyValue([]string{"a\x00b", "c"})
	r2 := class.EntityRowsWithAnyValue([]string{"a", "b\x00c"})
	if !reflect.DeepEqual(r1, []int{0, 1, 5}) {
		t.Errorf(`rows of {"a\x00b","c"} = %v, want [0 1 5]`, r1)
	}
	if !reflect.DeepEqual(r2, []int{2, 3, 4}) {
		t.Errorf(`rows of {"a","b\x00c"} = %v, want [2 3 4] (NUL key collision?)`, r2)
	}

	// Order canonicalization: the reversed set must hit the same entry.
	cache := a.SelectivityCache()
	h0, _ := cache.Metrics()
	r3 := class.EntityRowsWithAnyValue([]string{"c", "a\x00b"})
	if h1, _ := cache.Metrics(); h1 != h0+1 {
		t.Error("reordered disjunction missed the cache")
	}
	if !reflect.DeepEqual(r3, r1) {
		t.Errorf("reordered disjunction rows = %v, want %v", r3, r1)
	}
}

// TestCacheMetrics checks the hit/miss accounting the batch API
// monitors.
func TestCacheMetrics(t *testing.T) {
	a, err := Build(fixtureDB(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	age := a.Entity("person").BasicByAttr("age")
	cache := a.SelectivityCache()
	h0, m0 := cache.Metrics()
	_ = age.EntityRowsInRange(40, 70)
	_ = age.EntityRowsInRange(40, 70)
	h1, m1 := cache.Metrics()
	if m1 != m0+1 {
		t.Errorf("misses %d -> %d, want one new miss", m0, m1)
	}
	if h1 != h0+1 {
		t.Errorf("hits %d -> %d, want one new hit", h0, h1)
	}
}
