package adb

import (
	"math"
	"squid/internal/index"
	"testing"

	"squid/internal/relation"
)

// rebuildAndCompare rebuilds the αDB from scratch and checks that the
// incrementally-maintained statistics match the batch-built ones for
// every property — the correctness oracle of the maintenance extension.
func rebuildAndCompare(t *testing.T, a *AlphaDB) {
	t.Helper()
	fresh, err := Build(a.DB(), a.Config())
	if err != nil {
		t.Fatal(err)
	}
	for name, info := range a.Snapshot().Entities {
		freshInfo := fresh.Entity(name)
		if freshInfo == nil {
			t.Fatalf("entity %q vanished", name)
		}
		if info.NumRows != freshInfo.NumRows {
			t.Errorf("%s: rows %d vs %d", name, info.NumRows, freshInfo.NumRows)
		}
		for _, p := range info.Basic {
			fp := freshInfo.BasicByAttr(p.Attr)
			if fp == nil {
				t.Errorf("%s: basic property %q missing after rebuild", name, p.Attr)
				continue
			}
			if p.Kind == Categorical {
				for _, v := range fp.DistinctValues() {
					if got, want := p.CategoricalSelectivity(v), fp.CategoricalSelectivity(v); math.Abs(got-want) > 1e-9 {
						t.Errorf("%s.%s ψ(%s)=%v incremental vs %v rebuilt", name, p.Attr, v, got, want)
					}
				}
			} else if fp.NumericIndex() != nil && p.NumericIndex() != nil {
				lo, hi := fp.NumericIndex().Min(), fp.NumericIndex().Max()
				if got, want := p.RangeSelectivity(lo, hi), fp.RangeSelectivity(lo, hi); math.Abs(got-want) > 1e-9 {
					t.Errorf("%s.%s full-range ψ=%v vs %v", name, p.Attr, got, want)
				}
			}
		}
		for _, p := range info.Derived {
			fp := freshInfo.DerivedByAttr(p.Attr)
			if fp == nil {
				t.Errorf("%s: derived property %q missing after rebuild", name, p.Attr)
				continue
			}
			for _, v := range fp.DistinctValues() {
				for theta := 1; theta <= fp.MaxStrength(v); theta++ {
					if got, want := p.Selectivity(v, theta), fp.Selectivity(v, theta); math.Abs(got-want) > 1e-9 {
						t.Errorf("%s.%s ψ(%s,%d)=%v incremental vs %v rebuilt", name, p.Attr, v, theta, got, want)
					}
				}
			}
		}
	}
}

func TestInsertEntityMaintainsStats(t *testing.T) {
	a := buildFixture(t)
	// Insert a new Canadian male person aged 45.
	err := a.InsertEntity("person",
		relation.IntVal(100), relation.StringVal("New Actor"),
		relation.StringVal("Male"), relation.IntVal(45), relation.IntVal(2))
	if err != nil {
		t.Fatal(err)
	}
	info := a.Entity("person")
	if info.NumRows != 7 {
		t.Fatalf("rows=%d", info.NumRows)
	}
	if row, ok := info.RowByID(100); !ok || row != 6 {
		t.Errorf("new entity not resolvable: %d %v", row, ok)
	}
	// ψ(gender=Male) is now 4/7.
	if got := info.BasicByAttr("gender").CategoricalSelectivity("Male"); math.Abs(got-4.0/7.0) > 1e-9 {
		t.Errorf("ψ(Male)=%v want 4/7", got)
	}
	// The new name is findable via the inverted index.
	if got := a.Snapshot().InvertedLookup("new actor"); len(got) != 1 {
		t.Errorf("inverted index not updated: %v", got)
	}
	rebuildAndCompare(t, a)
}

func TestInsertEntityErrors(t *testing.T) {
	a := buildFixture(t)
	if err := a.InsertEntity("castinfo", relation.IntVal(1), relation.IntVal(2)); err == nil {
		t.Error("insert into non-entity must fail")
	}
	// Duplicate primary key.
	if err := a.InsertEntity("person",
		relation.IntVal(1), relation.StringVal("Dup"),
		relation.StringVal("Male"), relation.IntVal(40), relation.IntVal(1)); err == nil {
		t.Error("duplicate PK must fail")
	}
	// NULL primary key.
	if err := a.InsertEntity("person",
		relation.Null, relation.StringVal("x"),
		relation.StringVal("Male"), relation.IntVal(40), relation.IntVal(1)); err == nil {
		t.Error("NULL PK must fail")
	}
}

func TestInsertFactMaintainsDerived(t *testing.T) {
	a := buildFixture(t)
	oldPtg := a.Entity("person").DerivedByAttr("movie:genre")
	before := oldPtg.Counts(3)["Comedy"] // person 3 had 1 comedy (movie 10)

	// Person 3 also appears in movie 11 (Comedy).
	if err := a.InsertFact("castinfo", relation.IntVal(3), relation.IntVal(11)); err != nil {
		t.Fatal(err)
	}
	// Handles are epoch-pinned: the current epoch sees the new fact,
	// the pre-insert handle keeps its snapshot.
	info := a.Entity("person")
	after := info.DerivedByAttr("movie:genre").Counts(3)["Comedy"]
	if after != before+1 {
		t.Errorf("comedy count %d -> %d, want +1", before, after)
	}
	if got := oldPtg.Counts(3)["Comedy"]; got != before {
		t.Errorf("retired epoch's count moved: %d want %d", got, before)
	}
	// The entity-association property gained the new title.
	movieProp := info.BasicByAttr("movie")
	if movieProp != nil {
		found := false
		for _, v := range movieProp.Values(2) { // person 3 is row 2
			if v == "MovieB" {
				found = true
			}
		}
		if !found {
			t.Error("entity-association property missing the new movie")
		}
	}
	rebuildAndCompare(t, a)
}

func TestInsertFactNewValue(t *testing.T) {
	a := buildFixture(t)
	// Person 1 (only comedies) now appears in drama movie 13.
	if err := a.InsertFact("castinfo", relation.IntVal(1), relation.IntVal(13)); err != nil {
		t.Fatal(err)
	}
	ptg := a.Entity("person").DerivedByAttr("movie:genre")
	if got := ptg.Counts(1)["Drama"]; got != 1 {
		t.Errorf("new drama association=%d want 1", got)
	}
	rebuildAndCompare(t, a)
}

func TestInsertFactForNewEntity(t *testing.T) {
	// Insert an entity then connect it with facts: the full dynamic
	// workflow.
	a := buildFixture(t)
	if err := a.InsertEntity("person",
		relation.IntVal(50), relation.StringVal("Rising Star"),
		relation.StringVal("Female"), relation.IntVal(30), relation.IntVal(1)); err != nil {
		t.Fatal(err)
	}
	for _, movieID := range []int64{10, 11, 12} {
		if err := a.InsertFact("castinfo", relation.IntVal(50), relation.IntVal(movieID)); err != nil {
			t.Fatal(err)
		}
	}
	info := a.Entity("person")
	ptg := info.DerivedByAttr("movie:genre")
	if got := ptg.Counts(50)["Comedy"]; got != 3 {
		t.Errorf("new entity's comedy count=%d want 3", got)
	}
	deg := info.DerivedByAttr("movie:count")
	if got := deg.Counts(50)["movie"]; got != 3 {
		t.Errorf("degree=%d want 3", got)
	}
	rebuildAndCompare(t, a)
}

func TestInsertFactErrors(t *testing.T) {
	a := buildFixture(t)
	if err := a.InsertFact("person", relation.IntVal(1)); err == nil {
		t.Error("insert into entity relation as fact must fail")
	}
	if err := a.InsertFact("nope", relation.IntVal(1)); err == nil {
		t.Error("unknown relation must fail")
	}
	// Wrong arity.
	if err := a.InsertFact("castinfo", relation.IntVal(1)); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestSortedInsertReplace(t *testing.T) {
	// Covered here since the αDB maintenance is the consumer.
	var s *index.Sorted
	s = s.Insert(5)
	s = s.Insert(2)
	s = s.Insert(9)
	if s.Len() != 3 || s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("insert broken: len=%d min=%v max=%v", s.Len(), s.Min(), s.Max())
	}
	if s.CountLE(5) != 2 {
		t.Errorf("CountLE(5)=%d", s.CountLE(5))
	}
	s = s.Replace(5, 6, false)
	if s.CountLE(5) != 1 || s.CountLE(6) != 2 {
		t.Errorf("replace broken: ≤5:%d ≤6:%d", s.CountLE(5), s.CountLE(6))
	}
	s = s.Replace(0, 1, true) // fresh insert
	if s.Len() != 4 || s.Min() != 1 {
		t.Errorf("fresh replace broken: len=%d min=%v", s.Len(), s.Min())
	}
}
