package adb

import (
	"fmt"
	"math"
	"testing"

	"squid/internal/relation"
)

// fixtureDB builds the paper's running IMDb-style example (Figs 2, 5, 6):
// person (direct gender/age + FK-dim country), movie (direct year),
// genre dimension, castinfo fact (person-movie), movietogenre fact
// (movie-genre).
func fixtureDB() *relation.Database {
	db := relation.NewDatabase("mini_imdb")

	country := relation.New("country",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
	).SetPrimaryKey("id")
	country.MustAppend(relation.IntVal(1), relation.StringVal("USA"))
	country.MustAppend(relation.IntVal(2), relation.StringVal("Canada"))
	db.AddRelation(country)
	db.MarkProperty("country")

	person := relation.New("person",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("gender", relation.String),
		relation.Col("age", relation.Int),
		relation.Col("country_id", relation.Int),
	).SetPrimaryKey("id").AddForeignKey("country_id", "country", "id")
	people := []struct {
		id      int64
		name    string
		gender  string
		age     int64
		country int64
	}{
		{1, "Tom Cruise", "Male", 50, 1},
		{2, "Clint Eastwood", "Male", 90, 1},
		{3, "Tom Hanks", "Male", 60, 1},
		{4, "Julia Roberts", "Female", 50, 1},
		{5, "Emma Stone", "Female", 29, 2},
		{6, "Julianne Moore", "Female", 60, 2},
	}
	for _, p := range people {
		person.MustAppend(relation.IntVal(p.id), relation.StringVal(p.name),
			relation.StringVal(p.gender), relation.IntVal(p.age), relation.IntVal(p.country))
	}
	db.AddRelation(person)
	db.MarkEntity("person")

	movie := relation.New("movie",
		relation.Col("id", relation.Int),
		relation.Col("title", relation.String),
		relation.Col("year", relation.Int),
	).SetPrimaryKey("id")
	for i := int64(0); i < 6; i++ {
		movie.MustAppend(relation.IntVal(10+i), relation.StringVal("Movie"+string(rune('A'+i))), relation.IntVal(2000+i))
	}
	db.AddRelation(movie)
	db.MarkEntity("movie")

	genre := relation.New("genre",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
	).SetPrimaryKey("id")
	genre.MustAppend(relation.IntVal(100), relation.StringVal("Comedy"))
	genre.MustAppend(relation.IntVal(101), relation.StringVal("Drama"))
	db.AddRelation(genre)
	db.MarkProperty("genre")

	castinfo := relation.New("castinfo",
		relation.Col("person_id", relation.Int),
		relation.Col("movie_id", relation.Int),
	).AddForeignKey("person_id", "person", "id").AddForeignKey("movie_id", "movie", "id")
	// person 1 in movies 10,11,12 (all Comedy); person 2 in 13,14 (Drama);
	// person 3 in 10 only; persons 4-6 in no movies.
	for _, c := range [][2]int64{{1, 10}, {1, 11}, {1, 12}, {2, 13}, {2, 14}, {3, 10}, {1, 10}} {
		castinfo.MustAppend(relation.IntVal(c[0]), relation.IntVal(c[1]))
	}
	db.AddRelation(castinfo)

	mg := relation.New("movietogenre",
		relation.Col("movie_id", relation.Int),
		relation.Col("genre_id", relation.Int),
	).AddForeignKey("movie_id", "movie", "id").AddForeignKey("genre_id", "genre", "id")
	for _, x := range [][2]int64{{10, 100}, {11, 100}, {12, 100}, {13, 101}, {14, 101}, {15, 101}} {
		mg.MustAppend(relation.IntVal(x[0]), relation.IntVal(x[1]))
	}
	db.AddRelation(mg)
	return db
}

func buildFixture(t *testing.T) *AlphaDB {
	t.Helper()
	a, err := Build(fixtureDB(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildDiscoversEntities(t *testing.T) {
	a := buildFixture(t)
	if len(a.Snapshot().Entities) != 2 {
		t.Fatalf("entities=%d want 2", len(a.Snapshot().Entities))
	}
	p := a.Entity("person")
	if p == nil || p.NumRows != 6 || p.PK != "id" {
		t.Fatalf("person info wrong: %+v", p)
	}
	if _, ok := p.RowByID(3); !ok {
		t.Error("RowByID failed")
	}
	if p.IDByRow(0) != 1 {
		t.Error("IDByRow failed")
	}
}

func TestBasicDirectProperties(t *testing.T) {
	p := buildFixture(t).Entity("person")
	gender := p.BasicByAttr("gender")
	if gender == nil || gender.Kind != Categorical {
		t.Fatal("gender property missing")
	}
	if got := gender.CategoricalSelectivity("Male"); got != 0.5 {
		t.Errorf("ψ(gender=Male)=%v want 0.5", got)
	}
	if got := gender.Values(0); len(got) != 1 || got[0] != "Male" {
		t.Errorf("Values(0)=%v", got)
	}
	age := p.BasicByAttr("age")
	if age == nil || age.Kind != Numeric {
		t.Fatal("age property missing")
	}
	// Fig 6: ψ(age∈[50,90]) = 5/6.
	if got := age.RangeSelectivity(50, 90); math.Abs(got-5.0/6.0) > 1e-9 {
		t.Errorf("ψ(age[50,90])=%v want 5/6", got)
	}
	if v, ok := age.NumValue(1); !ok || v != 90 {
		t.Errorf("NumValue(1)=%v,%v", v, ok)
	}
}

// TestIdentifierColumnsExcluded checks the distinct-ratio guard: on a
// relation large enough for the ratio to be meaningful, a unique text
// column (names) is not treated as a semantic property.
func TestIdentifierColumnsExcluded(t *testing.T) {
	db := relation.NewDatabase("big")
	p := relation.New("person",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("gender", relation.String),
	).SetPrimaryKey("id")
	for i := 0; i < 80; i++ {
		g := "Male"
		if i%2 == 0 {
			g = "Female"
		}
		p.MustAppend(relation.IntVal(int64(i)), relation.StringVal(fmt.Sprintf("Person %d", i)), relation.StringVal(g))
	}
	db.AddRelation(p)
	db.MarkEntity("person")
	a, err := Build(db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info := a.Entity("person")
	if info.BasicByAttr("name") != nil {
		t.Error("unique name column must be excluded from properties")
	}
	if info.BasicByAttr("gender") == nil {
		t.Error("low-cardinality gender column must be kept")
	}
}

func TestBasicFKDimProperty(t *testing.T) {
	p := buildFixture(t).Entity("person")
	country := p.BasicByAttr("country")
	if country == nil {
		t.Fatal("country FK-dim property missing")
	}
	if country.Access.Type != FKDim || country.Access.Dim != "country" {
		t.Errorf("access=%+v", country.Access)
	}
	if got := country.CategoricalSelectivity("Canada"); math.Abs(got-2.0/6.0) > 1e-9 {
		t.Errorf("ψ(country=Canada)=%v", got)
	}
	if got := country.Values(4); len(got) != 1 || got[0] != "Canada" {
		t.Errorf("Values(4)=%v", got)
	}
	rows := country.EntityRowsWithValue("Canada")
	if len(rows) != 2 || rows[0] != 4 || rows[1] != 5 {
		t.Errorf("rows=%v", rows)
	}
}

func TestBasicFactDimProperty(t *testing.T) {
	m := buildFixture(t).Entity("movie")
	genre := m.BasicByAttr("genre")
	if genre == nil || !genre.MultiValued {
		t.Fatal("movie genre fact-dim property missing or not multi-valued")
	}
	if got := genre.CategoricalSelectivity("Comedy"); math.Abs(got-3.0/6.0) > 1e-9 {
		t.Errorf("ψ(genre=Comedy)=%v want 0.5", got)
	}
	if got := genre.Values(0); len(got) != 1 || got[0] != "Comedy" {
		t.Errorf("Values(movie 10)=%v", got)
	}
}

func TestDerivedPersonToGenre(t *testing.T) {
	p := buildFixture(t).Entity("person")
	ptg := p.DerivedByAttr("movie:genre")
	if ptg == nil {
		t.Fatalf("persontogenre derived property missing; have %v", attrNames(p))
	}
	if ptg.RelName != "persontomovie_genre" {
		t.Errorf("RelName=%q", ptg.RelName)
	}
	// Person 1: 3 comedies (duplicate castinfo row for movie 10 counts once).
	counts := ptg.Counts(1)
	if counts["Comedy"] != 3 {
		t.Errorf("person 1 comedy count=%d want 3 (dedup)", counts["Comedy"])
	}
	// Person 2: 2 dramas.
	if got := ptg.Counts(2); got["Drama"] != 2 {
		t.Errorf("person 2 drama count=%v", got)
	}
	// ψ(genre=Comedy, θ=3) = 1/6 (only person 1).
	if got := ptg.Selectivity("Comedy", 3); math.Abs(got-1.0/6.0) > 1e-9 {
		t.Errorf("ψ(Comedy,3)=%v", got)
	}
	// ψ(genre=Comedy, θ=1) = 2/6 (persons 1 and 3).
	if got := ptg.Selectivity("Comedy", 1); math.Abs(got-2.0/6.0) > 1e-9 {
		t.Errorf("ψ(Comedy,1)=%v", got)
	}
	// θ=0 is satisfied by everyone.
	if got := ptg.Selectivity("Comedy", 0); got != 1 {
		t.Errorf("ψ(Comedy,0)=%v", got)
	}
	if got := ptg.MaxStrength("Comedy"); got != 3 {
		t.Errorf("MaxStrength=%d", got)
	}
	rows := ptg.EntityRowsWithStrength("Comedy", 2)
	if len(rows) != 1 || rows[0] != 0 {
		t.Errorf("rows(Comedy,≥2)=%v", rows)
	}
}

func TestDerivedDegree(t *testing.T) {
	p := buildFixture(t).Entity("person")
	deg := p.DerivedByAttr("movie:count")
	if deg == nil {
		t.Fatalf("degree property missing; have %v", attrNames(p))
	}
	if got := deg.Counts(1); got["movie"] != 3 {
		t.Errorf("person 1 degree=%v", got)
	}
	// 3 of 6 persons appear in ≥1 movie.
	if got := deg.Selectivity("movie", 1); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("ψ(degree≥1)=%v", got)
	}
}

func TestDomainCoverage(t *testing.T) {
	p := buildFixture(t).Entity("person")
	age := p.BasicByAttr("age")
	// Domain is [29, 90], span 61.
	if got := age.DomainCoverage(29, 90); got != 1 {
		t.Errorf("full coverage=%v", got)
	}
	if got := age.DomainCoverage(50, 60); math.Abs(got-10.0/61.0) > 1e-9 {
		t.Errorf("coverage=%v", got)
	}
	gender := p.BasicByAttr("gender")
	if got := gender.CategoricalDomainCoverage(1); got != 0.5 {
		t.Errorf("cat coverage=%v", got)
	}
	if got := gender.CategoricalDomainCoverage(5); got != 1 {
		t.Errorf("cat coverage clamps to 1, got %v", got)
	}
}

func TestCombinedDBContainsDerived(t *testing.T) {
	a := buildFixture(t)
	c := a.CombinedDB()
	if c.Relation("persontomovie_genre") == nil {
		t.Error("combined DB must include derived relations")
	}
	if c.Relation("person") == nil {
		t.Error("combined DB must include original relations")
	}
}

func TestStats(t *testing.T) {
	a := buildFixture(t)
	s := a.ComputeStats()
	if s.NumRelations != 6 {
		t.Errorf("relations=%d", s.NumRelations)
	}
	if s.NumDerivedRels == 0 || s.DerivedRows == 0 {
		t.Error("derived stats empty")
	}
	if s.NumBasicProps == 0 || s.NumDerivedProp == 0 {
		t.Error("property counts empty")
	}
	if s.String() == "" {
		t.Error("String render empty")
	}
}

func TestBuildErrors(t *testing.T) {
	db := relation.NewDatabase("bad")
	db.AddRelation(relation.New("x", relation.Col("id", relation.Int)))
	if _, err := Build(db, DefaultConfig()); err == nil {
		t.Error("no entity relations must error")
	}

	db2 := relation.NewDatabase("bad2")
	db2.AddRelation(relation.New("e", relation.Col("id", relation.Int)))
	db2.MarkEntity("e")
	if _, err := Build(db2, DefaultConfig()); err == nil {
		t.Error("entity without PK must error")
	}

	db3 := relation.NewDatabase("bad3")
	r := relation.New("e", relation.Col("id", relation.String)).SetPrimaryKey("id")
	r.MustAppend(relation.StringVal("a"))
	db3.AddRelation(r)
	db3.MarkEntity("e")
	if _, err := Build(db3, DefaultConfig()); err == nil {
		t.Error("non-integer PK must error")
	}
}

func TestSelectivityBounds(t *testing.T) {
	// All selectivities must lie in [0, 1].
	a := buildFixture(t)
	for _, e := range a.Snapshot().Entities {
		for _, b := range e.Basic {
			if b.Kind == Categorical {
				for _, v := range b.DistinctValues() {
					if s := b.CategoricalSelectivity(v); s < 0 || s > 1 {
						t.Errorf("%s ψ(%s)=%v out of range", b, v, s)
					}
				}
			} else {
				idx := b.NumericIndex()
				if s := b.RangeSelectivity(idx.Min(), idx.Max()); s <= 0 || s > 1 {
					t.Errorf("%s full-range ψ=%v", b, s)
				}
			}
		}
		for _, d := range e.Derived {
			for _, v := range d.DistinctValues() {
				for theta := 0; theta <= d.MaxStrength(v)+1; theta++ {
					if s := d.Selectivity(v, theta); s < 0 || s > 1 {
						t.Errorf("%s ψ(%s,%d)=%v out of range", d, v, theta, s)
					}
				}
			}
		}
	}
}

func TestDerivedSelectivityMonotoneInTheta(t *testing.T) {
	a := buildFixture(t)
	for _, e := range a.Snapshot().Entities {
		for _, d := range e.Derived {
			for _, v := range d.DistinctValues() {
				prev := 2.0
				for theta := 1; theta <= d.MaxStrength(v)+2; theta++ {
					s := d.Selectivity(v, theta)
					if s > prev {
						t.Errorf("%s ψ(%s,θ) not monotone at θ=%d: %v > %v", d, v, theta, s, prev)
					}
					prev = s
				}
			}
		}
	}
}

func TestMaxFactDepth1SkipsSecondHop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFactDepth = 1
	a, err := Build(fixtureDB(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := a.Entity("person")
	if p.DerivedByAttr("movie:genre") != nil {
		t.Error("depth-1 build must not create persontogenre")
	}
	if p.DerivedByAttr("movie:count") == nil {
		t.Error("depth-1 build must still create the degree property")
	}
}

func attrNames(e *EntityInfo) []string {
	var out []string
	for _, b := range e.Basic {
		out = append(out, "basic:"+b.Attr)
	}
	for _, d := range e.Derived {
		out = append(out, "derived:"+d.Attr)
	}
	return out
}
