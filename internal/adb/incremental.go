package adb

import (
	"fmt"
	"sort"

	"squid/internal/index"
	"squid/internal/relation"
)

// This file implements one of the paper's §9 future directions:
// efficient αDB maintenance for dynamic datasets. Instead of rebuilding
// the αDB after data changes, InsertEntity and InsertFact apply the
// delta to the affected per-property statistics, derived relations, and
// indexes. Only inserts are supported (append-only maintenance), which
// covers the common catalog-growth workload; deletions still require a
// rebuild.
//
// Every insert runs under the αDB's exclusive epoch lock (AlphaDB.mu),
// so it is safe to call concurrently with discovery: readers pin the
// pre- or post-insert epoch, never a half-applied one. Each insert
// reports the properties whose statistics it shifted, and only those
// properties' selectivity-cache entries are invalidated — memoized row
// sets of untouched relations stay live through sustained ingest.

// InsertEntity appends a new row to an entity relation and updates the
// αDB's statistics for that entity's direct and FK-dimension properties.
// The row's values must match the relation schema. Safe to call
// concurrently with discovery (it takes the αDB's write lock).
func (a *AlphaDB) InsertEntity(entityRel string, vals ...relation.Value) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	touched, err := a.insertEntityLocked(entityRel, vals)
	a.selCache.InvalidateProps(touched...)
	return err
}

// insertEntityLocked applies one entity-row insert under the held write
// lock and returns the properties whose statistics shifted — every
// property of the entity, since the selectivity denominator |R| grew.
func (a *AlphaDB) insertEntityLocked(entityRel string, vals []relation.Value) ([]any, error) {
	info := a.Entities[entityRel]
	if info == nil {
		return nil, fmt.Errorf("adb: %q is not an entity relation", entityRel)
	}
	rel := info.rel
	pkIdx := rel.ColumnIndex(rel.PrimaryKey)
	if pkIdx < 0 || pkIdx >= len(vals) {
		return nil, fmt.Errorf("adb: insert into %q lacks a primary key value", entityRel)
	}
	pk := vals[pkIdx]
	if pk.IsNull() {
		return nil, fmt.Errorf("adb: NULL primary key")
	}
	if _, dup := info.RowByID(pk.Int()); dup {
		return nil, fmt.Errorf("adb: duplicate primary key %v in %q", pk, entityRel)
	}
	if err := rel.Append(vals...); err != nil {
		return nil, err
	}
	row := rel.NumRows() - 1
	info.NumRows = rel.NumRows()
	info.rowIDs = append(info.rowIDs, pk.Int())
	// The shared index pool maintains every materialized index of this
	// relation (including pkIndex, which lives in the pool) in place.
	a.Indexes.NoteAppend(rel, row)

	// Update basic-property statistics for the new row. The selectivity
	// denominator |R| grew, so every property of this entity shifted —
	// but only of this entity: properties of other relations keep their
	// cached row sets.
	touched := make([]any, 0, len(info.Basic)+len(info.Derived))
	for _, p := range info.Basic {
		p.numEntities = info.NumRows
		touched = append(touched, p)
		switch p.Access.Type {
		case Direct:
			a.insertDirectValue(p, rel, row)
		case FKDim:
			a.insertFKDimValue(p, rel, row)
		default:
			// FactDim/AttrTable properties gain values only via fact
			// inserts; the new entity simply has none yet.
			if p.Kind == Categorical {
				p.valsByRow = append(p.valsByRow, nil)
			}
		}
	}
	for _, p := range info.Derived {
		p.numEntities = info.NumRows
		touched = append(touched, p)
	}

	// Index the new row's text values for entity lookup.
	for _, col := range rel.Columns() {
		if col.Type != relation.String || col.IsNull(row) {
			continue
		}
		a.Inverted.Insert(col.Str(row), index.Posting{Relation: entityRel, Column: col.Name, Row: row})
	}
	return touched, nil
}

func (a *AlphaDB) insertDirectValue(p *BasicProperty, rel *relation.Relation, row int) {
	col := rel.Column(p.Access.Column)
	if p.Kind == Numeric {
		p.numByRow = append(p.numByRow, nil)
		if !col.IsNull(row) {
			v := col.Float64(row)
			p.numByRow[row] = &v
			p.sorted = p.sorted.Insert(v)
			p.numIdx = p.numIdx.Insert(v, row)
		}
		return
	}
	p.valsByRow = append(p.valsByRow, nil)
	if !col.IsNull(row) {
		code := col.Code(row)
		p.valsByRow[row] = []int32{code}
		p.addCatRow(code, row)
	}
}

func (a *AlphaDB) insertFKDimValue(p *BasicProperty, rel *relation.Relation, row int) {
	p.valsByRow = append(p.valsByRow, nil)
	fkc := rel.Column(p.Access.Column)
	if fkc.IsNull(row) {
		return
	}
	dim := a.DB.Relation(p.Access.Dim)
	dimIdx := a.Indexes.IntHash(dim, p.Access.DimPK)
	vc := dim.Column(p.Access.DimValueCol)
	if dimRow, ok := dimIdx.First(fkc.Int64(row)); ok && !vc.IsNull(dimRow) {
		code := vc.Code(dimRow)
		p.valsByRow[row] = []int32{code}
		p.addCatRow(code, row)
	}
}

// InsertFact appends a row to a fact table and incrementally updates the
// affected fact-dimension basic properties and derived relations of
// every entity the fact references. The fact relation must have been
// present at Build time. Safe to call concurrently with discovery (it
// takes the αDB's write lock).
func (a *AlphaDB) InsertFact(factRel string, vals ...relation.Value) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	touched, err := a.insertFactLocked(factRel, vals)
	a.selCache.InvalidateProps(touched...)
	return err
}

// insertFactLocked applies one fact-row insert under the held write lock
// and returns the properties whose statistics shifted: only those routed
// through this fact table for the entities the row references —
// properties of unrelated relations (and even direct properties of the
// referenced entities) keep their cached row sets.
func (a *AlphaDB) insertFactLocked(factRel string, vals []relation.Value) ([]any, error) {
	fact := a.DB.Relation(factRel)
	if fact == nil {
		return nil, fmt.Errorf("adb: unknown fact relation %q", factRel)
	}
	if a.DB.Kind(factRel) != relation.KindUnknown {
		return nil, fmt.Errorf("adb: %q is not a fact relation", factRel)
	}
	if err := fact.Append(vals...); err != nil {
		return nil, err
	}
	row := fact.NumRows() - 1
	a.Indexes.NoteAppend(fact, row)

	var touched []any
	for _, fk := range fact.Foreign {
		info := a.Entities[fk.RefRelation]
		if info == nil {
			continue
		}
		fkCol := fact.Column(fk.Column)
		if fkCol.IsNull(row) {
			continue
		}
		eRow, ok := info.RowByID(fkCol.Int64(row))
		if !ok {
			continue
		}
		// Fact-dimension basic properties routed through this fact
		// (including entity-association properties), and attribute-table
		// properties when the "fact" is a single-FK side table.
		for _, p := range info.Basic {
			switch {
			case p.Access.Type == FactDim && p.Access.Fact == factRel && p.Access.FactEntityCol == fk.Column:
				a.insertFactDimValue(p, fact, row, eRow)
				touched = append(touched, p)
			case p.Access.Type == AttrTable && p.Access.Fact == factRel && p.Access.FactEntityCol == fk.Column:
				a.insertAttrTableValue(p, fact, row, eRow)
				touched = append(touched, p)
			}
		}
		// Derived properties whose first hop is this fact.
		for _, p := range info.Derived {
			if p.Fact1 != factRel || p.Fact1EntityCol != fk.Column {
				continue
			}
			a.insertDerivedDelta(info, p, fact, row, eRow)
			touched = append(touched, p)
		}
	}
	return touched, nil
}

// InsertOp describes one row of an InsertBatch: the target relation
// (entity or fact, dispatched automatically) and its values.
type InsertOp struct {
	Rel  string
	Vals []relation.Value
}

// InsertBatch appends many rows inside one critical section, amortizing
// the αDB's write lock and the cache invalidation over the whole batch:
// concurrent discoveries wait once per batch instead of once per row,
// and each touched property's generation moves once. Rows apply in
// order; on the first failure the batch stops, already-applied rows
// stay (append-only maintenance has no rollback), their invalidations
// are published, and the error reports the failing row's index.
func (a *AlphaDB) InsertBatch(ops []InsertOp) error {
	if len(ops) == 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	touched := make(map[any]struct{})
	var firstErr error
	for i, op := range ops {
		var t []any
		var err error
		if a.Entities[op.Rel] != nil {
			t, err = a.insertEntityLocked(op.Rel, op.Vals)
		} else {
			t, err = a.insertFactLocked(op.Rel, op.Vals)
		}
		for _, p := range t {
			touched[p] = struct{}{}
		}
		if err != nil {
			firstErr = fmt.Errorf("adb: batch insert %d into %q: %w", i, op.Rel, err)
			break
		}
	}
	if len(touched) > 0 {
		props := make([]any, 0, len(touched))
		for p := range touched {
			props = append(props, p)
		}
		a.selCache.InvalidateProps(props...)
	}
	return firstErr
}

// addCatValueAt records code for the entity at eRow, inserting into the
// posting list in row order (fact inserts touch arbitrary entity rows).
func (p *BasicProperty) addCatValueAt(code int32, eRow int) {
	p.growTo(code)
	if p.catCounts[code] == 0 {
		p.numValues++
	}
	p.catCounts[code]++
	p.catRows[code] = insertSortedInt(p.catRows[code], eRow)
}

func (a *AlphaDB) insertFactDimValue(p *BasicProperty, fact *relation.Relation, factRow, eRow int) {
	dimFK := fact.Column(p.Access.FactDimCol)
	if dimFK.IsNull(factRow) {
		return
	}
	dim := a.DB.Relation(p.Access.Dim)
	dimIdx := a.Indexes.IntHash(dim, p.Access.DimPK)
	vc := dim.Column(p.Access.DimValueCol)
	dimRow, ok := dimIdx.First(dimFK.Int64(factRow))
	if !ok || vc.IsNull(dimRow) {
		return
	}
	code := vc.Code(dimRow)
	for _, existing := range p.valsByRow[eRow] {
		if existing == code {
			p.valsByRow[eRow] = append(p.valsByRow[eRow], code)
			return // value already counted for this entity
		}
	}
	p.valsByRow[eRow] = append(p.valsByRow[eRow], code)
	p.addCatValueAt(code, eRow)
}

// insertAttrTableValue maintains an attribute-table basic property
// (research(aid, interest)-style) for one inserted side-table row.
func (a *AlphaDB) insertAttrTableValue(p *BasicProperty, side *relation.Relation, sideRow, eRow int) {
	col := side.Column(p.Access.Column)
	if col.IsNull(sideRow) {
		return
	}
	code := col.Code(sideRow)
	for _, existing := range p.valsByRow[eRow] {
		if existing == code {
			p.valsByRow[eRow] = append(p.valsByRow[eRow], code)
			return // value already counted for this entity
		}
	}
	p.valsByRow[eRow] = append(p.valsByRow[eRow], code)
	p.addCatValueAt(code, eRow)
}

// insertDerivedDelta bumps the derived counts of one entity for the new
// association. It resolves the associated entity and the aggregated
// value(s) exactly as the batch builder does, then adjusts the derived
// relation rows and the per-value selectivity indexes.
func (a *AlphaDB) insertDerivedDelta(info *EntityInfo, p *DerivedProperty, fact *relation.Relation, factRow, eRow int) {
	viaCol := fact.Column(p.Fact1ViaCol)
	if viaCol.IsNull(factRow) {
		return
	}
	via := a.DB.Relation(p.Via)
	viaIdx := a.Indexes.IntHash(via, p.ViaPK)
	vRow, ok := viaIdx.First(viaCol.Int64(factRow))
	if !ok {
		return
	}
	var values []string
	switch p.Target.Type {
	case Degree:
		values = []string{p.Via}
	case Direct:
		c := via.Column(p.Target.Column)
		if !c.IsNull(vRow) {
			values = []string{c.Str(vRow)}
		}
	case FKDim:
		fkc := via.Column(p.Target.Column)
		if !fkc.IsNull(vRow) {
			dim := a.DB.Relation(p.Target.Dim)
			dimIdx := a.Indexes.IntHash(dim, p.Target.DimPK)
			vc := dim.Column(p.Target.DimValueCol)
			if dr, ok := dimIdx.First(fkc.Int64(vRow)); ok && !vc.IsNull(dr) {
				values = []string{vc.Str(dr)}
			}
		}
	case FactDim:
		fact2 := a.DB.Relation(p.Target.Fact)
		dim := a.DB.Relation(p.Target.Dim)
		dimIdx := a.Indexes.IntHash(dim, p.Target.DimPK)
		vc := dim.Column(p.Target.DimValueCol)
		d2 := fact2.Column(p.Target.FactDimCol)
		viaID := via.Column(p.ViaPK).Int64(vRow)
		// The second-fact rows of this via-entity come from the hash
		// index instead of a full fact2 scan.
		for _, fr := range a.Indexes.IntHash(fact2, p.Target.FactEntityCol).Rows(viaID) {
			if d2.IsNull(fr) {
				continue
			}
			if dr, ok := dimIdx.First(d2.Int64(fr)); ok && !vc.IsNull(dr) {
				values = append(values, vc.Str(dr))
			}
		}
	}
	entityID := info.rowIDs[eRow]
	for _, v := range values {
		p.bump(a.Indexes, entityID, eRow, v)
	}
}

// bump increments the (entity, value) association strength by one,
// updating the derived relation, the per-value rows, and the sorted
// count index. The shared index pool keeps the entity_id hash index
// consistent (appends) and drops any index over the mutated count
// column.
func (p *DerivedProperty) bump(idx *index.IndexSet, entityID int64, eRow int, v string) {
	// Locate the existing derived row by comparing value codes.
	vcol, ccol := p.rel.Column("value"), p.rel.Column("count")
	code, known := vcol.Dict().Lookup(v)
	old := 0
	found := -1
	if known {
		for _, r := range p.byEntity.Rows(entityID) {
			if vcol.Code(r) == code {
				found = r
				old = int(ccol.Int64(r))
				break
			}
		}
	}
	if found >= 0 {
		_ = ccol.Set(found, relation.IntVal(int64(old+1)))
		idx.Drop(p.rel.Name, "count")
	} else {
		p.rel.MustAppend(relation.IntVal(entityID), relation.StringVal(v), relation.IntVal(1))
		code = vcol.Code(p.rel.NumRows() - 1)
		idx.NoteAppend(p.rel, p.rel.NumRows()-1)
	}
	p.growTo(code)
	// Per-value row list: insert in entity-row order (the invariant
	// behind StrengthOf's binary search and merge intersection).
	vcs := p.perValueRows[code]
	at := sort.Search(len(vcs), func(i int) bool { return vcs[i].entityRow >= eRow })
	if at < len(vcs) && vcs[at].entityRow == eRow {
		vcs[at].count = old + 1
	} else {
		vcs = append(vcs, valCount{})
		copy(vcs[at+1:], vcs[at:])
		vcs[at] = valCount{entityRow: eRow, count: old + 1}
		p.perValueRows[code] = vcs
	}
	// Sorted selectivity index: replace old count with new.
	s := p.perValue[code]
	if s == nil {
		p.perValue[code] = index.BuildSortedFromValues([]float64{float64(old + 1)})
		return
	}
	p.perValue[code] = s.Replace(float64(old), float64(old+1), old == 0)
}

func insertSortedInt(xs []int, v int) []int {
	lo := 0
	for lo < len(xs) && xs[lo] < v {
		lo++
	}
	if lo < len(xs) && xs[lo] == v {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[lo+1:], xs[lo:])
	xs[lo] = v
	return xs
}
