package adb

import (
	"fmt"
	"sort"

	"squid/internal/index"
	"squid/internal/relation"
	"squid/internal/trace"
)

// This file implements one of the paper's §9 future directions —
// efficient αDB maintenance for dynamic datasets — as a copy-on-write
// epoch writer. Instead of rebuilding the αDB (or mutating it under a
// global lock), an insert batch builds the next epoch: it clones
// exactly the relations, per-property statistics, and index shards the
// batch touches, structurally shares everything else with the base
// epoch, applies the same per-row delta logic as before to the private
// clones, and publishes the result with one atomic pointer swap
// (AlphaDB.publish). Readers pinned to older epochs are never stalled
// and never observe a half-applied batch. Only inserts are supported
// (append-only maintenance), which covers the common catalog-growth
// workload; deletions still require a rebuild.
//
// Writers coordinate per relation: each insert locks only the write
// domain of the relations it touches (AlphaDB.lockDomains), so inserts
// into disjoint relations build their epochs in parallel and the
// publish combiner merges them into one chain.

// epochBuilder accumulates one writer's copy-on-write changes against
// a base epoch. Privatization is lazy and per-structure: the first
// touch of a relation, property, or index shard clones it; later
// touches in the same batch mutate the private clone in place. Inner
// row lists are shared with the base and only ever appended past the
// base's lengths — in-place mutations (derived-count bumps, mid-list
// insertions) always copy the affected list out first.
type epochBuilder struct {
	base *Epoch
	idx  *index.IndexDelta

	baseRels    map[string]*relation.Relation // privatized base relations
	derivedRels map[string]*relation.Relation // privatized derived relations
	entities    map[string]*EntityInfo        // privatized entity infos
	isPriv      map[any]bool                  // clones created by this builder
	oldProps    []any                         // replaced property identities
	newProps    []any                         // their clones, admitted at publish
	rowCounts   map[string]int                // updated base-relation row counts

	// logRows, when set (a publish hook is attached), makes the builder
	// record every successfully applied row in apply order — the epoch
	// delta a write-ahead log record carries. Apply order matters:
	// replaying the rows through the same insert path reproduces the
	// epoch byte-identically, including a fact row that referenced an
	// entity inserted later in the batch.
	logRows bool
	applied []AppliedRow
}

// AppliedRow is one row a publish applied: the target relation and the
// exact values appended (the unit of the WAL's epoch-delta records).
type AppliedRow struct {
	Rel  string
	Vals []relation.Value
}

// noteApplied records a successfully applied row for the publish hook.
// Values are copied: the caller's slice may be reused.
func (eb *epochBuilder) noteApplied(rel string, vals []relation.Value) {
	if !eb.logRows {
		return
	}
	eb.applied = append(eb.applied, AppliedRow{
		Rel:  rel,
		Vals: append([]relation.Value(nil), vals...),
	})
}

func newEpochBuilder(base *Epoch) *epochBuilder {
	return &epochBuilder{
		base:        base,
		idx:         index.NewIndexDelta(base.Indexes),
		baseRels:    make(map[string]*relation.Relation),
		derivedRels: make(map[string]*relation.Relation),
		entities:    make(map[string]*EntityInfo),
		isPriv:      make(map[any]bool),
		rowCounts:   make(map[string]int),
	}
}

// dirty reports whether the builder changed anything worth publishing.
func (eb *epochBuilder) dirty() bool {
	return len(eb.baseRels) > 0 || len(eb.derivedRels) > 0 || len(eb.entities) > 0
}

// finalize rebuilds the attribute maps of privatized entities (their
// clones still index the base's property pointers) before publish.
func (eb *epochBuilder) finalize() {
	for _, info := range eb.entities {
		info.buildAttrMaps()
	}
}

// baseRel privatizes a base relation for appends.
func (eb *epochBuilder) baseRel(name string) *relation.Relation {
	if r := eb.baseRels[name]; r != nil {
		return r
	}
	r := eb.base.DB.Relation(name)
	if r == nil {
		return nil
	}
	r = r.CloneForWrite()
	eb.baseRels[name] = r
	return r
}

// derivedRel privatizes a derived relation; the count column gets a
// deep copy because bumps overwrite existing cells in place.
func (eb *epochBuilder) derivedRel(name string) *relation.Relation {
	if r := eb.derivedRels[name]; r != nil {
		return r
	}
	r := eb.base.DerivedDB.Relation(name)
	if r == nil {
		return nil
	}
	r = r.CloneForWrite("count")
	eb.derivedRels[name] = r
	return r
}

// viewRel returns the batch's view of a base relation: the private
// clone when this writer already touched it, the base's otherwise.
func (eb *epochBuilder) viewRel(name string) *relation.Relation {
	if r := eb.baseRels[name]; r != nil {
		return r
	}
	return eb.base.DB.Relation(name)
}

// entity privatizes an EntityInfo: a shallow clone with its own
// property slices, so the builder can swap in property clones.
func (eb *epochBuilder) entity(name string) *EntityInfo {
	if info := eb.entities[name]; info != nil {
		return info
	}
	old := eb.base.Entities[name]
	if old == nil {
		return nil
	}
	q := *old
	q.Basic = append([]*BasicProperty(nil), old.Basic...)
	q.Derived = append([]*DerivedProperty(nil), old.Derived...)
	eb.entities[name] = &q
	return &q
}

// viewEntity returns the batch's view of an entity (private clone or
// base), for lookups that must see rows inserted earlier in the batch.
func (eb *epochBuilder) viewEntity(name string) *EntityInfo {
	if info := eb.entities[name]; info != nil {
		return info
	}
	return eb.base.Entities[name]
}

// privBasic privatizes the i-th basic property of a (privatized)
// entity; idempotent within the batch.
func (eb *epochBuilder) privBasic(info *EntityInfo, i int) *BasicProperty {
	p := info.Basic[i]
	if eb.isPriv[p] {
		return p
	}
	q := p.cloneForWrite()
	eb.isPriv[q] = true
	eb.oldProps = append(eb.oldProps, p)
	eb.newProps = append(eb.newProps, q)
	info.Basic[i] = q
	return q
}

// privDerived privatizes the i-th derived property of a (privatized)
// entity; idempotent within the batch.
func (eb *epochBuilder) privDerived(info *EntityInfo, i int) *DerivedProperty {
	p := info.Derived[i]
	if eb.isPriv[p] {
		return p
	}
	q := p.cloneForWrite()
	eb.isPriv[q] = true
	eb.oldProps = append(eb.oldProps, p)
	eb.newProps = append(eb.newProps, q)
	info.Derived[i] = q
	return q
}

// InsertEntity appends a row to an entity relation and publishes the
// next epoch with that entity's statistics maintained (the §9
// dynamic-dataset extension). Safe to call concurrently with discovery
// (readers are wait-free on their pinned epochs) and with inserts into
// other relations (per-relation writer locks).
func (a *AlphaDB) InsertEntity(entityRel string, vals ...relation.Value) error {
	unlock := a.lockDomains([]string{entityRel})
	defer unlock()
	eb := newEpochBuilder(a.Snapshot())
	eb.logRows = a.publishHook != nil
	err := eb.insertEntity(entityRel, vals)
	a.publish(eb)
	return err
}

// InsertFact appends a row to a fact relation and publishes the next
// epoch with the affected derived relations and statistics maintained.
// The fact relation must have been present at Build time. Safe to call
// concurrently with discovery and with inserts into disjoint relations.
func (a *AlphaDB) InsertFact(factRel string, vals ...relation.Value) error {
	unlock := a.lockDomains([]string{factRel})
	defer unlock()
	eb := newEpochBuilder(a.Snapshot())
	eb.logRows = a.publishHook != nil
	err := eb.insertFact(factRel, vals)
	a.publish(eb)
	return err
}

// InsertOp describes one row of an InsertBatch: the target relation
// (entity or fact, dispatched automatically) and its values.
type InsertOp struct {
	Rel  string
	Vals []relation.Value
}

// InsertBatch appends many rows — entity and fact rows may be mixed —
// into one copy-on-write epoch, amortizing the structure clones and
// the publish over the whole batch: the touched relations' statistics
// are cloned once per batch, not once per row, and readers observe the
// batch atomically (all rows or, before the publish, none). Rows apply
// in order; on the first failure the batch stops, already-applied rows
// are still published (append-only maintenance has no rollback), and
// the error reports the failing row's index.
func (a *AlphaDB) InsertBatch(ops []InsertOp) error {
	return a.InsertBatchT(ops, trace.Span{})
}

// InsertBatchT is InsertBatch with trace attribution: the per-relation
// writer-lock acquisition is a publish_wait span (the time this batch
// spent blocked behind other writers of its domains), the copy-on-write
// apply loop is an apply span counting its rows, and the publish step
// (with its WAL append) nests under publishT. The zero Span makes it
// exactly InsertBatch.
func (a *AlphaDB) InsertBatchT(ops []InsertOp, sp trace.Span) error {
	if len(ops) == 0 {
		return nil
	}
	rels := make([]string, len(ops))
	for i, op := range ops {
		rels[i] = op.Rel
	}
	ws := sp.Child(trace.PhasePublishWait, "")
	unlock := a.lockDomains(rels)
	ws.End()
	defer unlock()
	eb := newEpochBuilder(a.Snapshot())
	eb.logRows = a.publishHook != nil
	as := sp.Child(trace.PhaseApply, "")
	var firstErr error
	for i, op := range ops {
		var err error
		if eb.base.Entities[op.Rel] != nil {
			err = eb.insertEntity(op.Rel, op.Vals)
		} else {
			err = eb.insertFact(op.Rel, op.Vals)
		}
		if err != nil {
			firstErr = fmt.Errorf("adb: batch insert %d into %q: %w", i, op.Rel, err)
			break
		}
		as.Add(trace.CounterRows, 1)
	}
	as.End()
	a.publishT(eb, sp)
	return firstErr
}

// insertEntity applies one entity-row insert to the builder's clones:
// every property of the entity shifts (the selectivity denominator |R|
// grew), so all of them privatize — but only of this entity; other
// relations' properties keep their identities and their cached row
// sets.
func (eb *epochBuilder) insertEntity(entityRel string, vals []relation.Value) error {
	if eb.base.Entities[entityRel] == nil {
		return fmt.Errorf("adb: %q is not an entity relation", entityRel)
	}
	// Validate against the batch's view BEFORE privatizing anything, so
	// a rejected row (duplicate or NULL key, arity or type mismatch)
	// leaves the builder clean: no ragged clone, no data-identical
	// epoch published for it.
	view := eb.viewRel(entityRel)
	pkIdx := view.ColumnIndex(view.PrimaryKey)
	if pkIdx < 0 || pkIdx >= len(vals) {
		return fmt.Errorf("adb: insert into %q lacks a primary key value", entityRel)
	}
	if err := view.ValidateRow(vals); err != nil {
		return err
	}
	pk := vals[pkIdx]
	if pk.IsNull() {
		return fmt.Errorf("adb: NULL primary key")
	}
	if _, dup := eb.viewEntity(entityRel).RowByID(pk.Int()); dup {
		return fmt.Errorf("adb: duplicate primary key %v in %q", pk, entityRel)
	}
	info := eb.entity(entityRel)
	rel := eb.baseRel(entityRel)
	info.rel = rel
	if err := rel.Append(vals...); err != nil {
		return err
	}
	row := rel.NumRows() - 1
	info.NumRows = rel.NumRows()
	info.rowIDs = append(info.rowIDs, pk.Int())
	eb.rowCounts[entityRel] = rel.NumRows()
	// Privatize and maintain every materialized index of this relation
	// (including the primary-key index) for the new row.
	eb.idx.NoteAppend(rel, row)
	info.pkIndex = eb.idx.ReadIntHash(rel, rel.PrimaryKey)

	// Update basic-property statistics for the new row.
	for i := range info.Basic {
		p := eb.privBasic(info, i)
		p.numEntities = info.NumRows
		switch p.Access.Type {
		case Direct:
			eb.insertDirectValue(p, rel, row)
		case FKDim:
			eb.insertFKDimValue(p, rel, row)
		default:
			// FactDim/AttrTable properties gain values only via fact
			// inserts; the new entity simply has none yet.
			if p.Kind == Categorical {
				p.valsByRow = append(p.valsByRow, nil)
			}
		}
	}
	for i := range info.Derived {
		p := eb.privDerived(info, i)
		p.numEntities = info.NumRows
	}

	// Index the new row's text values for entity lookup. The posting
	// becomes visible to epoch-pinned readers only once the publish
	// raises this relation's row count past it.
	for _, col := range rel.Columns() {
		if col.Type != relation.String || col.IsNull(row) {
			continue
		}
		eb.base.Inverted.Insert(col.Str(row), index.Posting{Relation: entityRel, Column: col.Name, Row: row})
	}
	eb.noteApplied(entityRel, vals)
	return nil
}

func (eb *epochBuilder) insertDirectValue(p *BasicProperty, rel *relation.Relation, row int) {
	col := rel.Column(p.Access.Column)
	if p.Kind == Numeric {
		p.numByRow = append(p.numByRow, nil)
		if !col.IsNull(row) {
			v := col.Float64(row)
			p.numByRow[row] = &v
			p.sorted = p.sorted.Insert(v) // private clone: in-place is safe
			p.numIdx = p.numIdx.Insert(v, row)
		}
		return
	}
	p.valsByRow = append(p.valsByRow, nil)
	if !col.IsNull(row) {
		code := col.Code(row)
		p.valsByRow[row] = []int32{code}
		p.addCatRow(code, row)
	}
}

func (eb *epochBuilder) insertFKDimValue(p *BasicProperty, rel *relation.Relation, row int) {
	p.valsByRow = append(p.valsByRow, nil)
	fkc := rel.Column(p.Access.Column)
	if fkc.IsNull(row) {
		return
	}
	// Dimension relations are never written; reading them (and their
	// lazily built base indexes) needs no privatization.
	dim := eb.base.DB.Relation(p.Access.Dim)
	dimIdx := eb.idx.ReadIntHash(dim, p.Access.DimPK)
	vc := dim.Column(p.Access.DimValueCol)
	if dimRow, ok := dimIdx.First(fkc.Int64(row)); ok && !vc.IsNull(dimRow) {
		code := vc.Code(dimRow)
		p.valsByRow[row] = []int32{code}
		p.addCatRow(code, row)
	}
}

// insertFact applies one fact-row insert to the builder's clones: only
// the properties routed through this fact table for the entities the
// row references privatize — properties of unrelated relations (and
// even direct properties of the referenced entities) keep their
// identities and cached row sets.
func (eb *epochBuilder) insertFact(factRel string, vals []relation.Value) error {
	if eb.base.DB.Relation(factRel) == nil {
		return fmt.Errorf("adb: unknown fact relation %q", factRel)
	}
	if eb.base.DB.Kind(factRel) != relation.KindUnknown {
		return fmt.Errorf("adb: %q is not a fact relation", factRel)
	}
	// Validate before privatizing: a rejected row must not dirty the
	// builder (publishing a data-identical epoch) or leave a ragged
	// clone behind.
	if err := eb.viewRel(factRel).ValidateRow(vals); err != nil {
		return err
	}
	fact := eb.baseRel(factRel)
	if err := fact.Append(vals...); err != nil {
		return err
	}
	row := fact.NumRows() - 1
	eb.rowCounts[factRel] = fact.NumRows()
	eb.idx.NoteAppend(fact, row)

	for _, fk := range fact.Foreign {
		if eb.base.Entities[fk.RefRelation] == nil {
			continue
		}
		fkCol := fact.Column(fk.Column)
		if fkCol.IsNull(row) {
			continue
		}
		// Resolve through the batch's view, so a fact can reference an
		// entity inserted earlier in the same batch.
		eRow, ok := eb.viewEntity(fk.RefRelation).RowByID(fkCol.Int64(row))
		if !ok {
			continue
		}
		info := eb.entity(fk.RefRelation)
		// Fact-dimension basic properties routed through this fact
		// (including entity-association properties), and attribute-table
		// properties when the "fact" is a single-FK side table.
		for i := range info.Basic {
			p := info.Basic[i]
			switch {
			case p.Access.Type == FactDim && p.Access.Fact == factRel && p.Access.FactEntityCol == fk.Column:
				eb.insertFactDimValue(eb.privBasic(info, i), fact, row, eRow)
			case p.Access.Type == AttrTable && p.Access.Fact == factRel && p.Access.FactEntityCol == fk.Column:
				eb.insertAttrTableValue(eb.privBasic(info, i), fact, row, eRow)
			}
		}
		// Derived properties whose first hop is this fact.
		for i := range info.Derived {
			if info.Derived[i].Fact1 != factRel || info.Derived[i].Fact1EntityCol != fk.Column {
				continue
			}
			p := eb.privDerived(info, i)
			eb.insertDerivedDelta(info, p, fact, row, eRow)
		}
	}
	eb.noteApplied(factRel, vals)
	return nil
}

// setCatValues re-points the per-entity code list of an existing row:
// the inner list is shared with the base epoch, so extension copies it
// out instead of appending into shared backing whose tail position may
// alias another epoch's view of the same row.
func setCatValues(p *BasicProperty, eRow int, codes []int32, code int32) {
	next := make([]int32, len(codes)+1)
	copy(next, codes)
	next[len(codes)] = code
	p.valsByRow[eRow] = next
}

// addCatValueAt records code for the entity at eRow, inserting into the
// posting list in row order (fact inserts touch arbitrary entity rows).
func (p *BasicProperty) addCatValueAt(code int32, eRow int) {
	p.growTo(code)
	if p.catCounts[code] == 0 {
		p.numValues++
	}
	p.catCounts[code]++
	p.catRows[code] = insertSortedInt(p.catRows[code], eRow)
}

func (eb *epochBuilder) insertFactDimValue(p *BasicProperty, fact *relation.Relation, factRow, eRow int) {
	dimFK := fact.Column(p.Access.FactDimCol)
	if dimFK.IsNull(factRow) {
		return
	}
	// The "dimension" of an entity-association property is itself an
	// entity relation, which this batch may have appended to — resolve
	// through the batch's view.
	dim := eb.viewRel(p.Access.Dim)
	dimIdx := eb.idx.ReadIntHash(dim, p.Access.DimPK)
	vc := dim.Column(p.Access.DimValueCol)
	dimRow, ok := dimIdx.First(dimFK.Int64(factRow))
	if !ok || vc.IsNull(dimRow) {
		return
	}
	code := vc.Code(dimRow)
	for _, existing := range p.valsByRow[eRow] {
		if existing == code {
			setCatValues(p, eRow, p.valsByRow[eRow], code)
			return // value already counted for this entity
		}
	}
	setCatValues(p, eRow, p.valsByRow[eRow], code)
	p.addCatValueAt(code, eRow)
}

// insertAttrTableValue maintains an attribute-table basic property
// (research(aid, interest)-style) for one inserted side-table row.
func (eb *epochBuilder) insertAttrTableValue(p *BasicProperty, side *relation.Relation, sideRow, eRow int) {
	col := side.Column(p.Access.Column)
	if col.IsNull(sideRow) {
		return
	}
	code := col.Code(sideRow)
	for _, existing := range p.valsByRow[eRow] {
		if existing == code {
			setCatValues(p, eRow, p.valsByRow[eRow], code)
			return // value already counted for this entity
		}
	}
	setCatValues(p, eRow, p.valsByRow[eRow], code)
	p.addCatValueAt(code, eRow)
}

// insertDerivedDelta bumps the derived counts of one entity for the new
// association. It resolves the associated entity and the aggregated
// value(s) exactly as the batch builder does — reading via-entity and
// second-hop fact state through the batch's view, which the write
// domain locks pin — then adjusts the derived relation rows and the
// per-value selectivity indexes on private clones.
func (eb *epochBuilder) insertDerivedDelta(info *EntityInfo, p *DerivedProperty, fact *relation.Relation, factRow, eRow int) {
	viaCol := fact.Column(p.Fact1ViaCol)
	if viaCol.IsNull(factRow) {
		return
	}
	via := eb.viewRel(p.Via)
	viaIdx := eb.idx.ReadIntHash(via, p.ViaPK)
	vRow, ok := viaIdx.First(viaCol.Int64(factRow))
	if !ok {
		return
	}
	var values []string
	switch p.Target.Type {
	case Degree:
		values = []string{p.Via}
	case Direct:
		c := via.Column(p.Target.Column)
		if !c.IsNull(vRow) {
			values = []string{c.Str(vRow)}
		}
	case FKDim:
		fkc := via.Column(p.Target.Column)
		if !fkc.IsNull(vRow) {
			dim := eb.base.DB.Relation(p.Target.Dim)
			dimIdx := eb.idx.ReadIntHash(dim, p.Target.DimPK)
			vc := dim.Column(p.Target.DimValueCol)
			if dr, ok := dimIdx.First(fkc.Int64(vRow)); ok && !vc.IsNull(dr) {
				values = []string{vc.Str(dr)}
			}
		}
	case FactDim:
		fact2 := eb.viewRel(p.Target.Fact)
		dim := eb.base.DB.Relation(p.Target.Dim)
		dimIdx := eb.idx.ReadIntHash(dim, p.Target.DimPK)
		vc := dim.Column(p.Target.DimValueCol)
		d2 := fact2.Column(p.Target.FactDimCol)
		viaID := via.Column(p.ViaPK).Int64(vRow)
		// The second-fact rows of this via-entity come from the hash
		// index instead of a full fact2 scan.
		for _, fr := range eb.idx.ReadIntHash(fact2, p.Target.FactEntityCol).Rows(viaID) {
			if d2.IsNull(fr) {
				continue
			}
			if dr, ok := dimIdx.First(d2.Int64(fr)); ok && !vc.IsNull(dr) {
				values = append(values, vc.Str(dr))
			}
		}
	}
	entityID := info.rowIDs[eRow]
	for _, v := range values {
		eb.bump(p, entityID, eRow, v)
	}
}

// bump increments the (entity, value) association strength by one on
// the writer's private clones: the derived relation (count column
// deep-copied), its entity-id index, and the per-value statistics
// (copied out per code on first touch).
func (eb *epochBuilder) bump(p *DerivedProperty, entityID int64, eRow int, v string) {
	rel := eb.derivedRel(p.RelName)
	p.rel = rel
	byEnt := eb.idx.PrivateIntHash(rel, "entity_id")
	p.byEntity = byEnt
	// Locate the existing derived row by comparing value codes.
	vcol, ccol := rel.Column("value"), rel.Column("count")
	code, known := vcol.Dict().Lookup(v)
	old := 0
	found := -1
	if known {
		for _, r := range byEnt.Rows(entityID) {
			if vcol.Code(r) == code {
				found = r
				old = int(ccol.Int64(r))
				break
			}
		}
	}
	if found >= 0 {
		_ = ccol.Set(found, relation.IntVal(int64(old+1)))
		eb.idx.Drop(rel.Name, "count")
	} else {
		rel.MustAppend(relation.IntVal(entityID), relation.StringVal(v), relation.IntVal(1))
		code = vcol.Code(rel.NumRows() - 1)
		eb.idx.NoteAppend(rel, rel.NumRows()-1)
	}
	p.growTo(code)
	// Copy the per-code statistics out of the shared backing on first
	// touch; later bumps of the same code in this batch mutate the
	// private copies in place.
	if p.privCodes == nil {
		p.privCodes = make(map[int32]bool)
	}
	vcs := p.perValueRows[code]
	s := p.perValue[code]
	if !p.privCodes[code] {
		vcs = append([]valCount(nil), vcs...)
		s = s.Clone()
		p.privCodes[code] = true
	}
	// Per-value row list: insert in entity-row order (the invariant
	// behind StrengthOf's binary search and merge intersection).
	at := sort.Search(len(vcs), func(i int) bool { return vcs[i].entityRow >= eRow })
	if at < len(vcs) && vcs[at].entityRow == eRow {
		vcs[at].count = old + 1
	} else {
		vcs = append(vcs, valCount{})
		copy(vcs[at+1:], vcs[at:])
		vcs[at] = valCount{entityRow: eRow, count: old + 1}
	}
	p.perValueRows[code] = vcs
	// Sorted selectivity index: replace old count with new.
	if s == nil {
		p.perValue[code] = index.BuildSortedFromValues([]float64{float64(old + 1)})
		return
	}
	p.perValue[code] = s.Replace(float64(old), float64(old+1), old == 0)
}

// insertSortedInt returns a new sorted list with v inserted (no-op when
// already present). It always allocates: the input may be shared with
// retired epochs, and shifting it in place would corrupt their view.
func insertSortedInt(xs []int, v int) []int {
	lo := sort.SearchInts(xs, v)
	if lo < len(xs) && xs[lo] == v {
		return xs
	}
	out := make([]int, len(xs)+1)
	copy(out, xs[:lo])
	out[lo] = v
	copy(out[lo+1:], xs[lo:])
	return out
}
