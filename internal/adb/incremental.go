package adb

import (
	"fmt"
	"sort"

	"squid/internal/index"
	"squid/internal/relation"
)

// This file implements one of the paper's §9 future directions:
// efficient αDB maintenance for dynamic datasets. Instead of rebuilding
// the αDB after data changes, InsertEntity and InsertFact apply the
// delta to the affected per-property statistics, derived relations, and
// indexes. Only inserts are supported (append-only maintenance), which
// covers the common catalog-growth workload; deletions still require a
// rebuild.

// InsertEntity appends a new row to an entity relation and updates the
// αDB's statistics for that entity's direct and FK-dimension properties.
// The row's values must match the relation schema.
func (a *AlphaDB) InsertEntity(entityRel string, vals ...relation.Value) error {
	info := a.Entities[entityRel]
	if info == nil {
		return fmt.Errorf("adb: %q is not an entity relation", entityRel)
	}
	rel := info.rel
	pkIdx := rel.ColumnIndex(rel.PrimaryKey)
	if pkIdx < 0 || pkIdx >= len(vals) {
		return fmt.Errorf("adb: insert into %q lacks a primary key value", entityRel)
	}
	pk := vals[pkIdx]
	if pk.IsNull() {
		return fmt.Errorf("adb: NULL primary key")
	}
	if _, dup := info.RowByID(pk.Int()); dup {
		return fmt.Errorf("adb: duplicate primary key %v in %q", pk, entityRel)
	}
	if err := rel.Append(vals...); err != nil {
		return err
	}
	row := rel.NumRows() - 1
	info.NumRows = rel.NumRows()
	info.rowIDs = append(info.rowIDs, pk.Int())
	// The shared index pool maintains every materialized index of this
	// relation (including pkIndex, which lives in the pool) in place.
	a.Indexes.NoteAppend(rel, row)

	// Update basic-property statistics for the new row.
	for _, p := range info.Basic {
		p.numEntities = info.NumRows
		switch p.Access.Type {
		case Direct:
			a.insertDirectValue(p, rel, row)
		case FKDim:
			a.insertFKDimValue(p, rel, row)
		default:
			// FactDim/AttrTable properties gain values only via fact
			// inserts; the new entity simply has none yet.
			if p.Kind == Categorical {
				p.valsByRow = append(p.valsByRow, nil)
			}
		}
	}
	for _, p := range info.Derived {
		p.numEntities = info.NumRows
	}

	// Index the new row's text values for entity lookup.
	for _, col := range rel.Columns() {
		if col.Type != relation.String || col.IsNull(row) {
			continue
		}
		a.Inverted.Insert(col.Str(row), index.Posting{Relation: entityRel, Column: col.Name, Row: row})
	}
	// Statistics shifted: every memoized selectivity is stale.
	a.selCache.Invalidate()
	return nil
}

func (a *AlphaDB) insertDirectValue(p *BasicProperty, rel *relation.Relation, row int) {
	col := rel.Column(p.Access.Column)
	if p.Kind == Numeric {
		p.numByRow = append(p.numByRow, nil)
		if !col.IsNull(row) {
			v := col.Float64(row)
			p.numByRow[row] = &v
			p.sorted = p.sorted.Insert(v)
			p.numIdx = p.numIdx.Insert(v, row)
		}
		return
	}
	p.valsByRow = append(p.valsByRow, nil)
	if !col.IsNull(row) {
		code := col.Code(row)
		p.valsByRow[row] = []int32{code}
		p.addCatRow(code, row)
	}
}

func (a *AlphaDB) insertFKDimValue(p *BasicProperty, rel *relation.Relation, row int) {
	p.valsByRow = append(p.valsByRow, nil)
	fkc := rel.Column(p.Access.Column)
	if fkc.IsNull(row) {
		return
	}
	dim := a.DB.Relation(p.Access.Dim)
	dimIdx := a.Indexes.IntHash(dim, p.Access.DimPK)
	vc := dim.Column(p.Access.DimValueCol)
	if dimRow, ok := dimIdx.First(fkc.Int64(row)); ok && !vc.IsNull(dimRow) {
		code := vc.Code(dimRow)
		p.valsByRow[row] = []int32{code}
		p.addCatRow(code, row)
	}
}

// InsertFact appends a row to a fact table and incrementally updates the
// affected fact-dimension basic properties and derived relations of
// every entity the fact references. The fact relation must have been
// present at Build time.
func (a *AlphaDB) InsertFact(factRel string, vals ...relation.Value) error {
	fact := a.DB.Relation(factRel)
	if fact == nil {
		return fmt.Errorf("adb: unknown fact relation %q", factRel)
	}
	if a.DB.Kind(factRel) != relation.KindUnknown {
		return fmt.Errorf("adb: %q is not a fact relation", factRel)
	}
	if err := fact.Append(vals...); err != nil {
		return err
	}
	row := fact.NumRows() - 1
	a.Indexes.NoteAppend(fact, row)

	for _, fk := range fact.Foreign {
		info := a.Entities[fk.RefRelation]
		if info == nil {
			continue
		}
		fkCol := fact.Column(fk.Column)
		if fkCol.IsNull(row) {
			continue
		}
		eRow, ok := info.RowByID(fkCol.Int64(row))
		if !ok {
			continue
		}
		// Fact-dimension basic properties routed through this fact
		// (including entity-association properties), and attribute-table
		// properties when the "fact" is a single-FK side table.
		for _, p := range info.Basic {
			switch {
			case p.Access.Type == FactDim && p.Access.Fact == factRel && p.Access.FactEntityCol == fk.Column:
				a.insertFactDimValue(p, fact, row, eRow)
			case p.Access.Type == AttrTable && p.Access.Fact == factRel && p.Access.FactEntityCol == fk.Column:
				a.insertAttrTableValue(p, fact, row, eRow)
			}
		}
		// Derived properties whose first hop is this fact.
		for _, p := range info.Derived {
			if p.Fact1 != factRel || p.Fact1EntityCol != fk.Column {
				continue
			}
			a.insertDerivedDelta(info, p, fact, row, eRow)
		}
	}
	// Statistics shifted: every memoized selectivity is stale.
	a.selCache.Invalidate()
	return nil
}

// addCatValueAt records code for the entity at eRow, inserting into the
// posting list in row order (fact inserts touch arbitrary entity rows).
func (p *BasicProperty) addCatValueAt(code int32, eRow int) {
	p.growTo(code)
	if p.catCounts[code] == 0 {
		p.numValues++
	}
	p.catCounts[code]++
	p.catRows[code] = insertSortedInt(p.catRows[code], eRow)
}

func (a *AlphaDB) insertFactDimValue(p *BasicProperty, fact *relation.Relation, factRow, eRow int) {
	dimFK := fact.Column(p.Access.FactDimCol)
	if dimFK.IsNull(factRow) {
		return
	}
	dim := a.DB.Relation(p.Access.Dim)
	dimIdx := a.Indexes.IntHash(dim, p.Access.DimPK)
	vc := dim.Column(p.Access.DimValueCol)
	dimRow, ok := dimIdx.First(dimFK.Int64(factRow))
	if !ok || vc.IsNull(dimRow) {
		return
	}
	code := vc.Code(dimRow)
	for _, existing := range p.valsByRow[eRow] {
		if existing == code {
			p.valsByRow[eRow] = append(p.valsByRow[eRow], code)
			return // value already counted for this entity
		}
	}
	p.valsByRow[eRow] = append(p.valsByRow[eRow], code)
	p.addCatValueAt(code, eRow)
}

// insertAttrTableValue maintains an attribute-table basic property
// (research(aid, interest)-style) for one inserted side-table row.
func (a *AlphaDB) insertAttrTableValue(p *BasicProperty, side *relation.Relation, sideRow, eRow int) {
	col := side.Column(p.Access.Column)
	if col.IsNull(sideRow) {
		return
	}
	code := col.Code(sideRow)
	for _, existing := range p.valsByRow[eRow] {
		if existing == code {
			p.valsByRow[eRow] = append(p.valsByRow[eRow], code)
			return // value already counted for this entity
		}
	}
	p.valsByRow[eRow] = append(p.valsByRow[eRow], code)
	p.addCatValueAt(code, eRow)
}

// insertDerivedDelta bumps the derived counts of one entity for the new
// association. It resolves the associated entity and the aggregated
// value(s) exactly as the batch builder does, then adjusts the derived
// relation rows and the per-value selectivity indexes.
func (a *AlphaDB) insertDerivedDelta(info *EntityInfo, p *DerivedProperty, fact *relation.Relation, factRow, eRow int) {
	viaCol := fact.Column(p.Fact1ViaCol)
	if viaCol.IsNull(factRow) {
		return
	}
	via := a.DB.Relation(p.Via)
	viaIdx := a.Indexes.IntHash(via, p.ViaPK)
	vRow, ok := viaIdx.First(viaCol.Int64(factRow))
	if !ok {
		return
	}
	var values []string
	switch p.Target.Type {
	case Degree:
		values = []string{p.Via}
	case Direct:
		c := via.Column(p.Target.Column)
		if !c.IsNull(vRow) {
			values = []string{c.Str(vRow)}
		}
	case FKDim:
		fkc := via.Column(p.Target.Column)
		if !fkc.IsNull(vRow) {
			dim := a.DB.Relation(p.Target.Dim)
			dimIdx := a.Indexes.IntHash(dim, p.Target.DimPK)
			vc := dim.Column(p.Target.DimValueCol)
			if dr, ok := dimIdx.First(fkc.Int64(vRow)); ok && !vc.IsNull(dr) {
				values = []string{vc.Str(dr)}
			}
		}
	case FactDim:
		fact2 := a.DB.Relation(p.Target.Fact)
		dim := a.DB.Relation(p.Target.Dim)
		dimIdx := a.Indexes.IntHash(dim, p.Target.DimPK)
		vc := dim.Column(p.Target.DimValueCol)
		d2 := fact2.Column(p.Target.FactDimCol)
		viaID := via.Column(p.ViaPK).Int64(vRow)
		// The second-fact rows of this via-entity come from the hash
		// index instead of a full fact2 scan.
		for _, fr := range a.Indexes.IntHash(fact2, p.Target.FactEntityCol).Rows(viaID) {
			if d2.IsNull(fr) {
				continue
			}
			if dr, ok := dimIdx.First(d2.Int64(fr)); ok && !vc.IsNull(dr) {
				values = append(values, vc.Str(dr))
			}
		}
	}
	entityID := info.rowIDs[eRow]
	for _, v := range values {
		p.bump(a.Indexes, entityID, eRow, v)
	}
}

// bump increments the (entity, value) association strength by one,
// updating the derived relation, the per-value rows, and the sorted
// count index. The shared index pool keeps the entity_id hash index
// consistent (appends) and drops any index over the mutated count
// column.
func (p *DerivedProperty) bump(idx *index.IndexSet, entityID int64, eRow int, v string) {
	// Locate the existing derived row by comparing value codes.
	vcol, ccol := p.rel.Column("value"), p.rel.Column("count")
	code, known := vcol.Dict().Lookup(v)
	old := 0
	found := -1
	if known {
		for _, r := range p.byEntity.Rows(entityID) {
			if vcol.Code(r) == code {
				found = r
				old = int(ccol.Int64(r))
				break
			}
		}
	}
	if found >= 0 {
		_ = ccol.Set(found, relation.IntVal(int64(old+1)))
		idx.Drop(p.rel.Name, "count")
	} else {
		p.rel.MustAppend(relation.IntVal(entityID), relation.StringVal(v), relation.IntVal(1))
		code = vcol.Code(p.rel.NumRows() - 1)
		idx.NoteAppend(p.rel, p.rel.NumRows()-1)
	}
	p.growTo(code)
	// Per-value row list: insert in entity-row order (the invariant
	// behind StrengthOf's binary search and merge intersection).
	vcs := p.perValueRows[code]
	at := sort.Search(len(vcs), func(i int) bool { return vcs[i].entityRow >= eRow })
	if at < len(vcs) && vcs[at].entityRow == eRow {
		vcs[at].count = old + 1
	} else {
		vcs = append(vcs, valCount{})
		copy(vcs[at+1:], vcs[at:])
		vcs[at] = valCount{entityRow: eRow, count: old + 1}
		p.perValueRows[code] = vcs
	}
	// Sorted selectivity index: replace old count with new.
	s := p.perValue[code]
	if s == nil {
		p.perValue[code] = index.BuildSortedFromValues([]float64{float64(old + 1)})
		return
	}
	p.perValue[code] = s.Replace(float64(old), float64(old+1), old == 0)
}

func insertSortedInt(xs []int, v int) []int {
	lo := 0
	for lo < len(xs) && xs[lo] < v {
		lo++
	}
	if lo < len(xs) && xs[lo] == v {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[lo+1:], xs[lo:])
	xs[lo] = v
	return xs
}
