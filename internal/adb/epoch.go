package adb

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"squid/internal/index"
	"squid/internal/relation"
	"squid/internal/trace"
)

// Epoch is one immutable, atomically published state of the αDB: the
// base and derived databases, per-entity semantic properties with their
// statistics, the per-epoch index view, and the per-relation row counts
// that pin the shared inverted index and dictionaries to this state.
//
// Readers (discovery, engine execution, stats, snapshot encode) load
// the current epoch once with AlphaDB.Snapshot and run wait-free
// against it: no lock is taken, no writer can stall them, and every
// answer — selectivity, row sets, query output — reflects exactly the
// state at publish time (snapshot isolation). Writers never mutate a
// published epoch; they build the next one copy-on-write (cloning only
// the relations, per-property statistics, and index shards the batch
// touches, structurally sharing everything else) and publish it with
// one pointer swap.
//
// Two structures are shared across epochs instead of cloned, because
// they are append-only with stable identities: the column dictionaries
// (codes never change meaning; an epoch only references codes that
// existed at its publish) and the inverted index (postings carry row
// numbers, and epoch-pinned lookups filter by the epoch's row counts).
// Both are internally synchronized for the duration of a map insert,
// never for the duration of a discovery.
type Epoch struct {
	DB       *relation.Database
	Inverted *index.Inverted
	Entities map[string]*EntityInfo

	// Indexes is this epoch's hash-index view over base and derived
	// relations: every point lookup of the online phase (dimension
	// resolution, engine predicate pushdown) is served from here.
	// Indexes are immutable once visible; cold ones build lazily.
	Indexes *index.IndexSet

	// DerivedDB holds the materialized derived relations (Fig 18's
	// "precomputed DB size" reports its footprint).
	DerivedDB *relation.Database
	// BuildTime is the offline precomputation wall time.
	BuildTime time.Duration

	cfg      Config
	selCache *SelCache

	// seq is the epoch sequence number (0 for a fresh build/load);
	// publishedAt is when the epoch became current.
	seq         uint64
	publishedAt time.Time
	// rowCounts snapshots every base relation's row count at publish:
	// the filter that pins shared inverted-index lookups (and snapshot
	// encodes) to this epoch.
	rowCounts map[string]int

	combinedOnce sync.Once
	combined     *relation.Database
}

// Seq returns the epoch sequence number.
func (a *Epoch) Seq() uint64 { return a.seq }

// PublishedAt returns when this epoch became the current one.
func (a *Epoch) PublishedAt() time.Time { return a.publishedAt }

// Entity returns the EntityInfo for a relation name, or nil.
func (a *Epoch) Entity(name string) *EntityInfo { return a.Entities[name] }

// Config returns the build configuration.
func (a *Epoch) Config() Config { return a.cfg }

// SelectivityCache exposes the memoized selectivity/row-set cache
// shared by every epoch of this αDB.
func (a *Epoch) SelectivityCache() *SelCache { return a.selCache }

// rowLimit bounds shared inverted-index reads to this epoch's rows.
func (a *Epoch) rowLimit(rel string) int { return a.rowCounts[rel] }

// CommonColumns resolves example values to candidate (relation, column)
// matches through the shared inverted index, pinned to this epoch: rows
// appended after the epoch was published are invisible.
func (a *Epoch) CommonColumns(values []string) []index.ColumnMatch {
	return a.Inverted.CommonColumns(values, a.rowLimit)
}

// InvertedLookup returns the epoch-pinned postings of one value.
func (a *Epoch) InvertedLookup(value string) []index.Posting {
	return a.Inverted.LookupBelow(value, a.rowLimit)
}

// snapshotRowCounts records every base relation's current row count.
func snapshotRowCounts(db *relation.Database) map[string]int {
	counts := make(map[string]int, db.NumRelations())
	for _, name := range db.RelationNames() {
		counts[name] = db.Relation(name).NumRows()
	}
	return counts
}

// AlphaDB is the abduction-ready database handle: it owns the chain of
// immutable epochs plus the write machinery that advances it.
//
// Reads are wait-free: Snapshot returns the current *Epoch via an
// atomic pointer load, and all read surfaces (Entity, CombinedDB,
// ComputeStats, Encode, and squid.System's discovery and execution
// paths) operate on one pinned epoch. Writes (InsertEntity, InsertFact,
// InsertBatch) coordinate per relation: a writer locks only the write
// domain of the relations its batch touches — inserts into disjoint
// relations build their copy-on-write epochs in parallel — and the
// publish step combines concurrent writers' epochs into one chain
// (each publish is a single pointer swap; a writer that finds the
// current epoch moved past its base rebases its disjoint changes onto
// the newer epoch instead of serializing the whole apply).
type AlphaDB struct {
	cur atomic.Pointer[Epoch]

	// publishMu serializes the (cheap) epoch publish step — the
	// combiner. The expensive copy-on-write apply runs outside it,
	// guarded only by the per-relation writer locks below.
	publishMu sync.Mutex
	// writeMu holds one writer lock per base relation; a write locks
	// the sorted union of its relations' domains, so writers of
	// disjoint relations never contend.
	writeMu map[string]*sync.Mutex
	// domains maps each writable relation to the relation names its
	// inserts may read or write (the entity relations a fact
	// references, second-hop fact tables of derived walks, ...),
	// sorted. Entity relations map to themselves.
	domains map[string][]string

	// inverted and selCache are the shared-across-epochs structures;
	// cfg and BuildTime are build-time constants.
	inverted *index.Inverted
	selCache *SelCache
	cfg      Config
	// BuildTime is the offline precomputation wall time.
	BuildTime time.Duration

	publishes atomic.Uint64
	combines  atomic.Uint64

	// retired / retainedBytes gauge the epoch chain's garbage: epochs
	// replaced by a publish but not yet collected (readers may still pin
	// them), and an upper-bound estimate of the private bytes they
	// retain. A publish raises both; a finalizer on the retired epoch
	// lowers them when the collector proves no reader holds it.
	retired       atomic.Int64
	retainedBytes atomic.Int64

	// publishHook, when set, observes every publish under publishMu —
	// after the epoch became current, in publish (= sequence) order —
	// with the rows the publish applied. It is the write-ahead log's
	// append point. Set it once, before the handle is shared.
	publishHook func(seq uint64, rows []AppliedRow)
}

// SetPublishHook installs the publish observer (the WAL append). Must
// be called before the handle is shared across goroutines — recovery
// attaches it between replay and serving.
func (a *AlphaDB) SetPublishHook(hook func(seq uint64, rows []AppliedRow)) {
	a.publishHook = hook
}

// newAlphaDB wraps a freshly built or decoded epoch into a handle.
func newAlphaDB(e *Epoch) *AlphaDB {
	a := &AlphaDB{
		inverted:  e.Inverted,
		selCache:  e.selCache,
		cfg:       e.cfg,
		BuildTime: e.BuildTime,
	}
	// Register every property identity as live with the shared cache;
	// the publish step keeps the set current as clones replace them.
	for _, info := range e.Entities {
		for _, p := range info.Basic {
			e.selCache.Register(p)
		}
		for _, p := range info.Derived {
			e.selCache.Register(p)
		}
	}
	if e.rowCounts == nil {
		//lint:ignore epochmutate pre-publication initialization: the epoch is not yet shared (published by cur.Store below)
		e.rowCounts = snapshotRowCounts(e.DB)
	}
	//lint:ignore epochmutate pre-publication initialization: the epoch is not yet shared (published by cur.Store below)
	e.publishedAt = time.Now()
	a.cur.Store(e)
	a.initWriteDomains(e)
	return a
}

// Snapshot returns the current epoch: one atomic load, no lock. The
// returned epoch is immutable — hold it for as long as a consistent
// view is needed (a discovery, a stats scrape, a snapshot encode);
// holding it only retains memory, it never blocks writers.
func (a *AlphaDB) Snapshot() *Epoch { return a.cur.Load() }

// Entity returns the current epoch's EntityInfo for a relation name.
// The result is pinned to that epoch: it keeps answering from the
// statistics it was fetched under, even across later inserts.
func (a *AlphaDB) Entity(name string) *EntityInfo { return a.Snapshot().Entity(name) }

// DB returns the current epoch's base database.
func (a *AlphaDB) DB() *relation.Database { return a.Snapshot().DB }

// EphemeralEntity is Epoch.EphemeralEntity on the current epoch.
func (a *AlphaDB) EphemeralEntity(name string) *EntityInfo {
	return a.Snapshot().EphemeralEntity(name)
}

// CombinedDB returns the current epoch's combined database.
func (a *AlphaDB) CombinedDB() *relation.Database { return a.Snapshot().CombinedDB() }

// SelectivityCache exposes the memoized selectivity/row-set cache shared
// by every epoch of this αDB (monitoring and test surface).
func (a *AlphaDB) SelectivityCache() *SelCache { return a.selCache }

// Config returns the build configuration.
func (a *AlphaDB) Config() Config { return a.cfg }

// EpochStats reports the epoch chain's health: the current sequence
// number, when it was published, and the cumulative publish/combine
// counters (a combine is a publish that rebased onto an epoch another
// writer published concurrently).
type EpochStats struct {
	Seq         uint64
	PublishedAt time.Time
	Publishes   uint64
	Combines    uint64
	// Retired counts epochs replaced by a publish but not yet garbage
	// collected (readers may still pin them); RetainedBytes is an
	// upper-bound estimate of the private bytes those epochs retain
	// (the replaced relations' sizes — structural sharing means the
	// true figure is at most this).
	Retired       int64
	RetainedBytes int64
}

// EpochStats returns the current epoch counters.
func (a *AlphaDB) EpochStats() EpochStats {
	e := a.Snapshot()
	return EpochStats{
		Seq:           e.seq,
		PublishedAt:   e.publishedAt,
		Publishes:     a.publishes.Load(),
		Combines:      a.combines.Load(),
		Retired:       a.retired.Load(),
		RetainedBytes: a.retainedBytes.Load(),
	}
}

// initWriteDomains precomputes each relation's write domain and writer
// lock. A fact insert reads and writes beyond its own relation: the
// referenced entity relations (their property statistics), and — for
// derived properties whose aggregation walks a second fact table — that
// second fact table's rows. Everything else it touches (dimension
// relations, the shared inverted index and dictionaries) is either
// never written or internally synchronized.
func (a *AlphaDB) initWriteDomains(e *Epoch) {
	a.writeMu = make(map[string]*sync.Mutex, e.DB.NumRelations())
	a.domains = make(map[string][]string, e.DB.NumRelations())
	for _, name := range e.DB.RelationNames() {
		a.writeMu[name] = &sync.Mutex{}
	}
	for _, name := range e.DB.RelationNames() {
		if e.DB.Kind(name) != relation.KindUnknown {
			// Entity relations form their own domain; property
			// (dimension) relations are never written but get one for
			// uniformity.
			a.domains[name] = []string{name}
			continue
		}
		set := map[string]bool{name: true}
		rel := e.DB.Relation(name)
		for _, fk := range rel.Foreign {
			info := e.Entities[fk.RefRelation]
			if info == nil {
				continue
			}
			set[fk.RefRelation] = true
			for _, p := range info.Derived {
				if p.Fact1 == name && p.Target.Type == FactDim {
					set[p.Target.Fact] = true
				}
			}
		}
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		a.domains[name] = keys
	}
}

// lockDomains acquires the writer locks covering every given relation's
// write domain, in global sorted order (deadlock-free), and returns the
// unlock function. Unknown relation names contribute nothing — their
// inserts fail before mutating anything.
func (a *AlphaDB) lockDomains(rels []string) func() {
	set := make(map[string]bool)
	for _, rel := range rels {
		domain, ok := a.domains[rel]
		if !ok {
			continue
		}
		for _, k := range domain {
			set[k] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		a.writeMu[k].Lock()
	}
	return func() {
		for i := len(keys) - 1; i >= 0; i-- {
			a.writeMu[keys[i]].Unlock()
		}
	}
}

// publish makes the builder's copy-on-write changes the current epoch.
// It is the epoch combiner: under publishMu (held only for the cheap
// merge, never the apply), the builder's per-relation deltas are laid
// over whatever epoch is current — the base it cloned from on the fast
// path, or a newer epoch published by a concurrent disjoint writer, in
// which case the merge combines both writers' changes (their domains
// cannot overlap, the per-relation locks guarantee it). One atomic
// store publishes the result; retired epochs stay valid for the
// readers still pinning them and are garbage collected when the last
// such reader drops its pointer.
func (a *AlphaDB) publish(eb *epochBuilder) {
	a.publishT(eb, trace.Span{})
}

// publishT is publish with trace attribution: the whole combiner step
// is one publish span (carrying the new epoch's sequence number), and
// the WAL append — the publish's only I/O — is a nested wal_append
// span counting the rows it logged.
func (a *AlphaDB) publishT(eb *epochBuilder, sp trace.Span) {
	if !eb.dirty() {
		return
	}
	ps := sp.Child(trace.PhasePublish, "")
	defer ps.End()
	eb.finalize()
	a.publishMu.Lock()
	defer a.publishMu.Unlock()
	cur := a.cur.Load()
	if cur != eb.base {
		a.combines.Add(1)
	}
	entities := make(map[string]*EntityInfo, len(cur.Entities))
	for name, info := range cur.Entities {
		entities[name] = info
	}
	for name, info := range eb.entities {
		entities[name] = info
	}
	rowCounts := make(map[string]int, len(cur.rowCounts))
	for name, n := range cur.rowCounts {
		rowCounts[name] = n
	}
	for name, n := range eb.rowCounts {
		rowCounts[name] = n
	}
	next := &Epoch{
		DB:          cur.DB.CloneWith(eb.baseRels),
		Inverted:    cur.Inverted,
		Entities:    entities,
		Indexes:     eb.idx.MergeInto(cur.Indexes),
		DerivedDB:   cur.DerivedDB.CloneWith(eb.derivedRels),
		BuildTime:   cur.BuildTime,
		cfg:         cur.cfg,
		selCache:    cur.selCache,
		seq:         cur.seq + 1,
		publishedAt: time.Now(),
		rowCounts:   rowCounts,
	}
	// Retire the replaced properties from the shared cache (their
	// entries evict, and de-registration stops late in-flight computes
	// from re-inserting them) and admit the clones in the same critical
	// section.
	a.selCache.ReplaceProps(eb.oldProps, eb.newProps)
	a.cur.Store(next)
	a.publishes.Add(1)
	ps.Add(trace.CounterEpochSeq, int64(next.seq))

	// GC telemetry: cur just retired. Charge it the bytes of the
	// relations this publish replaced (everything else it shares with
	// next structurally), and let a finalizer credit them back once no
	// reader pins it — the gap between publishes and finalizations is
	// exactly the chain's uncollected garbage.
	var est int64
	for name := range eb.baseRels {
		if r := cur.DB.Relation(name); r != nil {
			est += r.ByteSize()
		}
	}
	for name := range eb.derivedRels {
		if r := cur.DerivedDB.Relation(name); r != nil {
			est += r.ByteSize()
		}
	}
	a.retired.Add(1)
	a.retainedBytes.Add(est)
	runtime.SetFinalizer(cur, func(*Epoch) {
		a.retired.Add(-1)
		a.retainedBytes.Add(-est)
	})

	if a.publishHook != nil {
		ws := ps.Child(trace.PhaseWALAppend, "")
		// Under publishMu: hook (WAL append) order equals publish order,
		// so the log IS the epoch chain's history.
		a.publishHook(next.seq, eb.applied)
		ws.Add(trace.CounterRows, int64(len(eb.applied)))
		ws.End()
	}
}
