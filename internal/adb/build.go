package adb

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"squid/internal/index"
	"squid/internal/relation"
)

// Config tunes αDB construction.
type Config struct {
	// MaxFactDepth bounds derived-property discovery; the paper
	// restricts it to two fact tables (§5). Depth 1 enables derived
	// properties over the associated entity's direct/FK attributes;
	// depth 2 additionally walks a second fact table (persontogenre).
	MaxFactDepth int
	// MaxCatDistinct excludes categorical columns with more distinct
	// values than this (identifiers, names) from property discovery.
	MaxCatDistinct int
	// MaxCatRatio excludes categorical columns whose distinct-value
	// count exceeds this fraction of the entity cardinality.
	MaxCatRatio float64
	// PropertyValueColumn overrides the display/value column of a
	// dimension relation (default: its first String column).
	PropertyValueColumn map[string]string
	// DisplayColumn overrides the display column of an entity relation
	// used for entity-association properties (default: its first
	// String column).
	DisplayColumn map[string]string
	// ExcludeColumns lists entity columns to skip entirely, keyed by
	// relation name (e.g. free-text columns).
	ExcludeColumns map[string][]string
	// Workers bounds the offline build's worker pool: basic-property
	// stats, derived-property walks, inverted-index shards, and
	// IndexSet warming fan out across this many goroutines. 0 means
	// GOMAXPROCS; 1 forces a serial build. Output is deterministic
	// regardless of the worker count.
	Workers int
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments: derived properties up to two fact tables deep.
func DefaultConfig() Config {
	return Config{
		MaxFactDepth:   2,
		MaxCatDistinct: 1000,
		MaxCatRatio:    0.5,
	}
}

// EntityInfo gathers everything the online phase needs about one entity
// relation: its semantic properties with statistics and lookup indexes.
type EntityInfo struct {
	Relation string
	PK       string
	NumRows  int

	Basic   []*BasicProperty
	Derived []*DerivedProperty

	rel     *relation.Relation
	pkIndex *index.IntHash
	rowIDs  []int64 // row -> entity id

	// Name→property maps built once at construction, replacing the
	// linear scans the hot paths (normalization-degree lookup, tests)
	// used to pay per call.
	basicByAttr   map[string]*BasicProperty
	derivedByAttr map[string]*DerivedProperty
}

// RowByID resolves an entity id to its row in the entity relation.
func (e *EntityInfo) RowByID(id int64) (int, bool) { return e.pkIndex.First(id) }

// IDByRow resolves a row to the entity id.
func (e *EntityInfo) IDByRow(row int) int64 { return e.rowIDs[row] }

// Rel returns the underlying entity relation.
func (e *EntityInfo) Rel() *relation.Relation { return e.rel }

// BasicByAttr returns the basic property with the given display name.
func (e *EntityInfo) BasicByAttr(attr string) *BasicProperty {
	if e.basicByAttr != nil {
		return e.basicByAttr[attr]
	}
	for _, p := range e.Basic {
		if p.Attr == attr {
			return p
		}
	}
	return nil
}

// DerivedByAttr returns the derived property with the given display name.
func (e *EntityInfo) DerivedByAttr(attr string) *DerivedProperty {
	if e.derivedByAttr != nil {
		return e.derivedByAttr[attr]
	}
	for _, p := range e.Derived {
		if p.Attr == attr {
			return p
		}
	}
	return nil
}

// buildAttrMaps indexes the (sorted) property lists by display name;
// the first property wins for duplicate names, matching the order the
// linear scans observed.
func (e *EntityInfo) buildAttrMaps() {
	e.basicByAttr = make(map[string]*BasicProperty, len(e.Basic))
	for _, p := range e.Basic {
		if _, dup := e.basicByAttr[p.Attr]; !dup {
			e.basicByAttr[p.Attr] = p
		}
	}
	e.derivedByAttr = make(map[string]*DerivedProperty, len(e.Derived))
	for _, p := range e.Derived {
		if _, dup := e.derivedByAttr[p.Attr]; !dup {
			e.derivedByAttr[p.Attr] = p
		}
	}
}

// entityBuild carries one entity relation through the parallel offline
// phase: the scaffolded EntityInfo plus one result slot per property
// task, so workers write disjoint slots and assembly replays them in
// enumeration order for deterministic output.
type entityBuild struct {
	info    *EntityInfo
	results []taskResult
}

// taskResult is the output of one property-discovery task. Derived
// groups additionally emit second-wave build closures (one per derived
// property, parallel to subErrs) so per-property materializations fan
// out instead of serializing inside the group task.
type taskResult struct {
	basics   []*BasicProperty
	deriveds []*DerivedProperty
	subs     []func() error
	subErrs  []error
	err      error
}

// Build constructs the abduction-ready database for db. Construction
// fans out over Config.Workers goroutines (per-relation inverted-index
// shards, per-entity scaffolds, and one task per candidate property);
// the assembled αDB is byte-for-byte independent of the worker count.
// The result is published as epoch 0 of the returned handle.
func Build(db *relation.Database, cfg Config) (*AlphaDB, error) {
	e, err := buildEpoch(db, cfg)
	if err != nil {
		return nil, err
	}
	return newAlphaDB(e), nil
}

// buildEpoch runs the offline phase and assembles the initial epoch.
func buildEpoch(db *relation.Database, cfg Config) (*Epoch, error) {
	start := time.Now()
	if cfg.MaxFactDepth == 0 {
		workers := cfg.Workers
		cfg = DefaultConfig()
		cfg.Workers = workers
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	a := &Epoch{
		DB:        db,
		Entities:  make(map[string]*EntityInfo),
		Indexes:   index.NewIndexSet(),
		DerivedDB: relation.NewDatabase(db.Name + "_alpha"),
		cfg:       cfg,
		selCache:  NewSelCache(),
	}

	entities := db.EntityRelations()
	if len(entities) == 0 {
		return nil, fmt.Errorf("adb: database %q declares no entity relations", db.Name)
	}

	// The inverted index build shares no state with property discovery;
	// run it concurrently with everything below. The channel is closed
	// when done, so the deferred receive also covers error returns.
	invDone := make(chan struct{})
	go func() {
		a.Inverted = index.BuildInvertedParallel(db, workers)
		close(invDone)
	}()
	defer func() { <-invDone }()

	// Phase 1: scaffold every entity (PK index warming, row-id table).
	builds := make([]*entityBuild, len(entities))
	errs := make([]error, len(entities))
	index.RunBounded(len(entities), workers, func(i int) {
		builds[i], errs[i] = a.scaffoldEntity(entities[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: enumerate property tasks (cheap, sequential), then fan
	// them out across the pool; each task writes its own result slot.
	var tasks []func()
	for _, eb := range builds {
		tasks = append(tasks, a.planEntity(eb)...)
	}
	index.RunBounded(len(tasks), workers, func(i int) { tasks[i]() })

	// Phase 2b: derived groups emitted per-property build closures;
	// fan those out as a second wave so one heavyweight fact pair
	// (castinfo) does not serialize its materializations.
	var subs []func()
	for _, eb := range builds {
		for ri := range eb.results {
			res := &eb.results[ri]
			res.subErrs = make([]error, len(res.subs))
			for si, sub := range res.subs {
				subs = append(subs, func() { res.subErrs[si] = sub() })
			}
		}
	}
	index.RunBounded(len(subs), workers, func(i int) { subs[i]() })

	// Phase 3: assemble deterministically in entity order, replaying
	// task results in enumeration order.
	for i, eb := range builds {
		if err := a.finishEntity(eb); err != nil {
			return nil, err
		}
		a.Entities[entities[i]] = eb.info
	}
	<-invDone
	a.BuildTime = time.Since(start)
	a.rowCounts = snapshotRowCounts(db)
	return a, nil
}

// EphemeralEntity builds a property-less EntityInfo for a non-entity
// relation with an integer primary key. It backs the dimension-fallback
// path of query discovery: when examples only match a dimension relation
// (all movie genres, IQ7 of the paper), the abduced query is the plain
// projection over that relation with no filters.
func (a *Epoch) EphemeralEntity(name string) *EntityInfo {
	rel := a.DB.Relation(name)
	if rel == nil || rel.PrimaryKey == "" {
		return nil
	}
	pkCol := rel.Column(rel.PrimaryKey)
	if pkCol.Type != relation.Int {
		return nil
	}
	info := &EntityInfo{
		Relation: name,
		PK:       rel.PrimaryKey,
		NumRows:  rel.NumRows(),
		rel:      rel,
		pkIndex:  a.Indexes.IntHash(rel, rel.PrimaryKey),
	}
	info.rowIDs = make([]int64, rel.NumRows())
	for i := range info.rowIDs {
		info.rowIDs[i] = pkCol.Int64(i)
	}
	return info
}

// CombinedDB returns a database containing both the original and the
// derived relations, so the execution engine can run αDB-form SPJ queries
// (Q5 of the paper) directly. It is assembled once per epoch and
// memoized — all executors over this epoch share one instance.
func (a *Epoch) CombinedDB() *relation.Database {
	a.combinedOnce.Do(func() {
		combined := relation.NewDatabase(a.DB.Name + "_combined")
		for _, n := range a.DB.RelationNames() {
			combined.AddRelation(a.DB.Relation(n))
		}
		for _, n := range a.DerivedDB.RelationNames() {
			combined.AddRelation(a.DerivedDB.Relation(n))
		}
		//lint:ignore epochmutate single-assignment memoization under combinedOnce; every reader observes the same value
		a.combined = combined
	})
	return a.combined
}

// scaffoldEntity validates one entity relation and builds its lookup
// scaffolding (primary-key index, row→id table); safe to run in
// parallel across entities (the shared IndexSet serializes builds).
func (a *Epoch) scaffoldEntity(name string) (*entityBuild, error) {
	rel := a.DB.Relation(name)
	if rel.PrimaryKey == "" {
		return nil, fmt.Errorf("adb: entity relation %q has no primary key", name)
	}
	pkCol := rel.Column(rel.PrimaryKey)
	if pkCol.Type != relation.Int {
		return nil, fmt.Errorf("adb: entity relation %q primary key must be INTEGER", name)
	}
	info := &EntityInfo{
		Relation: name,
		PK:       rel.PrimaryKey,
		NumRows:  rel.NumRows(),
		rel:      rel,
		pkIndex:  a.Indexes.IntHash(rel, rel.PrimaryKey),
	}
	info.rowIDs = make([]int64, rel.NumRows())
	for i := range info.rowIDs {
		info.rowIDs[i] = pkCol.Int64(i)
	}
	return &entityBuild{info: info}, nil
}

// planEntity enumerates the property-discovery tasks of one entity in
// the same order the sequential builder visited them, reserving one
// result slot per task. Tasks only read base relations and the
// concurrency-safe IndexSet, so they run freely in parallel.
func (a *Epoch) planEntity(eb *entityBuild) []func() {
	info := eb.info
	name := info.Relation
	rel := info.rel

	excluded := make(map[string]bool)
	for _, c := range a.cfg.ExcludeColumns[name] {
		excluded[c] = true
	}
	fkCols := make(map[string]relation.ForeignKey)
	for _, fk := range rel.Foreign {
		fkCols[fk.Column] = fk
	}

	var tasks []func()
	addTask := func(run func(res *taskResult)) {
		idx := len(eb.results)
		eb.results = append(eb.results, taskResult{})
		tasks = append(tasks, func() { run(&eb.results[idx]) })
	}
	addBasic := func(build func() *BasicProperty) {
		addTask(func(res *taskResult) {
			if p := build(); p != nil {
				res.basics = append(res.basics, p)
			}
		})
	}

	// 1. Direct attributes of the entity relation.
	for _, col := range rel.Columns() {
		if col.Name == rel.PrimaryKey || excluded[col.Name] {
			continue
		}
		if fk, isFK := fkCols[col.Name]; isFK {
			// 2. FK-dimension attribute (person.country_id → country.name).
			if a.DB.Kind(fk.RefRelation) == relation.KindProperty {
				fk := fk
				addBasic(func() *BasicProperty { return a.buildFKDimProperty(info, fk) })
			}
			continue
		}
		col := col
		addBasic(func() *BasicProperty { return a.buildDirectProperty(info, col) })
	}

	// 3. Attribute tables: side relations with a single foreign key to
	// this entity plus value columns, like research(aid, interest) in
	// Fig 1 of the paper.
	for _, sideName := range a.DB.RelationNames() {
		side := a.DB.Relation(sideName)
		if a.DB.Kind(sideName) != relation.KindUnknown || len(side.Foreign) != 1 {
			continue
		}
		fk := side.Foreign[0]
		if fk.RefRelation != name {
			continue
		}
		for _, col := range side.Columns() {
			if col.Name == fk.Column || col.Type != relation.String {
				continue
			}
			sideName, fk, col := sideName, fk, col
			addBasic(func() *BasicProperty { return a.buildAttrTableProperty(info, sideName, fk, col) })
		}
	}

	// 4. Fact-dimension attributes and derived properties via fact
	// tables referencing this entity.
	for _, factName := range a.DB.RelationNames() {
		fact := a.DB.Relation(factName)
		if a.DB.Kind(factName) != relation.KindUnknown || len(fact.Foreign) < 2 {
			continue
		}
		for _, fkToMe := range fact.Foreign {
			if fkToMe.RefRelation != name {
				continue
			}
			for _, other := range fact.Foreign {
				if other == fkToMe {
					continue
				}
				factName, fkToMe, other := factName, fkToMe, other
				switch a.DB.Kind(other.RefRelation) {
				case relation.KindProperty:
					addBasic(func() *BasicProperty { return a.buildFactDimProperty(info, factName, fkToMe, other) })
				case relation.KindEntity:
					addTask(func(res *taskResult) {
						res.basics, res.deriveds, res.subs, res.err = a.buildDerivedProperties(info, factName, fkToMe, other)
					})
				}
			}
		}
	}
	return tasks
}

// finishEntity assembles one entity's task results in enumeration order,
// registers its derived relations under collision-free names, sorts the
// property lists, and builds the name→property maps.
func (a *Epoch) finishEntity(eb *entityBuild) error {
	info := eb.info
	for i := range eb.results {
		res := &eb.results[i]
		if res.err != nil {
			return res.err
		}
		for _, err := range res.subErrs {
			if err != nil {
				return err
			}
		}
		info.Basic = append(info.Basic, res.basics...)
		info.Derived = append(info.Derived, res.deriveds...)
		for _, p := range res.deriveds {
			a.registerDerived(p)
		}
	}
	sort.SliceStable(info.Basic, func(i, j int) bool { return info.Basic[i].Attr < info.Basic[j].Attr })
	sort.SliceStable(info.Derived, func(i, j int) bool { return info.Derived[i].Attr < info.Derived[j].Attr })
	info.buildAttrMaps()
	return nil
}

// registerDerived gives a worker-built derived relation its final unique
// name, adds it to the derived database, and adopts its entity index
// into the shared pool. Called sequentially in enumeration order, so
// collision suffixes are deterministic.
func (a *Epoch) registerDerived(p *DerivedProperty) {
	base := p.RelName
	name := base
	for i := 2; a.DerivedDB.Relation(name) != nil; i++ {
		name = fmt.Sprintf("%s_%d", base, i)
	}
	p.RelName = name
	p.rel.Name = name
	a.DerivedDB.AddRelation(p.rel)
	a.Indexes.AdoptIntHash(name, "entity_id", p.byEntity)
}

// keepCategorical applies the distinct-count guards that exclude
// identifier-like text columns from property discovery. The ratio guard
// only applies to relations large enough for the ratio to be meaningful
// (small dimension-like tables legitimately have high distinct ratios).
func (a *Epoch) keepCategorical(distinct, entities int) bool {
	if distinct == 0 || distinct > a.cfg.MaxCatDistinct {
		return false
	}
	const ratioMinEntities = 50
	if entities >= ratioMinEntities && float64(distinct)/float64(entities) > a.cfg.MaxCatRatio {
		return false
	}
	return true
}

// finishCategorical computes the per-code statistics of a categorical
// basic property from its per-row code lists and applies the
// distinct-count guards.
func (a *Epoch) finishCategorical(p *BasicProperty) *BasicProperty {
	p.buildCatStats()
	if !a.keepCategorical(p.numValues, p.numEntities) {
		return nil
	}
	p.cache = a.selCache
	return p
}

// buildCatStats fills catCounts/catRows from valsByRow, counting each
// (entity, code) pair once.
func (p *BasicProperty) buildCatStats() {
	p.catCounts = make([]int, p.dict.Len())
	p.catRows = make([][]int, p.dict.Len())
	add := func(c int32, row int) {
		if p.catCounts[c] == 0 {
			p.numValues++
		}
		p.catCounts[c]++
		p.catRows[c] = append(p.catRows[c], row)
	}
	for row, codes := range p.valsByRow {
		// Dedup codes within the row: linear scan for the common short
		// lists, a set for heavy multi-valued rows.
		if len(codes) > 16 {
			seen := make(map[int32]bool, len(codes))
			for _, c := range codes {
				if !seen[c] {
					seen[c] = true
					add(c, row)
				}
			}
			continue
		}
		for i, c := range codes {
			dup := false
			for _, prev := range codes[:i] {
				if prev == c {
					dup = true
					break
				}
			}
			if !dup {
				add(c, row)
			}
		}
	}
}

// buildDirectProperty creates a basic property from a direct entity
// column.
func (a *Epoch) buildDirectProperty(info *EntityInfo, col *relation.Column) *BasicProperty {
	p := &BasicProperty{
		Entity:      info.Relation,
		Attr:        col.Name,
		Access:      AccessPath{Type: Direct, Column: col.Name},
		numEntities: info.NumRows,
	}
	if col.Type == relation.String {
		p.Kind = Categorical
		p.dict = col.Dict()
		p.valsByRow = make([][]int32, info.NumRows)
		backing := make([]int32, info.NumRows)
		for row := 0; row < info.NumRows; row++ {
			if col.IsNull(row) {
				continue
			}
			backing[row] = col.Code(row)
			p.valsByRow[row] = backing[row : row+1 : row+1]
		}
		return a.finishCategorical(p)
	}
	p.Kind = Numeric
	p.numByRow = make([]*float64, info.NumRows)
	var vals []float64
	var rows []int
	for row := 0; row < info.NumRows; row++ {
		if col.IsNull(row) {
			continue
		}
		v := col.Float64(row)
		p.numByRow[row] = &v
		vals = append(vals, v)
		rows = append(rows, row)
	}
	if len(vals) == 0 {
		return nil
	}
	p.sorted = index.BuildSortedFromValues(vals)
	p.numIdx = index.BuildNumericRows(vals, rows)
	p.cache = a.selCache
	return p
}

// dimValueColumn resolves the display column of a dimension relation.
func (a *Epoch) dimValueColumn(dim *relation.Relation) string {
	if c, ok := a.cfg.PropertyValueColumn[dim.Name]; ok {
		return c
	}
	for _, col := range dim.Columns() {
		if col.Type == relation.String {
			return col.Name
		}
	}
	return ""
}

// buildFKDimProperty creates a basic property reached through the
// entity's own foreign key into a dimension relation.
func (a *Epoch) buildFKDimProperty(info *EntityInfo, fk relation.ForeignKey) *BasicProperty {
	dim := a.DB.Relation(fk.RefRelation)
	valCol := a.dimValueColumn(dim)
	if valCol == "" {
		return nil
	}
	dimIdx := a.Indexes.IntHash(dim, fk.RefColumn)
	vc := dim.Column(valCol)
	fkc := info.rel.Column(fk.Column)
	p := &BasicProperty{
		Entity: info.Relation,
		Attr:   dim.Name,
		Kind:   Categorical,
		Access: AccessPath{
			Type: FKDim, Column: fk.Column,
			Dim: dim.Name, DimPK: fk.RefColumn, DimValueCol: valCol,
		},
		numEntities: info.NumRows,
		dict:        vc.Dict(),
	}
	p.valsByRow = make([][]int32, info.NumRows)
	backing := make([]int32, info.NumRows)
	for row := 0; row < info.NumRows; row++ {
		if fkc.IsNull(row) {
			continue
		}
		if dimRow, ok := dimIdx.First(fkc.Int64(row)); ok && !vc.IsNull(dimRow) {
			backing[row] = vc.Code(dimRow)
			p.valsByRow[row] = backing[row : row+1 : row+1]
		}
	}
	return a.finishCategorical(p)
}

// buildAttrTableProperty creates a (multi-valued) basic property from an
// attribute table: a side relation with a single FK to the entity and a
// value column (research(aid, interest) in Fig 1 of the paper).
func (a *Epoch) buildAttrTableProperty(info *EntityInfo, sideName string, fk relation.ForeignKey, col *relation.Column) *BasicProperty {
	side := a.DB.Relation(sideName)
	fkc := side.Column(fk.Column)
	p := &BasicProperty{
		Entity:      info.Relation,
		Attr:        col.Name,
		Kind:        Categorical,
		MultiValued: true,
		Access: AccessPath{
			Type: AttrTable,
			Fact: sideName, FactEntityCol: fk.Column,
			Column: col.Name,
		},
		numEntities: info.NumRows,
		dict:        col.Dict(),
	}
	p.valsByRow = make([][]int32, info.NumRows)
	for sr := 0; sr < side.NumRows(); sr++ {
		if fkc.IsNull(sr) || col.IsNull(sr) {
			continue
		}
		if row, ok := info.pkIndex.First(fkc.Int64(sr)); ok {
			p.valsByRow[row] = append(p.valsByRow[row], col.Code(sr))
		}
	}
	return a.finishCategorical(p)
}

// buildFactDimProperty creates a (multi-valued) basic property reached
// through a fact table into a dimension relation.
func (a *Epoch) buildFactDimProperty(info *EntityInfo, factName string, fkToMe, fkToDim relation.ForeignKey) *BasicProperty {
	fact := a.DB.Relation(factName)
	dim := a.DB.Relation(fkToDim.RefRelation)
	valCol := a.dimValueColumn(dim)
	if valCol == "" {
		return nil
	}
	dimIdx := a.Indexes.IntHash(dim, fkToDim.RefColumn)
	vc := dim.Column(valCol)
	entCol := fact.Column(fkToMe.Column)
	dimFK := fact.Column(fkToDim.Column)

	p := &BasicProperty{
		Entity:      info.Relation,
		Attr:        dim.Name,
		Kind:        Categorical,
		MultiValued: true,
		Access: AccessPath{
			Type: FactDim,
			Fact: factName, FactEntityCol: fkToMe.Column, FactDimCol: fkToDim.Column,
			Dim: dim.Name, DimPK: fkToDim.RefColumn, DimValueCol: valCol,
		},
		numEntities: info.NumRows,
		dict:        vc.Dict(),
	}
	p.valsByRow = make([][]int32, info.NumRows)
	for fr := 0; fr < fact.NumRows(); fr++ {
		if entCol.IsNull(fr) || dimFK.IsNull(fr) {
			continue
		}
		row, ok := info.pkIndex.First(entCol.Int64(fr))
		if !ok {
			continue
		}
		dimRow, ok := dimIdx.First(dimFK.Int64(fr))
		if !ok || vc.IsNull(dimRow) {
			continue
		}
		p.valsByRow[row] = append(p.valsByRow[row], vc.Code(dimRow))
	}
	return a.finishCategorical(p)
}
