package adb

import (
	"fmt"
	"sort"
	"time"

	"squid/internal/index"
	"squid/internal/relation"
)

// Config tunes αDB construction.
type Config struct {
	// MaxFactDepth bounds derived-property discovery; the paper
	// restricts it to two fact tables (§5). Depth 1 enables derived
	// properties over the associated entity's direct/FK attributes;
	// depth 2 additionally walks a second fact table (persontogenre).
	MaxFactDepth int
	// MaxCatDistinct excludes categorical columns with more distinct
	// values than this (identifiers, names) from property discovery.
	MaxCatDistinct int
	// MaxCatRatio excludes categorical columns whose distinct-value
	// count exceeds this fraction of the entity cardinality.
	MaxCatRatio float64
	// PropertyValueColumn overrides the display/value column of a
	// dimension relation (default: its first String column).
	PropertyValueColumn map[string]string
	// DisplayColumn overrides the display column of an entity relation
	// used for entity-association properties (default: its first
	// String column).
	DisplayColumn map[string]string
	// ExcludeColumns lists entity columns to skip entirely, keyed by
	// relation name (e.g. free-text columns).
	ExcludeColumns map[string][]string
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments: derived properties up to two fact tables deep.
func DefaultConfig() Config {
	return Config{
		MaxFactDepth:   2,
		MaxCatDistinct: 1000,
		MaxCatRatio:    0.5,
	}
}

// EntityInfo gathers everything the online phase needs about one entity
// relation: its semantic properties with statistics and lookup indexes.
type EntityInfo struct {
	Relation string
	PK       string
	NumRows  int

	Basic   []*BasicProperty
	Derived []*DerivedProperty

	rel     *relation.Relation
	pkIndex *index.IntHash
	rowIDs  []int64 // row -> entity id
}

// RowByID resolves an entity id to its row in the entity relation.
func (e *EntityInfo) RowByID(id int64) (int, bool) { return e.pkIndex.First(id) }

// IDByRow resolves a row to the entity id.
func (e *EntityInfo) IDByRow(row int) int64 { return e.rowIDs[row] }

// Rel returns the underlying entity relation.
func (e *EntityInfo) Rel() *relation.Relation { return e.rel }

// BasicByAttr returns the basic property with the given display name.
func (e *EntityInfo) BasicByAttr(attr string) *BasicProperty {
	for _, p := range e.Basic {
		if p.Attr == attr {
			return p
		}
	}
	return nil
}

// DerivedByAttr returns the derived property with the given display name.
func (e *EntityInfo) DerivedByAttr(attr string) *DerivedProperty {
	for _, p := range e.Derived {
		if p.Attr == attr {
			return p
		}
	}
	return nil
}

// AlphaDB is the abduction-ready database: the original database plus the
// inverted index, per-entity semantic properties, materialized derived
// relations, and precomputed selectivity statistics.
type AlphaDB struct {
	DB       *relation.Database
	Inverted *index.Inverted
	Entities map[string]*EntityInfo

	// Indexes is the shared hash-index pool over base and derived
	// relations: every point lookup of the online phase (dimension
	// resolution, incremental maintenance, engine predicate pushdown)
	// is served from here instead of rebuilding ad-hoc maps.
	Indexes *index.IndexSet

	// DerivedDB holds the materialized derived relations (Fig 18's
	// "precomputed DB size" reports its footprint).
	DerivedDB *relation.Database
	// BuildTime is the offline precomputation wall time.
	BuildTime time.Duration

	cfg      Config
	selCache *SelCache
}

// Build constructs the abduction-ready database for db.
func Build(db *relation.Database, cfg Config) (*AlphaDB, error) {
	start := time.Now()
	if cfg.MaxFactDepth == 0 {
		cfg = DefaultConfig()
	}
	a := &AlphaDB{
		DB:        db,
		Entities:  make(map[string]*EntityInfo),
		Indexes:   index.NewIndexSet(),
		DerivedDB: relation.NewDatabase(db.Name + "_alpha"),
		cfg:       cfg,
		selCache:  NewSelCache(),
	}
	a.Inverted = index.BuildInverted(db)

	entities := db.EntityRelations()
	if len(entities) == 0 {
		return nil, fmt.Errorf("adb: database %q declares no entity relations", db.Name)
	}
	for _, name := range entities {
		info, err := a.buildEntity(name)
		if err != nil {
			return nil, err
		}
		a.Entities[name] = info
	}
	a.BuildTime = time.Since(start)
	return a, nil
}

// Entity returns the EntityInfo for a relation name, or nil.
func (a *AlphaDB) Entity(name string) *EntityInfo { return a.Entities[name] }

// SelectivityCache exposes the memoized selectivity/row-set cache shared
// by every property of this αDB (monitoring and test surface).
func (a *AlphaDB) SelectivityCache() *SelCache { return a.selCache }

// EphemeralEntity builds a property-less EntityInfo for a non-entity
// relation with an integer primary key. It backs the dimension-fallback
// path of query discovery: when examples only match a dimension relation
// (all movie genres, IQ7 of the paper), the abduced query is the plain
// projection over that relation with no filters.
func (a *AlphaDB) EphemeralEntity(name string) *EntityInfo {
	rel := a.DB.Relation(name)
	if rel == nil || rel.PrimaryKey == "" {
		return nil
	}
	pkCol := rel.Column(rel.PrimaryKey)
	if pkCol.Type != relation.Int {
		return nil
	}
	info := &EntityInfo{
		Relation: name,
		PK:       rel.PrimaryKey,
		NumRows:  rel.NumRows(),
		rel:      rel,
		pkIndex:  a.Indexes.IntHash(rel, rel.PrimaryKey),
	}
	info.rowIDs = make([]int64, rel.NumRows())
	for i := range info.rowIDs {
		info.rowIDs[i] = pkCol.Int64(i)
	}
	return info
}

// Config returns the build configuration.
func (a *AlphaDB) Config() Config { return a.cfg }

// CombinedDB returns a database containing both the original and the
// derived relations, so the execution engine can run αDB-form SPJ queries
// (Q5 of the paper) directly.
func (a *AlphaDB) CombinedDB() *relation.Database {
	combined := relation.NewDatabase(a.DB.Name + "_combined")
	for _, n := range a.DB.RelationNames() {
		combined.AddRelation(a.DB.Relation(n))
	}
	for _, n := range a.DerivedDB.RelationNames() {
		combined.AddRelation(a.DerivedDB.Relation(n))
	}
	return combined
}

// buildEntity discovers and materializes all semantic properties of one
// entity relation.
func (a *AlphaDB) buildEntity(name string) (*EntityInfo, error) {
	rel := a.DB.Relation(name)
	if rel.PrimaryKey == "" {
		return nil, fmt.Errorf("adb: entity relation %q has no primary key", name)
	}
	pkCol := rel.Column(rel.PrimaryKey)
	if pkCol.Type != relation.Int {
		return nil, fmt.Errorf("adb: entity relation %q primary key must be INTEGER", name)
	}
	info := &EntityInfo{
		Relation: name,
		PK:       rel.PrimaryKey,
		NumRows:  rel.NumRows(),
		rel:      rel,
		pkIndex:  a.Indexes.IntHash(rel, rel.PrimaryKey),
	}
	info.rowIDs = make([]int64, rel.NumRows())
	for i := range info.rowIDs {
		info.rowIDs[i] = pkCol.Int64(i)
	}

	excluded := make(map[string]bool)
	for _, c := range a.cfg.ExcludeColumns[name] {
		excluded[c] = true
	}
	fkCols := make(map[string]relation.ForeignKey)
	for _, fk := range rel.Foreign {
		fkCols[fk.Column] = fk
	}

	// 1. Direct attributes of the entity relation.
	for _, col := range rel.Columns() {
		if col.Name == rel.PrimaryKey || excluded[col.Name] {
			continue
		}
		if fk, isFK := fkCols[col.Name]; isFK {
			// 2. FK-dimension attribute (person.country_id → country.name).
			if a.DB.Kind(fk.RefRelation) == relation.KindProperty {
				if p := a.buildFKDimProperty(info, fk); p != nil {
					info.Basic = append(info.Basic, p)
				}
			}
			continue
		}
		if p := a.buildDirectProperty(info, col); p != nil {
			info.Basic = append(info.Basic, p)
		}
	}

	// 3. Attribute tables: side relations with a single foreign key to
	// this entity plus value columns, like research(aid, interest) in
	// Fig 1 of the paper.
	for _, sideName := range a.DB.RelationNames() {
		side := a.DB.Relation(sideName)
		if a.DB.Kind(sideName) != relation.KindUnknown || len(side.Foreign) != 1 {
			continue
		}
		fk := side.Foreign[0]
		if fk.RefRelation != name {
			continue
		}
		for _, col := range side.Columns() {
			if col.Name == fk.Column || col.Type != relation.String {
				continue
			}
			if p := a.buildAttrTableProperty(info, sideName, fk, col); p != nil {
				info.Basic = append(info.Basic, p)
			}
		}
	}

	// 4. Fact-dimension attributes and derived properties via fact
	// tables referencing this entity.
	for _, factName := range a.DB.RelationNames() {
		fact := a.DB.Relation(factName)
		if a.DB.Kind(factName) != relation.KindUnknown || len(fact.Foreign) < 2 {
			continue
		}
		for _, fkToMe := range fact.Foreign {
			if fkToMe.RefRelation != name {
				continue
			}
			for _, other := range fact.Foreign {
				if other == fkToMe {
					continue
				}
				switch a.DB.Kind(other.RefRelation) {
				case relation.KindProperty:
					if p := a.buildFactDimProperty(info, factName, fkToMe, other); p != nil {
						info.Basic = append(info.Basic, p)
					}
				case relation.KindEntity:
					ps, err := a.buildDerivedProperties(info, factName, fkToMe, other)
					if err != nil {
						return nil, err
					}
					info.Derived = append(info.Derived, ps...)
				}
			}
		}
	}

	sort.Slice(info.Basic, func(i, j int) bool { return info.Basic[i].Attr < info.Basic[j].Attr })
	sort.Slice(info.Derived, func(i, j int) bool { return info.Derived[i].Attr < info.Derived[j].Attr })
	return info, nil
}

// keepCategorical applies the distinct-count guards that exclude
// identifier-like text columns from property discovery. The ratio guard
// only applies to relations large enough for the ratio to be meaningful
// (small dimension-like tables legitimately have high distinct ratios).
func (a *AlphaDB) keepCategorical(distinct, entities int) bool {
	if distinct == 0 || distinct > a.cfg.MaxCatDistinct {
		return false
	}
	const ratioMinEntities = 50
	if entities >= ratioMinEntities && float64(distinct)/float64(entities) > a.cfg.MaxCatRatio {
		return false
	}
	return true
}

// finishCategorical computes the per-value statistics of a categorical
// basic property from its per-row value lists.
func (a *AlphaDB) finishCategorical(p *BasicProperty) *BasicProperty {
	p.catCounts = make(map[string]int)
	p.catRows = make(map[string][]int)
	for row, vals := range p.strByRow {
		seen := make(map[string]bool, len(vals))
		for _, v := range vals {
			if seen[v] {
				continue
			}
			seen[v] = true
			p.catCounts[v]++
			p.catRows[v] = append(p.catRows[v], row)
		}
	}
	if !a.keepCategorical(len(p.catCounts), p.numEntities) {
		return nil
	}
	p.cache = a.selCache
	return p
}

// buildDirectProperty creates a basic property from a direct entity
// column.
func (a *AlphaDB) buildDirectProperty(info *EntityInfo, col *relation.Column) *BasicProperty {
	p := &BasicProperty{
		Entity:      info.Relation,
		Attr:        col.Name,
		Access:      AccessPath{Type: Direct, Column: col.Name},
		numEntities: info.NumRows,
	}
	if col.Type == relation.String {
		p.Kind = Categorical
		p.strByRow = make([][]string, info.NumRows)
		for row := 0; row < info.NumRows; row++ {
			if col.IsNull(row) {
				continue
			}
			p.strByRow[row] = []string{col.Str(row)}
		}
		return a.finishCategorical(p)
	}
	p.Kind = Numeric
	p.numByRow = make([]*float64, info.NumRows)
	var vals []float64
	var rows []int
	for row := 0; row < info.NumRows; row++ {
		if col.IsNull(row) {
			continue
		}
		v := col.Float64(row)
		p.numByRow[row] = &v
		vals = append(vals, v)
		rows = append(rows, row)
	}
	if len(vals) == 0 {
		return nil
	}
	p.sorted = index.BuildSortedFromValues(vals)
	p.numIdx = index.BuildNumericRows(vals, rows)
	p.cache = a.selCache
	return p
}

// dimValueColumn resolves the display column of a dimension relation.
func (a *AlphaDB) dimValueColumn(dim *relation.Relation) string {
	if c, ok := a.cfg.PropertyValueColumn[dim.Name]; ok {
		return c
	}
	for _, col := range dim.Columns() {
		if col.Type == relation.String {
			return col.Name
		}
	}
	return ""
}

// buildFKDimProperty creates a basic property reached through the
// entity's own foreign key into a dimension relation.
func (a *AlphaDB) buildFKDimProperty(info *EntityInfo, fk relation.ForeignKey) *BasicProperty {
	dim := a.DB.Relation(fk.RefRelation)
	valCol := a.dimValueColumn(dim)
	if valCol == "" {
		return nil
	}
	dimIdx := a.Indexes.IntHash(dim, fk.RefColumn)
	vc := dim.Column(valCol)
	fkc := info.rel.Column(fk.Column)
	p := &BasicProperty{
		Entity: info.Relation,
		Attr:   dim.Name,
		Kind:   Categorical,
		Access: AccessPath{
			Type: FKDim, Column: fk.Column,
			Dim: dim.Name, DimPK: fk.RefColumn, DimValueCol: valCol,
		},
		numEntities: info.NumRows,
	}
	p.strByRow = make([][]string, info.NumRows)
	for row := 0; row < info.NumRows; row++ {
		if fkc.IsNull(row) {
			continue
		}
		if dimRow, ok := dimIdx.First(fkc.Int64(row)); ok && !vc.IsNull(dimRow) {
			p.strByRow[row] = []string{vc.Str(dimRow)}
		}
	}
	return a.finishCategorical(p)
}

// buildAttrTableProperty creates a (multi-valued) basic property from an
// attribute table: a side relation with a single FK to the entity and a
// value column (research(aid, interest) in Fig 1 of the paper).
func (a *AlphaDB) buildAttrTableProperty(info *EntityInfo, sideName string, fk relation.ForeignKey, col *relation.Column) *BasicProperty {
	side := a.DB.Relation(sideName)
	fkc := side.Column(fk.Column)
	p := &BasicProperty{
		Entity:      info.Relation,
		Attr:        col.Name,
		Kind:        Categorical,
		MultiValued: true,
		Access: AccessPath{
			Type: AttrTable,
			Fact: sideName, FactEntityCol: fk.Column,
			Column: col.Name,
		},
		numEntities: info.NumRows,
	}
	p.strByRow = make([][]string, info.NumRows)
	for sr := 0; sr < side.NumRows(); sr++ {
		if fkc.IsNull(sr) || col.IsNull(sr) {
			continue
		}
		if row, ok := info.pkIndex.First(fkc.Int64(sr)); ok {
			p.strByRow[row] = append(p.strByRow[row], col.Str(sr))
		}
	}
	return a.finishCategorical(p)
}

// buildFactDimProperty creates a (multi-valued) basic property reached
// through a fact table into a dimension relation.
func (a *AlphaDB) buildFactDimProperty(info *EntityInfo, factName string, fkToMe, fkToDim relation.ForeignKey) *BasicProperty {
	fact := a.DB.Relation(factName)
	dim := a.DB.Relation(fkToDim.RefRelation)
	valCol := a.dimValueColumn(dim)
	if valCol == "" {
		return nil
	}
	dimIdx := a.Indexes.IntHash(dim, fkToDim.RefColumn)
	vc := dim.Column(valCol)
	entCol := fact.Column(fkToMe.Column)
	dimFK := fact.Column(fkToDim.Column)

	p := &BasicProperty{
		Entity:      info.Relation,
		Attr:        dim.Name,
		Kind:        Categorical,
		MultiValued: true,
		Access: AccessPath{
			Type: FactDim,
			Fact: factName, FactEntityCol: fkToMe.Column, FactDimCol: fkToDim.Column,
			Dim: dim.Name, DimPK: fkToDim.RefColumn, DimValueCol: valCol,
		},
		numEntities: info.NumRows,
	}
	p.strByRow = make([][]string, info.NumRows)
	for fr := 0; fr < fact.NumRows(); fr++ {
		if entCol.IsNull(fr) || dimFK.IsNull(fr) {
			continue
		}
		row, ok := info.pkIndex.First(entCol.Int64(fr))
		if !ok {
			continue
		}
		dimRow, ok := dimIdx.First(dimFK.Int64(fr))
		if !ok || vc.IsNull(dimRow) {
			continue
		}
		p.strByRow[row] = append(p.strByRow[row], vc.Str(dimRow))
	}
	return a.finishCategorical(p)
}
