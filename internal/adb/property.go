// Package adb implements SQuID's offline module: it turns a relational
// database plus administrator metadata (which relations are entities,
// which are direct properties) into an abduction-ready database (αDB).
// The αDB discovers fact tables from key-foreign-key edges, materializes
// derived relations such as persontogenre(person_id, genre_id, count)
// (Fig 5 / query Q6 of the paper), precomputes selectivity statistics for
// every basic and derived semantic property, and builds the inverted
// column index used for entity lookup (§5).
package adb

import (
	"fmt"
	"sort"

	"squid/internal/index"
	"squid/internal/relation"
)

// PropKind distinguishes categorical from numeric semantic properties.
type PropKind int

const (
	// Categorical properties produce equality (or disjunctive IN)
	// filters, e.g. gender = Male.
	Categorical PropKind = iota
	// Numeric properties produce range filters, e.g. 50 ≤ age ≤ 90.
	Numeric
)

// PathType identifies how a basic property value is reached from its
// entity.
type PathType int

const (
	// Direct means the value is a column of the entity relation itself
	// (person.gender).
	Direct PathType = iota
	// FKDim means the entity has a foreign key into a dimension
	// relation holding the value (person.country_id → country.name).
	FKDim
	// FactDim means a fact table associates the entity with a
	// dimension relation (movie ← movietogenre → genre); such
	// properties are multi-valued per entity.
	FactDim
	// Degree is the pseudo-property counting associated entities
	// (number of movies a person appears in); only used by derived
	// properties.
	Degree
	// AttrTable means a side table holds (entity_fk, value) pairs
	// directly, like research(aid, interest) in Fig 1 of the paper;
	// such properties are multi-valued per entity.
	AttrTable
)

// AccessPath records how to navigate from an entity row to a property
// value; sqlgen uses it to render join paths and the builder uses it to
// extract values.
type AccessPath struct {
	Type PathType
	// Column is the entity column holding the value (Direct) or the
	// entity's FK column (FKDim).
	Column string
	// Fact names the fact relation and its two FK columns (FactDim).
	Fact          string
	FactEntityCol string
	FactDimCol    string
	// Dim names the dimension relation, its primary key, and the
	// display/value column (FKDim, FactDim).
	Dim         string
	DimPK       string
	DimValueCol string
}

// BasicProperty is a semantic property affiliated with an entity directly
// (§3.1): a direct attribute, an FK dimension attribute, or a fact-table
// dimension attribute.
type BasicProperty struct {
	Entity string
	// Attr is the display attribute name used in filters and contexts,
	// e.g. "gender", "genre", "country".
	Attr   string
	Kind   PropKind
	Access AccessPath

	// MultiValued reports whether one entity can hold several values
	// (only FactDim paths).
	MultiValued bool

	// Categorical statistics: per value, the number of distinct
	// entities exhibiting it, and the rows of those entities.
	catCounts map[string]int
	catRows   map[string][]int

	// Numeric statistics: the sorted value multiset for prefix
	// selectivity, and the column for per-entity access.
	sorted *index.Sorted

	// valuesByRow caches per-entity values (always set; single
	// element for single-valued properties). Numeric properties store
	// the raw value; categorical store strings.
	strByRow [][]string
	numByRow []*float64

	numEntities int
}

// NumEntities returns |R|, the selectivity denominator.
func (p *BasicProperty) NumEntities() int { return p.numEntities }

// Values returns the categorical values of the entity at row (nil when
// the entity has none).
func (p *BasicProperty) Values(row int) []string {
	if p.Kind != Categorical {
		return nil
	}
	return p.strByRow[row]
}

// NumValue returns the numeric value of the entity at row.
func (p *BasicProperty) NumValue(row int) (float64, bool) {
	if p.Kind != Numeric || p.numByRow[row] == nil {
		return 0, false
	}
	return *p.numByRow[row], true
}

// CategoricalSelectivity returns ψ(φ⟨Attr,v,⊥⟩): the fraction of entities
// exhibiting value v.
func (p *BasicProperty) CategoricalSelectivity(v string) float64 {
	if p.numEntities == 0 {
		return 0
	}
	return float64(p.catCounts[v]) / float64(p.numEntities)
}

// RangeSelectivity returns ψ(φ⟨Attr,[lo,hi],⊥⟩) using the precomputed
// prefix counts (§5 smart selectivity computation).
func (p *BasicProperty) RangeSelectivity(lo, hi float64) float64 {
	if p.numEntities == 0 || p.sorted == nil {
		return 0
	}
	return float64(p.sorted.CountRange(lo, hi)) / float64(p.numEntities)
}

// DomainCoverage returns the fraction of the attribute's observed domain
// covered by [lo, hi] (Appendix A).
func (p *BasicProperty) DomainCoverage(lo, hi float64) float64 {
	if p.sorted == nil || p.sorted.Len() == 0 {
		return 1
	}
	span := p.sorted.Max() - p.sorted.Min()
	if span <= 0 {
		return 1
	}
	cov := (hi - lo) / span
	if cov < 0 {
		cov = 0
	}
	if cov > 1 {
		cov = 1
	}
	return cov
}

// CategoricalDomainCoverage returns the domain coverage of a k-value
// disjunctive filter over a categorical attribute: k / |distinct values|.
func (p *BasicProperty) CategoricalDomainCoverage(k int) float64 {
	if len(p.catCounts) == 0 {
		return 1
	}
	cov := float64(k) / float64(len(p.catCounts))
	if cov > 1 {
		cov = 1
	}
	return cov
}

// EntityRowsWithValue returns the entity rows exhibiting categorical
// value v (sorted ascending).
func (p *BasicProperty) EntityRowsWithValue(v string) []int { return p.catRows[v] }

// DistinctValues returns the property's categorical domain, sorted.
func (p *BasicProperty) DistinctValues() []string {
	out := make([]string, 0, len(p.catCounts))
	for v := range p.catCounts {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// NumericIndex exposes the sorted value index (nil for categorical).
func (p *BasicProperty) NumericIndex() *index.Sorted { return p.sorted }

// String renders the property for diagnostics.
func (p *BasicProperty) String() string {
	return fmt.Sprintf("%s.%s", p.Entity, p.Attr)
}

// valCount pairs an entity row with its association strength for one
// derived value.
type valCount struct {
	entityRow int
	count     int
}

// DerivedProperty is an aggregate over a basic property of an associated
// entity (§3.1): e.g. for person, the number of Comedy movies they
// appear in. It is materialized as a derived relation
// (entity_id, value, count) in the αDB.
type DerivedProperty struct {
	Entity string
	// Via is the associated entity relation (movie for persontogenre).
	Via string
	// ViaPK is the primary key column of Via (for SQL rendering).
	ViaPK string
	// Attr is the display name, qualified by the association, e.g.
	// "movie:genre" or "movie:count" for the degree property.
	Attr string
	// Fact1 is the fact table linking Entity to Via, with its FK
	// column names.
	Fact1          string
	Fact1EntityCol string
	Fact1ViaCol    string
	// Target describes how the aggregated value is reached from Via
	// (Direct column, FKDim, FactDim, or Degree).
	Target AccessPath
	// RelName is the materialized derived relation name, e.g.
	// "persontogenre".
	RelName string

	rel          *relation.Relation
	byEntity     *index.IntHash
	perValue     map[string]*index.Sorted
	perValueRows map[string][]valCount
	numEntities  int
}

// NumEntities returns |R| for the owning entity relation.
func (p *DerivedProperty) NumEntities() int { return p.numEntities }

// Relation returns the materialized derived relation.
func (p *DerivedProperty) Relation() *relation.Relation { return p.rel }

// Counts returns the per-value association strengths of the entity at
// the given row of the entity relation.
func (p *DerivedProperty) Counts(entityID int64) map[string]int {
	rows := p.byEntity.Rows(entityID)
	if len(rows) == 0 {
		return nil
	}
	out := make(map[string]int, len(rows))
	vcol, ccol := p.rel.Column("value"), p.rel.Column("count")
	for _, r := range rows {
		out[vcol.Str(r)] = int(ccol.Int64(r))
	}
	return out
}

// Selectivity returns ψ(φ⟨Attr,v,θ⟩): the fraction of entities associated
// with value v at strength ≥ θ. Entities with no association count as 0.
func (p *DerivedProperty) Selectivity(v string, theta int) float64 {
	if p.numEntities == 0 {
		return 0
	}
	if theta <= 0 {
		return 1
	}
	s := p.perValue[v]
	if s == nil {
		return 0
	}
	return float64(s.CountGE(float64(theta))) / float64(p.numEntities)
}

// EntityRowsWithStrength returns the entity rows associated with value v
// at strength ≥ θ.
func (p *DerivedProperty) EntityRowsWithStrength(v string, theta int) []int {
	var out []int
	for _, vc := range p.perValueRows[v] {
		if vc.count >= theta {
			out = append(out, vc.entityRow)
		}
	}
	return out
}

// ValEntry pairs an entity row with its association strength.
type ValEntry struct {
	Row   int
	Count int
}

// ValueEntries returns every (entity row, strength) pair for value v;
// the abduction layer uses it for normalized association strength.
func (p *DerivedProperty) ValueEntries(v string) []ValEntry {
	vcs := p.perValueRows[v]
	out := make([]ValEntry, len(vcs))
	for i, vc := range vcs {
		out[i] = ValEntry{Row: vc.entityRow, Count: vc.count}
	}
	return out
}

// MaxStrength returns the largest association strength observed for v.
func (p *DerivedProperty) MaxStrength(v string) int {
	s := p.perValue[v]
	if s == nil || s.Len() == 0 {
		return 0
	}
	return int(s.Max())
}

// DistinctValues returns the derived value domain, sorted.
func (p *DerivedProperty) DistinctValues() []string {
	out := make([]string, 0, len(p.perValue))
	for v := range p.perValue {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// String renders the property for diagnostics.
func (p *DerivedProperty) String() string {
	return fmt.Sprintf("%s.%s [%s]", p.Entity, p.Attr, p.RelName)
}
