// Package adb implements SQuID's offline module: it turns a relational
// database plus administrator metadata (which relations are entities,
// which are direct properties) into an abduction-ready database (αDB).
// The αDB discovers fact tables from key-foreign-key edges, materializes
// derived relations such as persontogenre(person_id, genre_id, count)
// (Fig 5 / query Q6 of the paper), precomputes selectivity statistics for
// every basic and derived semantic property, and builds the inverted
// column index used for entity lookup (§5).
//
// Categorical statistics are dictionary-encoded: every property keys its
// per-value counts and posting lists by the int32 codes of the source
// column's dictionary, so property scans and row-set computation compare
// integers; strings appear only at the API boundary.
package adb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"squid/internal/index"
	"squid/internal/relation"
	"squid/internal/trace"
)

// PropKind distinguishes categorical from numeric semantic properties.
type PropKind int

const (
	// Categorical properties produce equality (or disjunctive IN)
	// filters, e.g. gender = Male.
	Categorical PropKind = iota
	// Numeric properties produce range filters, e.g. 50 ≤ age ≤ 90.
	Numeric
)

// PathType identifies how a basic property value is reached from its
// entity.
type PathType int

const (
	// Direct means the value is a column of the entity relation itself
	// (person.gender).
	Direct PathType = iota
	// FKDim means the entity has a foreign key into a dimension
	// relation holding the value (person.country_id → country.name).
	FKDim
	// FactDim means a fact table associates the entity with a
	// dimension relation (movie ← movietogenre → genre); such
	// properties are multi-valued per entity.
	FactDim
	// Degree is the pseudo-property counting associated entities
	// (number of movies a person appears in); only used by derived
	// properties.
	Degree
	// AttrTable means a side table holds (entity_fk, value) pairs
	// directly, like research(aid, interest) in Fig 1 of the paper;
	// such properties are multi-valued per entity.
	AttrTable
)

// AccessPath records how to navigate from an entity row to a property
// value; sqlgen uses it to render join paths and the builder uses it to
// extract values.
type AccessPath struct {
	Type PathType
	// Column is the entity column holding the value (Direct) or the
	// entity's FK column (FKDim).
	Column string
	// Fact names the fact relation and its two FK columns (FactDim).
	Fact          string
	FactEntityCol string
	FactDimCol    string
	// Dim names the dimension relation, its primary key, and the
	// display/value column (FKDim, FactDim).
	Dim         string
	DimPK       string
	DimValueCol string
}

// BasicProperty is a semantic property affiliated with an entity directly
// (§3.1): a direct attribute, an FK dimension attribute, or a fact-table
// dimension attribute.
type BasicProperty struct {
	Entity string
	// Attr is the display attribute name used in filters and contexts,
	// e.g. "gender", "genre", "country".
	Attr   string
	Kind   PropKind
	Access AccessPath

	// MultiValued reports whether one entity can hold several values
	// (only FactDim paths).
	MultiValued bool

	// dict is the dictionary of the source column the property's
	// values come from; every categorical statistic below is keyed by
	// its int32 codes.
	dict *relation.Dict
	// catCounts[code] is the number of distinct entities exhibiting
	// the value, catRows[code] the rows of those entities (ascending).
	// numValues counts codes with a nonzero count — the property's
	// distinct-value cardinality (the dictionary can hold values this
	// property never exhibits).
	catCounts []int
	catRows   [][]int
	numValues int

	// Numeric statistics: the sorted value multiset for prefix
	// selectivity, and the value→row index for range-filter row lookup
	// in O(log n + k).
	sorted *index.Sorted
	numIdx *index.NumericRows

	// valsByRow caches per-entity value codes (always set for
	// categorical properties; single element for single-valued ones);
	// numByRow the raw numeric values.
	valsByRow [][]int32
	numByRow  []*float64

	numEntities int
	cache       *SelCache
}

// NumEntities returns |R|, the selectivity denominator.
func (p *BasicProperty) NumEntities() int { return p.numEntities }

// cloneForWrite returns a copy-on-write clone for one epoch's writer:
// the scalar statistics and the outer containers are copied (so the
// writer can grow and re-point them freely), the inner row lists are
// shared (appends past a retired epoch's lengths are invisible to its
// readers; in-place mutations always copy out first), and the sorted
// indexes are deep-copied because incremental inserts shift their
// elements in place.
func (p *BasicProperty) cloneForWrite() *BasicProperty {
	q := *p
	q.catCounts = append([]int(nil), p.catCounts...)
	q.catRows = append([][]int(nil), p.catRows...)
	q.valsByRow = append([][]int32(nil), p.valsByRow...)
	q.numByRow = append([]*float64(nil), p.numByRow...)
	q.sorted = p.sorted.Clone()
	q.numIdx = p.numIdx.Clone()
	return &q
}

// Dict returns the value dictionary the property's codes index into.
func (p *BasicProperty) Dict() *relation.Dict { return p.dict }

// DecodeValue decodes a value code to its string.
func (p *BasicProperty) DecodeValue(code int32) string { return p.dict.Value(code) }

// LookupCode returns the code of a categorical value and whether the
// value exists in the property's dictionary.
func (p *BasicProperty) LookupCode(v string) (int32, bool) {
	if p.dict == nil {
		return 0, false
	}
	return p.dict.Lookup(v)
}

// ValueCodes returns the categorical value codes of the entity at row
// (nil when the entity has none). The slice is αDB-internal: do not
// mutate.
func (p *BasicProperty) ValueCodes(row int) []int32 {
	if p.Kind != Categorical {
		return nil
	}
	return p.valsByRow[row]
}

// Values returns the categorical values of the entity at row (nil when
// the entity has none).
func (p *BasicProperty) Values(row int) []string {
	codes := p.ValueCodes(row)
	if codes == nil {
		return nil
	}
	out := make([]string, len(codes))
	for i, c := range codes {
		out[i] = p.dict.Value(c)
	}
	return out
}

// NumValue returns the numeric value of the entity at row.
func (p *BasicProperty) NumValue(row int) (float64, bool) {
	if p.Kind != Numeric || p.numByRow[row] == nil {
		return 0, false
	}
	return *p.numByRow[row], true
}

// countOf returns the entity count of a code (0 when out of range: the
// dictionary can grow past the statistics under incremental inserts).
func (p *BasicProperty) countOf(code int32) int {
	if int(code) < len(p.catCounts) {
		return p.catCounts[code]
	}
	return 0
}

// rowsOf returns the posting list of a code.
func (p *BasicProperty) rowsOf(code int32) []int {
	if int(code) < len(p.catRows) {
		return p.catRows[code]
	}
	return nil
}

// growTo extends the per-code statistics to cover code (incremental
// inserts can intern values the build never saw).
func (p *BasicProperty) growTo(code int32) {
	for int32(len(p.catCounts)) <= code {
		p.catCounts = append(p.catCounts, 0)
		p.catRows = append(p.catRows, nil)
	}
}

// addCatRow records that the entity at row exhibits code; rows must
// arrive in ascending order (the builder scans rows in order).
func (p *BasicProperty) addCatRow(code int32, row int) {
	p.growTo(code)
	if p.catCounts[code] == 0 {
		p.numValues++
	}
	p.catCounts[code]++
	p.catRows[code] = append(p.catRows[code], row)
}

// CategoricalSelectivity returns ψ(φ⟨Attr,v,⊥⟩): the fraction of entities
// exhibiting value v.
func (p *BasicProperty) CategoricalSelectivity(v string) float64 {
	code, ok := p.LookupCode(v)
	if !ok {
		return 0
	}
	return p.SelectivityOfCode(code)
}

// SelectivityOfCode returns ψ(φ⟨Attr,v,⊥⟩) for a value code — the
// string-free fast path of the disambiguation scorer.
func (p *BasicProperty) SelectivityOfCode(code int32) float64 {
	if p.numEntities == 0 {
		return 0
	}
	return float64(p.countOf(code)) / float64(p.numEntities)
}

// RangeSelectivity returns ψ(φ⟨Attr,[lo,hi],⊥⟩) using the precomputed
// prefix counts (§5 smart selectivity computation).
func (p *BasicProperty) RangeSelectivity(lo, hi float64) float64 {
	if p.numEntities == 0 || p.sorted == nil {
		return 0
	}
	return float64(p.sorted.CountRange(lo, hi)) / float64(p.numEntities)
}

// DomainCoverage returns the fraction of the attribute's observed domain
// covered by [lo, hi] (Appendix A).
func (p *BasicProperty) DomainCoverage(lo, hi float64) float64 {
	if p.sorted == nil || p.sorted.Len() == 0 {
		return 1
	}
	span := p.sorted.Max() - p.sorted.Min()
	if span <= 0 {
		return 1
	}
	cov := (hi - lo) / span
	if cov < 0 {
		cov = 0
	}
	if cov > 1 {
		cov = 1
	}
	return cov
}

// CategoricalDomainCoverage returns the domain coverage of a k-value
// disjunctive filter over a categorical attribute: k / |distinct values|.
func (p *BasicProperty) CategoricalDomainCoverage(k int) float64 {
	if p.numValues == 0 {
		return 1
	}
	cov := float64(k) / float64(p.numValues)
	if cov > 1 {
		cov = 1
	}
	return cov
}

// EntityRowsWithValue returns the entity rows exhibiting categorical
// value v (sorted ascending). The slice is αDB-internal: do not mutate.
func (p *BasicProperty) EntityRowsWithValue(v string) []int {
	code, ok := p.LookupCode(v)
	if !ok {
		return nil
	}
	return p.rowsOf(code)
}

// EntityRowsWithAnyValue returns the union of the per-value row sets
// (sorted ascending): the satisfying rows of a disjunctive IN filter.
// Results are memoized in the αDB selectivity cache; do not mutate.
func (p *BasicProperty) EntityRowsWithAnyValue(values []string) []int {
	if len(values) == 0 {
		return nil
	}
	if len(values) == 1 {
		return p.EntityRowsWithValue(values[0])
	}
	return p.EntityRowSetWithAnyValue(values).ToSorted()
}

// EntityRowSetWithAnyValue is the bitset form of EntityRowsWithAnyValue:
// the union of the per-value posting lists as a dense RowSet, memoized
// in the αDB selectivity cache under the same canonical disjunction key
// (a single value is a one-element disjunction). The returned set is
// shared: do not mutate.
func (p *BasicProperty) EntityRowSetWithAnyValue(values []string) *index.RowSet {
	return p.EntityRowSetWithAnyValueT(values, trace.Span{})
}

// EntityRowSetWithAnyValueT is EntityRowSetWithAnyValue with cache
// events attributed to sp.
func (p *BasicProperty) EntityRowSetWithAnyValueT(values []string, sp trace.Span) *index.RowSet {
	if len(values) == 0 {
		return index.NewRowSet(0)
	}
	key := SelKey{Prop: p, Value: disjunctionKey(values)}
	return p.cache.RowSetT(key, sp, func() *index.RowSet {
		s := index.NewRowSet(p.numEntities)
		for _, v := range values {
			s.AddAll(p.EntityRowsWithValue(v))
		}
		return s
	})
}

// disjunctionKey canonicalizes a disjunctive value set into a
// collision-free cache key: the values are sorted, so {a,b} and {b,a}
// share one entry, and each is length-prefixed, so no joiner byte can
// alias — values containing NUL (or any other separator) cannot
// collide the way a plain '\x00' join did.
func disjunctionKey(values []string) string {
	sorted := append([]string(nil), values...)
	sort.Strings(sorted)
	var b strings.Builder
	for _, v := range sorted {
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(v)
	}
	return b.String()
}

// EntityRowsInRange returns the entity rows whose numeric value lies in
// [lo, hi], sorted ascending. Selective ranges are answered from the
// sorted value→row index in O(log n + k); wide ranges (≥ ¼ of the
// entities) fall back to the dense row-order scan, which is cheaper
// than re-sorting a near-complete row set. Results are memoized; do not
// mutate the returned slice.
func (p *BasicProperty) EntityRowsInRange(lo, hi float64) []int {
	if p.Kind != Numeric || p.sorted == nil {
		return nil
	}
	return p.EntityRowSetInRange(lo, hi).ToSorted()
}

// EntityRowSetInRange is the bitset form of EntityRowsInRange. Both the
// index path and the dense scan insert straight into the RowSet, so
// neither needs the row-order re-sort the []int index path paid.
// Memoized; do not mutate the returned set.
func (p *BasicProperty) EntityRowSetInRange(lo, hi float64) *index.RowSet {
	return p.EntityRowSetInRangeT(lo, hi, trace.Span{})
}

// EntityRowSetInRangeT is EntityRowSetInRange with cache events
// attributed to sp.
func (p *BasicProperty) EntityRowSetInRangeT(lo, hi float64, sp trace.Span) *index.RowSet {
	if p.Kind != Numeric || p.sorted == nil {
		return index.NewRowSet(0)
	}
	key := SelKey{Prop: p, Lo: lo, Hi: hi}
	return p.cache.RowSetT(key, sp, func() *index.RowSet {
		s := index.NewRowSet(p.numEntities)
		if k := p.sorted.CountRange(lo, hi); p.numIdx != nil && k*4 < p.numEntities {
			p.numIdx.AddRangeToSet(lo, hi, s)
			return s
		}
		for row, v := range p.numByRow {
			if v != nil && *v >= lo && *v <= hi {
				s.Add(row)
			}
		}
		return s
	})
}

// NumDistinct returns the number of distinct values the property
// exhibits (categorical).
func (p *BasicProperty) NumDistinct() int { return p.numValues }

// DistinctValues returns the property's categorical domain, sorted.
func (p *BasicProperty) DistinctValues() []string {
	out := make([]string, 0, p.numValues)
	for code, cnt := range p.catCounts {
		if cnt > 0 {
			out = append(out, p.dict.Value(int32(code)))
		}
	}
	sort.Strings(out)
	return out
}

// NumericIndex exposes the sorted value index (nil for categorical).
func (p *BasicProperty) NumericIndex() *index.Sorted { return p.sorted }

// String renders the property for diagnostics.
func (p *BasicProperty) String() string {
	return fmt.Sprintf("%s.%s", p.Entity, p.Attr)
}

// valCount pairs an entity row with its association strength for one
// derived value.
type valCount struct {
	entityRow int
	count     int
}

// DerivedProperty is an aggregate over a basic property of an associated
// entity (§3.1): e.g. for person, the number of Comedy movies they
// appear in. It is materialized as a derived relation
// (entity_id, value, count) in the αDB. Per-value statistics are keyed
// by the codes of the derived relation's value-column dictionary.
type DerivedProperty struct {
	Entity string
	// Via is the associated entity relation (movie for persontogenre).
	Via string
	// ViaPK is the primary key column of Via (for SQL rendering).
	ViaPK string
	// Attr is the display name, qualified by the association, e.g.
	// "movie:genre" or "movie:count" for the degree property.
	Attr string
	// Fact1 is the fact table linking Entity to Via, with its FK
	// column names.
	Fact1          string
	Fact1EntityCol string
	Fact1ViaCol    string
	// Target describes how the aggregated value is reached from Via
	// (Direct column, FKDim, FactDim, or Degree).
	Target AccessPath
	// RelName is the materialized derived relation name, e.g.
	// "persontogenre".
	RelName string

	rel      *relation.Relation
	byEntity *index.IntHash
	// perValue[code] is the sorted strength multiset of one value;
	// perValueRows[code] lists the (entity row, strength) pairs sorted
	// ascending by entity row — the invariant behind the O(log n)
	// StrengthOf lookup and the merge-intersection of the abduction
	// layer. The builder emits rows in order; incremental bumps insert
	// in place.
	perValue     []*index.Sorted
	perValueRows [][]valCount
	numEntities  int
	cache        *SelCache

	// privCodes marks the value codes whose inner statistics the
	// current epoch writer already copied out of the shared backing;
	// only that writer touches it, and clones reset it.
	privCodes map[int32]bool
}

// NumEntities returns |R| for the owning entity relation.
func (p *DerivedProperty) NumEntities() int { return p.numEntities }

// cloneForWrite returns a copy-on-write clone for one epoch's writer
// (see BasicProperty.cloneForWrite): outer containers copied, per-code
// inner statistics shared until first mutation (privCodes tracks the
// copy-outs), relation and entity index re-pointed by the writer when
// it privatizes them.
func (p *DerivedProperty) cloneForWrite() *DerivedProperty {
	q := *p
	q.perValue = append([]*index.Sorted(nil), p.perValue...)
	q.perValueRows = append([][]valCount(nil), p.perValueRows...)
	q.privCodes = nil
	return &q
}

// Relation returns the materialized derived relation.
func (p *DerivedProperty) Relation() *relation.Relation { return p.rel }

// valueDict returns the dictionary of the derived relation's value
// column, which keys every per-value statistic.
func (p *DerivedProperty) valueDict() *relation.Dict { return p.rel.Column("value").Dict() }

// Dict returns the value dictionary the property's codes index into.
func (p *DerivedProperty) Dict() *relation.Dict { return p.valueDict() }

// DecodeValue decodes a value code to its string.
func (p *DerivedProperty) DecodeValue(code int32) string { return p.valueDict().Value(code) }

// LookupCode returns the code of a derived value and whether it exists.
func (p *DerivedProperty) LookupCode(v string) (int32, bool) { return p.valueDict().Lookup(v) }

// pairsOf returns the (entity row, strength) list of a code.
func (p *DerivedProperty) pairsOf(code int32) []valCount {
	if int(code) < len(p.perValueRows) {
		return p.perValueRows[code]
	}
	return nil
}

// sortedOf returns the strength multiset of a code (nil when absent).
func (p *DerivedProperty) sortedOf(code int32) *index.Sorted {
	if int(code) < len(p.perValue) {
		return p.perValue[code]
	}
	return nil
}

// growTo extends the per-code statistics to cover code.
func (p *DerivedProperty) growTo(code int32) {
	for int32(len(p.perValueRows)) <= code {
		p.perValueRows = append(p.perValueRows, nil)
		p.perValue = append(p.perValue, nil)
	}
}

// Counts returns the per-value association strengths of the entity at
// the given row of the entity relation.
func (p *DerivedProperty) Counts(entityID int64) map[string]int {
	rows := p.byEntity.Rows(entityID)
	if len(rows) == 0 {
		return nil
	}
	out := make(map[string]int, len(rows))
	vcol, ccol := p.rel.Column("value"), p.rel.Column("count")
	for _, r := range rows {
		out[vcol.Str(r)] = int(ccol.Int64(r))
	}
	return out
}

// CodeCount pairs a value code with an association strength.
type CodeCount struct {
	Code  int32
	Count int
}

// CountsCodes returns the per-value association strengths of an entity
// keyed by value code — the allocation-light variant of Counts used by
// the abduction layer's code-based context discovery.
func (p *DerivedProperty) CountsCodes(entityID int64) []CodeCount {
	rows := p.byEntity.Rows(entityID)
	if len(rows) == 0 {
		return nil
	}
	out := make([]CodeCount, len(rows))
	vcol, ccol := p.rel.Column("value"), p.rel.Column("count")
	for i, r := range rows {
		out[i] = CodeCount{Code: vcol.Code(r), Count: int(ccol.Int64(r))}
	}
	return out
}

// Selectivity returns ψ(φ⟨Attr,v,θ⟩): the fraction of entities associated
// with value v at strength ≥ θ. Entities with no association count as 0.
func (p *DerivedProperty) Selectivity(v string, theta int) float64 {
	if p.numEntities == 0 {
		return 0
	}
	if theta <= 0 {
		return 1
	}
	code, ok := p.LookupCode(v)
	if !ok {
		return 0
	}
	return p.SelectivityOfCode(code, theta)
}

// SelectivityOfCode returns ψ(φ⟨Attr,v,θ⟩) for a value code — the
// string-free fast path of the disambiguation scorer.
func (p *DerivedProperty) SelectivityOfCode(code int32, theta int) float64 {
	if p.numEntities == 0 {
		return 0
	}
	if theta <= 0 {
		return 1
	}
	s := p.sortedOf(code)
	if s == nil {
		return 0
	}
	return float64(s.CountGE(float64(theta))) / float64(p.numEntities)
}

// EntityRowsWithStrength returns the entity rows associated with value v
// at strength ≥ θ, sorted ascending. Results are memoized in the αDB
// selectivity cache; do not mutate the returned slice.
func (p *DerivedProperty) EntityRowsWithStrength(v string, theta int) []int {
	return p.EntityRowSetWithStrength(v, theta).ToSorted()
}

// EntityRowSetWithStrength is the bitset form of EntityRowsWithStrength.
// Memoized; do not mutate the returned set.
func (p *DerivedProperty) EntityRowSetWithStrength(v string, theta int) *index.RowSet {
	return p.EntityRowSetWithStrengthT(v, theta, trace.Span{})
}

// EntityRowSetWithStrengthT is EntityRowSetWithStrength with cache
// events attributed to sp.
func (p *DerivedProperty) EntityRowSetWithStrengthT(v string, theta int, sp trace.Span) *index.RowSet {
	key := SelKey{Prop: p, Value: v, Theta: theta}
	return p.cache.RowSetT(key, sp, func() *index.RowSet {
		s := index.NewRowSet(p.numEntities)
		code, ok := p.LookupCode(v)
		if !ok {
			return s
		}
		for _, vc := range p.pairsOf(code) {
			if vc.count >= theta {
				s.Add(vc.entityRow)
			}
		}
		return s
	})
}

// EntityRowsWithNormStrength returns the entity rows associated with
// value v at normalized strength ≥ θn, where each row's strength is
// divided by its degree (total association count) from the companion
// degree property. Sorted ascending; memoized; do not mutate.
func (p *DerivedProperty) EntityRowsWithNormStrength(v string, thetaN float64, degree *DerivedProperty) []int {
	return p.EntityRowSetWithNormStrength(v, thetaN, degree).ToSorted()
}

// EntityRowSetWithNormStrength is the bitset form of
// EntityRowsWithNormStrength. Memoized; do not mutate the returned set.
func (p *DerivedProperty) EntityRowSetWithNormStrength(v string, thetaN float64, degree *DerivedProperty) *index.RowSet {
	return p.EntityRowSetWithNormStrengthT(v, thetaN, degree, trace.Span{})
}

// EntityRowSetWithNormStrengthT is EntityRowSetWithNormStrength with
// cache events attributed to sp.
func (p *DerivedProperty) EntityRowSetWithNormStrengthT(v string, thetaN float64, degree *DerivedProperty, sp trace.Span) *index.RowSet {
	if degree == nil {
		// No denominator: nothing satisfies a normalized threshold.
		return index.NewRowSet(0)
	}
	key := SelKey{Prop: p, Value: v, Lo: thetaN, Theta: -1}
	return p.cache.RowSetT(key, sp, func() *index.RowSet {
		s := index.NewRowSet(p.numEntities)
		code, ok := p.LookupCode(v)
		if !ok {
			return s
		}
		for _, vc := range p.pairsOf(code) {
			if d := float64(degree.StrengthOf(vc.entityRow, degree.Via)); d > 0 && float64(vc.count)/d >= thetaN {
				s.Add(vc.entityRow)
			}
		}
		return s
	})
}

// StrengthOfCode returns the association strength of the entity at row
// for the value code (0 when unassociated) by binary search over the
// row-sorted posting list.
func (p *DerivedProperty) StrengthOfCode(row int, code int32) int {
	vcs := p.pairsOf(code)
	i := sort.Search(len(vcs), func(i int) bool { return vcs[i].entityRow >= row })
	if i < len(vcs) && vcs[i].entityRow == row {
		return vcs[i].count
	}
	return 0
}

// StrengthOf returns the association strength of the entity at row for
// value v (0 when unassociated).
func (p *DerivedProperty) StrengthOf(row int, v string) int {
	code, ok := p.LookupCode(v)
	if !ok {
		return 0
	}
	return p.StrengthOfCode(row, code)
}

// ValEntry pairs an entity row with its association strength.
type ValEntry struct {
	Row   int
	Count int
}

// ValueEntries returns every (entity row, strength) pair for value v;
// the abduction layer uses it for normalized association strength.
func (p *DerivedProperty) ValueEntries(v string) []ValEntry {
	code, ok := p.LookupCode(v)
	if !ok {
		return nil
	}
	vcs := p.pairsOf(code)
	out := make([]ValEntry, len(vcs))
	for i, vc := range vcs {
		out[i] = ValEntry{Row: vc.entityRow, Count: vc.count}
	}
	return out
}

// MaxStrength returns the largest association strength observed for v.
func (p *DerivedProperty) MaxStrength(v string) int {
	code, ok := p.LookupCode(v)
	if !ok {
		return 0
	}
	s := p.sortedOf(code)
	if s == nil || s.Len() == 0 {
		return 0
	}
	return int(s.Max())
}

// DistinctValues returns the derived value domain, sorted.
func (p *DerivedProperty) DistinctValues() []string {
	var out []string
	for code, vcs := range p.perValueRows {
		if len(vcs) > 0 {
			out = append(out, p.valueDict().Value(int32(code)))
		}
	}
	sort.Strings(out)
	return out
}

// String renders the property for diagnostics.
func (p *DerivedProperty) String() string {
	return fmt.Sprintf("%s.%s [%s]", p.Entity, p.Attr, p.RelName)
}
