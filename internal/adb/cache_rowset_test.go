package adb

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"squid/internal/index"
)

// TestSelCacheRowsBitsetParity drives the []int compatibility view of
// the bitset-backed cache against randomized row sets — including the
// empty, singleton, and all-rows shapes — asserting the decoded result
// equals the computed reference on both the miss and the hit path, and
// that hits never invoke compute.
func TestSelCacheRowsBitsetParity(t *testing.T) {
	c := NewSelCache()
	prop := new(int)
	c.Register(prop)
	rng := rand.New(rand.NewSource(42))

	cases := [][]int{nil, {0}, {63}, {64}, {511}}
	all := make([]int, 700)
	for i := range all {
		all[i] = i
	}
	cases = append(cases, all)
	for i := 0; i < 40; i++ {
		universe := 1 + rng.Intn(600)
		set := map[int]bool{}
		for j := 0; j < rng.Intn(universe); j++ {
			set[rng.Intn(universe)] = true
		}
		rows := make([]int, 0, len(set))
		for r := range set {
			rows = append(rows, r)
		}
		sort.Ints(rows)
		if len(rows) == 0 {
			rows = nil
		}
		cases = append(cases, rows)
	}

	for i, rows := range cases {
		key := SelKey{Prop: prop, Theta: i}
		computes := 0
		miss := c.Rows(key, func() []int { computes++; return rows })
		if computes != 1 || !reflect.DeepEqual(miss, rows) {
			t.Fatalf("case %d: miss path computes=%d rows=%v want %v", i, computes, miss, rows)
		}
		hit := c.Rows(key, func() []int { computes++; return nil })
		if computes != 1 || !reflect.DeepEqual(hit, rows) {
			t.Fatalf("case %d: hit path computes=%d rows=%v want %v", i, computes, hit, rows)
		}
		// The bitset view agrees with the []int view.
		set := c.RowSet(key, func() *index.RowSet { computes++; return nil })
		if computes != 1 || set.Count() != len(rows) || !reflect.DeepEqual(set.ToSorted(), rows) {
			t.Fatalf("case %d: RowSet view diverged: computes=%d count=%d", i, computes, set.Count())
		}
	}
}
