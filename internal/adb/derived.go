package adb

import (
	"sort"

	"squid/internal/index"
	"squid/internal/relation"
)

// buildDerivedProperties discovers every derived property reachable
// from info's entity through fact1 to the associated entity relation
// (fkToVia.RefRelation): the degree property, aggregates over the
// associated entity's direct categorical and FK-dimension attributes
// (depth 1), and aggregates over second-fact dimension attributes such
// as persontogenre (depth 2). It computes the shared adjacency and the
// entity-association basic property inline, but returns the per-property
// materializations as deferred build closures (parallel to the returned
// derived shells) so the second fan-out wave runs them concurrently —
// one fact pair can dominate the offline phase otherwise. Everything
// built here is task-local; finishEntity registers the derived relations
// and indexes after the parallel phase.
func (a *Epoch) buildDerivedProperties(info *EntityInfo, fact1 string, fkToMe, fkToVia relation.ForeignKey) ([]*BasicProperty, []*DerivedProperty, []func() error, error) {
	via := a.DB.Relation(fkToVia.RefRelation)
	if via.PrimaryKey == "" || via.Column(via.PrimaryKey).Type != relation.Int {
		return nil, nil, nil, nil
	}
	// Label the association; self edges (movie→sequelof→movie) qualify
	// the label with the FK column so the two directions stay distinct.
	viaLabel := via.Name
	if fkToVia.RefRelation == info.Relation {
		viaLabel = via.Name + "_" + fkToVia.Column
	}
	fact := a.DB.Relation(fact1)
	entCol := fact.Column(fkToMe.Column)
	viaCol := fact.Column(fkToVia.Column)
	viaIdx := a.Indexes.IntHash(via, fkToVia.RefColumn)

	// adjacency: entity row -> distinct associated via-rows. Multiple
	// fact rows linking the same pair (e.g. an actor with several roles
	// in one movie) count once, matching the DISTINCT semantics of the
	// paper's Q6 per (person, movie) pair contribution.
	adjacency := make([][]int, info.NumRows)
	for fr := 0; fr < fact.NumRows(); fr++ {
		if entCol.IsNull(fr) || viaCol.IsNull(fr) {
			continue
		}
		eRow, ok := info.pkIndex.First(entCol.Int64(fr))
		if !ok {
			continue
		}
		vRow, ok := viaIdx.First(viaCol.Int64(fr))
		if !ok {
			continue
		}
		adjacency[eRow] = append(adjacency[eRow], vRow)
	}
	for i, vs := range adjacency {
		adjacency[i] = dedupInts(vs)
	}

	var basics []*BasicProperty
	var out []*DerivedProperty
	var builds []func() error

	// Entity-association basic property: the set of associated entities
	// themselves, identified by their display value (e.g. for person,
	// the titles of the movies they appear in). This is what lets SQuID
	// discover contexts such as "all examples appeared in Pulp Fiction"
	// (IQ1/IQ2/IQ5/IQ6 of the paper's benchmark). Exempt from the
	// distinct-cardinality guards: its domain is the associated entity
	// relation itself.
	if assoc := a.buildEntityAssocProperty(info, fact1, fkToMe, fkToVia, via, adjacency); assoc != nil {
		basics = append(basics, assoc)
	}

	// Degree property: number of associated entities. Its single
	// pseudo-value is the associated relation's name.
	deg := a.newDerived(info, fact1, fkToMe, fkToVia, AccessPath{Type: Degree}, viaLabel+":count")
	degCounts := func(vRows []int) map[int32]int {
		if len(vRows) == 0 {
			return nil
		}
		return map[int32]int{0: len(vRows)}
	}
	degDecode := func(int32) string { return via.Name }
	out = append(out, deg)
	builds = append(builds, func() error {
		return a.materializeDerived(info, deg, adjacency, degCounts, degDecode)
	})

	// Depth-1: aggregate over the associated entity's direct
	// categorical columns and FK-dimension attributes.
	viaFKs := make(map[string]relation.ForeignKey)
	for _, fk := range via.Foreign {
		viaFKs[fk.Column] = fk
	}
	for _, col := range via.Columns() {
		if col.Name == via.PrimaryKey {
			continue
		}
		if fk, isFK := viaFKs[col.Name]; isFK {
			if a.DB.Kind(fk.RefRelation) != relation.KindProperty {
				continue
			}
			dim := a.DB.Relation(fk.RefRelation)
			valColName := a.dimValueColumn(dim)
			if valColName == "" {
				continue
			}
			dimIdx := a.Indexes.IntHash(dim, fk.RefColumn)
			vc := dim.Column(valColName)
			fkc := via.Column(fk.Column)
			p := a.newDerived(info, fact1, fkToMe, fkToVia, AccessPath{
				Type: FKDim, Column: fk.Column,
				Dim: dim.Name, DimPK: fk.RefColumn, DimValueCol: valColName,
			}, viaLabel+":"+dim.Name)
			counts := func(vRows []int) map[int32]int {
				m := make(map[int32]int)
				for _, vr := range vRows {
					if fkc.IsNull(vr) {
						continue
					}
					if dr, ok := dimIdx.First(fkc.Int64(vr)); ok && !vc.IsNull(dr) {
						m[vc.Code(dr)]++
					}
				}
				return m
			}
			out = append(out, p)
			builds = append(builds, func() error {
				return a.materializeDerived(info, p, adjacency, counts, vc.Dict().Value)
			})
			continue
		}
		if col.Type != relation.String {
			continue // numeric attributes of associated entities are
			// not aggregated (see DESIGN.md: bucketed categorical
			// columns such as decade stand in for them)
		}
		if !a.keepCategorical(col.DistinctCount(), via.NumRows()) {
			continue
		}
		c := col
		p := a.newDerived(info, fact1, fkToMe, fkToVia, AccessPath{Type: Direct, Column: col.Name}, viaLabel+":"+col.Name)
		counts := func(vRows []int) map[int32]int {
			m := make(map[int32]int)
			for _, vr := range vRows {
				if c.IsNull(vr) {
					continue
				}
				m[c.Code(vr)]++
			}
			return m
		}
		out = append(out, p)
		builds = append(builds, func() error {
			return a.materializeDerived(info, p, adjacency, counts, c.Dict().Value)
		})
	}

	// Depth-2: aggregate over a second fact table from the associated
	// entity into a dimension (persontogenre through castinfo and
	// movietogenre, Fig 5).
	if a.cfg.MaxFactDepth >= 2 {
		for _, fact2Name := range a.DB.RelationNames() {
			fact2 := a.DB.Relation(fact2Name)
			if fact2Name == fact1 || a.DB.Kind(fact2Name) != relation.KindUnknown || len(fact2.Foreign) < 2 {
				continue
			}
			for _, fkToVia2 := range fact2.Foreign {
				if fkToVia2.RefRelation != via.Name {
					continue
				}
				for _, fkToDim := range fact2.Foreign {
					if fkToDim == fkToVia2 || a.DB.Kind(fkToDim.RefRelation) != relation.KindProperty {
						continue
					}
					dim := a.DB.Relation(fkToDim.RefRelation)
					valColName := a.dimValueColumn(dim)
					if valColName == "" {
						continue
					}
					vc := dim.Column(valColName)
					p := a.newDerived(info, fact1, fkToMe, fkToVia, AccessPath{
						Type: FactDim,
						Fact: fact2Name, FactEntityCol: fkToVia2.Column, FactDimCol: fkToDim.Column,
						Dim: dim.Name, DimPK: fkToDim.RefColumn, DimValueCol: valColName,
					}, viaLabel+":"+dim.Name)
					out = append(out, p)
					builds = append(builds, func() error {
						// via row -> dim value codes: the fact2 scan is
						// the expensive part of a depth-2 walk, so it
						// lives in the deferred build and runs on the
						// second fan-out wave.
						dimIdx := a.Indexes.IntHash(dim, fkToDim.RefColumn)
						viaByPK := a.Indexes.IntHash(via, via.PrimaryKey)
						viaVals := make([][]int32, via.NumRows())
						v2 := fact2.Column(fkToVia2.Column)
						d2 := fact2.Column(fkToDim.Column)
						for fr := 0; fr < fact2.NumRows(); fr++ {
							if v2.IsNull(fr) || d2.IsNull(fr) {
								continue
							}
							vRow, ok := viaByPK.First(v2.Int64(fr))
							if !ok {
								continue
							}
							dr, ok := dimIdx.First(d2.Int64(fr))
							if !ok || vc.IsNull(dr) {
								continue
							}
							viaVals[vRow] = append(viaVals[vRow], vc.Code(dr))
						}
						counts := func(vRows []int) map[int32]int {
							m := make(map[int32]int)
							for _, vr := range vRows {
								for _, code := range viaVals[vr] {
									m[code]++
								}
							}
							return m
						}
						return a.materializeDerived(info, p, adjacency, counts, vc.Dict().Value)
					})
				}
			}
		}
	}
	return basics, out, builds, nil
}

// entityDisplayColumn resolves the display column of an entity relation
// for entity-association properties.
func (a *Epoch) entityDisplayColumn(ent *relation.Relation) string {
	if c, ok := a.cfg.DisplayColumn[ent.Name]; ok {
		return c
	}
	for _, col := range ent.Columns() {
		if col.Type == relation.String {
			return col.Name
		}
	}
	return ""
}

// buildEntityAssocProperty creates the multi-valued basic property
// holding the display values of the entities associated through fact1.
func (a *Epoch) buildEntityAssocProperty(info *EntityInfo, fact1 string, fkToMe, fkToVia relation.ForeignKey, via *relation.Relation, adjacency [][]int) *BasicProperty {
	valCol := a.entityDisplayColumn(via)
	if valCol == "" {
		return nil
	}
	vc := via.Column(valCol)
	p := &BasicProperty{
		Entity:      info.Relation,
		Attr:        via.Name,
		Kind:        Categorical,
		MultiValued: true,
		Access: AccessPath{
			Type: FactDim,
			Fact: fact1, FactEntityCol: fkToMe.Column, FactDimCol: fkToVia.Column,
			Dim: via.Name, DimPK: via.PrimaryKey, DimValueCol: valCol,
		},
		numEntities: info.NumRows,
		dict:        vc.Dict(),
	}
	p.valsByRow = make([][]int32, info.NumRows)
	for eRow, viaRows := range adjacency {
		for _, vr := range viaRows {
			if !vc.IsNull(vr) {
				p.valsByRow[eRow] = append(p.valsByRow[eRow], vc.Code(vr))
			}
		}
	}
	// Bypass the cardinality guards: build stats directly.
	p.buildCatStats()
	if p.numValues == 0 {
		return nil
	}
	p.cache = a.selCache
	return p
}

// newDerived initializes a DerivedProperty shell. The relation name is
// tentative — finishEntity resolves collisions when it registers the
// materialized relation into the derived database.
func (a *Epoch) newDerived(info *EntityInfo, fact1 string, fkToMe, fkToVia relation.ForeignKey, target AccessPath, attr string) *DerivedProperty {
	return &DerivedProperty{
		Entity:         info.Relation,
		Via:            fkToVia.RefRelation,
		ViaPK:          a.DB.Relation(fkToVia.RefRelation).PrimaryKey,
		Attr:           attr,
		Fact1:          fact1,
		Fact1EntityCol: fkToMe.Column,
		Fact1ViaCol:    fkToVia.Column,
		Target:         target,
		RelName:        info.Relation + "to" + sanitizeRelName(attr),
		numEntities:    info.NumRows,
	}
}

func sanitizeRelName(attr string) string {
	out := make([]rune, 0, len(attr))
	for _, r := range attr {
		if r == ':' || r == '.' || r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

// materializeDerived computes the (entity_id, value, count) rows of a
// derived property using the adjacency and a per-entity count function
// (keyed by source-dictionary codes, decoded only when a row is
// emitted), stores the derived relation, and builds its statistics (the
// in-Go equivalent of the paper's Q6 CREATE TABLE ... GROUP BY). The
// relation and its entity index stay task-local until finishEntity
// registers them.
func (a *Epoch) materializeDerived(info *EntityInfo, p *DerivedProperty, adjacency [][]int, counts func(viaRows []int) map[int32]int, decode func(int32) string) error {
	rel := relation.New(p.RelName,
		relation.Col("entity_id", relation.Int),
		relation.Col("value", relation.String),
		relation.Col("count", relation.Int),
	).AddForeignKey("entity_id", p.Entity, info.PK)
	vcol := rel.Column("value")

	for eRow, viaRows := range adjacency {
		if len(viaRows) == 0 {
			continue
		}
		m := counts(viaRows)
		if len(m) == 0 {
			continue
		}
		id := info.rowIDs[eRow]
		for _, c := range sortedCodesByValue(m, decode) {
			cnt := m[c]
			rel.MustAppend(relation.IntVal(id), relation.StringVal(decode(c)), relation.IntVal(int64(cnt)))
			dcode := vcol.Code(rel.NumRows() - 1)
			p.growTo(dcode)
			p.perValueRows[dcode] = append(p.perValueRows[dcode], valCount{entityRow: eRow, count: cnt})
		}
	}
	p.rel = rel
	p.cache = a.selCache
	p.byEntity = index.BuildIntHash(rel, "entity_id")
	for code, vcs := range p.perValueRows {
		if len(vcs) == 0 {
			continue
		}
		vals := make([]float64, len(vcs))
		for i, vc := range vcs {
			vals[i] = float64(vc.count)
		}
		p.perValue[code] = index.BuildSortedFromValues(vals)
	}
	return nil
}

// sortedCodesByValue orders a code→count map by the decoded value
// string, preserving the deterministic value-sorted row order of the
// materialized derived relations.
func sortedCodesByValue(m map[int32]int, decode func(int32) string) []int32 {
	out := make([]int32, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return decode(out[i]) < decode(out[j]) })
	return out
}

func dedupInts(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	seen := make(map[int]struct{}, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	return out
}
