package adb

import (
	"runtime"
	"testing"
	"time"

	"squid/internal/relation"
)

// TestEpochGCTelemetry checks the retired-epoch accounting: a publish
// charges the chain for the epoch it replaces, and the runtime's
// collection of that epoch credits it back.
func TestEpochGCTelemetry(t *testing.T) {
	a := buildFixture(t)
	if es := a.EpochStats(); es.Retired != 0 || es.RetainedBytes != 0 {
		t.Fatalf("fresh chain: retired=%d retained=%d", es.Retired, es.RetainedBytes)
	}

	// Pin the current epoch, then retire it with an insert: while the
	// pin lives, the gauges must report it as uncollected.
	pinned := a.Snapshot()
	err := a.InsertBatch([]InsertOp{
		{Rel: "person", Vals: []relation.Value{
			relation.IntVal(8), relation.StringVal("Gauge Probe"),
			relation.StringVal("Male"), relation.IntVal(40), relation.IntVal(1)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	es := a.EpochStats()
	if es.Retired != 1 {
		t.Fatalf("retired = %d want 1", es.Retired)
	}
	if es.RetainedBytes <= 0 {
		t.Fatalf("retained bytes = %d want > 0", es.RetainedBytes)
	}
	// ComputeStats carries the same gauges.
	if st := a.ComputeStats(); st.EpochRetired != 1 || st.EpochRetainedBytes != es.RetainedBytes {
		t.Errorf("ComputeStats gauges: retired=%d retained=%d", st.EpochRetired, st.EpochRetainedBytes)
	}
	runtime.KeepAlive(pinned)

	// Drop the pin: the finalizer must eventually credit the epoch
	// back. Finalizers need two GC cycles (one to queue, one to run),
	// and the runtime gives no stronger guarantee, so poll briefly.
	pinned = nil
	_ = pinned
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if es := a.EpochStats(); es.Retired == 0 && es.RetainedBytes == 0 {
			return
		}
		if time.Now().After(deadline) {
			es := a.EpochStats()
			t.Fatalf("retired epoch never collected: retired=%d retained=%d", es.Retired, es.RetainedBytes)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
