package wal

import (
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"squid/internal/iofault"
	"squid/internal/relation"
)

// testRecords is a workload with every value kind and enough string
// reuse to exercise the per-segment dictionary.
func testRecords() []Record {
	return []Record{
		{Seq: 1, Rows: []Row{
			{Rel: "academics", Vals: []relation.Value{relation.IntVal(100), relation.StringVal("Ada Lovelace")}},
		}},
		{Seq: 2, Rows: []Row{
			{Rel: "research", Vals: []relation.Value{relation.IntVal(100), relation.StringVal("computing")}},
			{Rel: "research", Vals: []relation.Value{relation.IntVal(100), relation.StringVal("mathematics")}},
		}},
		{Seq: 3, Rows: []Row{
			{Rel: "scores", Vals: []relation.Value{relation.FloatVal(3.25), relation.Null, relation.StringVal("computing")}},
		}},
	}
}

// buildLog writes recs into a fresh log at path on fs and closes it,
// returning the segment bytes.
func buildLog(t *testing.T, fs *iofault.MemFS, path string, recs []Record) []byte {
	t.Helper()
	l, res, err := Open(path, Options{Policy: PolicyNever, FS: fs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(res.Records) != 0 {
		t.Fatalf("fresh log replayed %d records", len(res.Records))
	}
	for _, rec := range recs {
		if err := l.Append(rec.Seq, rec.Rows); err != nil {
			t.Fatalf("append seq %d: %v", rec.Seq, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, ok := fs.Bytes(path)
	if !ok {
		t.Fatal("segment file missing")
	}
	return data
}

// frameOffsets parses the segment's frame boundaries: the byte offset
// where each record's frame starts, plus the end offset.
func frameOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	offs := []int{headerLen}
	off := headerLen
	for off < len(data) {
		plen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += frameHeaderLen + plen
		offs = append(offs, off)
	}
	if off != len(data) {
		t.Fatalf("frame walk ends at %d, file is %d bytes", off, len(data))
	}
	return offs
}

func reopen(t *testing.T, fs *iofault.MemFS, path string) (*Log, *OpenResult) {
	t.Helper()
	l, res, err := Open(path, Options{Policy: PolicyNever, FS: fs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return l, res
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := iofault.NewMemFS()
	want := testRecords()
	buildLog(t, fs, "wal", want)

	l, res := reopen(t, fs, "wal")
	defer l.Close()
	if res.TruncatedBytes != 0 {
		t.Errorf("clean log truncated %d bytes", res.TruncatedBytes)
	}
	if !reflect.DeepEqual(res.Records, want) {
		t.Errorf("replay mismatch:\ngot  %+v\nwant %+v", res.Records, want)
	}
	if l.LastSeq() != 3 {
		t.Errorf("LastSeq = %d want 3", l.LastSeq())
	}
	m := l.Metrics()
	if m.ReplayedRecs != 3 || m.Failed {
		t.Errorf("metrics after replay: %+v", m)
	}
}

// TestFramingCorruption drives the torn-tail rules: every shape an
// interrupted append can leave behind truncates at the first bad frame
// and keeps everything before it.
func TestFramingCorruption(t *testing.T) {
	base := func(t *testing.T) ([]byte, []int) {
		fs := iofault.NewMemFS()
		data := buildLog(t, fs, "wal", testRecords())
		return data, frameOffsets(t, data)
	}

	cases := []struct {
		name string
		// mutate returns the corrupted segment bytes.
		mutate   func(data []byte, offs []int) []byte
		wantRecs int
		wantTorn bool
	}{
		{
			name: "crc flip in last payload",
			mutate: func(data []byte, offs []int) []byte {
				out := append([]byte(nil), data...)
				out[offs[2]+frameHeaderLen] ^= 0xff
				return out
			},
			wantRecs: 2, wantTorn: true,
		},
		{
			name: "truncated frame header",
			mutate: func(data []byte, offs []int) []byte {
				return data[:offs[2]+frameHeaderLen-3]
			},
			wantRecs: 2, wantTorn: true,
		},
		{
			name: "torn payload",
			mutate: func(data []byte, offs []int) []byte {
				return data[:offs[2]+frameHeaderLen+2]
			},
			wantRecs: 2, wantTorn: true,
		},
		{
			name: "zero-length record",
			mutate: func(data []byte, offs []int) []byte {
				return append(append([]byte(nil), data...), make([]byte, frameHeaderLen)...)
			},
			wantRecs: 3, wantTorn: true,
		},
		{
			name: "implausible length prefix",
			mutate: func(data []byte, offs []int) []byte {
				tail := make([]byte, frameHeaderLen)
				binary.LittleEndian.PutUint32(tail[:4], maxPayload+1)
				return append(append([]byte(nil), data...), tail...)
			},
			wantRecs: 3, wantTorn: true,
		},
		{
			name: "duplicate sequence record",
			mutate: func(data []byte, offs []int) []byte {
				// Re-append a copy of the last frame: a stale tail
				// resurfacing with an already-used sequence number.
				return append(append([]byte(nil), data...), data[offs[2]:offs[3]]...)
			},
			wantRecs: 3, wantTorn: true,
		},
		{
			name:     "empty file",
			mutate:   func(data []byte, offs []int) []byte { return nil },
			wantRecs: 0, wantTorn: false,
		},
		{
			name:     "torn header",
			mutate:   func(data []byte, offs []int) []byte { return data[:5] },
			wantRecs: 0, wantTorn: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, offs := base(t)
			fs := iofault.NewMemFS()
			fs.SetFile("wal", tc.mutate(data, offs))
			l, res := reopen(t, fs, "wal")
			defer l.Close()
			if len(res.Records) != tc.wantRecs {
				t.Errorf("replayed %d records, want %d", len(res.Records), tc.wantRecs)
			}
			if (res.TruncatedBytes > 0) != tc.wantTorn {
				t.Errorf("truncated %d bytes, wantTorn=%v", res.TruncatedBytes, tc.wantTorn)
			}
			// The log must stay appendable after truncation: recovery
			// resets the tail, and new records continue the chain.
			next := uint64(tc.wantRecs) + 1
			if err := l.Append(next, []Row{{Rel: "r", Vals: []relation.Value{relation.IntVal(1)}}}); err != nil {
				t.Errorf("append after recovery: %v", err)
			}
		})
	}
}

func TestHardErrors(t *testing.T) {
	data := buildLog(t, iofault.NewMemFS(), "scratch", testRecords())

	t.Run("bad magic", func(t *testing.T) {
		fs := iofault.NewMemFS()
		bad := append([]byte(nil), data...)
		copy(bad[:4], "NOPE")
		fs.SetFile("wal", bad)
		if _, _, err := Open("wal", Options{FS: fs}); err == nil || !strings.Contains(err.Error(), "bad magic") {
			t.Errorf("err = %v, want bad magic", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		fs := iofault.NewMemFS()
		bad := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(bad[4:8], Version+1)
		fs.SetFile("wal", bad)
		if _, _, err := Open("wal", Options{FS: fs}); err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("err = %v, want version error", err)
		}
	})
	t.Run("sequence gap is lost data", func(t *testing.T) {
		// Splice the middle record out: records 1 and 3 survive but 2
		// vanished from the middle — acknowledged data is missing, and
		// recovery must refuse rather than silently continue. The
		// records here share one dictionary entry introduced by record
		// 1, so the spliced record still decodes and the gap is what
		// recovery sees (a record whose dictionary also vanished fails
		// to decode and is truncated as a torn tail instead — the
		// FramingCorruption cases).
		intRows := func(v int64) []Row {
			return []Row{{Rel: "r", Vals: []relation.Value{relation.IntVal(v)}}}
		}
		plain := []Record{
			{Seq: 1, Rows: intRows(10)},
			{Seq: 2, Rows: intRows(20)},
			{Seq: 3, Rows: intRows(30)},
		}
		pdata := buildLog(t, iofault.NewMemFS(), "scratch", plain)
		poffs := frameOffsets(t, pdata)
		fs := iofault.NewMemFS()
		bad := append([]byte(nil), pdata[:poffs[1]]...)
		bad = append(bad, pdata[poffs[2]:]...)
		fs.SetFile("wal", bad)
		if _, _, err := Open("wal", Options{FS: fs}); err == nil || !strings.Contains(err.Error(), "missing") {
			t.Errorf("err = %v, want missing-records error", err)
		}
	})
}

func TestAppendValidation(t *testing.T) {
	fs := iofault.NewMemFS()
	l, _, err := Open("wal", Options{Policy: PolicyNever, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	row := []Row{{Rel: "r", Vals: []relation.Value{relation.IntVal(1)}}}
	if err := l.Append(2, row); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := l.Append(2, row); err == nil {
		t.Error("duplicate seq accepted")
	}
	// The failed append poisons the log: durability can no longer be
	// promised, so everything after refuses.
	if err := l.Append(3, row); err == nil {
		t.Error("append after poison accepted")
	}
	if !l.Metrics().Failed {
		t.Error("Metrics.Failed = false after poison")
	}
}

func TestEmptyRecordRejected(t *testing.T) {
	l, _, err := Open("wal", Options{Policy: PolicyNever, FS: iofault.NewMemFS()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(1, nil); err == nil {
		t.Error("empty record accepted")
	}
}

func TestDictionarySurvivesReboot(t *testing.T) {
	// Strings interned before a reboot must keep their ids for appends
	// after it, or post-reboot records would decode to the wrong values.
	fs := iofault.NewMemFS()
	buildLog(t, fs, "wal", testRecords()[:2])

	l, _ := reopen(t, fs, "wal")
	more := Record{Seq: 3, Rows: []Row{
		{Rel: "research", Vals: []relation.Value{relation.IntVal(101), relation.StringVal("computing")}}, // reused strings
		{Rel: "labs", Vals: []relation.Value{relation.StringVal("CSAIL")}},                               // new strings
	}}
	if err := l.Append(more.Seq, more.Rows); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, res := reopen(t, fs, "wal")
	want := append(testRecords()[:2], more)
	if !reflect.DeepEqual(res.Records, want) {
		t.Errorf("replay mismatch:\ngot  %+v\nwant %+v", res.Records, want)
	}
}

func TestCheckpointRotation(t *testing.T) {
	fs := iofault.NewMemFS()
	l, _, err := Open("wal", Options{Policy: PolicyNever, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, rec := range recs[:2] {
		if err := l.Append(rec.Seq, rec.Rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.BeginCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := fs.Exists("wal.prev"); !ok {
		t.Fatal("no .prev after BeginCheckpoint")
	}
	// Appends continue into the fresh segment while the checkpoint is
	// in flight.
	if err := l.Append(recs[2].Seq, recs[2].Rows); err != nil {
		t.Fatal(err)
	}

	// Crash before EndCheckpoint: both segments replay, in order.
	crash := fs.Clone()
	_, res := reopen(t, crash, "wal")
	if !reflect.DeepEqual(res.Records, recs) {
		t.Errorf("mid-checkpoint replay mismatch:\ngot  %+v\nwant %+v", res.Records, recs)
	}

	// A second BeginCheckpoint with .prev still present must not rotate
	// again (that would drop the first checkpoint's records).
	if err := l.BeginCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if got := l.Metrics().Rotations; got != 1 {
		t.Errorf("rotations = %d want 1", got)
	}

	if err := l.EndCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := fs.Exists("wal.prev"); ok {
		t.Error(".prev survives EndCheckpoint")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// After the checkpoint completes, only the live segment's records
	// remain (the snapshot covers the rest).
	_, res = reopen(t, fs, "wal")
	if !reflect.DeepEqual(res.Records, recs[2:]) {
		t.Errorf("post-checkpoint replay:\ngot  %+v\nwant %+v", res.Records, recs[2:])
	}
}

func TestPolicyAlwaysSurvivesPowerLoss(t *testing.T) {
	fs := iofault.NewMemFS()
	l, _, err := Open("wal", Options{Policy: PolicyAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecords()[0]
	if err := l.Append(rec.Seq, rec.Rows); err != nil {
		t.Fatal(err)
	}
	if err := l.Barrier(); err != nil {
		t.Fatal(err)
	}
	// Power loss without Close: the barrier already made it durable.
	_, res := reopen(t, fs.CloneDurable(), "wal")
	if len(res.Records) != 1 || !reflect.DeepEqual(res.Records[0], rec) {
		t.Errorf("acknowledged record lost to power loss: %+v", res.Records)
	}
}

func TestPolicyNeverLosesUnsyncedOnPowerLoss(t *testing.T) {
	fs := iofault.NewMemFS()
	l, _, err := Open("wal", Options{Policy: PolicyNever, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecords()[0]
	if err := l.Append(rec.Seq, rec.Rows); err != nil {
		t.Fatal(err)
	}
	if err := l.Barrier(); err != nil { // no fsync under never
		t.Fatal(err)
	}
	if _, res := reopen(t, fs.CloneDurable(), "wal"); len(res.Records) != 0 {
		t.Errorf("power loss kept %d unsynced records under PolicyNever", len(res.Records))
	}
	// Process death keeps the page cache: the record survives.
	if _, res := reopen(t, fs.Clone(), "wal"); len(res.Records) != 1 {
		t.Errorf("process crash lost %d records under PolicyNever", 1-len(res.Records))
	}
}

func TestPolicyIntervalBackgroundFlush(t *testing.T) {
	fs := iofault.NewMemFS()
	l, _, err := Open("wal", Options{Policy: PolicyInterval, Interval: time.Millisecond, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rec := testRecords()[0]
	if err := l.Append(rec.Seq, rec.Rows); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, res := reopen(t, fs.CloneDurable(), "wal"); len(res.Records) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background flush never made the record durable")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSyncFailurePoisonsLog(t *testing.T) {
	fs := iofault.NewMemFS()
	l, _, err := Open("wal", Options{Policy: PolicyAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecords()[0]
	if err := l.Append(rec.Seq, rec.Rows); err != nil {
		t.Fatal(err)
	}
	fs.FailSyncs(1)
	if err := l.Barrier(); !errors.Is(err, iofault.ErrInjectedSync) {
		t.Fatalf("Barrier = %v, want injected sync failure", err)
	}
	// Sticky: the same failure surfaces on every later write, even
	// though the injected fault has passed.
	if err := l.Append(rec.Seq+1, rec.Rows); err == nil {
		t.Error("append accepted after fsync failure")
	}
	m := l.Metrics()
	if !m.Failed || m.SyncFailures != 1 {
		t.Errorf("metrics after fsync failure: %+v", m)
	}
}

func TestShortWriteTearsTailOnly(t *testing.T) {
	fs := iofault.NewMemFS()
	l, _, err := Open("wal", Options{Policy: PolicyNever, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	if err := l.Append(recs[0].Seq, recs[0].Rows); err != nil {
		t.Fatal(err)
	}
	fs.ShortWriteOnce()
	if err := l.Append(recs[1].Seq, recs[1].Rows); !errors.Is(err, iofault.ErrInjectedShortWrite) {
		t.Fatalf("append = %v, want short write", err)
	}
	// The torn frame stays on disk; recovery truncates exactly it.
	_, res := reopen(t, fs.Clone(), "wal")
	if len(res.Records) != 1 || res.TruncatedBytes == 0 {
		t.Errorf("short-write recovery: %d records, %d torn bytes", len(res.Records), res.TruncatedBytes)
	}
}

// TestCrashAtEveryWriteBoundary sweeps the power-loss point across the
// whole append stream: whatever prefix of writes lands, recovery must
// come back with an unbroken record chain and never invent or reorder
// data.
func TestCrashAtEveryWriteBoundary(t *testing.T) {
	recs := testRecords()
	run := func(fs *iofault.MemFS) {
		l, _, err := Open("wal", Options{Policy: PolicyAlways, FS: fs})
		if err != nil {
			return
		}
		defer l.Close()
		for _, rec := range recs {
			if err := l.Append(rec.Seq, rec.Rows); err != nil {
				return
			}
			if err := l.Barrier(); err != nil {
				return
			}
		}
	}

	probe := iofault.NewMemFS()
	run(probe)
	total := probe.TotalWritten()
	if total == 0 {
		t.Fatal("no bytes written by reference run")
	}

	for n := int64(0); n <= total; n++ {
		fs := iofault.NewMemFS()
		fs.CrashAfterBytes(n)
		acked := 0
		func() {
			l, _, err := Open("wal", Options{Policy: PolicyAlways, FS: fs})
			if err != nil {
				return
			}
			defer l.Close()
			for _, rec := range recs {
				if err := l.Append(rec.Seq, rec.Rows); err != nil {
					return
				}
				if err := l.Barrier(); err != nil {
					return
				}
				acked++
			}
		}()
		_, res, err := Open("wal", Options{FS: fs.CloneDurable()})
		if err != nil {
			t.Fatalf("crash after %d bytes: recovery failed: %v", n, err)
		}
		if len(res.Records) < acked {
			t.Fatalf("crash after %d bytes: %d acknowledged records, only %d recovered",
				n, acked, len(res.Records))
		}
		for i, rec := range res.Records {
			if !reflect.DeepEqual(rec, recs[i]) {
				t.Fatalf("crash after %d bytes: record %d mismatch: %+v", n, i, rec)
			}
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, good := range []string{"always", "interval", "never"} {
		if _, err := ParsePolicy(good); err != nil {
			t.Errorf("ParsePolicy(%q) = %v", good, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}
