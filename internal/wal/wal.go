// Package wal implements the crash-safe epoch-delta write-ahead log of
// the αDB: every copy-on-write epoch publish appends one CRC32-framed,
// length-prefixed record carrying exactly the rows the publish applied
// (entity and fact rows, string values coded through a per-segment
// dictionary). Boot replays snapshot + log tail through the normal
// insert path; the snapshot's epoch sequence number anchors the replay,
// so records the snapshot already covers are skipped and the recovered
// epoch chain continues at the exact sequence the log ends on.
//
// # Framing and torn tails
//
// A segment starts with an 8-byte header (magic "SQWL" + version) and
// holds records framed as
//
//	u32 payloadLen | u32 CRC32-IEEE(payload) | payload
//
// Replay truncates the segment at the first bad frame — short frame,
// zero or implausible length, CRC mismatch, undecodable payload, or a
// duplicate/regressing sequence number — because every such shape is
// what an interrupted append leaves behind. A sequence number that
// jumps FORWARD, or any valid record appearing after a torn region, is
// different: records are appended strictly in publish order, so a gap
// means an acknowledged record vanished from the middle of the log, and
// recovery fails loudly instead of silently dropping writes.
//
// # Durability policies
//
// PolicyAlways fsyncs before Barrier returns (group commit: concurrent
// writers coalesce onto one fsync), so an acknowledged write survives
// power loss. PolicyInterval fsyncs on a timer: an acknowledged write
// survives process death (the OS page cache holds it) but the last
// interval may be lost to power loss. PolicyNever leaves flushing
// entirely to the OS. All policies fsync at rotation and Close, and any
// append or fsync failure poisons the log (sticky error): later writes
// are refused rather than acknowledged without a trustworthy log.
//
// # Checkpointing
//
// A snapshot compacts the log in a two-file handshake: BeginCheckpoint
// fsyncs and rotates the live segment to <path>.prev and starts a fresh
// segment (skipped when a .prev already exists — a previous checkpoint
// died mid-way); the caller then writes the snapshot; EndCheckpoint
// deletes .prev. A crash anywhere in the window is safe: replay reads
// .prev before the live segment, and the snapshot's sequence anchor
// filters out whatever the snapshot already covers.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"squid/internal/iofault"
	"squid/internal/relation"
)

// Magic identifies a SQuID WAL segment.
const Magic = "SQWL"

// Version is the segment format version; bump on any layout change.
const Version = 1

// headerLen is the fixed segment header size: 4 magic + 4 LE version.
const headerLen = 8

// frameHeaderLen is the fixed per-record frame prefix: 4 LE payload
// length + 4 LE CRC32-IEEE of the payload.
const frameHeaderLen = 8

// maxPayload caps a record's payload length on read, bounding
// allocations when a corrupt length prefix is parsed (matches the
// snapshot codec's cap).
const maxPayload = 1 << 28

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy string

const (
	// PolicyAlways fsyncs before every Barrier returns: acknowledged
	// writes survive power loss.
	PolicyAlways SyncPolicy = "always"
	// PolicyInterval fsyncs on a timer: acknowledged writes survive
	// process death; up to one interval may be lost to power loss.
	PolicyInterval SyncPolicy = "interval"
	// PolicyNever never fsyncs on the write path (rotation and Close
	// still do): acknowledged writes survive process death only.
	PolicyNever SyncPolicy = "never"
)

// ParsePolicy converts a flag string to a SyncPolicy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case PolicyAlways, PolicyInterval, PolicyNever:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
}

// Options configure Open.
type Options struct {
	// Policy is the fsync policy (default PolicyAlways).
	Policy SyncPolicy
	// Interval is the PolicyInterval flush period (default 100ms).
	Interval time.Duration
	// FS is the filesystem seam (default the real filesystem); tests
	// inject iofault.MemFS here.
	FS iofault.FS
}

// Row is one applied row of a record: the target relation and the
// exact values the publish appended.
type Row struct {
	Rel  string
	Vals []relation.Value
}

// Record is one epoch publish: its sequence number and the rows it
// applied, in apply order.
type Record struct {
	Seq  uint64
	Rows []Row
}

// OpenResult reports what Open found in the log.
type OpenResult struct {
	// Records are the valid records of .prev + live segment, in order.
	Records []Record
	// TruncatedBytes counts torn-tail bytes dropped from the live
	// segment (0 on a clean boot).
	TruncatedBytes int64
}

// Metrics is a point-in-time snapshot of the log's counters.
type Metrics struct {
	Records        uint64 // records appended since Open
	Bytes          uint64 // bytes appended since Open
	Syncs          uint64 // fsyncs issued (group commit coalesces)
	SyncFailures   uint64 // fsyncs that failed (each poisons the log)
	Rotations      uint64 // checkpoint rotations completed
	ReplayedRecs   uint64 // valid records found at Open
	TruncatedBytes uint64 // torn-tail bytes dropped at Open
	LastSeq        uint64 // sequence of the newest record (appended or replayed)
	Failed         bool   // sticky failure: the log refuses further writes
}

// Log is an open write-ahead log. Append is serialized by the caller
// (the αDB publish hook runs under the publish lock); Barrier,
// checkpointing, and Metrics are safe for concurrent use alongside it.
type Log struct {
	fs       iofault.FS
	path     string
	policy   SyncPolicy
	interval time.Duration

	// mu guards the file handle, the sticky error, the encoder state,
	// and the append counters. syncMu serializes fsync (the group-commit
	// leader) and rotation; lock order is syncMu before mu.
	mu  sync.Mutex
	f   iofault.File
	err error

	dict     map[string]uint64 // per-segment string → id
	scratch  []byte
	appended uint64 // records written to the segment chain
	lastSeq  uint64

	syncMu   sync.Mutex
	syncedTo uint64 // records covered by the last successful fsync (under syncMu)

	records      atomic.Uint64
	bytes        atomic.Uint64
	syncs        atomic.Uint64
	syncFailures atomic.Uint64
	rotations    atomic.Uint64
	replayed     uint64
	truncated    uint64

	stopFlush chan struct{}
	flushWG   sync.WaitGroup
	closeOnce sync.Once
}

// prevPath is the rotated segment awaiting checkpoint completion.
func prevPath(path string) string { return path + ".prev" }

// Open opens (creating if absent) the log at path, replays the rotated
// and live segments, truncates the live segment's torn tail, and
// returns the log ready for appends plus everything it recovered. The
// caller replays result.Records through the normal insert path before
// appending anything new.
func Open(path string, opts Options) (*Log, *OpenResult, error) {
	fs := opts.FS
	if fs == nil {
		fs = iofault.OSFS{}
	}
	if opts.Policy == "" {
		opts.Policy = PolicyAlways
	}
	if _, err := ParsePolicy(string(opts.Policy)); err != nil {
		return nil, nil, err
	}
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}

	res := &OpenResult{}
	var lastSeq uint64
	seen := false

	// The rotated segment first: its records precede the live segment's.
	// BeginCheckpoint fsyncs before rotating, so a rotated segment is
	// fully durable; a torn tail here is corruption, truncated like any
	// other, and the cross-segment sequence walk below fails loudly if
	// live-segment records prove the torn region held acknowledged data.
	if ok, err := fs.Exists(prevPath(path)); err != nil {
		return nil, nil, fmt.Errorf("wal: checking %s: %w", prevPath(path), err)
	} else if ok {
		recs, _, torn, err := readSegment(fs, prevPath(path))
		if err != nil {
			return nil, nil, err
		}
		if seen, lastSeq, err = walkSeqs(recs, seen, lastSeq, prevPath(path)); err != nil {
			return nil, nil, err
		}
		res.Records = append(res.Records, recs...)
		res.TruncatedBytes += torn
	}

	recs, validLen, torn, err := readSegment(fs, path)
	if err != nil {
		return nil, nil, err
	}
	if seen, lastSeq, err = walkSeqs(recs, seen, lastSeq, path); err != nil {
		return nil, nil, err
	}
	res.Records = append(res.Records, recs...)
	res.TruncatedBytes += torn

	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	fail := func(e error) (*Log, *OpenResult, error) {
		f.Close()
		return nil, nil, e
	}
	if validLen < headerLen {
		// Empty or header-torn segment: start it fresh.
		if err := f.Truncate(0); err != nil {
			return fail(fmt.Errorf("wal: resetting %s: %w", path, err))
		}
		var hdr [headerLen]byte
		copy(hdr[:4], Magic)
		binary.LittleEndian.PutUint32(hdr[4:], Version)
		if _, err := f.Write(hdr[:]); err != nil {
			return fail(fmt.Errorf("wal: writing %s header: %w", path, err))
		}
	} else {
		if err := f.Truncate(validLen); err != nil {
			return fail(fmt.Errorf("wal: truncating %s torn tail: %w", path, err))
		}
		if _, err := f.Seek(validLen, io.SeekStart); err != nil {
			return fail(fmt.Errorf("wal: seeking %s: %w", path, err))
		}
	}
	// Stabilize the replayed base (and the truncation) before anything
	// new is appended after it.
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("wal: syncing %s after recovery: %w", path, err))
	}

	l := &Log{
		fs:       fs,
		path:     path,
		policy:   opts.Policy,
		interval: opts.Interval,
		f:        f,
		lastSeq:  lastSeq,
		replayed: uint64(len(res.Records)),
		truncated: func() uint64 {
			if res.TruncatedBytes < 0 {
				return 0
			}
			return uint64(res.TruncatedBytes)
		}(),
		stopFlush: make(chan struct{}),
	}
	// The live segment keeps its dictionary across reboots: re-read its
	// surviving records to rebuild the writer-side string table, so new
	// appends keep coding against ids the segment already defines.
	l.dict = make(map[string]uint64)
	rebuildDict(l.dict, recs)
	if opts.Policy == PolicyInterval {
		l.flushWG.Add(1)
		go l.flushLoop()
	}
	return l, res, nil
}

// rebuildDict replays the segment's dictionary assignments: ids were
// handed out in first-use order, which re-walking rows reproduces.
func rebuildDict(dict map[string]uint64, recs []Record) {
	add := func(s string) {
		if _, ok := dict[s]; !ok {
			dict[s] = uint64(len(dict))
		}
	}
	for _, rec := range recs {
		for _, row := range rec.Rows {
			add(row.Rel)
			for _, v := range row.Vals {
				if v.IsString() {
					add(v.Str())
				}
			}
		}
	}
}

// walkSeqs enforces the cross-segment sequence discipline: the first
// record anchors, every later one must follow by exactly one. A jump
// forward is lost acknowledged data (hard error); duplicates and
// regressions never reach here — readSegment truncates at them.
func walkSeqs(recs []Record, seen bool, last uint64, segment string) (bool, uint64, error) {
	for _, rec := range recs {
		if seen && rec.Seq != last+1 {
			return seen, last, fmt.Errorf(
				"wal: %s jumps from seq %d to %d — acknowledged records are missing",
				segment, last, rec.Seq)
		}
		last = rec.Seq
		seen = true
	}
	return seen, last, nil
}

// readSegment parses one segment: its valid records, the byte length
// of the valid prefix, and how many torn-tail bytes follow it. A
// missing file is an empty segment. Structural damage below the first
// record (bad magic, wrong version) is a hard error — that file was
// never a WAL segment of this build.
func readSegment(fs iofault.FS, path string) (recs []Record, validLen, tornBytes int64, err error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	if len(data) < headerLen {
		// Nothing or a torn header: the segment holds no records.
		return nil, 0, int64(len(data)), nil
	}
	if string(data[:4]) != Magic {
		return nil, 0, 0, fmt.Errorf("wal: %s: bad magic %q (not a SQuID WAL segment)", path, data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, 0, 0, fmt.Errorf("wal: %s: segment version %d, this build reads %d", path, v, Version)
	}

	off := int64(headerLen)
	var lastSeq uint64
	seen := false
	var dict []string // the segment's string table, extended per record
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off, 0, nil // clean end
		}
		if len(rest) < frameHeaderLen {
			return recs, off, int64(len(rest)), nil // torn frame header
		}
		plen := binary.LittleEndian.Uint32(rest[:4])
		if plen == 0 || plen > maxPayload {
			return recs, off, int64(len(rest)), nil // zero/implausible length: torn
		}
		if int64(len(rest)) < frameHeaderLen+int64(plen) {
			return recs, off, int64(len(rest)), nil // torn payload
		}
		payload := rest[frameHeaderLen : frameHeaderLen+int64(plen)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			return recs, off, int64(len(rest)), nil // CRC mismatch: torn
		}
		rec, newDict, ok := decodeRecord(payload, dict)
		if !ok {
			return recs, off, int64(len(rest)), nil // undecodable payload: torn
		}
		if seen && rec.Seq <= lastSeq {
			// Duplicate or regressing sequence: a re-surfaced stale tail.
			return recs, off, int64(len(rest)), nil
		}
		dict = newDict
		lastSeq, seen = rec.Seq, true
		recs = append(recs, rec)
		off += frameHeaderLen + int64(plen)
	}
}

// decodeRecord parses one payload against the segment's string table
// built so far, returning the table extended with the strings this
// record introduces. On failure the caller truncates here, so the
// partially extended table is never reused.
func decodeRecord(payload []byte, dict []string) (Record, []string, bool) {
	d := &decoder{buf: payload}
	var rec Record
	rec.Seq = d.uvarint()
	nStr := d.uvarint()
	if d.bad || nStr > uint64(len(payload)) {
		return rec, dict, false
	}
	for i := uint64(0); i < nStr; i++ {
		s := d.string()
		if d.bad {
			return rec, dict, false
		}
		dict = append(dict, s)
	}
	nRows := d.uvarint()
	if d.bad || nRows == 0 || nRows > uint64(len(payload)) {
		return rec, dict, false
	}
	rec.Rows = make([]Row, 0, nRows)
	str := func(id uint64) (string, bool) {
		if id >= uint64(len(dict)) {
			return "", false
		}
		return dict[id], true
	}
	for i := uint64(0); i < nRows; i++ {
		relID := d.uvarint()
		nVals := d.uvarint()
		if d.bad || nVals > uint64(len(payload)) {
			return rec, dict, false
		}
		relName, ok := str(relID)
		if !ok {
			return rec, dict, false
		}
		row := Row{Rel: relName, Vals: make([]relation.Value, 0, nVals)}
		for j := uint64(0); j < nVals; j++ {
			tag := d.byte()
			if d.bad {
				return rec, dict, false
			}
			switch tag {
			case tagNull:
				row.Vals = append(row.Vals, relation.Null)
			case tagInt:
				row.Vals = append(row.Vals, relation.IntVal(d.varint()))
			case tagFloat:
				row.Vals = append(row.Vals, relation.FloatVal(d.float()))
			case tagString:
				s, ok := str(d.uvarint())
				if !ok || d.bad {
					return rec, dict, false
				}
				row.Vals = append(row.Vals, relation.StringVal(s))
			default:
				return rec, dict, false
			}
			if d.bad {
				return rec, dict, false
			}
		}
		rec.Rows = append(rec.Rows, row)
	}
	if len(d.buf) != 0 {
		return rec, dict, false // trailing garbage inside a checksummed frame
	}
	return rec, dict, true
}

// Value tags of the record payload encoding.
const (
	tagNull   = 0
	tagInt    = 1 // zigzag varint
	tagFloat  = 2 // 8-byte LE IEEE-754
	tagString = 3 // uvarint dictionary id
)

type decoder struct {
	buf []byte
	bad bool
}

func (d *decoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) byte() byte {
	if len(d.buf) < 1 {
		d.bad = true
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) float() float64 {
	if len(d.buf) < 8 {
		d.bad = true
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.bad || n > uint64(len(d.buf)) {
		d.bad = true
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

// Append writes one record — seq must exceed the previous record's.
// The write lands in the OS page cache; durability is Barrier's job.
// Any failure poisons the log: the torn frame stays on disk for
// recovery to truncate, and every later Append/Barrier refuses.
//
// Appends must arrive in publish order; the αDB publish hook runs
// under the publish lock, which guarantees it.
func (l *Log) Append(seq uint64, rows []Row) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if seq <= l.lastSeq {
		l.err = fmt.Errorf("wal: append seq %d does not advance past %d", seq, l.lastSeq)
		return l.err
	}
	if len(rows) == 0 {
		l.err = fmt.Errorf("wal: append of empty record at seq %d", seq)
		return l.err
	}

	// Payload: seq, the strings this record introduces (in first-use
	// order), then the rows against the extended dictionary.
	var newStrings []string
	intern := func(s string) uint64 {
		if id, ok := l.dict[s]; ok {
			return id
		}
		id := uint64(len(l.dict))
		l.dict[s] = id
		newStrings = append(newStrings, s)
		return id
	}
	body := l.scratch[:0]
	for _, row := range rows {
		body = binary.AppendUvarint(body, intern(row.Rel))
		body = binary.AppendUvarint(body, uint64(len(row.Vals)))
		for _, v := range row.Vals {
			switch {
			case v.IsNull():
				body = append(body, tagNull)
			case v.IsInt():
				body = append(body, tagInt)
				body = binary.AppendVarint(body, v.Int())
			case v.IsString():
				body = append(body, tagString)
				body = binary.AppendUvarint(body, intern(v.Str()))
			default:
				body = append(body, tagFloat)
				body = binary.LittleEndian.AppendUint64(body, math.Float64bits(v.Float()))
			}
		}
	}
	payload := make([]byte, 0, len(body)+64)
	payload = binary.AppendUvarint(payload, seq)
	payload = binary.AppendUvarint(payload, uint64(len(newStrings)))
	for _, s := range newStrings {
		payload = binary.AppendUvarint(payload, uint64(len(s)))
		payload = append(payload, s...)
	}
	payload = binary.AppendUvarint(payload, uint64(len(rows)))
	payload = append(payload, body...)
	l.scratch = body[:0]

	frame := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if _, err := l.f.Write(frame); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return l.err
	}
	l.appended++
	l.lastSeq = seq
	l.records.Add(1)
	l.bytes.Add(uint64(len(frame)))
	return nil
}

// Barrier makes every record appended so far durable to the policy's
// standard and reports the log's health. Under PolicyAlways it fsyncs
// (group commit: a concurrent Barrier that finds its records already
// covered returns without a syscall); under the other policies it only
// surfaces the sticky error. An insert is acknowledged only after its
// Barrier returns nil.
func (l *Log) Barrier() error {
	if l.policy != PolicyAlways {
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.err
	}
	return l.syncNow()
}

// syncNow is the group-commit leader: one fsync covers every record
// appended before it was issued.
func (l *Log) syncNow() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return l.err
	}
	target := l.appended
	f := l.f
	l.mu.Unlock()
	if l.syncedTo >= target {
		return nil
	}
	err := f.Sync()
	l.syncs.Add(1)
	if err != nil {
		l.syncFailures.Add(1)
		l.mu.Lock()
		if l.err == nil {
			l.err = fmt.Errorf("wal: fsync: %w", err)
		}
		err = l.err
		l.mu.Unlock()
		return err
	}
	l.syncedTo = target
	return nil
}

// flushLoop is the PolicyInterval background flusher.
func (l *Log) flushLoop() {
	defer l.flushWG.Done()
	t := time.NewTicker(l.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.syncNow() // failure is sticky; the next Barrier surfaces it
		case <-l.stopFlush:
			return
		}
	}
}

// BeginCheckpoint prepares the log for a snapshot: it fsyncs the live
// segment (whatever the policy — the rotated segment must be fully
// durable, or a later power loss could tear records out of the middle
// of the chain) and rotates it aside to <path>.prev, starting a fresh
// segment with a fresh dictionary. When a .prev already exists, a
// previous checkpoint died before EndCheckpoint: rotation is skipped
// and the snapshot proceeds — it covers those records too, and
// EndCheckpoint cleans both up.
func (l *Log) BeginCheckpoint() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.syncs.Add(1)
		l.syncFailures.Add(1)
		l.err = fmt.Errorf("wal: checkpoint fsync: %w", err)
		return l.err
	}
	l.syncs.Add(1)
	l.syncedTo = l.appended
	if ok, err := l.fs.Exists(prevPath(l.path)); err != nil {
		l.err = fmt.Errorf("wal: checkpoint: %w", err)
		return l.err
	} else if ok {
		return nil // prior checkpoint incomplete: keep appending in place
	}
	if err := l.f.Close(); err != nil {
		l.err = fmt.Errorf("wal: checkpoint close: %w", err)
		return l.err
	}
	if err := l.fs.Rename(l.path, prevPath(l.path)); err != nil {
		l.err = fmt.Errorf("wal: checkpoint rotate: %w", err)
		return l.err
	}
	f, err := l.fs.OpenFile(l.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		l.err = fmt.Errorf("wal: checkpoint new segment: %w", err)
		return l.err
	}
	var hdr [headerLen]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		l.err = fmt.Errorf("wal: checkpoint new segment header: %w", err)
		return l.err
	}
	l.f = f
	l.dict = make(map[string]uint64) // segments are self-contained
	l.rotations.Add(1)
	return nil
}

// EndCheckpoint completes a checkpoint after the snapshot has landed
// durably at its final path: the rotated segment's records are covered
// by the snapshot, so it is deleted. Safe to call when no .prev exists
// (rotation was skipped or already cleaned).
func (l *Log) EndCheckpoint() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ok, err := l.fs.Exists(prevPath(l.path))
	if err != nil {
		return fmt.Errorf("wal: end checkpoint: %w", err)
	}
	if !ok {
		return nil
	}
	if err := l.fs.Remove(prevPath(l.path)); err != nil {
		return fmt.Errorf("wal: end checkpoint: %w", err)
	}
	return nil
}

// LastSeq returns the newest record's sequence number.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Policy returns the configured fsync policy.
func (l *Log) Policy() SyncPolicy { return l.policy }

// Metrics returns the counters for the /metrics surface.
func (l *Log) Metrics() Metrics {
	l.mu.Lock()
	failed := l.err != nil
	lastSeq := l.lastSeq
	l.mu.Unlock()
	return Metrics{
		Records:        l.records.Load(),
		Bytes:          l.bytes.Load(),
		Syncs:          l.syncs.Load(),
		SyncFailures:   l.syncFailures.Load(),
		Rotations:      l.rotations.Load(),
		ReplayedRecs:   l.replayed,
		TruncatedBytes: l.truncated,
		LastSeq:        lastSeq,
		Failed:         failed,
	}
}

// Close stops the background flusher, fsyncs whatever is buffered
// (graceful shutdown loses nothing under any policy), and closes the
// segment. Idempotent.
func (l *Log) Close() error {
	var err error
	l.closeOnce.Do(func() {
		close(l.stopFlush)
		l.flushWG.Wait()
		err = l.syncNow()
		l.mu.Lock()
		defer l.mu.Unlock()
		if cerr := l.f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if l.err == nil {
			l.err = errors.New("wal: closed")
		}
	})
	return err
}
