package pulearn

import (
	"math/rand"
	"testing"

	"squid/internal/adb"
	"squid/internal/benchqueries"
	"squid/internal/datagen"
	"squid/internal/metrics"
)

func buildAdult(t *testing.T, rows int) (*datagen.Adult, *adb.AlphaDB) {
	t.Helper()
	g := datagen.GenerateAdult(datagen.AdultConfig{Seed: 5, NumRows: rows, ScaleFactor: 1})
	alpha, err := adb.Build(g.DB, adb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g, alpha
}

func TestFeaturize(t *testing.T) {
	_, alpha := buildAdult(t, 300)
	X, feats := Featurize(alpha.Entity("adult"))
	if len(X) != 300 {
		t.Fatalf("rows=%d", len(X))
	}
	if len(feats) < 10 {
		t.Errorf("features=%d, expected the census attributes", len(feats))
	}
	hasCat, hasNum := false, false
	for _, f := range feats {
		if f.Categorical {
			hasCat = true
		} else {
			hasNum = true
		}
	}
	if !hasCat || !hasNum {
		t.Error("both categorical and numeric features expected")
	}
}

// positiveRowsOf resolves ground-truth output values back to entity rows.
func positiveRowsOf(alpha *adb.AlphaDB, truth []string) []int {
	info := alpha.Entity("adult")
	set := map[string]bool{}
	for _, v := range truth {
		set[v] = true
	}
	col := info.Rel().Column("name")
	var rows []int
	for i := 0; i < info.NumRows; i++ {
		if set[col.Str(i)] {
			rows = append(rows, i)
		}
	}
	return rows
}

// TestFig16aShape reproduces the Fig 16(a) trend: with a large fraction
// of the positives labeled, PU-learning approaches the truth; with a
// small fraction, recall collapses (it favors precision).
func TestFig16aShape(t *testing.T) {
	g, alpha := buildAdult(t, 1500)
	info := alpha.Entity("adult")
	X, feats := Featurize(info)
	nameCol := info.Rel().Column("name")

	bench := benchqueries.AdultBenchmarks(g, 42)
	// Use the largest-output query for stable statistics.
	var best benchqueries.Benchmark
	bestCard := 0
	for _, b := range bench {
		c, err := benchqueries.Cardinality(g.DB, b)
		if err != nil {
			t.Fatal(err)
		}
		if c > bestCard {
			bestCard, best = c, b
		}
	}
	truth, err := benchqueries.GroundTruth(g.DB, best)
	if err != nil {
		t.Fatal(err)
	}
	posRows := positiveRowsOf(alpha, truth)
	if len(posRows) < 30 {
		t.Skip("fixture too small")
	}

	score := func(fraction float64) metrics.PRF {
		rng := rand.New(rand.NewSource(11))
		k := int(fraction * float64(len(posRows)))
		if k < 2 {
			k = 2
		}
		labeled := make([]int, 0, k)
		for _, i := range rng.Perm(len(posRows))[:k] {
			labeled = append(labeled, posRows[i])
		}
		res := Learn(X, feats, labeled, DefaultConfig(DecisionTree))
		var got []string
		for _, r := range res.PositiveRows {
			got = append(got, nameCol.Str(r))
		}
		return metrics.Compare(got, truth)
	}

	low := score(0.1)
	high := score(0.9)
	t.Logf("PU(DT) fraction=0.1: %+v", low)
	t.Logf("PU(DT) fraction=0.9: %+v", high)
	if high.FScore < low.FScore {
		t.Errorf("more labeled positives must not hurt: %.3f -> %.3f", low.FScore, high.FScore)
	}
	if high.FScore < 0.5 {
		t.Errorf("with 90%% positives labeled, f-score too low: %.3f", high.FScore)
	}
}

func TestEstimatorsBothRun(t *testing.T) {
	_, alpha := buildAdult(t, 600)
	info := alpha.Entity("adult")
	X, feats := Featurize(info)
	// Intent: Male rows (easily learnable).
	var pos []int
	col := info.Rel().Column("sex")
	for i := 0; i < info.NumRows; i++ {
		if col.Str(i) == "Male" && i%2 == 0 { // half the positives labeled
			pos = append(pos, i)
		}
	}
	for _, est := range []Estimator{DecisionTree, RandomForest} {
		res := Learn(X, feats, pos, DefaultConfig(est))
		if len(res.PositiveRows) == 0 {
			t.Errorf("estimator %d returned nothing", est)
		}
		if res.C <= 0 || res.C > 1 {
			t.Errorf("estimator %d: c=%v out of range", est, res.C)
		}
		if res.TrainTime <= 0 {
			t.Errorf("estimator %d: no training time recorded", est)
		}
	}
}

func TestLearnDeterminism(t *testing.T) {
	_, alpha := buildAdult(t, 400)
	X, feats := Featurize(alpha.Entity("adult"))
	pos := []int{1, 5, 9, 13, 17, 21, 25, 29, 33, 37}
	a := Learn(X, feats, pos, DefaultConfig(DecisionTree))
	b := Learn(X, feats, pos, DefaultConfig(DecisionTree))
	if len(a.PositiveRows) != len(b.PositiveRows) {
		t.Fatal("PU learning not deterministic")
	}
	for i := range a.PositiveRows {
		if a.PositiveRows[i] != b.PositiveRows[i] {
			t.Fatal("PU learning rows differ")
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	_, alpha := buildAdult(t, 100)
	X, feats := Featurize(alpha.Entity("adult"))
	// A single positive example must not panic.
	res := Learn(X, feats, []int{3}, DefaultConfig(DecisionTree))
	if res == nil {
		t.Fatal("nil result")
	}
}
