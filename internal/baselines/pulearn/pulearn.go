// Package pulearn implements the Elkan–Noto method ("Learning
// classifiers from only positive and unlabeled data", KDD 2008) used as
// the PU-learning baseline in §7.6 of the paper: train a probabilistic
// classifier g to distinguish labeled from unlabeled rows, estimate the
// label frequency c = E[g(x) | labeled] on a positive holdout, and
// classify x as positive when g(x)/c ≥ 0.5. Base estimators are the
// from-scratch decision tree and random forest of internal/ml.
package pulearn

import (
	"math/rand"
	"sort"
	"time"

	"squid/internal/adb"
	"squid/internal/ml"
)

// Estimator selects the base classifier.
type Estimator int

const (
	// DecisionTree is the single-tree estimator (PU (DT) in Fig 16).
	DecisionTree Estimator = iota
	// RandomForest is the bagging estimator (PU (RF) in Fig 16).
	RandomForest
)

// Config tunes the PU learner.
type Config struct {
	Estimator Estimator
	// HoldoutFraction of the positives is reserved for estimating c.
	HoldoutFraction float64
	Seed            int64
	Tree            ml.TreeConfig
	Forest          ml.ForestConfig
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig(e Estimator) Config {
	return Config{
		Estimator:       e,
		HoldoutFraction: 0.2,
		Seed:            1,
		Tree:            ml.DefaultTreeConfig(),
		Forest:          ml.DefaultForestConfig(),
	}
}

// Result is the outcome of one PU-learning run.
type Result struct {
	// PositiveRows are the entity rows classified positive.
	PositiveRows []int
	// C is the estimated label frequency.
	C float64
	// TrainTime and PredictTime split the end-to-end cost (Fig 16(b)).
	TrainTime   time.Duration
	PredictTime time.Duration
}

// Learn runs Elkan–Noto: positives are the labeled example rows, all
// other rows are unlabeled.
func Learn(X [][]float64, feats []ml.Feature, positiveRows []int, cfg Config) *Result {
	if cfg.HoldoutFraction == 0 {
		cfg = DefaultConfig(cfg.Estimator)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()

	// Split positives into train and holdout for the c estimate.
	perm := rng.Perm(len(positiveRows))
	nHold := int(float64(len(positiveRows)) * cfg.HoldoutFraction)
	if nHold < 1 && len(positiveRows) > 1 {
		nHold = 1
	}
	holdout := make([]int, 0, nHold)
	train := make([]int, 0, len(positiveRows)-nHold)
	for i, pi := range perm {
		if i < nHold {
			holdout = append(holdout, positiveRows[pi])
		} else {
			train = append(train, positiveRows[pi])
		}
	}
	if len(train) == 0 { // degenerate: keep at least one training positive
		train = holdout
	}

	// Labels: s = 1 for labeled (training) positives, 0 otherwise.
	s := make([]int, len(X))
	for _, r := range train {
		s[r] = 1
	}

	var clf ml.Classifier
	switch cfg.Estimator {
	case RandomForest:
		f := cfg.Forest
		f.Seed = cfg.Seed
		clf = ml.TrainForest(X, s, feats, f)
	default:
		clf = ml.Train(X, s, feats, cfg.Tree)
	}

	// c = mean g(x) over the positive holdout (Elkan–Noto estimator e1).
	c := 0.0
	for _, r := range holdout {
		c += clf.PredictProba(X[r])
	}
	if len(holdout) > 0 {
		c /= float64(len(holdout))
	}
	if c <= 0 {
		c = 1e-6 // degenerate holdout: avoid divide-by-zero, classify by raw g
	}
	trainTime := time.Since(start)

	// Classify: positive iff g(x)/c ≥ 0.5.
	start = time.Now()
	var pos []int
	for i := range X {
		if clf.PredictProba(X[i])/c >= 0.5 {
			pos = append(pos, i)
		}
	}
	sort.Ints(pos)
	return &Result{
		PositiveRows: pos,
		C:            c,
		TrainTime:    trainTime,
		PredictTime:  time.Since(start),
	}
}

// Featurize flattens a single-relation entity (the Adult table of the
// §7.6 setting) into the (X, feats) matrix the learner consumes:
// numeric attributes as-is, categorical attributes integer-coded.
func Featurize(info *adb.EntityInfo) ([][]float64, []ml.Feature) {
	var feats []ml.Feature
	var props []*adb.BasicProperty
	codes := []map[int32]float64{}
	for _, p := range info.Basic {
		if p.MultiValued {
			continue // the §7.6 setting is a single denormalized relation
		}
		props = append(props, p)
		feats = append(feats, ml.Feature{Name: p.Attr, Categorical: p.Kind == adb.Categorical})
		codes = append(codes, map[int32]float64{})
	}
	X := make([][]float64, info.NumRows)
	for row := 0; row < info.NumRows; row++ {
		x := make([]float64, len(props))
		for i, p := range props {
			if p.Kind == adb.Numeric {
				if v, ok := p.NumValue(row); ok {
					x[i] = v
				} else {
					x[i] = ml.MissingCat // no NaN in generated data; sentinel suffices
				}
				continue
			}
			// Dictionary codes stand in for the strings: same dense
			// feature coding, no per-row decode.
			vals := p.ValueCodes(row)
			if len(vals) == 0 {
				x[i] = ml.MissingCat
				continue
			}
			c, ok := codes[i][vals[0]]
			if !ok {
				c = float64(len(codes[i]))
				codes[i][vals[0]] = c
			}
			x[i] = c
		}
		X[row] = x
	}
	return X, feats
}
