package talos

import (
	"testing"

	"squid/internal/adb"
	"squid/internal/benchqueries"
	"squid/internal/datagen"
	"squid/internal/metrics"
)

func buildAdult(t *testing.T, rows int) (*datagen.Adult, *adb.AlphaDB) {
	t.Helper()
	g := datagen.GenerateAdult(datagen.AdultConfig{Seed: 5, NumRows: rows, ScaleFactor: 1})
	alpha, err := adb.Build(g.DB, adb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g, alpha
}

// TestAdultQRE mirrors Fig 14: on the single-relation Adult dataset,
// TALOS reverse-engineers benchmark queries near-perfectly (the closed
// world matches its assumptions) at the cost of many predicates.
func TestAdultQRE(t *testing.T) {
	g, alpha := buildAdult(t, 1500)
	info := alpha.Entity("adult")
	bench := benchqueries.AdultBenchmarks(g, 42)[:4]
	for _, b := range bench {
		truth, err := benchqueries.GroundTruth(g.DB, b)
		if err != nil {
			t.Fatal(err)
		}
		res := ReverseEngineer(info, "name", truth, DefaultConfig())
		prf := metrics.Compare(res.Output, truth)
		if prf.FScore < 0.9 {
			t.Errorf("%s: f-score=%.3f (truth=%d, got=%d)", b.ID, prf.FScore, len(truth), len(res.Output))
		}
		if res.NumPredicates == 0 {
			t.Errorf("%s: no predicates extracted", b.ID)
		}
	}
}

// TestIMDbMislabeling reproduces the §7.5 IQ1 analysis: on a star
// schema, TALOS labels all denormalized rows of a cast member positive
// — including rows for other movies — so the reverse-engineered query
// is imperfect while SQuID's entity-level semantics are exact.
func TestIMDbMislabeling(t *testing.T) {
	g := datagen.GenerateIMDb(datagen.IMDbConfig{Seed: 7, NumPersons: 800, NumMovies: 300, NumCompany: 20})
	alpha, err := adb.Build(g.DB, adb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info := alpha.Entity("person")
	bench := benchqueries.IMDbBenchmarks(g)
	var iq1 benchqueries.Benchmark
	for _, b := range bench {
		if b.ID == "IQ1" {
			iq1 = b
		}
	}
	truth, err := benchqueries.GroundTruth(g.DB, iq1)
	if err != nil {
		t.Fatal(err)
	}
	res := ReverseEngineer(info, "name", truth, DefaultConfig())
	prf := metrics.Compare(res.Output, truth)
	t.Logf("IQ1 TALOS: f-score=%.3f predicates=%d rows=%d", prf.FScore, res.NumPredicates, res.Rows)
	if prf.FScore == 0 {
		t.Error("TALOS should recover a noticeable part of the cast")
	}
	if prf.Recall > 0.999 && prf.Precision > 0.999 && res.NumPredicates <= 2 {
		t.Error("perfect single-predicate recovery contradicts the paper's mislabeling analysis")
	}
}

func TestDenormalizeCap(t *testing.T) {
	_, alpha := buildAdult(t, 200)
	info := alpha.Entity("adult")
	// Single relation: one row per entity regardless of the cap.
	table := denormalize(info, 1000)
	if len(table.rows) != 200 {
		t.Errorf("rows=%d want 200", len(table.rows))
	}
	if len(table.feats) == 0 {
		t.Error("no features")
	}
}

func TestDenormalizeExpansion(t *testing.T) {
	g := datagen.GenerateIMDb(datagen.IMDbConfig{Seed: 7, NumPersons: 700, NumMovies: 250, NumCompany: 15})
	alpha, err := adb.Build(g.DB, adb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	info := alpha.Entity("person")
	expanded := denormalize(info, 250000)
	if len(expanded.rows) <= info.NumRows {
		t.Errorf("multi-valued expansion missing: %d rows for %d entities", len(expanded.rows), info.NumRows)
	}
	// With a tight cap the table stays near the entity count.
	capped := denormalize(info, info.NumRows+10)
	if len(capped.rows) > info.NumRows+10 {
		t.Errorf("row cap violated: %d", len(capped.rows))
	}
	// Every row maps back to a valid entity.
	for _, e := range capped.entityOf {
		if e < 0 || e >= info.NumRows {
			t.Fatalf("bad entity mapping %d", e)
		}
	}
}

func TestClosedWorldExactInput(t *testing.T) {
	// Reverse engineering a selection the tree can express: sex=Female
	// AND education=Doctorate.
	g, alpha := buildAdult(t, 1200)
	info := alpha.Entity("adult")
	rel := g.DB.Relation("adult")
	var truth []string
	for i := 0; i < rel.NumRows(); i++ {
		if rel.Get(i, "sex").Str() == "Female" && rel.Get(i, "education").Str() == "Doctorate" {
			truth = append(truth, rel.Get(i, "name").Str())
		}
	}
	if len(truth) < 3 {
		t.Skip("fixture too small for this intent")
	}
	res := ReverseEngineer(info, "name", truth, DefaultConfig())
	prf := metrics.Compare(res.Output, truth)
	if prf.FScore < 0.95 {
		t.Errorf("expressible query not recovered: f=%.3f", prf.FScore)
	}
}
