// Package talos reimplements the core of TALOS (Tran, Chan &
// Parthasarathy, "Query reverse engineering", VLDBJ 2014), the
// closed-world decision-tree QRE system SQuID is compared against in
// §7.5 of the paper. TALOS performs a full join among the participating
// relations, labels every row of the denormalized table positive if its
// projected value appears in the example output — regardless of which
// join path produced the row, the mislabeling the paper dissects on IQ1
// — trains a decision tree, and reads the query off the positive paths.
package talos

import (
	"math"
	"sort"
	"time"

	"squid/internal/adb"
	"squid/internal/ml"
)

// Result is the outcome of one reverse-engineering run.
type Result struct {
	// Output is the set of projected entity values the learned query
	// selects (an entity is selected when any of its denormalized rows
	// reaches a positive leaf).
	Output []string
	// NumPredicates is the total condition count across positive tree
	// paths — the Figs 14/15 metric.
	NumPredicates int
	// Time is the end-to-end discovery time (denormalize + train +
	// apply).
	Time time.Duration
	// Rows is the denormalized table size (diagnostics).
	Rows int
}

// Config bounds the denormalized table.
type Config struct {
	// MaxRows caps the multi-valued expansion; once exceeded,
	// remaining multi-valued properties contribute only their first
	// value per entity.
	MaxRows int
	Tree    ml.TreeConfig
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{MaxRows: 250000, Tree: ml.DefaultTreeConfig()}
}

// ReverseEngineer learns a query selecting exactly the example values
// (closed world) over the denormalized view of the entity relation.
// The αDB is used only as a convenient provider of the joined attribute
// values — exactly what TALOS's full join produces; none of SQuID's
// derived statistics are consulted.
func ReverseEngineer(info *adb.EntityInfo, attr string, examples []string, cfg Config) *Result {
	start := time.Now()
	if cfg.MaxRows == 0 {
		cfg = DefaultConfig()
	}

	table := denormalize(info, cfg.MaxRows)

	// Label: positive iff the row's entity projects to an example value
	// (the closed-world labeling on the denormalized table).
	exampleSet := make(map[string]bool, len(examples))
	for _, e := range examples {
		exampleSet[e] = true
	}
	attrCol := info.Rel().Column(attr)
	y := make([]int, len(table.rows))
	for i, entityRow := range table.entityOf {
		if !attrCol.IsNull(entityRow) && exampleSet[attrCol.Get(entityRow).String()] {
			y[i] = 1
		}
	}

	tree := ml.Train(table.rows, y, table.feats, cfg.Tree)

	// Apply: an entity is selected when any of its rows is predicted
	// positive.
	selected := map[int]bool{}
	for i, entityRow := range table.entityOf {
		if selected[entityRow] {
			continue
		}
		if tree.Predict(table.rows[i]) == 1 {
			selected[entityRow] = true
		}
	}
	var output []string
	for entityRow := range selected {
		if !attrCol.IsNull(entityRow) {
			output = append(output, attrCol.Get(entityRow).String())
		}
	}
	sort.Strings(output)

	return &Result{
		Output:        output,
		NumPredicates: tree.NumPredicates(),
		Time:          time.Since(start),
		Rows:          len(table.rows),
	}
}

// denormTable is the flattened feature table.
type denormTable struct {
	feats    []ml.Feature
	rows     [][]float64
	entityOf []int // row -> entity row
}

// denormalize flattens the entity relation with its basic properties
// (direct attributes, FK dims, attribute tables, fact dims including
// entity associations) into one table, expanding multi-valued
// properties row-wise in descending domain-size order until the row cap
// is hit; further multi-valued properties are collapsed to their first
// value, mirroring a bounded full join.
func denormalize(info *adb.EntityInfo, maxRows int) *denormTable {
	t := &denormTable{}

	// Order properties: single-valued first, then multi-valued by
	// descending average multiplicity so the most informative
	// associations (the entity association itself) expand first.
	var single, multi []*adb.BasicProperty
	for _, p := range info.Basic {
		if p.MultiValued {
			multi = append(multi, p)
		} else {
			single = append(single, p)
		}
	}
	sort.SliceStable(multi, func(i, j int) bool {
		return avgMultiplicity(multi[i], info) > avgMultiplicity(multi[j], info)
	})
	props := append(append([]*adb.BasicProperty(nil), single...), multi...)

	// Feature encoding: per categorical property a code table, keyed
	// by dictionary code so featurization never decodes strings.
	codes := make([]map[int32]float64, len(props))
	for i, p := range props {
		t.feats = append(t.feats, ml.Feature{Name: p.Attr, Categorical: p.Kind == adb.Categorical})
		if p.Kind == adb.Categorical {
			codes[i] = map[int32]float64{}
		}
	}
	encode := func(i int, v int32) float64 {
		c, ok := codes[i][v]
		if !ok {
			c = float64(len(codes[i]))
			codes[i][v] = c
		}
		return c
	}

	// Build rows entity by entity, expanding multi-valued properties
	// while the budget allows.
	budgetExceeded := false
	for entityRow := 0; entityRow < info.NumRows; entityRow++ {
		rows := [][]float64{make([]float64, len(props))}
		for i, p := range props {
			switch {
			case p.Kind == adb.Numeric:
				v, ok := p.NumValue(entityRow)
				cell := math.NaN()
				if ok {
					cell = v
				}
				for _, r := range rows {
					r[i] = cell
				}
			case !p.MultiValued:
				vals := p.ValueCodes(entityRow)
				cell := float64(ml.MissingCat)
				if len(vals) > 0 {
					cell = encode(i, vals[0])
				}
				for _, r := range rows {
					r[i] = cell
				}
			default:
				vals := p.ValueCodes(entityRow)
				if len(vals) == 0 {
					for _, r := range rows {
						r[i] = ml.MissingCat
					}
					continue
				}
				// Reserve one row for every not-yet-emitted entity so
				// the cap holds globally.
				reserve := info.NumRows - entityRow - 1
				if budgetExceeded || len(t.rows)+len(rows)*len(vals)+reserve > maxRows {
					budgetExceeded = true
					cell := encode(i, vals[0])
					for _, r := range rows {
						r[i] = cell
					}
					continue
				}
				expanded := make([][]float64, 0, len(rows)*len(vals))
				for _, r := range rows {
					for _, v := range vals {
						nr := append([]float64(nil), r...)
						nr[i] = encode(i, v)
						expanded = append(expanded, nr)
					}
				}
				rows = expanded
			}
		}
		for _, r := range rows {
			t.rows = append(t.rows, r)
			t.entityOf = append(t.entityOf, entityRow)
		}
	}
	return t
}

// avgMultiplicity estimates the average number of values per entity for
// a multi-valued property (sampled).
func avgMultiplicity(p *adb.BasicProperty, info *adb.EntityInfo) float64 {
	n, total := 0, 0
	step := info.NumRows/200 + 1
	for row := 0; row < info.NumRows; row += step {
		total += len(p.ValueCodes(row))
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}
