package abduction

import (
	"context"
	"math"

	"squid/internal/trace"
)

// FilterDecision records the per-filter posterior computation of
// Algorithm 1: the prior factors, the include/exclude scores from
// Equation 5, and the decision.
type FilterDecision struct {
	Filter      *Filter
	Selectivity float64
	Delta       float64 // domain-selectivity impact δ(φ)
	Alpha       float64 // association-strength impact α(φ)
	Lambda      float64 // outlier impact λ(φ)
	Prior       float64 // Pr*(φ) = ρ·δ·α·λ
	Include     float64 // Pr*(φ)·Pr*(x|φ) = Pr*(φ)
	Exclude     float64 // Pr*(φ̄)·Pr*(x|φ̄) = (1−Pr*(φ))·ψ(φ)^|E|
	Included    bool
}

// skewness computes the sample skewness of Appendix B:
// n·Σ(aᵢ−ā)³ / (s³·(n−1)·(n−2)); it returns (0, false) when n < 3 or the
// sample has zero variance.
func skewness(vals []float64) (float64, bool) {
	n := float64(len(vals))
	if n < 3 {
		return 0, false
	}
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= n
	var m2, m3 float64
	for _, v := range vals {
		d := v - mean
		m2 += d * d
		m3 += d * d * d
	}
	s := math.Sqrt(m2 / (n - 1)) // sample standard deviation
	if s == 0 {
		return 0, false
	}
	return n * m3 / (s * s * s * (n - 1) * (n - 2)), true
}

// meanStd returns the sample mean and standard deviation.
func meanStd(vals []float64) (mean, std float64) {
	n := float64(len(vals))
	if n == 0 {
		return 0, 0
	}
	for _, v := range vals {
		mean += v
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	var m2 float64
	for _, v := range vals {
		d := v - mean
		m2 += d * d
	}
	return mean, math.Sqrt(m2 / (n - 1))
}

// lambdaImpacts computes the outlier impact λ(φ) for every filter
// (Appendix B). Basic filters always get λ = 1. Derived filters are
// grouped into families sharing the same attribute; a family's
// association-strength distribution Θ_A must be skewed beyond τs AND the
// filter's θ must be an outlier ((θ − mean) > k·s) for λ = 1. Families
// with fewer than 3 members treat every element as an outlier (and the
// skewness test as passed), per the appendix.
func lambdaImpacts(filters []*Filter, params Params) map[*Filter]float64 {
	out := make(map[*Filter]float64, len(filters))
	if params.DisableOutlier {
		for _, f := range filters {
			out[f] = 1
		}
		return out
	}
	// Group derived filters by family (same derived property).
	type family struct {
		members   []*Filter
		strengths []float64
	}
	families := make(map[string]*family)
	for _, f := range filters {
		if f.Kind != Derived {
			out[f] = 1
			continue
		}
		key := f.Derivd.Entity + "\x00" + f.Derivd.Attr
		fam := families[key]
		if fam == nil {
			fam = &family{}
			families[key] = fam
		}
		fam.members = append(fam.members, f)
		fam.strengths = append(fam.strengths, f.effectiveStrength())
	}
	for _, fam := range families {
		if len(fam.members) < 3 {
			// Skewness undefined: assume all elements are outliers.
			for _, f := range fam.members {
				out[f] = 1
			}
			continue
		}
		skew, ok := skewness(fam.strengths)
		mean, std := meanStd(fam.strengths)
		for _, f := range fam.members {
			isOutlier := std > 0 && (f.effectiveStrength()-mean) > params.OutlierK*std
			if ok && skew > params.TauS && isOutlier {
				out[f] = 1
			} else {
				out[f] = 0
			}
		}
	}
	return out
}

// alphaImpact computes the association-strength impact α(φ) (§4.2.2):
// derived filters weaker than τa are insignificant.
func alphaImpact(f *Filter, params Params) float64 {
	if f.Kind != Derived {
		return 1
	}
	if f.NormUse {
		if f.ThetaN < params.TauANorm {
			return 0
		}
		return 1
	}
	if f.Theta < params.TauA {
		return 0
	}
	return 1
}

// Abduce runs Algorithm 1: for each minimal valid filter decide
// independently whether including it increases the query posterior
// (Equation 5), returning the decisions and the selected filter set.
// Ties drop the filter (Occam's razor, Appendix C).
func Abduce(contexts []Context, params Params) ([]FilterDecision, []*Filter) {
	//lint:ignore ctxpoll non-cancellable convenience wrapper over abduceCtx
	decisions, selected, _ := abduceCtx(context.Background(), nil, contexts, params, trace.Span{})
	return decisions, selected
}

// abduceCtx is Abduce with a cancellation check between candidate
// evaluations: each iteration computes the filter's selectivity (the
// expensive step of Algorithm 1), so consulting ctx here is what makes a
// single long discovery abort promptly instead of only between requests.
//
// The selectivities are prefetched over the worker pool first — each
// filter is touched by exactly one unit, and the pool's barrier
// publishes the per-filter memos to this goroutine — so the decision
// loop that follows consults them at memo-read cost. The loop itself
// stays serial: the per-filter decisions are Theorem 1's independent
// maximization steps, pure float math after the prefetch, and keeping
// them on one goroutine keeps the decision order (and the cancellation
// checkpoints the tests count) identical to the serial path.
func abduceCtx(ctx context.Context, pool *workPool, contexts []Context, params Params, sp trace.Span) ([]FilterDecision, []*Filter, error) {
	filters := make([]*Filter, len(contexts))
	for i, c := range contexts {
		filters[i] = c.Filter
	}
	lambdas := lambdaImpacts(filters, params)

	// The selectivity prefetch is the candidate's cache-heavy phase; its
	// span collects the hit/miss/store counters the worker units bump.
	ss := sp.Child(trace.PhaseSelectivity, "")
	err := pool.forEach(ctx, len(filters), func(i int) { filters[i].selectivityT(ss) })
	ss.End()
	if err != nil {
		return nil, nil, err
	}

	as := sp.Child(trace.PhaseAbduce, "")
	defer as.End()
	as.Add(trace.CounterContexts, int64(len(contexts)))
	decisions := make([]FilterDecision, 0, len(contexts))
	var selected []*Filter
	for _, c := range contexts {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		f := c.Filter
		psi := f.Selectivity()
		delta := params.deltaImpact(f.DomainCoverage())
		alpha := alphaImpact(f, params)
		lambda := lambdas[f]
		prior := params.Rho * delta * alpha * lambda

		include := prior // Pr*(x|φ) = 1
		exclude := (1 - prior) * math.Pow(psi, float64(c.NumExamples))
		if psi >= 1 {
			// A filter every tuple satisfies cannot change the query
			// output; encode it as the Appendix C tie so Occam's razor
			// drops it (and Theorem 1's optimality is preserved: both
			// choices score identically).
			include = exclude
		}
		d := FilterDecision{
			Filter:      f,
			Selectivity: psi,
			Delta:       delta,
			Alpha:       alpha,
			Lambda:      lambda,
			Prior:       prior,
			Include:     include,
			Exclude:     exclude,
			Included:    include > exclude,
		}
		if d.Included {
			selected = append(selected, f)
		}
		decisions = append(decisions, d)
	}
	as.Add(trace.CounterSelected, int64(len(selected)))
	return decisions, selected, nil
}

// LogPosteriorScore returns the (unnormalized) log posterior of a chosen
// subset under Equation 5, ignoring the constant K/ψ(Φ) factor that is
// identical across subsets of the same candidate set. Exposed for the
// Theorem 1 cross-check and base-query ranking.
func LogPosteriorScore(decisions []FilterDecision, chosen map[*Filter]bool) float64 {
	score := 0.0
	for _, d := range decisions {
		if chosen[d.Filter] {
			score += math.Log(d.Include)
		} else {
			score += math.Log(d.Exclude)
		}
	}
	return score
}
