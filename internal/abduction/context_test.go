package abduction

import (
	"math"
	"testing"

	"squid/internal/adb"
	"squid/internal/relation"
)

// fig6DB builds the Fig 6 sample database: six persons with gender and
// age, examples Tom Cruise and Clint Eastwood.
func fig6DB(t *testing.T) *adb.AlphaDB {
	t.Helper()
	db := relation.NewDatabase("fig6")
	p := relation.New("person",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("gender", relation.String),
		relation.Col("age", relation.Int),
	).SetPrimaryKey("id")
	rows := []struct {
		name   string
		gender string
		age    int64
	}{
		{"Tom Cruise", "Male", 50},
		{"Clint Eastwood", "Male", 90},
		{"Tom Hanks", "Male", 60},
		{"Julia Roberts", "Female", 50},
		{"Emma Stone", "Female", 29},
		{"Julianne Moore", "Female", 60},
	}
	for i, r := range rows {
		p.MustAppend(relation.IntVal(int64(i+1)), relation.StringVal(r.name),
			relation.StringVal(r.gender), relation.IntVal(r.age))
	}
	db.AddRelation(p)
	db.MarkEntity("person")
	a, err := adb.Build(db, adb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func findContext(cs []Context, attr string) *Context {
	for i := range cs {
		if cs[i].Filter.Attr() == attr {
			return &cs[i]
		}
	}
	return nil
}

// TestFig6Contexts checks the §3.2 example: given Tom Cruise and Clint
// Eastwood, the minimal valid filters are gender=Male and age∈[50,90].
func TestFig6Contexts(t *testing.T) {
	a := fig6DB(t)
	info := a.Entity("person")
	contexts := DiscoverContexts(info, []int{0, 1}, DefaultParams())
	if len(contexts) != 2 {
		t.Fatalf("contexts=%d want 2 (%v)", len(contexts), contexts)
	}
	g := findContext(contexts, "gender")
	if g == nil || g.Filter.Value() != "Male" {
		t.Errorf("gender context missing or wrong: %+v", g)
	}
	age := findContext(contexts, "age")
	if age == nil || age.Filter.Lo != 50 || age.Filter.Hi != 90 {
		t.Errorf("age context wrong: %+v", age)
	}
	// §4.2.1: ψ(gender=Male) = 1/2, ψ(age[50,90]) = 5/6.
	if got := g.Filter.Selectivity(); got != 0.5 {
		t.Errorf("ψ(Male)=%v", got)
	}
	if got := age.Filter.Selectivity(); math.Abs(got-5.0/6.0) > 1e-9 {
		t.Errorf("ψ(age)=%v", got)
	}
}

// TestContextsAreMinimalAndValid checks Definitions 3.1/3.2: every
// discovered filter is satisfied by every example (validity), numeric
// ranges are the tightest possible, and derived θ is the minimum
// association strength among examples (minimality).
func TestContextsAreMinimalAndValid(t *testing.T) {
	a := actorsDB(t, 100, 50, 1)
	info := a.Entity("person")
	examples := []int{0, 1, 2, 3} // comedians
	contexts := DiscoverContexts(info, examples, DefaultParams())
	if len(contexts) == 0 {
		t.Fatal("no contexts discovered")
	}
	for _, c := range contexts {
		if !c.Filter.validFor(info, examples) {
			t.Errorf("invalid filter discovered: %v", c.Filter)
		}
		switch c.Filter.Kind {
		case BasicNumeric:
			// Tightening either bound must invalidate the filter.
			tighterLo := *c.Filter
			tighterLo.Lo = c.Filter.Lo + 1e-9
			tighterHi := *c.Filter
			tighterHi.Hi = c.Filter.Hi - 1e-9
			if c.Filter.Lo != c.Filter.Hi && tighterLo.validFor(info, examples) && tighterHi.validFor(info, examples) {
				t.Errorf("numeric filter not minimal: %v", c.Filter)
			}
		case Derived:
			tighter := *c.Filter
			tighter.Theta = c.Filter.Theta + 1
			if tighter.validFor(info, examples) {
				t.Errorf("derived filter not minimal: %v", c.Filter)
			}
		}
	}
}

// TestDerivedContextThetaMin checks the §6.1.2 example: two persons with
// 3 and 5 comedies produce the context ⟨genre, Comedy, 3⟩.
func TestDerivedContextThetaMin(t *testing.T) {
	a := actorsDB(t, 60, 40, 2)
	info := a.Entity("person")
	ptg := info.DerivedByAttr("movie:genre")
	if ptg == nil {
		t.Fatal("persontogenre missing")
	}
	// Pick two comedians with known distinct comedy counts.
	c0 := ptg.Counts(0)["Comedy"]
	c1 := ptg.Counts(1)["Comedy"]
	contexts := DiscoverContexts(info, []int{0, 1}, DefaultParams())
	var derived *Context
	for i := range contexts {
		if contexts[i].Filter.Kind == Derived && contexts[i].Filter.Attr() == "movie:genre" && contexts[i].Filter.Value() == "Comedy" {
			derived = &contexts[i]
		}
	}
	if derived == nil {
		t.Fatal("comedy derived context missing")
	}
	want := c0
	if c1 < c0 {
		want = c1
	}
	if derived.Filter.Theta != want {
		t.Errorf("θ=%d want min(%d,%d)", derived.Filter.Theta, c0, c1)
	}
}

func TestNumericContextSkippedOnMissingValue(t *testing.T) {
	db := relation.NewDatabase("t")
	p := relation.New("person",
		relation.Col("id", relation.Int),
		relation.Col("tag", relation.String),
		relation.Col("age", relation.Int),
	).SetPrimaryKey("id")
	p.MustAppend(relation.IntVal(1), relation.StringVal("a"), relation.IntVal(50))
	p.MustAppend(relation.IntVal(2), relation.StringVal("a"), relation.Null)
	p.MustAppend(relation.IntVal(3), relation.StringVal("b"), relation.IntVal(60))
	db.AddRelation(p)
	db.MarkEntity("person")
	a, err := adb.Build(db, adb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	contexts := DiscoverContexts(a.Entity("person"), []int{0, 1}, DefaultParams())
	if c := findContext(contexts, "age"); c != nil {
		t.Errorf("age context must be skipped when an example has NULL age: %v", c.Filter)
	}
	if c := findContext(contexts, "tag"); c == nil {
		t.Error("shared tag context missing")
	}
}

func TestDisjunctionExtension(t *testing.T) {
	a := fig6DB(t)
	info := a.Entity("person")
	// Tom Cruise (Male) + Julia Roberts (Female): no shared gender value.
	params := DefaultParams()
	contexts := DiscoverContexts(info, []int{0, 3}, params)
	if c := findContext(contexts, "gender"); c != nil {
		t.Errorf("without disjunction there must be no gender context, got %v", c.Filter)
	}
	params.MaxDisjunction = 3
	contexts = DiscoverContexts(info, []int{0, 3}, params)
	c := findContext(contexts, "gender")
	if c == nil {
		t.Fatal("disjunctive gender context missing")
	}
	if len(c.Filter.Values) != 2 {
		t.Errorf("values=%v", c.Filter.Values)
	}
	if got := c.Filter.Selectivity(); got != 1.0 {
		t.Errorf("ψ(Male|Female)=%v want 1", got)
	}
	// Disjunction wider than the cap is not emitted.
	params.MaxDisjunction = 1
	contexts = DiscoverContexts(info, []int{0, 3}, params)
	if c := findContext(contexts, "gender"); c != nil {
		t.Errorf("cap=1 must suppress the disjunction, got %v", c.Filter)
	}
}

func TestEmptyExamples(t *testing.T) {
	a := fig6DB(t)
	if got := DiscoverContexts(a.Entity("person"), nil, DefaultParams()); got != nil {
		t.Errorf("no examples must give no contexts, got %v", got)
	}
}

// TestFilterRowsMatchSatisfiedBy cross-checks EntityRows against
// SatisfiedBy for every discovered filter.
func TestFilterRowsMatchSatisfiedBy(t *testing.T) {
	a := actorsDB(t, 80, 40, 3)
	info := a.Entity("person")
	contexts := DiscoverContexts(info, []int{0, 1, 2}, DefaultParams())
	for _, c := range contexts {
		rows := c.Filter.EntityRows()
		inSet := make(map[int]bool, len(rows))
		for _, r := range rows {
			inSet[r] = true
		}
		for row := 0; row < info.NumRows; row++ {
			if got := c.Filter.SatisfiedBy(info, row); got != inSet[row] {
				t.Errorf("%v: row %d SatisfiedBy=%v but EntityRows membership=%v", c.Filter, row, got, inSet[row])
			}
		}
	}
}

// TestSelectivityMatchesRowFraction checks ψ(φ) = |rows(φ)| / |R| for all
// discovered filters (the definition in §4.2.1).
func TestSelectivityMatchesRowFraction(t *testing.T) {
	a := actorsDB(t, 90, 45, 4)
	info := a.Entity("person")
	contexts := DiscoverContexts(info, []int{0, 1}, DefaultParams())
	for _, c := range contexts {
		want := float64(len(c.Filter.EntityRows())) / float64(info.NumRows)
		if got := c.Filter.Selectivity(); math.Abs(got-want) > 1e-9 {
			t.Errorf("%v: ψ=%v want %v", c.Filter, got, want)
		}
	}
}

func TestIntersectRows(t *testing.T) {
	a := fig6DB(t)
	info := a.Entity("person")
	contexts := DiscoverContexts(info, []int{0, 1}, DefaultParams())
	all := IntersectRows(info, nil)
	if len(all) != 6 {
		t.Errorf("no filters must return all rows, got %d", len(all))
	}
	filters := []*Filter{contexts[0].Filter, contexts[1].Filter}
	rows := IntersectRows(info, filters)
	// Males aged 50-90: Tom Cruise, Clint Eastwood, Tom Hanks.
	if len(rows) != 3 {
		t.Errorf("rows=%v want 3 males in [50,90]", rows)
	}
	for _, r := range rows {
		for _, f := range filters {
			if !f.SatisfiedBy(info, r) {
				t.Errorf("row %d does not satisfy %v", r, f)
			}
		}
	}
}

// TestLemma31ConjunctionValidity: a conjunction of filters is valid iff
// every conjunct is valid (Lemma 3.1), verified via IntersectRows
// containing all examples exactly when each filter contains them.
func TestLemma31ConjunctionValidity(t *testing.T) {
	a := actorsDB(t, 70, 35, 5)
	info := a.Entity("person")
	examples := []int{0, 1}
	contexts := DiscoverContexts(info, examples, DefaultParams())
	var filters []*Filter
	for _, c := range contexts {
		filters = append(filters, c.Filter)
	}
	rows := IntersectRows(info, filters)
	inRows := make(map[int]bool, len(rows))
	for _, r := range rows {
		inRows[r] = true
	}
	for _, ex := range examples {
		if !inRows[ex] {
			t.Errorf("example row %d missing from conjunction of valid filters", ex)
		}
	}
}
