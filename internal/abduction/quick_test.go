package abduction

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAbduceDecisionArithmetic property-checks the Equation 5 decision
// on synthetic decision inputs: for any selectivity ψ ∈ (0,1), prior
// ρ ∈ (0,1), and example count, the include/exclude scores follow the
// closed forms and the decision matches their comparison.
func TestAbduceDecisionArithmetic(t *testing.T) {
	a := fig6DB(t)
	info := a.Entity("person")
	gender := info.BasicByAttr("gender")
	rng := rand.New(rand.NewSource(41))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		params := DefaultParams()
		params.Rho = 0.01 + 0.98*r.Float64()
		numExamples := 1 + r.Intn(20)
		// Use a real filter so ψ comes from the αDB; gender=Male has
		// ψ=0.5 on the Fig 6 fixture.
		ctx := Context{
			Filter:      &Filter{Kind: BasicCategorical, Basic: gender, Values: []string{"Male"}},
			NumExamples: numExamples,
		}
		decisions, selected := Abduce([]Context{ctx}, params)
		d := decisions[0]
		wantInclude := params.Rho // δ=α=λ=1 for this filter
		wantExclude := (1 - params.Rho) * math.Pow(0.5, float64(numExamples))
		if math.Abs(d.Include-wantInclude) > 1e-12 || math.Abs(d.Exclude-wantExclude) > 1e-12 {
			return false
		}
		wantIncluded := wantInclude > wantExclude
		if d.Included != wantIncluded {
			return false
		}
		return (len(selected) == 1) == wantIncluded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestSkewnessInvariants property-checks Appendix B's skewness: shifting
// a distribution leaves skewness unchanged; mirroring negates it.
func TestSkewnessInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(20)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(r.Intn(50))
		}
		s1, ok1 := skewness(vals)
		shifted := make([]float64, n)
		mirrored := make([]float64, n)
		for i, v := range vals {
			shifted[i] = v + 1000
			mirrored[i] = -v
		}
		s2, ok2 := skewness(shifted)
		s3, ok3 := skewness(mirrored)
		if ok1 != ok2 || ok1 != ok3 {
			return false
		}
		if !ok1 {
			return true // degenerate (zero variance) stays degenerate
		}
		return math.Abs(s1-s2) < 1e-6 && math.Abs(s1+s3) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestIntersectRowsSubsetProperty: adding filters can only shrink the
// output (conjunction monotonicity, Lemma 3.1's flip side).
func TestIntersectRowsSubsetProperty(t *testing.T) {
	a := actorsDB(t, 150, 60, 47)
	info := a.Entity("person")
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		rows := make([]int, 0, n)
		seen := map[int]bool{}
		for len(rows) < n {
			r := rng.Intn(info.NumRows)
			if !seen[r] {
				seen[r] = true
				rows = append(rows, r)
			}
		}
		contexts := DiscoverContexts(info, rows, DefaultParams())
		if len(contexts) < 2 {
			continue
		}
		var filters []*Filter
		for _, c := range contexts {
			filters = append(filters, c.Filter)
		}
		prev := IntersectRows(info, filters[:1])
		for k := 2; k <= len(filters); k++ {
			cur := IntersectRows(info, filters[:k])
			if len(cur) > len(prev) {
				t.Fatalf("trial %d: adding filter %d grew output %d -> %d", trial, k, len(prev), len(cur))
			}
			// Subset check.
			inPrev := map[int]bool{}
			for _, r := range prev {
				inPrev[r] = true
			}
			for _, r := range cur {
				if !inPrev[r] {
					t.Fatalf("trial %d: output not monotone subset", trial)
				}
			}
			prev = cur
		}
	}
}

// TestDiscoverContextsDeterministic: context discovery must be a pure
// function of (entity, example rows, params).
func TestDiscoverContextsDeterministic(t *testing.T) {
	a := actorsDB(t, 120, 50, 53)
	info := a.Entity("person")
	rows := []int{2, 5, 8}
	c1 := DiscoverContexts(info, rows, DefaultParams())
	c2 := DiscoverContexts(info, rows, DefaultParams())
	if len(c1) != len(c2) {
		t.Fatalf("non-deterministic context count: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i].Filter.String() != c2[i].Filter.String() {
			t.Fatalf("context %d differs: %v vs %v", i, c1[i].Filter, c2[i].Filter)
		}
	}
}

// TestExampleOrderInvariance: the abduced filter set must not depend on
// the order the examples are given in.
func TestExampleOrderInvariance(t *testing.T) {
	a := actorsDB(t, 120, 50, 59)
	info := a.Entity("person")
	rows := []int{1, 4, 9, 13}
	perm := []int{13, 1, 9, 4}
	r1 := AbduceForEntity(info, BaseQuery{"person", "name"}, rows, DefaultParams())
	r2 := AbduceForEntity(info, BaseQuery{"person", "name"}, perm, DefaultParams())
	if len(r1.Filters) != len(r2.Filters) {
		t.Fatalf("filter count depends on example order: %d vs %d", len(r1.Filters), len(r2.Filters))
	}
	s1 := map[string]bool{}
	for _, f := range r1.Filters {
		s1[f.String()] = true
	}
	for _, f := range r2.Filters {
		if !s1[f.String()] {
			t.Errorf("filter %v only present under one ordering", f)
		}
	}
	if len(r1.OutputRows) != len(r2.OutputRows) {
		t.Error("output depends on example order")
	}
}
