package abduction

import (
	"math"
	"sort"
)

// RecommendExamples implements the paper's §9 "example recommendation to
// increase sample diversity and improve abduction" direction: it ranks
// entities from the current abduced output that the user could confirm
// next. The best next example is one that is in the output (so the user
// plausibly wants it) but disagrees with as much *borderline* evidence
// as possible: confirming it invalidates coincidental filters that
// barely made the cut, and weakens near-included ones — pruning the
// candidate space fastest.
//
// Returns up to k projection-attribute values, most informative first.
// Current examples are never recommended.
func RecommendExamples(res *Result, k int) []string {
	if res == nil || res.info == nil || k <= 0 {
		return nil
	}
	exampleSet := make(map[int]bool, len(res.ExampleRows))
	for _, r := range res.ExampleRows {
		exampleSet[r] = true
	}

	type scored struct {
		row   int
		score float64
	}
	var cands []scored
	for _, row := range res.OutputRows {
		if exampleSet[row] {
			continue
		}
		score := 0.0
		for _, d := range res.Decisions {
			// Borderline weight: decisions whose include/exclude scores
			// are close are one confirming example away from flipping.
			w := borderline(d)
			if w == 0 {
				continue
			}
			if !d.Filter.SatisfiedBy(res.info, row) {
				// Confirming this row invalidates the filter entirely
				// (it would no longer be a valid filter, Definition
				// 3.1) — maximal pruning for included filters, useful
				// signal for excluded ones too.
				score += w
			}
		}
		cands = append(cands, scored{row, score})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	if len(cands) > k {
		cands = cands[:k]
	}
	col := res.info.Rel().Column(res.Base.Attr)
	out := make([]string, 0, len(cands))
	for _, c := range cands {
		v := col.Get(c.row)
		if !v.IsNull() {
			out = append(out, v.String())
		}
	}
	return out
}

// borderline scores how undecided a filter decision is: 1 for a perfect
// tie, decaying with the log-odds gap; decisions with zero prior (α or λ
// pruned) return 0.
func borderline(d FilterDecision) float64 {
	if d.Include <= 0 || d.Exclude <= 0 {
		return 0
	}
	gap := math.Abs(math.Log(d.Include) - math.Log(d.Exclude))
	return 1 / (1 + gap)
}
