package abduction

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// workPool bounds the intra-discovery parallelism of one Discover call:
// the candidate-base-query fan-out, the per-property context walks, and
// the candidate-filter selectivity prefetch all draw helper goroutines
// from one shared semaphore, so nested forEach calls can never
// oversubscribe the Params.Workers budget no matter how the work nests.
//
// The pool is deliberately cooperative with cancellation the same way
// the serial path is: workers poll ctx.Err() before every unit (never
// wait on ctx.Done(), which deadline-free test contexts may not
// implement), so a canceled context stops claiming new units promptly
// and forEach reports the context's error.
type workPool struct {
	// sem holds one slot per helper goroutine beyond the caller;
	// nil means serial (workers <= 1).
	sem chan struct{}
}

// newWorkPool sizes a pool for the given worker budget; 0 (the
// Params.Workers default) means GOMAXPROCS, and 1 yields the serial
// pool, which runs every unit inline with zero goroutine overhead.
func newWorkPool(workers int) *workPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		return &workPool{}
	}
	return &workPool{sem: make(chan struct{}, workers-1)}
}

// forEach runs unit(0..n-1), spreading the units over the caller plus as
// many helper goroutines as the pool's semaphore has free slots — helper
// acquisition never blocks, so a nested forEach inside a saturated pool
// simply runs serial on its caller. Units are claimed from an atomic
// counter (work stealing between uneven units); writers of slot-indexed
// results get a happens-before edge to the caller via the WaitGroup, so
// assembling results by index after forEach returns is race-free and
// deterministic.
//
// Cancellation is polled via ctx.Err() before every unit on every
// worker. On cancellation the remaining units are skipped and the
// context's error is returned; n == 0 returns nil without consulting
// ctx, so empty fan-outs cannot manufacture a cancellation error.
func (p *workPool) forEach(ctx context.Context, n int, unit func(i int)) error {
	if n == 0 {
		return nil
	}
	if p == nil || p.sem == nil || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			unit(i)
		}
		return nil
	}
	var next atomic.Int64
	var failed atomic.Pointer[error]
	run := func() {
		for {
			if err := ctx.Err(); err != nil {
				failed.Store(&err)
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			unit(i)
		}
	}
	var wg sync.WaitGroup
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.sem }()
				run()
			}()
			continue
		default:
		}
		break // pool saturated: the caller works through the rest
	}
	run()
	wg.Wait()
	if errp := failed.Load(); errp != nil {
		return *errp
	}
	return nil
}
