package abduction

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"squid/internal/adb"
	"squid/internal/index"
	"squid/internal/trace"
)

// Typed sentinel errors of the online phase; callers match them with
// errors.Is to distinguish bad input from genuine lookup misses.
var (
	// ErrNoExamples reports that Discover was called with an empty
	// example set.
	ErrNoExamples = errors.New("no examples provided")
	// ErrNoEntities reports that no entity attribute of the database
	// contains every example value, so no base query exists.
	ErrNoEntities = errors.New("no entity attribute contains all examples")
)

// BaseQuery is the minimal project-join query Q* capturing the structure
// of the examples (§6.2): project Attr from the entity relation Entity.
// Semantic-context joins are appended during SQL rendering.
type BaseQuery struct {
	Entity string
	Attr   string
}

// Result is the outcome of query intent discovery for one base query.
type Result struct {
	Base BaseQuery
	// ExampleRows are the entity rows the examples resolved to (after
	// disambiguation).
	ExampleRows []int
	// Decisions holds the per-filter Algorithm 1 computation over the
	// full minimal valid filter set Φ.
	Decisions []FilterDecision
	// Filters is the selected subset ϕ ⊆ Φ.
	Filters []*Filter
	// OutputRows are the entity rows in Qϕ(D).
	OutputRows []int
	// Score is the unnormalized log posterior of the selected subset,
	// used to rank candidate base queries.
	Score float64

	info *adb.EntityInfo
}

// EntityInfo exposes the αDB entity the result is grounded in.
func (r *Result) EntityInfo() *adb.EntityInfo { return r.info }

// OutputValues projects the output rows onto the base query attribute.
func (r *Result) OutputValues() []string {
	col := r.info.Rel().Column(r.Base.Attr)
	out := make([]string, 0, len(r.OutputRows))
	for _, row := range r.OutputRows {
		v := col.Get(row)
		if v.IsNull() {
			continue
		}
		out = append(out, v.String())
	}
	sort.Strings(out)
	return out
}

// AbduceForEntity runs the full online pipeline for examples already
// resolved to rows of one entity relation: context discovery, Algorithm 1,
// and output computation. Params.Workers bounds its parallelism.
func AbduceForEntity(info *adb.EntityInfo, base BaseQuery, exampleRows []int, params Params) *Result {
	//lint:ignore ctxpoll non-cancellable convenience wrapper over abduceForEntityCtx
	res, _ := abduceForEntityCtx(context.Background(), newWorkPool(params.Workers), info, base, exampleRows, params, trace.Span{})
	return res
}

// abduceForEntityCtx is AbduceForEntity with cooperative cancellation
// and a shared worker pool: ctx is consulted between candidate-filter
// evaluations and before the output-row intersection, so a canceled
// context aborts a long abduction mid-flight instead of after the fact;
// the pool fans the per-property context walks and the selectivity
// prefetch out without oversubscribing the discovery-wide budget.
//
// sp is the candidate's trace span (or the zero Span): each pipeline
// phase — context discovery, selectivity prefetch, Algorithm 1, row-set
// prefetch, intersection — nests one child span under it, so a traced
// discovery attributes its time phase by phase. Span structure depends
// only on the candidate's data, never on worker scheduling.
func abduceForEntityCtx(ctx context.Context, pool *workPool, info *adb.EntityInfo, base BaseQuery, exampleRows []int, params Params, sp trace.Span) (*Result, error) {
	cs := sp.Child(trace.PhaseContexts, "")
	contexts, err := discoverContextsCtx(ctx, pool, info, exampleRows, params)
	cs.Add(trace.CounterProperties, int64(len(info.Basic)+len(info.Derived)))
	cs.Add(trace.CounterContexts, int64(len(contexts)))
	cs.End()
	if err != nil {
		return nil, err
	}
	decisions, selected, err := abduceCtx(ctx, pool, contexts, params, sp)
	if err != nil {
		return nil, err
	}
	chosen := make(map[*Filter]bool, len(selected))
	for _, f := range selected {
		chosen[f] = true
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Prefetch the selected filters' row bitsets in parallel; the
	// intersection cascade itself is word ops and stays serial. Each
	// selected filter gets its own rowset span (labeled with the filter),
	// so cache behavior is attributed per property.
	rs := sp.Child(trace.PhaseRows, "")
	err = pool.forEach(ctx, len(selected), func(i int) {
		fsp := trace.Span{}
		if rs.Active() {
			fsp = rs.Child(trace.PhaseRowSet, selected[i].String())
		}
		set := selected[i].rowSetT(fsp)
		if fsp.Active() {
			fsp.Add(trace.CounterRows, int64(set.Count()))
		}
		fsp.End()
	})
	rs.End()
	if err != nil {
		return nil, err
	}
	is := sp.Child(trace.PhaseIntersect, "")
	output := IntersectRows(info, selected)
	is.Add(trace.CounterSelected, int64(len(selected)))
	is.Add(trace.CounterRows, int64(len(output)))
	is.End()
	return &Result{
		Base:        base,
		ExampleRows: exampleRows,
		Decisions:   decisions,
		Filters:     selected,
		OutputRows:  output,
		Score:       LogPosteriorScore(decisions, chosen),
		info:        info,
	}, nil
}

// Discover maps raw example strings to candidate entity columns via the
// inverted index, resolves ambiguity with the provided resolver, abduces
// a query per candidate base query, and returns the results ranked by
// posterior score (best first). It returns an error when no entity
// column contains all examples.
//
// The resolver decides which candidate row each ambiguous example maps
// to; pass nil to take the first candidate (disambiguation lives in
// internal/disambig and is injected by the public API).
//
// Discovery runs against one immutable αDB epoch (adb.AlphaDB.Snapshot
// returns the current one): holding the pointer IS the epoch pin. No
// lock is taken, concurrent writers can never stall the abduction, and
// every lookup — example resolution, selectivity, row sets — answers
// from exactly the state the epoch was published with.
func Discover(a *adb.Epoch, examples []string, params Params, resolver Resolver) ([]*Result, error) {
	//lint:ignore ctxpoll non-cancellable convenience wrapper; DiscoverCtx is the ctx-threading entry point
	return DiscoverCtx(context.Background(), a, examples, params, resolver)
}

// DiscoverCtx is Discover with cooperative cancellation: ctx.Err() is
// checked between candidate base queries and, inside each abduction,
// between candidate-filter evaluations, so canceling the context makes
// even a single long discovery return promptly with ctx's error (wrapped;
// match it with errors.Is).
//
// Params.Workers > 1 (or 0 on a multi-core machine) fans the candidate
// base queries — and, inside each, the per-property context walks and
// selectivity computations — over a bounded worker pool. Candidates
// land in enumeration-order slots and the per-filter math is untouched,
// so the results are byte-identical to the serial path at every worker
// count; only the wall-clock changes.
func DiscoverCtx(ctx context.Context, a *adb.Epoch, examples []string, params Params, resolver Resolver) ([]*Result, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("abduction: %w", ErrNoExamples)
	}
	sp := trace.SpanFrom(ctx)
	res := sp.Child(trace.PhaseResolve, "")
	matches := a.CommonColumns(examples)
	res.Add(trace.CounterCandidates, int64(len(matches)))
	res.End()
	pool := newWorkPool(params.Workers)
	slots := make([]*Result, len(matches))
	errs := make([]error, len(matches))
	ferr := pool.forEach(ctx, len(matches), func(i int) {
		m := matches[i]
		info := a.Entity(m.Key.Relation)
		if info == nil {
			return // match in a non-entity relation (e.g. dimension)
		}
		rows := resolveRows(info, m, resolver, params)
		if rows == nil {
			return
		}
		cand := trace.Span{}
		if sp.Active() {
			cand = sp.Child(trace.PhaseCandidate, m.Key.Relation+"."+m.Key.Column)
		}
		slots[i], errs[i] = abduceForEntityCtx(ctx, pool, info, BaseQuery{Entity: m.Key.Relation, Attr: m.Key.Column}, rows, params, cand)
		cand.End()
	})
	if ferr != nil {
		return nil, fmt.Errorf("abduction: %w", ferr)
	}
	var results []*Result
	for i, res := range slots {
		if errs[i] != nil {
			return nil, fmt.Errorf("abduction: %w", errs[i])
		}
		if res != nil {
			results = append(results, res)
		}
	}
	if len(results) == 0 {
		// Dimension fallback (IQ7-style intents): the examples match a
		// property relation only; the abduced query is the plain
		// projection with no filters.
		for _, m := range matches {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("abduction: %w", err)
			}
			info := a.EphemeralEntity(m.Key.Relation)
			if info == nil {
				continue
			}
			rows := resolveRows(info, m, nil, params)
			if rows == nil {
				continue
			}
			all := make([]int, info.NumRows)
			for i := range all {
				all[i] = i
			}
			results = append(results, &Result{
				Base:        BaseQuery{Entity: m.Key.Relation, Attr: m.Key.Column},
				ExampleRows: rows,
				OutputRows:  all,
				info:        info,
			})
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("abduction: %w (%d examples)", ErrNoEntities, len(examples))
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].Score > results[j].Score })
	return results, nil
}

// Resolver picks one row per example from the ambiguity candidates.
type Resolver func(info *adb.EntityInfo, candidates [][]int, params Params) []int

// resolveRows applies the resolver (or first-candidate fallback) to an
// index match.
func resolveRows(info *adb.EntityInfo, m index.ColumnMatch, resolver Resolver, params Params) []int {
	if resolver != nil && m.Ambiguous() {
		return resolver(info, m.Rows, params)
	}
	rows := make([]int, len(m.Rows))
	for i, cands := range m.Rows {
		if len(cands) == 0 {
			return nil
		}
		rows[i] = cands[0]
	}
	return rows
}
