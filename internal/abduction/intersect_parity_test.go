package abduction

import (
	"math/rand"
	"reflect"
	"testing"

	"squid/internal/adb"
	"squid/internal/index"
)

// scanIntersect is the brute-force oracle: every row the entity has,
// kept iff every filter's SatisfiedBy accepts it. Independent of both
// the bitset algebra and the posting-list machinery.
func scanIntersect(info *adb.EntityInfo, fs []*Filter) []int {
	var out []int
	for row := 0; row < info.NumRows; row++ {
		ok := true
		for _, f := range fs {
			if !f.SatisfiedBy(info, row) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, row)
		}
	}
	return out
}

// mergeIntersect is the pre-bitset IntersectRows algorithm (sorted-merge
// cascade over EntityRows), kept inline as a second reference.
func mergeIntersect(fs []*Filter) []int {
	acc := fs[0].EntityRows()
	for _, f := range fs[1:] {
		acc = index.IntersectSorted(acc, f.EntityRows())
		if len(acc) == 0 {
			return nil
		}
	}
	return acc
}

// TestIntersectRowsMatchesReference drives the bitset IntersectRows
// against two independent references — a brute-force SatisfiedBy scan
// and the old sorted-merge cascade — on every single filter and on
// randomized filter subsets from the discovered contexts of both test
// fixtures, including subsets whose conjunction is empty.
func TestIntersectRowsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fixtures := []struct {
		name     string
		info     *adb.EntityInfo
		examples []int
	}{
		{"fig1", fig1DB(t).Entity("academics"), []int{1, 3}},
		{"actors", actorsDB(t, 80, 40, 3).Entity("person"), []int{0, 1}},
	}
	for _, fx := range fixtures {
		contexts := DiscoverContexts(fx.info, fx.examples, DefaultParams())
		if len(contexts) == 0 {
			t.Fatalf("%s: no contexts discovered", fx.name)
		}
		var filters []*Filter
		for _, c := range contexts {
			filters = append(filters, c.Filter)
		}

		check := func(fs []*Filter) {
			t.Helper()
			got := IntersectRows(fx.info, fs)
			wantScan := scanIntersect(fx.info, fs)
			if !reflect.DeepEqual(got, wantScan) {
				t.Fatalf("%s: IntersectRows(%d filters) = %v, scan oracle %v", fx.name, len(fs), got, wantScan)
			}
			if wantMerge := mergeIntersect(fs); !reflect.DeepEqual(got, wantMerge) {
				t.Fatalf("%s: IntersectRows(%d filters) = %v, merge oracle %v", fx.name, len(fs), got, wantMerge)
			}
		}

		// Every filter alone, then the full conjunction.
		for _, f := range filters {
			check([]*Filter{f})
		}
		check(filters)

		// Randomized subsets (order shuffled too: IntersectRows re-sorts
		// by selectivity internally, the result must not depend on input
		// order).
		for i := 0; i < 30; i++ {
			perm := rng.Perm(len(filters))
			k := 1 + rng.Intn(len(filters))
			fs := make([]*Filter, 0, k)
			for _, j := range perm[:k] {
				fs = append(fs, filters[j])
			}
			check(fs)
		}
	}

	// No filters at all: the contract is "all rows".
	info := fixtures[0].info
	if got := IntersectRows(info, nil); len(got) != info.NumRows {
		t.Fatalf("IntersectRows with no filters = %d rows, want %d", len(got), info.NumRows)
	}
}
