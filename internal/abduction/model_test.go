package abduction

import (
	"math"
	"testing"
)

func TestSkewness(t *testing.T) {
	// Symmetric sample: skewness ~ 0.
	if s, ok := skewness([]float64{1, 2, 3, 4, 5}); !ok || math.Abs(s) > 1e-9 {
		t.Errorf("symmetric skewness=%v ok=%v", s, ok)
	}
	// Right-skewed, heavy-tailed sample: skewness > 0 (Case A shape).
	if s, ok := skewness([]float64{1, 1, 1, 2, 30}); !ok || s <= 1 {
		t.Errorf("right-skewed skewness=%v ok=%v", s, ok)
	}
	// Undefined cases.
	if _, ok := skewness([]float64{1, 2}); ok {
		t.Error("n<3 must be undefined")
	}
	if _, ok := skewness([]float64{3, 3, 3, 3}); ok {
		t.Error("zero variance must be undefined")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-9 {
		t.Errorf("mean=%v", mean)
	}
	if math.Abs(std-2.13808993) > 1e-6 {
		t.Errorf("std=%v", std)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Error("empty sample")
	}
	if _, s := meanStd([]float64{5}); s != 0 {
		t.Error("single sample std must be 0")
	}
}

// mkDerivedFilters fabricates a family of derived filters over one
// synthetic property with the given strengths, for λ tests (Fig 8).
func mkDerivedFilters(t *testing.T, strengths []int) []*Filter {
	t.Helper()
	// A minimal αDB with one derived property to attach filters to.
	a := actorsDB(t, 30, 20, 9)
	prop := a.Entity("person").DerivedByAttr("movie:genre")
	if prop == nil {
		t.Fatal("fixture missing derived property")
	}
	names := []string{"Comedy", "SciFi", "Drama", "Action", "Thriller", "Fantasy", "Crime"}
	fs := make([]*Filter, len(strengths))
	for i, s := range strengths {
		fs[i] = &Filter{Kind: Derived, Derivd: prop, Values: []string{names[i%len(names)]}, Theta: s}
	}
	return fs
}

// TestFig8CaseA: strengths {30,25,3,2,1} are heavy-tailed (sample
// skewness ≈ 0.67 under the Appendix B formula); with τs below that and
// k=1, the top filter is an outlier with λ=1 while the weak tail gets
// λ=0 — the Case A intuition of Fig 8.
func TestFig8CaseA(t *testing.T) {
	params := DefaultParams()
	params.TauS = 0.5
	params.OutlierK = 1
	fs := mkDerivedFilters(t, []int{30, 25, 3, 2, 1})
	lambdas := lambdaImpacts(fs, params)
	if lambdas[fs[0]] != 1 {
		t.Errorf("λ(Comedy,30)=%v want 1", lambdas[fs[0]])
	}
	if lambdas[fs[2]] != 0 || lambdas[fs[3]] != 0 || lambdas[fs[4]] != 0 {
		t.Errorf("low filters must get λ=0: %v %v %v", lambdas[fs[2]], lambdas[fs[3]], lambdas[fs[4]])
	}
}

// TestFig8CaseB: strengths {12,10,10,9,9} are flat; no filter stands out,
// all get λ=0.
func TestFig8CaseB(t *testing.T) {
	fs := mkDerivedFilters(t, []int{12, 10, 10, 9, 9})
	lambdas := lambdaImpacts(fs, DefaultParams())
	for i, f := range fs {
		if lambdas[f] != 0 {
			t.Errorf("filter %d: λ=%v want 0 (flat family)", i, lambdas[f])
		}
	}
}

func TestLambdaSmallFamilyAllOutliers(t *testing.T) {
	// n < 3: skewness undefined, all elements treated as outliers.
	fs := mkDerivedFilters(t, []int{7, 3})
	lambdas := lambdaImpacts(fs, DefaultParams())
	if lambdas[fs[0]] != 1 || lambdas[fs[1]] != 1 {
		t.Errorf("small family must have λ=1: %v %v", lambdas[fs[0]], lambdas[fs[1]])
	}
}

func TestLambdaBasicAlwaysOne(t *testing.T) {
	a := fig6DB(t)
	prop := a.Entity("person").BasicByAttr("gender")
	f := &Filter{Kind: BasicCategorical, Basic: prop, Values: []string{"Male"}}
	lambdas := lambdaImpacts([]*Filter{f}, DefaultParams())
	if lambdas[f] != 1 {
		t.Errorf("basic λ=%v", lambdas[f])
	}
}

func TestLambdaDisabled(t *testing.T) {
	params := DefaultParams()
	params.DisableOutlier = true
	fs := mkDerivedFilters(t, []int{12, 10, 10, 9, 9})
	lambdas := lambdaImpacts(fs, params)
	for _, f := range fs {
		if lambdas[f] != 1 {
			t.Error("τs=N/A must force λ=1")
		}
	}
}

func TestAlphaImpact(t *testing.T) {
	params := DefaultParams() // τa = 5
	fs := mkDerivedFilters(t, []int{4, 5})
	if alphaImpact(fs[0], params) != 0 {
		t.Error("θ=4 < τa=5 must be insignificant")
	}
	if alphaImpact(fs[1], params) != 1 {
		t.Error("θ=5 ≥ τa=5 must be significant")
	}
	a := fig6DB(t)
	basic := &Filter{Kind: BasicCategorical, Basic: a.Entity("person").BasicByAttr("gender"), Values: []string{"Male"}}
	if alphaImpact(basic, params) != 1 {
		t.Error("basic filters always have α=1")
	}
}

func TestDeltaImpact(t *testing.T) {
	p := DefaultParams() // η=0.5, γ=2
	if got := p.deltaImpact(0.3); got != 1 {
		t.Errorf("coverage below η must not be penalized: %v", got)
	}
	if got := p.deltaImpact(1.0); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("coverage 1.0 with γ=2: δ=%v want 0.25", got)
	}
	p.Gamma = 0
	if got := p.deltaImpact(1.0); got != 1 {
		t.Errorf("γ=0 disables the penalty: %v", got)
	}
}

// TestExample21Abduction reproduces Example 2.1: with two examples
// sharing interest = data management (ψ = 3/6 over the full academics
// table), the filter is included once enough examples are seen.
func TestExample21Abduction(t *testing.T) {
	a := fig1DB(t)
	info := a.Entity("academics")
	// Rows 1 and 3 are Dan Suciu and Sam Madden.
	contexts := DiscoverContexts(info, []int{1, 3}, DefaultParams())
	var dm *Context
	for i := range contexts {
		if contexts[i].Filter.Attr() == "interest" && contexts[i].Filter.Value() == "data management" {
			dm = &contexts[i]
		}
	}
	if dm == nil {
		t.Fatalf("data management context missing: %v", contexts)
	}
	if got := dm.Filter.Selectivity(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("ψ=%v want 3/6", got)
	}
	// With ρ=0.1 and two examples: include=0.1, exclude=0.9·0.25=0.225 →
	// not yet included; with four examples exclude=0.9·0.0625≈0.056 →
	// included. This mirrors the paper's "more examples → more
	// confidence" behavior.
	_, selected := Abduce(contexts, DefaultParams())
	if containsFilter(selected, dm.Filter) {
		t.Error("2 examples should not yet overcome ρ=0.1")
	}
	contexts4 := DiscoverContexts(info, []int{1, 3, 5}, DefaultParams())
	// 3 examples: exclude = 0.9·0.125 = 0.1125 > 0.1 still excluded;
	// use a slightly higher prior to include.
	params := DefaultParams()
	params.Rho = 0.2
	_, selected4 := Abduce(contexts4, params)
	found := false
	for _, f := range selected4 {
		if f.Attr() == "interest" && f.Value() == "data management" {
			found = true
		}
	}
	if !found {
		t.Errorf("interest filter not selected with 3 examples and ρ=0.2: %v", selected4)
	}
}

func containsFilter(fs []*Filter, f *Filter) bool {
	for _, g := range fs {
		if g == f {
			return true
		}
	}
	return false
}

// TestAbduceDecisionRule checks the include/exclude arithmetic of
// Algorithm 1 on a hand-computed case.
func TestAbduceDecisionRule(t *testing.T) {
	a := fig6DB(t)
	info := a.Entity("person")
	contexts := DiscoverContexts(info, []int{0, 1, 2}, DefaultParams()) // all males
	decisions, _ := Abduce(contexts, DefaultParams())
	for _, d := range decisions {
		if d.Filter.Attr() != "gender" {
			continue
		}
		// ψ(Male)=0.5, |E|=3: include=0.1, exclude=0.9·0.125=0.1125.
		if math.Abs(d.Include-0.1) > 1e-9 {
			t.Errorf("include=%v", d.Include)
		}
		if math.Abs(d.Exclude-0.1125) > 1e-9 {
			t.Errorf("exclude=%v", d.Exclude)
		}
		if d.Included {
			t.Error("gender filter must be excluded at |E|=3, ρ=0.1")
		}
	}
}

// TestTieDropsFilter checks the Occam's-razor tie rule (Appendix C).
func TestTieDropsFilter(t *testing.T) {
	a := fig6DB(t)
	info := a.Entity("person")
	contexts := DiscoverContexts(info, []int{0, 1, 2}, DefaultParams())
	var g *Context
	for i := range contexts {
		if contexts[i].Filter.Attr() == "gender" {
			g = &contexts[i]
		}
	}
	if g == nil {
		t.Fatal("no gender context")
	}
	// Solve ρ = (1−ρ)·ψ^|E| for ψ=0.5, |E|=3: ρ = 0.125/1.125 = 1/9.
	params := DefaultParams()
	params.Rho = 1.0 / 9.0
	decisions, selected := Abduce([]Context{*g}, params)
	if math.Abs(decisions[0].Include-decisions[0].Exclude) > 1e-12 {
		t.Fatalf("expected tie: include=%v exclude=%v", decisions[0].Include, decisions[0].Exclude)
	}
	if len(selected) != 0 {
		t.Error("tie must drop the filter")
	}
}
