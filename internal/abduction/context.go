package abduction

import (
	"context"
	"sort"
	"sync"

	"squid/internal/adb"
)

// Context is a semantic context x = (p, |E|): a semantic property
// observed across all |E| examples (§4.1). Each context corresponds to
// one minimal valid filter.
type Context struct {
	Filter      *Filter
	NumExamples int
}

// DiscoverContexts walks every semantic property of the entity relation
// and emits the semantic contexts exhibited by the example rows
// (§6.1.2), each paired with its minimal valid filter (Definition 3.2):
//
//   - basic categorical: one context per value shared by all examples
//     (multi-valued attributes can share several values, e.g. the
//     Dunkirk/Logan/Taken genres Action and Thriller);
//   - basic numeric: the tightest range [min, max] of the example
//     values, provided every example has a value;
//   - derived: one context per value all examples are associated with,
//     at θ = the minimum association strength among the examples.
//
// With Params.MaxDisjunction > 0, single-valued categorical attributes
// whose examples take 2..k distinct values yield a disjunctive IN filter
// (the paper's optional footnote-7 extension).
func DiscoverContexts(info *adb.EntityInfo, exampleRows []int, params Params) []Context {
	//lint:ignore ctxpoll non-cancellable convenience wrapper over discoverContextsCtx
	out, _ := discoverContextsCtx(context.Background(), nil, info, exampleRows, params)
	return out
}

// discoverContextsCtx is DiscoverContexts with cooperative cancellation
// and a worker pool: every basic and derived property is an independent
// unit of work, fanned over the pool, and each unit's contexts land in
// an enumeration-order slot — the concatenation is exactly the serial
// walk's output, property by property, so parallelism never reorders
// the candidate filter set. Each property's own context list is sorted
// internally (by value), so output bytes are identical at any worker
// count.
func discoverContextsCtx(ctx context.Context, pool *workPool, info *adb.EntityInfo, exampleRows []int, params Params) ([]Context, error) {
	if len(exampleRows) == 0 {
		return nil, nil
	}
	st := newExampleState(info, exampleRows, params)
	nb := len(info.Basic)
	perProp := make([][]Context, nb+len(info.Derived))
	err := pool.forEach(ctx, len(perProp), func(i int) {
		if i < nb {
			prop := info.Basic[i]
			switch prop.Kind {
			case adb.Categorical:
				perProp[i] = categoricalContexts(prop, exampleRows, params)
			case adb.Numeric:
				if f, ok := numericContext(prop, exampleRows); ok {
					perProp[i] = []Context{{Filter: f, NumExamples: len(exampleRows)}}
				}
			}
		} else {
			perProp[i] = derivedContexts(st, info.Derived[i-nb], params)
		}
	})
	if err != nil {
		return nil, err
	}
	var out []Context
	for _, cs := range perProp {
		out = append(out, cs...)
	}
	return out, nil
}

// exampleState is the shared per-example lookup state of one context
// discovery: entity ids resolved once, and per-degree-property
// normalization denominators computed once and reused by every derived
// property sharing that association (instead of re-deriving them per
// property as the scan-based pipeline did).
type exampleState struct {
	info *adb.EntityInfo
	rows []int
	ids  []int64
	// mu guards degrees: derived-property units run concurrently under
	// the discovery pool and share the memo.
	mu sync.Mutex
	// degrees memoizes, per degree property, the per-example total
	// association counts.
	degrees map[*adb.DerivedProperty][]float64
}

func newExampleState(info *adb.EntityInfo, exampleRows []int, params Params) *exampleState {
	st := &exampleState{info: info, rows: exampleRows}
	st.ids = make([]int64, len(exampleRows))
	for i, row := range exampleRows {
		st.ids[i] = info.IDByRow(row)
	}
	if params.NormalizeAssociation {
		st.degrees = make(map[*adb.DerivedProperty][]float64)
	}
	return st
}

// degreesFor returns the per-example degree (total association count)
// vector for the given degree property, computing it once.
func (st *exampleState) degreesFor(degree *adb.DerivedProperty) []float64 {
	if degree == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if d, ok := st.degrees[degree]; ok {
		return d
	}
	d := make([]float64, len(st.rows))
	for i, row := range st.rows {
		d[i] = float64(degree.StrengthOf(row, degree.Via))
	}
	st.degrees[degree] = d
	return d
}

// categoricalContexts emits shared-value contexts for a categorical
// basic property. The value sets intersect as dictionary codes — int32
// map operations with no string hashing; codes decode to strings only
// when a filter is emitted.
func categoricalContexts(prop *adb.BasicProperty, exampleRows []int, params Params) []Context {
	// Intersect the value-code sets across examples.
	shared := make(map[int32]int)
	for _, c := range dedupCodes(prop.ValueCodes(exampleRows[0])) {
		shared[c] = 1
	}
	for _, row := range exampleRows[1:] {
		if len(shared) == 0 {
			break
		}
		for _, c := range dedupCodes(prop.ValueCodes(row)) {
			if n, ok := shared[c]; ok && n == 1 {
				// mark seen this round by bumping; reset below
				shared[c] = 2
			}
		}
		for c, n := range shared {
			if n == 2 {
				shared[c] = 1
			} else {
				delete(shared, c)
			}
		}
	}
	var out []Context
	for _, v := range decodeSorted(prop, shared) {
		out = append(out, Context{
			Filter:      &Filter{Kind: BasicCategorical, Basic: prop, Values: []string{v}},
			NumExamples: len(exampleRows),
		})
	}
	if len(out) > 0 || params.MaxDisjunction == 0 || prop.MultiValued {
		return out
	}
	// Disjunction extension: no single shared value — consider the set
	// of distinct values the examples take, if small enough.
	distinct := make(map[int32]struct{})
	for _, row := range exampleRows {
		codes := prop.ValueCodes(row)
		if len(codes) == 0 {
			return out // an example lacks the property: no valid filter
		}
		distinct[codes[0]] = struct{}{}
	}
	if len(distinct) < 2 || len(distinct) > params.MaxDisjunction {
		return out
	}
	vals := make([]string, 0, len(distinct))
	for c := range distinct {
		vals = append(vals, prop.DecodeValue(c))
	}
	sort.Strings(vals)
	out = append(out, Context{
		Filter:      &Filter{Kind: BasicCategorical, Basic: prop, Values: vals},
		NumExamples: len(exampleRows),
	})
	return out
}

// decodeSorted decodes the keys of a code-keyed map and sorts them.
func decodeSorted[V any](prop *adb.BasicProperty, m map[int32]V) []string {
	out := make([]string, 0, len(m))
	for c := range m {
		out = append(out, prop.DecodeValue(c))
	}
	sort.Strings(out)
	return out
}

// numericContext emits the tightest-range context for a numeric basic
// property; the range is minimal by Definition 3.2 (shrinking either
// bound would exclude an example).
func numericContext(prop *adb.BasicProperty, exampleRows []int) (*Filter, bool) {
	lo, hi := 0.0, 0.0
	for i, row := range exampleRows {
		v, ok := prop.NumValue(row)
		if !ok {
			return nil, false
		}
		if i == 0 || v < lo {
			lo = v
		}
		if i == 0 || v > hi {
			hi = v
		}
	}
	return &Filter{Kind: BasicNumeric, Basic: prop, Lo: lo, Hi: hi}, true
}

// derivedContexts emits contexts for a derived property: one per value
// that every example is associated with, at the minimum observed
// strength θmin (§6.1.2 "Derived property"). Entity ids and
// normalization degrees come precomputed from the shared example state.
func derivedContexts(st *exampleState, prop *adb.DerivedProperty, params Params) []Context {
	exampleRows := st.rows
	var degree *adb.DerivedProperty
	if params.NormalizeAssociation {
		degree = st.info.DerivedByAttr(prop.Via + ":count")
	}
	degs := st.degreesFor(degree)

	type agg struct {
		minCount int
		minFrac  float64
		seen     int
	}
	// Intersect the per-example association maps as value codes of the
	// derived relation's dictionary — integer comparisons throughout;
	// values decode to strings only when a filter is emitted.
	shared := make(map[int32]*agg)
	for i := range exampleRows {
		counts := prop.CountsCodes(st.ids[i])
		d := 0.0
		if degs != nil {
			d = degs[i]
		}
		for _, cc := range counts {
			v, c := cc.Code, cc.Count
			frac := 0.0
			if d > 0 {
				frac = float64(c) / d
			}
			if i == 0 {
				shared[v] = &agg{minCount: c, minFrac: frac, seen: 1}
				continue
			}
			a, ok := shared[v]
			if !ok || a.seen != i {
				continue
			}
			a.seen++
			if c < a.minCount {
				a.minCount = c
			}
			if frac < a.minFrac {
				a.minFrac = frac
			}
		}
		// Drop values not seen by this example.
		for v, a := range shared {
			if a.seen != i+1 {
				delete(shared, v)
			}
		}
	}
	codes := make([]int32, 0, len(shared))
	for c := range shared {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return prop.DecodeValue(codes[i]) < prop.DecodeValue(codes[j]) })
	var out []Context
	for _, code := range codes {
		a := shared[code]
		f := &Filter{
			Kind:   Derived,
			Derivd: prop,
			Values: []string{prop.DecodeValue(code)},
			Theta:  a.minCount,
		}
		// Normalization needs the companion degree property; derived
		// properties without one (self-edge associations label their
		// degree differently) keep the absolute threshold.
		if params.NormalizeAssociation && degree != nil {
			f.NormUse = true
			f.ThetaN = a.minFrac
			f.degree = degree
		}
		out = append(out, Context{Filter: f, NumExamples: len(exampleRows)})
	}
	return out
}

// dedupCodes removes duplicate codes, preserving first-appearance order.
func dedupCodes(xs []int32) []int32 {
	if len(xs) < 2 {
		return xs
	}
	seen := make(map[int32]struct{}, len(xs))
	out := make([]int32, 0, len(xs))
	for _, x := range xs {
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	return out
}
