package abduction

import (
	"testing"

	"squid/internal/adb"
	"squid/internal/relation"
)

// TestNormalizedSelfEdgeNoDegree regresses a crash in the index-backed
// row-set path: self-edge associations qualify their degree attribute
// (movie_movie_id:count), so the plain "movie:count" lookup during
// normalization finds nothing. Filters over such properties must fall
// back to the absolute threshold instead of dereferencing a nil degree
// property.
func TestNormalizedSelfEdgeNoDegree(t *testing.T) {
	db := relation.NewDatabase("selfref")
	movie := relation.New("movie",
		relation.Col("id", relation.Int),
		relation.Col("title", relation.String),
		relation.Col("kind", relation.String),
	).SetPrimaryKey("id")
	for i := int64(0); i < 6; i++ {
		kind := "feature"
		if i%2 == 0 {
			kind = "short"
		}
		movie.MustAppend(relation.IntVal(i), relation.StringVal("M"+string(rune('A'+i))), relation.StringVal(kind))
	}
	db.AddRelation(movie)
	db.MarkEntity("movie")

	sequel := relation.New("sequelof",
		relation.Col("movie_id", relation.Int),
		relation.Col("original_id", relation.Int),
	).AddForeignKey("movie_id", "movie", "id").AddForeignKey("original_id", "movie", "id")
	sequel.MustAppend(relation.IntVal(1), relation.IntVal(0))
	sequel.MustAppend(relation.IntVal(2), relation.IntVal(0))
	sequel.MustAppend(relation.IntVal(3), relation.IntVal(2))
	db.AddRelation(sequel)

	a, err := adb.Build(db, adb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.NormalizeAssociation = true

	// MB and MD are both sequels (movie_original_id associations), so
	// derived contexts over the self-edge exist; with normalization on
	// and no matching plain degree attribute this used to panic inside
	// EntityRows.
	results, err := Discover(a.Snapshot(), []string{"MB", "MD"}, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	for _, d := range res.Decisions {
		if d.Filter.Kind != Derived {
			continue
		}
		if d.Filter.NormUse {
			t.Errorf("filter %s uses normalization without a degree property", d.Filter)
		}
		_ = d.Filter.EntityRows() // must not panic
		if !d.Filter.validFor(res.EntityInfo(), res.ExampleRows) {
			t.Errorf("filter %s not valid for the examples", d.Filter)
		}
	}
}
