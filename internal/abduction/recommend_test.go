package abduction

import (
	"testing"
)

func TestRecommendExamples(t *testing.T) {
	a := actorsDB(t, 200, 60, 23)
	info := a.Entity("person")
	examples := []int{0, 3, 7}
	res := AbduceForEntity(info, BaseQuery{"person", "name"}, examples, DefaultParams())
	recs := RecommendExamples(res, 5)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	if len(recs) > 5 {
		t.Fatalf("too many recommendations: %d", len(recs))
	}
	// Recommendations must come from the current output and not repeat
	// examples.
	outSet := map[string]bool{}
	for _, v := range res.OutputValues() {
		outSet[v] = true
	}
	exSet := map[string]bool{}
	col := info.Rel().Column("name")
	for _, r := range examples {
		exSet[col.Str(r)] = true
	}
	for _, rec := range recs {
		if !outSet[rec] {
			t.Errorf("recommendation %q not in abduced output", rec)
		}
		if exSet[rec] {
			t.Errorf("recommendation %q repeats an example", rec)
		}
	}
}

func TestRecommendExamplesDegenerate(t *testing.T) {
	if got := RecommendExamples(nil, 3); got != nil {
		t.Error("nil result must recommend nothing")
	}
	a := actorsDB(t, 100, 40, 29)
	info := a.Entity("person")
	res := AbduceForEntity(info, BaseQuery{"person", "name"}, []int{0, 1}, DefaultParams())
	if got := RecommendExamples(res, 0); got != nil {
		t.Error("k=0 must recommend nothing")
	}
	// k larger than the candidate pool is fine.
	recs := RecommendExamples(res, 10000)
	if len(recs) > info.NumRows {
		t.Error("more recommendations than entities")
	}
}

func TestBorderlineWeight(t *testing.T) {
	tie := FilterDecision{Include: 0.1, Exclude: 0.1}
	if got := borderline(tie); got != 1 {
		t.Errorf("tie weight=%v want 1", got)
	}
	lopsided := FilterDecision{Include: 0.5, Exclude: 1e-10}
	if got := borderline(lopsided); got > 0.05 {
		t.Errorf("lopsided weight=%v want near 0", got)
	}
	pruned := FilterDecision{Include: 0, Exclude: 0.3}
	if got := borderline(pruned); got != 0 {
		t.Errorf("pruned filter weight=%v want 0", got)
	}
}

// TestRecommendationPrunesCandidates simulates the interactive loop: the
// user confirms a recommended example, and the candidate filter count
// must not grow (confirming diversity-seeking examples prunes filters).
func TestRecommendationPrunesCandidates(t *testing.T) {
	a := actorsDB(t, 200, 60, 31)
	info := a.Entity("person")
	examples := []int{0, 3}
	res := AbduceForEntity(info, BaseQuery{"person", "name"}, examples, DefaultParams())
	before := len(res.Decisions)
	recs := RecommendExamples(res, 1)
	if len(recs) == 0 {
		t.Skip("no recommendation available in fixture")
	}
	// Resolve the recommended value back to its row.
	col := info.Rel().Column("name")
	recRow := -1
	for row := 0; row < info.NumRows; row++ {
		if col.Str(row) == recs[0] {
			recRow = row
			break
		}
	}
	if recRow < 0 {
		t.Fatal("recommended value not resolvable")
	}
	res2 := AbduceForEntity(info, BaseQuery{"person", "name"}, append(examples, recRow), DefaultParams())
	if len(res2.Decisions) > before {
		t.Errorf("confirming a diversity example grew the candidate set: %d -> %d", before, len(res2.Decisions))
	}
}
