package abduction

import (
	"fmt"
	"sort"
	"strings"

	"squid/internal/adb"
	"squid/internal/index"
	"squid/internal/trace"
)

// FilterKind classifies semantic property filters (§3.1).
type FilterKind int

const (
	// BasicCategorical is φ⟨A,v,⊥⟩ on a categorical attribute
	// (possibly disjunctive: A IN (v1..vk)).
	BasicCategorical FilterKind = iota
	// BasicNumeric is φ⟨A,[lo,hi],⊥⟩ on a numeric attribute.
	BasicNumeric
	// Derived is φ⟨A,v,θ⟩: association with value v at strength ≥ θ.
	Derived
)

// Filter is a semantic property filter φ. A filter references the αDB
// property it constrains, so selectivity and satisfying-entity lookups
// are O(log n) against precomputed statistics.
type Filter struct {
	Kind FilterKind

	Basic   *adb.BasicProperty
	Derivd  *adb.DerivedProperty
	Values  []string // categorical value(s), sorted; single unless disjunctive
	Lo, Hi  float64  // numeric range (BasicNumeric)
	Theta   int      // association strength threshold (Derived, absolute)
	ThetaN  float64  // normalized strength threshold (Derived, normalized mode)
	NormUse bool     // whether ThetaN is in effect

	// degree is the companion degree property used to normalize
	// association strengths (set only in normalized mode).
	degree *adb.DerivedProperty

	// Per-filter memos. A filter references properties of one immutable
	// αDB epoch, whose statistics never change for the lifetime of the
	// pointer (copy-on-write inserts publish clones under fresh
	// identities), so the memos can never go stale — the generation
	// re-pinning machinery the locked αDB needed is gone. A Filter
	// belongs to one discovery; the intra-discovery worker pool touches
	// each filter from at most one goroutine per phase, with a
	// WaitGroup barrier before the next phase reads the memos, so they
	// need no locking. Cross-discovery reuse happens one layer down in
	// the αDB's selectivity cache.
	selVal  float64
	selOK   bool
	rowSet  *index.RowSet
	setOK   bool
	rowsVal []int
	rowsOK  bool
}

// Attr returns the display attribute name.
func (f *Filter) Attr() string {
	if f.Kind == Derived {
		return f.Derivd.Attr
	}
	return f.Basic.Attr
}

// Value returns the single categorical value (first for disjunctions).
func (f *Filter) Value() string {
	if len(f.Values) == 0 {
		return ""
	}
	return f.Values[0]
}

// String renders the filter in the paper's φ⟨A,V,θ⟩ notation.
func (f *Filter) String() string {
	switch f.Kind {
	case BasicCategorical:
		return fmt.Sprintf("φ⟨%s,%s,⊥⟩", f.Attr(), strings.Join(f.Values, "|"))
	case BasicNumeric:
		return fmt.Sprintf("φ⟨%s,[%g,%g],⊥⟩", f.Attr(), f.Lo, f.Hi)
	default:
		if f.NormUse {
			return fmt.Sprintf("φ⟨%s,%s,%.2f⟩", f.Attr(), f.Value(), f.ThetaN)
		}
		return fmt.Sprintf("φ⟨%s,%s,%d⟩", f.Attr(), f.Value(), f.Theta)
	}
}

// Selectivity returns ψ(φ): the fraction of base-query tuples satisfying
// the filter (§4.2.1), from the αDB's precomputed statistics. The value
// is memoized per filter, so callers (Algorithm 1, the intersection
// planner's sort) can ask repeatedly at map-read cost.
func (f *Filter) Selectivity() float64 {
	return f.selectivityT(trace.Span{})
}

// selectivityT is Selectivity with cache events attributed to sp (the
// branches that materialize a row set route through the αDB cache).
func (f *Filter) selectivityT(sp trace.Span) float64 {
	if f.selOK {
		return f.selVal
	}
	switch f.Kind {
	case BasicCategorical:
		if len(f.Values) == 1 {
			f.selVal = f.Basic.CategoricalSelectivity(f.Values[0])
		} else {
			// Disjunction: count entities holding any value. For
			// multi-valued attributes the per-value sets can overlap,
			// so count the union exactly — a popcount over the cached
			// bitset.
			f.selVal = float64(f.rowSetT(sp).Count()) / float64(max(1, f.Basic.NumEntities()))
		}
	case BasicNumeric:
		f.selVal = f.Basic.RangeSelectivity(f.Lo, f.Hi)
	default:
		if f.NormUse {
			f.selVal = float64(f.rowSetT(sp).Count()) / float64(max(1, f.Derivd.NumEntities()))
		} else {
			f.selVal = f.Derivd.Selectivity(f.Value(), f.Theta)
		}
	}
	f.selOK = true
	return f.selVal
}

// DomainCoverage returns the fraction of the attribute domain the filter
// covers (Appendix A input to δ).
func (f *Filter) DomainCoverage() float64 {
	switch f.Kind {
	case BasicCategorical:
		return f.Basic.CategoricalDomainCoverage(len(f.Values))
	case BasicNumeric:
		return f.Basic.DomainCoverage(f.Lo, f.Hi)
	default:
		// Derived filters are value-point conditions; breadth is
		// governed by α and λ instead.
		return 0
	}
}

// RowSet returns the satisfying-entity rows as a dense bitset, straight
// from the αDB's indexes and memoized row-set cache — no column
// rescans. The returned set aliases αDB-cache storage; callers must not
// mutate it (Clone first).
func (f *Filter) RowSet() *index.RowSet {
	return f.rowSetT(trace.Span{})
}

// rowSetT is RowSet with cache events attributed to sp.
func (f *Filter) rowSetT(sp trace.Span) *index.RowSet {
	if f.setOK {
		return f.rowSet
	}
	switch f.Kind {
	case BasicCategorical:
		f.rowSet = f.Basic.EntityRowSetWithAnyValueT(f.Values, sp)
	case BasicNumeric:
		f.rowSet = f.Basic.EntityRowSetInRangeT(f.Lo, f.Hi, sp)
	default:
		if f.NormUse {
			f.rowSet = f.Derivd.EntityRowSetWithNormStrengthT(f.Value(), f.ThetaN, f.degree, sp)
		} else {
			f.rowSet = f.Derivd.EntityRowSetWithStrengthT(f.Value(), f.Theta, sp)
		}
	}
	f.setOK = true
	return f.rowSet
}

// EntityRows returns the sorted (ascending) rows of the entity relation
// satisfying the filter — the []int decoding of RowSet, memoized per
// filter. Callers must not mutate the returned slice.
func (f *Filter) EntityRows() []int {
	if f.rowsOK {
		return f.rowsVal
	}
	f.rowsVal = f.RowSet().ToSorted()
	f.rowsOK = true
	return f.rowsVal
}

// SatisfiedBy reports whether the entity at row satisfies the filter.
// Categorical membership compares dictionary codes, not strings.
func (f *Filter) SatisfiedBy(info *adb.EntityInfo, row int) bool {
	switch f.Kind {
	case BasicCategorical:
		codes := f.Basic.ValueCodes(row)
		for _, want := range f.Values {
			wc, ok := f.Basic.LookupCode(want)
			if !ok {
				continue
			}
			for _, c := range codes {
				if c == wc {
					return true
				}
			}
		}
		return false
	case BasicNumeric:
		v, ok := f.Basic.NumValue(row)
		return ok && v >= f.Lo && v <= f.Hi
	default:
		c := f.Derivd.StrengthOf(row, f.Value())
		if f.NormUse {
			d := f.degreeOf(row)
			return d > 0 && float64(c)/d >= f.ThetaN
		}
		return c >= f.Theta
	}
}

// degreeOf returns the entity's total association count for the derived
// property's via-entity (the normalization denominator), or 0; an
// O(log n) posting-list search.
func (f *Filter) degreeOf(row int) float64 {
	if f.degree == nil {
		return 0
	}
	// The degree property has a single pseudo-value named after the
	// associated entity relation.
	return float64(f.degree.StrengthOf(row, f.degree.Via))
}

// IntersectRows intersects the satisfying-row sets of all filters,
// starting from the full entity relation; it returns the output rows of
// the abduced query Qϕ (used to measure precision/recall without a full
// engine round trip). Each filter's row set is an adaptive RowSet from
// the αDB cache. The cascade is seeded by cloning the most selective
// filter's set — a clone preserves the form, so a highly-selective
// sparse seed stays sparse the whole way down: ANDing against the
// remaining sets gallops (sparse×sparse) or bitmap-probes
// (sparse×dense) per member instead of scanning the universe's words,
// and never allocates a bitset. Aborted the moment the accumulator
// empties.
func IntersectRows(info *adb.EntityInfo, filters []*Filter) []int {
	if len(filters) == 0 {
		all := make([]int, info.NumRows)
		for i := range all {
			all[i] = i
		}
		return all
	}
	// Order filters by ascending selectivity so the working set shrinks
	// fast.
	fs := append([]*Filter(nil), filters...)
	sort.Slice(fs, func(i, j int) bool { return fs[i].Selectivity() < fs[j].Selectivity() })
	acc := fs[0].RowSet().Clone() // detach from the shared αDB cache
	for _, f := range fs[1:] {
		if !acc.AndWith(f.RowSet()) {
			return nil
		}
	}
	return acc.ToSorted()
}

// effectiveStrength returns the filter's association strength on the
// scale in effect (absolute count or normalized fraction), used by the
// α and λ impacts.
func (f *Filter) effectiveStrength() float64 {
	if f.NormUse {
		return f.ThetaN
	}
	return float64(f.Theta)
}

// validFor reports whether every example row satisfies the filter —
// Definition 3.1 (filter validity). Context discovery only emits valid
// filters; this is the invariant checked by tests.
func (f *Filter) validFor(info *adb.EntityInfo, exampleRows []int) bool {
	for _, r := range exampleRows {
		if !f.SatisfiedBy(info, r) {
			return false
		}
	}
	return true
}
