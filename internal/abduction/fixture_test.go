package abduction

import (
	"math/rand"
	"testing"

	"squid/internal/adb"
	"squid/internal/relation"
)

// fig1DB reproduces the CS-Academics database of Fig 1: academics plus
// the research attribute table, where Dan Suciu and Sam Madden share the
// data management interest.
func fig1DB(t *testing.T) *adb.AlphaDB {
	t.Helper()
	db := relation.NewDatabase("cs_academics")
	a := relation.New("academics",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
	).SetPrimaryKey("id")
	names := []string{"Thomas Cormen", "Dan Suciu", "Jiawei Han", "Sam Madden", "James Kurose", "Joseph Hellerstein"}
	for i, n := range names {
		a.MustAppend(relation.IntVal(int64(100+i)), relation.StringVal(n))
	}
	db.AddRelation(a)
	db.MarkEntity("academics")

	r := relation.New("research",
		relation.Col("aid", relation.Int),
		relation.Col("interest", relation.String),
	).AddForeignKey("aid", "academics", "id")
	rows := []struct {
		aid      int64
		interest string
	}{
		{100, "algorithms"}, {101, "data management"}, {102, "data mining"},
		{103, "data management"}, {103, "distributed systems"},
		{104, "computer networks"}, {105, "data management"}, {105, "distributed systems"},
	}
	for _, row := range rows {
		r.MustAppend(relation.IntVal(row.aid), relation.StringVal(row.interest))
	}
	db.AddRelation(r)
	alpha, err := adb.Build(db, adb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return alpha
}

// actorsDB builds a synthetic IMDb-style αDB with a planted comedian
// class: comedians appear in many Comedy movies, others in few. Used to
// reproduce the Example 1.3 abduction.
func actorsDB(t *testing.T, numPersons, numMovies int, seed int64) *adb.AlphaDB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase("actors")

	genre := relation.New("genre",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
	).SetPrimaryKey("id")
	genreNames := []string{"Comedy", "Drama", "Action", "SciFi", "Thriller"}
	for i, g := range genreNames {
		genre.MustAppend(relation.IntVal(int64(i)), relation.StringVal(g))
	}
	db.AddRelation(genre)
	db.MarkProperty("genre")

	person := relation.New("person",
		relation.Col("id", relation.Int),
		relation.Col("name", relation.String),
		relation.Col("gender", relation.String),
		relation.Col("age", relation.Int),
	).SetPrimaryKey("id")
	for i := 0; i < numPersons; i++ {
		gender := "Male"
		if rng.Intn(2) == 0 {
			gender = "Female"
		}
		person.MustAppend(relation.IntVal(int64(i)),
			relation.StringVal(personName(i)),
			relation.StringVal(gender),
			relation.IntVal(int64(25+rng.Intn(60))))
	}
	db.AddRelation(person)
	db.MarkEntity("person")

	movie := relation.New("movie",
		relation.Col("id", relation.Int),
		relation.Col("title", relation.String),
		relation.Col("year", relation.Int),
	).SetPrimaryKey("id")
	mg := relation.New("movietogenre",
		relation.Col("movie_id", relation.Int),
		relation.Col("genre_id", relation.Int),
	).AddForeignKey("movie_id", "movie", "id").AddForeignKey("genre_id", "genre", "id")
	for i := 0; i < numMovies; i++ {
		movie.MustAppend(relation.IntVal(int64(i)),
			relation.StringVal(movieTitle(i)),
			relation.IntVal(int64(1980+rng.Intn(40))))
		mg.MustAppend(relation.IntVal(int64(i)), relation.IntVal(int64(i%len(genreNames))))
	}
	db.AddRelation(movie)
	db.MarkEntity("movie")
	db.AddRelation(mg)

	ci := relation.New("castinfo",
		relation.Col("person_id", relation.Int),
		relation.Col("movie_id", relation.Int),
	).AddForeignKey("person_id", "person", "id").AddForeignKey("movie_id", "movie", "id")
	// First 10% of persons are comedians: cast them in 12 comedies
	// (movie ids ≡ 0 mod 5) and 2 others. The rest get 4 random movies.
	comedians := numPersons / 10
	for p := 0; p < numPersons; p++ {
		if p < comedians {
			for k := 0; k < 12; k++ {
				ci.MustAppend(relation.IntVal(int64(p)), relation.IntVal(int64((k*5)%numMovies)))
			}
			for k := 0; k < 2; k++ {
				ci.MustAppend(relation.IntVal(int64(p)), relation.IntVal(int64(rng.Intn(numMovies))))
			}
		} else {
			for k := 0; k < 4; k++ {
				ci.MustAppend(relation.IntVal(int64(p)), relation.IntVal(int64(rng.Intn(numMovies))))
			}
		}
	}
	db.AddRelation(ci)

	alpha, err := adb.Build(db, adb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return alpha
}

func personName(i int) string {
	return "Person " + string(rune('A'+i%26)) + " " + itoa(i)
}

func movieTitle(i int) string {
	return "Movie " + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
