// Package abduction implements SQuID's primary contribution: the model of
// query intent as a base query plus semantic property filters (§3), the
// probabilistic abduction model over filters (§4), semantic context
// discovery from example entities (§6.1.2), and the linear-time query
// abduction algorithm (Algorithm 1) that is guaranteed to maximize the
// query posterior (Theorem 1).
package abduction

import "math"

// Params are SQuID's tuning parameters, defaulting to the paper's Fig 21
// values. The Appendix E sweeps (Figs 23–26) vary them one at a time.
type Params struct {
	// Rho is the base filter prior ρ: the default prior probability
	// that a filter appears in the intended query. Low ρ favors
	// recall, high ρ favors precision (Fig 23).
	Rho float64
	// Gamma is the domain-coverage penalty γ (Appendix A): 0 disables
	// the penalty; larger values penalize broad filters more (Fig 24).
	Gamma float64
	// Eta is the domain-coverage threshold η (Appendix A): filters
	// covering at most this fraction of their attribute's domain are
	// not penalized.
	Eta float64
	// TauA is the association-strength threshold τa (§4.2.2): derived
	// filters with θ < τa are insignificant and get α(φ) = 0 (Fig 25).
	TauA int
	// TauS is the skewness threshold τs (Appendix B), used by the
	// outlier impact λ (Fig 26). Set DisableOutlier for the "N/A"
	// configuration where λ(φ) ≡ 1.
	TauS float64
	// DisableOutlier turns the outlier impact off (τs = N/A in Fig 26).
	DisableOutlier bool
	// OutlierK is the mean/standard-deviation outlier constant k ≥ 2
	// (Appendix B).
	OutlierK float64
	// NormalizeAssociation switches derived association strength from
	// absolute counts to the fraction of the entity's associations
	// carrying the value (the Fig 13(a) funny-actors tuning: fraction
	// of an actor's portfolio that is comedies).
	NormalizeAssociation bool
	// TauANorm is the τa analogue for normalized strengths (a
	// fraction in (0,1]).
	TauANorm float64
	// MaxDisjunction enables disjunctive categorical filters
	// (attribute IN (v1..vk)) up to k values; 0 disables them
	// (footnote 7 of the paper: optional disjunction support).
	MaxDisjunction int
	// Workers bounds the intra-discovery parallelism: candidate base
	// queries, per-property context walks, and candidate-filter
	// selectivity computations fan out over up to this many goroutines
	// within a single Discover call. 0 (the default) means GOMAXPROCS;
	// 1 forces the serial path. Results are byte-identical to serial at
	// every setting — the knob trades latency for CPU, never output.
	// Workers is a runtime knob, not part of the abduction model, so
	// snapshots do not persist it.
	Workers int
}

// DefaultParams returns the paper's default configuration (Fig 21).
func DefaultParams() Params {
	return Params{
		Rho:      0.1,
		Gamma:    2,
		Eta:      0.5,
		TauA:     5,
		TauS:     2.0,
		OutlierK: 2,
		TauANorm: 0.25,
	}
}

// QREParams returns the optimistic configuration used for query reverse
// engineering (§7.5): high filter prior, low association-strength
// threshold, and no outlier pruning, so that in the closed world every
// shared similarity is treated as intended. The domain-coverage penalty
// stays active: with the whole query output as examples, coincidental
// ranges cover most of their attribute's domain and must still be
// pruned for the abduced query to stay close to the original size
// (Fig 14).
func QREParams() Params {
	p := DefaultParams()
	p.Rho = 0.9
	p.TauA = 1
	p.DisableOutlier = true
	return p
}

// deltaImpact computes the domain-selectivity impact δ(φ) from a domain
// coverage fraction (Appendix A): δ = 1 / max(1, coverage/η)^γ.
func (p Params) deltaImpact(coverage float64) float64 {
	if p.Gamma == 0 || p.Eta <= 0 {
		return 1
	}
	base := coverage / p.Eta
	if base < 1 {
		base = 1
	}
	return 1 / math.Pow(base, p.Gamma)
}
