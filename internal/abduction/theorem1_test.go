package abduction

import (
	"math/rand"
	"testing"

	"squid/internal/adb"
)

// TestTheorem1OptimalityBruteForce verifies Theorem 1: the filter subset
// chosen by Algorithm 1 attains the maximum of the Equation 5 posterior
// over all 2^|Φ| subsets. Run on many randomized example sets drawn from
// the actors fixture.
func TestTheorem1OptimalityBruteForce(t *testing.T) {
	a := actorsDB(t, 120, 60, 11)
	info := a.Entity("person")
	rng := rand.New(rand.NewSource(77))
	params := DefaultParams()

	for trial := 0; trial < 40; trial++ {
		// Random example set of 2-5 rows.
		n := 2 + rng.Intn(4)
		rows := make([]int, 0, n)
		seen := map[int]bool{}
		for len(rows) < n {
			r := rng.Intn(info.NumRows)
			if !seen[r] {
				seen[r] = true
				rows = append(rows, r)
			}
		}
		contexts := DiscoverContexts(info, rows, params)
		if len(contexts) == 0 {
			continue
		}
		// Keep the subset-enumeration tractable.
		if len(contexts) > 14 {
			contexts = contexts[:14]
		}
		decisions, selected := Abduce(contexts, params)
		chosen := make(map[*Filter]bool, len(selected))
		for _, f := range selected {
			chosen[f] = true
		}
		algoScore := LogPosteriorScore(decisions, chosen)

		// Brute force over all subsets.
		best := algoScore
		filters := make([]*Filter, len(decisions))
		for i, d := range decisions {
			filters[i] = d.Filter
		}
		for mask := 0; mask < 1<<len(filters); mask++ {
			sub := make(map[*Filter]bool)
			for i := range filters {
				if mask&(1<<i) != 0 {
					sub[filters[i]] = true
				}
			}
			if s := LogPosteriorScore(decisions, sub); s > best {
				best = s
			}
		}
		if best > algoScore+1e-9 {
			t.Fatalf("trial %d: Algorithm 1 suboptimal: algo=%v best=%v (|Φ|=%d)", trial, algoScore, best, len(filters))
		}
	}
}

// TestAbduceExample13 reproduces Example 1.3's shape on the synthetic
// actors fixture: examples that are all comedians lead SQuID to select
// the high-strength Comedy derived filter while dropping common basic
// properties like gender.
func TestAbduceExample13(t *testing.T) {
	a := actorsDB(t, 200, 60, 13)
	info := a.Entity("person")
	// First 20 persons are comedians; sample 5 of them.
	examples := []int{0, 3, 7, 11, 15}
	res := AbduceForEntity(info, BaseQuery{"person", "name"}, examples, DefaultParams())

	var comedyFilter *Filter
	for _, f := range res.Filters {
		if f.Kind == Derived && f.Attr() == "movie:genre" && f.Value() == "Comedy" {
			comedyFilter = f
		}
		if f.Kind == BasicCategorical && f.Attr() == "gender" {
			t.Errorf("coincidental gender filter selected: %v", f)
		}
	}
	if comedyFilter == nil {
		t.Fatalf("comedy derived filter not selected; got %v", res.Filters)
	}
	if comedyFilter.Theta < DefaultParams().TauA {
		t.Errorf("selected θ=%d below τa", comedyFilter.Theta)
	}
	// The output must contain all examples (E ⊆ Q(D), Definition 2.1).
	out := map[int]bool{}
	for _, r := range res.OutputRows {
		out[r] = true
	}
	for _, ex := range examples {
		if !out[ex] {
			t.Errorf("example row %d missing from abduced output", ex)
		}
	}
	// And mostly comedians (rows < 20).
	nonComedians := 0
	for _, r := range res.OutputRows {
		if r >= 20 {
			nonComedians++
		}
	}
	if nonComedians > len(res.OutputRows)/2 {
		t.Errorf("abduced query output dominated by non-comedians: %d of %d", nonComedians, len(res.OutputRows))
	}
}

// TestDiscoverEndToEnd runs name-based discovery through the inverted
// index on the Fig 1 database.
func TestDiscoverEndToEnd(t *testing.T) {
	a := fig1DB(t)
	params := DefaultParams()
	params.Rho = 0.2
	results, err := Discover(a.Snapshot(), []string{"Dan Suciu", "Sam Madden", "Joseph Hellerstein"}, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if res.Base.Entity != "academics" || res.Base.Attr != "name" {
		t.Fatalf("base query wrong: %+v", res.Base)
	}
	found := false
	for _, f := range res.Filters {
		if f.Attr() == "interest" && f.Value() == "data management" {
			found = true
		}
	}
	if !found {
		t.Errorf("data management filter not selected: %v", res.Filters)
	}
	vals := res.OutputValues()
	if len(vals) != 3 {
		t.Errorf("output=%v want the 3 data management researchers", vals)
	}
}

func TestDiscoverErrors(t *testing.T) {
	a := fig1DB(t)
	if _, err := Discover(a.Snapshot(), nil, DefaultParams(), nil); err == nil {
		t.Error("no examples must error")
	}
	if _, err := Discover(a.Snapshot(), []string{"No Such Person"}, DefaultParams(), nil); err == nil {
		t.Error("unmatched example must error")
	}
	// Values that exist but only in a non-entity column.
	if _, err := Discover(a.Snapshot(), []string{"algorithms", "data mining"}, DefaultParams(), nil); err == nil {
		t.Error("matches outside entity relations must error")
	}
}

// TestDiscoverUsesResolver verifies the resolver hook receives ambiguous
// candidates.
func TestDiscoverUsesResolver(t *testing.T) {
	a := fig1DB(t)
	called := false
	resolver := func(info *adb.EntityInfo, candidates [][]int, params Params) []int {
		called = true
		out := make([]int, len(candidates))
		for i, c := range candidates {
			out[i] = c[0]
		}
		return out
	}
	// No ambiguity in this fixture: resolver must NOT be called.
	if _, err := Discover(a.Snapshot(), []string{"Dan Suciu", "Sam Madden"}, DefaultParams(), resolver); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("resolver must only run on ambiguous matches")
	}
}

// TestQREParamsKeepMoreFilters checks the §7.5 optimistic preset: with
// the full query output as examples, QRE parameters retain filters the
// default (skeptical) parameters would drop.
func TestQREParamsKeepMoreFilters(t *testing.T) {
	a := actorsDB(t, 150, 60, 17)
	info := a.Entity("person")
	examples := []int{0, 1, 2, 4, 5}
	def := AbduceForEntity(info, BaseQuery{"person", "name"}, examples, DefaultParams())
	qre := AbduceForEntity(info, BaseQuery{"person", "name"}, examples, QREParams())
	if len(qre.Filters) < len(def.Filters) {
		t.Errorf("QRE params must keep at least as many filters: %d < %d", len(qre.Filters), len(def.Filters))
	}
}

// TestMoreExamplesNeverAddCoincidentalFilters is the Fig 10 monotonic
// trend: as examples grow, the exclude term ψ^|E| shrinks, so every
// filter included at |E| examples stays included at |E|+k when its
// selectivity and θ stay the same family-wise — here we simply verify
// precision against the planted comedian intent improves or holds.
func TestMoreExamplesNeverAddCoincidentalFilters(t *testing.T) {
	a := actorsDB(t, 200, 60, 19)
	info := a.Entity("person")
	truth := make(map[int]bool) // planted intent: the 20 comedians
	for i := 0; i < 20; i++ {
		truth[i] = true
	}
	precisionAt := func(examples []int) float64 {
		res := AbduceForEntity(info, BaseQuery{"person", "name"}, examples, DefaultParams())
		if len(res.OutputRows) == 0 {
			return 0
		}
		hits := 0
		for _, r := range res.OutputRows {
			if truth[r] {
				hits++
			}
		}
		return float64(hits) / float64(len(res.OutputRows))
	}
	p3 := precisionAt([]int{0, 3, 7})
	p8 := precisionAt([]int{0, 3, 7, 11, 15, 2, 9, 18})
	if p8+1e-9 < p3 {
		t.Errorf("precision degraded with more examples: %v -> %v", p3, p8)
	}
	if p8 < 0.5 {
		t.Errorf("precision with 8 examples too low: %v", p8)
	}
}
