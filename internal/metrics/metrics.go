// Package metrics implements the evaluation measures of §7.1: precision,
// recall, and f-score between the abduced query output and the intended
// query output, plus the seeded example samplers used across experiments.
package metrics

import (
	"math/rand"
	"sort"
)

// PRF holds precision, recall, and f-score.
type PRF struct {
	Precision float64
	Recall    float64
	FScore    float64
}

// Compare computes precision = |got∩want|/|got|, recall = |got∩want|/|want|,
// and their harmonic mean, treating both sides as sets.
func Compare(got, want []string) PRF {
	gs := toSet(got)
	ws := toSet(want)
	if len(gs) == 0 && len(ws) == 0 {
		return PRF{Precision: 1, Recall: 1, FScore: 1}
	}
	inter := 0
	for v := range gs {
		if _, ok := ws[v]; ok {
			inter++
		}
	}
	var p, r float64
	if len(gs) > 0 {
		p = float64(inter) / float64(len(gs))
	}
	if len(ws) > 0 {
		r = float64(inter) / float64(len(ws))
	}
	return PRF{Precision: p, Recall: r, FScore: fscore(p, r)}
}

func fscore(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func toSet(xs []string) map[string]struct{} {
	s := make(map[string]struct{}, len(xs))
	for _, x := range xs {
		s[x] = struct{}{}
	}
	return s
}

// Sample draws k distinct elements from pool uniformly at random; when
// k ≥ len(pool) it returns a copy of the whole pool. The pool is left
// unmodified and the draw is deterministic in the rng state.
func Sample(rng *rand.Rand, pool []string, k int) []string {
	if k >= len(pool) {
		out := append([]string(nil), pool...)
		sort.Strings(out)
		return out
	}
	idx := rng.Perm(len(pool))[:k]
	out := make([]string, 0, k)
	for _, i := range idx {
		out = append(out, pool[i])
	}
	sort.Strings(out)
	return out
}

// SampleInts draws k distinct ints from [0, n).
func SampleInts(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return rng.Perm(n)[:k]
}

// Mean averages a slice (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanPRF averages a slice of PRF measurements component-wise.
func MeanPRF(xs []PRF) PRF {
	if len(xs) == 0 {
		return PRF{}
	}
	var out PRF
	for _, x := range xs {
		out.Precision += x.Precision
		out.Recall += x.Recall
		out.FScore += x.FScore
	}
	n := float64(len(xs))
	out.Precision /= n
	out.Recall /= n
	out.FScore /= n
	return out
}
