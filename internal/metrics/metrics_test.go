package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompareBasics(t *testing.T) {
	got := Compare([]string{"a", "b", "c"}, []string{"b", "c", "d"})
	if math.Abs(got.Precision-2.0/3.0) > 1e-9 {
		t.Errorf("precision=%v", got.Precision)
	}
	if math.Abs(got.Recall-2.0/3.0) > 1e-9 {
		t.Errorf("recall=%v", got.Recall)
	}
	if math.Abs(got.FScore-2.0/3.0) > 1e-9 {
		t.Errorf("fscore=%v", got.FScore)
	}
}

func TestCompareEdgeCases(t *testing.T) {
	perfect := Compare([]string{"x"}, []string{"x"})
	if perfect.FScore != 1 {
		t.Error("identical sets must score 1")
	}
	disjoint := Compare([]string{"a"}, []string{"b"})
	if disjoint.FScore != 0 || disjoint.Precision != 0 || disjoint.Recall != 0 {
		t.Error("disjoint sets must score 0")
	}
	emptyGot := Compare(nil, []string{"a"})
	if emptyGot.Precision != 0 || emptyGot.Recall != 0 {
		t.Error("empty result")
	}
	emptyWant := Compare([]string{"a"}, nil)
	if emptyWant.Recall != 0 {
		t.Error("empty truth")
	}
	bothEmpty := Compare(nil, nil)
	if bothEmpty.FScore != 1 {
		t.Error("both empty treated as perfect (IEQ of empty queries)")
	}
	// Duplicates are set-collapsed.
	dup := Compare([]string{"a", "a", "b"}, []string{"a", "b"})
	if dup.FScore != 1 {
		t.Errorf("duplicates must not hurt: %v", dup)
	}
}

// Property: f-score is bounded by min(precision, recall) ≤ ... ≤ max and
// lies in [0, 1]; and Compare is symmetric under swapping got/want with
// precision and recall exchanged.
func TestComparePropertyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() []string {
			n := r.Intn(20)
			out := make([]string, n)
			for i := range out {
				out[i] = string(rune('a' + r.Intn(26)))
			}
			return out
		}
		a, b := mk(), mk()
		x := Compare(a, b)
		y := Compare(b, a)
		if x.Precision != y.Recall || x.Recall != y.Precision {
			return false
		}
		if x.FScore < 0 || x.FScore > 1 {
			return false
		}
		hi := math.Max(x.Precision, x.Recall)
		return x.FScore <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pool := []string{"a", "b", "c", "d", "e"}
	got := Sample(rng, pool, 3)
	if len(got) != 3 {
		t.Fatalf("len=%d", len(got))
	}
	seen := map[string]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatal("duplicate in sample")
		}
		seen[v] = true
	}
	// k ≥ n returns the whole pool.
	all := Sample(rng, pool, 10)
	if len(all) != 5 {
		t.Errorf("overflow sample len=%d", len(all))
	}
	// Determinism given the same rng state.
	a := Sample(rand.New(rand.NewSource(9)), pool, 2)
	b := Sample(rand.New(rand.NewSource(9)), pool, 2)
	if a[0] != b[0] || a[1] != b[1] {
		t.Error("sampling not deterministic")
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean")
	}
	m := MeanPRF([]PRF{{1, 1, 1}, {0, 0, 0}})
	if m.Precision != 0.5 || m.Recall != 0.5 || m.FScore != 0.5 {
		t.Errorf("MeanPRF=%v", m)
	}
	if (MeanPRF(nil) != PRF{}) {
		t.Error("empty MeanPRF")
	}
}
