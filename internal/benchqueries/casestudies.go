package benchqueries

import (
	"math/rand"
	"sort"

	"squid/internal/datagen"
)

// CaseStudy models a §7.4 qualitative study: a human-generated public
// list is simulated as a noisy, popularity-biased sample of a latent
// intent class. The abduced query output is compared against the list
// after applying the popularity mask (Appendix D footnote 14), which is
// why precision stays low while recall converges.
type CaseStudy struct {
	ID string
	// Name describes the intent ("funny actors").
	Name string
	// List is the simulated public list (the example pool).
	List []string
	// Mask is the popularity mask: the universe of entities popular
	// enough to plausibly appear on public lists. Both the list and
	// the abduced output are filtered through it for scoring.
	Mask map[string]bool
	// NormalizeAssociation mirrors the Fig 13(a) tuning.
	NormalizeAssociation bool
}

// ApplyMask filters values through the popularity mask.
func (c *CaseStudy) ApplyMask(values []string) []string {
	var out []string
	for _, v := range values {
		if c.Mask[v] {
			out = append(out, v)
		}
	}
	return out
}

// FunnyActors builds case study (a): the list holds mostly planted
// comedians (by name) plus off-intent noise, restricted to popular
// persons.
func FunnyActors(g *datagen.IMDb, seed int64) *CaseStudy {
	rng := rand.New(rand.NewSource(seed))
	person := g.DB.Relation("person")
	nameOf := func(id int64) string { return person.Get(int(id), "name").Str() }

	cs := &CaseStudy{ID: "CS-a", Name: "funny actors", Mask: map[string]bool{}, NormalizeAssociation: true}

	// Popularity mask: persons with at least 6 credits.
	popular := popularPersons(g, 6)
	for _, id := range popular {
		cs.Mask[nameOf(id)] = true
	}
	// The list: ~85% comedians (those popular enough), ~15% other
	// popular persons — the paper's "public lists have biases".
	for _, id := range g.Comedians {
		if cs.Mask[nameOf(id)] && rng.Intn(100) < 85 {
			cs.List = append(cs.List, nameOf(id))
		}
	}
	noise := len(cs.List) / 6
	for i := 0; i < noise && len(popular) > 0; i++ {
		cs.List = append(cs.List, nameOf(popular[rng.Intn(len(popular))]))
	}
	cs.List = dedupSorted(cs.List)
	return cs
}

// SciFi2000s builds case study (b): a list of 2000s Sci-Fi movies.
func SciFi2000s(g *datagen.IMDb, seed int64) *CaseStudy {
	rng := rand.New(rand.NewSource(seed))
	movie := g.DB.Relation("movie")
	titleOf := func(id int64) string { return movie.Get(int(id), "title").Str() }

	cs := &CaseStudy{ID: "CS-b", Name: "2000s Sci-Fi movies", Mask: map[string]bool{}}
	// All movies count as maskable here (titles are public knowledge);
	// the mask limits to the generated movie set.
	tcol := movie.Column("title")
	for i := 0; i < movie.NumRows(); i++ {
		cs.Mask[tcol.Str(i)] = true
	}
	for _, id := range g.SciFi2000s {
		if rng.Intn(100) < 80 {
			cs.List = append(cs.List, titleOf(id))
		}
	}
	// A few off-intent titles (list curation noise).
	for i := 0; i < len(cs.List)/10; i++ {
		cs.List = append(cs.List, tcol.Str(rng.Intn(movie.NumRows())))
	}
	cs.List = dedupSorted(cs.List)
	return cs
}

// ProlificResearchers builds case study (c): prolific database
// researchers from the DBLP-like data.
func ProlificResearchers(g *datagen.DBLP, seed int64) *CaseStudy {
	rng := rand.New(rand.NewSource(seed))
	author := g.DB.Relation("author")
	nameOf := func(id int64) string { return author.Get(int(id), "name").Str() }

	cs := &CaseStudy{ID: "CS-c", Name: "prolific DB researchers", Mask: map[string]bool{}}
	// Popularity mask: authors with ≥ 5 publications.
	for id, n := range g.PubCount {
		if n >= 5 {
			cs.Mask[nameOf(id)] = true
		}
	}
	for _, id := range g.Prolific {
		if rng.Intn(100) < 90 {
			cs.List = append(cs.List, nameOf(id))
		}
	}
	cs.List = dedupSorted(cs.List)
	return cs
}

// popularPersons returns person ids with at least minCredits credits.
func popularPersons(g *datagen.IMDb, minCredits int) []int64 {
	var out []int64
	for id, n := range g.Popularity {
		if n >= minCredits {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func dedupSorted(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}
