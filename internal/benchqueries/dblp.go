package benchqueries

import (
	"squid/internal/datagen"
	"squid/internal/engine"
)

func authorProject() []engine.ColRef { return []engine.ColRef{{Rel: "author", Col: "name"}} }

func pubProject() []engine.ColRef { return []engine.ColRef{{Rel: "publication", Col: "title"}} }

// DBLPBenchmarks builds DQ1–DQ5 against the planted structures of g.
func DBLPBenchmarks(g *datagen.DBLP) []Benchmark {
	var out []Benchmark
	add := func(id, intent string, j, s int, q *engine.Query) {
		out = append(out, Benchmark{ID: id, Intent: intent, Query: q, NumJoinRels: j, NumSelections: s})
	}

	// DQ1: authors who collaborated with both planted affiliations.
	collabWith := func(affName string) *engine.Query {
		return &engine.Query{
			From: []string{"author", "collaboration", "affiliation"},
			Joins: []engine.Join{
				{LeftRel: "author", LeftCol: "id", RightRel: "collaboration", RightCol: "author_id"},
				{LeftRel: "collaboration", LeftCol: "affiliation_id", RightRel: "affiliation", RightCol: "id"},
			},
			Preds: []engine.Pred{
				{Rel: "affiliation", Col: "name", Op: engine.OpEq, Val: sv(affName)},
			},
			Select:   authorProject(),
			Distinct: true,
		}
	}
	dq1 := collabWith(g.AffilA)
	dq1.Intersect = []*engine.Query{collabWith(g.AffilB)}
	add("DQ1", "Authors collaborating with both "+g.AffilA+" and "+g.AffilB, 5, 2, dq1)

	// DQ2: authors with ≥10 SIGMOD and ≥10 VLDB publications.
	venueCount := func(venue string, min int) *engine.Query {
		return &engine.Query{
			From: []string{"author", "authortopub", "publication", "venue"},
			Joins: []engine.Join{
				{LeftRel: "author", LeftCol: "id", RightRel: "authortopub", RightCol: "author_id"},
				{LeftRel: "authortopub", LeftCol: "pub_id", RightRel: "publication", RightCol: "id"},
				{LeftRel: "publication", LeftCol: "venue_id", RightRel: "venue", RightCol: "id"},
			},
			Preds: []engine.Pred{
				{Rel: "venue", Col: "name", Op: engine.OpEq, Val: sv(venue)},
			},
			Select:        authorProject(),
			Distinct:      true,
			GroupBy:       []engine.ColRef{{Rel: "author", Col: "id"}},
			HavingCountGE: min,
		}
	}
	dq2 := venueCount("SIGMOD", 10)
	dq2.Intersect = []*engine.Query{venueCount("VLDB", 10)}
	add("DQ2", "Authors with ≥10 SIGMOD and ≥10 VLDB papers", 8, 4, dq2)

	// DQ3: SIGMOD publications in 2010-2012.
	add("DQ3", "SIGMOD publications 2010-2012", 3, 3, &engine.Query{
		From: []string{"publication", "venue"},
		Joins: []engine.Join{
			{LeftRel: "publication", LeftCol: "venue_id", RightRel: "venue", RightCol: "id"},
		},
		Preds: []engine.Pred{
			{Rel: "venue", Col: "name", Op: engine.OpEq, Val: sv("SIGMOD")},
			{Rel: "publication", Col: "year", Op: engine.OpGE, Val: iv(2010)},
			{Rel: "publication", Col: "year", Op: engine.OpLE, Val: iv(2012)},
		},
		Select:   pubProject(),
		Distinct: true,
	})

	// DQ4: publications the planted trio wrote together.
	byAuthor := func(authorID int64) *engine.Query {
		return &engine.Query{
			From: []string{"publication", "authortopub", "author"},
			Joins: []engine.Join{
				{LeftRel: "publication", LeftCol: "id", RightRel: "authortopub", RightCol: "pub_id"},
				{LeftRel: "authortopub", LeftCol: "author_id", RightRel: "author", RightCol: "id"},
			},
			Preds: []engine.Pred{
				{Rel: "author", Col: "id", Op: engine.OpEq, Val: iv(authorID)},
			},
			Select:   pubProject(),
			Distinct: true,
		}
	}
	dq4 := byAuthor(g.Trio[0])
	dq4.Intersect = []*engine.Query{byAuthor(g.Trio[1]), byAuthor(g.Trio[2])}
	add("DQ4", "Joint publications of the planted trio", 7, 3, dq4)

	// DQ5: publications with authors from both USA and Canada.
	byCountry := func(country string) *engine.Query {
		return &engine.Query{
			From: []string{"publication", "authortopub", "author", "country"},
			Joins: []engine.Join{
				{LeftRel: "publication", LeftCol: "id", RightRel: "authortopub", RightCol: "pub_id"},
				{LeftRel: "authortopub", LeftCol: "author_id", RightRel: "author", RightCol: "id"},
				{LeftRel: "author", LeftCol: "country_id", RightRel: "country", RightCol: "id"},
			},
			Preds: []engine.Pred{
				{Rel: "country", Col: "name", Op: engine.OpEq, Val: sv(country)},
			},
			Select:   pubProject(),
			Distinct: true,
		}
	}
	dq5 := byCountry("USA")
	dq5.Intersect = []*engine.Query{byCountry("Canada")}
	add("DQ5", "Publications between USA and Canada", 5, 2, dq5)

	return out
}
