// Package benchqueries defines the 41 benchmark queries of the paper's
// evaluation — 16 over the IMDb-like database (Fig 19), 5 over the
// DBLP-like database (Fig 20), and 20 over the Adult census table
// (Fig 22) — together with the three case studies of §7.4. Every query
// carries its ground-truth logical plan; the experiment harness executes
// the plan to obtain the intended output, samples examples from it, and
// scores the abduced query against it.
package benchqueries

import (
	"fmt"

	"squid/internal/datagen"
	"squid/internal/engine"
	"squid/internal/relation"
)

// Benchmark is one benchmark query: the intent description, the
// ground-truth plan, and paper-facing metadata (Figs 19/20/22 columns).
type Benchmark struct {
	ID     string
	Intent string
	// Query is the ground-truth logical plan over the original schema.
	Query *engine.Query
	// NumJoinRels and NumSelections are the J and S columns of the
	// figures (joining relations and selection predicates of the
	// intended SQL).
	NumJoinRels   int
	NumSelections int
}

// sv and iv shorten literal construction.
func sv(s string) relation.Value { return relation.StringVal(s) }
func iv(i int64) relation.Value  { return relation.IntVal(i) }

// personProject is the standard projection for person-entity queries.
func personProject() []engine.ColRef { return []engine.ColRef{{Rel: "person", Col: "name"}} }

func movieProject() []engine.ColRef { return []engine.ColRef{{Rel: "movie", Col: "title"}} }

// castOf builds the "cast of movie T" block: person ⋈ castinfo ⋈ movie,
// title = T, role = Actor.
func castOf(title string) *engine.Query {
	return &engine.Query{
		From: []string{"person", "castinfo", "movie"},
		Joins: []engine.Join{
			{LeftRel: "person", LeftCol: "id", RightRel: "castinfo", RightCol: "person_id"},
			{LeftRel: "castinfo", LeftCol: "movie_id", RightRel: "movie", RightCol: "id"},
		},
		Preds: []engine.Pred{
			{Rel: "movie", Col: "title", Op: engine.OpEq, Val: sv(title)},
		},
		Select:   personProject(),
		Distinct: true,
	}
}

// IMDbBenchmarks builds IQ1–IQ16 against the planted structures of g.
func IMDbBenchmarks(g *datagen.IMDb) []Benchmark {
	var out []Benchmark
	add := func(id, intent string, j, s int, q *engine.Query) {
		out = append(out, Benchmark{ID: id, Intent: intent, Query: q, NumJoinRels: j, NumSelections: s})
	}

	// IQ1: entire cast of the planted blockbuster.
	add("IQ1", "Entire cast of "+g.BlockbusterTitle, 3, 1, castOf(g.BlockbusterTitle))

	// IQ2: actors who appeared in all parts of the trilogy.
	iq2 := castOf(g.TrilogyTitles[0])
	iq2.Intersect = []*engine.Query{castOf(g.TrilogyTitles[1]), castOf(g.TrilogyTitles[2])}
	add("IQ2", "Actors appearing in the whole trilogy", 8, 3, iq2)

	// IQ3: Canadian actresses born after 1970 (with at least one acting
	// credit — the part SQuID is expected to miss, §7.3).
	add("IQ3", "Canadian actresses born after 1970", 3, 4, &engine.Query{
		From: []string{"person", "country", "castinfo", "role"},
		Joins: []engine.Join{
			{LeftRel: "person", LeftCol: "country_id", RightRel: "country", RightCol: "id"},
			{LeftRel: "person", LeftCol: "id", RightRel: "castinfo", RightCol: "person_id"},
			{LeftRel: "castinfo", LeftCol: "role_id", RightRel: "role", RightCol: "id"},
		},
		Preds: []engine.Pred{
			{Rel: "country", Col: "name", Op: engine.OpEq, Val: sv("Canada")},
			{Rel: "person", Col: "gender", Op: engine.OpEq, Val: sv("Female")},
			{Rel: "person", Col: "birth_year", Op: engine.OpGE, Val: iv(1970)},
			{Rel: "role", Col: "name", Op: engine.OpEq, Val: sv("Actor")},
		},
		Select:   personProject(),
		Distinct: true,
	})

	// IQ4: Sci-Fi movies released in USA in 2016.
	add("IQ4", "Sci-Fi movies released in USA in 2016", 5, 3, &engine.Query{
		From: []string{"movie", "movietogenre", "genre", "movietocountry", "country"},
		Joins: []engine.Join{
			{LeftRel: "movie", LeftCol: "id", RightRel: "movietogenre", RightCol: "movie_id"},
			{LeftRel: "movietogenre", LeftCol: "genre_id", RightRel: "genre", RightCol: "id"},
			{LeftRel: "movie", LeftCol: "id", RightRel: "movietocountry", RightCol: "movie_id"},
			{LeftRel: "movietocountry", LeftCol: "country_id", RightRel: "country", RightCol: "id"},
		},
		Preds: []engine.Pred{
			{Rel: "genre", Col: "name", Op: engine.OpEq, Val: sv("SciFi")},
			{Rel: "country", Col: "name", Op: engine.OpEq, Val: sv("USA")},
			{Rel: "movie", Col: "year", Op: engine.OpEq, Val: iv(2016)},
		},
		Select:   movieProject(),
		Distinct: true,
	})

	// IQ5: movies in which the planted duo co-star.
	castMovie := func(personID int64) *engine.Query {
		return &engine.Query{
			From: []string{"movie", "castinfo", "person"},
			Joins: []engine.Join{
				{LeftRel: "movie", LeftCol: "id", RightRel: "castinfo", RightCol: "movie_id"},
				{LeftRel: "castinfo", LeftCol: "person_id", RightRel: "person", RightCol: "id"},
			},
			Preds: []engine.Pred{
				{Rel: "person", Col: "id", Op: engine.OpEq, Val: iv(personID)},
			},
			Select:   movieProject(),
			Distinct: true,
		}
	}
	iq5 := castMovie(g.DuoA)
	iq5.Intersect = []*engine.Query{castMovie(g.DuoB)}
	add("IQ5", "Movies the planted duo acted in together", 5, 2, iq5)

	// IQ6: movies directed by the planted director.
	add("IQ6", "Movies directed by "+g.DirectorName, 4, 2, &engine.Query{
		From: []string{"movie", "castinfo", "person", "role"},
		Joins: []engine.Join{
			{LeftRel: "movie", LeftCol: "id", RightRel: "castinfo", RightCol: "movie_id"},
			{LeftRel: "castinfo", LeftCol: "person_id", RightRel: "person", RightCol: "id"},
			{LeftRel: "castinfo", LeftCol: "role_id", RightRel: "role", RightCol: "id"},
		},
		Preds: []engine.Pred{
			{Rel: "person", Col: "id", Op: engine.OpEq, Val: iv(g.DirectorID)},
			{Rel: "role", Col: "name", Op: engine.OpEq, Val: sv("Director")},
		},
		Select:   movieProject(),
		Distinct: true,
	})

	// IQ7: all movie genres (PJ query, no selection).
	add("IQ7", "All movie genres", 1, 0, &engine.Query{
		From:     []string{"genre"},
		Select:   []engine.ColRef{{Rel: "genre", Col: "name"}},
		Distinct: true,
	})

	// IQ8: movies by a planted prolific actor (the first comedian).
	star := g.Comedians[0]
	add("IQ8", "Movies of a prolific actor", 4, 2, castMovie(star))

	// IQ9: Indian actors with at least 15 USA movies (aggregation).
	add("IQ9", "Indian actors in at least 15 USA movies", 6, 4, &engine.Query{
		From: []string{"person", "country", "castinfo", "movietocountry"},
		Joins: []engine.Join{
			{LeftRel: "person", LeftCol: "country_id", RightRel: "country", RightCol: "id"},
			{LeftRel: "person", LeftCol: "id", RightRel: "castinfo", RightCol: "person_id"},
			{LeftRel: "castinfo", LeftCol: "movie_id", RightRel: "movietocountry", RightCol: "movie_id"},
		},
		Preds: []engine.Pred{
			{Rel: "country", Col: "name", Op: engine.OpEq, Val: sv("India")},
			{Rel: "movietocountry", Col: "country_id", Op: engine.OpEq, Val: iv(0)}, // USA is country id 0
		},
		Select:        personProject(),
		Distinct:      true,
		GroupBy:       []engine.ColRef{{Rel: "person", Col: "id"}},
		HavingCountGE: 15,
	})

	// IQ10: actors in more than 10 Russian movies after 2010 — the
	// compound-derived query outside SQuID's search space (§7.3).
	add("IQ10", "Actors in >10 Russian movies released after 2010", 6, 4, &engine.Query{
		From: []string{"person", "castinfo", "movie", "movietocountry", "country"},
		Joins: []engine.Join{
			{LeftRel: "person", LeftCol: "id", RightRel: "castinfo", RightCol: "person_id"},
			{LeftRel: "castinfo", LeftCol: "movie_id", RightRel: "movie", RightCol: "id"},
			{LeftRel: "movie", LeftCol: "id", RightRel: "movietocountry", RightCol: "movie_id"},
			{LeftRel: "movietocountry", LeftCol: "country_id", RightRel: "country", RightCol: "id"},
		},
		Preds: []engine.Pred{
			{Rel: "country", Col: "name", Op: engine.OpEq, Val: sv("Russia")},
			{Rel: "movie", Col: "year", Op: engine.OpGE, Val: iv(2011)},
		},
		Select:        personProject(),
		Distinct:      true,
		GroupBy:       []engine.ColRef{{Rel: "person", Col: "id"}},
		HavingCountGE: 3, // scaled-down analogue of the paper's >10
	})

	// IQ11: USA Horror-Drama movies in 2005-2008.
	iq11a := &engine.Query{
		From: []string{"movie", "movietogenre", "genre", "movietocountry", "country"},
		Joins: []engine.Join{
			{LeftRel: "movie", LeftCol: "id", RightRel: "movietogenre", RightCol: "movie_id"},
			{LeftRel: "movietogenre", LeftCol: "genre_id", RightRel: "genre", RightCol: "id"},
			{LeftRel: "movie", LeftCol: "id", RightRel: "movietocountry", RightCol: "movie_id"},
			{LeftRel: "movietocountry", LeftCol: "country_id", RightRel: "country", RightCol: "id"},
		},
		Preds: []engine.Pred{
			{Rel: "genre", Col: "name", Op: engine.OpEq, Val: sv("Horror")},
			{Rel: "country", Col: "name", Op: engine.OpEq, Val: sv("USA")},
			{Rel: "movie", Col: "year", Op: engine.OpGE, Val: iv(2005)},
			{Rel: "movie", Col: "year", Op: engine.OpLE, Val: iv(2008)},
		},
		Select:   movieProject(),
		Distinct: true,
	}
	iq11b := iq11a.Clone()
	iq11b.Preds[0].Val = sv("Drama")
	iq11 := iq11a.Clone()
	iq11.Intersect = []*engine.Query{iq11b}
	add("IQ11", "USA Horror-Drama movies 2005-2008", 7, 5, iq11)

	// IQ12: movies produced by the planted company.
	add("IQ12", "Movies produced by "+g.ProducerCompany, 3, 1, &engine.Query{
		From: []string{"movie", "movietocompany", "company"},
		Joins: []engine.Join{
			{LeftRel: "movie", LeftCol: "id", RightRel: "movietocompany", RightCol: "movie_id"},
			{LeftRel: "movietocompany", LeftCol: "company_id", RightRel: "company", RightCol: "id"},
		},
		Preds: []engine.Pred{
			{Rel: "company", Col: "name", Op: engine.OpEq, Val: sv(g.ProducerCompany)},
		},
		Select:   movieProject(),
		Distinct: true,
	})

	// IQ13: Animation movies produced by the planted company.
	add("IQ13", "Animation movies by "+g.ProducerCompany, 5, 2, &engine.Query{
		From: []string{"movie", "movietocompany", "company", "movietogenre", "genre"},
		Joins: []engine.Join{
			{LeftRel: "movie", LeftCol: "id", RightRel: "movietocompany", RightCol: "movie_id"},
			{LeftRel: "movietocompany", LeftCol: "company_id", RightRel: "company", RightCol: "id"},
			{LeftRel: "movie", LeftCol: "id", RightRel: "movietogenre", RightCol: "movie_id"},
			{LeftRel: "movietogenre", LeftCol: "genre_id", RightRel: "genre", RightCol: "id"},
		},
		Preds: []engine.Pred{
			{Rel: "company", Col: "name", Op: engine.OpEq, Val: sv(g.ProducerCompany)},
			{Rel: "genre", Col: "name", Op: engine.OpEq, Val: sv("Animation")},
		},
		Select:   movieProject(),
		Distinct: true,
	})

	// IQ14: Sci-Fi movies of a planted star (action star in Sci-Fi).
	add("IQ14", "Sci-Fi movies of a planted star", 6, 3, &engine.Query{
		From: []string{"movie", "castinfo", "person", "movietogenre", "genre"},
		Joins: []engine.Join{
			{LeftRel: "movie", LeftCol: "id", RightRel: "castinfo", RightCol: "movie_id"},
			{LeftRel: "castinfo", LeftCol: "person_id", RightRel: "person", RightCol: "id"},
			{LeftRel: "movie", LeftCol: "id", RightRel: "movietogenre", RightCol: "movie_id"},
			{LeftRel: "movietogenre", LeftCol: "genre_id", RightRel: "genre", RightCol: "id"},
		},
		Preds: []engine.Pred{
			{Rel: "person", Col: "id", Op: engine.OpEq, Val: iv(star)},
			{Rel: "genre", Col: "name", Op: engine.OpEq, Val: sv("Comedy")},
		},
		Select:   movieProject(),
		Distinct: true,
	})

	// IQ15: Japanese Animation movies.
	add("IQ15", "Japanese Animation movies", 5, 2, &engine.Query{
		From: []string{"movie", "movietogenre", "genre", "movietocountry", "country"},
		Joins: []engine.Join{
			{LeftRel: "movie", LeftCol: "id", RightRel: "movietogenre", RightCol: "movie_id"},
			{LeftRel: "movietogenre", LeftCol: "genre_id", RightRel: "genre", RightCol: "id"},
			{LeftRel: "movie", LeftCol: "id", RightRel: "movietocountry", RightCol: "movie_id"},
			{LeftRel: "movietocountry", LeftCol: "country_id", RightRel: "country", RightCol: "id"},
		},
		Preds: []engine.Pred{
			{Rel: "genre", Col: "name", Op: engine.OpEq, Val: sv("Animation")},
			{Rel: "country", Col: "name", Op: engine.OpEq, Val: sv("Japan")},
		},
		Select:   movieProject(),
		Distinct: true,
	})

	// IQ16: planted-company movies with more than 5 USA cast members
	// (scaled-down analogue of the paper's 15).
	add("IQ16", g.ProducerCompany+" movies with >5 American cast", 5, 3, &engine.Query{
		From: []string{"movie", "movietocompany", "company", "castinfo", "person"},
		Joins: []engine.Join{
			{LeftRel: "movie", LeftCol: "id", RightRel: "movietocompany", RightCol: "movie_id"},
			{LeftRel: "movietocompany", LeftCol: "company_id", RightRel: "company", RightCol: "id"},
			{LeftRel: "movie", LeftCol: "id", RightRel: "castinfo", RightCol: "movie_id"},
			{LeftRel: "castinfo", LeftCol: "person_id", RightRel: "person", RightCol: "id"},
		},
		Preds: []engine.Pred{
			{Rel: "company", Col: "name", Op: engine.OpEq, Val: sv(g.ProducerCompany)},
			{Rel: "person", Col: "country_id", Op: engine.OpEq, Val: iv(0)}, // USA
		},
		Select:        movieProject(),
		Distinct:      true,
		GroupBy:       []engine.ColRef{{Rel: "movie", Col: "id"}},
		HavingCountGE: 6,
	})

	return out
}

// Cardinality executes the benchmark's ground-truth query and returns
// its output size (the "#Result" column of Figs 19/20/22).
func Cardinality(db *relation.Database, b Benchmark) (int, error) {
	res, err := engine.NewExecutor(db).Execute(b.Query)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", b.ID, err)
	}
	return res.NumRows(), nil
}

// GroundTruth executes the benchmark's query and returns the projected
// output values.
func GroundTruth(db *relation.Database, b Benchmark) ([]string, error) {
	res, err := engine.NewExecutor(db).Execute(b.Query)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.ID, err)
	}
	return res.Strings(), nil
}
