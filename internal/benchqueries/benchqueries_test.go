package benchqueries

import (
	"testing"

	"squid/internal/datagen"
)

func tinyIMDb() *datagen.IMDb {
	return datagen.GenerateIMDb(datagen.IMDbConfig{Seed: 7, NumPersons: 1200, NumMovies: 500, NumCompany: 30})
}

func tinyDBLP() *datagen.DBLP {
	return datagen.GenerateDBLP(datagen.DBLPConfig{Seed: 3, NumAuthor: 600, NumPubs: 1200})
}

func TestIMDbBenchmarksExecutable(t *testing.T) {
	g := tinyIMDb()
	bs := IMDbBenchmarks(g)
	if len(bs) != 16 {
		t.Fatalf("benchmarks=%d want 16", len(bs))
	}
	nonEmpty := 0
	for _, b := range bs {
		card, err := Cardinality(g.DB, b)
		if err != nil {
			t.Errorf("%s: %v", b.ID, err)
			continue
		}
		if card > 0 {
			nonEmpty++
		}
		t.Logf("%s (%s): %d results", b.ID, b.Intent, card)
	}
	// At this scale a few statistically-defined queries (IQ4, IQ9) may
	// be empty, but the planted ones must not be.
	if nonEmpty < 12 {
		t.Errorf("only %d of 16 benchmarks non-empty", nonEmpty)
	}
}

func TestIMDbPlantedCardinalities(t *testing.T) {
	g := tinyIMDb()
	bs := IMDbBenchmarks(g)
	byID := map[string]Benchmark{}
	for _, b := range bs {
		byID[b.ID] = b
	}
	// IQ1: blockbuster cast ≈ 110.
	card, err := Cardinality(g.DB, byID["IQ1"])
	if err != nil {
		t.Fatal(err)
	}
	if card < 100 {
		t.Errorf("IQ1 cardinality=%d want ≥100", card)
	}
	// IQ2: the 20 planted trilogy actors (generic casting can add a
	// coincidental member or two).
	card, err = Cardinality(g.DB, byID["IQ2"])
	if err != nil {
		t.Fatal(err)
	}
	if card < 20 || card > 25 {
		t.Errorf("IQ2 cardinality=%d want ≈20", card)
	}
	// IQ5: the duo's 12 shared movies.
	card, err = Cardinality(g.DB, byID["IQ5"])
	if err != nil {
		t.Fatal(err)
	}
	if card < 12 {
		t.Errorf("IQ5 cardinality=%d want ≥12", card)
	}
	// IQ6: the 36 directed movies.
	card, err = Cardinality(g.DB, byID["IQ6"])
	if err != nil {
		t.Fatal(err)
	}
	if card != 36 {
		t.Errorf("IQ6 cardinality=%d want 36", card)
	}
	// IQ7: all genres.
	card, err = Cardinality(g.DB, byID["IQ7"])
	if err != nil {
		t.Fatal(err)
	}
	if card < 15 {
		t.Errorf("IQ7 cardinality=%d want all genres", card)
	}
}

func TestDBLPBenchmarksExecutable(t *testing.T) {
	g := tinyDBLP()
	bs := DBLPBenchmarks(g)
	if len(bs) != 5 {
		t.Fatalf("benchmarks=%d want 5", len(bs))
	}
	for _, b := range bs {
		card, err := Cardinality(g.DB, b)
		if err != nil {
			t.Errorf("%s: %v", b.ID, err)
			continue
		}
		if card == 0 {
			t.Errorf("%s (%s): empty result", b.ID, b.Intent)
		}
		t.Logf("%s: %d results", b.ID, card)
	}
}

func TestDBLPPlantedCardinalities(t *testing.T) {
	g := tinyDBLP()
	bs := DBLPBenchmarks(g)
	byID := map[string]Benchmark{}
	for _, b := range bs {
		byID[b.ID] = b
	}
	// DQ4: exactly the 15 trio publications.
	card, err := Cardinality(g.DB, byID["DQ4"])
	if err != nil {
		t.Fatal(err)
	}
	if card != 15 {
		t.Errorf("DQ4 cardinality=%d want 15", card)
	}
	// DQ1: at least the 20 planted dual-affiliation authors.
	card, err = Cardinality(g.DB, byID["DQ1"])
	if err != nil {
		t.Fatal(err)
	}
	if card < 20 {
		t.Errorf("DQ1 cardinality=%d want ≥20", card)
	}
	// DQ2: the 30 prolific researchers dominate.
	card, err = Cardinality(g.DB, byID["DQ2"])
	if err != nil {
		t.Fatal(err)
	}
	if card < 10 {
		t.Errorf("DQ2 cardinality=%d", card)
	}
}

func TestAdultBenchmarks(t *testing.T) {
	g := datagen.GenerateAdult(datagen.AdultConfig{Seed: 5, NumRows: 2000, ScaleFactor: 1})
	bs := AdultBenchmarks(g, 42)
	if len(bs) != 20 {
		t.Fatalf("benchmarks=%d want 20", len(bs))
	}
	for _, b := range bs {
		if b.NumSelections < 2 {
			t.Errorf("%s: only %d predicates", b.ID, b.NumSelections)
		}
		card, err := Cardinality(g.DB, b)
		if err != nil {
			t.Fatal(err)
		}
		if card < 5 {
			t.Errorf("%s: cardinality=%d below sampling floor", b.ID, card)
		}
	}
	// Determinism.
	again := AdultBenchmarks(g, 42)
	for i := range bs {
		if bs[i].NumSelections != again[i].NumSelections {
			t.Fatal("benchmark generation not deterministic")
		}
	}
}

func TestGroundTruthMatchesCardinality(t *testing.T) {
	g := tinyIMDb()
	for _, b := range IMDbBenchmarks(g)[:4] {
		card, err := Cardinality(g.DB, b)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := GroundTruth(g.DB, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(truth) != card {
			t.Errorf("%s: truth=%d card=%d", b.ID, len(truth), card)
		}
	}
}

func TestFunnyActorsCaseStudy(t *testing.T) {
	g := tinyIMDb()
	cs := FunnyActors(g, 99)
	if len(cs.List) < 5 {
		t.Fatalf("list too small: %d", len(cs.List))
	}
	if !cs.NormalizeAssociation {
		t.Error("funny actors must use normalized association (Fig 13a)")
	}
	// The mask must contain every list member (lists only cite popular
	// entities).
	masked := cs.ApplyMask(cs.List)
	if len(masked) != len(cs.List) {
		t.Errorf("mask drops %d list members", len(cs.List)-len(masked))
	}
}

func TestSciFiCaseStudy(t *testing.T) {
	g := tinyIMDb()
	cs := SciFi2000s(g, 99)
	if len(cs.List) < 10 {
		t.Fatalf("list too small: %d (scifi movies planted: %d)", len(cs.List), len(g.SciFi2000s))
	}
}

func TestProlificCaseStudy(t *testing.T) {
	g := tinyDBLP()
	cs := ProlificResearchers(g, 99)
	if len(cs.List) < 15 {
		t.Fatalf("list too small: %d", len(cs.List))
	}
	masked := cs.ApplyMask(cs.List)
	if len(masked) < len(cs.List)*8/10 {
		t.Errorf("mask drops too many prolific researchers: %d of %d", len(masked), len(cs.List))
	}
}

func TestCaseStudyDeterminism(t *testing.T) {
	g := tinyIMDb()
	a := FunnyActors(g, 7)
	b := FunnyActors(g, 7)
	if len(a.List) != len(b.List) {
		t.Fatal("case study not deterministic")
	}
	for i := range a.List {
		if a.List[i] != b.List[i] {
			t.Fatal("case study list differs")
		}
	}
}
