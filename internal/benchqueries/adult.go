package benchqueries

import (
	"fmt"
	"math/rand"

	"squid/internal/datagen"
	"squid/internal/engine"
	"squid/internal/relation"
)

// AdultBenchmarks builds 20 randomized benchmark queries over the census
// table, mirroring Fig 22: each query combines 2-7 selection predicates
// over randomly chosen attributes, with equality predicates on
// categorical attributes and narrow ranges on numeric ones. Values are
// drawn from the generated data so every query is satisfiable. Queries
// with empty results are re-drawn.
func AdultBenchmarks(g *datagen.Adult, seed int64) []Benchmark {
	rng := rand.New(rand.NewSource(seed))
	adult := g.DB.Relation("adult")
	exec := engine.NewExecutor(g.DB)

	categorical := []string{
		"workclass", "education", "maritalstatus", "occupation",
		"relationship", "race", "sex", "nativecountry", "income",
	}
	numeric := []string{"age", "fnlwgt", "capitalgain", "capitalloss", "hoursperweek"}

	var out []Benchmark
	for len(out) < 20 {
		numPreds := 2 + rng.Intn(6) // 2-7 predicates
		attrs := rng.Perm(len(categorical) + len(numeric))[:numPreds]
		// Anchor the value draws on a random seed row so conjunctions
		// are satisfiable.
		seedRow := rng.Intn(adult.NumRows())
		q := &engine.Query{
			From:     []string{"adult"},
			Select:   []engine.ColRef{{Rel: "adult", Col: "name"}},
			Distinct: true,
		}
		for _, ai := range attrs {
			if ai < len(categorical) {
				col := categorical[ai]
				q.Preds = append(q.Preds, engine.Pred{
					Rel: "adult", Col: col, Op: engine.OpEq,
					Val: adult.Get(seedRow, col),
				})
			} else {
				col := numeric[ai-len(categorical)]
				center := adult.Get(seedRow, col).Int()
				span := numericSpan(col)
				q.Preds = append(q.Preds,
					engine.Pred{Rel: "adult", Col: col, Op: engine.OpGE, Val: relation.IntVal(center - span)},
					engine.Pred{Rel: "adult", Col: col, Op: engine.OpLE, Val: relation.IntVal(center + span)},
				)
			}
		}
		res, err := exec.Execute(q)
		if err != nil || res.NumRows() < 5 {
			continue // re-draw: too selective to sample examples from
		}
		id := fmt.Sprintf("AQ%d", len(out)+1)
		out = append(out, Benchmark{
			ID:            id,
			Intent:        fmt.Sprintf("Census query with %d predicates", numPreds),
			Query:         q,
			NumJoinRels:   1,
			NumSelections: len(q.Preds),
		})
	}
	return out
}

// numericSpan returns the half-width of the range predicate per numeric
// attribute, matching the narrow ranges of Fig 22.
func numericSpan(col string) int64 {
	switch col {
	case "age":
		return 4
	case "fnlwgt":
		return 40000
	case "capitalgain":
		return 1500
	case "capitalloss":
		return 200
	case "hoursperweek":
		return 4
	default:
		return 1
	}
}
