package datacube

import (
	"math"
	"testing"

	"squid/internal/adb"
	"squid/internal/datagen"
)

func buildIMDbCube(t *testing.T) (*datagen.IMDb, *adb.AlphaDB, *Cube) {
	t.Helper()
	g := datagen.GenerateIMDb(datagen.IMDbConfig{Seed: 7, NumPersons: 900, NumMovies: 400, NumCompany: 20})
	alpha, err := adb.Build(g.DB, adb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cube := Build(g.DB,
		"castinfo", "person_id", "movie_id",
		"movietogenre", "movie_id", "genre_id",
		"genre", "id", "name")
	return g, alpha, cube
}

// TestCubeMatchesAlphaDB: the cube's query-time rollups must agree with
// the αDB's precomputed persontogenre counts — same answers, different
// cost profile (Appendix F.4).
func TestCubeMatchesAlphaDB(t *testing.T) {
	_, alpha, cube := buildIMDbCube(t)
	info := alpha.Entity("person")
	ptg := info.DerivedByAttr("movie:genre")
	if ptg == nil {
		t.Fatal("persontogenre missing")
	}
	for _, id := range cube.Entities()[:100] {
		want := ptg.Counts(id)
		got := cube.Counts(id)
		if len(got) != len(want) {
			t.Fatalf("entity %d: cube %v vs αDB %v", id, got, want)
		}
		for v, n := range want {
			if got[v] != n {
				t.Errorf("entity %d value %q: cube %d vs αDB %d", id, v, got[v], n)
			}
		}
		// Point strength agrees too.
		for v, n := range want {
			if cube.Strength(id, v) != n {
				t.Errorf("Strength(%d,%q) mismatch", id, v)
			}
		}
	}
}

// TestCubeSelectivityMatchesAlphaDB: ψ(value, θ) from a cube scan equals
// the αDB's indexed selectivity.
func TestCubeSelectivityMatchesAlphaDB(t *testing.T) {
	_, alpha, cube := buildIMDbCube(t)
	info := alpha.Entity("person")
	ptg := info.DerivedByAttr("movie:genre")
	for _, v := range []string{"Comedy", "Drama", "Action"} {
		for _, theta := range []int{1, 3, 8} {
			want := ptg.Selectivity(v, theta)
			got := cube.SelectivityGE(v, theta, info.NumRows)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("ψ(%s,%d): cube %v vs αDB %v", v, theta, got, want)
			}
		}
	}
}

// TestCubeIsLarger: the cube keeps the large via dimension, so its cell
// count dominates the αDB's derived relation rows (the Appendix F.4
// size argument).
func TestCubeIsLarger(t *testing.T) {
	_, alpha, cube := buildIMDbCube(t)
	ptg := alpha.Entity("person").DerivedByAttr("movie:genre")
	derivedRows := ptg.Relation().NumRows()
	if cube.NumCells() <= derivedRows {
		t.Errorf("cube cells=%d should exceed derived rows=%d", cube.NumCells(), derivedRows)
	}
	t.Logf("cube cells=%d vs αDB derived rows=%d (%.1fx)",
		cube.NumCells(), derivedRows, float64(cube.NumCells())/float64(derivedRows))
}

func TestCubeEmptyEntity(t *testing.T) {
	_, _, cube := buildIMDbCube(t)
	if got := cube.Counts(999999); got != nil {
		t.Errorf("unknown entity must roll up to nil, got %v", got)
	}
	if got := cube.Strength(999999, "Comedy"); got != 0 {
		t.Errorf("unknown entity strength=%d", got)
	}
	if got := cube.SelectivityGE("Comedy", 1, 0); got != 0 {
		t.Error("zero denominator must yield 0")
	}
}
