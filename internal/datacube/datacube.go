// Package datacube implements the alternative precomputation mechanism
// the paper evaluates against the αDB in Appendix F.4: a data cube over
// the (entity, associated entity, property value) dimensions. Where the
// αDB aggregates out the large entity dimension at build time
// (persontogenre keeps only (person, genre, count)), the cube keeps the
// base cells (person, movie, genre) and answers association-strength
// queries by rolling up at query time. The paper measures the cube one
// to two orders of magnitude slower than αDB queries and four orders of
// magnitude larger when all rollups are materialized; the benchmark in
// bench_test.go reproduces the comparison on the synthetic IMDb data.
package datacube

import (
	"sort"

	"squid/internal/index"
	"squid/internal/relation"
)

// Cell is one base cell of the cube: entity × associated entity ×
// property value.
type Cell struct {
	Entity int64
	Via    int64
	Value  string
}

// Cube holds the materialized base cells with an index on the entity
// dimension (the access path SQuID's online phase needs).
type Cube struct {
	cells    []Cell
	byEntity map[int64][]int // entity id -> cell positions
}

// Build materializes the cube from an entity-entity fact table and a
// second fact table attaching dimension values to the associated entity
// — the (person, movie, genre) cube of Appendix F.4 built from castinfo
// and movietogenre.
func Build(db *relation.Database, fact1, f1Entity, f1Via string, fact2, f2Via, f2Dim string, dim, dimPK, dimValue string) *Cube {
	c := &Cube{byEntity: make(map[int64][]int)}

	// via id -> dimension values.
	f2 := db.Relation(fact2)
	dimRel := db.Relation(dim)
	dimIdx := index.BuildIntHash(dimRel, dimPK)
	valCol := dimRel.Column(dimValue)
	viaVals := make(map[int64][]string)
	v2, d2 := f2.Column(f2Via), f2.Column(f2Dim)
	for r := 0; r < f2.NumRows(); r++ {
		if v2.IsNull(r) || d2.IsNull(r) {
			continue
		}
		dr, ok := dimIdx.First(d2.Int64(r))
		if !ok || valCol.IsNull(dr) {
			continue
		}
		viaVals[v2.Int64(r)] = append(viaVals[v2.Int64(r)], valCol.Str(dr))
	}

	// Base cells: one per (entity, via, value) triple.
	f1 := db.Relation(fact1)
	e1, via1 := f1.Column(f1Entity), f1.Column(f1Via)
	seen := make(map[Cell]bool)
	for r := 0; r < f1.NumRows(); r++ {
		if e1.IsNull(r) || via1.IsNull(r) {
			continue
		}
		e, v := e1.Int64(r), via1.Int64(r)
		for _, val := range viaVals[v] {
			cell := Cell{Entity: e, Via: v, Value: val}
			if seen[cell] {
				continue
			}
			seen[cell] = true
			c.byEntity[e] = append(c.byEntity[e], len(c.cells))
			c.cells = append(c.cells, cell)
		}
	}
	return c
}

// NumCells returns the number of materialized base cells (the size
// comparison of Appendix F.4).
func (c *Cube) NumCells() int { return len(c.cells) }

// Counts rolls up the association strengths of one entity at query time
// — the operation the αDB answers with a single hash lookup into its
// precomputed derived relation.
func (c *Cube) Counts(entity int64) map[string]int {
	positions := c.byEntity[entity]
	if len(positions) == 0 {
		return nil
	}
	out := make(map[string]int)
	for _, p := range positions {
		out[c.cells[p].Value]++
	}
	return out
}

// Strength rolls up one (entity, value) association strength.
func (c *Cube) Strength(entity int64, value string) int {
	n := 0
	for _, p := range c.byEntity[entity] {
		if c.cells[p].Value == value {
			n++
		}
	}
	return n
}

// SelectivityGE computes ψ(value, θ) by a full scan over the cube —
// the αDB answers the same question from a per-value sorted index. The
// numEntities denominator is supplied by the caller.
func (c *Cube) SelectivityGE(value string, theta, numEntities int) float64 {
	if numEntities == 0 {
		return 0
	}
	counts := make(map[int64]int)
	for _, cell := range c.cells {
		if cell.Value == value {
			counts[cell.Entity]++
		}
	}
	n := 0
	for _, cnt := range counts {
		if cnt >= theta {
			n++
		}
	}
	return float64(n) / float64(numEntities)
}

// Entities returns the distinct entity ids present in the cube, sorted;
// used by tests to compare against the αDB's derived relation coverage.
func (c *Cube) Entities() []int64 {
	out := make([]int64, 0, len(c.byEntity))
	for e := range c.byEntity {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
