package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"squid"
	"squid/internal/iofault"
	"squid/internal/wal"
)

// academicsDB builds the Fig 1 database through the public API (the
// same fixture the root package tests use).
func academicsDB() *squid.Database {
	db := squid.NewDatabase("cs_academics")
	a := squid.NewRelation("academics",
		squid.Col("id", squid.Int),
		squid.Col("name", squid.String),
	).SetPrimaryKey("id")
	names := []string{"Thomas Cormen", "Dan Suciu", "Jiawei Han", "Sam Madden", "James Kurose", "Joseph Hellerstein"}
	for i, n := range names {
		a.MustAppend(squid.IntVal(int64(100+i)), squid.StringVal(n))
	}
	db.AddRelation(a)
	db.MarkEntity("academics")

	r := squid.NewRelation("research",
		squid.Col("aid", squid.Int),
		squid.Col("interest", squid.String),
	).AddForeignKey("aid", "academics", "id")
	rows := []struct {
		aid      int64
		interest string
	}{
		{100, "algorithms"}, {101, "data management"}, {102, "data mining"},
		{103, "data management"}, {103, "distributed systems"},
		{104, "computer networks"}, {105, "data management"}, {105, "distributed systems"},
	}
	for _, row := range rows {
		r.MustAppend(squid.IntVal(row.aid), squid.StringVal(row.interest))
	}
	db.AddRelation(r)
	return db
}

func newTestSystem(t *testing.T) *squid.System {
	t.Helper()
	sys, err := squid.Build(academicsDB(), squid.DefaultBuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// postJSON POSTs body as JSON and decodes the response into out,
// returning the status code.
func postJSON(t *testing.T, client *http.Client, url string, body, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, client *http.Client, url string, out any) int {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

var exampleSet = []string{"Dan Suciu", "Sam Madden", "Joseph Hellerstein"}

func newLocalListener() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }

func TestServerEndToEnd(t *testing.T) {
	sys := newTestSystem(t)
	dir := t.TempDir()
	snap := filepath.Join(dir, "academics.sqas")
	srv := New(sys, Config{SnapshotPath: snap})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := ts.Client()

	// Discovery over the network matches the in-process answer.
	var disc DiscoverResponse
	if code := postJSON(t, c, ts.URL+"/v1/discover", DiscoverRequest{Examples: exampleSet, Explain: true}, &disc); code != http.StatusOK {
		t.Fatalf("discover: status %d", code)
	}
	want, err := sys.Discover(exampleSet)
	if err != nil {
		t.Fatal(err)
	}
	if disc.SQL != want.SQL || disc.Entity != want.Entity || disc.Attribute != want.Attribute {
		t.Errorf("discover diverged from in-process: %+v", disc)
	}
	if !reflect.DeepEqual(disc.Output, want.Output) {
		t.Errorf("output %v want %v", disc.Output, want.Output)
	}
	if disc.Explain == "" || !strings.Contains(disc.Explain, "Algorithm 1") {
		t.Errorf("explain missing from response: %q", disc.Explain)
	}
	if disc.Explain != want.Explain() {
		t.Error("explain diverged from in-process Explain()")
	}

	// The returned plan executes over /v1/execute and reproduces the
	// discovery output.
	var exec ExecuteResponse
	if code := postJSON(t, c, ts.URL+"/v1/execute", ExecuteRequest{Query: disc.Query}, &exec); code != http.StatusOK {
		t.Fatalf("execute: status %d", code)
	}
	var got []string
	for _, row := range exec.Rows {
		if len(row) != 1 {
			t.Fatalf("execute row %v", row)
		}
		got = append(got, fmt.Sprint(row[0]))
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, want.Output) {
		t.Errorf("execute rows %v want %v", got, want.Output)
	}

	// Batch discovery: healthy and failing sets side by side.
	var batch BatchDiscoverResponse
	req := BatchDiscoverRequest{Sets: [][]string{exampleSet, {"Nobody At All", "Equally Missing"}}}
	if code := postJSON(t, c, ts.URL+"/v1/discover/batch", req, &batch); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(batch.Results) != 2 || batch.Results[0] == nil || batch.Results[1] != nil {
		t.Fatalf("batch results shape wrong: %+v", batch.Results)
	}
	if batch.Results[0].SQL != want.SQL {
		t.Error("batch result diverged")
	}
	if batch.Errors[0] != "" || !strings.Contains(batch.Errors[1], "no entity attribute") {
		t.Errorf("batch errors %v", batch.Errors)
	}

	// Write path: a new academic plus facts, all over HTTP; the next
	// discovery includes the new row.
	var ins InsertResponse
	code := postJSON(t, c, ts.URL+"/v1/insert", InsertRequest{
		Rel: "academics", Values: []any{float64(200), "Grace Hopper"}}, &ins)
	if code != http.StatusOK || ins.Inserted != 1 {
		t.Fatalf("insert: status %d resp %+v", code, ins)
	}
	code = postJSON(t, c, ts.URL+"/v1/insert/batch", InsertBatchRequest{Ops: []InsertRequest{
		{Rel: "research", Values: []any{float64(200), "data management"}},
		{Rel: "research", Values: []any{float64(200), "distributed systems"}},
	}}, &ins)
	if code != http.StatusOK || ins.Inserted != 2 {
		t.Fatalf("insert batch: status %d resp %+v", code, ins)
	}
	var after DiscoverResponse
	if code := postJSON(t, c, ts.URL+"/v1/discover", DiscoverRequest{Examples: exampleSet}, &after); code != http.StatusOK {
		t.Fatalf("post-insert discover: status %d", code)
	}
	found := false
	for _, name := range after.Output {
		if name == "Grace Hopper" {
			found = true
		}
	}
	if !found {
		t.Errorf("post-insert discovery output %v misses the ingested row", after.Output)
	}

	// Bad writes are rejected with 400 and do not crash the server.
	var errResp ErrorResponse
	if code := postJSON(t, c, ts.URL+"/v1/insert", InsertRequest{Rel: "nope", Values: []any{1.0}}, &errResp); code != http.StatusBadRequest {
		t.Errorf("unknown relation insert: status %d", code)
	}
	if code := postJSON(t, c, ts.URL+"/v1/insert", InsertRequest{Rel: "academics", Values: []any{"x", "y"}}, &errResp); code != http.StatusBadRequest {
		t.Errorf("mistyped insert: status %d", code)
	}
	if code := postJSON(t, c, ts.URL+"/v1/discover", DiscoverRequest{Examples: nil}, &errResp); code != http.StatusBadRequest {
		t.Errorf("no examples: status %d", code)
	}
	if code := postJSON(t, c, ts.URL+"/v1/discover", DiscoverRequest{Examples: []string{"No Such Entity Anywhere"}}, &errResp); code != http.StatusUnprocessableEntity {
		t.Errorf("no entities: status %d", code)
	}
	// An oversized batch is rejected before taking the write lock.
	big := InsertBatchRequest{Ops: make([]InsertRequest, maxBatchOps+1)}
	for i := range big.Ops {
		big.Ops[i] = InsertRequest{Rel: "research", Values: []any{float64(100), "flood"}}
	}
	if code := postJSON(t, c, ts.URL+"/v1/insert/batch", big, &errResp); code != http.StatusBadRequest || errResp.Code != "batch_too_large" {
		t.Errorf("oversized batch: status %d code %q", code, errResp.Code)
	}

	// Introspection: stats, healthz, metrics.
	var stats StatsResponse
	if code := getJSON(t, c, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Name != "cs_academics" || stats.NumRelations != 2 {
		t.Errorf("stats %+v", stats)
	}
	var health map[string]any
	if code := getJSON(t, c, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Errorf("healthz: %v %v", code, health)
	}
	resp, err := c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, needle := range []string{
		`squid_http_requests_total{route="/v1/discover",code="200"}`,
		`squid_http_requests_total{route="/v1/insert",code="400"}`,
		"squid_discoveries_in_flight 0",
		"squid_selcache_hits_total",
		`squid_request_duration_seconds_bucket{route="/v1/discover",le="+Inf"}`,
		"squid_admission_shed_total 0",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("metrics exposition missing %q", needle)
		}
	}

	// On-demand snapshot: saved atomically, loadable, and answers
	// identically (including the post-insert state).
	var snapResp SnapshotResponse
	if code := postJSON(t, c, ts.URL+"/v1/snapshot", struct{}{}, &snapResp); code != http.StatusOK {
		t.Fatalf("snapshot: status %d resp %+v", code, snapResp)
	}
	if snapResp.Bytes <= 0 {
		t.Errorf("snapshot reported %d bytes", snapResp.Bytes)
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := squid.Load(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	rewarmed, err := loaded.Discover(exampleSet)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rewarmed.Output, after.Output) {
		t.Errorf("snapshot round trip diverged: %v want %v", rewarmed.Output, after.Output)
	}
}

func TestAdmissionQueue(t *testing.T) {
	a := newAdmission(1, 1)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue...
	done := make(chan error, 1)
	go func() { done <- a.acquire(context.Background()) }()
	// ...wait until it is queued, then the next caller is shed.
	for a.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := a.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Errorf("over-queue acquire returned %v, want ErrOverloaded", err)
	}
	a.release()
	if err := <-done; err != nil {
		t.Errorf("queued waiter got %v", err)
	}
	a.release()

	// A queued waiter honors its context.
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for a.queued.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	if err := a.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled waiter got %v", err)
	}
	a.release()
}

// TestServerSheds429 deterministically exercises the load-shedding
// path: with the single slot held and no queue, a discovery request is
// rejected immediately with 429 and a Retry-After hint.
func TestServerSheds429(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, Config{MaxInFlight: 1, QueueDepth: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if err := srv.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(DiscoverRequest{Examples: exampleSet})
	resp, err := ts.Client().Post(ts.URL+"/v1/discover", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var errResp ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&errResp); err != nil || errResp.Code != "overloaded" {
		t.Errorf("shed body %+v err %v", errResp, err)
	}
	srv.adm.release()

	// With the slot free again the same request succeeds.
	var disc DiscoverResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/discover", DiscoverRequest{Examples: exampleSet}, &disc); code != http.StatusOK {
		t.Fatalf("post-release discover: status %d", code)
	}

	// Metrics recorded the shed.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(body), "squid_admission_shed_total 1") {
		t.Error("shed not counted in metrics")
	}
}

// TestServerRequestTimeout proves the per-request deadline reaches the
// abduction: an expired budget turns into 504 instead of a hung request.
func TestServerRequestTimeout(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, Config{RequestTimeout: time.Nanosecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var errResp ErrorResponse
	code := postJSON(t, ts.Client(), ts.URL+"/v1/discover", DiscoverRequest{Examples: exampleSet}, &errResp)
	if code != http.StatusGatewayTimeout || errResp.Code != "timeout" {
		t.Errorf("status %d body %+v, want 504/timeout", code, errResp)
	}
}

// TestServerGracefulDrain exercises the full shutdown contract under
// concurrent load (meaningful with -race): clients hammer discover,
// execute, and insert while the server drains — in-flight requests
// complete, shed requests see 429, the final snapshot lands atomically
// and warm-boots to the post-ingest state.
func TestServerGracefulDrain(t *testing.T) {
	sys := newTestSystem(t)
	dir := t.TempDir()
	snap := filepath.Join(dir, "drain.sqas")
	srv := New(sys, Config{
		MaxInFlight:      2,
		QueueDepth:       2,
		SnapshotPath:     snap,
		SnapshotInterval: 5 * time.Millisecond, // exercise the periodic loop too
	})
	httpSrv := &http.Server{Handler: srv}
	ln, err := newLocalListener()
	if err != nil {
		t.Fatal(err)
	}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}

	var (
		ok429, ok200, other atomic.Int64
		inserted            atomic.Int64
	)
	post := func(path string, body any) (int, bool) {
		raw, _ := json.Marshal(body)
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return 0, false // connection refused after shutdown
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, true
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var code int
				var alive bool
				switch i % 3 {
				case 0:
					code, alive = post("/v1/discover", DiscoverRequest{Examples: exampleSet})
				case 1:
					code, alive = post("/v1/discover/batch", BatchDiscoverRequest{Sets: [][]string{exampleSet}})
				default:
					code, alive = post("/v1/insert", InsertRequest{
						Rel:    "research",
						Values: []any{float64(100 + (id+i)%6), "drain testing"},
					})
					if alive && code == http.StatusOK {
						inserted.Add(1)
					}
				}
				if !alive {
					return // server stopped accepting: expected post-drain
				}
				switch code {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					ok429.Add(1)
				default:
					other.Add(1)
					t.Errorf("unexpected status %d (iteration %d)", code, i)
				}
			}
		}(g)
	}

	// Let the load run, then drain: healthz flips to 503, Shutdown
	// finishes the in-flight requests, Finalize writes the snapshot.
	time.Sleep(150 * time.Millisecond)
	srv.BeginDrain()
	hresp, err := client.Get(base + "/healthz")
	if err == nil {
		if hresp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("draining healthz status %d want 503", hresp.StatusCode)
		}
		io.Copy(io.Discard, hresp.Body)
		hresp.Body.Close()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown did not finish in-flight requests: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := srv.Finalize(); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}

	if ok200.Load() == 0 {
		t.Error("no request completed during the drain run")
	}
	t.Logf("drain run: %d ok, %d shed (429), %d rows ingested", ok200.Load(), ok429.Load(), inserted.Load())

	// The final snapshot holds every acknowledged insert: a warm boot
	// answers with the fully ingested fact table.
	f, err := os.Open(snap)
	if err != nil {
		t.Fatalf("final snapshot missing: %v", err)
	}
	loaded, err := squid.Load(f)
	f.Close()
	if err != nil {
		t.Fatalf("final snapshot corrupt: %v", err)
	}
	wantRows := sys.ExecutableDB().Relation("research").NumRows()
	gotRows := loaded.ExecutableDB().Relation("research").NumRows()
	if gotRows != wantRows {
		t.Errorf("snapshot research rows %d, live system has %d", gotRows, wantRows)
	}
	if int64(wantRows) < 8+inserted.Load() {
		t.Errorf("live system rows %d < 8 seed + %d acknowledged inserts", wantRows, inserted.Load())
	}
	// No half-written temp file left behind.
	if _, err := os.Stat(snap + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale snapshot temp file: %v", err)
	}
}

// TestDrainSnapshotCapturesFinalEpoch regresses the drain/snapshot
// ordering contract: the final Finalize snapshot must encode the αDB
// epoch current at encode time — including writes acknowledged after
// BeginDrain (inserts bypass admission and keep landing until the
// listener stops) — never an epoch pinned earlier. A warm boot from
// the snapshot must answer with every acknowledged row.
func TestDrainSnapshotCapturesFinalEpoch(t *testing.T) {
	sys := newTestSystem(t)
	dir := t.TempDir()
	snap := filepath.Join(dir, "final.sqas")
	srv := New(sys, Config{SnapshotPath: snap})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// An insert acknowledged before the drain...
	code := postJSON(t, client, ts.URL+"/v1/insert", InsertRequest{
		Rel: "academics", Values: []any{float64(200), "Pre Drain"}}, nil)
	if code != http.StatusOK {
		t.Fatalf("pre-drain insert status %d", code)
	}
	srv.BeginDrain()
	// ...and one acknowledged after BeginDrain but before Finalize
	// (inserts bypass admission; the listener is still accepting).
	code = postJSON(t, client, ts.URL+"/v1/insert", InsertRequest{
		Rel: "research", Values: []any{float64(200), "data management"}}, nil)
	if code != http.StatusOK {
		t.Fatalf("post-drain insert status %d", code)
	}
	if err := srv.Finalize(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := squid.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	// Both acknowledged writes must be answerable from the warm boot:
	// the new scholar resolves and carries the post-drain interest.
	disc, err := restored.Discover([]string{"Dan Suciu", "Sam Madden", "Pre Drain"})
	if err != nil {
		t.Fatalf("restored discovery: %v", err)
	}
	found := false
	for _, v := range disc.Output {
		if v == "Pre Drain" {
			found = true
		}
	}
	if !found {
		t.Errorf("final snapshot lost acknowledged writes; output = %v", disc.Output)
	}
}

// TestServerPanicRecovery proves one poisoned request cannot take the
// process down or leak its admission slot: a handler that panics
// mid-discovery (after admission, like a real discovery would) is
// answered with 500 internal_error, counted in squid_panics_total, and
// the slot it held is back in service for the next request.
func TestServerPanicRecovery(t *testing.T) {
	// The recovery path logs the stack; keep the test output clean.
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)

	sys := newTestSystem(t)
	srv := New(sys, Config{MaxInFlight: 1, QueueDepth: -1})
	// Mount an instrumented route shaped exactly like handleDiscover —
	// admission claim, deferred release — that dies where the abduction
	// would run. The deferred release runs during the unwind, so the
	// recovery in route() must find the slot already returned.
	srv.route("POST /v1/boom", func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := srv.requestCtx(r)
		defer cancel()
		if !srv.admit(ctx, w) {
			return
		}
		start := time.Now()
		defer srv.adm.releaseAndObserve(start)
		panic("abduction exploded mid-discovery")
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var errResp ErrorResponse
	code := postJSON(t, ts.Client(), ts.URL+"/v1/boom", struct{}{}, &errResp)
	if code != http.StatusInternalServerError || errResp.Code != "internal_error" {
		t.Fatalf("panicking handler: status %d body %+v, want 500/internal_error", code, errResp)
	}
	if n := srv.adm.inFlight(); n != 0 {
		t.Fatalf("admission slots leaked across the panic: inFlight = %d", n)
	}

	// With a single slot and no queue, a leaked slot would shed this
	// request; a 200 proves the slot survived the panic.
	var disc DiscoverResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/discover", DiscoverRequest{Examples: exampleSet}, &disc); code != http.StatusOK {
		t.Fatalf("discovery after panic: status %d", code)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, needle := range []string{
		"squid_panics_total 1",
		`squid_http_requests_total{route="/v1/boom",code="500"}`,
	} {
		if !strings.Contains(string(body), needle) {
			t.Errorf("metrics missing %q", needle)
		}
	}
}

// TestRetryAfterComputed exercises the Retry-After estimator directly:
// work ahead over observed service rate, EWMA-smoothed, clamped to
// [1, 60], with a 1-second floor before any observation.
func TestRetryAfterComputed(t *testing.T) {
	a := newAdmission(2, 4)
	if got := a.retryAfterSeconds(); got != 1 {
		t.Errorf("no observations: hint = %d, want the 1s floor", got)
	}

	a.observe(3 * time.Second)
	for i := 0; i < 2; i++ { // occupy both slots
		if err := a.acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Two running requests at 3s average over two slots → 3s.
	if got := a.retryAfterSeconds(); got != 3 {
		t.Errorf("2 running @ 3s avg: hint = %d, want 3", got)
	}
	// Queued waiters count as work ahead: 4 requests ahead → 6s.
	a.queued.Add(2)
	if got := a.retryAfterSeconds(); got != 6 {
		t.Errorf("2 running + 2 queued: hint = %d, want 6", got)
	}
	a.queued.Add(-2)

	// The EWMA folds new samples in at α=0.2: 0.8·3s + 0.2·1s = 2.6s,
	// so one freed slot leaves 1 running · 2.6 / 2 → ceil = 2.
	a.observe(1 * time.Second)
	a.release()
	if got := a.retryAfterSeconds(); got != 2 {
		t.Errorf("1 running @ 2.6s avg: hint = %d, want 2", got)
	}

	// Clamps: a pathological average saturates at 60, a tiny one floors at 1.
	a.ewmaBits.Store(math.Float64bits(1000))
	if got := a.retryAfterSeconds(); got != 60 {
		t.Errorf("huge avg: hint = %d, want the 60s clamp", got)
	}
	a.ewmaBits.Store(math.Float64bits(0.0001))
	if got := a.retryAfterSeconds(); got != 1 {
		t.Errorf("tiny avg: hint = %d, want the 1s floor", got)
	}
	a.release()
}

// TestServerRetryAfterHTTP proves the 429 Retry-After header carries the
// computed estimate, not a constant: with a slow observed service time
// and the only slot held, the shed response hints ≥ 2 seconds.
func TestServerRetryAfterHTTP(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, Config{MaxInFlight: 1, QueueDepth: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// One completed discovery seeds the EWMA; a synthetic slow sample
	// pushes the average where a constant hint could not follow.
	var disc DiscoverResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/discover", DiscoverRequest{Examples: exampleSet}, &disc); code != http.StatusOK {
		t.Fatalf("seed discovery: status %d", code)
	}
	srv.adm.observe(10 * time.Second)

	if err := srv.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.adm.release()
	raw, _ := json.Marshal(DiscoverRequest{Examples: exampleSet})
	resp, err := ts.Client().Post(ts.URL+"/v1/discover", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if secs < 2 || secs > 60 {
		t.Errorf("Retry-After = %d, want a computed value in [2, 60] (avg ≈ 2s, 1 slot, 1 ahead)", secs)
	}
}

// TestServerWALSyncFailure drives the durability contract over HTTP:
// when the log cannot reach stable storage, the insert is answered 500
// wal_sync_failed instead of a lying 200, and the poisoned log keeps
// refusing acknowledgements until an operator intervenes.
func TestServerWALSyncFailure(t *testing.T) {
	fs := iofault.NewMemFS()
	sys := newTestSystem(t)
	if _, err := sys.RecoverWAL("wal.log", wal.Options{Policy: wal.PolicyAlways, FS: fs}); err != nil {
		t.Fatal(err)
	}
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	fs.FailSyncs(1)
	var errResp ErrorResponse
	code := postJSON(t, ts.Client(), ts.URL+"/v1/insert", InsertRequest{
		Rel: "academics", Values: []any{float64(200), "Unacked Scholar"}}, &errResp)
	if code != http.StatusInternalServerError || errResp.Code != "wal_sync_failed" {
		t.Fatalf("insert over failed fsync: status %d body %+v, want 500/wal_sync_failed", code, errResp)
	}
	// The failure is sticky: the log never acknowledges again.
	code = postJSON(t, ts.Client(), ts.URL+"/v1/insert", InsertRequest{
		Rel: "academics", Values: []any{float64(201), "Also Unacked"}}, &errResp)
	if code != http.StatusInternalServerError || errResp.Code != "wal_sync_failed" {
		t.Fatalf("insert after poisoning: status %d body %+v", code, errResp)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, needle := range []string{
		"squid_wal_failed 1",
		"squid_wal_sync_failures_total 1",
	} {
		if !strings.Contains(string(body), needle) {
			t.Errorf("metrics missing %q", needle)
		}
	}
}

// TestServerSnapshotCheckpointsWAL proves POST /v1/snapshot doubles as a
// log checkpoint: the log rotates (and the retired segment is discarded
// once the snapshot lands), and a reboot replays only the records after
// the checkpoint on top of the snapshot.
func TestServerSnapshotCheckpointsWAL(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal.log")
	snapPath := filepath.Join(dir, "snap.sqas")

	sys := newTestSystem(t)
	if _, err := sys.RecoverWAL(walPath, wal.Options{Policy: wal.PolicyAlways}); err != nil {
		t.Fatal(err)
	}
	srv := New(sys, Config{SnapshotPath: snapPath})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code := postJSON(t, ts.Client(), ts.URL+"/v1/insert", InsertRequest{
		Rel: "academics", Values: []any{float64(200), "Before Checkpoint"}}, nil)
	if code != http.StatusOK {
		t.Fatalf("pre-checkpoint insert: status %d", code)
	}
	var snap SnapshotResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/snapshot", struct{}{}, &snap); code != http.StatusOK {
		t.Fatalf("snapshot: status %d", code)
	}
	if m := sys.WAL().Metrics(); m.Rotations != 1 {
		t.Errorf("rotations after snapshot = %d, want 1", m.Rotations)
	}
	if _, err := os.Stat(walPath + ".prev"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("retired segment survives a completed checkpoint: stat = %v", err)
	}
	code = postJSON(t, ts.Client(), ts.URL+"/v1/insert", InsertRequest{
		Rel: "research", Values: []any{float64(200), "data management"}}, nil)
	if code != http.StatusOK {
		t.Fatalf("post-checkpoint insert: status %d", code)
	}

	// Crash-reboot (no Finalize, no Close — PolicyAlways already made
	// every acknowledged record durable): load the snapshot, replay the
	// tail. Only the post-checkpoint insert should need replaying.
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := squid.Load(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	info, err := sys2.RecoverWAL(walPath, wal.Options{Policy: wal.PolicyNever})
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 1 {
		t.Errorf("replayed %d records, want 1 (the snapshot covers the rest)", info.Replayed)
	}

	// The rebooted system answers identically to the live one.
	want, err := sys.Discover(exampleSet)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys2.Discover(exampleSet)
	if err != nil {
		t.Fatalf("discovery after reboot: %v", err)
	}
	if got.Explain() != want.Explain() {
		t.Errorf("recovered discovery diverges from the live system:\nlive:\n%s\nrecovered:\n%s",
			want.Explain(), got.Explain())
	}
}
